// Example: perimeter patrolling with a deterministic refresh guarantee.
//
// Scenario: k patrol robots monitor an n-segment perimeter (a ring of
// sensors). Operations wants a hard bound on *idleness*: the longest time
// any sensor goes unchecked. Thm 6 gives the rotor-router a deterministic
// Theta(n/k) guarantee after stabilization; k random patrollers achieve
// n/k only in expectation, with a heavy tail this example makes visible.
//
//   ./build/examples/ring_patrol [n] [k]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/cover_time.hpp"
#include "core/initializers.hpp"
#include "core/limit_cycle.hpp"
#include "walk/ring_walk.hpp"

int main(int argc, char** argv) {
  const rr::core::NodeId n = argc > 1 ? std::atoi(argv[1]) : 600;
  const std::uint32_t k = argc > 2 ? std::atoi(argv[2]) : 6;
  std::printf("Perimeter patrol: %u sensors, %u robots (target idleness"
              " ~ n/k = %u rounds)\n\n", n, k, n / k);

  // Deploy the rotor-router patrol from an arbitrary (bad) initial state:
  // all robots start at the depot, every pointer aimed at the depot.
  rr::core::RingConfig config{n, rr::core::place_all_on_one(k, 0),
                              rr::core::pointers_toward(n, 0)};

  // Phase 1: deployment. How long until every sensor has been checked once?
  const std::uint64_t first_sweep = rr::core::ring_cover_time(config);
  std::printf("first full sweep completed after %llu rounds"
              " (worst-case deployment, Thm 1: Theta(n^2/log k))\n",
              static_cast<unsigned long long>(first_sweep));

  // Phase 2: steady state. Exact idleness bound on the limit cycle.
  const auto exact = rr::core::exact_return_time(config, 1ULL << 34);
  if (exact) {
    std::printf("steady-state guarantee: every sensor checked at least once"
                " every %llu rounds (period %llu)\n",
                static_cast<unsigned long long>(exact->max_gap),
                static_cast<unsigned long long>(exact->period));
  } else {
    const auto ret = rr::core::ring_return_time(config);
    std::printf("steady-state (windowed): max idleness %llu rounds\n",
                static_cast<unsigned long long>(ret.max_gap));
  }

  // The randomized alternative: same fleet doing independent random walks.
  // Track worst idleness over a long horizon.
  const std::uint64_t horizon = 200ULL * n;
  rr::walk::RingRandomWalks walks(n, config.agents, 12345);
  walks.run(4ULL * n);  // mix first
  std::vector<std::uint64_t> last_seen(n, walks.time());
  std::uint64_t worst_idle = 0;
  const std::uint64_t t_end = walks.time() + horizon;
  while (walks.time() < t_end) {
    walks.step();
    for (std::uint32_t i = 0; i < k; ++i) {
      const auto p = walks.position(i);
      worst_idle = std::max(worst_idle, walks.time() - last_seen[p]);
      last_seen[p] = walks.time();
    }
  }
  for (rr::walk::NodeId v = 0; v < n; ++v) {
    worst_idle = std::max(worst_idle, t_end - last_seen[v]);
  }
  std::printf("\nrandom-walk patrol over %llu rounds: worst observed"
              " idleness %llu rounds (%.1fx the n/k target;"
              " grows with the horizon — no hard guarantee)\n",
              static_cast<unsigned long long>(horizon),
              static_cast<unsigned long long>(worst_idle),
              static_cast<double>(worst_idle) * k / n);
  std::printf("\nTakeaway: the deterministic rotor-router turns the"
              " *expected* refresh n/k of random patrols into a hard"
              " worst-case bound of ~2n/k (Thm 6).\n");
  return 0;
}
