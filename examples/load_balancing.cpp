// Example: rotor-router as a deterministic load balancer (Sec. 1.2).
//
// For k > n the "agents" are better viewed as indistinguishable work
// tokens hopping between processors (Cooper & Spencer; Akbari &
// Berenbrink; Berenbrink et al.). The rotor-router's round-robin port
// discipline spreads tokens like a random walk does in expectation, but
// deterministically: the per-node discrepancy w.r.t. the uniform load
// stays O(1) on the ring/grid. This example starts with all load on one
// node and tracks the max discrepancy over time for the rotor-router vs a
// randomized token diffusion.
//
//   ./build/examples/load_balancing [tokens-per-node]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analysis/table.hpp"
#include "core/rotor_router.hpp"
#include "graph/generators.hpp"
#include "walk/random_walk.hpp"

namespace {

using rr::analysis::Table;
using rr::graph::Graph;
using rr::graph::NodeId;

double max_discrepancy(const std::vector<std::uint32_t>& load, double target) {
  double worst = 0.0;
  for (std::uint32_t c : load) {
    worst = std::max(worst, std::abs(static_cast<double>(c) - target));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t per_node = argc > 1 ? std::atoi(argv[1]) : 8;
  Graph g = rr::graph::torus(16, 16);
  const NodeId n = g.num_nodes();
  const std::uint32_t total = per_node * n;
  std::printf("Load balancing on a 16x16 torus: %u tokens, all initially on"
              " node 0 (uniform load would be %u per node)\n\n",
              total, per_node);

  // Deterministic: multi-token rotor-router.
  std::vector<NodeId> tokens(total, 0);
  rr::core::RotorRouter rotor(g, tokens);

  // Randomized baseline: every token does an independent random walk.
  rr::walk::GraphRandomWalks walks(g, tokens, 4242);

  Table t({"round", "rotor max |load - avg|", "walk max |load - avg|"});
  std::vector<std::uint32_t> rotor_load(n), walk_load(n);
  const int rounds = 4096;
  int next_report = 1;
  for (int round = 1; round <= rounds; ++round) {
    rotor.step();
    walks.step();
    if (round == next_report) {
      for (NodeId v = 0; v < n; ++v) rotor_load[v] = rotor.agents_at(v);
      std::fill(walk_load.begin(), walk_load.end(), 0);
      for (std::uint32_t i = 0; i < total; ++i) ++walk_load[walks.position(i)];
      t.add_row({Table::integer(round),
                 Table::num(max_discrepancy(rotor_load, per_node), 1),
                 Table::num(max_discrepancy(walk_load, per_node), 1)});
      next_report *= 4;
    }
  }
  t.print();

  std::printf("\nThe rotor-router converges to a *bounded* discrepancy"
              " (tokens spread round-robin over the ports), while the"
              " random diffusion keeps sqrt(load)-sized fluctuations"
              " forever — the deterministic system beats the expectation"
              " it imitates (Cooper & Spencer).\n");
  return 0;
}
