// Example: multi-agent exploration race across topologies.
//
// The paper's Table 1 is about the ring; this example uses the general-
// graph engine to race the k-agent rotor-router against k random walks on
// several topologies, from the same starting nodes, reporting cover times.
// It reproduces Yanovski et al.'s observation (Sec. 1.2) of near-linear
// multi-agent speed-up in "practical" (non-adversarial) scenarios, and
// shows the deterministic system is competitive with — often better than —
// the randomized one.
//
//   ./build/examples/exploration_race

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/cover_time.hpp"
#include "core/rotor_router.hpp"
#include "graph/generators.hpp"
#include "sim/runner.hpp"
#include "walk/random_walk.hpp"

namespace {

using rr::analysis::Table;
using rr::graph::Graph;
using rr::graph::NodeId;

}  // namespace

int main() {
  std::printf("Exploration race: k-agent rotor-router vs k random walks\n");
  std::printf("(all agents start at node 0; walk numbers are means of 20"
              " trials)\n\n");

  struct Entry {
    std::string name;
    Graph g;
  };
  std::vector<Entry> graphs;
  graphs.push_back({"ring(256)", rr::graph::ring(256)});
  graphs.push_back({"grid(16x16)", rr::graph::grid(16, 16)});
  graphs.push_back({"torus(16x16)", rr::graph::torus(16, 16)});
  graphs.push_back({"hypercube(8)", rr::graph::hypercube(8)});
  graphs.push_back({"clique(64)", rr::graph::clique(64)});
  graphs.push_back({"binary_tree(255)", rr::graph::binary_tree(255)});
  graphs.push_back({"random_4_regular(256)", rr::graph::random_regular(256, 4, 9)});
  graphs.push_back({"lollipop(192,64)", rr::graph::lollipop(192, 64)});

  // Both engines run through the same batched runner: trial 0 is the
  // deterministic rotor-router, trials 1..20 the random-walk replicas.
  rr::sim::Runner runner;
  for (std::uint32_t k : {1u, 4u, 16u}) {
    Table t({"topology (k=" + std::to_string(k) + ")", "rotor-router cover",
             "random-walk cover (mean)", "walks/rotor"});
    for (const auto& e : graphs) {
      const std::vector<NodeId> starts(k, 0);
      const auto covers = runner.cover_times(
          21,
          [&](std::uint64_t trial) -> std::unique_ptr<rr::sim::Engine> {
            if (trial == 0) {
              return std::make_unique<rr::core::RotorRouter>(e.g, starts);
            }
            return std::make_unique<rr::walk::GraphRandomWalks>(
                e.g, starts, 500 + 37 * (trial - 1) + k);
          },
          ~0ULL / 2);
      const auto rr_cover = covers.front();
      double walk_mean = 0.0;
      for (std::size_t i = 1; i < covers.size(); ++i) {
        walk_mean += static_cast<double>(covers[i]);
      }
      walk_mean /= static_cast<double>(covers.size() - 1);
      t.add_row({e.name, Table::integer(rr_cover),
                 Table::num(walk_mean, 0),
                 Table::num(walk_mean / static_cast<double>(rr_cover), 2)});
    }
    t.print();
    std::printf("\n");
  }

  std::printf("Notes:\n"
              " - lollipop: the classic random-walk trap (expected cover"
              " ~n^3 for one walker); the rotor-router's D|E| guarantee"
              " avoids it.\n"
              " - clique/hypercube: random walks shine (small mixing time);"
              " the deterministic guarantee stays within a small factor.\n"
              " - speed-up from k=1 to k=16 is near-linear for both models"
              " on well-connected graphs (Yanovski et al.).\n");
  return 0;
}
