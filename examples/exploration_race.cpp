// Example: multi-agent exploration race across topologies.
//
// The paper's Table 1 is about the ring; this example uses the general-
// graph engine to race the k-agent rotor-router against k random walks on
// several topologies, from the same starting nodes, reporting cover times.
// It reproduces Yanovski et al.'s observation (Sec. 1.2) of near-linear
// multi-agent speed-up in "practical" (non-adversarial) scenarios, and
// shows the deterministic system is competitive with — often better than —
// the randomized one.
//
//   ./build/examples/exploration_race

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/parallel.hpp"
#include "analysis/table.hpp"
#include "core/cover_time.hpp"
#include "graph/generators.hpp"
#include "walk/random_walk.hpp"

namespace {

using rr::analysis::Table;
using rr::graph::Graph;
using rr::graph::NodeId;

}  // namespace

int main() {
  std::printf("Exploration race: k-agent rotor-router vs k random walks\n");
  std::printf("(all agents start at node 0; walk numbers are means of 20"
              " trials)\n\n");

  struct Entry {
    std::string name;
    Graph g;
  };
  std::vector<Entry> graphs;
  graphs.push_back({"ring(256)", rr::graph::ring(256)});
  graphs.push_back({"grid(16x16)", rr::graph::grid(16, 16)});
  graphs.push_back({"torus(16x16)", rr::graph::torus(16, 16)});
  graphs.push_back({"hypercube(8)", rr::graph::hypercube(8)});
  graphs.push_back({"clique(64)", rr::graph::clique(64)});
  graphs.push_back({"binary_tree(255)", rr::graph::binary_tree(255)});
  graphs.push_back({"random_4_regular(256)", rr::graph::random_regular(256, 4, 9)});
  graphs.push_back({"lollipop(192,64)", rr::graph::lollipop(192, 64)});

  for (std::uint32_t k : {1u, 4u, 16u}) {
    Table t({"topology (k=" + std::to_string(k) + ")", "rotor-router cover",
             "random-walk cover (mean)", "walks/rotor"});
    for (const auto& e : graphs) {
      const std::vector<NodeId> starts(k, 0);
      const auto rr_cover = rr::core::graph_cover_time(e.g, starts);
      const auto walk_mean =
          rr::analysis::parallel_stats(20, [&](std::uint64_t i) {
            rr::walk::GraphRandomWalks w(e.g, starts, 500 + 37 * i + k);
            return static_cast<double>(w.run_until_covered(~0ULL / 2));
          }).mean();
      t.add_row({e.name, Table::integer(rr_cover),
                 Table::num(walk_mean, 0),
                 Table::num(walk_mean / static_cast<double>(rr_cover), 2)});
    }
    t.print();
    std::printf("\n");
  }

  std::printf("Notes:\n"
              " - lollipop: the classic random-walk trap (expected cover"
              " ~n^3 for one walker); the rotor-router's D|E| guarantee"
              " avoids it.\n"
              " - clique/hypercube: random walks shine (small mixing time);"
              " the deterministic guarantee stays within a small factor.\n"
              " - speed-up from k=1 to k=16 is near-linear for both models"
              " on well-connected graphs (Yanovski et al.).\n");
  return 0;
}
