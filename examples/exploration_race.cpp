// Example: multi-agent exploration race across topologies.
//
// The paper's Table 1 is about the ring; this example uses the general-
// graph engine to race the k-agent rotor-router against k random walks on
// several topologies, from the same starting nodes, reporting cover times.
// It reproduces Yanovski et al.'s observation (Sec. 1.2) of near-linear
// multi-agent speed-up in "practical" (non-adversarial) scenarios, and
// shows the deterministic system is competitive with — often better than —
// the randomized one.
//
//   ./build/examples/exploration_race

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "sim/registry.hpp"
#include "sim/runner.hpp"

namespace {

using rr::analysis::Table;

}  // namespace

int main() {
  std::printf("Exploration race: k-agent rotor-router vs k random walks\n");
  std::printf("(all agents start at node 0; walk numbers are means of 20"
              " trials)\n\n");

  // Substrates as graph descriptors: every engine is built through the
  // registry, so this driver names no backend type.
  const char* graphs[] = {"ring 256",          "grid 16 16",
                          "torus 16 16",       "hypercube 8",
                          "clique 64",         "tree 255",
                          "random-regular 256 4 9", "lollipop 192 64"};

  // Both engines run through the same batched runner: trial 0 is the
  // deterministic rotor-router, trials 1..20 the random-walk replicas.
  const auto& registry = rr::sim::EngineRegistry::instance();
  rr::sim::Runner runner;
  for (std::uint32_t k : {1u, 4u, 16u}) {
    Table t({"topology (k=" + std::to_string(k) + ")", "rotor-router cover",
             "random-walk cover (mean)", "walks/rotor"});
    for (const char* descriptor : graphs) {
      const auto parsed = rr::graph::GraphDescriptor::parse(descriptor);
      if (!parsed) {
        std::printf("malformed descriptor '%s'\n", descriptor);
        return 1;
      }
      rr::sim::EngineConfig config;
      config.agents.assign(k, 0);
      const auto covers = runner.cover_times(
          21,
          [&](std::uint64_t trial) -> std::unique_ptr<rr::sim::Engine> {
            rr::sim::EngineConfig c = config;
            c.seed = 500 + 37 * (trial - 1) + k;
            return registry.create(trial == 0 ? "rotor" : "walks", *parsed,
                                   c);
          },
          ~0ULL / 2);
      const auto rr_cover = covers.front();
      double walk_mean = 0.0;
      for (std::size_t i = 1; i < covers.size(); ++i) {
        walk_mean += static_cast<double>(covers[i]);
      }
      walk_mean /= static_cast<double>(covers.size() - 1);
      t.add_row({descriptor, Table::integer(rr_cover),
                 Table::num(walk_mean, 0),
                 Table::num(walk_mean / static_cast<double>(rr_cover), 2)});
    }
    t.print();
    std::printf("\n");
  }

  std::printf("Notes:\n"
              " - lollipop: the classic random-walk trap (expected cover"
              " ~n^3 for one walker); the rotor-router's D|E| guarantee"
              " avoids it.\n"
              " - clique/hypercube: random walks shine (small mixing time);"
              " the deterministic guarantee stays within a small factor.\n"
              " - speed-up from k=1 to k=16 is near-linear for both models"
              " on well-connected graphs (Yanovski et al.).\n");
  return 0;
}
