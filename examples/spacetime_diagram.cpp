// Example: watch the multi-agent rotor-router run, in ASCII.
//
// Renders space-time diagrams of the two canonical scenarios on a small
// ring: (1) worst-case exploration from a single node — agents fan out and
// the covered region grows like sqrt(t); (2) the stabilized limit —
// domains of equal size, each patrolled by one agent (Thm 6).
//
//   ./build/examples/spacetime_diagram [n] [k]

#include <cstdio>
#include <cstdlib>

#include "core/domains.hpp"
#include "core/initializers.hpp"
#include "core/rotor_router.hpp"
#include "core/trace.hpp"
#include "graph/generators.hpp"
#include "sim/trace.hpp"

int main(int argc, char** argv) {
  const rr::core::NodeId n = argc > 1 ? std::atoi(argv[1]) : 72;
  const std::uint32_t k = argc > 2 ? std::atoi(argv[2]) : 4;

  std::printf("Space-time diagram, n=%u k=%u — symbols: o agent, 8 two"
              " agents, * more, . visited, (space) unvisited\n\n", n, k);

  // --- Scenario 1: worst-case exploration (Thm 1 initialization). ---
  std::printf("1) all agents on node 0, pointers toward node 0 —"
              " exploration phase:\n\n");
  rr::core::RingRotorRouter explore(
      n, rr::core::place_all_on_one(k, n / 2),
      rr::core::pointers_toward(n, n / 2));
  rr::core::TraceOptions opt;
  opt.rounds = 30ULL * n / 4;
  opt.stride = opt.rounds / 24;
  std::fputs(rr::core::format_trace(rr::core::record_trace(explore, opt))
                 .c_str(),
             stdout);
  std::printf("\n(the frontier advances ~sqrt(t): each extra node costs a"
              " full zig-zag of the outermost agent)\n\n");

  // --- Scenario 2: the stabilized limit behaviour with domains. ---
  std::printf("2) after stabilization — domain mode (letters = domain of"
              " each agent):\n\n");
  const auto agents = rr::core::place_equally_spaced(n, k);
  rr::core::RingRotorRouter limit(n, agents,
                                  rr::core::pointers_negative(n, agents));
  limit.run_until_covered(8ULL * n * n);
  limit.run(4ULL * n * n / k);
  rr::core::TraceOptions opt2;
  opt2.rounds = 2ULL * n / k;
  opt2.stride = std::max<std::uint64_t>(1, opt2.rounds / 24);
  opt2.domains = true;
  std::fputs(rr::core::format_trace(rr::core::record_trace(limit, opt2))
                 .c_str(),
             stdout);

  const auto snap = rr::core::compute_domains(limit);
  std::printf("\ndomains: %zu, sizes within [%u, %u] (n/k = %u); each agent"
              " sweeps its own arc, visiting every node once per ~2n/k"
              " rounds (Thm 6).\n",
              snap.domains.size(), snap.min_size(), snap.max_size(), n / k);

  // --- Scenario 3: torus exploration, engine-generic renderer. ---
  // 2-D substrates draw through sim/trace (observer-driven): each frame is
  // a block of rows, 'o' marks nodes whose visit count grew since the
  // previous sample — the advancing frontier reads as a growing blob.
  const rr::graph::NodeId side = 12;
  std::printf("\n3) %ux%u torus, %u rotor-router agents at the corners of"
              " one column — frontier growth (generic trace):\n\n",
              side, side, 4u);
  rr::graph::Graph torus = rr::graph::torus(side, side);
  rr::core::RotorRouter frontier(
      torus, {0, side * (side / 2), side / 2, side * (side / 2) + side / 2});
  rr::sim::TraceOptions topt;
  topt.rounds = 4ULL * side;
  topt.stride = topt.rounds / 4;
  topt.width = side;
  std::fputs(
      rr::sim::format_trace(rr::sim::record_trace(frontier, topt)).c_str(),
      stdout);
  std::printf("\n(t=%llu: coverage %.0f%% — Yanovski-style lock-in covers"
              " every node within 2D|E| rounds on any graph)\n",
              static_cast<unsigned long long>(frontier.time()),
              100.0 * frontier.coverage());
  return 0;
}
