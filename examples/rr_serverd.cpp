// rr_serverd: session-multiplexing simulation daemon.
//
//   rr_serverd serve --socket /tmp/rr.sock [--max-sessions N]
//             [--max-live N] [--quantum N] [--evict-after N]
//             [--ckpt-dir DIR] [--checkpoint-every N] [--threads N]
//             [--policy fifo|qos] [--quantum-interactive N]
//             [--quantum-batch N] [--quantum-background N]
//             [--pump-rounds N] [--max-queued-steps N]
//             [--cycle-jump on|off|auto]
//   rr_serverd drive --socket /tmp/rr.sock --sessions N --rounds R
//             [--engine NAME] [--graph DESC] [--k K] [--seed S]
//             [--qos interactive|batch|background]
//             [--cycle-jump on|off|auto] [--shutdown]
//
// `serve` hosts a serve::SessionService (src/serve/service.hpp) behind a
// single-threaded poll() loop on an AF_UNIX socket: one FrameDecoder and
// write buffer per connection, the service pumped between poll
// iterations (it is the pool's single dispatcher). The loop polls with
// timeout 0 while the service has queued rounds and parks ~100 ms
// otherwise, so an idle daemon costs nothing and a loaded one spends its
// time stepping. SIGINT/SIGTERM or a kShutdown request flush pending
// writes and exit cleanly (the CI sanitizer smoke asserts a leak-free
// shutdown this way).
//
// `drive` is the load/smoke client: creates --sessions identical
// sessions (retrying kBusy admission), pipelines one --rounds step
// across all of them, waits for every reply, and prints a summary line
//
//   drive: sessions=N rounds=R t=T covered=C/N hash=HHHH
//
// whose hash=%016llx field is comparable to `rr_cli run` output for the
// same (engine, graph, k) — the CI smoke greps one against the other.
//
// Exit code 0 on success, 1 on runtime failures, 2 on usage errors.

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/parse.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "sim/thread_pool.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

struct Flags {
  std::string socket_path = "/tmp/rr_serverd.sock";
  std::uint64_t max_sessions = 4096;
  std::uint64_t max_live = 256;
  std::uint64_t quantum = 64;
  std::uint64_t evict_after = 16;
  std::string ckpt_dir = "/tmp";
  std::uint64_t checkpoint_every = 0;
  std::uint64_t threads = 1;
  std::string policy = "qos";
  std::uint64_t quantum_batch = 512;
  std::uint64_t quantum_background = 256;
  std::uint64_t pump_rounds = 0;
  std::uint64_t max_queued_steps = 16;
  // serve: ServiceOptions::cycle_jump mode; drive: "off" opts every
  // created session out on the wire (Request::no_cycle_jump).
  std::string cycle_jump = "auto";
  // serve: per-QoS-class overrides of --cycle-jump ("" = inherit).
  // Background defaults to requiring leaping: that class is long-horizon
  // work nobody is watching for latency, exactly where confirmed-cycle
  // leaps pay — an operator serving stochastic background engines passes
  // --cycle-jump-background auto (or off).
  std::string cycle_jump_interactive;
  std::string cycle_jump_batch;
  std::string cycle_jump_background = "on";
  // drive
  std::uint64_t sessions = 4;
  std::uint64_t rounds = 256;
  std::string engine = "rotor";
  std::string graph = "ring 1024";
  std::uint64_t k = 4;
  std::uint64_t seed = 1;
  std::string qos = "interactive";
  bool shutdown = false;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: rr_serverd <serve|drive> [flags]\n"
      "  serve: --socket PATH --max-sessions N --max-live N --quantum N\n"
      "         --evict-after N --ckpt-dir DIR --checkpoint-every N\n"
      "         --threads N --policy fifo|qos --quantum-interactive N\n"
      "         --quantum-batch N --quantum-background N --pump-rounds N\n"
      "         --max-queued-steps N --cycle-jump on|off|auto\n"
      "         --cycle-jump-interactive|-batch|-background on|off|auto\n"
      "           (per-class override; background defaults to on)\n"
      "  drive: --socket PATH --sessions N --rounds R --engine NAME\n"
      "         --graph DESC --k K --seed S\n"
      "         --qos interactive|batch|background\n"
      "         --cycle-jump on|off|auto [--shutdown]\n");
  return 2;
}

bool parse_flags(int argc, char** argv, int start, Flags& f) {
  // Every numeric flag goes through the checked parser shared with
  // rr_cli (common/parse.hpp): trailing garbage, overflow, and empty
  // values fail loudly naming the flag.
  std::unordered_map<std::string, std::string*> strs = {
      {"--socket", &f.socket_path},
      {"--ckpt-dir", &f.ckpt_dir},
      {"--engine", &f.engine},
      {"--graph", &f.graph},
      {"--policy", &f.policy},
      {"--qos", &f.qos},
      {"--cycle-jump", &f.cycle_jump},
      {"--cycle-jump-interactive", &f.cycle_jump_interactive},
      {"--cycle-jump-batch", &f.cycle_jump_batch},
      {"--cycle-jump-background", &f.cycle_jump_background},
  };
  std::unordered_map<std::string, std::uint64_t*> nums = {
      {"--max-sessions", &f.max_sessions},
      {"--max-live", &f.max_live},
      {"--quantum", &f.quantum},
      // --quantum names the interactive grant; the explicit spelling
      // reads better next to the per-class caps.
      {"--quantum-interactive", &f.quantum},
      {"--quantum-batch", &f.quantum_batch},
      {"--quantum-background", &f.quantum_background},
      {"--pump-rounds", &f.pump_rounds},
      {"--max-queued-steps", &f.max_queued_steps},
      {"--evict-after", &f.evict_after},
      {"--checkpoint-every", &f.checkpoint_every},
      {"--threads", &f.threads},
      {"--sessions", &f.sessions},
      {"--rounds", &f.rounds},
      {"--k", &f.k},
      {"--seed", &f.seed},
  };
  for (int i = start; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--shutdown") {
      f.shutdown = true;
      continue;
    }
    const auto s = strs.find(a);
    const auto n = nums.find(a);
    if (s == strs.end() && n == nums.end()) {
      std::fprintf(stderr, "rr_serverd: unknown flag %s\n", a.c_str());
      return false;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "rr_serverd: %s needs a value\n", a.c_str());
      return false;
    }
    const char* v = argv[++i];
    if (s != strs.end()) {
      *s->second = v;
    } else if (!rr::parse_flag_u64("rr_serverd", a.c_str(), v, *n->second)) {
      return false;
    }
  }
  // Enumerated string flags fail as loudly as the numeric ones: a typo'd
  // policy or class must abort the command, not silently run a different
  // scheduler.
  if (f.policy != "fifo" && f.policy != "qos") {
    std::fprintf(stderr, "rr_serverd: --policy must be 'fifo' or 'qos' "
                         "(got '%s')\n",
                 f.policy.c_str());
    return false;
  }
  if (!rr::serve::qos_class_from_name(f.qos)) {
    std::fprintf(stderr, "rr_serverd: --qos must be one of interactive, "
                         "batch, background (got '%s')\n",
                 f.qos.c_str());
    return false;
  }
  if (!rr::sim::cycle_jump_mode_from_name(f.cycle_jump)) {
    std::fprintf(stderr, "rr_serverd: --cycle-jump must be one of on, off, "
                         "auto (got '%s')\n",
                 f.cycle_jump.c_str());
    return false;
  }
  const std::pair<const char*, const std::string*> class_modes[] = {
      {"--cycle-jump-interactive", &f.cycle_jump_interactive},
      {"--cycle-jump-batch", &f.cycle_jump_batch},
      {"--cycle-jump-background", &f.cycle_jump_background},
  };
  for (const auto& [flag, value] : class_modes) {
    if (!value->empty() && !rr::sim::cycle_jump_mode_from_name(*value)) {
      std::fprintf(stderr, "rr_serverd: %s must be one of on, off, auto "
                           "(got '%s')\n",
                   flag, value->c_str());
      return false;
    }
  }
  return true;
}

// ---- serve ----

struct Conn {
  int fd = -1;
  rr::serve::FrameDecoder decoder;
  std::string outbuf;
  std::size_t out_off = 0;
};

void queue_outgoing(
    std::unordered_map<std::uint64_t, Conn>& conns,
    std::vector<rr::serve::SessionService::Outgoing>& outgoing) {
  for (auto& o : outgoing) {
    const auto it = conns.find(o.conn);
    if (it == conns.end()) continue;  // connection gone; frame dropped
    it->second.outbuf.append(o.frame);
  }
  outgoing.clear();
}

/// Writes as much of the connection's buffer as the socket takes.
/// Returns false on a hard error (drop the connection).
bool flush_conn(Conn& c) {
  while (c.out_off < c.outbuf.size()) {
    const ssize_t n =
        ::send(c.fd, c.outbuf.data() + c.out_off,
               c.outbuf.size() - c.out_off, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    c.out_off += static_cast<std::size_t>(n);
  }
  c.outbuf.clear();
  c.out_off = 0;
  return true;
}

int cmd_serve(const Flags& f) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (f.socket_path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "rr_serverd: socket path too long\n");
    return 1;
  }
  std::memcpy(addr.sun_path, f.socket_path.c_str(), f.socket_path.size() + 1);
  ::unlink(f.socket_path.c_str());
  const int listener = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listener < 0 ||
      ::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 128) != 0) {
    std::fprintf(stderr, "rr_serverd: cannot listen on %s (%s)\n",
                 f.socket_path.c_str(), std::strerror(errno));
    if (listener >= 0) ::close(listener);
    return 1;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  rr::sim::ThreadPool pool(static_cast<unsigned>(f.threads));
  rr::serve::ServiceOptions opt;
  opt.max_sessions = f.max_sessions;
  opt.max_live = f.max_live;
  opt.quantum = f.quantum;
  opt.evict_after = f.evict_after;
  opt.policy = f.policy == "fifo" ? rr::serve::SchedPolicy::kFifo
                                  : rr::serve::SchedPolicy::kQos;
  opt.quantum_batch = f.quantum_batch;
  opt.quantum_background = f.quantum_background;
  opt.pump_rounds = f.pump_rounds;
  opt.max_queued_steps = f.max_queued_steps;
  opt.auto_checkpoint_every = f.checkpoint_every;
  opt.ckpt_dir = f.ckpt_dir;
  opt.cycle_jump = *rr::sim::cycle_jump_mode_from_name(f.cycle_jump);
  const std::pair<const std::string*, rr::serve::QosClass> class_modes[] = {
      {&f.cycle_jump_interactive, rr::serve::QosClass::kInteractive},
      {&f.cycle_jump_batch, rr::serve::QosClass::kBatch},
      {&f.cycle_jump_background, rr::serve::QosClass::kBackground},
  };
  for (const auto& [value, cls] : class_modes) {
    if (!value->empty()) {
      opt.cycle_jump_class[static_cast<std::size_t>(cls)] =
          *rr::sim::cycle_jump_mode_from_name(*value);
    }
  }
  opt.pool = &pool;
  rr::serve::SessionService service(opt);

  std::unordered_map<std::uint64_t, Conn> conns;
  std::uint64_t next_conn = 1;
  std::vector<rr::serve::SessionService::Outgoing> outgoing;
  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> pfd_conn;  // conn id per pfds entry (0 = listener)
  std::vector<std::uint64_t> dead;
  std::uint8_t buf[1 << 16];

  std::fprintf(stderr, "rr_serverd: listening on %s\n",
               f.socket_path.c_str());
  while (g_stop == 0 && !service.shutdown_requested()) {
    pfds.clear();
    pfd_conn.clear();
    pfds.push_back(pollfd{listener, POLLIN, 0});
    pfd_conn.push_back(0);
    for (auto& [id, c] : conns) {
      short events = POLLIN;
      if (c.out_off < c.outbuf.size()) events |= POLLOUT;
      pfds.push_back(pollfd{c.fd, events, 0});
      pfd_conn.push_back(id);
    }
    const int timeout_ms = service.has_pending_work() ? 0 : 100;
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;

    dead.clear();
    for (std::size_t i = 0; ready > 0 && i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      if (pfd_conn[i] == 0) {
        for (;;) {
          const int fd = ::accept4(listener, nullptr, nullptr, SOCK_NONBLOCK);
          if (fd < 0) break;
          Conn c;
          c.fd = fd;
          conns.emplace(next_conn++, std::move(c));
        }
        continue;
      }
      const std::uint64_t id = pfd_conn[i];
      Conn& c = conns.at(id);
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        bool drop = false;
        for (;;) {
          const ssize_t n = ::recv(c.fd, buf, sizeof buf, MSG_DONTWAIT);
          if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            drop = true;
            break;
          }
          if (n == 0) {  // peer closed
            drop = true;
            break;
          }
          c.decoder.feed(buf, static_cast<std::size_t>(n));
          while (const auto payload = c.decoder.next()) {
            service.handle(
                id, reinterpret_cast<const std::uint8_t*>(payload->data()),
                payload->size(), outgoing);
          }
          if (c.decoder.fatal()) {  // unrecoverable stream; cut it loose
            drop = true;
            break;
          }
        }
        if (drop) {
          dead.push_back(id);
          continue;
        }
      }
      if (pfds[i].revents & POLLOUT) {
        if (!flush_conn(c)) dead.push_back(id);
      }
    }

    service.pump(outgoing);
    queue_outgoing(conns, outgoing);
    // Opportunistic flush: most replies fit the socket buffer, so they
    // leave now instead of waiting one poll cycle for POLLOUT.
    for (auto& [id, c] : conns) {
      if (c.out_off < c.outbuf.size() && !flush_conn(c)) {
        dead.push_back(id);
      }
    }
    for (const std::uint64_t id : dead) {
      const auto it = conns.find(id);
      if (it == conns.end()) continue;
      service.drop_connection(id);
      ::close(it->second.fd);
      conns.erase(it);
    }
  }

  // Drain queued work so in-flight step replies are not lost, then give
  // each connection one best-effort flush.
  std::vector<rr::serve::SessionService::Outgoing> tail;
  for (int spins = 0; service.has_pending_work() && spins < 10000; ++spins) {
    service.pump(tail);
  }
  queue_outgoing(conns, tail);
  for (auto& [id, c] : conns) {
    flush_conn(c);
    ::close(c.fd);
  }
  ::close(listener);
  ::unlink(f.socket_path.c_str());
  std::fprintf(stderr, "rr_serverd: shut down cleanly\n");
  return 0;
}

// ---- drive ----

int cmd_drive(const Flags& f) {
  using rr::serve::Op;
  using rr::serve::Reply;
  using rr::serve::Request;
  using rr::serve::Status;

  rr::serve::Client client;
  if (!client.connect(f.socket_path)) {
    std::fprintf(stderr, "rr_serverd: cannot connect to %s\n",
                 f.socket_path.c_str());
    return 1;
  }

  // parse_flags already validated the class name.
  const rr::serve::QosClass qos = *rr::serve::qos_class_from_name(f.qos);

  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> sessions;
  sessions.reserve(f.sessions);
  for (std::uint64_t i = 0; i < f.sessions; ++i) {
    Request req;
    req.id = next_id++;
    req.op = Op::kCreate;
    req.engine = f.engine;
    req.graph = f.graph;
    req.k = f.k;
    req.seed = f.seed;
    req.qos = qos;
    // drive has no server-side say: "off" rides the per-session opt-out
    // bit; "on"/"auto" defer to the server's configured mode.
    req.no_cycle_jump = f.cycle_jump == "off";
    for (int attempt = 0; attempt < 1000; ++attempt) {
      const auto rep = client.call(req);
      if (!rep) {
        std::fprintf(stderr, "rr_serverd: connection lost during create\n");
        return 1;
      }
      if (rep->status == Status::kOk) {
        sessions.push_back(rep->session);
        break;
      }
      if (rep->status != Status::kBusy) {
        std::fprintf(stderr, "rr_serverd: create failed: %s\n",
                     rep->message.c_str());
        return 1;
      }
      ::usleep(2000);  // admission full; the server needs a few pumps
      req.id = next_id++;
    }
  }
  if (sessions.size() != f.sessions) {
    std::fprintf(stderr, "rr_serverd: only %zu/%llu sessions admitted\n",
                 sessions.size(),
                 static_cast<unsigned long long>(f.sessions));
    return 1;
  }

  // Pipeline one step request per session, then collect every reply.
  // Evicted sessions rehydrate server-side; kBusy cannot happen (one
  // step per session).
  std::unordered_map<std::uint64_t, Reply> replies;
  std::uint64_t first_step_id = next_id;
  for (const std::uint64_t s : sessions) {
    Request req;
    req.id = next_id++;
    req.op = Op::kStep;
    req.session = s;
    req.rounds = f.rounds;
    if (!client.send(req)) {
      std::fprintf(stderr, "rr_serverd: connection lost during step\n");
      return 1;
    }
  }
  while (replies.size() < sessions.size()) {
    const auto rep = client.next_reply();
    if (!rep) {
      std::fprintf(stderr, "rr_serverd: connection lost awaiting steps\n");
      return 1;
    }
    if (rep->status == Status::kTrace) continue;
    if (rep->id < first_step_id || rep->id >= next_id) continue;
    if (rep->status != Status::kOk) {
      std::fprintf(stderr, "rr_serverd: step failed: %s\n",
                   rep->message.c_str());
      return 1;
    }
    replies.emplace(rep->id, *rep);
  }

  // All sessions ran the same configuration: their final states must
  // agree, and the shared hash is what the CI smoke compares to rr_cli.
  const Reply& first = replies.at(first_step_id);
  for (const auto& [id, rep] : replies) {
    if (rep.config_hash != first.config_hash || rep.time != first.time) {
      std::fprintf(stderr,
                   "rr_serverd: session divergence (hash %016llx vs "
                   "%016llx)\n",
                   static_cast<unsigned long long>(rep.config_hash),
                   static_cast<unsigned long long>(first.config_hash));
      return 1;
    }
  }

  for (const std::uint64_t s : sessions) {
    Request req;
    req.id = next_id++;
    req.op = Op::kDestroy;
    req.session = s;
    const auto rep = client.call(req);
    if (!rep || rep->status != Status::kOk) {
      std::fprintf(stderr, "rr_serverd: destroy failed\n");
      return 1;
    }
  }

  std::printf("drive: sessions=%llu rounds=%llu t=%llu covered=%llu/%llu "
              "hash=%016llx\n",
              static_cast<unsigned long long>(f.sessions),
              static_cast<unsigned long long>(f.rounds),
              static_cast<unsigned long long>(first.time),
              static_cast<unsigned long long>(first.covered),
              static_cast<unsigned long long>(first.nodes),
              static_cast<unsigned long long>(first.config_hash));

  if (f.shutdown) {
    Request req;
    req.id = next_id++;
    req.op = Op::kShutdown;
    if (!client.call(req)) {
      std::fprintf(stderr, "rr_serverd: shutdown call failed\n");
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  Flags f;
  if (!parse_flags(argc, argv, 2, f)) return 2;
  if (cmd == "serve") return cmd_serve(f);
  if (cmd == "drive") return cmd_drive(f);
  return usage();
}
