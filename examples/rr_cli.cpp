// rr_cli: command-line driver for one-off rotor-ring experiments.
//
//   rr_cli cover   --n 1024 --k 8 --place one|spaced|random --ptr toward|negative|uniform|random [--seed S]
//   rr_cli return  (same flags)                       measure the limit refresh time
//   rr_cli trace   --n 72 --k 4 --rounds 200 --stride 8 [--domains]   ASCII space-time diagram
//   rr_cli trace   --topo torus --size 12 --k 4 --rounds 200 --stride 20   2-D space-time blocks
//   rr_cli run     --topo torus --size 16 --k 8 --rounds 400 --checkpoint state.ckpt
//   rr_cli run     --resume state.ckpt --rounds 400 [--checkpoint state.ckpt]
//   rr_cli run     --topo torus --size 256 --k 64 --shards 8 --rounds 4000
//   rr_cli run     --graph-image big.rrg --k 64 --rounds 1000   out-of-core stepping
//   rr_cli config  "ring n=12 agents=0,6 pointers=cccccccccccc" [--rounds R]
//   rr_cli lockin  --topo ring|grid|torus|clique|hypercube|tree --size 64
//   rr_cli engines                                     list registered backends
//   rr_cli build-graph --graph "ring 100000000" --out big.rrg   stream an image
//   rr_cli convert old.ckpt new.ckpt --ckpt-format v1|v2        transcode a checkpoint
//
// `run` drives any registered engine (--engine NAME; `rr_cli engines` or
// `--engine help` lists them) on any substrate (--topo/--size sugar or a
// raw --graph "torus 16 16" descriptor) through the engine-generic
// checkpoint layer: --checkpoint serializes the full state after the run,
// --resume restores one and continues bit-exactly. Engines are built
// exclusively through sim::EngineRegistry — this driver knows no backend
// by name. --shards N steps shard-capable engines shard-parallel
// (bit-equal to sequential; also applies when resuming their
// checkpoints), and --checkpoint-every N rewrites --checkpoint atomically
// every N rounds while the run is in flight (crash-tolerant sweeps).
// --ckpt-format picks the checkpoint wire format (v2 binary by default;
// v1 is the interop text form — readers sniff, so either resumes).
//
// Out-of-core: `build-graph` streams a descriptor into an `rr-graph v1`
// image (graph/mmap_substrate.hpp) without materializing the graph, and
// `run --graph-image FILE` steps the rotor-router over the mmap'd image,
// so instances far beyond RAM run from the page cache. --resume works
// with --graph-image when the checkpoint's engine and descriptor match
// the image.
//
// Exit code 0 on success, 2 on usage errors (so scripts can distinguish).

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/parse.hpp"
#include "common/rng.hpp"
#include "core/cover_time.hpp"
#include "core/initializers.hpp"
#include "core/limit_cycle.hpp"
#include "core/ring_rotor_router.hpp"
#include "core/rotor_router.hpp"
#include "core/snapshot.hpp"
#include "core/trace.hpp"
#include "dist/coordinator.hpp"
#include "graph/descriptor.hpp"
#include "graph/generators.hpp"
#include "graph/mmap_substrate.hpp"
#include "sim/checkpoint.hpp"
#include "sim/cycle_jump.hpp"
#include "sim/registry.hpp"
#include "sim/trace.hpp"

namespace {

struct Flags {
  rr::core::NodeId n = 1024;
  std::uint32_t k = 8;
  std::string place = "spaced";
  std::string ptr = "negative";
  std::uint64_t seed = 1;
  std::uint64_t rounds = 0;
  std::uint64_t stride = 1;
  bool domains = false;
  std::string topo = "ring";
  rr::graph::NodeId size = 64;
  std::string engine = "rotor";
  std::string graph;       // raw descriptor; overrides --topo/--size
  std::string checkpoint;  // write the engine state here after the run
  std::string resume;      // restore the engine state from here first
  std::uint32_t shards = 1;          // > 1: shard-parallel rotor stepping
  std::uint64_t checkpoint_every = 0;  // auto-checkpoint period (rounds)
  std::string ckpt_format = "v2";  // checkpoint wire format: v1 | v2
  std::string graph_image;  // rr-graph image to step out-of-core (run)
  std::string out;          // output path (build-graph)
  // Steady-state cycle leaping (sim/cycle_jump.hpp): auto wraps
  // deterministic engines, on requires one, off steps densely.
  std::string cycle_jump = "auto";
  // "on": persist a confirmed period as the checkpoint's cycle.hint
  // field and adopt the hint when resuming (confirmation still re-runs,
  // so resumed leaps stay exact). Off by default to keep checkpoint
  // bytes identical to hint-unaware builds.
  std::string cycle_hint = "off";
  // Distributed stepping (--engine dist): worker count, spill batch, how
  // to obtain workers (rr_noded path, "threads", or default sibling
  // binary) and an optional AF_UNIX listen path for external workers.
  std::uint32_t workers = 2;
  std::uint64_t spill_batch = 256;
  std::string noded;
  std::string dist_socket;
};

bool parse_ckpt_format(const std::string& s, rr::sim::CkptFormat& format) {
  if (s == "v1") {
    format = rr::sim::CkptFormat::kV1;
  } else if (s == "v2") {
    format = rr::sim::CkptFormat::kV2;
  } else {
    std::fprintf(stderr, "rr_cli: --ckpt-format must be v1 or v2 (got %s)\n",
                 s.c_str());
    return false;
  }
  return true;
}

// Lists the registered backends straight from the registry, so the help
// text can never drift from what `run` actually accepts.
void print_engine_list(std::FILE* out) {
  std::fprintf(out, "registered engine backends (sim::EngineRegistry):\n");
  for (const auto* spec : rr::sim::EngineRegistry::instance().list()) {
    std::fprintf(out, "  %-9s %-22s substrate: %-20s %s\n",
                 spec->name.c_str(), spec->engine_name.c_str(),
                 spec->substrate.c_str(),
                 spec->supports_shards ? "[--shards]" : "");
    std::fprintf(out, "            %s\n", spec->summary.c_str());
  }
}

std::string engine_names() {
  std::string names;
  for (const auto* spec : rr::sim::EngineRegistry::instance().list()) {
    if (!names.empty()) names += "|";
    names += spec->name;
  }
  return names;
}

int usage() {
  std::fprintf(stderr,
               "usage: rr_cli <cover|return|trace|run|config|lockin|engines>"
               " [flags]\n"
               "  common flags: --n N --k K --place one|spaced|random"
               " --ptr toward|negative|uniform|random --seed S\n"
               "  trace: --rounds R --stride S --domains"
               " [--topo ... --size N | --graph DESC]\n"
               "  run: --engine %s --rounds R\n"
               "       [--topo ... --size N | --graph DESC |"
               " --graph-image FILE]\n"
               "       --checkpoint FILE --resume FILE\n"
               "       --checkpoint-every N --shards N --ckpt-format v1|v2\n"
               "       --cycle-jump on|off|auto (leap confirmed steady-state"
               " cycles; default auto)\n"
               "       --cycle-hint on|off (persist/adopt confirmed periods"
               " via checkpoint cycle.hint; default off)\n"
               "       --engine dist: --workers N --spill-batch N"
               " [--noded PATH|threads | --dist-socket PATH]\n"
               "  lockin: --topo ring|grid|torus|clique|hypercube|tree"
               " --size N\n"
               "  engines: list registered backends with substrate"
               " requirements (also: --engine help)\n"
               "  build-graph: [--graph DESC | --topo ... --size N]"
               " --out FILE\n"
               "  convert: <in.ckpt> <out.ckpt> [--ckpt-format v1|v2]\n",
               engine_names().c_str());
  return 2;
}

bool parse_flags(int argc, char** argv, int start, Flags& f) {
  for (int i = start; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rr_cli: %s needs a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--domains") {
      f.domains = true;
    } else if (a == "--n") {
      const char* v = next("--n");
      if (!v || !rr::parse_flag_u32("rr_cli", "--n", v, f.n)) return false;
    } else if (a == "--k") {
      const char* v = next("--k");
      if (!v || !rr::parse_flag_u32("rr_cli", "--k", v, f.k)) return false;
    } else if (a == "--seed") {
      const char* v = next("--seed");
      if (!v || !rr::parse_flag_u64("rr_cli", "--seed", v, f.seed)) {
        return false;
      }
    } else if (a == "--rounds") {
      const char* v = next("--rounds");
      if (!v || !rr::parse_flag_u64("rr_cli", "--rounds", v, f.rounds)) {
        return false;
      }
    } else if (a == "--stride") {
      const char* v = next("--stride");
      if (!v || !rr::parse_flag_u64("rr_cli", "--stride", v, f.stride)) {
        return false;
      }
    } else if (a == "--place") {
      const char* v = next("--place");
      if (!v) return false;
      f.place = v;
    } else if (a == "--ptr") {
      const char* v = next("--ptr");
      if (!v) return false;
      f.ptr = v;
    } else if (a == "--topo") {
      const char* v = next("--topo");
      if (!v) return false;
      f.topo = v;
    } else if (a == "--size") {
      const char* v = next("--size");
      if (!v || !rr::parse_flag_u32("rr_cli", "--size", v, f.size)) {
        return false;
      }
    } else if (a == "--engine") {
      const char* v = next("--engine");
      if (!v) return false;
      f.engine = v;
    } else if (a == "--graph") {
      const char* v = next("--graph");
      if (!v) return false;
      f.graph = v;
    } else if (a == "--checkpoint") {
      const char* v = next("--checkpoint");
      if (!v) return false;
      f.checkpoint = v;
    } else if (a == "--checkpoint-every") {
      const char* v = next("--checkpoint-every");
      if (!v || !rr::parse_flag_u64("rr_cli", "--checkpoint-every", v,
                                    f.checkpoint_every)) {
        return false;
      }
    } else if (a == "--shards") {
      const char* v = next("--shards");
      if (!v || !rr::parse_flag_u32("rr_cli", "--shards", v, f.shards)) {
        return false;
      }
      if (f.shards == 0) f.shards = 1;
    } else if (a == "--resume") {
      const char* v = next("--resume");
      if (!v) return false;
      f.resume = v;
    } else if (a == "--ckpt-format") {
      const char* v = next("--ckpt-format");
      if (!v) return false;
      f.ckpt_format = v;
    } else if (a == "--graph-image") {
      const char* v = next("--graph-image");
      if (!v) return false;
      f.graph_image = v;
    } else if (a == "--out") {
      const char* v = next("--out");
      if (!v) return false;
      f.out = v;
    } else if (a == "--workers") {
      std::uint64_t v64 = 0;
      const char* v = next("--workers");
      if (!v || !rr::parse_flag_u64_range("rr_cli", "--workers", v, 1,
                                          ~std::uint32_t{0}, v64)) {
        return false;
      }
      f.workers = static_cast<std::uint32_t>(v64);
    } else if (a == "--spill-batch") {
      const char* v = next("--spill-batch");
      if (!v || !rr::parse_flag_u64_range("rr_cli", "--spill-batch", v, 1,
                                          1u << 24, f.spill_batch)) {
        return false;
      }
    } else if (a == "--noded") {
      const char* v = next("--noded");
      if (!v) return false;
      f.noded = v;
    } else if (a == "--dist-socket") {
      const char* v = next("--dist-socket");
      if (!v) return false;
      f.dist_socket = v;
    } else if (a == "--cycle-jump") {
      const char* v = next("--cycle-jump");
      if (!v) return false;
      if (!rr::sim::cycle_jump_mode_from_name(v)) {
        std::fprintf(stderr,
                     "rr_cli: --cycle-jump must be one of on, off, auto "
                     "(got %s)\n",
                     v);
        return false;
      }
      f.cycle_jump = v;
    } else if (a == "--cycle-hint") {
      const char* v = next("--cycle-hint");
      if (!v) return false;
      if (std::string(v) != "on" && std::string(v) != "off") {
        std::fprintf(stderr,
                     "rr_cli: --cycle-hint must be on or off (got %s)\n", v);
        return false;
      }
      f.cycle_hint = v;
    } else {
      std::fprintf(stderr, "rr_cli: unknown flag %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

bool build_config(const Flags& f, rr::core::RingConfig& config) {
  rr::Rng rng(f.seed);
  config.n = f.n;
  if (f.place == "one") {
    config.agents = rr::core::place_all_on_one(f.k, 0);
  } else if (f.place == "spaced") {
    config.agents = rr::core::place_equally_spaced(f.n, f.k);
  } else if (f.place == "random") {
    config.agents = rr::core::place_random(f.n, f.k, rng);
  } else {
    std::fprintf(stderr, "rr_cli: unknown placement %s\n", f.place.c_str());
    return false;
  }
  if (f.ptr == "toward") {
    config.pointers = rr::core::pointers_toward(f.n, config.agents.front());
  } else if (f.ptr == "negative") {
    config.pointers = rr::core::pointers_negative(f.n, config.agents);
  } else if (f.ptr == "uniform") {
    config.pointers = rr::core::pointers_uniform(f.n, rr::core::kClockwise);
  } else if (f.ptr == "random") {
    config.pointers = rr::core::pointers_random(f.n, rng);
  } else {
    std::fprintf(stderr, "rr_cli: unknown pointer init %s\n", f.ptr.c_str());
    return false;
  }
  return true;
}

// Smallest d with 2^d >= size, clamped so the shift never overflows.
std::uint32_t hypercube_dim(rr::graph::NodeId size) {
  std::uint32_t d = 1;
  while (d < 31 && (1u << d) < size) ++d;
  return d;
}

// Descriptor text for the --topo/--size sugar; --graph passes through.
std::string topo_descriptor(const Flags& f) {
  using rr::graph::GraphDescriptor;
  if (!f.graph.empty()) return f.graph;
  if (f.topo == "grid") return GraphDescriptor::grid(f.size, f.size).text();
  if (f.topo == "torus") return GraphDescriptor::torus(f.size, f.size).text();
  if (f.topo == "clique") return GraphDescriptor::clique(f.size).text();
  if (f.topo == "hypercube") {
    return GraphDescriptor::hypercube(hypercube_dim(f.size)).text();
  }
  if (f.topo == "tree") return GraphDescriptor::binary_tree(f.size).text();
  return GraphDescriptor::ring(f.size).text();
}

// k agents spread evenly over the node-id range.
std::vector<rr::graph::NodeId> spread_agents(rr::graph::NodeId n,
                                             std::uint32_t k) {
  std::vector<rr::graph::NodeId> agents(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    agents[i] = static_cast<rr::graph::NodeId>(
        static_cast<std::uint64_t>(i) * n / k);
  }
  return agents;
}

// Fills the dist-backend fields of an EngineConfig. For --engine dist
// without --noded/--dist-socket, workers default to a fork/exec'd
// rr_noded sitting next to this binary; --noded threads forces the
// in-process transport instead (same protocol, zero setup).
bool fill_dist_config(const Flags& f, rr::sim::EngineConfig& config) {
  config.dist_workers = f.workers;
  config.dist_spill_batch = f.spill_batch;
  config.dist_socket = f.dist_socket;
  if (f.engine != "dist" || !f.dist_socket.empty()) return true;
  if (f.noded == "threads") return true;
  if (!f.noded.empty()) {
    config.dist_noded = f.noded;
    return true;
  }
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (len > 0) {
    buf[len] = '\0';
    std::string path(buf);
    const auto slash = path.rfind('/');
    path.resize(slash == std::string::npos ? 0 : slash + 1);
    path += "rr_noded";
    if (::access(path.c_str(), X_OK) == 0) {
      config.dist_noded = path;
      return true;
    }
  }
  std::fprintf(stderr,
               "rr_cli: cannot find rr_noded next to rr_cli; use "
               "--noded PATH or --noded threads\n");
  return false;
}

std::unique_ptr<rr::sim::Engine> build_engine(const Flags& f,
                                              const std::string& descriptor) {
  const auto& registry = rr::sim::EngineRegistry::instance();
  const auto d = rr::graph::GraphDescriptor::parse(descriptor);
  if (!d) {
    std::fprintf(stderr, "rr_cli: malformed graph descriptor '%s'\n",
                 descriptor.c_str());
    return nullptr;
  }
  const auto n = d->num_nodes();
  if (!n) {
    std::fprintf(stderr, "rr_cli: invalid graph parameters '%s'\n",
                 descriptor.c_str());
    return nullptr;
  }
  const auto* spec = registry.find(f.engine);
  if (spec && f.shards > 1 && !spec->supports_shards) {
    std::fprintf(stderr,
                 "rr_cli: --shards only applies to shard-capable engines; "
                 "stepping %s sequentially\n",
                 spec->name.c_str());
  }
  rr::sim::EngineConfig config;
  config.agents = spread_agents(*n, f.k);
  config.seed = f.seed;
  config.shards = f.shards;
  if (!fill_dist_config(f, config)) return nullptr;
  std::string error;
  auto engine = registry.create(f.engine, *d, config, &error);
  if (!engine) std::fprintf(stderr, "rr_cli: %s\n", error.c_str());
  return engine;
}

int cmd_engines() {
  print_engine_list(stdout);
  return 0;
}

int cmd_run(const Flags& f) {
  rr::sim::CkptFormat format;
  if (!parse_ckpt_format(f.ckpt_format, format)) return 2;

  std::shared_ptr<rr::graph::MappedSubstrate> substrate;
  if (!f.graph_image.empty()) {
    substrate = rr::graph::MappedSubstrate::open(f.graph_image);
    if (!substrate) {
      std::fprintf(stderr, "rr_cli: cannot open graph image %s\n",
                   f.graph_image.c_str());
      return 2;
    }
    if (f.shards > 1) {
      std::fprintf(stderr,
                   "rr_cli: --shards does not apply to --graph-image runs; "
                   "stepping sequentially\n");
    }
  }

  std::unique_ptr<rr::sim::Engine> engine;
  std::string descriptor;
  rr::sim::CycleJumpOptions cj_options;
  cj_options.persist_hint = f.cycle_hint == "on";
  if (!f.resume.empty()) {
    // Streaming parse: peak memory is one frame/field, so resuming an
    // out-of-core-sized checkpoint does not buffer the whole document.
    const auto parsed = rr::sim::parse_checkpoint_file(f.resume);
    if (!parsed) {
      std::fprintf(stderr, "rr_cli: malformed checkpoint %s\n",
                   f.resume.c_str());
      return 2;
    }
    if (cj_options.persist_hint) {
      // Adopt a persisted period: the wrapper skips probing and goes
      // straight to confirmation, which re-proves the cycle before any
      // leap (a stale hint is just a few wasted compare laps).
      if (const auto hint_text = parsed->state.raw("cycle.hint")) {
        if (const auto hint = rr::sim::decode_cycle_hint(*hint_text)) {
          cj_options.hint_period = hint->period;
        }
      }
    }
    if (substrate) {
      if (parsed->engine != std::string("rotor-router")) {
        std::fprintf(stderr,
                     "rr_cli: --graph-image resumes rotor-router checkpoints "
                     "only (checkpoint engine: %s)\n",
                     parsed->engine.c_str());
        return 2;
      }
      if (parsed->graph_descriptor != substrate->descriptor()) {
        std::fprintf(stderr,
                     "rr_cli: checkpoint graph '%s' does not match image "
                     "graph '%s'\n",
                     parsed->graph_descriptor.c_str(),
                     substrate->descriptor().c_str());
        return 2;
      }
      // Construct over the image with a placeholder agent, then restore;
      // deserialize_state rewrites every per-node field.
      auto rotor = std::make_unique<rr::core::RotorRouter>(
          substrate, std::vector<rr::graph::NodeId>{0});
      substrate->advise_sequential();
      if (!rotor->deserialize_state(parsed->state)) {
        std::fprintf(stderr, "rr_cli: checkpoint state does not fit image %s\n",
                     f.graph_image.c_str());
        return 2;
      }
      substrate->advise_random();
      engine = std::move(rotor);
    } else if (f.engine == "dist") {
      // Resume *distributed*: the checkpoint is a plain rotor-router
      // document (the field sets are interchangeable), restored through
      // the dist spec so the workers come up scattered at the saved
      // round — including with a different worker count than the run
      // that wrote it.
      const auto d = rr::graph::GraphDescriptor::parse(parsed->graph_descriptor);
      rr::sim::EngineConfig config;
      if (!d || !fill_dist_config(f, config)) return 2;
      std::string error;
      engine = rr::sim::EngineRegistry::instance().restore(
          "dist", *d, parsed->state, config, &error);
      if (!engine) {
        std::fprintf(stderr, "rr_cli: %s\n", error.c_str());
        return 2;
      }
    } else {
      const auto* spec =
          rr::sim::EngineRegistry::instance().find(parsed->engine);
      if (f.shards > 1 && (!spec || !spec->supports_shards)) {
        std::fprintf(stderr,
                     "rr_cli: --shards only applies to shard-capable "
                     "engines; resuming %s sequentially\n",
                     parsed->engine.c_str());
      }
      engine = rr::sim::restore_checkpoint_sharded(*parsed, f.shards);
      if (!engine) {
        std::fprintf(stderr, "rr_cli: malformed checkpoint %s\n",
                     f.resume.c_str());
        return 2;
      }
    }
    descriptor = parsed->graph_descriptor;
    std::printf("resumed %s on '%s' at t=%llu\n", engine->engine_name(),
                descriptor.c_str(),
                static_cast<unsigned long long>(engine->time()));
  } else if (substrate) {
    if (f.engine != "rotor") {
      std::fprintf(stderr,
                   "rr_cli: --graph-image drives the rotor engine "
                   "(got --engine %s)\n",
                   f.engine.c_str());
      return 2;
    }
    descriptor = substrate->descriptor();
    engine = std::make_unique<rr::core::RotorRouter>(
        substrate, spread_agents(substrate->num_nodes(), f.k));
    substrate->advise_random();
    std::printf("image %s: '%s' %llu nodes, %.2f GB mapped\n",
                f.graph_image.c_str(), descriptor.c_str(),
                static_cast<unsigned long long>(substrate->num_nodes()),
                static_cast<double>(substrate->image_bytes()) / (1u << 30));
  } else {
    descriptor = topo_descriptor(f);
    engine = build_engine(f, descriptor);
    if (!engine) return 2;
  }
  // Kept across the cycle-jump wrap so the halt check below still reaches
  // the coordinator.
  auto* dist_engine =
      dynamic_cast<rr::core::DistributedRotorRouter*>(engine.get());
  // Wrap before arming auto-checkpoints: the wrapper schedules leaps and
  // dense chunks against its own checkpoint marks, so marks fire at the
  // exact rounds (and with the exact bytes) a dense run would produce.
  const auto cj_mode = rr::sim::cycle_jump_mode_from_name(f.cycle_jump);
  std::string cj_error;
  engine = rr::sim::wrap_cycle_jump(std::move(engine), *cj_mode, cj_options,
                                    &cj_error);
  if (!engine) {
    std::fprintf(stderr, "rr_cli: %s\n", cj_error.c_str());
    return 2;
  }
  if (f.checkpoint_every > 0) {
    if (f.checkpoint.empty()) {
      std::fprintf(stderr, "rr_cli: --checkpoint-every needs --checkpoint\n");
      return 2;
    }
    engine->set_auto_checkpoint(
        f.checkpoint_every,
        rr::sim::checkpoint_file_sink(f.checkpoint, descriptor, format));
  }
  const std::uint64_t rounds = f.rounds ? f.rounds : engine->num_nodes();
  engine->run(rounds);
  if (dist_engine != nullptr && dist_engine->halted()) {
    std::fprintf(stderr,
                 "rr_cli: distributed run halted at t=%llu (a worker died); "
                 "resume from the last periodic checkpoint with "
                 "`rr_cli run --engine dist --resume FILE`\n",
                 static_cast<unsigned long long>(dist_engine->time()));
    return 1;
  }
  std::printf("engine=%s graph='%s' t=%llu covered=%u/%u hash=%016llx\n",
              engine->engine_name(), descriptor.c_str(),
              static_cast<unsigned long long>(engine->time()),
              engine->covered_count(), engine->num_nodes(),
              static_cast<unsigned long long>(engine->config_hash()));
  if (!f.checkpoint.empty()) {
    if (substrate) substrate->advise_sequential();
    const std::string text =
        rr::sim::write_checkpoint(*engine, descriptor, format);
    // Atomic like the auto-checkpoint sink: a crash mid-write must not
    // destroy the last good checkpoint at the same path.
    if (!rr::sim::save_checkpoint_file_atomic(f.checkpoint, text)) {
      std::fprintf(stderr, "rr_cli: cannot write %s\n", f.checkpoint.c_str());
      return 2;
    }
    std::printf("checkpoint: %s (%zu bytes)\n", f.checkpoint.c_str(),
                text.size());
  }
  return 0;
}

int cmd_build_graph(const Flags& f) {
  if (f.out.empty()) {
    std::fprintf(stderr, "rr_cli: build-graph needs --out FILE\n");
    return 2;
  }
  const std::string descriptor = topo_descriptor(f);
  std::string error;
  if (!rr::graph::MappedSubstrate::build(descriptor, f.out, &error)) {
    std::fprintf(stderr, "rr_cli: build-graph: %s\n", error.c_str());
    return 2;
  }
  const auto s = rr::graph::MappedSubstrate::open(f.out);
  if (!s) {
    std::fprintf(stderr, "rr_cli: built image fails validation: %s\n",
                 f.out.c_str());
    return 2;
  }
  std::printf("image %s: '%s' nodes=%llu arcs=%llu bytes=%llu\n",
              f.out.c_str(), s->descriptor().c_str(),
              static_cast<unsigned long long>(s->num_nodes()),
              static_cast<unsigned long long>(s->num_arcs()),
              static_cast<unsigned long long>(s->image_bytes()));
  return 0;
}

int cmd_convert(int argc, char** argv) {
  if (argc < 4 || argv[2][0] == '-' || argv[3][0] == '-') return usage();
  const std::string in_path = argv[2];
  const std::string out_path = argv[3];
  Flags f;
  if (!parse_flags(argc, argv, 4, f)) return 2;
  rr::sim::CkptFormat format;
  if (!parse_ckpt_format(f.ckpt_format, format)) return 2;
  const auto parsed = rr::sim::parse_checkpoint_file(in_path);
  if (!parsed) {
    std::fprintf(stderr, "rr_cli: malformed checkpoint %s\n", in_path.c_str());
    return 2;
  }
  // Transcode through a restored engine rather than field-by-field: the
  // engine re-serializes its canonical field set, so the output is
  // byte-identical to a checkpoint written directly in the target format.
  auto engine = rr::sim::restore_checkpoint(*parsed);
  if (!engine) {
    std::fprintf(stderr, "rr_cli: cannot restore %s (engine %s)\n",
                 in_path.c_str(), parsed->engine.c_str());
    return 2;
  }
  const std::string text =
      rr::sim::write_checkpoint(*engine, parsed->graph_descriptor, format);
  if (!rr::sim::save_checkpoint_file_atomic(out_path, text)) {
    std::fprintf(stderr, "rr_cli: cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("converted %s -> %s (%s, %zu bytes)\n", in_path.c_str(),
              out_path.c_str(), f.ckpt_format.c_str(), text.size());
  return 0;
}

int cmd_cover(const Flags& f) {
  rr::core::RingConfig config;
  if (!build_config(f, config)) return 2;
  const auto cover = rr::core::ring_cover_time(config);
  std::printf("config: %s\n", rr::core::to_text(config).substr(0, 96).c_str());
  if (cover == rr::core::kRingNotCovered) {
    std::printf("cover: not covered within the default cap\n");
    return 1;
  }
  std::printf("cover: %llu rounds (n^2/log2k = %.0f, (n/k)^2 = %.0f)\n",
              static_cast<unsigned long long>(cover),
              static_cast<double>(f.n) * f.n /
                  (f.k > 1 ? std::log2(static_cast<double>(f.k)) : 1.0),
              static_cast<double>(f.n) / f.k * f.n / f.k);
  return 0;
}

int cmd_return(const Flags& f) {
  rr::core::RingConfig config;
  if (!build_config(f, config)) return 2;
  const auto ret = rr::core::ring_return_time(config);
  std::printf("return: max gap %llu, mean gap %.1f (n/k = %u); covered=%s\n",
              static_cast<unsigned long long>(ret.max_gap), ret.mean_gap,
              f.n / f.k, ret.covered ? "yes" : "no");
  return 0;
}

int cmd_trace(Flags f) {
  if (!f.graph.empty() || f.topo != "ring") {
    // Non-ring substrates draw through the engine-generic renderer; torus
    // and grid runs lay out as 2-D blocks (one line per row).
    const std::string descriptor = topo_descriptor(f);
    auto engine = build_engine(f, descriptor);
    if (!engine) return 2;
    const auto d = rr::graph::GraphDescriptor::parse(descriptor);
    rr::sim::TraceOptions opt;
    opt.rounds = f.rounds ? f.rounds : 4ULL * engine->num_nodes();
    opt.stride = f.stride ? f.stride : 1;
    if (d->kind == "torus" || d->kind == "grid") {
      // Descriptor args were validated by GraphDescriptor::parse; the
      // strict parse keeps this from silently drawing width-0 layouts
      // if that ever changes.
      opt.width = static_cast<rr::graph::NodeId>(
          rr::parse_u64(d->args[0]).value_or(0));
    }
    std::fputs(
        rr::sim::format_trace(rr::sim::record_trace(*engine, opt)).c_str(),
        stdout);
    return 0;
  }
  rr::core::RingConfig config;
  if (!build_config(f, config)) return 2;
  if (f.rounds == 0) f.rounds = 4ULL * f.n;
  rr::core::RingRotorRouter engine = config.make();
  rr::core::TraceOptions opt;
  opt.rounds = f.rounds;
  opt.stride = f.stride ? f.stride : 1;
  opt.domains = f.domains;
  std::fputs(rr::core::format_trace(rr::core::record_trace(engine, opt)).c_str(),
             stdout);
  return 0;
}

int cmd_config(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto config = rr::core::ring_config_from_text(argv[2]);
  if (!config) {
    std::fprintf(stderr, "rr_cli: malformed config text\n");
    return 2;
  }
  Flags f;
  if (!parse_flags(argc, argv, 3, f)) return 2;
  rr::core::RingRotorRouter engine = config->make();
  const std::uint64_t rounds = f.rounds ? f.rounds : 1;
  engine.run(rounds);
  std::printf("after %llu rounds: %s\n",
              static_cast<unsigned long long>(rounds),
              rr::core::to_text(rr::core::checkpoint(engine)).c_str());
  std::printf("covered %u/%u nodes\n", engine.covered_count(),
              engine.num_nodes());
  return 0;
}

int cmd_lockin(const Flags& f) {
  rr::graph::Graph g = [&] {
    if (f.topo == "grid") return rr::graph::grid(f.size, f.size);
    if (f.topo == "torus") return rr::graph::torus(f.size, f.size);
    if (f.topo == "clique") return rr::graph::clique(f.size);
    if (f.topo == "hypercube") return rr::graph::hypercube(hypercube_dim(f.size));
    if (f.topo == "tree") return rr::graph::binary_tree(f.size);
    return rr::graph::ring(f.size);
  }();
  const auto res = rr::core::single_agent_lock_in(g, 0);
  if (!res.locked_in) {
    std::printf("lockin: not found within cap (%llu steps)\n",
                static_cast<unsigned long long>(res.steps_simulated));
    return 1;
  }
  std::printf("lockin: t=%llu, bound 2D|E|=%llu (%s, %u nodes, %zu edges)\n",
              static_cast<unsigned long long>(res.lock_in_time),
              static_cast<unsigned long long>(2ULL * g.diameter() *
                                              g.num_edges()),
              f.topo.c_str(), g.num_nodes(), g.num_edges());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "engines") return cmd_engines();
  if (cmd == "config") return cmd_config(argc, argv);
  if (cmd == "convert") return cmd_convert(argc, argv);
  Flags f;
  if (!parse_flags(argc, argv, 2, f)) return 2;
  if (f.engine == "help" || f.engine == "list") return cmd_engines();
  if (cmd == "run") return cmd_run(f);  // validates against its substrate
  if (cmd == "build-graph") return cmd_build_graph(f);
  if (f.n < 3 || f.k < 1 || f.k > f.n) {
    std::fprintf(stderr, "rr_cli: need n >= 3 and 1 <= k <= n\n");
    return 2;
  }
  if (cmd == "cover") return cmd_cover(f);
  if (cmd == "return") return cmd_return(f);
  if (cmd == "trace") return cmd_trace(f);
  if (cmd == "lockin") return cmd_lockin(f);
  return usage();
}
