// rr_cli: command-line driver for one-off rotor-ring experiments.
//
//   rr_cli cover   --n 1024 --k 8 --place one|spaced|random --ptr toward|negative|uniform|random [--seed S]
//   rr_cli return  (same flags)                       measure the limit refresh time
//   rr_cli trace   --n 72 --k 4 --rounds 200 --stride 8 [--domains]   ASCII space-time diagram
//   rr_cli config  "ring n=12 agents=0,6 pointers=cccccccccccc" [--rounds R]
//   rr_cli lockin  --topo ring|grid|torus|clique|hypercube|tree --size 64
//
// Exit code 0 on success, 2 on usage errors (so scripts can distinguish).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.hpp"
#include "core/cover_time.hpp"
#include "core/initializers.hpp"
#include "core/limit_cycle.hpp"
#include "core/snapshot.hpp"
#include "core/trace.hpp"
#include "graph/generators.hpp"

namespace {

struct Flags {
  rr::core::NodeId n = 1024;
  std::uint32_t k = 8;
  std::string place = "spaced";
  std::string ptr = "negative";
  std::uint64_t seed = 1;
  std::uint64_t rounds = 0;
  std::uint64_t stride = 1;
  bool domains = false;
  std::string topo = "ring";
  rr::graph::NodeId size = 64;
};

int usage() {
  std::fprintf(stderr,
               "usage: rr_cli <cover|return|trace|config|lockin> [flags]\n"
               "  common flags: --n N --k K --place one|spaced|random"
               " --ptr toward|negative|uniform|random --seed S\n"
               "  trace: --rounds R --stride S --domains\n"
               "  lockin: --topo ring|grid|torus|clique|hypercube|tree"
               " --size N\n");
  return 2;
}

bool parse_flags(int argc, char** argv, int start, Flags& f) {
  for (int i = start; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rr_cli: %s needs a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--domains") {
      f.domains = true;
    } else if (a == "--n") {
      const char* v = next("--n");
      if (!v) return false;
      f.n = static_cast<rr::core::NodeId>(std::strtoul(v, nullptr, 10));
    } else if (a == "--k") {
      const char* v = next("--k");
      if (!v) return false;
      f.k = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (a == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      f.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--rounds") {
      const char* v = next("--rounds");
      if (!v) return false;
      f.rounds = std::strtoull(v, nullptr, 10);
    } else if (a == "--stride") {
      const char* v = next("--stride");
      if (!v) return false;
      f.stride = std::strtoull(v, nullptr, 10);
    } else if (a == "--place") {
      const char* v = next("--place");
      if (!v) return false;
      f.place = v;
    } else if (a == "--ptr") {
      const char* v = next("--ptr");
      if (!v) return false;
      f.ptr = v;
    } else if (a == "--topo") {
      const char* v = next("--topo");
      if (!v) return false;
      f.topo = v;
    } else if (a == "--size") {
      const char* v = next("--size");
      if (!v) return false;
      f.size = static_cast<rr::graph::NodeId>(std::strtoul(v, nullptr, 10));
    } else {
      std::fprintf(stderr, "rr_cli: unknown flag %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

bool build_config(const Flags& f, rr::core::RingConfig& config) {
  rr::Rng rng(f.seed);
  config.n = f.n;
  if (f.place == "one") {
    config.agents = rr::core::place_all_on_one(f.k, 0);
  } else if (f.place == "spaced") {
    config.agents = rr::core::place_equally_spaced(f.n, f.k);
  } else if (f.place == "random") {
    config.agents = rr::core::place_random(f.n, f.k, rng);
  } else {
    std::fprintf(stderr, "rr_cli: unknown placement %s\n", f.place.c_str());
    return false;
  }
  if (f.ptr == "toward") {
    config.pointers = rr::core::pointers_toward(f.n, config.agents.front());
  } else if (f.ptr == "negative") {
    config.pointers = rr::core::pointers_negative(f.n, config.agents);
  } else if (f.ptr == "uniform") {
    config.pointers = rr::core::pointers_uniform(f.n, rr::core::kClockwise);
  } else if (f.ptr == "random") {
    config.pointers = rr::core::pointers_random(f.n, rng);
  } else {
    std::fprintf(stderr, "rr_cli: unknown pointer init %s\n", f.ptr.c_str());
    return false;
  }
  return true;
}

int cmd_cover(const Flags& f) {
  rr::core::RingConfig config;
  if (!build_config(f, config)) return 2;
  const auto cover = rr::core::ring_cover_time(config);
  std::printf("config: %s\n", rr::core::to_text(config).substr(0, 96).c_str());
  if (cover == rr::core::kRingNotCovered) {
    std::printf("cover: not covered within the default cap\n");
    return 1;
  }
  std::printf("cover: %llu rounds (n^2/log2k = %.0f, (n/k)^2 = %.0f)\n",
              static_cast<unsigned long long>(cover),
              static_cast<double>(f.n) * f.n /
                  (f.k > 1 ? std::log2(static_cast<double>(f.k)) : 1.0),
              static_cast<double>(f.n) / f.k * f.n / f.k);
  return 0;
}

int cmd_return(const Flags& f) {
  rr::core::RingConfig config;
  if (!build_config(f, config)) return 2;
  const auto ret = rr::core::ring_return_time(config);
  std::printf("return: max gap %llu, mean gap %.1f (n/k = %u); covered=%s\n",
              static_cast<unsigned long long>(ret.max_gap), ret.mean_gap,
              f.n / f.k, ret.covered ? "yes" : "no");
  return 0;
}

int cmd_trace(Flags f) {
  rr::core::RingConfig config;
  if (!build_config(f, config)) return 2;
  if (f.rounds == 0) f.rounds = 4ULL * f.n;
  rr::core::RingRotorRouter engine = config.make();
  rr::core::TraceOptions opt;
  opt.rounds = f.rounds;
  opt.stride = f.stride ? f.stride : 1;
  opt.domains = f.domains;
  std::fputs(rr::core::format_trace(rr::core::record_trace(engine, opt)).c_str(),
             stdout);
  return 0;
}

int cmd_config(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto config = rr::core::ring_config_from_text(argv[2]);
  if (!config) {
    std::fprintf(stderr, "rr_cli: malformed config text\n");
    return 2;
  }
  Flags f;
  if (!parse_flags(argc, argv, 3, f)) return 2;
  rr::core::RingRotorRouter engine = config->make();
  const std::uint64_t rounds = f.rounds ? f.rounds : 1;
  engine.run(rounds);
  std::printf("after %llu rounds: %s\n",
              static_cast<unsigned long long>(rounds),
              rr::core::to_text(rr::core::checkpoint(engine)).c_str());
  std::printf("covered %u/%u nodes\n", engine.covered_count(),
              engine.num_nodes());
  return 0;
}

int cmd_lockin(const Flags& f) {
  rr::graph::Graph g = [&] {
    if (f.topo == "grid") return rr::graph::grid(f.size, f.size);
    if (f.topo == "torus") return rr::graph::torus(f.size, f.size);
    if (f.topo == "clique") return rr::graph::clique(f.size);
    if (f.topo == "hypercube") {
      std::uint32_t d = 1;
      while ((1u << d) < f.size) ++d;
      return rr::graph::hypercube(d);
    }
    if (f.topo == "tree") return rr::graph::binary_tree(f.size);
    return rr::graph::ring(f.size);
  }();
  const auto res = rr::core::single_agent_lock_in(g, 0);
  if (!res.locked_in) {
    std::printf("lockin: not found within cap (%llu steps)\n",
                static_cast<unsigned long long>(res.steps_simulated));
    return 1;
  }
  std::printf("lockin: t=%llu, bound 2D|E|=%llu (%s, %u nodes, %zu edges)\n",
              static_cast<unsigned long long>(res.lock_in_time),
              static_cast<unsigned long long>(2ULL * g.diameter() *
                                              g.num_edges()),
              f.topo.c_str(), g.num_nodes(), g.num_edges());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "config") return cmd_config(argc, argv);
  Flags f;
  if (!parse_flags(argc, argv, 2, f)) return 2;
  if (f.n < 3 || f.k < 1 || f.k > f.n) {
    std::fprintf(stderr, "rr_cli: need n >= 3 and 1 <= k <= n\n");
    return 2;
  }
  if (cmd == "cover") return cmd_cover(f);
  if (cmd == "return") return cmd_return(f);
  if (cmd == "trace") return cmd_trace(f);
  if (cmd == "lockin") return cmd_lockin(f);
  return usage();
}
