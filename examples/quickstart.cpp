// Quickstart: deploy k rotor-router agents on an n-node ring, measure the
// cover time, watch the domains even out, and compare with k random walks.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart [n] [k]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/cover_time.hpp"
#include "core/domains.hpp"
#include "core/initializers.hpp"
#include "core/ring_rotor_router.hpp"
#include "sim/runner.hpp"
#include "walk/ring_walk.hpp"

int main(int argc, char** argv) {
  const rr::core::NodeId n = argc > 1 ? std::atoi(argv[1]) : 1024;
  const std::uint32_t k = argc > 2 ? std::atoi(argv[2]) : 8;

  std::printf("rotor-ring quickstart: n=%u nodes, k=%u agents\n\n", n, k);

  // 1) Worst-case initialization (Thm 1): all agents on node 0, every
  //    pointer aimed back at node 0.
  rr::core::RingConfig worst;
  worst.n = n;
  worst.agents = rr::core::place_all_on_one(k, 0);
  worst.pointers = rr::core::pointers_toward(n, 0);
  const std::uint64_t cover_worst = rr::core::ring_cover_time(worst);
  std::printf("cover time, all-on-one + adversarial pointers: %llu rounds"
              " (paper: Theta(n^2/log k))\n",
              static_cast<unsigned long long>(cover_worst));

  // 2) Best-case initialization (Thm 3): equally spaced agents.
  rr::core::RingConfig best;
  best.n = n;
  best.agents = rr::core::place_equally_spaced(n, k);
  best.pointers = rr::core::pointers_negative(n, best.agents);
  const std::uint64_t cover_best = rr::core::ring_cover_time(best);
  std::printf("cover time, equally spaced:                    %llu rounds"
              " (paper: Theta((n/k)^2))\n",
              static_cast<unsigned long long>(cover_best));

  // 3) Limit behaviour (Thm 6): after stabilization every node is visited
  //    every Theta(n/k) rounds.
  const auto ret = rr::core::ring_return_time(best);
  std::printf("return time (max inter-visit gap):             %llu rounds"
              " (paper: Theta(n/k) = ~%u)\n",
              static_cast<unsigned long long>(ret.max_gap), n / k);

  // 4) Domains: the visited ring partitions into per-agent domains whose
  //    sizes converge (Lemma 12).
  rr::core::RingRotorRouter engine = best.make();
  engine.run_until_covered(8ULL * n * n);
  engine.run(4ULL * n * n / k);
  const auto snapshot = rr::core::compute_domains(engine);
  std::printf("domains after stabilization: %zu domains, sizes in [%u, %u]"
              " (n/k = %u)\n",
              snapshot.domains.size(), snapshot.min_size(), snapshot.max_size(),
              n / k);

  // 5) The randomized baseline: k parallel random walks from the same
  //    placement (expectation over 10 trials, fanned across the batched
  //    runner's thread pool).
  rr::sim::Runner runner;
  const auto walk_stats = runner.stats(10, [&](std::uint64_t trial) {
    rr::walk::RingRandomWalks walks(n, best.agents, 1000 + trial);
    return static_cast<double>(walks.run_until_covered(~0ULL / 2));
  });
  std::printf("k random walks from the same placement:        %.0f rounds"
              " (mean of %llu trials, +-%.0f at 95%%)\n",
              walk_stats.mean(),
              static_cast<unsigned long long>(walk_stats.count()),
              walk_stats.ci95());
  return 0;
}
