// rr_noded: distributed rotor-router worker process (dist layer).
//
//   rr_noded --dist-fd N                 serve an inherited socketpair fd
//                                        (how the rr_cli coordinator
//                                        fork/execs its workers)
//   rr_noded --connect PATH              connect to a coordinator's
//                                        --dist-socket AF_UNIX path
//   [--fail-after-scans N]               fault-injection: drop the
//                                        connection at the N-th kScan
//                                        (crash-recovery test lanes)
//
// The process is one blocking worker_serve loop: it receives its shard
// assignment in kInit and exits when the coordinator shuts down or the
// socket closes. Exit code 0 on a clean shutdown/EOF, 1 on protocol
// errors, 2 on usage errors or a rejected init (matching rr_cli's
// usage-error convention).

#include <sys/socket.h>
#include <sys/un.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/parse.hpp"
#include "dist/worker.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: rr_noded [--dist-fd N | --connect PATH]"
               " [--fail-after-scans N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t dist_fd = ~std::uint64_t{0};
  std::string connect_path;
  std::uint64_t fail_after = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rr_noded: %s needs a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--dist-fd") {
      const char* v = next("--dist-fd");
      // An fd is a small non-negative integer; 3 is the first value an
      // inherited descriptor can land on after stdio.
      if (!v || !rr::parse_flag_u64_range("rr_noded", "--dist-fd", v, 3,
                                          1u << 20, dist_fd)) {
        return 2;
      }
    } else if (a == "--connect") {
      const char* v = next("--connect");
      if (!v) return 2;
      connect_path = v;
    } else if (a == "--fail-after-scans") {
      const char* v = next("--fail-after-scans");
      if (!v || !rr::parse_flag_u64("rr_noded", "--fail-after-scans", v,
                                    fail_after)) {
        return 2;
      }
    } else {
      std::fprintf(stderr, "rr_noded: unknown flag %s\n", a.c_str());
      return 2;
    }
  }
  const bool have_fd = dist_fd != ~std::uint64_t{0};
  if (have_fd == !connect_path.empty()) return usage();

  int fd;
  if (have_fd) {
    fd = static_cast<int>(dist_fd);
  } else {
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (connect_path.size() >= sizeof(sa.sun_path)) {
      std::fprintf(stderr, "rr_noded: --connect path too long\n");
      return 2;
    }
    std::memcpy(sa.sun_path, connect_path.c_str(), connect_path.size() + 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
      std::fprintf(stderr, "rr_noded: cannot connect to %s: %s\n",
                   connect_path.c_str(), std::strerror(errno));
      return 2;
    }
  }
  return rr::dist::worker_serve(fd, fail_after);
}
