#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and flag metric regressions.

Used by CI to diff the current commit's bench JSONs (bench_perf.json,
bench_ckpt_io.json, ...) against the previous commit's uploaded
artifacts. Each entry carries one metric key from the METRICS table
below; a regression is a drop in a higher-is-better metric (throughput)
or a rise in a lower-is-better one (checkpoint bytes/node, peak RSS) of
at least --threshold, and emits a GitHub Actions ::warning:: annotation.
Samples fold to medians per (name, metric) pair, so per-QoS-class
latency tails (bench_server's Server/mixed/<policy>/<class>_step rows
under p99_seconds) diff independently: an interactive-tail regression is
flagged by name even when the batch tail and every throughput row hold.
Exit code is always 0 — the diff annotates, it does not gate (hot-loop
noise on shared runners would make a hard gate flaky); a human decides
whether a flagged change is real.

Usage: bench_diff.py previous.json current.json [--threshold 0.10]
"""

import argparse
import json
import statistics
import sys

# Metric key -> regression direction. "higher" means a drop regresses
# (throughput); "lower" means a rise regresses (size/footprint budgets,
# e.g. rr-ckpt v2 density creeping back toward the text format's cost).
METRICS = {
    "items_per_second": "higher",
    "bytes_per_node": "lower",
    "rss_bytes": "lower",
    "p99_seconds": "lower",
}


def median_metrics(path):
    """(name, metric) -> median value over that benchmark's entries."""
    with open(path) as f:
        data = json.load(f)
    samples = {}
    for bench in data.get("benchmarks", []):
        # Skip explicit aggregate rows (mean/median/stddev of repetitions);
        # we fold repetitions ourselves so both shapes are handled.
        if bench.get("run_type") == "aggregate":
            continue
        for metric in METRICS:
            value = bench.get(metric)
            if value is None:
                continue
            samples.setdefault((bench["name"], metric), []).append(value)
    return {key: statistics.median(vals) for key, vals in samples.items()}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("previous")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative change that counts as a regression")
    args = parser.parse_args()

    try:
        prev = median_metrics(args.previous)
        curr = median_metrics(args.current)
    except (OSError, ValueError, KeyError) as e:
        print(f"::notice::bench diff skipped (unreadable input: {e})")
        return 0

    regressions = []
    for name, metric in sorted(curr):
        key = (name, metric)
        if key not in prev or prev[key] <= 0:
            continue
        ratio = curr[key] / prev[key]
        direction = METRICS[metric]
        regressed = (ratio <= 1.0 - args.threshold if direction == "higher"
                     else ratio >= 1.0 + args.threshold)
        marker = ""
        if regressed:
            marker = "  <-- REGRESSION"
            regressions.append((name, metric, prev[key], curr[key], ratio))
        print(f"{name} [{metric}]: {prev[key]:.3e} -> {curr[key]:.3e} "
              f"({(ratio - 1.0) * 100.0:+.1f}%){marker}")

    for name, metric, p, c, ratio in regressions:
        verb = ("fell" if METRICS[metric] == "higher" else "rose")
        print(f"::warning title=bench regression::{name} {metric} {verb} "
              f"{abs(ratio - 1.0) * 100.0:.1f}% vs previous commit "
              f"({p:.3e} -> {c:.3e})")
    if regressions:
        print(f"::notice::{len(regressions)} benchmark metric(s) regressed "
              f">= {args.threshold * 100.0:.0f}%; see warnings")
    else:
        print("::notice::no benchmark metric regressed beyond "
              f"{args.threshold * 100.0:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
