#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and flag throughput regressions.

Used by CI to diff the current commit's bench_perf.json against the
previous commit's uploaded artifact: any benchmark whose median
items_per_second (agent-steps/s) dropped by at least --threshold emits a
GitHub Actions ::warning:: annotation. Exit code is always 0 — the diff
annotates, it does not gate (hot-loop noise on shared runners would make
a hard gate flaky); a human decides whether a flagged drop is real.

Usage: bench_diff.py previous.json current.json [--threshold 0.10]
"""

import argparse
import json
import statistics
import sys


def median_throughput(path):
    """name -> median items_per_second over that benchmark's entries."""
    with open(path) as f:
        data = json.load(f)
    samples = {}
    for bench in data.get("benchmarks", []):
        # Skip explicit aggregate rows (mean/median/stddev of repetitions);
        # we fold repetitions ourselves so both shapes are handled.
        if bench.get("run_type") == "aggregate":
            continue
        rate = bench.get("items_per_second")
        if rate is None:
            continue
        samples.setdefault(bench["name"], []).append(rate)
    return {name: statistics.median(rates) for name, rates in samples.items()}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("previous")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative drop that counts as a regression")
    args = parser.parse_args()

    try:
        prev = median_throughput(args.previous)
        curr = median_throughput(args.current)
    except (OSError, ValueError, KeyError) as e:
        print(f"::notice::bench diff skipped (unreadable input: {e})")
        return 0

    regressions = []
    for name in sorted(curr):
        if name not in prev or prev[name] <= 0:
            continue
        ratio = curr[name] / prev[name]
        marker = ""
        if ratio <= 1.0 - args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append((name, prev[name], curr[name], ratio))
        print(f"{name}: {prev[name]:.3e} -> {curr[name]:.3e} "
              f"({(ratio - 1.0) * 100.0:+.1f}%){marker}")

    for name, p, c, ratio in regressions:
        print(f"::warning title=bench regression::{name} throughput fell "
              f"{(1.0 - ratio) * 100.0:.1f}% vs previous commit "
              f"({p:.3e} -> {c:.3e} items/s)")
    if regressions:
        print(f"::notice::{len(regressions)} benchmark(s) regressed >= "
              f"{args.threshold * 100.0:.0f}%; see warnings")
    else:
        print("::notice::no benchmark regressed beyond "
              f"{args.threshold * 100.0:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
