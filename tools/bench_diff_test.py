#!/usr/bin/env python3
"""Smoke tests for bench_diff.py (stdlib unittest; wired into ctest).

bench_diff is CI-critical glue with no compiler watching over it: these
tests pin the median folding (repetitions and aggregate rows), the
regression threshold math, the exit-code contract (always 0 — the diff
annotates, it never gates), and robustness to unreadable input.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_diff


def write_json(directory, name, benchmarks):
    path = os.path.join(directory, name)
    with open(path, "w") as f:
        json.dump({"benchmarks": benchmarks}, f)
    return path


def entry(name, rate, run_type="iteration"):
    return {"name": name, "run_type": run_type, "items_per_second": rate}


def run_main(argv):
    out = io.StringIO()
    old = sys.argv
    sys.argv = ["bench_diff.py"] + argv
    try:
        with redirect_stdout(out):
            code = bench_diff.main()
    finally:
        sys.argv = old
    return code, out.getvalue()


class MedianFolding(unittest.TestCase):
    def test_repetitions_fold_to_median(self):
        with tempfile.TemporaryDirectory() as d:
            path = write_json(d, "a.json", [
                entry("BM_X", 100.0), entry("BM_X", 300.0),
                entry("BM_X", 200.0),
            ])
            self.assertEqual(bench_diff.median_throughput(path),
                             {"BM_X": 200.0})

    def test_aggregate_rows_and_rateless_entries_skipped(self):
        with tempfile.TemporaryDirectory() as d:
            path = write_json(d, "a.json", [
                entry("BM_X", 100.0),
                entry("BM_X_median", 999.0, run_type="aggregate"),
                {"name": "BM_NoRate", "run_type": "iteration"},
            ])
            self.assertEqual(bench_diff.median_throughput(path),
                             {"BM_X": 100.0})


class RegressionFlagging(unittest.TestCase):
    def diff(self, prev_rate, curr_rate, threshold="0.10"):
        with tempfile.TemporaryDirectory() as d:
            prev = write_json(d, "prev.json", [entry("BM_X", prev_rate)])
            curr = write_json(d, "curr.json", [entry("BM_X", curr_rate)])
            return run_main([prev, curr, "--threshold", threshold])

    def test_drop_beyond_threshold_warns_but_exits_zero(self):
        code, out = self.diff(100.0, 85.0)
        self.assertEqual(code, 0)  # advisory, never gates
        self.assertIn("::warning", out)
        self.assertIn("REGRESSION", out)

    def test_drop_within_threshold_is_quiet(self):
        code, out = self.diff(100.0, 95.0)
        self.assertEqual(code, 0)
        self.assertNotIn("::warning", out)
        self.assertIn("no benchmark regressed", out)

    def test_improvement_is_not_a_regression(self):
        code, out = self.diff(100.0, 150.0)
        self.assertEqual(code, 0)
        self.assertNotIn("REGRESSION", out)

    def test_new_benchmark_without_baseline_is_skipped(self):
        # A backend added this commit has no previous-artifact entry; the
        # diff must not warn (or crash) about it.
        with tempfile.TemporaryDirectory() as d:
            prev = write_json(d, "prev.json", [entry("BM_Old", 100.0)])
            curr = write_json(d, "curr.json", [
                entry("BM_Old", 100.0),
                entry("EulerianCirculation/torus/k8", 2.3e8),
            ])
            code, out = run_main([prev, curr])
            self.assertEqual(code, 0)
            self.assertNotIn("::warning", out)

    def test_unreadable_input_is_a_notice_not_a_failure(self):
        code, out = run_main(["/does/not/exist.json", "/also/missing.json"])
        self.assertEqual(code, 0)
        self.assertIn("bench diff skipped", out)

    def test_malformed_json_is_a_notice_not_a_failure(self):
        with tempfile.TemporaryDirectory() as d:
            bad = os.path.join(d, "bad.json")
            with open(bad, "w") as f:
                f.write("{not json")
            good = write_json(d, "good.json", [entry("BM_X", 1.0)])
            code, out = run_main([bad, good])
            self.assertEqual(code, 0)
            self.assertIn("bench diff skipped", out)


if __name__ == "__main__":
    unittest.main()
