#!/usr/bin/env python3
"""Smoke tests for bench_diff.py (stdlib unittest; wired into ctest).

bench_diff is CI-critical glue with no compiler watching over it: these
tests pin the median folding (repetitions and aggregate rows), the
regression threshold math in both metric directions (throughput drops
and bytes/node rises), the exit-code contract (always 0 — the diff
annotates, it never gates), and robustness to unreadable input.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_diff


def write_json(directory, name, benchmarks):
    path = os.path.join(directory, name)
    with open(path, "w") as f:
        json.dump({"benchmarks": benchmarks}, f)
    return path


def entry(name, rate, run_type="iteration", metric="items_per_second"):
    return {"name": name, "run_type": run_type, metric: rate}


def run_main(argv):
    out = io.StringIO()
    old = sys.argv
    sys.argv = ["bench_diff.py"] + argv
    try:
        with redirect_stdout(out):
            code = bench_diff.main()
    finally:
        sys.argv = old
    return code, out.getvalue()


class MedianFolding(unittest.TestCase):
    def test_repetitions_fold_to_median(self):
        with tempfile.TemporaryDirectory() as d:
            path = write_json(d, "a.json", [
                entry("BM_X", 100.0), entry("BM_X", 300.0),
                entry("BM_X", 200.0),
            ])
            self.assertEqual(bench_diff.median_metrics(path),
                             {("BM_X", "items_per_second"): 200.0})

    def test_aggregate_rows_and_rateless_entries_skipped(self):
        with tempfile.TemporaryDirectory() as d:
            path = write_json(d, "a.json", [
                entry("BM_X", 100.0),
                entry("BM_X_median", 999.0, run_type="aggregate"),
                {"name": "BM_NoRate", "run_type": "iteration"},
            ])
            self.assertEqual(bench_diff.median_metrics(path),
                             {("BM_X", "items_per_second"): 100.0})

    def test_metrics_fold_independently_per_key(self):
        # One benchmark name can carry several metric keys (the ckpt IO
        # bench publishes save throughput and bytes/node under one tag);
        # each (name, metric) pair folds on its own.
        with tempfile.TemporaryDirectory() as d:
            path = write_json(d, "a.json", [
                entry("CkptIO/v2", 5.0e7),
                entry("CkptIO/v2", 2.4, metric="bytes_per_node"),
                entry("CkptIO/v2", 2.6, metric="bytes_per_node"),
            ])
            self.assertEqual(bench_diff.median_metrics(path), {
                ("CkptIO/v2", "items_per_second"): 5.0e7,
                ("CkptIO/v2", "bytes_per_node"): 2.5,
            })


class RegressionFlagging(unittest.TestCase):
    def diff(self, prev_rate, curr_rate, threshold="0.10"):
        with tempfile.TemporaryDirectory() as d:
            prev = write_json(d, "prev.json", [entry("BM_X", prev_rate)])
            curr = write_json(d, "curr.json", [entry("BM_X", curr_rate)])
            return run_main([prev, curr, "--threshold", threshold])

    def test_drop_beyond_threshold_warns_but_exits_zero(self):
        code, out = self.diff(100.0, 85.0)
        self.assertEqual(code, 0)  # advisory, never gates
        self.assertIn("::warning", out)
        self.assertIn("REGRESSION", out)

    def test_drop_within_threshold_is_quiet(self):
        code, out = self.diff(100.0, 95.0)
        self.assertEqual(code, 0)
        self.assertNotIn("::warning", out)
        self.assertIn("no benchmark metric regressed", out)

    def test_improvement_is_not_a_regression(self):
        code, out = self.diff(100.0, 150.0)
        self.assertEqual(code, 0)
        self.assertNotIn("REGRESSION", out)

    def test_new_benchmark_without_baseline_is_skipped(self):
        # A backend added this commit has no previous-artifact entry; the
        # diff must not warn (or crash) about it.
        with tempfile.TemporaryDirectory() as d:
            prev = write_json(d, "prev.json", [entry("BM_Old", 100.0)])
            curr = write_json(d, "curr.json", [
                entry("BM_Old", 100.0),
                entry("EulerianCirculation/torus/k8", 2.3e8),
            ])
            code, out = run_main([prev, curr])
            self.assertEqual(code, 0)
            self.assertNotIn("::warning", out)

    def test_lower_is_better_metric_regresses_on_rise(self):
        # bytes_per_node growing past the threshold is a regression (the
        # v2 codec losing its density) even though the number went *up*.
        with tempfile.TemporaryDirectory() as d:
            prev = write_json(d, "prev.json",
                              [entry("CkptIO/v2", 2.4,
                                     metric="bytes_per_node")])
            curr = write_json(d, "curr.json",
                              [entry("CkptIO/v2", 3.0,
                                     metric="bytes_per_node")])
            code, out = run_main([prev, curr])
            self.assertEqual(code, 0)
            self.assertIn("REGRESSION", out)
            self.assertIn("rose", out)

    def test_p99_latency_regresses_on_rise(self):
        # bench_server publishes step-latency tails as p99_seconds; a
        # rising tail is a regression even though throughput may hold.
        with tempfile.TemporaryDirectory() as d:
            prev = write_json(d, "prev.json",
                              [entry("Server/evicting/step_latency", 0.10,
                                     metric="p99_seconds")])
            curr = write_json(d, "curr.json",
                              [entry("Server/evicting/step_latency", 0.25,
                                     metric="p99_seconds")])
            code, out = run_main([prev, curr])
            self.assertEqual(code, 0)
            self.assertIn("REGRESSION", out)
            self.assertIn("rose", out)

    def test_p99_latency_is_quiet_on_drop(self):
        with tempfile.TemporaryDirectory() as d:
            prev = write_json(d, "prev.json",
                              [entry("Server/evicting/step_latency", 0.25,
                                     metric="p99_seconds")])
            curr = write_json(d, "curr.json",
                              [entry("Server/evicting/step_latency", 0.10,
                                     metric="p99_seconds")])
            code, out = run_main([prev, curr])
            self.assertEqual(code, 0)
            self.assertNotIn("::warning", out)

    def test_lower_is_better_metric_is_quiet_on_drop(self):
        with tempfile.TemporaryDirectory() as d:
            prev = write_json(d, "prev.json",
                              [entry("CkptIO/v2", 3.0,
                                     metric="bytes_per_node")])
            curr = write_json(d, "curr.json",
                              [entry("CkptIO/v2", 2.4,
                                     metric="bytes_per_node")])
            code, out = run_main([prev, curr])
            self.assertEqual(code, 0)
            self.assertNotIn("::warning", out)

    def test_per_class_p99_tails_fold_independently(self):
        # bench_server's mixed-QoS lane publishes one p99 row per
        # (policy, class); repetitions of each row fold to their own
        # median, never across classes.
        with tempfile.TemporaryDirectory() as d:
            path = write_json(d, "a.json", [
                entry("Server/mixed/qos/interactive_step", 0.002,
                      metric="p99_seconds"),
                entry("Server/mixed/qos/interactive_step", 0.004,
                      metric="p99_seconds"),
                entry("Server/mixed/qos/batch_step", 0.300,
                      metric="p99_seconds"),
                entry("Server/mixed/qos/step_rounds_per_s", 1.0e7),
            ])
            self.assertEqual(bench_diff.median_metrics(path), {
                ("Server/mixed/qos/interactive_step", "p99_seconds"): 0.003,
                ("Server/mixed/qos/batch_step", "p99_seconds"): 0.300,
                ("Server/mixed/qos/step_rounds_per_s",
                 "items_per_second"): 1.0e7,
            })

    def test_interactive_tail_regression_flags_only_that_class(self):
        # The QoS scheduler's whole point is the interactive tail: if it
        # grows past threshold the diff must name that row, while a steady
        # batch tail stays quiet — one warning, aimed at the right class.
        with tempfile.TemporaryDirectory() as d:
            prev = write_json(d, "prev.json", [
                entry("Server/mixed/qos/interactive_step", 0.0002,
                      metric="p99_seconds"),
                entry("Server/mixed/qos/batch_step", 0.300,
                      metric="p99_seconds"),
            ])
            curr = write_json(d, "curr.json", [
                entry("Server/mixed/qos/interactive_step", 0.0009,
                      metric="p99_seconds"),
                entry("Server/mixed/qos/batch_step", 0.305,
                      metric="p99_seconds"),
            ])
            code, out = run_main([prev, curr])
            self.assertEqual(code, 0)
            self.assertIn(
                "::warning title=bench regression::"
                "Server/mixed/qos/interactive_step", out)
            self.assertNotIn("batch_step p99_seconds rose", out)

    def test_unreadable_input_is_a_notice_not_a_failure(self):
        code, out = run_main(["/does/not/exist.json", "/also/missing.json"])
        self.assertEqual(code, 0)
        self.assertIn("bench diff skipped", out)

    def test_malformed_json_is_a_notice_not_a_failure(self):
        with tempfile.TemporaryDirectory() as d:
            bad = os.path.join(d, "bad.json")
            with open(bad, "w") as f:
                f.write("{not json")
            good = write_json(d, "good.json", [entry("BM_X", 1.0)])
            code, out = run_main([bad, good])
            self.assertEqual(code, 0)
            self.assertIn("bench diff skipped", out)


if __name__ == "__main__":
    unittest.main()
