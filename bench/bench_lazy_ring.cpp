// E-LAZY (Sec. 2.2): throughput of the lazy domain-dynamics ring engine
// vs the dense ring engine in the post-transient regime.
//
// Once domains are established, the whole configuration is O(k) structure
// and the lazy engine advances run() by ballistic leaps between interaction
// events; the dense engine still pays O(k) array work *per round*. This
// driver measures rounds/s for both on a million-node ring, checks the
// engines agree on the final config_hash (the lazy engine is exact, not
// approximate), and prints the speed-up. Acceptance gate: >= 5x at
// n = 2^20, k <= 64 post-transient.

#include <chrono>
#include <cstdio>
#include <vector>

#include "analysis/table.hpp"
#include "core/initializers.hpp"
#include "core/lazy_ring_rotor_router.hpp"
#include "core/ring_rotor_router.hpp"
#include "sim/runner.hpp"

namespace {

using rr::core::LazyRingRotorRouter;
using rr::core::NodeId;
using rr::core::RingRotorRouter;

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Lazy O(k)-per-round ring engine vs dense ring engine",
      "Sec. 2.2 domain dynamics (Definition 1, Fig. 1)");

  const auto n = static_cast<NodeId>(rr::sim::scaled_pow2(1 << 20));
  const std::uint64_t transient = 4ULL * n;
  const std::uint64_t measured = rr::sim::scaled(1ULL << 22);

  rr::analysis::Table t({"k", "engine", "rounds/s", "speed-up", "hash match"});
  for (std::uint32_t k : {1u, 8u, 64u}) {
    const auto agents = rr::core::place_equally_spaced(n, k);
    RingRotorRouter dense(n, agents);
    LazyRingRotorRouter lazy(n, agents);

    // Burn through the transient so the measurement is the post-transient
    // regime (the lazy engine promotes itself along the way).
    dense.run(transient);
    lazy.run(transient);

    const double dense_s = seconds_of([&] { dense.run(measured); });
    const double lazy_s = seconds_of([&] { lazy.run(measured); });
    const bool match = dense.config_hash() == lazy.config_hash() &&
                       dense.time() == lazy.time();

    const double dense_rps = static_cast<double>(measured) / dense_s;
    const double lazy_rps = static_cast<double>(measured) / lazy_s;
    t.add_row({rr::analysis::Table::integer(k), "ring-rotor-router",
               rr::analysis::Table::num(dense_rps, 0), "1.0",
               match ? "yes" : "NO"});
    t.add_row({rr::analysis::Table::integer(k), "lazy-ring-rotor-router",
               rr::analysis::Table::num(lazy_rps, 0),
               rr::analysis::Table::num(lazy_rps / dense_rps, 1),
               match ? "yes" : "NO"});
  }
  t.print();
  std::printf(
      "\nBoth engines advance the same %llu rounds from the same"
      " post-transient state (n = %u); `hash match` certifies bit-equal"
      " final configurations. The lazy engine's advantage is leap length:"
      " between interaction events it advances every agent through half the"
      " minimum inter-agent gap in O(k log k) work.\n",
      static_cast<unsigned long long>(measured), n);
  return 0;
}
