// E-T1C (Thm 1, constructive): executes the proof's delayed deployment and
// reports the per-phase accounting, certifying Theta(n^2/log k) via the
// slow-down lemma (Lemma 3): B1 <= C(R[k]) <= total.

#include <cmath>
#include <cstdio>

#include "sim/runner.hpp"
#include "analysis/table.hpp"
#include "core/cover_time.hpp"
#include "core/theorem1_deployment.hpp"
#include "graph/generators.hpp"

namespace {

using rr::analysis::Table;
using rr::graph::NodeId;

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Theorem 1's delayed deployment, executed",
      "Phases A/B1/B2 with desirable configurations; Lemma 3 sandwich");

  const auto base_n = static_cast<NodeId>(rr::sim::scaled_pow2(512));
  const std::uint32_t k = 8;

  Table t({"n", "phase A", "B1 (tau)", "B2", "total (T)",
           "undelayed C(R[k])", "tau<=C<=T", "T/(n^2/log k)"});
  for (NodeId n = base_n; n <= 4 * base_n; n *= 2) {
    rr::core::Theorem1Deployment dep(n, k);
    const auto res = dep.run();
    if (!res.covered) {
      std::printf("n=%u: deployment did not cover within cap\n", n);
      continue;
    }
    // Undelayed reference on the same path initialization.
    rr::graph::Graph p = rr::graph::path(n);
    std::vector<std::uint32_t> left(n, 0);
    for (NodeId v = 1; v + 1 < n; ++v) left[v] = 1;
    rr::core::RotorRouter undelayed(p, std::vector<NodeId>(k, 0), left);
    const auto cover = undelayed.run_until_covered(64ULL * n * n);

    const bool sandwich =
        res.phase_b1_rounds <= cover && cover <= res.total_rounds;
    const double pred =
        static_cast<double>(n) * n / std::log2(static_cast<double>(k));
    t.add_row({Table::integer(n), Table::integer(res.phase_a_rounds),
               Table::integer(res.phase_b1_rounds),
               Table::integer(res.phase_b2_rounds),
               Table::integer(res.total_rounds), Table::integer(cover),
               sandwich ? "yes" : "NO!",
               Table::num(static_cast<double>(res.total_rounds) / pred, 3)});
  }
  t.print();
  std::printf(
      "\nThe deployment walks through desirable configurations (agent i at"
      " p_i*S, Lemma 13 profile); its fully-active B1 rounds lower-bound"
      " and its total upper-bounds the undelayed cover time (Lemma 3),"
      " yielding the Theta(n^2/log k) certificate of Thm 1.\n");
  return 0;
}
