// E-FAIR (Yanovski et al., cited in Sec. 1.2): "the multi-agent
// rotor-router eventually visits all edges of the graph a similar number
// of times."
//
// Using the arc-traversal identity of Sec. 1.3 (ceil((e_v - port)/deg)),
// this bench measures, across topologies and agent counts, the spread
// max/min of per-arc traversal counts after a long run — it converges
// toward 1, i.e. perfectly fair edge usage, which is also the fairness
// property motivating equitable strategies (Sec. 1.2).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "analysis/table.hpp"
#include "core/rotor_router.hpp"
#include "graph/generators.hpp"

namespace {

using rr::analysis::Table;
using rr::graph::Graph;
using rr::graph::NodeId;

struct Fairness {
  std::uint64_t min_arc;
  std::uint64_t max_arc;
};

Fairness arc_fairness(const rr::core::RotorRouter& rr) {
  const rr::graph::CsrGraph& g = rr.graph();  // engines expose the CSR view
  Fairness f{~std::uint64_t{0}, 0};
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t p = 0; p < g.degree(v); ++p) {
      const std::uint64_t c = rr.arc_traversals(v, p);
      f.min_arc = std::min(f.min_arc, c);
      f.max_arc = std::max(f.max_arc, c);
    }
  }
  return f;
}

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Edge-usage fairness of the multi-agent rotor-router",
      "Yanovski et al. [27] via the Sec. 1.3 arc-traversal identity");

  struct Topo {
    std::string name;
    Graph g;
  };
  std::vector<Topo> topologies;
  topologies.push_back({"ring(128)", rr::graph::ring(128)});
  topologies.push_back({"grid(10x10)", rr::graph::grid(10, 10)});
  topologies.push_back({"torus(10x10)", rr::graph::torus(10, 10)});
  topologies.push_back({"hypercube(6)", rr::graph::hypercube(6)});
  topologies.push_back({"binary_tree(127)", rr::graph::binary_tree(127)});
  topologies.push_back({"random_3_regular(100)",
                        rr::graph::random_regular(100, 3, 17)});

  const std::uint64_t horizon_multiplier = rr::sim::scaled(400, 50);

  for (std::uint32_t k : {1u, 4u, 16u}) {
    Table t({"topology (k=" + std::to_string(k) + ")", "rounds",
             "min arc count", "max arc count", "max/min"});
    for (const auto& topo : topologies) {
      std::vector<NodeId> agents(k, 0);
      rr::core::RotorRouter rr(topo.g, agents);
      const std::uint64_t rounds =
          horizon_multiplier * topo.g.num_arcs() / std::max(1u, k);
      rr.run(rounds);
      const auto f = arc_fairness(rr);
      t.add_row({topo.name, Table::integer(rounds),
                 Table::integer(f.min_arc), Table::integer(f.max_arc),
                 f.min_arc > 0
                     ? Table::num(static_cast<double>(f.max_arc) / f.min_arc, 3)
                     : "inf"});
    }
    t.print();
    std::printf("\n");
  }
  std::printf("max/min -> 1 with longer horizons: every arc is traversed"
              " once per 2|E| agent-steps in the limit, for any k — the"
              " deterministic analogue of the random walk's uniform edge"
              " frequency (Sec. 1 intro).\n");
  return 0;
}
