// E-RUNNER (ROADMAP "Runner scheduling"): contention cost of job claiming
// in sim::Runner at very large sweep sizes.
//
// A sweep of ~1e6 tiny trials used to pay one atomic fetch-add *per
// trial*; with every thread hammering the shared counter the claim path
// dominates the work. Chunked claiming (one fetch-add per ~64 jobs, the
// for_each default) amortizes that contention away. This driver measures
// jobs/s for a trivial per-job payload at chunk sizes 1 (the old
// behaviour), 64 (the auto default at this scale), and 512, and checks
// every job ran exactly once. Acceptance gate: auto chunking >= 2x the
// chunk=1 throughput on a multicore host.
//
// A second section times degenerate dispatches: a sweep of one job (or
// one chunk) used to pay the full dispatch round-trip — publish the
// batch, wake every worker, barrier on completion — for work only the
// caller would run anyway. The pool now runs those inline, so the
// numbers here are pure function-call rates. (Skewed sweeps at large
// chunk sizes are the pool's other residue; work stealing covers that
// and thread_pool_test.cpp pins it.)

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "analysis/table.hpp"
#include "common/hash.hpp"
#include "sim/runner.hpp"

namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Runner job-claim contention: chunked vs per-job fetch-add",
      "ROADMAP 'Runner scheduling' (atomic counter contended at ~1e6 tiny jobs)");

  rr::sim::Runner runner;
  const std::uint64_t jobs = rr::sim::scaled(1ULL << 20);
  // A payload of a few ns: one splitmix round written to the job's slot —
  // small enough that claim overhead is visible, real enough that the
  // compiler can't delete the loop.
  std::vector<std::uint64_t> out(jobs);
  const auto payload = [&](std::uint64_t i) { out[i] = rr::mix_seed(i, 31); };

  std::printf("threads=%u jobs=%llu\n\n", runner.num_threads(),
              static_cast<unsigned long long>(jobs));
  rr::analysis::Table t({"chunk", "jobs/s", "speed-up vs chunk=1"});
  double base = 0.0;
  for (std::uint64_t chunk : {1ULL, 64ULL, 512ULL}) {
    // Warm-up claim + three timed repetitions, best-of (claim contention
    // is noisy under scheduler jitter).
    runner.for_each(jobs, payload, chunk);
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      const double s = seconds_of([&] { runner.for_each(jobs, payload, chunk); });
      if (s < best) best = s;
    }
    for (std::uint64_t i = 0; i < jobs; i += jobs / 97 + 1) {
      if (out[i] != rr::mix_seed(i, 31)) {
        std::fprintf(stderr, "job %llu never ran!\n",
                     static_cast<unsigned long long>(i));
        return 1;
      }
    }
    const double rate = static_cast<double>(jobs) / best;
    if (chunk == 1) base = rate;
    char chunk_s[16], rate_s[32], speedup_s[16];
    std::snprintf(chunk_s, sizeof chunk_s, "%llu",
                  static_cast<unsigned long long>(chunk));
    std::snprintf(rate_s, sizeof rate_s, "%.2e", rate);
    std::snprintf(speedup_s, sizeof speedup_s, "%.2fx", rate / base);
    t.add_row({chunk_s, rate_s, speedup_s});
  }
  t.print();

  // Degenerate dispatches: 1 job, and a job count that fits one chunk.
  // Both take the inline fast path (no worker wake, no barrier), so the
  // dispatch rate should sit near a plain loop's call rate rather than a
  // condvar round-trip's.
  const std::uint64_t reps = rr::sim::scaled(1ULL << 16, 1024);
  rr::analysis::Table t2({"shape", "dispatches/s"});
  for (const auto& [label, tiny_jobs, tiny_chunk] :
       {std::tuple{"1 job (inline)", 1ULL, 0ULL},
        std::tuple{"64 jobs, chunk 64 (inline)", 64ULL, 64ULL}}) {
    const std::uint64_t n = tiny_jobs;
    const std::uint64_t c = tiny_chunk;
    const double s = seconds_of([&] {
      for (std::uint64_t r = 0; r < reps; ++r) {
        runner.for_each(n, payload, c);
      }
    });
    char rate_s[32];
    std::snprintf(rate_s, sizeof rate_s, "%.2e",
                  static_cast<double>(reps) / s);
    t2.add_row({label, rate_s});
  }
  t2.print();
  return 0;
}
