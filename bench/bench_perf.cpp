// P-1: engine micro-benchmarks (google-benchmark).
//
// Throughput of the three simulation engines: the ring-specialized
// rotor-router (O(#occupied)/round), the general-graph rotor-router (CSR-
// backed), and the batched ring random walks. Reported as agent-steps per
// second so the experiment-harness budgets in DESIGN.md can be checked.
//
// Also measured here: the cost of the sim::Engine facade (polymorphic
// stepping through a base pointer vs the concrete devirtualized loop) and
// the batched sim::Runner fanning cover-time trials across the pool.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/cover_time.hpp"
#include "core/initializers.hpp"
#include "core/ring_rotor_router.hpp"
#include "core/rotor_router.hpp"
#include "graph/descriptor.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "sim/registry.hpp"
#include "sim/runner.hpp"
#include "walk/random_walk.hpp"
#include "walk/ring_walk.hpp"

namespace {

void BM_RingRotorRouter(benchmark::State& state) {
  const auto n = static_cast<rr::core::NodeId>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  const auto agents = rr::core::place_equally_spaced(n, k);
  rr::core::RingRotorRouter rr(n, agents,
                               rr::core::pointers_negative(n, agents));
  for (auto _ : state) {
    rr.step();
    benchmark::DoNotOptimize(rr.covered_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}
BENCHMARK(BM_RingRotorRouter)
    ->Args({1 << 12, 8})
    ->Args({1 << 16, 8})
    ->Args({1 << 16, 64})
    ->Args({1 << 20, 64})
    ->Args({1 << 20, 1024});

void BM_GeneralRotorRouterTorus(benchmark::State& state) {
  const auto side = static_cast<rr::graph::NodeId>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  rr::graph::Graph g = rr::graph::torus(side, side);
  std::vector<rr::graph::NodeId> agents(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    agents[i] = (i * g.num_nodes()) / k;
  }
  rr::core::RotorRouter rr(g, agents);
  for (auto _ : state) {
    rr.step();
    benchmark::DoNotOptimize(rr.covered_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}
BENCHMARK(BM_GeneralRotorRouterTorus)->Args({64, 8})->Args({64, 64})
    ->Args({256, 64});

void BM_RingRandomWalks(benchmark::State& state) {
  const auto n = static_cast<rr::walk::NodeId>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  std::vector<rr::walk::NodeId> starts(k);
  for (std::uint32_t i = 0; i < k; ++i) starts[i] = (i * n) / k;
  rr::walk::RingRandomWalks walks(n, starts, 42);
  for (auto _ : state) {
    walks.step();
    benchmark::DoNotOptimize(walks.covered_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}
BENCHMARK(BM_RingRandomWalks)->Args({1 << 16, 8})->Args({1 << 16, 64})
    ->Args({1 << 20, 64});

void BM_CoverTimeWorstCase(benchmark::State& state) {
  // End-to-end: full worst-case cover run (Thm 1 instance).
  const auto n = static_cast<rr::core::NodeId>(state.range(0));
  const std::uint32_t k = 16;
  for (auto _ : state) {
    rr::core::RingConfig c{n, rr::core::place_all_on_one(k, 0),
                           rr::core::pointers_toward(n, 0)};
    benchmark::DoNotOptimize(rr::core::ring_cover_time(c));
  }
}
BENCHMARK(BM_CoverTimeWorstCase)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

// Stepping each engine through the sim::Engine base pointer: the price of
// the facade relative to the concrete benchmarks above (engines are final,
// so only truly polymorphic call sites pay it). The sweep enumerates the
// EngineRegistry, so a newly registered backend shows up here (and in the
// CI throughput diff) without touching this file. Every backend runs on a
// ring substrate — the one graph all seven support. The registry key is
// part of the benchmark *name* (not just the label): tools/bench_diff.py
// matches rows by name, so per-engine identity must survive re-ordering
// of the registration table.
void EnginePolymorphicStep(benchmark::State& state,
                           const rr::sim::EngineSpec* spec) {
  const rr::sim::NodeId n = 1 << 12;
  const std::uint32_t k = 8;
  rr::sim::EngineConfig config;
  config.agents = rr::core::place_equally_spaced(n, k);
  config.seed = 42;
  std::string error;
  auto engine = rr::sim::EngineRegistry::instance().create(
      spec->name, rr::graph::GraphDescriptor::ring(n), config, &error);
  if (!engine) {
    state.SkipWithError(error.c_str());
    return;
  }
  for (auto _ : state) {
    engine->step();
    benchmark::DoNotOptimize(engine->covered_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
  state.SetLabel(engine->engine_name());
}
const int kEngineSweepRegistered = [] {
  for (const auto* spec : rr::sim::EngineRegistry::instance().list()) {
    benchmark::RegisterBenchmark(
        ("BM_EnginePolymorphicStep/" + spec->name).c_str(),
        EnginePolymorphicStep, spec);
  }
  return 0;
}();

// The batched Runner fanning full cover-time trials (engine factory per
// trial) across the thread pool: throughput of the experiment harness
// itself, in covers per second.
void BM_RunnerCoverBatch(benchmark::State& state) {
  const auto trials = static_cast<std::uint64_t>(state.range(0));
  const auto descriptor = rr::graph::GraphDescriptor::torus(32, 32);
  const auto& registry = rr::sim::EngineRegistry::instance();
  rr::sim::Runner runner;
  for (auto _ : state) {
    auto stats = runner.cover_stats(
        trials,
        [&](std::uint64_t trial) -> std::unique_ptr<rr::sim::Engine> {
          rr::sim::EngineConfig config;
          config.agents = {0};
          config.seed = 1000 + trial;
          return registry.create(trial % 2 == 0 ? "rotor" : "walks",
                                 descriptor, config);
        },
        ~0ULL / 2);
    benchmark::DoNotOptimize(stats.mean());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trials));
  state.SetLabel("threads=" + std::to_string(runner.num_threads()));
}
BENCHMARK(BM_RunnerCoverBatch)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
