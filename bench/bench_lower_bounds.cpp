// E-LB (Thm 4 + Thm 1 lower bounds): the adversary's power.
//
// Thm 4: for ANY set of initial agent locations (n >= 440 k^2) there is a
// pointer arrangement forcing cover time Omega((n/k)^2). We implement the
// construction from the proof: find a remote vertex (Definition 2), and
// initialize all pointers negatively (toward the nearest agent). The bench
// compares, for several placements, the adversarial cover time against the
// most benign arrangement, and checks the Omega((n/k)^2) floor.
//
// Also verified here: Lemma 15's claim that remote vertices abound
// (>= ~0.8 n), which the Thm 4 proof relies on.

#include <cmath>
#include <cstdio>
#include <vector>

#include "sim/runner.hpp"
#include "analysis/table.hpp"
#include "common/rng.hpp"
#include "core/cover_time.hpp"
#include "core/initializers.hpp"

namespace {

using rr::analysis::Table;
using rr::core::NodeId;
using rr::core::RingConfig;

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Adversarial lower bounds for the rotor-router",
      "Thm 4 (Omega((n/k)^2) for any placement) and Lemma 15 (remote vertices)");

  const auto n = static_cast<NodeId>(rr::sim::scaled_pow2(4096));
  const std::uint32_t k = 8;
  rr::Rng rng(2718);

  // --- Thm 4 across placements. ---
  {
    Table t({"placement", "benign cover", "adversarial cover",
             "adv/(n/k)^2", "slowdown"});
    const double floor = std::pow(static_cast<double>(n) / k, 2.0);
    auto row = [&](const char* name, std::vector<NodeId> agents) {
      RingConfig benign{n, agents, rr::core::pointers_uniform(n, 0)};
      const double cb = static_cast<double>(rr::core::ring_cover_time(benign));
      const auto adv = rr::core::adversarial_remote_init(n, agents);
      RingConfig hard{n, agents, adv.pointers};
      const double ca = static_cast<double>(rr::core::ring_cover_time(hard));
      t.add_row({name, Table::integer(static_cast<std::uint64_t>(cb)),
                 Table::integer(static_cast<std::uint64_t>(ca)),
                 Table::num(ca / floor, 3), Table::num(ca / cb, 1)});
    };
    row("equally spaced", rr::core::place_equally_spaced(n, k));
    row("random placement", rr::core::place_random(n, k, rng));
    row("two clusters", [&] {
      std::vector<NodeId> a = rr::core::place_clustered(n, k / 2, n / 4, 5, rng);
      const auto b = rr::core::place_clustered(n, k / 2, 3 * n / 4, 5, rng);
      a.insert(a.end(), b.begin(), b.end());
      return a;
    }());
    t.print();
    std::printf("\nEvery adversarial cover is >= a constant times (n/k)^2"
                " = %.2e (Thm 4); benign pointers can be much faster.\n\n",
                floor);
  }

  // --- Lemma 15: remote vertices are the majority. ---
  {
    Table t({"placement", "remote vertices", "fraction of n"});
    auto row = [&](const char* name, const std::vector<NodeId>& agents) {
      const NodeId remote = rr::core::count_remote_vertices(n, agents);
      t.add_row({name, Table::integer(remote),
                 Table::num(static_cast<double>(remote) / n, 3)});
    };
    row("all on one node", rr::core::place_all_on_one(k, 0));
    row("equally spaced", rr::core::place_equally_spaced(n, k));
    row("random", rr::core::place_random(n, k, rng));
    t.print();
    std::printf("\nLemma 15 predicts >= 0.8 n - o(n) remote vertices for"
                " any placement.\n\n");
  }

  // --- Thm 1 lower-bound shape: all-on-one is the worst placement. ---
  {
    Table t({"placement", "cover", "vs all-on-one"});
    const auto worst = rr::core::place_all_on_one(k, 0);
    RingConfig cw{n, worst, rr::core::pointers_toward(n, 0)};
    const double c_worst = static_cast<double>(rr::core::ring_cover_time(cw));
    t.add_row({"all on one (Thm 1)",
               Table::integer(static_cast<std::uint64_t>(c_worst)), "1.00"});
    for (int trial = 0; trial < 3; ++trial) {
      auto agents = rr::core::place_random(n, k, rng);
      const auto adv = rr::core::adversarial_remote_init(n, agents);
      RingConfig c{n, agents, adv.pointers};
      const double cv = static_cast<double>(rr::core::ring_cover_time(c));
      t.add_row({"random placement + adversary #" + std::to_string(trial),
                 Table::integer(static_cast<std::uint64_t>(cv)),
                 Table::num(cv / c_worst, 2)});
    }
    t.print();
    std::printf("\nNo placement+pointers combination found beats the"
                " all-on-one construction by more than a constant:"
                " Theta(n^2/log k) is the worst case (Thm 2).\n");
  }
  return 0;
}
