// E-YAN (related-work substrate, Sec. 1.2/2.1): single-agent Eulerian
// lock-in (Yanovski et al. / Bampas et al.) and multi-agent monotonicity
// (Lemma 1 corollary: adding agents never slows exploration).
//
// The paper's framework builds on: (a) the single agent stabilizes to an
// Eulerian cycle within 2 D |E| rounds, and (b) multi-agent visit counts
// dominate fewer-agent ones. Both are exercised across topologies here.

#include <cstdio>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "analysis/table.hpp"
#include "core/cover_time.hpp"
#include "core/limit_cycle.hpp"
#include "graph/generators.hpp"

namespace {

using rr::analysis::Table;
using rr::graph::Graph;

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Eulerian lock-in and multi-agent monotonicity on general graphs",
      "Yanovski et al. [27], Bampas et al. [6]; Lemma 1");

  struct Topo {
    std::string name;
    Graph g;
  };
  const rr::graph::NodeId m = rr::sim::bench_scale() >= 2 ? 2 : 1;
  const rr::graph::NodeId dim = 8 * m;
  std::vector<Topo> topologies;
  topologies.push_back({"ring(" + std::to_string(64 * m) + ")",
                        rr::graph::ring(64 * m)});
  topologies.push_back({"grid(" + std::to_string(dim) + "x" + std::to_string(dim) + ")",
                        rr::graph::grid(dim, dim)});
  topologies.push_back({"torus(" + std::to_string(dim) + "x" + std::to_string(dim) + ")",
                        rr::graph::torus(dim, dim)});
  topologies.push_back({"hypercube(6)", rr::graph::hypercube(6)});
  topologies.push_back({"clique(" + std::to_string(16 * m) + ")",
                        rr::graph::clique(16 * m)});
  topologies.push_back({"binary_tree(63)", rr::graph::binary_tree(63)});
  topologies.push_back({"random_3_regular(64)", rr::graph::random_regular(64, 3, 1)});
  topologies.push_back({"lollipop(48,16)", rr::graph::lollipop(48, 16)});

  // --- Lock-in times vs the 2 D |E| bound. ---
  {
    Table t({"topology", "D", "|E|", "lock-in", "2 D |E|", "lock-in/(2D|E|)"});
    for (const auto& topo : topologies) {
      const auto res = rr::core::single_agent_lock_in(topo.g, 0);
      const double bound = 2.0 * topo.g.diameter() * topo.g.num_edges();
      t.add_row({topo.name, Table::integer(topo.g.diameter()),
                 Table::integer(topo.g.num_edges()),
                 res.locked_in ? Table::integer(res.lock_in_time) : "none",
                 Table::integer(static_cast<std::uint64_t>(bound)),
                 res.locked_in
                     ? Table::num(static_cast<double>(res.lock_in_time) / bound, 3)
                     : "-"});
    }
    t.print();
    std::printf("\nEvery lock-in lands within the Theta(D|E|) bound"
                " (ratio <= 1), reproducing Yanovski et al.\n\n");
  }

  // --- Cover time vs k: monotone non-increasing (Lemma 1 corollary),
  // with near-linear speed-up at small k (Yanovski's experiments). ---
  {
    Table t({"topology", "k=1", "k=2", "k=4", "k=8", "k=16",
             "speed-up k=16"});
    for (const auto& topo : topologies) {
      std::vector<std::string> row{topo.name};
      double c1 = 0.0, prev = 1e300;
      bool monotone = true;
      double c16 = 0.0;
      for (std::uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
        std::vector<rr::graph::NodeId> agents(k, 0);
        const auto c = rr::core::graph_cover_time(topo.g, agents);
        const double cd = static_cast<double>(c);
        if (k == 1) c1 = cd;
        if (k == 16) c16 = cd;
        if (cd > prev) monotone = false;
        prev = cd;
        row.push_back(Table::integer(c));
      }
      row.push_back(Table::num(c1 / c16, 1) + (monotone ? "" : " (!)"));
      t.add_row(std::move(row));
    }
    t.print();
    std::printf("\nCover time never increases with k (rows marked (!) would"
                " violate Lemma 1 — none should be).\n");
  }
  return 0;
}
