// E-YAN (related-work substrate, Sec. 1.2/2.1): single-agent Eulerian
// lock-in (Yanovski et al. / Bampas et al.) and multi-agent monotonicity
// (Lemma 1 corollary: adding agents never slows exploration).
//
// The paper's framework builds on: (a) the single agent stabilizes to an
// Eulerian cycle within 2 D |E| rounds, and (b) multi-agent visit counts
// dominate fewer-agent ones. Both are exercised across topologies here.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "analysis/table.hpp"
#include "core/cover_time.hpp"
#include "core/eulerian_rotor_router.hpp"
#include "core/limit_cycle.hpp"
#include "graph/descriptor.hpp"
#include "graph/generators.hpp"
#include "sim/registry.hpp"

namespace {

using rr::analysis::Table;
using rr::graph::Graph;

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Eulerian lock-in and multi-agent monotonicity on general graphs",
      "Yanovski et al. [27], Bampas et al. [6]; Lemma 1");

  struct Topo {
    std::string name;
    Graph g;
  };
  const rr::graph::NodeId m = rr::sim::bench_scale() >= 2 ? 2 : 1;
  const rr::graph::NodeId dim = 8 * m;
  std::vector<Topo> topologies;
  topologies.push_back({"ring(" + std::to_string(64 * m) + ")",
                        rr::graph::ring(64 * m)});
  topologies.push_back({"grid(" + std::to_string(dim) + "x" + std::to_string(dim) + ")",
                        rr::graph::grid(dim, dim)});
  topologies.push_back({"torus(" + std::to_string(dim) + "x" + std::to_string(dim) + ")",
                        rr::graph::torus(dim, dim)});
  topologies.push_back({"hypercube(6)", rr::graph::hypercube(6)});
  topologies.push_back({"clique(" + std::to_string(16 * m) + ")",
                        rr::graph::clique(16 * m)});
  topologies.push_back({"binary_tree(63)", rr::graph::binary_tree(63)});
  topologies.push_back({"random_3_regular(64)", rr::graph::random_regular(64, 3, 1)});
  topologies.push_back({"lollipop(48,16)", rr::graph::lollipop(48, 16)});

  // --- Lock-in times vs the 2 D |E| bound. ---
  {
    Table t({"topology", "D", "|E|", "lock-in", "2 D |E|", "lock-in/(2D|E|)"});
    for (const auto& topo : topologies) {
      const auto res = rr::core::single_agent_lock_in(topo.g, 0);
      const double bound = 2.0 * topo.g.diameter() * topo.g.num_edges();
      t.add_row({topo.name, Table::integer(topo.g.diameter()),
                 Table::integer(topo.g.num_edges()),
                 res.locked_in ? Table::integer(res.lock_in_time) : "none",
                 Table::integer(static_cast<std::uint64_t>(bound)),
                 res.locked_in
                     ? Table::num(static_cast<double>(res.lock_in_time) / bound, 3)
                     : "-"});
    }
    t.print();
    std::printf("\nEvery lock-in lands within the Theta(D|E|) bound"
                " (ratio <= 1), reproducing Yanovski et al.\n\n");
  }

  // --- Cover time vs k: monotone non-increasing (Lemma 1 corollary),
  // with near-linear speed-up at small k (Yanovski's experiments). ---
  {
    Table t({"topology", "k=1", "k=2", "k=4", "k=8", "k=16",
             "speed-up k=16"});
    for (const auto& topo : topologies) {
      std::vector<std::string> row{topo.name};
      double c1 = 0.0, prev = 1e300;
      bool monotone = true;
      double c16 = 0.0;
      for (std::uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
        std::vector<rr::graph::NodeId> agents(k, 0);
        const auto c = rr::core::graph_cover_time(topo.g, agents);
        const double cd = static_cast<double>(c);
        if (k == 1) c1 = cd;
        if (k == 16) c16 = cd;
        if (cd > prev) monotone = false;
        prev = cd;
        row.push_back(Table::integer(c));
      }
      row.push_back(Table::num(c1 / c16, 1) + (monotone ? "" : " (!)"));
      t.add_row(std::move(row));
    }
    t.print();
    std::printf("\nCover time never increases with k (rows marked (!) would"
                " violate Lemma 1 — none should be).\n\n");
  }

  // --- The lock-in picture as a backend: extract the token-circulation
  // engine from the live locked rotor (Brent detector) and measure it. ---
  rr::sim::BenchJsonWriter json;
  {
    Table t({"topology", "Brent detect round", "period", "2|E|",
             "circuit Eulerian?"});
    for (const auto& topo : topologies) {
      const auto locked = rr::core::eulerian_from_lock_in(topo.g, 0);
      t.add_row({topo.name,
                 locked.locked_in ? Table::integer(locked.detected_at) : "-",
                 locked.locked_in ? Table::integer(locked.period) : "-",
                 Table::integer(topo.g.num_arcs()),
                 locked.locked_in &&
                         rr::graph::is_eulerian_circuit(
                             topo.g, locked.engine->circuit())
                     ? "yes"
                     : "NO (!)"});
    }
    t.print();
    std::printf("\nThe detected limit cycle is one circuit lap (period ="
                " 2|E|) and the extracted lap is Eulerian: the engine"
                " continues the rotor's own trajectory"
                " (tests/eulerian_engine_test.cpp gates lockstep).\n\n");
  }

  // --- Token-circulation throughput (agent-steps/s), O(k)/round
  // regardless of |E|; sampled for the CI artifact. ---
  {
    const rr::graph::NodeId side = 16 * m;
    const std::uint32_t k = 8;
    Table t({"rep", "agent-steps/s (torus " + std::to_string(side) + "^2, k=" +
                        std::to_string(k) + ")"});
    rr::sim::EngineConfig config;
    for (std::uint32_t i = 0; i < k; ++i) {
      config.agents.push_back((i * side * side) / k);
    }
    for (int rep = 0; rep < 5; ++rep) {
      auto engine = rr::sim::EngineRegistry::instance().create(
          "eulerian", rr::graph::GraphDescriptor::torus(side, side), config);
      const std::uint64_t rounds = rr::sim::scaled(400000);
      const auto t0 = std::chrono::steady_clock::now();
      engine->run(rounds);
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      const double per_s = static_cast<double>(rounds) * k / dt.count();
      json.add("EulerianCirculation/torus/k8/agent_steps_per_s", per_s);
      t.add_row({Table::integer(rep), Table::sci(per_s)});
    }
    t.print();
  }
  return 0;
}
