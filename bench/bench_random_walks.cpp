// E-RW-W / E-RW-B / E-RW-RT (Table 1 row 2; Thm 5, [4], [2]):
//   k random walks on the ring —
//     worst placement (all-on-one):   E[cover] = Theta(n^2 / log k)
//     best placement (equally spaced): E[cover] = Theta((n/k)^2 log^2 k)
//     return: mean revisit gap n/k, with high variance.
//
// All expectations are Monte-Carlo estimates with 95% CIs.

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/fit.hpp"
#include "sim/runner.hpp"
#include "analysis/table.hpp"
#include "core/initializers.hpp"
#include "walk/ring_walk.hpp"

namespace {

using rr::analysis::RunningStats;
using rr::analysis::Table;
using rr::walk::NodeId;

RunningStats cover_stats(NodeId n, const std::vector<NodeId>& starts,
                         std::uint64_t trials, std::uint64_t seed) {
  return rr::sim::Runner().stats(trials, [&](std::uint64_t i) {
    rr::walk::RingRandomWalks w(n, starts, rr::sim::derive_seed(seed, i));
    return static_cast<double>(w.run_until_covered(~0ULL / 2));
  });
}

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "k parallel random walks on the ring: cover & return",
      "Table 1 row 2; Thm 5 and refs [2],[4]");

  const auto n = static_cast<NodeId>(rr::sim::scaled_pow2(1024));
  const std::uint64_t trials = rr::sim::scaled(24, 8);

  // --- Worst placement: all on one node. ---
  {
    Table t({"k", "E[cover] +- CI95", "n^2/ln(k)", "ratio"});
    std::vector<double> ratios;
    for (std::uint32_t k : {2u, 4u, 16u, 64u}) {
      const auto s = cover_stats(n, rr::core::place_all_on_one(k, 0), trials,
                                 1000 + k);
      const double pred =
          static_cast<double>(n) * n / std::log(static_cast<double>(k));
      t.add_row({Table::integer(k),
                 Table::sci(s.mean()) + " +- " + Table::sci(s.ci95()),
                 Table::sci(pred), Table::num(s.mean() / pred, 3)});
      ratios.push_back(s.mean() / pred);
    }
    t.print();
    std::printf("all-on-one ratio flatness (max/min): %.2f — the speed-up"
                " from k walkers is only Theta(log k) [4].\n\n",
                rr::analysis::ratio_spread(
                    ratios, std::vector<double>(ratios.size(), 1.0)));
  }

  // --- Best placement: equally spaced (Thm 5). ---
  {
    Table t({"k", "E[cover] +- CI95", "(n/k)^2 ln^2(k)", "ratio"});
    std::vector<double> ratios;
    for (std::uint32_t k : {4u, 8u, 16u, 32u, 64u}) {
      const auto s = cover_stats(n, rr::core::place_equally_spaced(n, k),
                                 trials, 2000 + k);
      const double lnk = std::log(static_cast<double>(k));
      const double pred = std::pow(static_cast<double>(n) / k, 2.0) * lnk * lnk;
      t.add_row({Table::integer(k),
                 Table::sci(s.mean()) + " +- " + Table::sci(s.ci95()),
                 Table::sci(pred), Table::num(s.mean() / pred, 3)});
      ratios.push_back(s.mean() / pred);
    }
    t.print();
    std::printf("equally-spaced ratio flatness (max/min): %.2f — Thm 5's"
                " Theta((n/k)^2 log^2 k).\n\n",
                rr::analysis::ratio_spread(
                    ratios, std::vector<double>(ratios.size(), 1.0)));
  }

  // --- Return: stationary revisit gaps (mean n/k, high variance). ---
  {
    Table t({"k", "mean gap", "n/k", "max observed gap", "stddev/mean"});
    for (std::uint32_t k : {2u, 8u, 32u}) {
      const auto gaps = rr::walk::ring_walk_gap_stats(
          n, k, 37 + k, 8ULL * n, 4096ULL * n / k);
      t.add_row({Table::integer(k), Table::num(gaps.mean_gap, 1),
                 Table::num(static_cast<double>(n) / k, 1),
                 Table::num(gaps.max_gap, 0),
                 Table::num(std::sqrt(gaps.var_gap) / gaps.mean_gap, 2)});
    }
    t.print();
    std::printf("\nmean gap tracks n/k, but (unlike the deterministic"
                " rotor-router, Thm 6) the distribution has a heavy tail:"
                " max gaps are an order of magnitude above the mean.\n");
  }
  return 0;
}
