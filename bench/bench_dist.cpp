// Distributed sharding (dist/coordinator.hpp): rounds/s vs worker count
// plus the comms metrics that explain it — spill bytes/round, spill
// batches/round, and the mid-scan overlap share (batches relayed while
// their sender was still scanning).
//
// Honesty first: on one machine the workers are in-process threads (or
// sibling rr_noded processes) sharing the same cores, so this bench does
// NOT demonstrate distributed speed-up. What it pins is the *cost* side
// of the design: per-round protocol overhead versus the sequential
// engine, how that overhead scales with worker count, and how the spill
// batch size trades framing amortization against comms/compute overlap.
// The bit-equality side is gated in tests/dist_engine_test.cpp; the CI
// smoke lane runs the real multi-process transport.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/rotor_router.hpp"
#include "dist/coordinator.hpp"
#include "graph/descriptor.hpp"
#include "sim/runner.hpp"

namespace {

using rr::analysis::Table;
using rr::graph::GraphDescriptor;
using rr::graph::NodeId;

std::vector<NodeId> spread_agents(NodeId n, std::uint32_t k) {
  std::vector<NodeId> agents(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    agents[i] = static_cast<NodeId>((static_cast<std::uint64_t>(i) * n) / k);
  }
  return agents;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count() > 1e-9 ? dt.count() : 1e-9;
}

double timed_rounds_per_s(rr::sim::Engine& engine, std::uint64_t rounds) {
  const auto t0 = std::chrono::steady_clock::now();
  engine.run(rounds);
  return static_cast<double>(rounds) / seconds_since(t0);
}

/// The fork/exec transport needs the sibling worker binary; the bench
/// runs from build/bench, so look next to the examples output.
std::string find_noded() {
  namespace fs = std::filesystem;
  for (const char* candidate :
       {"../examples/rr_noded", "./examples/rr_noded", "./rr_noded"}) {
    std::error_code ec;
    if (fs::exists(candidate, ec)) return candidate;
  }
  return {};
}

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Distributed sharding: protocol overhead vs worker count, spill comms",
      "dist/coordinator.hpp; dynamics bit-equal to the sequential engine");

  rr::sim::BenchJsonWriter json;

  struct Config {
    std::string name;
    GraphDescriptor descriptor;
    std::uint32_t k;
    std::uint64_t spill_batch;
  };
  const std::vector<Config> configs = {
      {"torus(32x32)", GraphDescriptor::torus(32, 32), 256, 256},
      {"torus(32x32)/batch1", GraphDescriptor::torus(32, 32), 256, 1},
      {"ring(4096)", GraphDescriptor::parse("ring 4096").value(), 64, 256},
  };
  const std::uint64_t rounds = rr::sim::scaled(20000, 200);

  Table t({"topology", "transport", "workers", "rounds/s", "vs sequential",
           "spill B/round", "batches/round", "overlap"});
  for (const auto& c : configs) {
    const auto g = c.descriptor.build();
    if (!g) {
      std::fprintf(stderr, "bench_dist: cannot build %s\n", c.name.c_str());
      return 1;
    }
    const auto agents = spread_agents(g->num_nodes(), c.k);

    rr::core::RotorRouter sequential(*g, agents, {});
    const double seq_rate = timed_rounds_per_s(sequential, rounds);
    json.add("Dist/" + c.name + "/sequential/rounds_per_s", seq_rate);
    t.add_row({c.name, "(none)", "0", Table::sci(seq_rate), "1.00", "-", "-",
               "-"});

    for (const std::uint32_t workers : {1u, 2u, 4u, 8u}) {
      rr::core::DistOptions opt;
      opt.workers = workers;
      opt.spill_batch = c.spill_batch;
      std::string error;
      auto dist = rr::core::DistributedRotorRouter::create(
          c.descriptor, agents, {}, opt, &error);
      if (!dist) {
        std::fprintf(stderr, "bench_dist: %s\n", error.c_str());
        return 1;
      }
      const double rate = timed_rounds_per_s(*dist, rounds);
      const auto& comms = dist->comms_stats();
      const double per_round = static_cast<double>(comms.rounds);
      const double spill_bytes =
          static_cast<double>(comms.spill_bytes) / per_round;
      const double batches = static_cast<double>(comms.batches) / per_round;
      const double overlap =
          comms.batches
              ? static_cast<double>(comms.mid_scan_batches) /
                    static_cast<double>(comms.batches)
              : 0.0;
      const std::string tag =
          "Dist/" + c.name + "/threads/w" + std::to_string(workers);
      json.add(tag + "/rounds_per_s", rate);
      json.add_metric(tag, "spill_bytes_per_round", spill_bytes);
      json.add_metric(tag, "batches_per_round", batches);
      t.add_row({c.name, "threads", Table::integer(workers), Table::sci(rate),
                 Table::num(rate / seq_rate, 2), Table::num(spill_bytes, 1),
                 Table::num(batches, 2), Table::num(overlap * 100.0, 0) + "%"});
    }
  }

  // One fork/exec lane when the sibling binary is around: same protocol,
  // real process boundaries and kernel socket buffers in the path.
  if (const std::string noded = find_noded(); !noded.empty()) {
    const Config& c = configs.front();
    const auto g = c.descriptor.build();
    const auto agents = spread_agents(g->num_nodes(), c.k);
    rr::core::DistOptions opt;
    opt.workers = 4;
    opt.spill_batch = c.spill_batch;
    opt.noded_path = noded;
    std::string error;
    auto dist = rr::core::DistributedRotorRouter::create(c.descriptor, agents,
                                                         {}, opt, &error);
    if (dist) {
      const double rate = timed_rounds_per_s(*dist, rounds);
      json.add("Dist/" + c.name + "/noded/w4/rounds_per_s", rate);
      t.add_row({c.name, "rr_noded", "4", Table::sci(rate), "-", "-", "-",
                 "-"});
    } else {
      std::fprintf(stderr, "bench_dist: noded lane skipped: %s\n",
                   error.c_str());
    }
  } else {
    std::printf("(rr_noded not found next to the bench; fork/exec lane "
                "skipped)\n");
  }
  t.print();

  std::printf(
      "\nSingle-machine numbers: workers share these cores, so rounds/s\n"
      "measures protocol overhead, not distributed speed-up. Small spill\n"
      "batches raise the overlap share (batches relayed mid-scan) at the\n"
      "price of more framing; the trajectory is bit-identical either way\n"
      "(tests/dist_engine_test.cpp).\n");
  return 0;
}
