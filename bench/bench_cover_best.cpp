// E-RR-B (Table 1 row 1, best placement; Thms 3-4):
//   cover time of k equally spaced agents = Theta(n^2 / k^2),
//   for ANY pointer arrangement (O) and for an adversarial one (Omega).
//
// Sweeps (n, k) at fixed n/k (ratio to (n/k)^2 must be flat), sweeps k at
// fixed n, and compares pointer arrangements (benign, random, negative).

#include <cmath>
#include <cstdio>
#include <vector>

#include "sim/runner.hpp"
#include "analysis/fit.hpp"
#include "analysis/table.hpp"
#include "common/rng.hpp"
#include "core/cover_time.hpp"
#include "core/initializers.hpp"

namespace {

using rr::analysis::Table;
using rr::core::NodeId;
using rr::core::RingConfig;

double cover_spaced(NodeId n, std::uint32_t k, std::vector<std::uint8_t> ptrs) {
  RingConfig c{n, rr::core::place_equally_spaced(n, k), std::move(ptrs)};
  return static_cast<double>(rr::core::ring_cover_time(c));
}

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Best-placement cover time of the k-agent rotor-router",
      "Thms 3-4: Theta((n/k)^2) for equally spaced agents");

  const auto base_n = static_cast<NodeId>(rr::sim::scaled_pow2(1024));

  // --- Fixed n/k, growing n: cover should stay ~ constant = Theta((n/k)^2).
  {
    Table t({"n", "k", "n/k", "cover (negative ptrs)", "(n/k)^2", "ratio"});
    std::vector<double> ratios;
    for (std::uint32_t s = 1; s <= 8; s *= 2) {
      const NodeId n = base_n * s;
      const std::uint32_t k = 8 * s;
      const auto agents = rr::core::place_equally_spaced(n, k);
      const double c =
          cover_spaced(n, k, rr::core::pointers_negative(n, agents));
      const double pred = std::pow(static_cast<double>(n) / k, 2.0);
      t.add_row({Table::integer(n), Table::integer(k), Table::integer(n / k),
                 Table::integer(static_cast<std::uint64_t>(c)),
                 Table::sci(pred), Table::num(c / pred, 3)});
      ratios.push_back(c / pred);
    }
    t.print();
    std::printf("ratio flatness (max/min): %.2f\n\n",
                rr::analysis::ratio_spread(
                    ratios, std::vector<double>(ratios.size(), 1.0)));
  }

  // --- Fixed n, growing k: cover ~ (n/k)^2 falls quadratically. ---
  {
    const NodeId n = 4 * base_n;
    Table t({"n", "k", "cover", "(n/k)^2", "ratio", "speed-up vs k=2"});
    std::vector<double> ks, cs;
    double c2 = 0.0;
    for (std::uint32_t k = 2; k <= 128; k *= 2) {
      const auto agents = rr::core::place_equally_spaced(n, k);
      const double c =
          cover_spaced(n, k, rr::core::pointers_negative(n, agents));
      if (k == 2) c2 = c;
      const double pred = std::pow(static_cast<double>(n) / k, 2.0);
      t.add_row({Table::integer(n), Table::integer(k),
                 Table::integer(static_cast<std::uint64_t>(c)),
                 Table::sci(pred), Table::num(c / pred, 3),
                 Table::num(c2 / c, 1)});
      ks.push_back(k);
      cs.push_back(c);
    }
    const auto fit = rr::analysis::fit_power_law(ks, cs);
    t.print();
    std::printf("fitted exponent in k: %.3f (paper: -2), R^2=%.4f\n\n",
                fit.slope, fit.r_squared);
  }

  // --- Pointer arrangements: Thm 3 says O((n/k)^2) regardless; Thm 4 says
  // the adversary can force Omega((n/k)^2) — so all arrangements land in a
  // constant band around (n/k)^2, benign ones at the bottom. ---
  {
    const NodeId n = 4 * base_n;
    const std::uint32_t k = 32;
    const auto agents = rr::core::place_equally_spaced(n, k);
    const double pred = std::pow(static_cast<double>(n) / k, 2.0);
    rr::Rng rng(777);
    Table t({"pointer init", "cover", "cover/(n/k)^2"});
    auto row = [&](const char* name, std::vector<std::uint8_t> ptrs) {
      const double c = cover_spaced(n, k, std::move(ptrs));
      t.add_row({name, Table::integer(static_cast<std::uint64_t>(c)),
                 Table::num(c / pred, 3)});
    };
    row("all clockwise (benign)", rr::core::pointers_uniform(n, 0));
    row("negative (toward nearest agent)", rr::core::pointers_negative(n, agents));
    row("remote-vertex adversary (Thm 4)",
        rr::core::adversarial_remote_init(n, agents).pointers);
    row("random #0", rr::core::pointers_random(n, rng));
    row("random #1", rr::core::pointers_random(n, rng));
    t.print();
    std::printf("\nUpper bound (Thm 3) and lower bound (Thm 4) meet: every"
                " row is Theta((n/k)^2); benign pointers give the smallest"
                " constant (~n/k sweep per agent still needs a return trip).\n");
  }
  return 0;
}
