// E-GAP (Sec. 4, closing remark): the *distribution* of inter-visit gaps.
//
// Thm 6 vs the random walk: both have ~n/k between visits on average, but
// the rotor-router's gap is deterministic (concentrated at ~2n/k once
// stabilized) while the random walk's gap distribution has high variance
// and a heavy upper tail. This bench collects per-visit gap samples for
// both systems in the stationary regime and prints their histograms and
// quantiles.

#include <cstdio>
#include <vector>

#include "sim/runner.hpp"
#include "analysis/histogram.hpp"
#include "analysis/table.hpp"
#include "core/initializers.hpp"
#include "core/ring_rotor_router.hpp"
#include "walk/ring_walk.hpp"

namespace {

using rr::analysis::Histogram;
using rr::analysis::Table;
using rr::core::NodeId;

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Inter-visit gap distributions: deterministic vs randomized",
      "Thm 6 vs Sec. 4's high-variance remark for k random walks");

  const auto n = static_cast<NodeId>(rr::sim::scaled_pow2(512));
  const std::uint32_t k = 8;
  const double gap_unit = static_cast<double>(n) / k;
  const std::uint64_t window = rr::sim::scaled(4000) * n / k;

  // --- Rotor-router gaps. ---
  Histogram rotor_hist(0.0, 6.0 * gap_unit, 24);
  {
    const auto agents = rr::core::place_equally_spaced(n, k);
    rr::core::RingRotorRouter rr(n, agents,
                                 rr::core::pointers_negative(n, agents));
    rr.run_until_covered(8ULL * n * n);
    rr.run(4ULL * n * n / k);  // stabilize domains
    std::vector<std::uint64_t> last(n);
    for (NodeId v = 0; v < n; ++v) last[v] = rr.last_visit_time(v);
    const std::uint64_t t_end = rr.time() + window;
    while (rr.time() < t_end) {
      rr.step();
      for (NodeId v : rr.occupied_nodes()) {
        if (rr.last_visit_time(v) == rr.time()) {
          rotor_hist.add(static_cast<double>(rr.time() - last[v]));
          last[v] = rr.time();
        }
      }
    }
  }

  // --- Random-walk gaps. ---
  Histogram walk_hist(0.0, 6.0 * gap_unit, 24);
  {
    rr::walk::RingRandomWalks walks(n, rr::core::place_equally_spaced(n, k),
                                    4711);
    walks.run(8ULL * n);
    std::vector<std::uint64_t> last(n, walks.time());
    const std::uint64_t t_end = walks.time() + window;
    while (walks.time() < t_end) {
      walks.step();
      for (std::uint32_t i = 0; i < k; ++i) {
        const NodeId p = walks.position(i);
        if (last[p] == walks.time()) continue;
        walk_hist.add(static_cast<double>(walks.time() - last[p]));
        last[p] = walks.time();
      }
    }
  }

  std::printf("n=%u, k=%u, n/k=%.0f, %llu-round stationary window\n\n", n, k,
              gap_unit, static_cast<unsigned long long>(window));

  Table t({"statistic", "rotor-router", "k random walks", "unit (n/k)"});
  auto q = [&](const Histogram& h, double qq) { return h.quantile(qq); };
  t.add_row({"median gap", Table::num(q(rotor_hist, 0.5), 1),
             Table::num(q(walk_hist, 0.5), 1), "1.0"});
  t.add_row({"90th percentile", Table::num(q(rotor_hist, 0.9), 1),
             Table::num(q(walk_hist, 0.9), 1), "-"});
  t.add_row({"99th percentile", Table::num(q(rotor_hist, 0.99), 1),
             Table::num(q(walk_hist, 0.99), 1), "-"});
  t.add_row({"max bucket seen",
             Table::num(q(rotor_hist, 1.0), 1),
             Table::num(q(walk_hist, 1.0), 1), "-"});
  t.print();

  std::printf("\nrotor-router gap histogram (bins of %.1f rounds):\n%s",
              6.0 * gap_unit / 24, rotor_hist.render(46).c_str());
  std::printf("\nrandom-walk gap histogram:\n%s",
              walk_hist.render(46).c_str());
  std::printf(
      "\nThe rotor-router mass sits in one or two bins around 2n/k; the"
      " random walk spreads from 1 round to many multiples of n/k (its"
      " overflow bucket is the heavy tail the paper warns about).\n");
  return 0;
}
