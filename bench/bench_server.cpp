// Session-multiplexing server load: sessions/s, step latency, bounded
// RSS under eviction (serve::SessionService).
//
// Drives the service in-process — encoded requests through handle(),
// pump() between waves, replies decoded off the Outgoing frames — so the
// numbers measure the scheduler and the checkpoint-eviction machinery,
// not socket syscalls. Two lanes:
//
//   1. Evicting: scaled(10000) concurrent sessions over a 512-slot live
//      table. Every created session beyond the table forces a
//      pressure-eviction (rr-ckpt v2 to disk) and every step on an
//      evicted session a rehydration, so the lane sustains the full
//      create -> evict -> rehydrate -> step cycle. Acceptance: the live
//      table never exceeds its bound and peak RSS stays far below what
//      resident engines for every session would cost.
//   2. Resident: scaled(1000) sessions that all fit live — pure
//      multiplexed stepping throughput (rounds/s) with no disk churn.
//
//   3. Mixed QoS: a handful of interactive sessions issuing small steps
//      while saturating batch backlogs drain, run once under the kFifo
//      baseline and once under the kQos credit scheduler. The headline
//      number is per-class p99 step latency: FIFO pumps grant every
//      batch session a full quantum before any reply leaves, so the
//      interactive tail stretches with the batch population; the QoS
//      scheduler bounds each pump's batch work by the round budget.
//      Acceptance: interactive p99 improves >= 3x at equal aggregate
//      rounds/s, and the probe snapshots are bit-identical across
//      policies (scheduling changes order, never results).
//
// Samples publish through sim::BenchJsonWriter (RR_BENCH_JSON) for
// tools/bench_diff.py: *_per_s higher-is-better, p99_seconds and
// rss_bytes lower-is-better.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/table.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "sim/runner.hpp"
#include "sim/thread_pool.hpp"

namespace {

using rr::analysis::Table;
using rr::serve::Op;
using rr::serve::Reply;
using rr::serve::Request;
using rr::serve::SessionService;
using rr::serve::Status;

using Clock = std::chrono::steady_clock;

double now_minus(const Clock::time_point& t0) {
  const std::chrono::duration<double> dt = Clock::now() - t0;
  return dt.count();
}

std::string tmp_dir() {
  if (const char* env = std::getenv("TMPDIR")) return env;
  return "/tmp";
}

std::uint64_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::sscanf(line, "VmHWM: %llu kB",
                    reinterpret_cast<unsigned long long*>(&kb)) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

/// Strips the frame header/trailer and decodes the reply payload.
Reply decode_outgoing(const SessionService::Outgoing& o) {
  RR_REQUIRE(o.frame.size() >= 8, "bench received a truncated frame");
  const auto rep = rr::serve::decode_reply(
      reinterpret_cast<const std::uint8_t*>(o.frame.data()) + 4,
      o.frame.size() - 8);
  RR_REQUIRE(rep.has_value(), "bench received an undecodable reply");
  return *rep;
}

struct Harness {
  SessionService service;
  std::vector<SessionService::Outgoing> out;
  std::uint64_t next_id = 1;

  explicit Harness(rr::serve::ServiceOptions opt)
      : service(std::move(opt)) {}

  /// Sends one request; returns its id (replies may be deferred).
  std::uint64_t send(Request req) {
    req.id = next_id++;
    const std::string payload = rr::serve::encode_request(req);
    service.handle(1, reinterpret_cast<const std::uint8_t*>(payload.data()),
                   payload.size(), out);
    return req.id;
  }

  /// Drains replies queued so far into `sink`.
  void drain(std::unordered_map<std::uint64_t, Reply>& sink) {
    for (const auto& o : out) {
      Reply rep = decode_outgoing(o);
      sink.emplace(rep.id, std::move(rep));
    }
    out.clear();
  }
};

double percentile(std::vector<double>& xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(p * (xs.size() - 1));
  return xs[idx];
}

// ---- mixed-QoS lane ----

struct MixedResult {
  double inter_p99 = 0;      ///< interactive step latency p99 (s)
  double batch_p99 = 0;      ///< batch step latency p99 (s; whole backlog)
  double rounds_per_s = 0;   ///< aggregate scheduled throughput
  std::uint64_t probe_time = 0;
  std::uint64_t probe_hash = 0;
  std::string probe_snapshot;  ///< rr-ckpt v2 bytes of interactive probe
  std::string batch_snapshot;  ///< rr-ckpt v2 bytes of batch session 0
};

/// Runs the mixed workload under one policy: every batch session gets one
/// deep pipelined step (the saturating backlog), then `waves` waves of
/// small interactive steps are measured send-to-reply while the backlog
/// drains, then the backlog is drained to completion (equal total work
/// under both policies). Ends with snapshots of the interactive probe and
/// one batch session for the caller's cross-policy byte comparison.
MixedResult run_mixed(rr::sim::ThreadPool& pool,
                      rr::serve::SchedPolicy policy, const std::string& graph,
                      std::uint64_t batch_sessions,
                      std::uint64_t inter_sessions, std::uint64_t waves,
                      std::uint64_t inter_rounds,
                      std::uint64_t batch_backlog) {
  rr::serve::ServiceOptions opt;
  opt.max_sessions = batch_sessions + inter_sessions;
  opt.max_live = opt.max_sessions;  // residency churn is lane 1's story
  opt.quantum = 64;
  opt.evict_after = 0;
  opt.policy = policy;
  opt.ckpt_dir = tmp_dir();
  opt.pool = &pool;
  Harness h(opt);
  std::unordered_map<std::uint64_t, Reply> replies;

  Request create;
  create.op = Op::kCreate;
  create.engine = "rotor";
  create.graph = graph;
  create.k = 4;
  std::vector<std::uint64_t> batch, inter;
  create.qos = rr::serve::QosClass::kBatch;
  for (std::uint64_t i = 0; i < batch_sessions; ++i) {
    const std::uint64_t id = h.send(create);
    h.drain(replies);
    RR_REQUIRE(replies.at(id).status == Status::kOk, "mixed create failed");
    batch.push_back(replies.at(id).session);
    replies.clear();
  }
  create.qos = rr::serve::QosClass::kInteractive;
  for (std::uint64_t i = 0; i < inter_sessions; ++i) {
    const std::uint64_t id = h.send(create);
    h.drain(replies);
    RR_REQUIRE(replies.at(id).status == Status::kOk, "mixed create failed");
    inter.push_back(replies.at(id).session);
    replies.clear();
  }

  std::unordered_map<std::uint64_t, Clock::time_point> batch_sent, inter_sent;
  std::vector<double> batch_lat, inter_lat;
  auto drain_latencies = [&]() {
    for (const auto& o : h.out) {
      const Reply rep = decode_outgoing(o);
      RR_REQUIRE(rep.status == Status::kOk, "mixed-QoS step failed");
      if (const auto it = batch_sent.find(rep.id); it != batch_sent.end()) {
        batch_lat.push_back(now_minus(it->second));
        batch_sent.erase(it);
      } else if (const auto it2 = inter_sent.find(rep.id);
                 it2 != inter_sent.end()) {
        inter_lat.push_back(now_minus(it2->second));
        inter_sent.erase(it2);
      }
    }
    h.out.clear();
  };

  const auto t0 = Clock::now();
  Request step;
  step.op = Op::kStep;
  step.rounds = batch_backlog;
  for (const std::uint64_t s : batch) {
    step.session = s;
    batch_sent.emplace(h.send(step), Clock::now());
  }
  for (std::uint64_t w = 0; w < waves; ++w) {
    step.rounds = inter_rounds;
    for (const std::uint64_t s : inter) {
      step.session = s;
      inter_sent.emplace(h.send(step), Clock::now());
    }
    while (!inter_sent.empty()) {
      h.service.pump(h.out);
      drain_latencies();
    }
  }
  while (!batch_sent.empty()) {
    const bool progress = h.service.pump(h.out);
    const bool any = !h.out.empty();
    drain_latencies();
    RR_REQUIRE(progress || any, "mixed-QoS scheduler stalled");
  }
  const double total_s = now_minus(t0);

  MixedResult r;
  r.inter_p99 = percentile(inter_lat, 0.99);
  r.batch_p99 = percentile(batch_lat, 0.99);
  const double total_rounds = static_cast<double>(
      batch_sessions * batch_backlog + inter_sessions * waves * inter_rounds);
  r.rounds_per_s = total_rounds / total_s;

  Request snap;
  snap.op = Op::kSnapshot;
  snap.session = inter.front();
  const std::uint64_t sid = h.send(snap);
  h.drain(replies);
  RR_REQUIRE(replies.at(sid).status == Status::kOk, "probe snapshot failed");
  r.probe_snapshot = replies.at(sid).blob;
  r.probe_hash = replies.at(sid).config_hash;
  r.probe_time = replies.at(sid).time;
  snap.session = batch.front();
  const std::uint64_t bid = h.send(snap);
  h.drain(replies);
  RR_REQUIRE(replies.at(bid).status == Status::kOk, "batch snapshot failed");
  r.batch_snapshot = replies.at(bid).blob;
  return r;
}

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Session-multiplexing server load (create/step under eviction)",
      "serving layer; rr_serverd scheduler + rr-ckpt v2 eviction");
  rr::sim::BenchJsonWriter json;
  rr::sim::ThreadPool pool;

  const std::string graph = "ring 4096";
  constexpr std::uint64_t kAgents = 4;
  constexpr std::uint64_t kRoundsPerStep = 64;

  // --- 1. Evicting lane: sessions >> live slots. ---
  const std::uint64_t kSessions = rr::sim::scaled(10000, 64);
  const std::uint64_t kMaxLive = std::min<std::uint64_t>(512, kSessions / 4);
  double create_s = 0, step_s = 0, p99 = 0;
  std::uint64_t peak_live = 0, rss = 0;
  {
    rr::serve::ServiceOptions opt;
    opt.max_sessions = kSessions;
    opt.max_live = kMaxLive;
    opt.quantum = kRoundsPerStep;
    opt.evict_after = 4;
    opt.ckpt_dir = tmp_dir();
    opt.pool = &pool;
    Harness h(opt);
    std::unordered_map<std::uint64_t, Reply> replies;

    Request create;
    create.op = Op::kCreate;
    create.engine = "rotor";
    create.graph = graph;
    create.k = kAgents;

    auto t0 = Clock::now();
    std::vector<std::uint64_t> sessions;
    sessions.reserve(kSessions);
    for (std::uint64_t i = 0; i < kSessions; ++i) {
      const std::uint64_t id = h.send(create);
      h.drain(replies);
      const auto it = replies.find(id);
      RR_REQUIRE(it != replies.end() && it->second.status == Status::kOk,
                 "create rejected under eviction pressure");
      sessions.push_back(it->second.session);
      replies.erase(it);
      peak_live = std::max(peak_live, h.service.live_sessions());
    }
    create_s = now_minus(t0);
    RR_REQUIRE(h.service.total_sessions() == kSessions,
               "session table lost entries");

    // One pipelined step wave across every session; per-request latency
    // is send-to-reply (dominated by rehydration queueing — that is the
    // p99 the serving story cares about).
    std::unordered_map<std::uint64_t, Clock::time_point> sent;
    std::vector<double> latencies;
    latencies.reserve(kSessions);
    t0 = Clock::now();
    Request step;
    step.op = Op::kStep;
    step.rounds = kRoundsPerStep;
    for (const std::uint64_t s : sessions) {
      step.session = s;
      sent.emplace(h.send(step), Clock::now());
      peak_live = std::max(peak_live, h.service.live_sessions());
    }
    while (latencies.size() < kSessions) {
      const bool progress = h.service.pump(h.out);
      peak_live = std::max(peak_live, h.service.live_sessions());
      std::size_t got = 0;
      for (const auto& o : h.out) {
        const Reply rep = decode_outgoing(o);
        RR_REQUIRE(rep.status == Status::kOk, "step failed in evicting lane");
        const auto it = sent.find(rep.id);
        RR_REQUIRE(it != sent.end(), "unexpected reply id");
        latencies.push_back(now_minus(it->second));
        sent.erase(it);
        ++got;
      }
      h.out.clear();
      RR_REQUIRE(progress || got > 0, "scheduler stalled with work queued");
    }
    step_s = now_minus(t0);
    p99 = percentile(latencies, 0.99);
    rss = peak_rss_bytes();
    RR_REQUIRE(peak_live <= kMaxLive, "live table exceeded its bound");
  }

  Table t1({"sessions", "max live", "peak live", "create/s", "step req/s",
            "p99 step s", "peak RSS MB"});
  const double create_rate = static_cast<double>(kSessions) / create_s;
  const double step_rate = static_cast<double>(kSessions) / step_s;
  t1.add_row({Table::integer(kSessions), Table::integer(kMaxLive),
              Table::integer(peak_live), Table::num(create_rate, 0),
              Table::num(step_rate, 0), Table::num(p99, 4),
              rss ? Table::num(static_cast<double>(rss) / (1u << 20), 1)
                  : "-"});
  t1.print();
  json.add("Server/evicting/create_sessions_per_s", create_rate);
  json.add("Server/evicting/step_requests_per_s", step_rate);
  json.add("Server/evicting/step_rounds_per_s",
           step_rate * static_cast<double>(kRoundsPerStep));
  json.add_metric("Server/evicting/step", "p99_seconds", p99);
  if (rss > 0) {
    json.add_metric("Server/evicting/peak_rss", "rss_bytes",
                    static_cast<double>(rss));
  }
  // A resident ring-4096 rotor engine costs ~100 KB; kSessions of them
  // would need ~kSessions/10 MB. The bound asserts eviction actually
  // bounds memory, with generous headroom for allocator slack.
  const double resident_all_mb =
      static_cast<double>(kSessions) * 0.1;  // ~0.1 MB/session
  const double rss_mb = static_cast<double>(rss) / (1u << 20);
  std::printf("\n%llu concurrent sessions over %llu live slots: peak RSS"
              " %.1f MB vs ~%.0f MB all-resident (acceptance: bounded by"
              " the live table) %s\n\n",
              static_cast<unsigned long long>(kSessions),
              static_cast<unsigned long long>(kMaxLive), rss_mb,
              resident_all_mb,
              rss == 0 || rss_mb < std::max(256.0, 0.5 * resident_all_mb)
                  ? "PASS"
                  : "WARN");

  // --- 2. Resident lane: everything fits live. ---
  const std::uint64_t kResident = rr::sim::scaled(1000, 16);
  constexpr std::uint64_t kWaves = 4;
  double resident_s = 0;
  {
    rr::serve::ServiceOptions opt;
    opt.max_sessions = kResident;
    opt.max_live = kResident;
    opt.quantum = kRoundsPerStep;
    opt.evict_after = 0;  // never evict
    opt.ckpt_dir = tmp_dir();
    opt.pool = &pool;
    Harness h(opt);
    std::unordered_map<std::uint64_t, Reply> replies;

    Request create;
    create.op = Op::kCreate;
    create.engine = "rotor";
    create.graph = graph;
    create.k = kAgents;
    std::vector<std::uint64_t> sessions;
    sessions.reserve(kResident);
    for (std::uint64_t i = 0; i < kResident; ++i) {
      const std::uint64_t id = h.send(create);
      h.drain(replies);
      RR_REQUIRE(replies.at(id).status == Status::kOk,
                 "resident create failed");
      sessions.push_back(replies.at(id).session);
      replies.clear();
    }

    const auto t0 = Clock::now();
    for (std::uint64_t wave = 0; wave < kWaves; ++wave) {
      Request step;
      step.op = Op::kStep;
      step.rounds = kRoundsPerStep;
      std::size_t expect = 0;
      for (const std::uint64_t s : sessions) {
        step.session = s;
        h.send(step);
        ++expect;
      }
      std::size_t got = 0;
      while (got < expect) {
        h.service.pump(h.out);
        for (const auto& o : h.out) {
          RR_REQUIRE(decode_outgoing(o).status == Status::kOk,
                     "resident step failed");
          ++got;
        }
        h.out.clear();
      }
    }
    resident_s = now_minus(t0);
  }
  const double resident_rounds =
      static_cast<double>(kResident * kWaves * kRoundsPerStep);
  Table t2({"sessions", "waves", "rounds/req", "total s", "rounds/s"});
  t2.add_row({Table::integer(kResident), Table::integer(kWaves),
              Table::integer(kRoundsPerStep), Table::num(resident_s, 3),
              Table::sci(resident_rounds / resident_s)});
  t2.print();
  json.add("Server/resident/step_rounds_per_s",
           resident_rounds / resident_s);

  // --- 3. Mixed-QoS lane: interactive p99 under saturating batch load. ---
  // Batch sessions don't scale below 64: the FIFO tail the lane exposes is
  // proportional to the batch population, and a tiny population would
  // flatten the contrast the acceptance ratio is measuring.
  const std::uint64_t kBatchSessions = rr::sim::scaled(128, 64);
  constexpr std::uint64_t kInterSessions = 4;
  constexpr std::uint64_t kInterWaves = 32;
  constexpr std::uint64_t kInterRounds = 8;
  constexpr std::uint64_t kBatchBacklog = 8192;
  const MixedResult fifo =
      run_mixed(pool, rr::serve::SchedPolicy::kFifo, graph, kBatchSessions,
                kInterSessions, kInterWaves, kInterRounds, kBatchBacklog);
  const MixedResult qos =
      run_mixed(pool, rr::serve::SchedPolicy::kQos, graph, kBatchSessions,
                kInterSessions, kInterWaves, kInterRounds, kBatchBacklog);
  // Scheduling must change latency only: the same sessions stepped the
  // same rounds under both policies land on byte-identical checkpoints.
  RR_REQUIRE(!fifo.probe_snapshot.empty() &&
                 fifo.probe_snapshot == qos.probe_snapshot,
             "probe snapshot differs across scheduling policies");
  RR_REQUIRE(!fifo.batch_snapshot.empty() &&
                 fifo.batch_snapshot == qos.batch_snapshot,
             "batch snapshot differs across scheduling policies");
  RR_REQUIRE(fifo.probe_hash == qos.probe_hash &&
                 fifo.probe_time == qos.probe_time,
             "probe summary differs across scheduling policies");

  Table t3({"policy", "batch sess", "inter p99 ms", "batch p99 s",
            "rounds/s"});
  t3.add_row({"fifo", Table::integer(kBatchSessions),
              Table::num(fifo.inter_p99 * 1e3, 3),
              Table::num(fifo.batch_p99, 3), Table::sci(fifo.rounds_per_s)});
  t3.add_row({"qos", Table::integer(kBatchSessions),
              Table::num(qos.inter_p99 * 1e3, 3),
              Table::num(qos.batch_p99, 3), Table::sci(qos.rounds_per_s)});
  t3.print();
  json.add_metric("Server/mixed/fifo/interactive_step", "p99_seconds",
                  fifo.inter_p99);
  json.add_metric("Server/mixed/qos/interactive_step", "p99_seconds",
                  qos.inter_p99);
  json.add_metric("Server/mixed/fifo/batch_step", "p99_seconds",
                  fifo.batch_p99);
  json.add_metric("Server/mixed/qos/batch_step", "p99_seconds",
                  qos.batch_p99);
  json.add("Server/mixed/fifo/step_rounds_per_s", fifo.rounds_per_s);
  json.add("Server/mixed/qos/step_rounds_per_s", qos.rounds_per_s);

  const double tail_ratio =
      qos.inter_p99 > 0 ? fifo.inter_p99 / qos.inter_p99 : 0;
  std::printf("\ninteractive p99 %.3f ms (fifo) -> %.3f ms (qos), %.1fx "
              "better; probe checkpoint bit-identical across policies "
              "(t=%llu, hash=%016llx) (acceptance: >= 3x) %s\n\n",
              fifo.inter_p99 * 1e3, qos.inter_p99 * 1e3, tail_ratio,
              static_cast<unsigned long long>(qos.probe_time),
              static_cast<unsigned long long>(qos.probe_hash),
              tail_ratio >= 3.0 ? "PASS" : "WARN");
  return 0;
}
