// Session-multiplexing server load: sessions/s, step latency, bounded
// RSS under eviction (serve::SessionService).
//
// Drives the service in-process — encoded requests through handle(),
// pump() between waves, replies decoded off the Outgoing frames — so the
// numbers measure the scheduler and the checkpoint-eviction machinery,
// not socket syscalls. Two lanes:
//
//   1. Evicting: scaled(10000) concurrent sessions over a 512-slot live
//      table. Every created session beyond the table forces a
//      pressure-eviction (rr-ckpt v2 to disk) and every step on an
//      evicted session a rehydration, so the lane sustains the full
//      create -> evict -> rehydrate -> step cycle. Acceptance: the live
//      table never exceeds its bound and peak RSS stays far below what
//      resident engines for every session would cost.
//   2. Resident: scaled(1000) sessions that all fit live — pure
//      multiplexed stepping throughput (rounds/s) with no disk churn.
//
// Samples publish through sim::BenchJsonWriter (RR_BENCH_JSON) for
// tools/bench_diff.py: *_per_s higher-is-better, p99_seconds and
// rss_bytes lower-is-better.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/table.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "sim/runner.hpp"
#include "sim/thread_pool.hpp"

namespace {

using rr::analysis::Table;
using rr::serve::Op;
using rr::serve::Reply;
using rr::serve::Request;
using rr::serve::SessionService;
using rr::serve::Status;

using Clock = std::chrono::steady_clock;

double now_minus(const Clock::time_point& t0) {
  const std::chrono::duration<double> dt = Clock::now() - t0;
  return dt.count();
}

std::string tmp_dir() {
  if (const char* env = std::getenv("TMPDIR")) return env;
  return "/tmp";
}

std::uint64_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::sscanf(line, "VmHWM: %llu kB",
                    reinterpret_cast<unsigned long long*>(&kb)) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

/// Strips the frame header/trailer and decodes the reply payload.
Reply decode_outgoing(const SessionService::Outgoing& o) {
  RR_REQUIRE(o.frame.size() >= 8, "bench received a truncated frame");
  const auto rep = rr::serve::decode_reply(
      reinterpret_cast<const std::uint8_t*>(o.frame.data()) + 4,
      o.frame.size() - 8);
  RR_REQUIRE(rep.has_value(), "bench received an undecodable reply");
  return *rep;
}

struct Harness {
  SessionService service;
  std::vector<SessionService::Outgoing> out;
  std::uint64_t next_id = 1;

  explicit Harness(rr::serve::ServiceOptions opt)
      : service(std::move(opt)) {}

  /// Sends one request; returns its id (replies may be deferred).
  std::uint64_t send(Request req) {
    req.id = next_id++;
    const std::string payload = rr::serve::encode_request(req);
    service.handle(1, reinterpret_cast<const std::uint8_t*>(payload.data()),
                   payload.size(), out);
    return req.id;
  }

  /// Drains replies queued so far into `sink`.
  void drain(std::unordered_map<std::uint64_t, Reply>& sink) {
    for (const auto& o : out) {
      Reply rep = decode_outgoing(o);
      sink.emplace(rep.id, std::move(rep));
    }
    out.clear();
  }
};

double percentile(std::vector<double>& xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(p * (xs.size() - 1));
  return xs[idx];
}

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Session-multiplexing server load (create/step under eviction)",
      "serving layer; rr_serverd scheduler + rr-ckpt v2 eviction");
  rr::sim::BenchJsonWriter json;
  rr::sim::ThreadPool pool;

  const std::string graph = "ring 4096";
  constexpr std::uint64_t kAgents = 4;
  constexpr std::uint64_t kRoundsPerStep = 64;

  // --- 1. Evicting lane: sessions >> live slots. ---
  const std::uint64_t kSessions = rr::sim::scaled(10000, 64);
  const std::uint64_t kMaxLive = std::min<std::uint64_t>(512, kSessions / 4);
  double create_s = 0, step_s = 0, p99 = 0;
  std::uint64_t peak_live = 0, rss = 0;
  {
    rr::serve::ServiceOptions opt;
    opt.max_sessions = kSessions;
    opt.max_live = kMaxLive;
    opt.quantum = kRoundsPerStep;
    opt.evict_after = 4;
    opt.ckpt_dir = tmp_dir();
    opt.pool = &pool;
    Harness h(opt);
    std::unordered_map<std::uint64_t, Reply> replies;

    Request create;
    create.op = Op::kCreate;
    create.engine = "rotor";
    create.graph = graph;
    create.k = kAgents;

    auto t0 = Clock::now();
    std::vector<std::uint64_t> sessions;
    sessions.reserve(kSessions);
    for (std::uint64_t i = 0; i < kSessions; ++i) {
      const std::uint64_t id = h.send(create);
      h.drain(replies);
      const auto it = replies.find(id);
      RR_REQUIRE(it != replies.end() && it->second.status == Status::kOk,
                 "create rejected under eviction pressure");
      sessions.push_back(it->second.session);
      replies.erase(it);
      peak_live = std::max(peak_live, h.service.live_sessions());
    }
    create_s = now_minus(t0);
    RR_REQUIRE(h.service.total_sessions() == kSessions,
               "session table lost entries");

    // One pipelined step wave across every session; per-request latency
    // is send-to-reply (dominated by rehydration queueing — that is the
    // p99 the serving story cares about).
    std::unordered_map<std::uint64_t, Clock::time_point> sent;
    std::vector<double> latencies;
    latencies.reserve(kSessions);
    t0 = Clock::now();
    Request step;
    step.op = Op::kStep;
    step.rounds = kRoundsPerStep;
    for (const std::uint64_t s : sessions) {
      step.session = s;
      sent.emplace(h.send(step), Clock::now());
      peak_live = std::max(peak_live, h.service.live_sessions());
    }
    while (latencies.size() < kSessions) {
      const bool progress = h.service.pump(h.out);
      peak_live = std::max(peak_live, h.service.live_sessions());
      std::size_t got = 0;
      for (const auto& o : h.out) {
        const Reply rep = decode_outgoing(o);
        RR_REQUIRE(rep.status == Status::kOk, "step failed in evicting lane");
        const auto it = sent.find(rep.id);
        RR_REQUIRE(it != sent.end(), "unexpected reply id");
        latencies.push_back(now_minus(it->second));
        sent.erase(it);
        ++got;
      }
      h.out.clear();
      RR_REQUIRE(progress || got > 0, "scheduler stalled with work queued");
    }
    step_s = now_minus(t0);
    p99 = percentile(latencies, 0.99);
    rss = peak_rss_bytes();
    RR_REQUIRE(peak_live <= kMaxLive, "live table exceeded its bound");
  }

  Table t1({"sessions", "max live", "peak live", "create/s", "step req/s",
            "p99 step s", "peak RSS MB"});
  const double create_rate = static_cast<double>(kSessions) / create_s;
  const double step_rate = static_cast<double>(kSessions) / step_s;
  t1.add_row({Table::integer(kSessions), Table::integer(kMaxLive),
              Table::integer(peak_live), Table::num(create_rate, 0),
              Table::num(step_rate, 0), Table::num(p99, 4),
              rss ? Table::num(static_cast<double>(rss) / (1u << 20), 1)
                  : "-"});
  t1.print();
  json.add("Server/evicting/create_sessions_per_s", create_rate);
  json.add("Server/evicting/step_requests_per_s", step_rate);
  json.add("Server/evicting/step_rounds_per_s",
           step_rate * static_cast<double>(kRoundsPerStep));
  json.add_metric("Server/evicting/step", "p99_seconds", p99);
  if (rss > 0) {
    json.add_metric("Server/evicting/peak_rss", "rss_bytes",
                    static_cast<double>(rss));
  }
  // A resident ring-4096 rotor engine costs ~100 KB; kSessions of them
  // would need ~kSessions/10 MB. The bound asserts eviction actually
  // bounds memory, with generous headroom for allocator slack.
  const double resident_all_mb =
      static_cast<double>(kSessions) * 0.1;  // ~0.1 MB/session
  const double rss_mb = static_cast<double>(rss) / (1u << 20);
  std::printf("\n%llu concurrent sessions over %llu live slots: peak RSS"
              " %.1f MB vs ~%.0f MB all-resident (acceptance: bounded by"
              " the live table) %s\n\n",
              static_cast<unsigned long long>(kSessions),
              static_cast<unsigned long long>(kMaxLive), rss_mb,
              resident_all_mb,
              rss == 0 || rss_mb < std::max(256.0, 0.5 * resident_all_mb)
                  ? "PASS"
                  : "WARN");

  // --- 2. Resident lane: everything fits live. ---
  const std::uint64_t kResident = rr::sim::scaled(1000, 16);
  constexpr std::uint64_t kWaves = 4;
  double resident_s = 0;
  {
    rr::serve::ServiceOptions opt;
    opt.max_sessions = kResident;
    opt.max_live = kResident;
    opt.quantum = kRoundsPerStep;
    opt.evict_after = 0;  // never evict
    opt.ckpt_dir = tmp_dir();
    opt.pool = &pool;
    Harness h(opt);
    std::unordered_map<std::uint64_t, Reply> replies;

    Request create;
    create.op = Op::kCreate;
    create.engine = "rotor";
    create.graph = graph;
    create.k = kAgents;
    std::vector<std::uint64_t> sessions;
    sessions.reserve(kResident);
    for (std::uint64_t i = 0; i < kResident; ++i) {
      const std::uint64_t id = h.send(create);
      h.drain(replies);
      RR_REQUIRE(replies.at(id).status == Status::kOk,
                 "resident create failed");
      sessions.push_back(replies.at(id).session);
      replies.clear();
    }

    const auto t0 = Clock::now();
    for (std::uint64_t wave = 0; wave < kWaves; ++wave) {
      Request step;
      step.op = Op::kStep;
      step.rounds = kRoundsPerStep;
      std::size_t expect = 0;
      for (const std::uint64_t s : sessions) {
        step.session = s;
        h.send(step);
        ++expect;
      }
      std::size_t got = 0;
      while (got < expect) {
        h.service.pump(h.out);
        for (const auto& o : h.out) {
          RR_REQUIRE(decode_outgoing(o).status == Status::kOk,
                     "resident step failed");
          ++got;
        }
        h.out.clear();
      }
    }
    resident_s = now_minus(t0);
  }
  const double resident_rounds =
      static_cast<double>(kResident * kWaves * kRoundsPerStep);
  Table t2({"sessions", "waves", "rounds/req", "total s", "rounds/s"});
  t2.add_row({Table::integer(kResident), Table::integer(kWaves),
              Table::integer(kRoundsPerStep), Table::num(resident_s, 3),
              Table::sci(resident_rounds / resident_s)});
  t2.print();
  json.add("Server/resident/step_rounds_per_s",
           resident_rounds / resident_s);
  return 0;
}
