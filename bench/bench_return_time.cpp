// E-RR-RT (Table 1, return time; Thm 6):
//   after stabilization, every node is visited every Theta(n/k) rounds,
//   regardless of the initialization.
//
// Measures windowed max inter-visit gaps at large n (sweeping k and the
// initialization) and exact on-cycle return times at small n via Brent
// cycle detection.

#include <cstdio>
#include <vector>

#include "sim/runner.hpp"
#include "analysis/table.hpp"
#include "common/rng.hpp"
#include "core/cover_time.hpp"
#include "core/initializers.hpp"
#include "core/limit_cycle.hpp"

namespace {

using rr::analysis::Table;
using rr::core::NodeId;
using rr::core::RingConfig;

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Return time of the k-agent rotor-router on the ring",
      "Thm 6: every node visited every Theta(n/k) rounds in the limit");

  const auto n = static_cast<NodeId>(rr::sim::scaled_pow2(2048));

  // --- Sweep k, two different initializations. ---
  {
    Table t({"init", "k", "n/k", "max gap", "mean gap", "max/(n/k)"});
    std::vector<double> ratios;
    for (std::uint32_t k : {2u, 4u, 8u, 16u, 32u, 64u}) {
      // Equally spaced (best case) and all-on-one (worst case): Thm 6 says
      // the limit refresh rate is the same.
      RingConfig spaced{n, rr::core::place_equally_spaced(n, k), {}};
      const auto rs = rr::core::ring_return_time(spaced);
      RingConfig one{n, rr::core::place_all_on_one(k, 0),
                     rr::core::pointers_toward(n, 0)};
      const auto ro = rr::core::ring_return_time(one);
      const double pred = static_cast<double>(n) / k;
      t.add_row({"equally spaced", Table::integer(k), Table::integer(n / k),
                 Table::integer(rs.max_gap), Table::num(rs.mean_gap, 1),
                 Table::num(static_cast<double>(rs.max_gap) / pred, 2)});
      t.add_row({"all on one node", Table::integer(k), Table::integer(n / k),
                 Table::integer(ro.max_gap), Table::num(ro.mean_gap, 1),
                 Table::num(static_cast<double>(ro.max_gap) / pred, 2)});
      ratios.push_back(static_cast<double>(rs.max_gap) / pred);
      ratios.push_back(static_cast<double>(ro.max_gap) / pred);
    }
    t.print();
    double lo = ratios[0], hi = ratios[0];
    for (double r : ratios) {
      lo = std::min(lo, r);
      hi = std::max(hi, r);
    }
    std::printf("\nmax-gap/(n/k) stays in [%.2f, %.2f] across k and"
                " initializations: Theta(n/k), matching Thm 6.\n\n",
                lo, hi);
  }

  // --- Exact return times on the limit cycle (small n, Brent). ---
  {
    const NodeId ns = 120;
    Table t({"n", "k", "period", "exact max gap", "exact min gap",
             "max/(n/k)"});
    for (std::uint32_t k : {1u, 2u, 3u, 4u, 6u, 8u}) {
      RingConfig c{ns, rr::core::place_equally_spaced(ns, k), {}};
      const auto ret = rr::core::exact_return_time(c, 1ULL << 26);
      if (!ret) {
        std::printf("k=%u: no cycle within cap\n", k);
        continue;
      }
      t.add_row({Table::integer(ns), Table::integer(k),
                 Table::integer(ret->period), Table::integer(ret->max_gap),
                 Table::integer(ret->min_gap),
                 Table::num(static_cast<double>(ret->max_gap) * k / ns, 2)});
    }
    t.print();
    std::printf("\nk=1 recovers the single-agent Eulerian cycle (period 2n,"
                " max gap < 2n); the k-agent limit refresh is ~2n/k.\n");
  }
  return 0;
}
