// E-F1 (Figure 1): the two types of borders between adjacent lazy domains.
//
// Fig. 1 illustrates (a) vertex-type borders (one vertex between the lazy
// domains) and (b) edge-type borders (lazy domains directly adjacent, the
// border edge acting as an agent swap). This bench runs a stabilized
// system, prints a census of border types over time (both types occur and
// together account for all borders), and renders one concrete example of
// each type in ASCII, mirroring the figure.

#include <cstdio>
#include <string>

#include "sim/runner.hpp"
#include "analysis/table.hpp"
#include "core/domains.hpp"
#include "core/initializers.hpp"

namespace {

using rr::analysis::Table;
using rr::core::NodeId;

// Renders the neighborhood of the border between domains d and d+1.
void render_border(const rr::core::RingRotorRouter& rr,
                   const rr::core::DomainSnapshot& snap, std::size_t d) {
  const auto& a = snap.domains[d];
  // Window: last 6 nodes of a through the first 6 of the next domain.
  const NodeId n = rr.num_nodes();
  const NodeId a_end = static_cast<NodeId>((a.begin + a.size - 1) % n);
  std::string line_nodes, line_marks;
  for (int off = -5; off <= 6; ++off) {
    const NodeId v = static_cast<NodeId>((a_end + n + off) % n);
    const bool agent = rr.agents_at(v) > 0;
    const bool lazy = rr.agents_at(v) == 1 ||
                      (rr.agents_at(v) == 0 &&
                       rr.last_visit_single_propagation(v) && rr.visited(v));
    line_nodes += agent ? " X " : " o ";
    line_marks += lazy ? " L " : " . ";
  }
  std::printf("  nodes : %s   (X = agent, o = empty)\n", line_nodes.c_str());
  std::printf("  lazy  : %s   (L = in a lazy domain)\n", line_marks.c_str());
}

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Border types between adjacent lazy domains",
      "Figure 1: (a) vertex-type, (b) edge-type borders");

  const auto n = static_cast<NodeId>(rr::sim::scaled_pow2(512));
  const std::uint32_t k = 8;
  const auto agents = rr::core::place_equally_spaced(n, k);
  rr::core::RingRotorRouter rr(n, agents,
                               rr::core::pointers_negative(n, agents));
  rr.run_until_covered(8ULL * n * n);
  rr.run(4ULL * n * n / k);

  // Census over time: sample every ~n/(2k) rounds.
  Table t({"round offset", "vertex-type", "edge-type", "wide (transient)"});
  std::uint32_t total_vertex = 0, total_edge = 0, total_wide = 0;
  const std::uint64_t t0 = rr.time();
  for (int sample = 0; sample < 12; ++sample) {
    const auto snap = rr::core::compute_domains(rr);
    const auto census = rr::core::census_borders(rr, snap);
    t.add_row({Table::integer(rr.time() - t0), Table::integer(census.vertex_type),
               Table::integer(census.edge_type), Table::integer(census.wide)});
    total_vertex += census.vertex_type;
    total_edge += census.edge_type;
    total_wide += census.wide;
    rr.run(n / (2 * k) + 1);
  }
  t.print();
  std::printf("\ntotals: vertex-type=%u edge-type=%u wide=%u — after"
              " stabilization essentially every border is of one of the two"
              " Fig. 1 types, and both occur.\n\n",
              total_vertex, total_edge, total_wide);

  // Find and render one example of each type.
  bool shown_vertex = false, shown_edge = false;
  for (int attempt = 0; attempt < 4096 && !(shown_vertex && shown_edge);
       ++attempt) {
    rr.step();
    const auto snap = rr::core::compute_domains(rr);
    if (snap.domains.size() < 2) continue;
    // Re-derive per-border types via the census helper on single borders:
    const auto census = rr::core::census_borders(rr, snap);
    if (!shown_vertex && census.vertex_type > 0) {
      std::printf("Example vertex-type border (Fig. 1a), round %llu:\n",
                  static_cast<unsigned long long>(rr.time()));
      render_border(rr, snap, 0);
      shown_vertex = true;
    }
    if (!shown_edge && census.edge_type > 0) {
      std::printf("Example edge-type border (Fig. 1b), round %llu:\n",
                  static_cast<unsigned long long>(rr.time()));
      render_border(rr, snap, snap.domains.size() / 2);
      shown_edge = true;
    }
  }
  return 0;
}
