// E-L12 (Lemma 12 + Lemma 8): convergence of agent domains.
//
// Lemma 12: if every lazy domain has size >= 20k (and the unexplored region
// has negative pointers), adjacent lazy domain sizes eventually differ by
// at most 10. Lemma 8 (via the token game) guarantees domains never
// degenerate: min size stays >= mu - 5k + 2 once all domains have size mu.
//
// The bench tracks max adjacent difference and min/max domain sizes over
// time for several initializations, showing convergence to a band of width
// <= ~10 around n/k.

#include <cstdio>
#include <vector>

#include "sim/runner.hpp"
#include "analysis/table.hpp"
#include "common/rng.hpp"
#include "core/domains.hpp"
#include "core/initializers.hpp"

namespace {

using rr::analysis::Table;
using rr::core::NodeId;

void track(const char* name, rr::core::RingRotorRouter rr, std::uint32_t k) {
  const NodeId n = rr.num_nodes();
  rr.run_until_covered(8ULL * n * n);
  std::printf("--- %s (covered at round %llu) ---\n", name,
              static_cast<unsigned long long>(rr.time()));
  Table t({"rounds after coverage", "#domains", "min size", "max size",
           "max adjacent diff", "max adjacent lazy diff"});
  std::uint64_t offset = 0;
  std::uint32_t final_diff = 0;
  for (int sample = 0; sample <= 8; ++sample) {
    const auto snap = rr::core::compute_domains(rr);
    t.add_row({Table::integer(offset),
               Table::integer(snap.domains.size()),
               Table::integer(snap.min_size()), Table::integer(snap.max_size()),
               Table::integer(snap.max_adjacent_diff()),
               Table::integer(snap.max_adjacent_lazy_diff())});
    final_diff = snap.max_adjacent_diff();
    const std::uint64_t stride = 1ULL * n * n / (k * 4) + 1;
    rr.run(stride);
    offset += stride;
  }
  t.print();
  std::printf("final max adjacent difference: %u (Lemma 12 bound: <= 10, "
              "n/k = %u)\n\n", final_diff, n / k);
}

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Domain convergence on the ring",
      "Lemma 12 (adjacent sizes differ by <= 10 in the limit), Lemma 8");

  const auto n = static_cast<NodeId>(rr::sim::scaled_pow2(1024));
  const std::uint32_t k = 8;
  rr::Rng rng(99);

  {
    const auto agents = rr::core::place_equally_spaced(n, k);
    track("equally spaced, negative pointers",
          rr::core::RingRotorRouter(n, agents,
                                    rr::core::pointers_negative(n, agents)),
          k);
  }
  {
    const auto agents = rr::core::place_all_on_one(k, 0);
    track("all on one node, pointers toward start",
          rr::core::RingRotorRouter(n, agents,
                                    rr::core::pointers_toward(n, 0)),
          k);
  }
  {
    const auto agents = rr::core::place_random(n, k, rng);
    track("random placement, random pointers",
          rr::core::RingRotorRouter(n, agents,
                                    rr::core::pointers_random(n, rng)),
          k);
  }
  return 0;
}
