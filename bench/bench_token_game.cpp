// E-TOK (Lemma 8, appendix): the one-player token game.
//
// k stacks of eta tokens; a move is legal iff the destination holds at most
// 8 more tokens than the source. The paper's invariant: every stack always
// holds >= eta - 5k + 5 tokens. The bench plays adversarial (greedy
// starvation) and random strategies across (k, eta) and reports the
// observed minimum against the bound — the margin shows how tight the
// invariant is in practice.

#include <cstdio>
#include <vector>

#include "sim/runner.hpp"
#include "analysis/table.hpp"
#include "analysis/token_game.hpp"

namespace {

using rr::analysis::Table;

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Token game of Lemma 8",
      "invariant: min stack >= eta - 5k + 5 after any legal play");

  const std::uint64_t moves = rr::sim::scaled(200000, 1000);
  const std::uint64_t seeds = rr::sim::scaled(8, 2);

  Table t({"k", "eta", "bound eta-5k+5", "adversarial min", "random-play min",
           "adversarial margin"});
  for (std::uint32_t k : {4u, 8u, 16u, 32u, 64u}) {
    const std::uint64_t eta = 10ULL * k;
    std::uint64_t adv_min = eta, rand_min = eta;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      adv_min = std::min(adv_min,
                         rr::analysis::adversarial_min_stack(k, eta, moves, seed));
      rand_min = std::min(rand_min,
                          rr::analysis::random_play_min_stack(k, eta, moves, seed));
    }
    const std::int64_t bound = static_cast<std::int64_t>(eta) - 5LL * k + 5;
    t.add_row({Table::integer(k), Table::integer(eta),
               Table::integer(static_cast<std::uint64_t>(bound > 0 ? bound : 0)),
               Table::integer(adv_min), Table::integer(rand_min),
               Table::integer(adv_min - static_cast<std::uint64_t>(
                                            bound > 0 ? bound : 0))});
  }
  t.print();
  std::printf(
      "\nThe adversary gets close to (but never below) the bound: the"
      " greedy drain loses ~2 tokens of slack per neighboring stack, the"
      " same cascade the y_i-invariant proof accounts for. Random play"
      " barely dents the stacks.\n");
  return 0;
}
