// Sustained checkpoint I/O and out-of-core stepping (rr-ckpt v2 +
// rr-graph images).
//
// Three measurements back the out-of-core scale work:
//
//   1. Checkpoint codec throughput, v1 text vs v2 binary, across
//      2^20..2^24-node rings: save (serialize) and load (parse +
//      deserialize into a live engine) in nodes/s, plus bytes/node.
//      The v2 acceptance bar is a >= 5x combined save+load speedup at
//      the largest size.
//   2. The paper-scale density point: 256^2 torus, k = 64 — v2 must
//      stay at <= 6 bytes/node where v1 text costs ~20.
//   3. Out-of-core stepping: a ~1e8-node ring image (8.8 GB on disk at
//      scale 1) stepped through the mmap substrate, reporting rounds/s
//      and the process peak RSS (VmHWM) against the image size — the
//      run must not fault the whole image into memory.
//
// Engines here are built over rr-graph images rather than in-RAM
// Graphs, so instance construction is O(agents) and the bench itself
// stays out-of-core honest. Samples publish through
// sim::BenchJsonWriter (RR_BENCH_JSON) for tools/bench_diff.py:
// *_per_s keys are higher-is-better, bytes_per_node lower-is-better.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/rotor_router.hpp"
#include "graph/mmap_substrate.hpp"
#include "sim/checkpoint.hpp"
#include "sim/runner.hpp"

namespace {

using rr::analysis::Table;
using rr::core::RotorRouter;
using rr::graph::MappedSubstrate;
using rr::graph::NodeId;
using rr::sim::CkptFormat;

double now_minus(const std::chrono::steady_clock::time_point& t0) {
  const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  return dt.count();
}

std::string tmp_dir() {
  if (const char* env = std::getenv("TMPDIR")) return env;
  return "/tmp";
}

// Peak resident set size of this process (bytes); 0 where unavailable.
// Linux-only (VmHWM in /proc/self/status) — the out-of-core RSS check
// degrades to informational elsewhere.
std::uint64_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::sscanf(line, "VmHWM: %llu kB",
                    reinterpret_cast<unsigned long long*>(&kb)) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

std::vector<NodeId> spread_agents(std::uint64_t n, std::uint32_t k) {
  std::vector<NodeId> agents(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    agents[i] = static_cast<NodeId>(i * n / k);
  }
  return agents;
}

const char* format_name(CkptFormat f) {
  return f == CkptFormat::kV1 ? "v1" : "v2";
}

struct IoSample {
  double save_s = 0;
  double load_s = 0;
  std::size_t bytes = 0;
};

// One save + load measurement of `engine` (which must be a RotorRouter
// over an image at `image_path`) in `format`. Load goes through
// parse_checkpoint and deserialize_state on an engine over a *fresh
// open* of the image — the exact resume path minus the disk: engines
// sharing one open share the COW mapping, so resuming always starts
// from its own pristine mapping (which is also what lets the restore
// skip pages that match the image).
IoSample measure_io(const std::string& image_path,
                    const std::shared_ptr<MappedSubstrate>& substrate,
                    const rr::sim::Engine& engine, CkptFormat format) {
  IoSample s;
  substrate->advise_sequential();
  auto t0 = std::chrono::steady_clock::now();
  const std::string text =
      rr::sim::write_checkpoint(engine, substrate->descriptor(), format);
  s.save_s = now_minus(t0);
  s.bytes = text.size();

  auto resume = MappedSubstrate::open(image_path);
  RR_REQUIRE(resume != nullptr, "bench image failed to re-open");
  RotorRouter sink(resume, {0});
  t0 = std::chrono::steady_clock::now();
  const auto parsed = rr::sim::parse_checkpoint(text);
  const bool ok = parsed && sink.deserialize_state(parsed->state);
  s.load_s = now_minus(t0);
  RR_REQUIRE(ok, "bench checkpoint failed to round-trip");
  RR_REQUIRE(sink.config_hash() == engine.config_hash(),
             "bench round-trip changed the configuration");
  return s;
}

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Checkpoint codec throughput (rr-ckpt v1 vs v2) and out-of-core "
      "stepping",
      "observation layer; Sec. 1.3 state (pointers, counts, n_v/e_v)");
  rr::sim::BenchJsonWriter json;
  const std::string dir = tmp_dir();
  constexpr std::uint32_t kAgents = 64;
  constexpr int kReps = 3;

  // --- 1. v1 vs v2 save/load across sizes. ---
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t base : {1ull << 20, 1ull << 22, 1ull << 24}) {
    const std::uint64_t n = rr::sim::scaled_pow2(base);
    if (std::find(sizes.begin(), sizes.end(), n) == sizes.end()) {
      sizes.push_back(n);
    }
  }
  double v1_rate_largest = 0, v2_rate_largest = 0;
  {
    Table t({"n", "fmt", "save s", "load s", "MB", "bytes/node",
             "save+load Mnodes/s"});
    for (const std::uint64_t n : sizes) {
      const std::string image = dir + "/bench_ckpt_io_ring.rrg";
      std::string error;
      RR_REQUIRE(MappedSubstrate::build("ring " + std::to_string(n), image,
                                        &error),
                 "bench image build failed");
      auto substrate = MappedSubstrate::open(image);
      RR_REQUIRE(substrate != nullptr, "bench image failed validation");
      RotorRouter engine(substrate, spread_agents(n, kAgents));
      substrate->advise_random();
      engine.run(rr::sim::scaled(1000));

      for (const CkptFormat format : {CkptFormat::kV1, CkptFormat::kV2}) {
        const std::string tag = std::string("CkptIO/") + format_name(format) +
                                "/ring_n" + std::to_string(n);
        double best_rate = 0;
        IoSample last;
        for (int rep = 0; rep < kReps; ++rep) {
          const IoSample s = measure_io(image, substrate, engine, format);
          const double rate =
              static_cast<double>(n) / (s.save_s + s.load_s);
          best_rate = std::max(best_rate, rate);
          last = s;
          json.add(tag + "/save_nodes_per_s",
                   static_cast<double>(n) / s.save_s);
          json.add(tag + "/load_nodes_per_s",
                   static_cast<double>(n) / s.load_s);
          json.add_metric(tag, "bytes_per_node",
                          static_cast<double>(s.bytes) / n);
        }
        if (n == sizes.back()) {
          (format == CkptFormat::kV1 ? v1_rate_largest : v2_rate_largest) =
              best_rate;
        }
        t.add_row({Table::integer(n), format_name(format),
                   Table::num(last.save_s, 3), Table::num(last.load_s, 3),
                   Table::num(static_cast<double>(last.bytes) / (1u << 20), 1),
                   Table::num(static_cast<double>(last.bytes) / n, 2),
                   Table::num(best_rate / 1e6, 1)});
      }
      std::remove(image.c_str());
    }
    t.print();
    const double speedup =
        v1_rate_largest > 0 ? v2_rate_largest / v1_rate_largest : 0;
    std::printf("\nv2 save+load speedup at n=%llu: %.1fx (acceptance: >= 5x)"
                " %s\n\n",
                static_cast<unsigned long long>(sizes.back()), speedup,
                speedup >= 5.0 ? "PASS" : "WARN");
  }

  // --- 2. Density at the paper-scale torus point. ---
  {
    const std::string image = dir + "/bench_ckpt_io_torus.rrg";
    std::string error;
    RR_REQUIRE(MappedSubstrate::build("torus 256 256", image, &error),
               "torus image build failed");
    auto substrate = MappedSubstrate::open(image);
    RR_REQUIRE(substrate != nullptr, "torus image failed validation");
    const std::uint64_t n = substrate->num_nodes();
    RotorRouter engine(substrate, spread_agents(n, kAgents));
    engine.run(rr::sim::scaled(20000));
    Table t({"fmt", "bytes", "bytes/node"});
    double v2_density = 0;
    for (const CkptFormat format : {CkptFormat::kV1, CkptFormat::kV2}) {
      const std::string text =
          rr::sim::write_checkpoint(engine, substrate->descriptor(), format);
      const double density = static_cast<double>(text.size()) / n;
      if (format == CkptFormat::kV2) v2_density = density;
      json.add_metric(std::string("CkptIO/") + format_name(format) +
                          "/torus256_k64",
                      "bytes_per_node", density);
      t.add_row({format_name(format), Table::integer(text.size()),
                 Table::num(density, 2)});
    }
    t.print();
    std::printf("\nv2 density on torus 256^2, k=64: %.2f bytes/node"
                " (acceptance: <= 6) %s\n\n",
                v2_density, v2_density <= 6.0 ? "PASS" : "WARN");
    std::remove(image.c_str());
  }

  // --- 3. Out-of-core stepping through the mmap substrate. ---
  {
    const std::uint64_t n = rr::sim::scaled(100000000, 1u << 16);
    const std::string image = dir + "/bench_ckpt_io_ooc.rrg";
    std::string error;
    auto t0 = std::chrono::steady_clock::now();
    RR_REQUIRE(MappedSubstrate::build("ring " + std::to_string(n), image,
                                      &error),
               "out-of-core image build failed");
    const double build_s = now_minus(t0);
    auto substrate = MappedSubstrate::open(image);
    RR_REQUIRE(substrate != nullptr, "out-of-core image failed validation");
    const double image_gb =
        static_cast<double>(substrate->image_bytes()) / (1u << 30);

    t0 = std::chrono::steady_clock::now();
    RotorRouter engine(substrate, spread_agents(n, kAgents));
    substrate->advise_random();
    const double construct_s = now_minus(t0);

    const std::uint64_t rounds = rr::sim::scaled(20000);
    t0 = std::chrono::steady_clock::now();
    engine.run(rounds);
    const double step_s = now_minus(t0);
    const double rounds_per_s = static_cast<double>(rounds) / step_s;
    const std::uint64_t rss = peak_rss_bytes();

    Table t({"n", "image GB", "build s", "construct s", "rounds",
             "rounds/s", "peak RSS GB"});
    t.add_row({Table::integer(n), Table::num(image_gb, 2),
               Table::num(build_s, 1), Table::num(construct_s, 3),
               Table::integer(rounds), Table::sci(rounds_per_s),
               rss ? Table::num(static_cast<double>(rss) / (1u << 30), 2)
                   : "-"});
    t.print();
    json.add("CkptIO/ooc/rounds_per_s", rounds_per_s);
    if (rss > 0) {
      json.add_metric("CkptIO/ooc/peak_rss", "rss_bytes",
                      static_cast<double>(rss));
      std::printf("\npeak RSS %.2f GB vs %.2f GB image (acceptance: RSS"
                  " well below a resident image) %s\n",
                  static_cast<double>(rss) / (1u << 30), image_gb,
                  static_cast<double>(rss) < 0.5 * substrate->image_bytes()
                      ? "PASS"
                      : "WARN");
    }
    std::remove(image.c_str());
  }

  // --- 4. Frame-parallel v2 load on a shared pool. ---
  //
  // v2 per-node frames are independently decodable (delta baselines
  // restart per segment), so parse_checkpoint + deserialize_state can
  // fan frame decode and per-segment state application across a
  // ThreadPool. The result must be bit-identical to the sequential
  // load; the speedup assertion only arms on multi-core hosts (a
  // 1-core pool runs the same code inline).
  {
    const std::uint64_t n = rr::sim::scaled_pow2(1ull << 22);
    const std::string image = dir + "/bench_ckpt_io_parload.rrg";
    std::string error;
    RR_REQUIRE(MappedSubstrate::build("ring " + std::to_string(n), image,
                                      &error),
               "parallel-load image build failed");
    auto substrate = MappedSubstrate::open(image);
    RR_REQUIRE(substrate != nullptr, "parallel-load image failed validation");
    RotorRouter engine(substrate, spread_agents(n, kAgents));
    substrate->advise_random();
    engine.run(rr::sim::scaled(1000));
    const std::string text = rr::sim::write_checkpoint(
        engine, substrate->descriptor(), CkptFormat::kV2);

    rr::sim::ThreadPool pool;  // hardware width
    double seq_s = 1e300, par_s = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      for (const bool parallel : {false, true}) {
        rr::sim::ThreadPool* p = parallel ? &pool : nullptr;
        auto resume = MappedSubstrate::open(image);
        RR_REQUIRE(resume != nullptr, "parallel-load image re-open failed");
        RotorRouter sink(resume, {0});
        const auto t0 = std::chrono::steady_clock::now();
        const auto parsed = rr::sim::parse_checkpoint(text, p);
        const bool ok = parsed && sink.deserialize_state(parsed->state, p);
        const double dt = now_minus(t0);
        RR_REQUIRE(ok, "parallel load failed to round-trip");
        RR_REQUIRE(sink.config_hash() == engine.config_hash(),
                   "parallel load changed the configuration");
        (parallel ? par_s : seq_s) =
            std::min(parallel ? par_s : seq_s, dt);
      }
    }
    Table t({"n", "threads", "seq load s", "pool load s", "speedup"});
    const double speedup = seq_s / par_s;
    t.add_row({Table::integer(n), Table::integer(pool.num_threads()),
               Table::num(seq_s, 3), Table::num(par_s, 3),
               Table::num(speedup, 2)});
    t.print();
    json.add("CkptIO/v2/parallel_load_nodes_per_s",
             static_cast<double>(n) / par_s);
    json.add("CkptIO/v2/sequential_load_nodes_per_s",
             static_cast<double>(n) / seq_s);
    if (pool.num_threads() >= 2) {
      std::printf("\npool load speedup at n=%llu: %.2fx (acceptance: >= 1.2x"
                  " with >= 2 threads) %s\n",
                  static_cast<unsigned long long>(n), speedup,
                  speedup >= 1.2 ? "PASS" : "WARN");
    } else {
      std::printf("\npool load speedup: SKIP (1 thread — pool runs inline;"
                  " bit-equality still asserted)\n");
    }
    std::remove(image.c_str());
  }
  return 0;
}
