// E-T1: reproduces paper Table 1 side by side — cover time (worst and best
// placement) and return time, for the k-agent rotor-router vs k random
// walks on the n-node ring. One (n,k) instance per cell; the per-row
// benches (bench_cover_*, bench_random_walks, bench_return_time) sweep the
// parameters and verify the Theta-shapes.

#include <cmath>
#include <cstdio>

#include "sim/runner.hpp"
#include "analysis/table.hpp"
#include "core/cover_time.hpp"
#include "core/initializers.hpp"
#include "walk/ring_walk.hpp"

namespace {

using rr::analysis::Table;

double walk_cover_mean(rr::core::NodeId n, const std::vector<rr::core::NodeId>& starts,
                       std::uint64_t trials, std::uint64_t seed) {
  auto stats = rr::sim::Runner().stats(trials, [&](std::uint64_t i) {
    rr::walk::RingRandomWalks walks(n, starts, rr::sim::derive_seed(seed, i));
    return static_cast<double>(walks.run_until_covered(~0ULL / 2));
  });
  return stats.mean();
}

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Table 1 — cover & return time of the multi-agent rotor-router vs k "
      "random walks on the ring",
      "Klasing et al., Table 1 (Thms 1-6)");

  const auto n = static_cast<rr::core::NodeId>(rr::sim::scaled_pow2(1024));
  const std::uint32_t k = 16;
  const std::uint64_t trials = rr::sim::scaled(12, 4);
  const double log2k = std::log2(static_cast<double>(k));
  const double lnk = std::log(static_cast<double>(k));
  std::printf("Instance: n=%u, k=%u, %llu random-walk trials per cell\n\n", n,
              k, static_cast<unsigned long long>(trials));

  // --- rotor-router, worst placement (Thm 1): all on one node, pointers
  // along the shortest path to the start.
  rr::core::RingConfig worst;
  worst.n = n;
  worst.agents = rr::core::place_all_on_one(k, 0);
  worst.pointers = rr::core::pointers_toward(n, 0);
  const double rr_worst = static_cast<double>(rr::core::ring_cover_time(worst));

  // --- rotor-router, best placement (Thm 3): equally spaced, adversarial
  // (negative) pointers.
  rr::core::RingConfig best;
  best.n = n;
  best.agents = rr::core::place_equally_spaced(n, k);
  best.pointers = rr::core::pointers_negative(n, best.agents);
  const double rr_best = static_cast<double>(rr::core::ring_cover_time(best));

  // --- rotor-router return time (Thm 6).
  const auto ret = rr::core::ring_return_time(best);

  // --- k random walks (Table 1 row 2).
  const double rw_worst = walk_cover_mean(n, worst.agents, trials, 101);
  const double rw_best = walk_cover_mean(n, best.agents, trials, 202);
  const auto gaps = rr::walk::ring_walk_gap_stats(
      n, k, 303, /*warmup=*/4ULL * n, /*window=*/64ULL * n / k + 1024);

  const double nd = static_cast<double>(n);
  const double pred_rr_worst = nd * nd / log2k;
  const double pred_rr_best = (nd / k) * (nd / k);
  const double pred_rw_worst = nd * nd / lnk;
  const double pred_rw_best = (nd / k) * (nd / k) * lnk * lnk;
  const double pred_return = nd / k;

  Table t({"Model", "Placement", "Quantity", "Paper Theta", "Predicted",
           "Measured", "measured/predicted"});
  t.add_row({"rotor-router (k agents)", "worst (all-on-one)", "cover",
             "n^2/log k", Table::sci(pred_rr_worst), Table::sci(rr_worst),
             Table::num(rr_worst / pred_rr_worst, 2)});
  t.add_row({"rotor-router (k agents)", "best (equally spaced)", "cover",
             "n^2/k^2", Table::sci(pred_rr_best), Table::sci(rr_best),
             Table::num(rr_best / pred_rr_best, 2)});
  t.add_row({"rotor-router (k agents)", "any", "return",
             "n/k", Table::sci(pred_return),
             Table::sci(static_cast<double>(ret.max_gap)),
             Table::num(static_cast<double>(ret.max_gap) / pred_return, 2)});
  t.add_row({"k random walks (E[.])", "worst (all-on-one)", "cover",
             "n^2/log k", Table::sci(pred_rw_worst), Table::sci(rw_worst),
             Table::num(rw_worst / pred_rw_worst, 2)});
  t.add_row({"k random walks (E[.])", "best (equally spaced)", "cover",
             "n^2/(k^2/log^2 k)", Table::sci(pred_rw_best), Table::sci(rw_best),
             Table::num(rw_best / pred_rw_best, 2)});
  t.add_row({"k random walks (E[.])", "any", "return (mean gap)",
             "n/k", Table::sci(pred_return), Table::sci(gaps.mean_gap),
             Table::num(gaps.mean_gap / pred_return, 2)});
  t.print();

  std::printf(
      "\nShape check: every `measured/predicted` column should be a"
      " moderate constant (the paper's Theta hides constants).\n"
      "Rotor-router rows are deterministic; random-walk rows are means over"
      " %llu trials.\n",
      static_cast<unsigned long long>(trials));
  return 0;
}
