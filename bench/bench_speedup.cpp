// E-SPD (Sec. 1.1 + Conclusions): speed-up of k agents over one agent.
//
// Paper's summary of the comparison:
//   rotor-router speed-up: between Theta(log k) (worst placement) and
//   Theta(k^2) (best placement); random-walk speed-up: between
//   Theta(log k) and Theta(k^2/log^2 k); return-time speed-up: Theta(k)
//   for both models.
// This bench produces the speed-up curves for all six cases.

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/table.hpp"
#include "core/cover_time.hpp"
#include "core/initializers.hpp"
#include "sim/runner.hpp"
#include "walk/ring_walk.hpp"

namespace {

using rr::analysis::Table;
using rr::core::NodeId;
using rr::core::RingConfig;

// One pool for every Monte-Carlo estimate in this driver.
rr::sim::Runner& runner() {
  static rr::sim::Runner r;
  return r;
}

double walk_cover_mean(NodeId n, const std::vector<NodeId>& starts,
                       std::uint64_t trials, std::uint64_t seed) {
  return runner().stats(trials, [&](std::uint64_t i) {
    rr::walk::RingRandomWalks w(n, starts, rr::sim::derive_seed(seed, i));
    return static_cast<double>(w.run_until_covered(~0ULL / 2));
  }).mean();
}

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Speed-up of k agents over a single agent",
      "Table 1 consequences + Conclusions: log k .. k^2 (rotor), "
      "log k .. k^2/log^2 k (walks), k (return)");

  const auto n = static_cast<NodeId>(rr::sim::scaled_pow2(1024));
  const std::uint64_t trials = rr::sim::scaled(16, 6);

  // Single-agent baselines.
  RingConfig single{n, {0}, rr::core::pointers_toward(n, 0)};
  const double rr_c1 = static_cast<double>(rr::core::ring_cover_time(single));
  const double rw_c1 = walk_cover_mean(n, {0}, trials, 11);
  const auto rr_r1 = rr::core::ring_return_time(single);

  Table t({"k", "rotor worst (log k?)", "rotor best (k^2?)",
           "walks worst (log k?)", "walks best (k^2/log^2 k?)",
           "rotor return (k?)"});
  for (std::uint32_t k : {2u, 4u, 8u, 16u, 32u, 64u}) {
    RingConfig worst{n, rr::core::place_all_on_one(k, 0),
                     rr::core::pointers_toward(n, 0)};
    const double rrw = static_cast<double>(rr::core::ring_cover_time(worst));
    RingConfig best{n, rr::core::place_equally_spaced(n, k), {}};
    best.pointers = rr::core::pointers_negative(n, best.agents);
    const double rrb = static_cast<double>(rr::core::ring_cover_time(best));
    const double rww =
        walk_cover_mean(n, rr::core::place_all_on_one(k, 0), trials, 200 + k);
    const double rwb = walk_cover_mean(
        n, rr::core::place_equally_spaced(n, k), trials, 300 + k);
    const auto ret = rr::core::ring_return_time(best);

    const double lk = std::log2(static_cast<double>(k));
    auto cell = [](double speedup, double normalizer) {
      return Table::num(speedup, 1) + " (/" + "pred=" +
             Table::num(speedup / normalizer, 2) + ")";
    };
    t.add_row({Table::integer(k),
               cell(rr_c1 / rrw, lk),
               cell(rr_c1 / rrb, static_cast<double>(k) * k),
               cell(rw_c1 / rww, lk),
               cell(rw_c1 / rwb, static_cast<double>(k) * k / (lk * lk)),
               cell(static_cast<double>(rr_r1.max_gap) / ret.max_gap,
                    static_cast<double>(k))});
  }
  t.print();
  std::printf(
      "\nEach cell shows `speed-up (/pred=ratio)`: the ratio of the measured"
      " speed-up to the paper's predicted growth law; flat ratios across k"
      " confirm the shape. Rotor-router best-case reaches Theta(k^2) — "
      "faster than random walks' Theta(k^2/log^2 k).\n");
  return 0;
}
