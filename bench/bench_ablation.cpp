// E-ABL: ablations of the design decisions recorded in DESIGN.md §5.
//
//  A. Agents-as-counts with an occupied list (O(#occupied)/round) vs the
//     naive full-scan round (O(n)/round): same trajectories, and the
//     speed gap that justifies the representation.
//  B. Return time via warm-up + window vs exact Brent limit-cycle
//     analysis: same answer (within the window's resolution), very
//     different cost scaling.
//  C. Per-walker 64-bit bit buffers vs per-step RNG draws in the ring
//     random walk: same distribution (validated by mean cover). The
//     buffers exist for stream stability (walker i's path is independent
//     of k), and this ablation HONESTLY shows they cost some throughput —
//     xoshiro is cheap enough that the bookkeeping does not pay for
//     itself; the design keeps them for reproducibility, not speed.

#include <chrono>
#include <cstdio>
#include <vector>

#include "sim/runner.hpp"
#include "analysis/table.hpp"
#include "common/rng.hpp"
#include "core/cover_time.hpp"
#include "core/initializers.hpp"
#include "core/limit_cycle.hpp"
#include "walk/ring_walk.hpp"

namespace {

using rr::analysis::Table;
using rr::core::NodeId;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Naive reference engine: scans every node each round.
class FullScanRing {
 public:
  FullScanRing(NodeId n, const std::vector<NodeId>& agents,
               std::vector<std::uint8_t> pointers)
      : n_(n), counts_(n, 0), pointers_(std::move(pointers)) {
    for (NodeId a : agents) ++counts_[a];
  }

  void step() {
    std::vector<std::uint32_t> next(n_, 0);
    for (NodeId v = 0; v < n_; ++v) {
      const std::uint32_t c = counts_[v];
      if (c == 0) continue;
      const std::uint32_t via_ptr = (c + 1) / 2;
      const std::uint32_t cw =
          pointers_[v] == rr::core::kClockwise ? via_ptr : c - via_ptr;
      next[(v + 1) % n_] += cw;
      next[(v + n_ - 1) % n_] += c - cw;
      pointers_[v] = static_cast<std::uint8_t>((pointers_[v] + c) & 1);
    }
    counts_.swap(next);
  }

  std::uint32_t agents_at(NodeId v) const { return counts_[v]; }
  std::uint8_t pointer(NodeId v) const { return pointers_[v]; }

 private:
  NodeId n_;
  std::vector<std::uint32_t> counts_;
  std::vector<std::uint8_t> pointers_;
};

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Ablations of DESIGN.md §5 decisions",
      "occupied-list engine, windowed return time, batched walk bits");

  // --- A: occupied-list vs full scan. ---
  {
    const auto n = static_cast<NodeId>(rr::sim::scaled_pow2(1 << 16));
    const std::uint32_t k = 16;
    const std::uint64_t rounds = rr::sim::scaled(20000, 2000);
    const auto agents = rr::core::place_equally_spaced(n, k);
    const auto ptrs = rr::core::pointers_negative(n, agents);

    rr::core::RingRotorRouter fast(n, agents, ptrs);
    FullScanRing naive(n, agents, ptrs);
    // Equality of trajectories on a prefix.
    for (int t = 0; t < 200; ++t) {
      fast.step();
      naive.step();
    }
    bool equal = true;
    for (NodeId v = 0; v < n; ++v) {
      if (fast.agents_at(v) != naive.agents_at(v) ||
          fast.pointer(v) != naive.pointer(v)) {
        equal = false;
      }
    }

    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t t = 0; t < rounds; ++t) fast.step();
    const double fast_s = seconds_since(t0);
    t0 = std::chrono::steady_clock::now();
    for (std::uint64_t t = 0; t < rounds; ++t) naive.step();
    const double naive_s = seconds_since(t0);

    Table t({"engine", "trajectories equal", "rounds", "seconds",
             "rounds/sec"});
    t.add_row({"occupied-list (library)", equal ? "yes" : "NO",
               Table::integer(rounds), Table::num(fast_s, 3),
               Table::sci(rounds / fast_s)});
    t.add_row({"full scan (ablation)", equal ? "yes" : "NO",
               Table::integer(rounds), Table::num(naive_s, 3),
               Table::sci(rounds / naive_s)});
    t.print();
    std::printf("\nAt n=%u, k=%u the occupied-list round is ~%.0fx faster;"
                " the gap grows with n/k.\n\n", n, k, naive_s / fast_s);
  }

  // --- B: windowed vs exact return time. ---
  {
    Table t({"n", "k", "windowed max gap", "exact max gap", "windowed s",
             "exact s"});
    for (NodeId n : {60u, 120u, 240u}) {
      const std::uint32_t k = 4;
      rr::core::RingConfig c{n, rr::core::place_equally_spaced(n, k), {}};
      auto t0 = std::chrono::steady_clock::now();
      const auto win = rr::core::ring_return_time(c);
      const double win_s = seconds_since(t0);
      t0 = std::chrono::steady_clock::now();
      const auto exact = rr::core::exact_return_time(c, 1ULL << 26);
      const double exact_s = seconds_since(t0);
      t.add_row({Table::integer(n), Table::integer(k),
                 Table::integer(win.max_gap),
                 exact ? Table::integer(exact->max_gap) : "-",
                 Table::num(win_s, 4), Table::num(exact_s, 4)});
    }
    t.print();
    std::printf("\nThe windowed estimate matches the exact on-cycle gap;"
                " Brent needs full-configuration snapshots and is reserved"
                " for small n.\n\n");
  }

  // --- C: batched bits vs per-step RNG draw. ---
  {
    const auto n = static_cast<NodeId>(rr::sim::scaled_pow2(1 << 14));
    const std::uint32_t k = 32;
    const std::uint64_t rounds = rr::sim::scaled(200000, 10000);
    std::vector<NodeId> starts = rr::core::place_equally_spaced(n, k);

    rr::walk::RingRandomWalks batched(n, starts, 7);
    auto t0 = std::chrono::steady_clock::now();
    batched.run(rounds);
    const double batched_s = seconds_since(t0);

    // Naive: one full RNG draw per walker per step.
    rr::Rng rng(7);
    std::vector<NodeId> pos = starts;
    t0 = std::chrono::steady_clock::now();
    for (std::uint64_t t = 0; t < rounds; ++t) {
      for (auto& p : pos) {
        p = (rng() & 1) ? (p + 1 == n ? 0 : p + 1) : (p == 0 ? n - 1 : p - 1);
      }
    }
    const double naive_s = seconds_since(t0);

    Table t({"walk engine", "walker-steps/s", "speed-up"});
    const double steps = static_cast<double>(rounds) * k;
    t.add_row({"batched 64-bit buffers (library)", Table::sci(steps / batched_s),
               Table::num(naive_s / batched_s, 2)});
    t.add_row({"one draw per step (ablation)", Table::sci(steps / naive_s),
               "1.00"});
    t.print();
    std::printf("\nHonest finding: the buffers do NOT buy speed (xoshiro is"
                " cheap); they are kept because they make walker i's stream"
                " independent of k — trial results stay comparable when the"
                " fleet size changes. Distributional equivalence is covered"
                " by the cover-time expectation tests in random_walk_test.\n");
  }
  return 0;
}
