// E-RR-W (Table 1 row 1, worst placement; Thms 1, 2, Lemma 14):
//   cover time of k agents all on one node = Theta(n^2 / log k).
//
// Sweeps n at fixed k (ratio to n^2/log2 k must be flat in n) and k at
// fixed n (ratio must be flat in k), for the canonical adversarial pointer
// arrangement (all pointers along the shortest path to the start node) and
// the arbitrary-pointer variants covered by Lemma 14 / Thm 2.
//
// Every sweep cell is an independent deterministic cover run; the batched
// sim::Runner fans them across the thread pool and hands the results back
// in grid order for printing.

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "analysis/fit.hpp"
#include "analysis/table.hpp"
#include "common/rng.hpp"
#include "core/cover_time.hpp"
#include "core/initializers.hpp"
#include "sim/runner.hpp"

namespace {

using rr::analysis::Table;
using rr::core::NodeId;
using rr::core::RingConfig;

rr::sim::Runner& runner() {
  static rr::sim::Runner r;
  return r;
}

double cover(NodeId n, std::uint32_t k, std::vector<std::uint8_t> ptrs) {
  RingConfig c{n, rr::core::place_all_on_one(k, 0), std::move(ptrs)};
  const auto t = rr::core::ring_cover_time(c);
  return static_cast<double>(t);
}

/// Fans `cover` over a (n, k) grid: jobs.size() independent runs.
std::vector<double> cover_grid(
    const std::vector<std::pair<NodeId, std::uint32_t>>& grid) {
  return runner().map(grid.size(), [&](std::uint64_t i) {
    const auto [n, k] = grid[i];
    return cover(n, k, rr::core::pointers_toward(n, 0));
  });
}

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Worst-placement cover time of the k-agent rotor-router",
      "Thms 1-2, Lemma 14: Theta(n^2/log k), all agents on one node");

  const auto base_n = static_cast<NodeId>(rr::sim::scaled_pow2(512));

  // --- Sweep n at fixed k (Thm 1 arrangement). ---
  {
    std::vector<std::pair<NodeId, std::uint32_t>> grid;
    for (std::uint32_t k : {4u, 16u, 64u}) {
      for (NodeId n = base_n; n <= 8 * base_n; n *= 2) grid.push_back({n, k});
    }
    const std::vector<double> covers = cover_grid(grid);

    Table t({"k", "n", "cover", "n^2/log2(k)", "ratio"});
    std::size_t cell = 0;
    for (std::uint32_t k : {4u, 16u, 64u}) {
      std::vector<double> ns, cs;
      for (NodeId n = base_n; n <= 8 * base_n; n *= 2) {
        const double c = covers[cell++];
        const double pred =
            static_cast<double>(n) * n / std::log2(static_cast<double>(k));
        t.add_row({Table::integer(k), Table::integer(n), Table::integer(
                       static_cast<std::uint64_t>(c)),
                   Table::sci(pred), Table::num(c / pred, 3)});
        ns.push_back(n);
        cs.push_back(c);
      }
      const auto fit = rr::analysis::fit_power_law(ns, cs);
      std::printf("k=%u: fitted exponent in n: %.3f (paper: 2), R^2=%.4f\n",
                  k, fit.slope, fit.r_squared);
    }
    std::printf("\n");
    t.print();
  }

  // --- Sweep k at fixed n: ratio to n^2/log2 k flat in k. ---
  {
    const NodeId n = 4 * base_n;
    std::vector<std::pair<NodeId, std::uint32_t>> grid;
    for (std::uint32_t k = 2; k <= 256; k *= 4) grid.push_back({n, k});
    const std::vector<double> covers = cover_grid(grid);

    Table t({"n", "k", "cover", "n^2/log2(k)", "ratio", "speed-up vs k=2"});
    std::vector<double> ratios;
    const double cover2 = covers.front();
    std::size_t cell = 0;
    for (std::uint32_t k = 2; k <= 256; k *= 4) {
      const double c = covers[cell++];
      const double pred =
          static_cast<double>(n) * n / std::log2(static_cast<double>(k));
      t.add_row({Table::integer(n), Table::integer(k),
                 Table::integer(static_cast<std::uint64_t>(c)),
                 Table::sci(pred), Table::num(c / pred, 3),
                 Table::num(cover2 / c, 2)});
      ratios.push_back(c / pred);
    }
    t.print();
    std::printf("ratio flatness across k (max/min): %.2f "
                "(1.0 = perfect Theta(n^2/log k) shape)\n\n",
                rr::analysis::ratio_spread(ratios, std::vector<double>(
                                                       ratios.size(), 1.0)));
  }

  // --- Lemma 14 / Thm 2: other pointer initializations are never worse
  // (up to constants). ---
  {
    const NodeId n = 4 * base_n;
    const std::uint32_t k = 16;
    rr::Rng rng(12345);
    // Pointer vectors drawn serially (the RNG stream is ordered); covers
    // fanned across the pool.
    std::vector<std::pair<std::string, std::vector<std::uint8_t>>> inits;
    inits.emplace_back("shortest path to start (Thm 1)",
                       rr::core::pointers_toward(n, 0));
    inits.emplace_back("all clockwise", rr::core::pointers_uniform(n, 0));
    for (int i = 0; i < 3; ++i) {
      inits.emplace_back("random #" + std::to_string(i),
                         rr::core::pointers_random(n, rng));
    }
    const std::vector<double> covers =
        runner().map(inits.size(), [&](std::uint64_t i) {
          return cover(n, k, inits[i].second);
        });

    Table t({"pointer init", "cover", "vs shortest-path-to-start"});
    const double canonical = covers.front();
    for (std::size_t i = 0; i < inits.size(); ++i) {
      t.add_row({inits[i].first,
                 Table::integer(static_cast<std::uint64_t>(covers[i])),
                 Table::num(covers[i] / canonical, 2)});
    }
    t.print();
    std::printf("\nAll-on-one with ANY pointers stays O(n^2/log k)"
                " (Lemma 14): ratios above should be <= ~1.\n\n");
  }

  // --- Beyond the paper's k < n^(1/11): the follow-up (Kosowski & Pajak,
  // ICALP 2014, ref [21]) shows Theta(max{n, n^2/log k}) for ALL k. The
  // n^2/log k shape should persist even for polynomially large k. ---
  {
    const NodeId n = base_n * 2;
    const std::vector<std::uint32_t> ks = {
        static_cast<std::uint32_t>(base_n) / 8,
        static_cast<std::uint32_t>(base_n) / 2,
        static_cast<std::uint32_t>(base_n) * 2};
    std::vector<std::pair<NodeId, std::uint32_t>> grid;
    for (std::uint32_t k : ks) grid.push_back({n, k});
    const std::vector<double> covers = cover_grid(grid);

    Table t({"n", "k", "k vs n", "cover", "n^2/log2(k)", "ratio"});
    std::size_t cell = 0;
    for (std::uint32_t k : ks) {
      const double c = covers[cell++];
      const double pred =
          static_cast<double>(n) * n / std::log2(static_cast<double>(k));
      t.add_row({Table::integer(n), Table::integer(k),
                 k >= n ? "k >= n" : "k < n",
                 Table::integer(static_cast<std::uint64_t>(c)),
                 Table::sci(pred), Table::num(c / pred, 3)});
    }
    t.print();
    std::printf("\nEven far beyond k = n^(1/11), the worst-placement cover"
                " tracks n^2/log k (ICALP'14 extension, ref [21]).\n");
  }
  return 0;
}
