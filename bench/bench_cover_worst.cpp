// E-RR-W (Table 1 row 1, worst placement; Thms 1, 2, Lemma 14):
//   cover time of k agents all on one node = Theta(n^2 / log k).
//
// Sweeps n at fixed k (ratio to n^2/log2 k must be flat in n) and k at
// fixed n (ratio must be flat in k), for the canonical adversarial pointer
// arrangement (all pointers along the shortest path to the start node) and
// the arbitrary-pointer variants covered by Lemma 14 / Thm 2.

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/fit.hpp"
#include "analysis/table.hpp"
#include "common/rng.hpp"
#include "core/cover_time.hpp"
#include "core/initializers.hpp"

namespace {

using rr::analysis::Table;
using rr::core::NodeId;
using rr::core::RingConfig;

double cover(NodeId n, std::uint32_t k, std::vector<std::uint8_t> ptrs) {
  RingConfig c{n, rr::core::place_all_on_one(k, 0), std::move(ptrs)};
  const auto t = rr::core::ring_cover_time(c);
  return static_cast<double>(t);
}

}  // namespace

int main() {
  rr::analysis::print_bench_header(
      "Worst-placement cover time of the k-agent rotor-router",
      "Thms 1-2, Lemma 14: Theta(n^2/log k), all agents on one node");

  const auto base_n = static_cast<NodeId>(rr::analysis::scaled_pow2(512));

  // --- Sweep n at fixed k (Thm 1 arrangement). ---
  {
    Table t({"k", "n", "cover", "n^2/log2(k)", "ratio"});
    for (std::uint32_t k : {4u, 16u, 64u}) {
      std::vector<double> ns, cs;
      for (NodeId n = base_n; n <= 8 * base_n; n *= 2) {
        const double c = cover(n, k, rr::core::pointers_toward(n, 0));
        const double pred =
            static_cast<double>(n) * n / std::log2(static_cast<double>(k));
        t.add_row({Table::integer(k), Table::integer(n), Table::integer(
                       static_cast<std::uint64_t>(c)),
                   Table::sci(pred), Table::num(c / pred, 3)});
        ns.push_back(n);
        cs.push_back(c);
      }
      const auto fit = rr::analysis::fit_power_law(ns, cs);
      std::printf("k=%u: fitted exponent in n: %.3f (paper: 2), R^2=%.4f\n",
                  k, fit.slope, fit.r_squared);
    }
    std::printf("\n");
    t.print();
  }

  // --- Sweep k at fixed n: ratio to n^2/log2 k flat in k. ---
  {
    const NodeId n = 4 * base_n;
    Table t({"n", "k", "cover", "n^2/log2(k)", "ratio", "speed-up vs k=2"});
    std::vector<double> ks, ratios;
    double cover2 = 0.0;
    for (std::uint32_t k = 2; k <= 256; k *= 4) {
      const double c = cover(n, k, rr::core::pointers_toward(n, 0));
      if (k == 2) cover2 = c;
      const double pred =
          static_cast<double>(n) * n / std::log2(static_cast<double>(k));
      t.add_row({Table::integer(n), Table::integer(k),
                 Table::integer(static_cast<std::uint64_t>(c)),
                 Table::sci(pred), Table::num(c / pred, 3),
                 Table::num(cover2 / c, 2)});
      ks.push_back(k);
      ratios.push_back(c / pred);
    }
    t.print();
    std::printf("ratio flatness across k (max/min): %.2f "
                "(1.0 = perfect Theta(n^2/log k) shape)\n\n",
                rr::analysis::ratio_spread(ratios, std::vector<double>(
                                                       ratios.size(), 1.0)));
  }

  // --- Lemma 14 / Thm 2: other pointer initializations are never worse
  // (up to constants). ---
  {
    const NodeId n = 4 * base_n;
    const std::uint32_t k = 16;
    rr::Rng rng(12345);
    Table t({"pointer init", "cover", "vs shortest-path-to-start"});
    const double canonical = cover(n, k, rr::core::pointers_toward(n, 0));
    t.add_row({"shortest path to start (Thm 1)",
               Table::integer(static_cast<std::uint64_t>(canonical)), "1.00"});
    const double uniform = cover(n, k, rr::core::pointers_uniform(n, 0));
    t.add_row({"all clockwise", Table::integer(static_cast<std::uint64_t>(uniform)),
               Table::num(uniform / canonical, 2)});
    for (int i = 0; i < 3; ++i) {
      const double r = cover(n, k, rr::core::pointers_random(n, rng));
      t.add_row({"random #" + std::to_string(i),
                 Table::integer(static_cast<std::uint64_t>(r)),
                 Table::num(r / canonical, 2)});
    }
    t.print();
    std::printf("\nAll-on-one with ANY pointers stays O(n^2/log k)"
                " (Lemma 14): ratios above should be <= ~1.\n\n");
  }

  // --- Beyond the paper's k < n^(1/11): the follow-up (Kosowski & Pajak,
  // ICALP 2014, ref [21]) shows Theta(max{n, n^2/log k}) for ALL k. The
  // n^2/log k shape should persist even for polynomially large k. ---
  {
    const NodeId n = base_n * 2;
    Table t({"n", "k", "k vs n", "cover", "n^2/log2(k)", "ratio"});
    for (std::uint32_t k : {static_cast<std::uint32_t>(base_n) / 8,
                            static_cast<std::uint32_t>(base_n) / 2,
                            static_cast<std::uint32_t>(base_n) * 2}) {
      const double c = cover(n, k, rr::core::pointers_toward(n, 0));
      const double pred =
          static_cast<double>(n) * n / std::log2(static_cast<double>(k));
      t.add_row({Table::integer(n), Table::integer(k),
                 k >= n ? "k >= n" : "k < n",
                 Table::integer(static_cast<std::uint64_t>(c)),
                 Table::sci(pred), Table::num(c / pred, 3)});
    }
    t.print();
    std::printf("\nEven far beyond k = n^(1/11), the worst-placement cover"
                " tracks n^2/log k (ICALP'14 extension, ref [21]).\n");
  }
  return 0;
}
