// Shard-scaling micro-benchmarks (google-benchmark, like bench_perf).
//
// Agent-steps per second of the general rotor-router as a function of
// shard count on the torus scenarios the roadmap budgets against (64² and
// 256², k = 64), plus a pile-up deployment exercising the batched
// full-cycle exit path. shards = 0 rows are the sequential RotorRouter
// baseline, shards = 1 the sharded engine's single-shard path (the two
// must stay within noise of each other — the SoA layout is shared), and
// higher rows show the scaling the partition buys on multi-core hosts.
// CI uploads the JSON next to bench_perf's so tools/bench_diff.py flags
// scaling regressions commit over commit.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/rotor_router.hpp"
#include "core/sharded_rotor_router.hpp"
#include "graph/generators.hpp"

namespace {

std::vector<rr::graph::NodeId> spread_agents(rr::graph::NodeId n,
                                             std::uint32_t k) {
  std::vector<rr::graph::NodeId> agents(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    agents[i] = static_cast<rr::graph::NodeId>(
        static_cast<std::uint64_t>(i) * n / k);
  }
  return agents;
}

// args: {side, k, shards}; shards == 0 benchmarks the sequential engine.
void BM_ShardedRotorRouterTorus(benchmark::State& state) {
  const auto side = static_cast<rr::graph::NodeId>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  const auto shards = static_cast<std::uint32_t>(state.range(2));
  rr::graph::Graph g = rr::graph::torus(side, side);
  const auto agents = spread_agents(g.num_nodes(), k);
  if (shards == 0) {
    rr::core::RotorRouter rr(g, agents);
    for (auto _ : state) {
      rr.step();
      benchmark::DoNotOptimize(rr.covered_count());
    }
  } else {
    rr::core::ShardedRotorRouter rr(g, agents, {}, shards);
    for (auto _ : state) {
      rr.step();
      benchmark::DoNotOptimize(rr.covered_count());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
  state.SetLabel(shards == 0 ? "sequential"
                             : "shards=" + std::to_string(shards));
}
BENCHMARK(BM_ShardedRotorRouterTorus)
    ->Args({64, 64, 0})
    ->Args({64, 64, 1})
    ->Args({64, 64, 2})
    ->Args({64, 64, 4})
    ->Args({64, 64, 8})
    ->Args({256, 64, 0})
    ->Args({256, 64, 1})
    ->Args({256, 64, 2})
    ->Args({256, 64, 4})
    ->Args({256, 64, 8});

// All k agents piled on one node: the full-cycle exit batching turns the
// O(k) per-round arrival loop into O(deg), so throughput here tracks the
// distribute_exits fast path rather than memory latency.
void BM_ShardedRotorRouterPileUp(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto shards = static_cast<std::uint32_t>(state.range(1));
  rr::graph::Graph g = rr::graph::torus(64, 64);
  const std::vector<rr::graph::NodeId> agents(k, g.num_nodes() / 2);
  if (shards == 0) {
    rr::core::RotorRouter rr(g, agents);
    for (auto _ : state) {
      rr.step();
      benchmark::DoNotOptimize(rr.covered_count());
    }
  } else {
    rr::core::ShardedRotorRouter rr(g, agents, {}, shards);
    for (auto _ : state) {
      rr.step();
      benchmark::DoNotOptimize(rr.covered_count());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
  state.SetLabel(shards == 0 ? "sequential"
                             : "shards=" + std::to_string(shards));
}
BENCHMARK(BM_ShardedRotorRouterPileUp)
    ->Args({4096, 0})
    ->Args({4096, 8});

}  // namespace

BENCHMARK_MAIN();
