// E-F2 (Figure 2 + Lemma 13 + Sec. 2.3): the domain-size profile during
// worst-case exploration.
//
// Fig. 2 depicts one iteration of Phase B of Thm 1's delayed deployment:
// agents hold a "desirable configuration" in which agent i sits at position
// p_i * S with |V_i| ~ a_i * S, where {a_i} is the Lemma 13 sequence. The
// *undelayed* system tracks the same shape: we run all-on-one exploration,
// snapshot the domain profile when the covered prefix reaches S, and
// compare the normalized profile |V_i| / S against a_i. We also verify the
// continuous-model prediction that the covered region grows ~ sqrt(t).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "sim/runner.hpp"
#include "analysis/fit.hpp"
#include "analysis/sequence.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/domains.hpp"
#include "core/initializers.hpp"

namespace {

using rr::analysis::Table;
using rr::core::NodeId;

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Domain-size profile during worst-case exploration",
      "Figure 2, Lemma 13, Sec. 2.3 (continuous-time approximation)");

  const auto n = static_cast<NodeId>(rr::sim::scaled_pow2(4096));
  const std::uint32_t k = 16;
  rr::core::RingRotorRouter rr(n, rr::core::place_all_on_one(k, 0),
                               rr::core::pointers_toward(n, 0));

  const auto seq = rr::analysis::compute_lemma13(k);

  // Snapshot profiles at S = n/4 and S = n/2 covered nodes.
  std::vector<double> sqrt_ts, sqrt_Ss;
  for (double frac : {0.25, 0.5}) {
    const auto target = static_cast<NodeId>(frac * n);
    while (rr.covered_count() < target) rr.step();
    const auto snap = rr::core::compute_domains(rr);
    const double S = static_cast<double>(rr.covered_count());
    sqrt_ts.push_back(static_cast<double>(rr.time()));
    sqrt_Ss.push_back(S);

    std::printf("S = %.0f covered nodes at round %llu: %zu domains\n", S,
                static_cast<unsigned long long>(rr.time()),
                snap.domains.size());
    // The ring run is symmetric (all agents at node 0): domains come in
    // mirror pairs. Order them by size descending and compare the largest
    // k/2 with the Lemma 13 profile of k/2 agents on the half-ring.
    std::vector<double> sizes;
    for (const auto& d : snap.domains) sizes.push_back(d.size);
    std::sort(sizes.rbegin(), sizes.rend());
    const auto half_seq = rr::analysis::compute_lemma13(k / 2);

    Table t({"i (outermost=1)", "|V_i|/S (measured, half-ring)",
             "a_i (Lemma 13, k/2)", "ratio"});
    for (std::uint32_t i = 1; i <= k / 2; ++i) {
      // Each half-ring domain pairs with its mirror: measured share of the
      // half ring = 2 * size / (2 * S/2)... sizes[2(i-1)] and [2i-1] are
      // the mirror pair; average them.
      const double pair_avg = 0.5 * (sizes[2 * (i - 1)] + sizes[2 * i - 1]);
      const double share = pair_avg / (S / 2.0);
      t.add_row({Table::integer(i), Table::num(share, 4),
                 Table::num(half_seq.a[i], 4),
                 Table::num(share / half_seq.a[i], 2)});
    }
    t.print();
    std::printf("\n");
  }

  // sqrt(t) growth: between the two snapshots S ~ sqrt(t) predicts
  // S2/S1 = sqrt(t2/t1).
  const double measured_exp = std::log(sqrt_Ss[1] / sqrt_Ss[0]) /
                              std::log(sqrt_ts[1] / sqrt_ts[0]);
  std::printf("covered-region growth exponent between snapshots: %.3f"
              " (continuous model, Sec. 2.3: 0.5)\n\n",
              measured_exp);

  // Lemma 13 sequence itself, for reference.
  Table seq_table({"i", "a_i", "1/(4 i (H_k+1)) lower bound", "i * a_i"});
  for (std::uint32_t i = 1; i <= k; i = (i < 4 ? i + 1 : i * 2)) {
    const double hk = rr::analysis::harmonic(k);
    seq_table.add_row({Table::integer(i), Table::num(seq.a[i], 5),
                       Table::num(1.0 / (4.0 * i * (hk + 1.0)), 5),
                       Table::num(i * seq.a[i], 4)});
  }
  seq_table.print();
  std::printf("\na_i ~ Theta(1/i) (the outermost agent owns the largest"
              " domain), matching the g(i) ~ i solution of Sec. 2.3.\n");
  return 0;
}
