// E-ODE (Sec. 2.3): the continuous-time approximation vs the discrete
// rotor-router — now through the registered continuous-domain *engine*
// (analysis::ContinuousDomainEngine behind sim::EngineRegistry), so the
// comparison exercises the exact backend the CLI and checkpoint layer
// run, not a side-channel integrator.
//
// The ODE  d nu_i/dt = 1/nu_i - 1/(2 nu_{i-1}) - 1/(2 nu_{i+1})  predicts:
//   (1) the covered region grows like sqrt(t) during exploration,
//   (2) after coverage the stationary profile is flat (equal domains),
//   (3) cover-time order (n/k)^2 for balanced starts.
// Each prediction is compared against the discrete simulator here; the
// hard tolerances live in tests/continuous_engine_test.cpp (the backend's
// convergence gate). With RR_BENCH_JSON set, engine throughput samples
// are appended to the CI artifact for tools/bench_diff.py.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "analysis/continuous_engine.hpp"
#include "analysis/fit.hpp"
#include "analysis/table.hpp"
#include "core/cover_time.hpp"
#include "core/domains.hpp"
#include "core/initializers.hpp"
#include "core/ring_rotor_router.hpp"
#include "graph/descriptor.hpp"
#include "sim/registry.hpp"
#include "sim/runner.hpp"

namespace {

using rr::analysis::ContinuousDomainEngine;
using rr::analysis::Table;
using rr::core::NodeId;

std::unique_ptr<rr::sim::Engine> make_ode(NodeId n,
                                          const std::vector<NodeId>& agents) {
  rr::sim::EngineConfig config;
  config.agents = {agents.begin(), agents.end()};
  std::string error;
  auto engine = rr::sim::EngineRegistry::instance().create(
      "ode", rr::graph::GraphDescriptor::ring(n), config, &error);
  if (!engine) {
    std::fprintf(stderr, "bench_continuous_model: %s\n", error.c_str());
    std::exit(1);  // a registry/config break must fail loudly, not segv
  }
  return engine;
}

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Continuous-domain engine vs discrete rotor-router",
      "Sec. 2.3: sqrt(t) growth, flat stationary profile, cover-time order");

  const auto n = static_cast<NodeId>(rr::sim::scaled_pow2(2048));
  const std::uint32_t k = 8;
  rr::sim::BenchJsonWriter json;

  // --- (1) Growth exponent of the covered region, discrete vs ODE. ---
  {
    rr::core::RingRotorRouter rr(n, rr::core::place_all_on_one(k, 0),
                                 rr::core::pointers_toward(n, 0));
    std::vector<double> ts, Ss;
    NodeId next_target = n / 16;
    while (rr.covered_count() < 3 * n / 4) {
      rr.step();
      if (rr.covered_count() >= next_target) {
        ts.push_back(static_cast<double>(rr.time()));
        Ss.push_back(static_cast<double>(rr.covered_count()));
        next_target = static_cast<NodeId>(next_target * 1.4) + 1;
      }
    }
    const auto discrete_fit = rr::analysis::fit_power_law(ts, Ss);

    auto model = make_ode(n, std::vector<NodeId>(k, 0));
    std::vector<double> mts, mSs;
    double next_sample = 64.0;
    while (model->covered_count() < 3 * n / 4) {
      model->step();
      if (static_cast<double>(model->time()) >= next_sample) {
        mts.push_back(static_cast<double>(model->time()));
        mSs.push_back(static_cast<double>(model->covered_count()));
        next_sample *= 1.4;
      }
    }
    const auto ode_fit = rr::analysis::fit_power_law(mts, mSs);

    Table t({"system", "growth exponent of covered region", "R^2"});
    t.add_row({"discrete rotor-router (k on one node)",
               Table::num(discrete_fit.slope, 3),
               Table::num(discrete_fit.r_squared, 4)});
    t.add_row({"continuous-domain engine", Table::num(ode_fit.slope, 3),
               Table::num(ode_fit.r_squared, 4)});
    t.add_row({"paper prediction (f(t) ~ sqrt t)", "0.5", "-"});
    t.print();
    std::printf("\n");
  }

  // --- (2) Stationary profile after coverage: flat in both systems. ---
  {
    // Uneven starts; both systems run to coverage plus a relaxation tail.
    std::vector<NodeId> agents;
    for (std::uint32_t i = 0; i < k; ++i) {
      agents.push_back(static_cast<NodeId>(
          (static_cast<std::uint64_t>(i) * i * n) / (k * k)));
    }
    const std::uint64_t relax = 8ULL * n * n / k;
    auto model = make_ode(n, agents);
    model->run_until_covered(8ULL * n * n);
    model->run(relax);
    auto* ode = dynamic_cast<ContinuousDomainEngine*>(model.get());
    double lo = 1e300, hi = 0;
    for (double v : ode->sizes()) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    rr::core::RingRotorRouter rr(n, agents,
                                 rr::core::pointers_negative(n, agents));
    rr.run_until_covered(8ULL * n * n);
    rr.run(relax);
    const auto snap = rr::core::compute_domains(rr);

    Table t({"system", "min domain", "max domain", "max/min"});
    t.add_row({"continuous-domain engine (uneven start)", Table::num(lo, 2),
               Table::num(hi, 2), Table::num(hi / lo, 3)});
    t.add_row({"discrete rotor-router", Table::integer(snap.min_size()),
               Table::integer(snap.max_size()),
               Table::num(static_cast<double>(snap.max_size()) /
                              snap.min_size(),
                          3)});
    t.print();
    std::printf("\nBoth relax to an (almost) flat profile; the discrete"
                " system keeps an O(1) ripple (Lemma 12's <=10), the gate"
                " tests/continuous_engine_test.cpp enforces the match.\n\n");
  }

  // --- (3) Cover-time prediction from the ODE engine. ---
  {
    Table t({"k", "discrete cover", "ODE cover", "discrete/ODE"});
    for (std::uint32_t kk : {4u, 8u, 16u}) {
      const auto agents = rr::core::place_equally_spaced(n, kk);
      rr::core::RingConfig c{n, agents,
                             rr::core::pointers_negative(n, agents)};
      const double discrete =
          static_cast<double>(rr::core::ring_cover_time(c));
      auto model = make_ode(n, agents);
      const double ode_t =
          static_cast<double>(model->run_until_covered(8ULL * n * n));
      t.add_row({Table::integer(kk), Table::sci(discrete), Table::sci(ode_t),
                 Table::num(discrete / ode_t, 2)});
    }
    t.print();
    std::printf("\nEqually spaced agents grow k independent domains at"
                " d nu/dt = 1/nu until they link, i.e. cover at t ="
                " (n/k)^2/2 — and the discrete negative-pointer system"
                " matches within a percent: capturing node d costs one"
                " zig-zag traversal of length ~2d, so sum 2d = d^2 = 2t.\n");
  }

  // --- Engine throughput (rounds/s), sampled for the CI artifact. ---
  {
    Table t({"rep", "rounds/s (n=" + std::to_string(n) + ", k=8)"});
    for (int rep = 0; rep < 5; ++rep) {
      auto model = make_ode(n, rr::core::place_equally_spaced(n, k));
      const std::uint64_t rounds = rr::sim::scaled(20000);
      const auto t0 = std::chrono::steady_clock::now();
      model->run(rounds);
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      const double per_s = static_cast<double>(rounds) / dt.count();
      json.add("ContinuousDomainEngine/ring/k8/rounds_per_s", per_s);
      t.add_row({Table::integer(rep), Table::sci(per_s)});
    }
    t.print();
  }
  return 0;
}
