// E-ODE (Sec. 2.3): the continuous-time approximation vs the discrete
// rotor-router.
//
// The ODE  d nu_i/dt = 1/nu_i - 1/(2 nu_{i-1}) - 1/(2 nu_{i+1})  predicts:
//   (1) the covered region grows like sqrt(t) during exploration,
//   (2) after coverage the stationary profile is flat (equal domains),
//   (3) cover-time order (n/k)^2 for balanced starts.
// This bench integrates the model and compares each prediction against the
// discrete simulator.

#include <cmath>
#include <cstdio>
#include <vector>

#include "sim/runner.hpp"
#include "analysis/fit.hpp"
#include "analysis/ode.hpp"
#include "analysis/table.hpp"
#include "core/cover_time.hpp"
#include "core/domains.hpp"
#include "core/initializers.hpp"

namespace {

using rr::analysis::Boundary;
using rr::analysis::ContinuousDomainModel;
using rr::analysis::Table;
using rr::core::NodeId;

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Continuous-time approximation vs discrete rotor-router",
      "Sec. 2.3: sqrt(t) growth, flat stationary profile, cover-time order");

  const auto n = static_cast<NodeId>(rr::sim::scaled_pow2(2048));
  const std::uint32_t k = 8;

  // --- (1) Growth exponent of the covered region, discrete vs ODE. ---
  {
    rr::core::RingRotorRouter rr(n, rr::core::place_all_on_one(k, 0),
                                 rr::core::pointers_toward(n, 0));
    std::vector<double> ts, Ss;
    NodeId next_target = n / 16;
    while (rr.covered_count() < 3 * n / 4) {
      rr.step();
      if (rr.covered_count() >= next_target) {
        ts.push_back(static_cast<double>(rr.time()));
        Ss.push_back(static_cast<double>(rr.covered_count()));
        next_target = static_cast<NodeId>(next_target * 1.4) + 1;
      }
    }
    const auto discrete_fit = rr::analysis::fit_power_law(ts, Ss);

    ContinuousDomainModel model(std::vector<double>(k, 1.0),
                                Boundary::kUncovered);
    std::vector<double> mts, mSs;
    double next_sample = 64.0;
    while (model.total() < 0.75 * n) {
      model.step(0.5);
      if (model.time() >= next_sample) {
        mts.push_back(model.time());
        mSs.push_back(model.total());
        next_sample *= 1.4;
      }
    }
    const auto ode_fit = rr::analysis::fit_power_law(mts, mSs);

    Table t({"system", "growth exponent of covered region", "R^2"});
    t.add_row({"discrete rotor-router (k on one node)",
               Table::num(discrete_fit.slope, 3),
               Table::num(discrete_fit.r_squared, 4)});
    t.add_row({"continuous model", Table::num(ode_fit.slope, 3),
               Table::num(ode_fit.r_squared, 4)});
    t.add_row({"paper prediction (f(t) ~ sqrt t)", "0.5", "-"});
    t.print();
    std::printf("\n");
  }

  // --- (2) Stationary profile after coverage: flat in both systems. ---
  {
    ContinuousDomainModel model({40, 10, 30, 20, 25, 35, 15, 30},
                                Boundary::kCyclic);
    model.run(50000.0, 0.1);
    double lo = 1e300, hi = 0;
    for (double v : model.sizes()) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const auto agents = rr::core::place_equally_spaced(n, k);
    rr::core::RingRotorRouter rr(n, agents,
                                 rr::core::pointers_negative(n, agents));
    rr.run_until_covered(8ULL * n * n);
    rr.run(8ULL * n * n / k);
    const auto snap = rr::core::compute_domains(rr);

    Table t({"system", "min domain", "max domain", "max/min"});
    t.add_row({"continuous model (uneven start)", Table::num(lo, 2),
               Table::num(hi, 2), Table::num(hi / lo, 3)});
    t.add_row({"discrete rotor-router", Table::integer(snap.min_size()),
               Table::integer(snap.max_size()),
               Table::num(static_cast<double>(snap.max_size()) /
                              snap.min_size(),
                          3)});
    t.print();
    std::printf("\nBoth relax to an (almost) flat profile; the discrete"
                " system keeps an O(1) ripple (Lemma 12's <=10).\n\n");
  }

  // --- (3) Cover-time prediction from the ODE. ---
  {
    Table t({"k", "discrete cover", "ODE crossing time", "discrete/ODE"});
    for (std::uint32_t kk : {4u, 8u, 16u}) {
      const auto agents = rr::core::place_equally_spaced(n, kk);
      rr::core::RingConfig c{n, agents,
                             rr::core::pointers_negative(n, agents)};
      const double discrete =
          static_cast<double>(rr::core::ring_cover_time(c));
      // Continuous analogue: k domains of size 1 with uncovered boundary
      // ... equally spaced agents each explore an (n/k)-segment from the
      // middle: model one segment with 1 agent? The collective behaviour
      // is k independent segments; use a single-domain model up to n/k.
      ContinuousDomainModel model({1.0}, Boundary::kUncovered);
      const double ode_t = model.run_until_total(
          static_cast<double>(n) / kk, 0.05, 1e12);
      t.add_row({Table::integer(kk), Table::sci(discrete), Table::sci(ode_t),
                 Table::num(discrete / ode_t, 2)});
    }
    t.print();
    std::printf("\nThe single-domain ODE gives t = (n/k)^2/2, and the"
                " discrete negative-pointer system matches it to within a"
                " percent: capturing node d costs one traversal of length"
                " ~2d in the zig-zag, i.e. sum 2d = d^2 = 2t — exactly the"
                " ODE's 1/nu growth law.\n");
  }
  return 0;
}
