// Steady-state cycle leaping (sim/cycle_jump.hpp): dense vs leap
// throughput post-lock-in, plus the detection-overhead lane.
//
// The paper's periodicity (every deterministic rotor-router run locks
// into an Eulerian circulation) turns long-horizon simulation into a
// detect-once-then-add problem: after confirmation, run(T) advances
// floor((T-t)/p) cycles by patching counters in O(n). This bench pins
// the two numbers the feature is judged by: the post-lock-in rounds/s
// ratio vs dense stepping (target: >= 100x on non-ring backends), and
// the probing overhead on a run that never cycles inside the detection
// budget (target: < 5% of dense throughput).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/eulerian_rotor_router.hpp"
#include "core/rotor_router.hpp"
#include "graph/generators.hpp"
#include "sim/cycle_jump.hpp"
#include "sim/runner.hpp"

namespace {

using rr::analysis::Table;
using rr::graph::Graph;
using rr::graph::NodeId;

const std::vector<std::string> kRotorAccumulators = {"time", "visits", "exits",
                                                     "last_visit"};
const std::vector<std::string> kTokenAccumulators = {"time", "visits"};

std::vector<NodeId> spread_agents(NodeId n, std::uint32_t k) {
  std::vector<NodeId> agents(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    agents[i] = static_cast<NodeId>((static_cast<std::uint64_t>(i) * n) / k);
  }
  return agents;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  // Leap-path timings can undercut the clock tick; floor keeps the
  // reported rate finite instead of infinite.
  return dt.count() > 1e-9 ? dt.count() : 1e-9;
}

double timed_rounds_per_s(rr::sim::Engine& engine, std::uint64_t rounds) {
  const auto t0 = std::chrono::steady_clock::now();
  engine.run(rounds);
  return static_cast<double>(rounds) / seconds_since(t0);
}

}  // namespace

int main() {
  rr::sim::print_bench_header(
      "Steady-state cycle leaping: dense vs leap rounds/s post-lock-in",
      "Lemma 1 periodicity; sim/cycle_jump.hpp");

  rr::sim::BenchJsonWriter json;

  struct Config {
    std::string name;
    std::string backend;  // "rotor" or "eulerian"
    Graph g;
    std::uint32_t k;
  };
  std::vector<Config> configs;
  for (const std::uint32_t k : {4u, 64u}) {
    configs.push_back({"torus(16x16)", "rotor", rr::graph::torus(16, 16), k});
    configs.push_back({"ring(256)", "rotor", rr::graph::ring(256), k});
    configs.push_back({"random_4_regular(256)", "rotor",
                       rr::graph::random_regular(256, 4, 1), k});
    configs.push_back({"torus(16x16)", "eulerian", rr::graph::torus(16, 16), k});
  }

  // Generous budget: the point of this lane is the post-confirmation
  // ratio, not the budget heuristic (the overhead lane below uses the
  // default budget on purpose).
  rr::sim::CycleJumpOptions opt;
  opt.detect_budget = 1ull << 22;

  {
    Table t({"topology", "backend", "k", "dense rounds/s", "leap rounds/s",
             "speed-up", "period"});
    for (const auto& c : configs) {
      const auto agents = spread_agents(c.g.num_nodes(), c.k);
      const auto make = [&]() -> std::unique_ptr<rr::sim::Engine> {
        if (c.backend == "eulerian") {
          return std::make_unique<rr::core::EulerianRotorRouter>(c.g, agents);
        }
        return std::make_unique<rr::core::RotorRouter>(
            c.g, agents, std::vector<std::uint32_t>{});
      };
      auto dense = make();
      auto leap = std::make_unique<rr::sim::CycleJumpEngine>(
          make(),
          c.backend == "eulerian" ? kTokenAccumulators : kRotorAccumulators,
          opt);

      // Warm both engines past lock-in; the wrapped one until its period
      // is confirmed (or the budget abandons — reported as speed-up 1).
      std::uint64_t warm = 0;
      while (!leap->stats().confirmed && !leap->stats().abandoned &&
             warm < (1ull << 23)) {
        leap->run(4096);
        warm += 4096;
      }
      dense->run(warm);

      const std::uint64_t dense_rounds = rr::sim::scaled(2000000);
      const double dense_rate = timed_rounds_per_s(*dense, dense_rounds);
      // A horizon no dense engine could touch: consumed almost entirely
      // by O(n) leaps once the period is live.
      const std::uint64_t leap_rounds =
          leap->stats().confirmed ? 1000000000000ull : dense_rounds;
      const double leap_rate = timed_rounds_per_s(*leap, leap_rounds);

      const std::string tag = "CycleJump/" + c.backend + "/" + c.name + "/k" +
                              std::to_string(c.k);
      json.add(tag + "/dense_rounds_per_s", dense_rate);
      json.add(tag + "/leap_rounds_per_s", leap_rate);
      t.add_row({c.name, c.backend, Table::integer(c.k),
                 Table::sci(dense_rate), Table::sci(leap_rate),
                 Table::sci(leap_rate / dense_rate),
                 leap->stats().confirmed
                     ? Table::integer(leap->stats().period)
                     : "abandoned"});
    }
    t.print();
    std::printf(
        "\nPost-confirmation run() advances whole cycles by patching\n"
        "counters, so the leap lane's rounds/s is horizon-bound, not\n"
        "work-bound: >= 100x over dense stepping on every backend that\n"
        "confirms (the differential lane in tests/cycle_jump_test.cpp\n"
        "gates that the landings are bit-exact).\n\n");
  }

  // --- Detection overhead on a run that never confirms: a lollipop
  // transient (lock-in is Theta(D |E|), astronomically past the default
  // adaptive budget of max(2^16, 32 n) rounds) under default options.
  // The stride-doubling sampler plus the budget cap must keep the
  // wrapped engine within a few percent of dense throughput. ---
  {
    Table t({"lane", "rounds/s", "overhead vs dense"});
    const Graph big = rr::graph::lollipop(1024, 512);
    const auto agents = spread_agents(big.num_nodes(), 16);
    const std::uint64_t rounds = rr::sim::scaled(4000000);
    rr::core::RotorRouter dense(big, agents, {});
    const double dense_rate = timed_rounds_per_s(dense, rounds);
    rr::sim::CycleJumpEngine probed(
        std::make_unique<rr::core::RotorRouter>(big, agents,
                                                std::vector<std::uint32_t>{}),
        kRotorAccumulators, rr::sim::CycleJumpOptions{});
    const double probed_rate = timed_rounds_per_s(probed, rounds);
    const double overhead_pct = (dense_rate / probed_rate - 1.0) * 100.0;
    json.add("CycleJump/overhead/dense_rounds_per_s", dense_rate);
    json.add("CycleJump/overhead/probed_rounds_per_s", probed_rate);
    t.add_row({"dense", Table::sci(dense_rate), "-"});
    t.add_row({"wrapped (probing)", Table::sci(probed_rate),
               Table::num(overhead_pct, 2) + "%"});
    t.print();
    std::printf(
        "\nTransient-heavy runs pay only the sampling + budget cost\n"
        "(confirmed=%d, abandoned=%d after %llu rounds): the wrapper is\n"
        "safe to leave on by default (--cycle-jump auto).\n",
        probed.stats().confirmed ? 1 : 0, probed.stats().abandoned ? 1 : 0,
        static_cast<unsigned long long>(rounds));
  }
  return 0;
}
