#include "analysis/ode.hpp"

#include <numeric>

namespace rr::analysis {

ContinuousDomainModel::ContinuousDomainModel(std::vector<double> nu,
                                             Boundary boundary)
    : nu_(std::move(nu)), boundary_(boundary) {
  RR_REQUIRE(!nu_.empty(), "need at least one domain");
  for (double v : nu_) RR_REQUIRE(v > 0.0, "domain sizes must be positive");
}

std::vector<double> ContinuousDomainModel::derivative(
    const std::vector<double>& nu) const {
  const std::size_t k = nu.size();
  std::vector<double> d(k);
  for (std::size_t i = 0; i < k; ++i) {
    double left_term, right_term;
    if (boundary_ == Boundary::kCyclic) {
      left_term = 0.5 / nu[(i + k - 1) % k];
      right_term = 0.5 / nu[(i + 1) % k];
    } else {
      // nu_0 = nu_{k+1} = +inf: boundary neighbors exert no pressure.
      left_term = (i == 0) ? 0.0 : 0.5 / nu[i - 1];
      right_term = (i + 1 == k) ? 0.0 : 0.5 / nu[i + 1];
    }
    d[i] = 1.0 / nu[i] - left_term - right_term;
  }
  return d;
}

void ContinuousDomainModel::step(double dt) {
  RR_REQUIRE(dt > 0.0, "dt must be positive");
  const std::size_t k = nu_.size();
  const auto k1 = derivative(nu_);
  std::vector<double> tmp(k);
  for (std::size_t i = 0; i < k; ++i) tmp[i] = nu_[i] + 0.5 * dt * k1[i];
  const auto k2 = derivative(tmp);
  for (std::size_t i = 0; i < k; ++i) tmp[i] = nu_[i] + 0.5 * dt * k2[i];
  const auto k3 = derivative(tmp);
  for (std::size_t i = 0; i < k; ++i) tmp[i] = nu_[i] + dt * k3[i];
  const auto k4 = derivative(tmp);
  for (std::size_t i = 0; i < k; ++i) {
    nu_[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    RR_REQUIRE(nu_[i] > 0.0, "domain size went non-positive; reduce dt");
  }
  time_ += dt;
}

void ContinuousDomainModel::run(double duration, double dt) {
  const double t_end = time_ + duration;
  while (time_ < t_end) {
    step(std::min(dt, t_end - time_));
  }
}

double ContinuousDomainModel::run_until_total(double target, double dt,
                                              double max_time) {
  while (total() < target && time_ < max_time) {
    step(dt);
  }
  return time_;
}

double ContinuousDomainModel::total() const {
  return std::accumulate(nu_.begin(), nu_.end(), 0.0);
}

}  // namespace rr::analysis
