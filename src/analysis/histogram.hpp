#pragma once

// Fixed-bin histogram with ASCII rendering (S11 extension).
//
// Used to contrast the *distribution* of inter-visit gaps: the rotor-router
// concentrates on ~2n/k deterministically (Thm 6) while random walks have a
// heavy upper tail (Sec. 4's closing remark about high variance).

#include <cstdint>
#include <string>
#include <vector>

#include "common/require.hpp"

namespace rr::analysis {

class Histogram {
 public:
  /// Bins [lo, hi) split uniformly into `bins` buckets; values outside the
  /// range land in saturating under/overflow buckets.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(const std::vector<double>& xs) {
    for (double x : xs) add(x);
  }

  std::size_t num_bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_[bin]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  double bin_low(std::size_t bin) const {
    return lo_ + static_cast<double>(bin) * width_;
  }
  double bin_high(std::size_t bin) const { return bin_low(bin) + width_; }

  /// Approximate q-quantile from bin boundaries (exact for the bin edges).
  double quantile(double q) const;

  /// Multi-line ASCII bar chart, `width` characters for the largest bin.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace rr::analysis
