#include "analysis/histogram.hpp"

#include <algorithm>
#include <cstdio>

namespace rr::analysis {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  RR_REQUIRE(bins > 0, "need at least one bin");
  RR_REQUIRE(hi > lo, "need hi > lo");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[bin];
}

double Histogram::quantile(double q) const {
  RR_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  RR_REQUIRE(total_ > 0, "quantile of empty histogram");
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double next = cum + static_cast<double>(counts_[b]);
    if (next >= target && counts_[b] > 0) {
      // Linear interpolation within the bin.
      const double frac = (target - cum) / static_cast<double>(counts_[b]);
      return bin_low(b) + frac * width_;
    }
    cum = next;
  }
  return bin_high(counts_.size() - 1);
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (std::uint64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char label[64];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    std::snprintf(label, sizeof(label), "[%8.1f, %8.1f) %8llu |",
                  bin_low(b), bin_high(b),
                  static_cast<unsigned long long>(counts_[b]));
    out += label;
    out += std::string((counts_[b] * width) / peak, '#');
    out += '\n';
  }
  if (underflow_ > 0) {
    std::snprintf(label, sizeof(label), "underflow: %llu\n",
                  static_cast<unsigned long long>(underflow_));
    out += label;
  }
  if (overflow_ > 0) {
    std::snprintf(label, sizeof(label), "overflow:  %llu\n",
                  static_cast<unsigned long long>(overflow_));
    out += label;
  }
  return out;
}

}  // namespace rr::analysis
