#pragma once

// The one-player token game from the proof of Lemma 8 (S14).
//
// k stacks, each starting with eta tokens. A move transfers one token; it
// is *legal* iff the destination stack holds at most 8 tokens more than the
// source. The paper's claim (proved via the y_i invariant) is that after
// any number of legal moves every stack still holds >= eta - 5k + 5 tokens.
// Lazy-domain sizes evolve as a special case of this game, which is how
// Lemma 8's min-domain bound is obtained.

#include <cstdint>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace rr::analysis {

class TokenGame {
 public:
  TokenGame(std::uint32_t k, std::uint64_t eta);

  std::uint32_t num_stacks() const {
    return static_cast<std::uint32_t>(stacks_.size());
  }
  std::uint64_t stack(std::uint32_t i) const { return stacks_[i]; }
  std::uint64_t eta() const { return eta_; }
  std::uint64_t moves_made() const { return moves_; }

  /// Legal iff stacks[to] <= stacks[from] + 8 (and from holds a token).
  bool legal(std::uint32_t from, std::uint32_t to) const;
  /// Applies the move if legal; returns whether it was applied.
  bool try_move(std::uint32_t from, std::uint32_t to);

  std::uint64_t min_stack() const;
  std::uint64_t max_stack() const;
  std::uint64_t total() const;

  /// The paper's invariant bound: eta - 5k + 5 (as a signed value; the
  /// claim is only nontrivial when it is positive).
  std::int64_t invariant_bound() const {
    return static_cast<std::int64_t>(eta_) - 5 * static_cast<std::int64_t>(num_stacks()) + 5;
  }

 private:
  std::uint64_t eta_;
  std::uint64_t moves_ = 0;
  std::vector<std::uint64_t> stacks_;
};

/// Plays `moves` adversarial moves trying to starve a stack (greedy: drain
/// the current minimum into its tallest legal target, with seeded random
/// tie-breaking) and returns the minimum stack height ever observed.
std::uint64_t adversarial_min_stack(std::uint32_t k, std::uint64_t eta,
                                    std::uint64_t moves, std::uint64_t seed);

/// Plays `moves` uniformly random legal moves; returns min height observed.
std::uint64_t random_play_min_stack(std::uint32_t k, std::uint64_t eta,
                                    std::uint64_t moves, std::uint64_t seed);

}  // namespace rr::analysis
