#pragma once

// Continuous domain-dynamics engine (paper Sec. 2.3, as a sim::Engine).
//
// The paper's third view of the ring dynamics is the ODE
//
//   d nu_i / dt = 1/nu_i - 1/(2 nu_{i-1}) - 1/(2 nu_{i+1}),
//
// for the k domain sizes nu_i, with unexplored territory acting as an
// infinite neighbor (no pressure term) and cyclic coupling once the ring
// is covered. analysis/ode.hpp integrates that system on bare size
// vectors; this engine adapts the same RK4 model to the sim::Engine
// clock so the continuum limit can be driven, checkpointed, traced, and
// differential-gated like any discrete backend:
//
//   - round <-> dt mapping: one step() advances model time by exactly
//     1.0 (the discrete system moves every agent one arc per round and
//     the ODE's unit time is calibrated to that — the single-domain
//     uncovered model covers n/k nodes at t = (n/k)^2/2, matching the
//     discrete negative-pointer system within a percent), integrated in
//     `substeps` RK4 sub-intervals;
//
//   - geometry: each domain is a real interval on the ring, anchored at
//     its agent's start node. Domains grow into unexplored territory at
//     rate 1/(2 nu) per free edge, neighboring domains link when their
//     edges meet, and linked borders move by visit-frequency exchange
//     (velocity (1/nu_left - 1/nu_right)/2) — the covered limit is the
//     fully-linked cyclic system whose stationary profile is flat;
//
//   - observers: covered_count()/first_visit_time() are exact integer
//     node crossings of the moving edges; visits(v) is the *integrated
//     domain occupancy* round(1 + \int dt / nu_{d(v)}) — an agent
//     sweeping a domain of size nu visits each of its nodes once per nu
//     rounds — with per-node baselines preserved across border
//     reassignments, so visits stay exact under domain exchange;
//
//   - delays (Sec. 2.1): D(v, t, 1) is sampled once per round at each
//     domain's anchor node; a held domain's sweep rate 1/nu_i drops to 0
//     for the round (it neither grows nor presses on its neighbors).
//
// The model is a continuum approximation, not a bit-level twin of the
// discrete engines: its gate (tests/continuous_engine_test.cpp) asserts
// convergence — covered-limit domain sizes flat and within the discrete
// system's Lemma-12 ripple, cover times within a few percent, sqrt(t)
// exploration growth — rather than lockstep equality. Valid on ring
// substrates only (the registry enforces this).

#include <cstdint>
#include <vector>

#include "common/require.hpp"
#include "sim/engine.hpp"
#include "sim/state_io.hpp"

namespace rr::analysis {

class ContinuousDomainEngine final : public sim::Engine, public sim::StateIO {
 public:
  /// Ring of `n` nodes, one unit-size domain per agent (the paper's
  /// nu_i(0) = 1 convention; co-located agents start as a linked chain
  /// whose span counts as covered — a continuum blur gone by t ~ k).
  /// `substeps` RK4 sub-intervals integrate each round; 4 keeps the
  /// trajectory well inside the stability region at sizes >= 1, and
  /// stiffer states subdivide automatically.
  ContinuousDomainEngine(sim::NodeId n, std::vector<sim::NodeId> agents,
                         std::uint32_t substeps = 4);

  void step() override { round(nullptr); }

  std::uint64_t time() const override { return time_; }
  sim::NodeId num_nodes() const override { return n_; }
  std::uint32_t num_agents() const override {
    return static_cast<std::uint32_t>(anchor_.size());
  }

  std::uint64_t visits(sim::NodeId v) const override;
  std::uint64_t first_visit_time(sim::NodeId v) const override {
    return first_visit_[v];
  }
  sim::NodeId covered_count() const override { return covered_; }

  /// Current domain sizes nu_1..nu_k (model units = ring nodes).
  std::vector<double> sizes() const;
  /// Total covered length sum nu_i (<= n once fully linked).
  double total() const;
  /// True once every neighboring pair of domains has linked (the covered
  /// limit: the cyclic system of the paper's Sec. 2.3).
  bool cyclic() const;
  /// The anchor node of domain `i` (its agent's start; delay sample site).
  sim::NodeId anchor(std::uint32_t i) const { return anchor_[i]; }

  std::uint64_t config_hash() const override;
  const char* engine_name() const override { return "continuous-domain"; }

  /// Full dynamical state, doubles serialized as IEEE-754 bit patterns so
  /// a resumed trajectory is bit-identical to an uninterrupted one.
  void serialize_state(sim::StateWriter& out) const override;
  [[nodiscard]] bool deserialize_state(const sim::StateReader& in) override;

 private:
  void do_step_delayed(const sim::DelayFn& delay) override { round(&delay); }

  void round(const sim::DelayFn* delay);
  void rk4_substep(double h);
  /// d(edge)/dt for every stored edge under the current held mask; linked
  /// borders get the identical velocity on both stored copies.
  void edge_derivatives(const std::vector<double>& left,
                        const std::vector<double>& right,
                        std::vector<double>& d_left,
                        std::vector<double>& d_right) const;
  void link_where_gaps_closed();
  void process_crossings(const std::vector<double>& prev_left,
                         const std::vector<double>& prev_right);
  void mark_covered(std::int64_t coordinate, std::uint32_t domain);
  void reassign(std::int64_t coordinate, std::uint32_t from, std::uint32_t to);
  sim::NodeId wrap(std::int64_t coordinate) const;

  sim::NodeId n_ = 0;
  std::uint32_t substeps_ = 4;
  std::uint64_t time_ = 0;
  sim::NodeId covered_ = 0;

  // Per-domain state, in cyclic ring order of the (sorted) agent starts.
  std::vector<sim::NodeId> anchor_;   // agent start node of domain i
  std::vector<double> edge_left_;     // left edge position (unwrapped real)
  std::vector<double> edge_right_;    // right edge position (unwrapped real)
  std::vector<double> gap_;           // ring distance to domain i+1 (unlinked)
  std::vector<std::uint8_t> linked_;  // 1 = border with domain (i+1)%k exists
  std::vector<double> integral_;      // cumulative \int dt / nu_i
  std::vector<std::uint8_t> held_;    // this round's delay mask

  // Per-node observers.
  std::vector<std::uint64_t> first_visit_;
  std::vector<std::uint32_t> dom_;   // owning domain (valid once covered)
  std::vector<double> base_;         // visits(v) = base_[v] + integral_[dom]

  // RK4 scratch (kept across rounds to avoid per-step allocation).
  std::vector<double> k1l_, k1r_, k2l_, k2r_, k3l_, k3r_, k4l_, k4r_;
  std::vector<double> sl_, sr_;        // RK4 stage state
  std::vector<double> tmpl_, tmpr_;    // substep-start edge snapshot
  std::vector<double> prevl_, prevr_;  // round-start edge snapshot
};

}  // namespace rr::analysis
