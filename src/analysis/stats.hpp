#pragma once

// Statistics utilities (S11): running moments, confidence intervals,
// quantiles. Every randomized experiment in the repository reports its
// estimates with 95% CIs computed here.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/require.hpp"

namespace rr::analysis {

/// Single-pass running mean/variance (Welford) with min/max tracking.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Unbiased sample variance; 0 with fewer than 2 samples.
  double variance() const {
    return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  /// Half-width of the normal-approximation 95% CI of the mean.
  double ci95() const {
    return n_ >= 2 ? 1.96 * stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Quantile by linear interpolation of the sorted sample (q in [0,1]).
inline double quantile(std::vector<double> xs, double q) {
  RR_REQUIRE(!xs.empty(), "quantile of empty sample");
  RR_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  const double idx = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

inline double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

/// k-th harmonic number H_k = 1 + 1/2 + ... + 1/k (paper's Lemma 13).
inline double harmonic(std::uint64_t k) {
  double h = 0.0;
  for (std::uint64_t i = 1; i <= k; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

}  // namespace rr::analysis
