#include "analysis/token_game.hpp"

#include <algorithm>

namespace rr::analysis {

TokenGame::TokenGame(std::uint32_t k, std::uint64_t eta)
    : eta_(eta), stacks_(k, eta) {
  RR_REQUIRE(k >= 2, "token game needs at least two stacks");
}

bool TokenGame::legal(std::uint32_t from, std::uint32_t to) const {
  RR_REQUIRE(from < stacks_.size() && to < stacks_.size(), "stack out of range");
  if (from == to || stacks_[from] == 0) return false;
  return stacks_[to] <= stacks_[from] + 8;
}

bool TokenGame::try_move(std::uint32_t from, std::uint32_t to) {
  if (!legal(from, to)) return false;
  --stacks_[from];
  ++stacks_[to];
  ++moves_;
  return true;
}

std::uint64_t TokenGame::min_stack() const {
  return *std::min_element(stacks_.begin(), stacks_.end());
}

std::uint64_t TokenGame::max_stack() const {
  return *std::max_element(stacks_.begin(), stacks_.end());
}

std::uint64_t TokenGame::total() const {
  std::uint64_t t = 0;
  for (std::uint64_t s : stacks_) t += s;
  return t;
}

std::uint64_t adversarial_min_stack(std::uint32_t k, std::uint64_t eta,
                                    std::uint64_t moves, std::uint64_t seed) {
  TokenGame game(k, eta);
  Rng rng(seed);
  std::uint64_t min_seen = eta;
  for (std::uint64_t m = 0; m < moves; ++m) {
    // Greedy starvation: take from a minimum stack, give to the tallest
    // stack that still accepts (<= min + 8). Random tie-breaks diversify
    // the attack across seeds.
    std::uint32_t from = 0;
    for (std::uint32_t i = 1; i < k; ++i) {
      if (game.stack(i) < game.stack(from) ||
          (game.stack(i) == game.stack(from) && rng.bounded(2))) {
        from = i;
      }
    }
    std::uint32_t best = k;  // invalid
    for (std::uint32_t i = 0; i < k; ++i) {
      if (i == from || !game.legal(from, i)) continue;
      if (best == k || game.stack(i) > game.stack(best) ||
          (game.stack(i) == game.stack(best) && rng.bounded(2))) {
        best = i;
      }
    }
    if (best == k) break;  // no legal move remains
    game.try_move(from, best);
    min_seen = std::min(min_seen, game.min_stack());
  }
  return min_seen;
}

std::uint64_t random_play_min_stack(std::uint32_t k, std::uint64_t eta,
                                    std::uint64_t moves, std::uint64_t seed) {
  TokenGame game(k, eta);
  Rng rng(seed);
  std::uint64_t min_seen = eta;
  for (std::uint64_t m = 0; m < moves; ++m) {
    const std::uint32_t from = rng.bounded(k);
    const std::uint32_t to = rng.bounded(k);
    if (game.try_move(from, to)) {
      min_seen = std::min(min_seen, game.min_stack());
    }
  }
  return min_seen;
}

}  // namespace rr::analysis
