#include "analysis/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/require.hpp"

namespace rr::analysis {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RR_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  RR_REQUIRE(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(width[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print() const { print(std::cout); }

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::integer(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string Table::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

}  // namespace rr::analysis
