#pragma once

// Markdown table printer (S15) used by every bench binary to report
// paper-vs-measured rows with aligned columns.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rr::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders as a GitHub-flavored markdown table with padded columns.
  void print(std::ostream& os) const;
  void print() const;  ///< to stdout

  // Cell formatting helpers.
  static std::string num(double v, int precision = 3);
  static std::string integer(std::uint64_t v);
  static std::string sci(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rr::analysis
