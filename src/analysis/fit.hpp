#pragma once

// Least-squares fits (S11) for Theta-shape verification.
//
// A claim "T = Theta(n^a)" is checked by fitting log T against log n over a
// geometric sweep: the fitted slope should be ~a with R^2 near 1. Claims
// with log factors (e.g. n^2/log k) are checked instead by the flatness of
// measured/predicted ratios (see `ratio_spread`).

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/require.hpp"

namespace rr::analysis {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Ordinary least squares y = slope*x + intercept.
inline LinearFit fit_linear(std::span<const double> xs,
                            std::span<const double> ys) {
  RR_REQUIRE(xs.size() == ys.size(), "mismatched sample sizes");
  RR_REQUIRE(xs.size() >= 2, "need at least two points");
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  RR_REQUIRE(denom != 0.0, "degenerate x sample");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_res = 0, ss_tot = 0;
  const double ybar = sy / n;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.slope * xs[i] + fit.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - ybar) * (ys[i] - ybar);
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

/// Power-law fit y = C * x^a via OLS in log-log space; returns (a, log C, R^2).
inline LinearFit fit_power_law(std::span<const double> xs,
                               std::span<const double> ys) {
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    RR_REQUIRE(xs[i] > 0 && ys[i] > 0, "power-law fit needs positive data");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return fit_linear(lx, ly);
}

/// max(ratio)/min(ratio) over ratios[i] = measured[i]/predicted[i]: the
/// Theta-shape flatness statistic (1.0 = perfectly flat).
inline double ratio_spread(std::span<const double> measured,
                           std::span<const double> predicted) {
  RR_REQUIRE(measured.size() == predicted.size() && !measured.empty(),
             "mismatched or empty samples");
  double lo = measured[0] / predicted[0], hi = lo;
  for (std::size_t i = 1; i < measured.size(); ++i) {
    const double r = measured[i] / predicted[i];
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  RR_REQUIRE(lo > 0, "ratios must be positive");
  return hi / lo;
}

}  // namespace rr::analysis
