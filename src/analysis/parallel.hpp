#pragma once

// Thread-pooled trial runner (S15). Monte-Carlo estimates of random-walk
// expectations need many independent trials; `parallel_trials` spreads
// them over hardware threads deterministically (trial i always receives
// the same derived seed regardless of scheduling).

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "analysis/stats.hpp"
#include "common/require.hpp"

namespace rr::analysis {

/// Runs `fn(trial_index)` for indices [0, trials); returns the results in
/// trial order. `max_threads` 0 = hardware concurrency.
inline std::vector<double> parallel_trials(
    std::uint64_t trials, const std::function<double(std::uint64_t)>& fn,
    unsigned max_threads = 0) {
  RR_REQUIRE(trials > 0, "need at least one trial");
  unsigned threads = max_threads ? max_threads : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = static_cast<unsigned>(
      std::min<std::uint64_t>(threads, trials));

  std::vector<double> results(trials);
  if (threads == 1) {
    for (std::uint64_t i = 0; i < trials; ++i) results[i] = fn(i);
    return results;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (std::uint64_t i = t; i < trials; i += threads) {
        results[i] = fn(i);
      }
    });
  }
  for (auto& th : pool) th.join();
  return results;
}

/// Convenience: run trials and fold into RunningStats.
inline RunningStats parallel_stats(
    std::uint64_t trials, const std::function<double(std::uint64_t)>& fn,
    unsigned max_threads = 0) {
  RunningStats stats;
  for (double x : parallel_trials(trials, fn, max_threads)) stats.add(x);
  return stats;
}

}  // namespace rr::analysis
