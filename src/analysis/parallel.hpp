#pragma once

// Back-compat shim (S15): the thread-pooled trial runner is now
// sim::Runner (sim/runner.hpp) — one batched implementation fanning any
// engine or estimator across hardware threads. These wrappers preserve the
// old free-function API (trial i always receives the same index, results in
// trial order); new code should hold a sim::Runner and reuse its pool.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "analysis/stats.hpp"
#include "sim/runner.hpp"

namespace rr::analysis {

namespace detail {
/// These shims build a throwaway pool per call, so never spawn more
/// workers than there are trials (a single trial runs inline).
inline unsigned trial_threads(std::uint64_t trials, unsigned max_threads) {
  unsigned threads =
      max_threads ? max_threads : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  return static_cast<unsigned>(std::min<std::uint64_t>(threads, trials));
}
}  // namespace detail

/// Runs `fn(trial_index)` for indices [0, trials); returns the results in
/// trial order. `max_threads` 0 = hardware concurrency.
inline std::vector<double> parallel_trials(
    std::uint64_t trials, const std::function<double(std::uint64_t)>& fn,
    unsigned max_threads = 0) {
  sim::Runner runner(detail::trial_threads(trials, max_threads));
  return runner.map(trials, fn);
}

/// Convenience: run trials and fold into RunningStats.
inline RunningStats parallel_stats(
    std::uint64_t trials, const std::function<double(std::uint64_t)>& fn,
    unsigned max_threads = 0) {
  sim::Runner runner(detail::trial_threads(trials, max_threads));
  return runner.stats(trials, fn);
}

}  // namespace rr::analysis
