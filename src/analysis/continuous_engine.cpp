#include "analysis/continuous_engine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/hash.hpp"

namespace rr::analysis {

namespace {

using sim::NodeId;

constexpr double kMinDomain = 1e-9;  // guards 1/nu against degenerate states

std::uint64_t bits_of(double x) { return std::bit_cast<std::uint64_t>(x); }
double double_of(std::uint64_t b) { return std::bit_cast<double>(b); }

std::vector<std::uint64_t> to_bits(const std::vector<double>& xs) {
  std::vector<std::uint64_t> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = bits_of(xs[i]);
  return out;
}

}  // namespace

ContinuousDomainEngine::ContinuousDomainEngine(NodeId n,
                                               std::vector<NodeId> agents,
                                               std::uint32_t substeps)
    : n_(n), substeps_(substeps == 0 ? 1 : substeps) {
  RR_REQUIRE(n >= 1, "ring must have at least one node");
  RR_REQUIRE(!agents.empty() && agents.size() <= n,
             "need 1 <= k <= n agents");
  for (NodeId a : agents) RR_REQUIRE(a < n, "agent out of range");
  std::sort(agents.begin(), agents.end());
  anchor_ = std::move(agents);
  const std::uint32_t k = static_cast<std::uint32_t>(anchor_.size());

  edge_left_.resize(k);
  edge_right_.resize(k);
  gap_.assign(k, 0.0);
  linked_.assign(k, 0);
  integral_.assign(k, 0.0);
  held_.assign(k, 0);
  first_visit_.assign(n_, sim::kNotCovered);
  dom_.assign(n_, 0);
  base_.assign(n_, 0.0);

  // Group co-located agents: m agents stacked on one node start as a
  // linked chain of m unit domains (the paper's nu_i(0) = 1 convention;
  // unit sizes keep the fixed-step RK4 well inside its stability region).
  // The chain's initial span counts as covered — a continuum-limit blur
  // of the single discrete start node, gone by t ~ m.
  std::uint32_t i = 0;
  std::uint32_t groups = 0;
  std::vector<std::uint32_t> group_last;  // last domain index of each group
  std::vector<std::uint32_t> group_size;
  while (i < k) {
    std::uint32_t j = i;
    while (j < k && anchor_[j] == anchor_[i]) ++j;
    const double lo = static_cast<double>(anchor_[i]) - 0.5;
    for (std::uint32_t d = i; d < j; ++d) {
      edge_left_[d] = lo + static_cast<double>(d - i);
      edge_right_[d] = lo + static_cast<double>(d - i + 1);
      if (d + 1 < j) linked_[d] = 1;  // intra-group borders exist already
      mark_covered(static_cast<std::int64_t>(anchor_[i]) + (d - i), d);
    }
    group_last.push_back(j - 1);
    group_size.push_back(j - i);
    ++groups;
    i = j;
  }
  // Ring gaps between consecutive groups (unexplored arc lengths; a
  // stacked chain's span may already overlap its neighbor — the link
  // logic below absorbs the overlap).
  for (std::uint32_t g = 0; g < groups; ++g) {
    const std::uint32_t d = group_last[g];
    const NodeId a = anchor_[d];
    const NodeId b = anchor_[(d + 1) % k];
    const double distance =
        groups == 1 ? static_cast<double>(n_)
                    : static_cast<double>((b + n_ - a) % n_);
    gap_[d] = distance - static_cast<double>(group_size[g]);
  }
  link_where_gaps_closed();  // adjacent / overlapping groups touch at t = 0
}

void ContinuousDomainEngine::round(const sim::DelayFn* delay) {
  ++time_;
  const std::uint32_t k = num_agents();
  if (delay) {
    for (std::uint32_t i = 0; i < k; ++i) {
      held_[i] = (*delay)(anchor_[i], time_, 1) > 0 ? 1 : 0;
    }
  } else {
    std::fill(held_.begin(), held_.end(), std::uint8_t{0});
  }

  prevl_ = edge_left_;   // round-start snapshot for crossing detection
  prevr_ = edge_right_;  // (member scratch: no per-round allocation)
  const double h = 1.0 / substeps_;
  for (std::uint32_t s = 0; s < substeps_; ++s) {
    // RK4 stability guard: the system's stiffness grows like 1/nu_min^2
    // (rates are 1/nu), so a substep that would leave the stability
    // region is subdivided. Unit initial sizes keep parts == 1 in normal
    // runs; shaved domains after an overlap-heavy start need finer steps.
    double nu_min = 1.0;
    for (std::uint32_t i = 0; i < k; ++i) {
      nu_min = std::min(nu_min, edge_right_[i] - edge_left_[i]);
    }
    std::uint32_t parts = 1;
    if (nu_min < 1.0) {
      const double safe = 0.2 * std::max(nu_min, 1.0 / 64) *
                          std::max(nu_min, 1.0 / 64);
      parts = static_cast<std::uint32_t>(
          std::min(4096.0, std::ceil(h / safe)));
      if (parts == 0) parts = 1;
    }
    const double hh = h / parts;
    for (std::uint32_t p = 0; p < parts; ++p) {
      tmpl_ = edge_left_;   // part-start snapshot (gap/integral updates)
      tmpr_ = edge_right_;
      rk4_substep(hh);
      for (std::uint32_t i = 0; i < k; ++i) {
        // Trapezoidal \int dt / nu_i over the part (0 while held).
        if (!held_[i]) {
          const double nu0 = std::max(tmpr_[i] - tmpl_[i], kMinDomain);
          const double nu1 =
              std::max(edge_right_[i] - edge_left_[i], kMinDomain);
          integral_[i] += hh * 0.5 * (1.0 / nu0 + 1.0 / nu1);
        }
        if (!linked_[i]) {
          const std::uint32_t nxt = (i + 1) % k;
          gap_[i] +=
              (edge_left_[nxt] - tmpl_[nxt]) - (edge_right_[i] - tmpr_[i]);
        }
      }
      link_where_gaps_closed();
    }
  }
  process_crossings(prevl_, prevr_);
}

void ContinuousDomainEngine::edge_derivatives(const std::vector<double>& left,
                                              const std::vector<double>& right,
                                              std::vector<double>& d_left,
                                              std::vector<double>& d_right) const {
  // A domain never shrinks below one node: discretely the agent still
  // occupies (and defends) a node, so a linked border stalls instead of
  // squeezing its loser through zero — without this, holding an agent
  // (Sec. 2.1 delays) lets neighbors pinch its domain negative and the
  // 1/nu rate blows up on release.
  constexpr double kPinch = 1.0;
  const std::uint32_t k = num_agents();
  d_left.resize(k);
  d_right.resize(k);
  // Sweep rates: an agent in a domain of size nu visits each border once
  // per 2 nu rounds; a held agent exerts (and feels) no pressure.
  auto rate = [&](std::uint32_t i) {
    if (held_[i]) return 0.0;
    return 1.0 / std::max(right[i] - left[i], kMinDomain);
  };
  // One velocity per boundary object, written to every stored copy so
  // linked edges stay exactly in sync through the RK4 stages.
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::uint32_t nxt = (i + 1) % k;
    if (linked_[i]) {
      double v = 0.5 * (rate(i) - rate(nxt));
      if (v > 0.0 && right[nxt] - left[nxt] <= kPinch) v = 0.0;
      if (v < 0.0 && right[i] - left[i] <= kPinch) v = 0.0;
      d_right[i] = v;
      d_left[nxt] = v;
    } else {
      // Free edges grow into unexplored territory.
      d_right[i] = 0.5 * rate(i);
      d_left[nxt] = -0.5 * rate(nxt);
    }
  }
}

void ContinuousDomainEngine::rk4_substep(double h) {
  const std::uint32_t k = num_agents();
  edge_derivatives(edge_left_, edge_right_, k1l_, k1r_);
  std::vector<double>& sl = sl_;  // stage-state scratch
  std::vector<double>& sr = sr_;
  sl.resize(k);
  sr.resize(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    sl[i] = edge_left_[i] + 0.5 * h * k1l_[i];
    sr[i] = edge_right_[i] + 0.5 * h * k1r_[i];
  }
  edge_derivatives(sl, sr, k2l_, k2r_);
  for (std::uint32_t i = 0; i < k; ++i) {
    sl[i] = edge_left_[i] + 0.5 * h * k2l_[i];
    sr[i] = edge_right_[i] + 0.5 * h * k2r_[i];
  }
  edge_derivatives(sl, sr, k3l_, k3r_);
  for (std::uint32_t i = 0; i < k; ++i) {
    sl[i] = edge_left_[i] + h * k3l_[i];
    sr[i] = edge_right_[i] + h * k3r_[i];
  }
  edge_derivatives(sl, sr, k4l_, k4r_);
  for (std::uint32_t i = 0; i < k; ++i) {
    edge_left_[i] +=
        h / 6.0 * (k1l_[i] + 2.0 * k2l_[i] + 2.0 * k3l_[i] + k4l_[i]);
    edge_right_[i] +=
        h / 6.0 * (k1r_[i] + 2.0 * k2r_[i] + 2.0 * k3r_[i] + k4r_[i]);
  }
}

void ContinuousDomainEngine::link_where_gaps_closed() {
  constexpr double kMinLinkSize = 0.125;  // neither side shaved to nothing
  const std::uint32_t k = num_agents();
  for (std::uint32_t i = 0; i < k; ++i) {
    if (linked_[i] || gap_[i] > 0.0) continue;
    // The edges met. Any overshoot is shaved off the two meeting domains
    // (evenly when both have room) so the border lands where they
    // actually touched; overlapping stacked-start chains can carry a
    // larger overshoot, absorbed proportionally.
    const double overshoot = -gap_[i];
    const std::uint32_t nxt = (i + 1) % k;
    const double room_i =
        std::max(edge_right_[i] - edge_left_[i] - kMinLinkSize, 0.0);
    const double room_n =
        std::max(edge_right_[nxt] - edge_left_[nxt] - kMinLinkSize, 0.0);
    const double shave_i = std::min(0.5 * overshoot, room_i);
    const double shave_n = std::min(overshoot - shave_i, room_n);
    edge_right_[i] -= shave_i;
    edge_left_[nxt] += shave_n;
    gap_[i] = 0.0;
    linked_[i] = 1;
    // Claim the seam: two edges can converge onto a node coordinate from
    // both sides without either ever crossing it (and once linked, the
    // border may sit in equilibrium exactly there forever) — so the
    // integers straddling the meeting point are marked now, as long as
    // they lie inside the merged chain's span.
    const double border = edge_right_[i];
    const std::int64_t below = static_cast<std::int64_t>(std::floor(border));
    if (static_cast<double>(below) >= edge_left_[i]) {
      mark_covered(below, i);
    }
    // The next domain's frame may be offset by a multiple of n; translate
    // the integer above the border through its border coordinate.
    const double above_in_next =
        edge_left_[nxt] + (static_cast<double>(below + 1) - border);
    if (above_in_next <= edge_right_[nxt]) {
      mark_covered(below + 1, nxt);
    }
  }
}

void ContinuousDomainEngine::process_crossings(
    const std::vector<double>& prev_left,
    const std::vector<double>& prev_right) {
  const std::uint32_t k = num_agents();
  // Each domain claims the integer coordinates its own edges passed
  // outward over this round: fresh territory is marked covered, nodes on
  // the losing side of a linked border are reassigned. Loops are bounded
  // by n + 2 as a belt against corrupt (but finite) checkpoint state.
  for (std::uint32_t i = 0; i < k; ++i) {
    std::int64_t lo = static_cast<std::int64_t>(std::floor(prev_right[i])) + 1;
    const std::int64_t hi =
        static_cast<std::int64_t>(std::floor(edge_right_[i]));
    if (hi - lo >= static_cast<std::int64_t>(n_) + 2) {
      lo = hi - static_cast<std::int64_t>(n_) - 1;
    }
    for (std::int64_t j = lo; j <= hi; ++j) {
      const NodeId v = wrap(j);
      if (first_visit_[v] == sim::kNotCovered) {
        mark_covered(j, i);
      } else if (dom_[v] != i) {
        reassign(j, dom_[v], i);
      }
    }
    std::int64_t lhi = static_cast<std::int64_t>(std::ceil(prev_left[i])) - 1;
    const std::int64_t llo =
        static_cast<std::int64_t>(std::ceil(edge_left_[i]));
    if (lhi - llo >= static_cast<std::int64_t>(n_) + 2) {
      lhi = llo + static_cast<std::int64_t>(n_) + 1;
    }
    for (std::int64_t j = lhi; j >= llo; --j) {
      const NodeId v = wrap(j);
      if (first_visit_[v] == sim::kNotCovered) {
        mark_covered(j, i);
      } else if (dom_[v] != i) {
        reassign(j, dom_[v], i);
      }
    }
  }
}

void ContinuousDomainEngine::mark_covered(std::int64_t coordinate,
                                          std::uint32_t domain) {
  const NodeId v = wrap(coordinate);
  if (first_visit_[v] != sim::kNotCovered) return;
  first_visit_[v] = time_;
  dom_[v] = domain;
  base_[v] = 1.0 - integral_[domain];  // the first visit counts 1
  ++covered_;
}

void ContinuousDomainEngine::reassign(std::int64_t coordinate,
                                      std::uint32_t from, std::uint32_t to) {
  const NodeId v = wrap(coordinate);
  base_[v] += integral_[from] - integral_[to];  // visits(v) is continuous
  dom_[v] = to;
}

sim::NodeId ContinuousDomainEngine::wrap(std::int64_t coordinate) const {
  const std::int64_t n = static_cast<std::int64_t>(n_);
  return static_cast<NodeId>(((coordinate % n) + n) % n);
}

std::uint64_t ContinuousDomainEngine::visits(NodeId v) const {
  if (first_visit_[v] == sim::kNotCovered) return 0;
  const double value = base_[v] + integral_[dom_[v]];
  const long long rounded = std::llround(value);
  return rounded < 1 ? 1 : static_cast<std::uint64_t>(rounded);
}

std::vector<double> ContinuousDomainEngine::sizes() const {
  std::vector<double> out(num_agents());
  for (std::uint32_t i = 0; i < out.size(); ++i) {
    out[i] = edge_right_[i] - edge_left_[i];
  }
  return out;
}

double ContinuousDomainEngine::total() const {
  double t = 0.0;
  for (std::uint32_t i = 0; i < num_agents(); ++i) {
    t += edge_right_[i] - edge_left_[i];
  }
  return t;
}

bool ContinuousDomainEngine::cyclic() const {
  return std::all_of(linked_.begin(), linked_.end(),
                     [](std::uint8_t l) { return l != 0; });
}

std::uint64_t ContinuousDomainEngine::config_hash() const {
  Fnv1a h;
  h.mix(n_);
  h.mix(num_agents());
  for (std::uint32_t i = 0; i < num_agents(); ++i) {
    h.mix(bits_of(edge_left_[i]));
    h.mix(bits_of(edge_right_[i]));
    h.mix(linked_[i]);
  }
  return h.value();
}

void ContinuousDomainEngine::serialize_state(sim::StateWriter& out) const {
  out.field_u64("time", time_);
  out.field_u64("substeps", substeps_);
  out.field_list("anchors", anchor_);
  out.field_list("edge_left_bits", to_bits(edge_left_));
  out.field_list("edge_right_bits", to_bits(edge_right_));
  out.field_list("gap_bits", to_bits(gap_));
  out.field_list("integral_bits", to_bits(integral_));
  out.field_bits("linked", linked_);
  out.field_list("first_visit", first_visit_);
  std::vector<std::uint64_t> dom(dom_.begin(), dom_.end());
  out.field_list("dom", dom);
  out.field_list("base_bits", to_bits(base_));
}

bool ContinuousDomainEngine::deserialize_state(const sim::StateReader& in) {
  const auto time = in.u64("time");
  const auto substeps = in.u64("substeps");
  const auto anchors = in.u64_list("anchors");
  if (!time || !substeps || !anchors) return false;
  if (*substeps < 1 || *substeps > 1024) return false;
  const std::size_t k = anchors->size();
  if (k < 1 || k > n_) return false;
  for (std::size_t i = 0; i < k; ++i) {
    if ((*anchors)[i] >= n_) return false;
    if (i > 0 && (*anchors)[i] < (*anchors)[i - 1]) return false;
  }
  const auto left = in.u64_list("edge_left_bits", k);
  const auto right = in.u64_list("edge_right_bits", k);
  const auto gap = in.u64_list("gap_bits", k);
  const auto integral = in.u64_list("integral_bits", k);
  const auto linked = in.bits("linked", k);
  const auto first_visit = in.u64_list("first_visit", n_);
  const auto dom = in.u64_list("dom", n_);
  const auto base = in.u64_list("base_bits", n_);
  if (!left || !right || !gap || !integral || !linked || !first_visit ||
      !dom || !base) {
    return false;
  }
  // The geometry must be sane enough that stepping stays finite and the
  // crossing loops stay bounded: finite edges within a generous multiple
  // of the ring, positive domain sizes, non-negative gaps. The time
  // contribution (borders can common-mode drift under adversarial hold
  // schedules, at well under a node per round) is capped so a crafted
  // time field cannot push accepted coordinates past what the
  // float->int64 casts in process_crossings can represent.
  const double bound = 16.0 * static_cast<double>(n_) + 64.0 +
                       std::min(static_cast<double>(*time), 1e12);
  std::vector<double> el(k), er(k), gp(k), ig(k);
  for (std::size_t i = 0; i < k; ++i) {
    el[i] = double_of((*left)[i]);
    er[i] = double_of((*right)[i]);
    gp[i] = double_of((*gap)[i]);
    ig[i] = double_of((*integral)[i]);
    if (!std::isfinite(el[i]) || !std::isfinite(er[i]) ||
        !std::isfinite(gp[i]) || !std::isfinite(ig[i])) {
      return false;
    }
    if (std::abs(el[i]) > bound || std::abs(er[i]) > bound ||
        gp[i] > bound || ig[i] > bound) {
      return false;
    }
    if (er[i] - el[i] <= 0.0 || gp[i] < 0.0 || ig[i] < 0.0) return false;
  }
  NodeId covered = 0;
  std::vector<double> bs(n_);
  for (NodeId v = 0; v < n_; ++v) {
    bs[v] = double_of((*base)[v]);
    const bool seen = (*first_visit)[v] != sim::kStateSentinel;
    if (seen) {
      if ((*first_visit)[v] > *time) return false;
      if ((*dom)[v] >= k) return false;
      if (!std::isfinite(bs[v]) || std::abs(bs[v]) > bound) return false;
      ++covered;
    }
  }
  time_ = *time;
  substeps_ = static_cast<std::uint32_t>(*substeps);
  anchor_.assign(anchors->begin(), anchors->end());
  edge_left_ = std::move(el);
  edge_right_ = std::move(er);
  gap_ = std::move(gp);
  integral_ = std::move(ig);
  linked_ = *linked;
  held_.assign(k, 0);
  first_visit_ = *first_visit;
  dom_.assign(dom->begin(), dom->end());
  base_ = std::move(bs);
  covered_ = covered;
  return true;
}

}  // namespace rr::analysis
