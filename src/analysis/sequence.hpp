#pragma once

// The Lemma 13 sequence {a_i} (S12).
//
// Theorem 1's delayed deployment shapes agent domains proportionally to a
// normalized stationary solution of the continuous-time model: a sequence
// (a_0 = inf, a_1 > a_2 > ... > a_k = a_{k+1}) with sum a_i = 1 and
//   a_i * a_1 = 2 a_i - 1/a_{i-1} - 1/a_{i+1}    (condition (4)) --
// equivalently, via b_i = 1/(c a_i): b_0 = 0, b_1 = c,
// b_{i+1} = 2 b_i - b_{i-1} - 1/b_i, with c chosen so b_{k+1} = b_k.
// The solver finds c by bisection (d_{k+1}(c) = b_{k+1}-b_k is monotone
// increasing in c in the relevant range) and verifies properties (1)-(6):
// in particular 1/(4(H_k+1)) <= a_1 <= 1/H_k and a_i >= 1/(4 i (H_k+1)).

#include <cstdint>
#include <vector>

namespace rr::analysis {

struct Lemma13Sequence {
  std::uint32_t k = 0;
  double c = 0.0;               ///< the boundary-matching parameter (= 1/sqrt(a_1))
  std::vector<double> a;        ///< a[1..k]; a[0] unused (represents +inf)
  std::vector<double> b;        ///< b[0..k+1] with b_0=0, b_{k+1}=b_k

  /// Partial sums p_i = a_i + ... + a_k (Thm 1's domain anchor positions).
  std::vector<double> prefix_from(std::uint32_t i) const;
  double p(std::uint32_t i) const;
};

/// Computes the sequence for k > 3 to within `tol` on d_{k+1}.
Lemma13Sequence compute_lemma13(std::uint32_t k, double tol = 1e-12);

/// d_{k+1}(c) = b_{k+1}(c) - b_k(c); exposed for tests of the bisection.
double lemma13_boundary_gap(std::uint32_t k, double c);

}  // namespace rr::analysis
