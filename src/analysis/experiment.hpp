#pragma once

// Bench-harness knobs (S15).
//
// Every bench binary reads RR_BENCH_SCALE (a positive float, default 1.0)
// and scales its instance sizes / trial counts by it, so the same binaries
// serve both a quick smoke run (`for b in build/bench/*; do $b; done`,
// minutes total) and a high-fidelity overnight run (RR_BENCH_SCALE=4+).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace rr::analysis {

inline double bench_scale() {
  if (const char* env = std::getenv("RR_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

/// base * scale, rounded, at least `min_value`.
inline std::uint64_t scaled(std::uint64_t base, std::uint64_t min_value = 1) {
  const double v = static_cast<double>(base) * bench_scale();
  const auto r = static_cast<std::uint64_t>(v + 0.5);
  return r < min_value ? min_value : r;
}

/// Scales and rounds to the next power of two (ring sizes sweep cleanly).
inline std::uint64_t scaled_pow2(std::uint64_t base) {
  std::uint64_t v = scaled(base, 4);
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

inline void print_bench_header(const std::string& title,
                               const std::string& paper_ref) {
  std::printf("\n## %s\n\n", title.c_str());
  std::printf("Paper reference: %s | RR_BENCH_SCALE=%.2f\n\n",
              paper_ref.c_str(), bench_scale());
}

}  // namespace rr::analysis
