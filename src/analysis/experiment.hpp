#pragma once

// Back-compat shim (S15): the bench-harness knobs (RR_BENCH_SCALE scaling,
// headers) moved into the batched runner, sim/runner.hpp, alongside the
// thread pool they parameterize. Existing bench drivers keep including this
// header; new code should include sim/runner.hpp directly.

#include "sim/runner.hpp"

namespace rr::analysis {

using sim::bench_scale;
using sim::print_bench_header;
using sim::scaled;
using sim::scaled_pow2;

}  // namespace rr::analysis
