#include "analysis/sequence.hpp"

#include <cmath>

#include "analysis/stats.hpp"
#include "common/require.hpp"

namespace rr::analysis {

namespace {

/// Computes b_0..b_{k+1} for the given c; returns false if the sequence
/// degenerates (some b_i <= 0) before reaching k+1, which signals that c is
/// too small.
bool compute_b(std::uint32_t k, double c, std::vector<double>& b) {
  b.assign(k + 2, 0.0);
  b[0] = 0.0;
  b[1] = c;
  for (std::uint32_t i = 1; i <= k; ++i) {
    if (b[i] <= 0.0) return false;
    b[i + 1] = 2.0 * b[i] - b[i - 1] - 1.0 / b[i];
  }
  return b[k] > 0.0;
}

}  // namespace

double lemma13_boundary_gap(std::uint32_t k, double c) {
  std::vector<double> b;
  if (!compute_b(k, c, b)) {
    // Degenerate: treat as a large negative gap so bisection moves c up.
    return -1e9;
  }
  return b[k + 1] - b[k];
}

Lemma13Sequence compute_lemma13(std::uint32_t k, double tol) {
  RR_REQUIRE(k > 3, "Lemma 13 requires k > 3");
  // d_{k+1}(c) is increasing in c; bracket using the proof's bounds
  // H_k <= c^2 <= 4(H_k + 1).
  const double hk = harmonic(k);
  double lo = std::sqrt(hk) * 0.5;
  double hi = 2.0 * std::sqrt(hk + 1.0) + 1.0;
  RR_REQUIRE(lemma13_boundary_gap(k, lo) < 0.0, "lower bracket not negative");
  RR_REQUIRE(lemma13_boundary_gap(k, hi) > 0.0, "upper bracket not positive");
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double gap = lemma13_boundary_gap(k, mid);
    if (gap < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < tol) break;
  }
  const double c = 0.5 * (lo + hi);

  Lemma13Sequence seq;
  seq.k = k;
  seq.c = c;
  const bool ok = compute_b(k, c, seq.b);
  RR_REQUIRE(ok, "bisection produced a degenerate sequence");
  seq.a.assign(k + 1, 0.0);
  for (std::uint32_t i = 1; i <= k; ++i) seq.a[i] = 1.0 / (c * seq.b[i]);
  return seq;
}

std::vector<double> Lemma13Sequence::prefix_from(std::uint32_t i) const {
  std::vector<double> p(k + 2, 0.0);
  for (std::uint32_t j = k; j >= 1; --j) {
    p[j] = p[j + 1] + a[j];
    if (j == i) break;
  }
  return p;
}

double Lemma13Sequence::p(std::uint32_t i) const {
  RR_REQUIRE(i >= 1 && i <= k, "p(i) defined for 1 <= i <= k");
  double s = 0.0;
  for (std::uint32_t j = i; j <= k; ++j) s += a[j];
  return s;
}

}  // namespace rr::analysis
