#pragma once

// Continuous-time approximation of domain evolution (S13, paper Sec. 2.3).
//
// The paper models the sizes nu_i(t) of the k agent domains by
//   d nu_i / dt = 1/nu_i - 1/(2 nu_{i-1}) - 1/(2 nu_{i+1}),
// where the boundary terms depend on coverage: while part of the ring is
// unexplored, nu_0 = nu_{k+1} = +inf (a barrier of negatively initialized
// pointers); once covered, indices wrap cyclically. The model predicts
// f(t) ~ sqrt(t) growth of the explored region and (in the covered limit)
// equal domain sizes — both checked against the discrete system in
// bench_continuous_model and tests.

#include <cstdint>
#include <vector>

#include "common/require.hpp"

namespace rr::analysis {

enum class Boundary : std::uint8_t {
  kUncovered,  ///< nu_0 = nu_{k+1} = +inf (exploration phase)
  kCyclic,     ///< domains of agents 1 and k are adjacent (ring covered)
};

class ContinuousDomainModel {
 public:
  /// `nu`: initial domain sizes nu_1..nu_k (all > 0).
  ContinuousDomainModel(std::vector<double> nu, Boundary boundary);

  /// One classic RK4 step of size dt (dt must keep all nu_i positive; the
  /// step asserts positivity afterwards).
  void step(double dt);
  void run(double duration, double dt);

  /// Integrates until sum nu_i >= target (returns the crossing time) or
  /// until max_time (returns max_time). Only meaningful with kUncovered.
  double run_until_total(double target, double dt, double max_time);

  double time() const { return time_; }
  const std::vector<double>& sizes() const { return nu_; }
  double total() const;
  Boundary boundary() const { return boundary_; }
  void set_boundary(Boundary b) { boundary_ = b; }

 private:
  std::vector<double> derivative(const std::vector<double>& nu) const;

  std::vector<double> nu_;
  Boundary boundary_;
  double time_ = 0.0;
};

}  // namespace rr::analysis
