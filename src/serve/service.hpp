#pragma once

// Session-multiplexing simulation service (serve layer).
//
// A *session* is a live simulation: an engine built through
// sim::EngineRegistry plus its checkpoint descriptor, addressable by a
// server-assigned id. SessionService owns the session table and the whole
// request/reply state machine of the rr_serverd protocol
// (serve/protocol.hpp), but knows nothing about sockets: the transport
// (examples/rr_serverd.cpp, bench/bench_server.cpp, the tests) feeds it
// decoded frame payloads via handle() and ships back the Outgoing frames
// it produces. That split keeps the scheduler deterministic and testable
// in-process — the differential lane drives it with no daemon at all.
//
// Scheduling. Step requests do not run inline: handle() only queues
// rounds, and pump() — called by the transport between poll iterations —
// advances every runnable session by one bounded *quantum* of rounds.
// Sessions therefore interleave fairly (a 10^9-round request cannot
// starve the table) and the reply for a step request is emitted by the
// pump that drains its last round. When a shared sim::ThreadPool is
// given, one pump steps all runnable sessions in a single for_each —
// pump() must be called from one thread only (the pool's
// single-dispatcher contract; the daemon's poll loop is exactly that
// thread).
//
// Residency. At most `max_live` sessions hold an engine in memory.  Idle
// sessions (no queued rounds for `evict_after` consecutive pumps) are
// evicted: serialized as an rr-ckpt v2 document (segment count pinned to
// kV2DefaultSegments so the bytes are independent of pool width) and
// atomically saved under ckpt_dir, the engine freed. Evicted sessions
// still answer observe (cached summary) and snapshot (the file bytes);
// a step request on one queues it for *rehydration* — pump restores
// evicted waiters FIFO as live slots free up, pressure-evicting finished
// idle sessions when the table is saturated. This is what bounds RSS at
// 10k concurrent sessions (bench_server measures it).
//
// Admission. The table is bounded (`max_sessions`): create/resume beyond
// it answer kBusy and the client retries. A step on a session that is
// already stepping is also kBusy (one in-flight step per session keeps
// the reply matching unambiguous). kEvicted is reserved for sessions
// whose state is actually lost (checkpoint unreadable on rehydration) —
// the session is destroyed and the client must recreate it.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/protocol.hpp"
#include "sim/engine.hpp"

namespace rr::sim {
class ThreadPool;
}  // namespace rr::sim

namespace rr::serve {

struct ServiceOptions {
  std::uint64_t max_sessions = 4096;  ///< session-table bound (admission)
  std::uint64_t max_live = 256;       ///< resident engines (residency)
  std::uint64_t quantum = 64;         ///< rounds per session per pump
  std::uint64_t evict_after = 16;     ///< idle pumps before eviction
  /// Default auto-checkpoint period for sessions created with every == 0
  /// (0 = auto-checkpointing off unless the create request asks).
  std::uint64_t auto_checkpoint_every = 0;
  std::string ckpt_dir = "/tmp";  ///< eviction / auto-checkpoint files
  sim::ThreadPool* pool = nullptr;  ///< shared pool (stepping + ckpt codec)
};

struct ServiceStats {
  std::uint64_t created = 0;
  std::uint64_t destroyed = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rehydrations = 0;
  std::uint64_t busy_replies = 0;
  std::uint64_t evicted_replies = 0;
  std::uint64_t step_requests = 0;
  std::uint64_t rounds_stepped = 0;
};

class SessionService {
 public:
  /// A frame to ship to connection `conn` (transport-assigned ids;
  /// replies go back to the connection that sent the request, trace
  /// events to the one that subscribed).
  struct Outgoing {
    std::uint64_t conn = 0;
    std::string frame;
  };

  explicit SessionService(ServiceOptions opt);
  /// Destroys every session and removes their eviction files.
  ~SessionService();

  SessionService(const SessionService&) = delete;
  SessionService& operator=(const SessionService&) = delete;

  /// Processes one decoded frame payload from `conn`. Replies (and for
  /// malformed payloads, the id-0 error reply) are appended to `out`;
  /// step replies are deferred to the pump that finishes the work.
  void handle(std::uint64_t conn, const std::uint8_t* payload,
              std::size_t size, std::vector<Outgoing>& out);

  /// One scheduler tick: rehydrates waiters into free live slots, steps
  /// every runnable session one quantum (on the shared pool when given),
  /// emits finished step replies and due trace events, and evicts
  /// sessions idle past the threshold. Returns true if any session made
  /// progress. Single-dispatcher: call from one thread only.
  bool pump(std::vector<Outgoing>& out);

  /// True if a pump would do real work now (queued rounds or waiting
  /// rehydrations) — the daemon polls with timeout 0 while this holds.
  bool has_pending_work() const;

  /// A kShutdown request was accepted; the transport should flush and
  /// exit its loop.
  bool shutdown_requested() const { return shutdown_; }

  /// The transport lost `conn`: cancel its trace subscriptions (queued
  /// step work still completes; the transport drops undeliverable
  /// frames).
  void drop_connection(std::uint64_t conn);

  std::uint64_t live_sessions() const { return live_; }
  std::uint64_t total_sessions() const { return sessions_.size(); }
  const ServiceStats& stats() const { return stats_; }

 private:
  struct Session {
    std::uint64_t id = 0;
    std::string engine_name;  ///< Engine::engine_name() (registry key)
    std::string descriptor;   ///< graph descriptor text
    std::unique_ptr<sim::Engine> engine;  ///< null while evicted
    // Summary of the last observed engine state; kept fresh while live,
    // frozen at eviction so observe() answers without rehydrating.
    std::uint64_t time = 0;
    std::uint64_t covered = 0;
    std::uint64_t nodes = 0;
    std::uint64_t agents = 0;
    std::uint64_t config_hash = 0;
    std::uint64_t ckpt_every = 0;  ///< auto-checkpoint period (0 = off)
    // In-flight step request (at most one per session).
    bool step_active = false;
    std::uint64_t pending_rounds = 0;
    std::uint64_t step_req_id = 0;
    std::uint64_t step_conn = 0;
    bool waiting = false;  ///< queued in waiting_ for rehydration
    // Trace subscription: one kTrace push per pump once time passes
    // trace_next, id echoing the subscribe request.
    std::uint64_t trace_every = 0;
    std::uint64_t trace_next = 0;
    std::uint64_t trace_req_id = 0;
    std::uint64_t trace_conn = 0;
    std::uint64_t idle_pumps = 0;
  };

  std::string evict_path(std::uint64_t id) const;
  void refresh_summary(Session& s);
  Reply summary_reply(const Session& s, std::uint64_t req_id,
                      Status status = Status::kOk) const;
  void emit(std::vector<Outgoing>& out, std::uint64_t conn, const Reply& rep);
  Session* find_session(std::uint64_t id);
  /// Serializes + frees the engine; false (session stays live) if the
  /// checkpoint cannot be written.
  bool evict(Session& s);
  /// Restores the engine from the eviction file; false = state lost.
  bool rehydrate(Session& s);
  /// Frees a live slot for a waiter by evicting a finished idle session;
  /// false if every live session is busy.
  bool pressure_evict();
  void arm_auto_checkpoint(Session& s);
  void destroy(std::uint64_t id);

  ServiceOptions opt_;
  ServiceStats stats_;
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::deque<std::uint64_t> waiting_;  ///< evicted sessions with queued work
  std::uint64_t next_id_ = 1;
  std::uint64_t live_ = 0;
  bool shutdown_ = false;
};

}  // namespace rr::serve
