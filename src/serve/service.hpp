#pragma once

// Session-multiplexing simulation service (serve layer).
//
// A *session* is a live simulation: an engine built through
// sim::EngineRegistry plus its checkpoint descriptor, addressable by a
// server-assigned id. SessionService owns the session table and the whole
// request/reply state machine of the rr_serverd protocol
// (serve/protocol.hpp), but knows nothing about sockets: the transport
// (examples/rr_serverd.cpp, bench/bench_server.cpp, the tests) feeds it
// decoded frame payloads via handle() and ships back the Outgoing frames
// it produces. That split keeps the scheduler deterministic and testable
// in-process — the differential lane drives it with no daemon at all.
//
// Scheduling. Step requests do not run inline: handle() only queues
// rounds, and pump() — called by the transport between poll iterations —
// grants runnable sessions bounded *quanta* of rounds. Each session
// carries a QoS class (interactive / batch / background, from the create
// request; pre-QoS clients default to interactive) and the scheduler is
// credit-based weighted round-robin across the classes:
//
//   * interactive sessions are granted a quantum on *every* pump they
//     are runnable — they preempt at quantum boundaries and never wait
//     on batch work;
//   * batch and background sessions share the remaining per-pump round
//     budget (`pump_rounds`) in a 4:1 weight ratio, carrying unused
//     credit forward (bounded), with adaptive larger quanta
//     (`quantum_batch` / `quantum_background`) so throughput work isn't
//     chopped into latency-sized pieces;
//   * queued step requests on one session coalesce: the session runs
//     toward the *latest* requested target in whatever quanta the
//     scheduler grants, and each request's reply is emitted by the pump
//     that crosses its target (the continuous-batching analogue — many
//     requests, one stream of quanta).
//
// `policy` = kFifo disables all of that and grants every runnable
// session one fixed quantum per pump (the pre-QoS scheduler, kept as the
// measurable baseline for bench_server's mixed-QoS lane).
//
// Whatever the policy, scheduling changes only the *order and latency*
// of rounds, never their result: a session's trajectory is a pure
// function of its config, so served runs stay bit-identical to rr_cli
// runs under every policy (the differential tests pin this).
//
// When a shared sim::ThreadPool is given, one pump steps all granted
// sessions in a single multi-lane dispatch (interactive lane first);
// pump() must be called from one thread only (the pool's
// single-dispatcher contract; the daemon's poll loop is exactly that
// thread).
//
// Residency. At most `max_live` sessions hold an engine in memory.  Idle
// sessions (no queued rounds for `evict_after` consecutive pumps) are
// evicted: serialized as an rr-ckpt v2 document (segment count pinned to
// kV2DefaultSegments so the bytes are independent of pool width) and
// atomically saved under ckpt_dir, the engine freed. Evicted sessions
// still answer observe (cached summary) and snapshot (the file bytes);
// a step request on one queues it for *rehydration* — pump restores
// evicted waiters as live slots free up (interactive waiters first),
// pressure-evicting finished idle sessions when the table is saturated,
// preferring background victims. This is what bounds RSS at 10k
// concurrent sessions (bench_server measures it).
//
// Admission. The table is bounded (`max_sessions`): create/resume beyond
// it answer kBusy and the client retries. A session accepts up to
// `max_queued_steps` concurrent step requests (they coalesce, see
// above); beyond that the step answers kBusy. kEvicted is reserved for
// sessions whose state is actually lost (checkpoint unreadable on
// rehydration) — the session is destroyed and the client must recreate
// it.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/protocol.hpp"
#include "sim/cycle_jump.hpp"
#include "sim/engine.hpp"

namespace rr::sim {
class ThreadPool;
}  // namespace rr::sim

namespace rr::serve {

/// Pump scheduling policy. kFifo = every runnable session gets one fixed
/// quantum per pump (pre-QoS behavior, the bench baseline); kQos = the
/// credit-based weighted scheduler described above.
enum class SchedPolicy : std::uint8_t { kFifo = 0, kQos = 1 };

struct ServiceOptions {
  std::uint64_t max_sessions = 4096;  ///< session-table bound (admission)
  std::uint64_t max_live = 256;       ///< resident engines (residency)
  std::uint64_t quantum = 64;         ///< interactive rounds per grant
  std::uint64_t evict_after = 16;     ///< idle pumps before eviction
  SchedPolicy policy = SchedPolicy::kQos;
  /// Adaptive quantum caps for throughput classes (clamped up to
  /// `quantum` if set lower).
  std::uint64_t quantum_batch = 512;
  std::uint64_t quantum_background = 256;
  /// Per-pump round budget shared by batch+background after interactive
  /// grants are taken out (0 = 16 * quantum).
  std::uint64_t pump_rounds = 0;
  /// Concurrent (coalescing) step requests per session before kBusy.
  std::uint64_t max_queued_steps = 16;
  /// Default auto-checkpoint period for sessions created with every == 0
  /// (0 = auto-checkpointing off unless the create request asks).
  std::uint64_t auto_checkpoint_every = 0;
  /// Steady-state cycle leaping applied to session engines at create /
  /// resume / rehydration (sim::wrap_cycle_jump): kAuto wraps
  /// deterministic backends, kOff never wraps, kOn rejects
  /// non-deterministic creates. Requests may opt a session out on the
  /// wire (Request::no_cycle_jump); leaping changes the cost of a step
  /// quantum, never its result, so served trajectories stay bit-identical
  /// under every mode.
  sim::CycleJumpMode cycle_jump = sim::CycleJumpMode::kAuto;
  /// Per-QoS-class override of `cycle_jump`, indexed by QosClass value
  /// (rr_serverd's --cycle-jump-interactive/-batch/-background flags).
  /// Unset classes inherit `cycle_jump`. The wire opt-out still wins:
  /// a session created with no_cycle_jump never leaps whatever its
  /// class says. Background work is where leaping pays (long horizons,
  /// nobody watching the latency), which is why the daemon defaults
  /// that class to kOn.
  std::optional<sim::CycleJumpMode> cycle_jump_class[kNumQosClasses];
  std::string ckpt_dir = "/tmp";  ///< eviction / auto-checkpoint files
  sim::ThreadPool* pool = nullptr;  ///< shared pool (stepping + ckpt codec)
};

/// Per-QoS-class counters (indexed by QosClass value; kInfo prints them).
struct QosClassStats {
  std::uint64_t step_requests = 0;
  std::uint64_t rounds_scheduled = 0;  ///< rounds granted by the scheduler
  std::uint64_t wait_pumps = 0;  ///< runnable-but-not-granted session-pumps
  std::uint64_t busy_replies = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rehydrations = 0;
  std::uint64_t rehydrations_deferred = 0;  ///< step queued on evicted session
  std::uint64_t cj_wrapped = 0;  ///< engines wrapped for cycle leaping
};

struct ServiceStats {
  std::uint64_t created = 0;
  std::uint64_t destroyed = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rehydrations = 0;
  std::uint64_t busy_replies = 0;
  std::uint64_t evicted_replies = 0;
  std::uint64_t step_requests = 0;
  std::uint64_t rounds_stepped = 0;
  QosClassStats qos[kNumQosClasses];
};

class SessionService {
 public:
  /// A frame to ship to connection `conn` (transport-assigned ids;
  /// replies go back to the connection that sent the request, trace
  /// events to the one that subscribed).
  struct Outgoing {
    std::uint64_t conn = 0;
    std::string frame;
  };

  explicit SessionService(ServiceOptions opt);
  /// Destroys every session and removes their eviction files.
  ~SessionService();

  SessionService(const SessionService&) = delete;
  SessionService& operator=(const SessionService&) = delete;

  /// Processes one decoded frame payload from `conn`. Replies (and for
  /// malformed payloads, the id-0 error reply) are appended to `out`;
  /// step replies are deferred to the pump that finishes the work.
  void handle(std::uint64_t conn, const std::uint8_t* payload,
              std::size_t size, std::vector<Outgoing>& out);

  /// One scheduler tick: rehydrates waiters into free live slots, grants
  /// quanta per the scheduling policy (one multi-lane dispatch on the
  /// shared pool when given), emits crossed step replies and due trace
  /// events, and evicts sessions idle past the threshold. Returns true
  /// if any session made progress. Single-dispatcher: call from one
  /// thread only.
  bool pump(std::vector<Outgoing>& out);

  /// True if a pump would do real work now (queued rounds or waiting
  /// rehydrations) — the daemon polls with timeout 0 while this holds.
  bool has_pending_work() const;

  /// A kShutdown request was accepted; the transport should flush and
  /// exit its loop.
  bool shutdown_requested() const { return shutdown_; }

  /// The transport lost `conn`: cancel its trace subscriptions (queued
  /// step work still completes; the transport drops undeliverable
  /// frames).
  void drop_connection(std::uint64_t conn);

  std::uint64_t live_sessions() const { return live_; }
  std::uint64_t total_sessions() const { return sessions_.size(); }
  const ServiceStats& stats() const { return stats_; }

 private:
  /// One queued step request; replies are matched to targets on the
  /// session's own round clock (coalescing keeps them ordered).
  struct StepWaiter {
    std::uint64_t req_id = 0;
    std::uint64_t conn = 0;
    std::uint64_t target_time = 0;  ///< reply when session time reaches this
  };

  struct Session {
    std::uint64_t id = 0;
    QosClass qos = QosClass::kInteractive;
    std::string engine_name;  ///< Engine::engine_name() (registry key)
    std::string descriptor;   ///< graph descriptor text
    std::unique_ptr<sim::Engine> engine;  ///< null while evicted
    // Summary of the last observed engine state; kept fresh while live,
    // frozen at eviction so observe() answers without rehydrating.
    std::uint64_t time = 0;
    std::uint64_t covered = 0;
    std::uint64_t nodes = 0;
    std::uint64_t agents = 0;
    std::uint64_t config_hash = 0;
    std::uint64_t ckpt_every = 0;  ///< auto-checkpoint period (0 = off)
    bool no_cycle_jump = false;    ///< wire opt-out, sticky across rehydration
    // Coalesced step requests: pending_rounds is the distance from the
    // engine clock to the *last* waiter's target.
    std::deque<StepWaiter> step_waiters;
    std::uint64_t pending_rounds = 0;
    bool ready_queued = false;  ///< queued in ready_[qos] for scheduling
    bool waiting = false;       ///< queued in waiting_[qos] for rehydration
    // Trace subscription: one kTrace push per pump once time passes
    // trace_next, id echoing the subscribe request.
    std::uint64_t trace_every = 0;
    std::uint64_t trace_next = 0;
    std::uint64_t trace_req_id = 0;
    std::uint64_t trace_conn = 0;
    std::uint64_t idle_pumps = 0;
  };

  /// A scheduling decision of one pump: session + rounds granted.
  struct Grant {
    Session* s = nullptr;
    std::uint64_t rounds = 0;
  };

  std::string evict_path(std::uint64_t id) const;
  /// The cycle-jump mode for a session: wire opt-out first, then the
  /// class override, then the global mode.
  sim::CycleJumpMode cycle_jump_mode_for(QosClass qos,
                                         bool no_cycle_jump) const;
  /// Counts a completed wrap decision for the class (kInfo observability).
  void note_cycle_jump_wrap(QosClass qos, const sim::Engine& engine);
  void refresh_summary(Session& s);
  Reply summary_reply(const Session& s, std::uint64_t req_id,
                      Status status = Status::kOk) const;
  void emit(std::vector<Outgoing>& out, std::uint64_t conn, const Reply& rep);
  Session* find_session(std::uint64_t id);
  /// Serializes + frees the engine; false (session stays live) if the
  /// checkpoint cannot be written.
  bool evict(Session& s);
  /// Restores the engine from the eviction file; false = state lost.
  bool rehydrate(Session& s);
  /// Frees a live slot for a waiter by evicting a finished idle session —
  /// background victims first, then most-idle, then smallest id (a
  /// deterministic order the tests can pin); false if every live session
  /// is busy.
  bool pressure_evict();
  void arm_auto_checkpoint(Session& s);
  void destroy(std::uint64_t id);
  /// Queues a live session with pending rounds for scheduling (no-op if
  /// already queued).
  void enqueue_ready(Session& s);
  /// Pops the next schedulable session off ready_[c] (skipping stale
  /// ids); nullptr when the class has none.
  Session* pop_ready(std::size_t c);
  std::uint64_t pump_budget() const;
  /// Fills `grants` (one vector per class, dispatched in class order).
  void schedule(std::vector<Grant> (&grants)[kNumQosClasses]);

  ServiceOptions opt_;
  ServiceStats stats_;
  std::unordered_map<std::uint64_t, Session> sessions_;
  /// Evicted sessions with queued work, per class (drained
  /// interactive-first).
  std::deque<std::uint64_t> waiting_[kNumQosClasses];
  /// Live sessions with queued work, per class (round-robin within).
  std::deque<std::uint64_t> ready_[kNumQosClasses];
  /// Deficit credits for the throughput classes (indexed by class).
  std::uint64_t credit_[kNumQosClasses] = {0, 0, 0};
  std::uint64_t next_id_ = 1;
  std::uint64_t live_ = 0;
  bool shutdown_ = false;
};

}  // namespace rr::serve
