#include "serve/service.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "graph/descriptor.hpp"
#include "sim/checkpoint.hpp"
#include "sim/ckpt_v2.hpp"
#include "sim/registry.hpp"
#include "sim/thread_pool.hpp"

namespace rr::serve {

namespace {

Reply error_reply(std::uint64_t req_id, const char* message,
                  Status status = Status::kError) {
  Reply rep;
  rep.id = req_id;
  rep.status = status;
  rep.message = message;
  return rep;
}

}  // namespace

SessionService::SessionService(ServiceOptions opt) : opt_(std::move(opt)) {
  if (opt_.quantum == 0) opt_.quantum = 1;
  if (opt_.max_live == 0) opt_.max_live = 1;
  if (opt_.max_sessions < opt_.max_live) opt_.max_sessions = opt_.max_live;
}

SessionService::~SessionService() {
  for (const auto& [id, s] : sessions_) {
    std::remove(evict_path(id).c_str());
  }
}

std::string SessionService::evict_path(std::uint64_t id) const {
  return opt_.ckpt_dir + "/rr-session-" + std::to_string(id) + ".ckpt";
}

void SessionService::refresh_summary(Session& s) {
  if (!s.engine) return;
  s.time = s.engine->time();
  s.covered = s.engine->covered_count();
  s.nodes = s.engine->num_nodes();
  s.agents = s.engine->num_agents();
  s.config_hash = s.engine->config_hash();
}

Reply SessionService::summary_reply(const Session& s, std::uint64_t req_id,
                                    Status status) const {
  Reply rep;
  rep.id = req_id;
  rep.status = status;
  rep.session = s.id;
  rep.time = s.time;
  rep.covered = s.covered;
  rep.nodes = s.nodes;
  rep.agents = s.agents;
  rep.config_hash = s.config_hash;
  rep.resident = s.engine != nullptr;
  return rep;
}

void SessionService::emit(std::vector<Outgoing>& out, std::uint64_t conn,
                          const Reply& rep) {
  out.push_back(Outgoing{conn, encode_frame(encode_reply(rep))});
}

SessionService::Session* SessionService::find_session(std::uint64_t id) {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

void SessionService::arm_auto_checkpoint(Session& s) {
  if (!s.engine || s.ckpt_every == 0) return;
  // nullptr pool: the sink may fire from inside a pool job when pumps
  // step sessions in parallel, and a worker must not try to dispatch.
  s.engine->set_auto_checkpoint(
      s.ckpt_every, sim::checkpoint_file_sink(evict_path(s.id), s.descriptor,
                                              sim::CkptFormat::kV2, nullptr));
}

bool SessionService::evict(Session& s) {
  refresh_summary(s);
  // Pinning the segment count makes the document byte-identical to what
  // any other writer (rr_cli, the differential tests) produces for the
  // same state, regardless of this service's pool width.
  const std::string text =
      sim::write_checkpoint(*s.engine, s.descriptor, sim::CkptFormat::kV2,
                            sim::kV2DefaultSegments, opt_.pool);
  if (!sim::save_checkpoint_file_atomic(evict_path(s.id), text)) return false;
  s.engine.reset();
  s.idle_pumps = 0;
  --live_;
  ++stats_.evictions;
  return true;
}

bool SessionService::rehydrate(Session& s) {
  auto engine = sim::restore_checkpoint_file(evict_path(s.id), 1, opt_.pool);
  if (!engine) return false;
  s.engine = std::move(engine);
  s.idle_pumps = 0;
  arm_auto_checkpoint(s);
  refresh_summary(s);
  ++live_;
  ++stats_.rehydrations;
  return true;
}

bool SessionService::pressure_evict() {
  for (auto& [id, s] : sessions_) {
    if (s.engine && !s.step_active && s.pending_rounds == 0) {
      if (evict(s)) return true;
    }
  }
  return false;
}

void SessionService::destroy(std::uint64_t id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  if (it->second.engine) --live_;
  std::remove(evict_path(id).c_str());
  sessions_.erase(it);
  ++stats_.destroyed;
}

void SessionService::drop_connection(std::uint64_t conn) {
  // Queued step work still completes (the transport discards frames to a
  // gone connection); only unbounded pushes are cancelled.
  for (auto& [id, s] : sessions_) {
    if (s.trace_every != 0 && s.trace_conn == conn) s.trace_every = 0;
  }
}

bool SessionService::has_pending_work() const {
  if (!waiting_.empty()) return true;
  for (const auto& [id, s] : sessions_) {
    if (s.engine && s.pending_rounds > 0) return true;
  }
  return false;
}

void SessionService::handle(std::uint64_t conn, const std::uint8_t* payload,
                            std::size_t size, std::vector<Outgoing>& out) {
  const auto req = decode_request(payload, size);
  if (!req) {
    emit(out, conn, error_reply(0, "malformed request"));
    return;
  }

  switch (req->op) {
    case Op::kCreate:
    case Op::kResume: {
      if (sessions_.size() >= opt_.max_sessions) {
        ++stats_.busy_replies;
        emit(out, conn,
             error_reply(req->id, "session table full", Status::kBusy));
        return;
      }
      if (live_ >= opt_.max_live && !pressure_evict()) {
        ++stats_.busy_replies;
        emit(out, conn,
             error_reply(req->id, "no live slot free", Status::kBusy));
        return;
      }
      Session s;
      if (req->op == Op::kCreate) {
        const auto d = graph::GraphDescriptor::parse(req->graph);
        const auto n = d ? d->num_nodes() : std::nullopt;
        if (!d || !n || *n == 0) {
          emit(out, conn, error_reply(req->id, "invalid graph descriptor"));
          return;
        }
        std::vector<sim::NodeId> agents;
        if (!req->agents.empty()) {
          agents.reserve(req->agents.size());
          for (std::uint64_t a : req->agents) {
            if (a >= *n) {
              emit(out, conn, error_reply(req->id, "agent node out of range"));
              return;
            }
            agents.push_back(static_cast<sim::NodeId>(a));
          }
        } else {
          if (req->k == 0 || req->k > *n) {
            emit(out, conn,
                 error_reply(req->id, "k must be in [1, num_nodes]"));
            return;
          }
          agents.resize(static_cast<std::size_t>(req->k));
          for (std::uint64_t i = 0; i < req->k; ++i) {
            // Same spread rr_cli uses, so a served run is comparable to
            // a CLI run of the same (engine, graph, k).
            agents[i] = static_cast<sim::NodeId>(i * *n / req->k);
          }
        }
        sim::EngineConfig config;
        config.agents = std::move(agents);
        config.seed = req->seed;
        config.pool = opt_.pool;
        std::string error;
        auto engine = sim::EngineRegistry::instance().create(req->engine, *d,
                                                             config, &error);
        if (!engine) {
          emit(out, conn,
               error_reply(req->id, error.empty() ? "cannot create engine"
                                                  : error.c_str()));
          return;
        }
        s.engine = std::move(engine);
        s.descriptor = d->text();
      } else {
        const auto parsed = sim::parse_checkpoint(req->blob, opt_.pool);
        if (!parsed) {
          emit(out, conn, error_reply(req->id, "malformed checkpoint"));
          return;
        }
        auto engine = sim::restore_checkpoint_sharded(*parsed, 1, opt_.pool);
        if (!engine) {
          emit(out, conn, error_reply(req->id, "cannot restore checkpoint"));
          return;
        }
        s.engine = std::move(engine);
        s.descriptor = parsed->graph_descriptor;
      }
      s.id = next_id_++;
      s.engine_name = s.engine->engine_name();
      s.ckpt_every =
          req->every != 0 ? req->every : opt_.auto_checkpoint_every;
      arm_auto_checkpoint(s);
      refresh_summary(s);
      ++live_;
      ++stats_.created;
      const std::uint64_t id = s.id;
      sessions_.emplace(id, std::move(s));
      emit(out, conn, summary_reply(sessions_.at(id), req->id));
      return;
    }

    case Op::kStep: {
      Session* s = find_session(req->session);
      if (!s) {
        emit(out, conn, error_reply(req->id, "unknown session"));
        return;
      }
      if (s->step_active) {
        ++stats_.busy_replies;
        emit(out, conn,
             error_reply(req->id, "step already in flight", Status::kBusy));
        return;
      }
      ++stats_.step_requests;
      if (req->rounds == 0) {
        if (s->engine) refresh_summary(*s);
        emit(out, conn, summary_reply(*s, req->id));
        return;
      }
      s->step_active = true;
      s->pending_rounds = req->rounds;
      s->step_req_id = req->id;
      s->step_conn = conn;
      s->idle_pumps = 0;
      if (!s->engine && !s->waiting) {
        s->waiting = true;
        waiting_.push_back(s->id);
      }
      return;  // reply comes from the pump that drains the last round
    }

    case Op::kObserve: {
      Session* s = find_session(req->session);
      if (!s) {
        emit(out, conn, error_reply(req->id, "unknown session"));
        return;
      }
      if (s->engine) refresh_summary(*s);
      emit(out, conn, summary_reply(*s, req->id));
      return;
    }

    case Op::kSnapshot: {
      Session* s = find_session(req->session);
      if (!s) {
        emit(out, conn, error_reply(req->id, "unknown session"));
        return;
      }
      if (s->step_active) {
        ++stats_.busy_replies;
        emit(out, conn,
             error_reply(req->id, "step in flight", Status::kBusy));
        return;
      }
      Reply rep = summary_reply(*s, req->id);
      if (s->engine) {
        refresh_summary(*s);
        rep = summary_reply(*s, req->id);
        rep.blob = sim::write_checkpoint(*s->engine, s->descriptor,
                                         sim::CkptFormat::kV2,
                                         sim::kV2DefaultSegments, opt_.pool);
      } else {
        const auto bytes = sim::read_text_file(evict_path(s->id));
        if (!bytes) {
          ++stats_.evicted_replies;
          emit(out, conn,
               error_reply(req->id, "session state lost", Status::kEvicted));
          destroy(s->id);
          return;
        }
        rep.blob = *bytes;
      }
      emit(out, conn, rep);
      return;
    }

    case Op::kDestroy: {
      Session* s = find_session(req->session);
      if (!s) {
        emit(out, conn, error_reply(req->id, "unknown session"));
        return;
      }
      if (s->engine) refresh_summary(*s);
      Reply rep = summary_reply(*s, req->id);
      rep.resident = false;
      destroy(s->id);
      emit(out, conn, rep);
      return;
    }

    case Op::kSubscribeTrace: {
      Session* s = find_session(req->session);
      if (!s) {
        emit(out, conn, error_reply(req->id, "unknown session"));
        return;
      }
      s->trace_every = req->every;
      if (req->every != 0) {
        s->trace_next = s->time + req->every;
        s->trace_req_id = req->id;
        s->trace_conn = conn;
      }
      emit(out, conn, summary_reply(*s, req->id));
      return;
    }

    case Op::kInfo: {
      Reply rep;
      rep.id = req->id;
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "sessions=%llu live=%llu created=%llu destroyed=%llu "
                    "evictions=%llu rehydrations=%llu busy=%llu "
                    "evicted=%llu step_requests=%llu rounds=%llu",
                    static_cast<unsigned long long>(sessions_.size()),
                    static_cast<unsigned long long>(live_),
                    static_cast<unsigned long long>(stats_.created),
                    static_cast<unsigned long long>(stats_.destroyed),
                    static_cast<unsigned long long>(stats_.evictions),
                    static_cast<unsigned long long>(stats_.rehydrations),
                    static_cast<unsigned long long>(stats_.busy_replies),
                    static_cast<unsigned long long>(stats_.evicted_replies),
                    static_cast<unsigned long long>(stats_.step_requests),
                    static_cast<unsigned long long>(stats_.rounds_stepped));
      rep.message = buf;
      emit(out, conn, rep);
      return;
    }

    case Op::kShutdown: {
      shutdown_ = true;
      Reply rep;
      rep.id = req->id;
      rep.message = "shutting down";
      emit(out, conn, rep);
      return;
    }
  }
  emit(out, conn, error_reply(req->id, "unhandled opcode"));
}

bool SessionService::pump(std::vector<Outgoing>& out) {
  bool progress = false;

  // Phase 1: rehydrate waiters FIFO while live slots are (or can be
  // made) available. A waiter whose checkpoint cannot be read has lost
  // its state: kEvicted to the requester, session destroyed.
  while (!waiting_.empty()) {
    if (live_ >= opt_.max_live && !pressure_evict()) break;
    const std::uint64_t id = waiting_.front();
    waiting_.pop_front();
    Session* s = find_session(id);
    if (!s || !s->waiting) continue;  // destroyed while queued
    s->waiting = false;
    if (rehydrate(*s)) {
      progress = true;
    } else {
      ++stats_.evicted_replies;
      if (s->step_active) {
        emit(out, s->step_conn,
             error_reply(s->step_req_id, "session state lost",
                         Status::kEvicted));
      }
      destroy(id);
    }
  }

  // Phase 2: one quantum for every runnable session — a single for_each
  // on the shared pool (this thread is the pool's one dispatcher; the
  // engines themselves never dispatch from inside a job, and nested
  // for_each would run inline anyway).
  std::vector<Session*> runnable;
  for (auto& [id, s] : sessions_) {
    if (s.engine && s.pending_rounds > 0) runnable.push_back(&s);
  }
  if (!runnable.empty()) {
    progress = true;
    std::uint64_t total = 0;
    for (Session* s : runnable) {
      total += std::min(s->pending_rounds, opt_.quantum);
    }
    stats_.rounds_stepped += total;
    const auto step_one = [&](std::uint64_t i) {
      Session* s = runnable[i];
      const std::uint64_t rounds = std::min(s->pending_rounds, opt_.quantum);
      s->engine->run(rounds);
      s->pending_rounds -= rounds;
    };
    if (opt_.pool != nullptr && runnable.size() > 1 &&
        opt_.pool->num_threads() > 1) {
      opt_.pool->for_each(runnable.size(), step_one, 1);
    } else {
      for (std::uint64_t i = 0; i < runnable.size(); ++i) step_one(i);
    }
    // Phase 3 (same pass): finished step replies and due trace events.
    for (Session* s : runnable) {
      refresh_summary(*s);
      if (s->trace_every != 0 && s->time >= s->trace_next) {
        emit(out, s->trace_conn,
             summary_reply(*s, s->trace_req_id, Status::kTrace));
        while (s->trace_next <= s->time) s->trace_next += s->trace_every;
      }
      if (s->step_active && s->pending_rounds == 0) {
        s->step_active = false;
        s->idle_pumps = 0;
        emit(out, s->step_conn, summary_reply(*s, s->step_req_id));
      }
    }
  }

  // Phase 4: idle accounting + eviction. Collect ids first — evict()
  // never erases, but keeping iteration and mutation separate stays
  // robust.
  if (opt_.evict_after != 0) {
    std::vector<std::uint64_t> to_evict;
    for (auto& [id, s] : sessions_) {
      if (!s.engine || s.step_active || s.pending_rounds > 0) continue;
      if (++s.idle_pumps >= opt_.evict_after) to_evict.push_back(id);
    }
    for (std::uint64_t id : to_evict) {
      Session* s = find_session(id);
      if (s && s->engine && evict(*s)) progress = true;
    }
  }

  return progress;
}

}  // namespace rr::serve
