#include "serve/service.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "graph/descriptor.hpp"
#include "sim/checkpoint.hpp"
#include "sim/ckpt_v2.hpp"
#include "sim/registry.hpp"
#include "sim/thread_pool.hpp"

namespace rr::serve {

namespace {

Reply error_reply(std::uint64_t req_id, const char* message,
                  Status status = Status::kError) {
  Reply rep;
  rep.id = req_id;
  rep.status = status;
  rep.message = message;
  return rep;
}

// Batch : background share of the leftover pump budget.
constexpr std::uint64_t kClassWeight[kNumQosClasses] = {0, 4, 1};

// Unused credit carries across pumps (a class briefly displaced by an
// interactive burst catches up) but is bounded so an idle class cannot
// hoard an unbounded backlog entitlement.
constexpr std::uint64_t kCreditCapBudgets = 4;

constexpr std::size_t qos_index(QosClass c) {
  return static_cast<std::size_t>(c);
}

}  // namespace

SessionService::SessionService(ServiceOptions opt) : opt_(std::move(opt)) {
  if (opt_.quantum == 0) opt_.quantum = 1;
  if (opt_.max_live == 0) opt_.max_live = 1;
  if (opt_.max_sessions < opt_.max_live) opt_.max_sessions = opt_.max_live;
  if (opt_.max_queued_steps == 0) opt_.max_queued_steps = 1;
  // Adaptive quanta are *larger* grants for throughput classes; below the
  // interactive quantum they would only add scheduling overhead.
  opt_.quantum_batch = std::max(opt_.quantum_batch, opt_.quantum);
  opt_.quantum_background = std::max(opt_.quantum_background, opt_.quantum);
}

SessionService::~SessionService() {
  for (const auto& [id, s] : sessions_) {
    std::remove(evict_path(id).c_str());
  }
}

std::string SessionService::evict_path(std::uint64_t id) const {
  return opt_.ckpt_dir + "/rr-session-" + std::to_string(id) + ".ckpt";
}

sim::CycleJumpMode SessionService::cycle_jump_mode_for(
    QosClass qos, bool no_cycle_jump) const {
  if (no_cycle_jump) return sim::CycleJumpMode::kOff;
  const auto& cls = opt_.cycle_jump_class[qos_index(qos)];
  return cls ? *cls : opt_.cycle_jump;
}

void SessionService::note_cycle_jump_wrap(QosClass qos,
                                          const sim::Engine& engine) {
  if (dynamic_cast<const sim::CycleJumpEngine*>(&engine) != nullptr) {
    ++stats_.qos[qos_index(qos)].cj_wrapped;
  }
}

void SessionService::refresh_summary(Session& s) {
  if (!s.engine) return;
  s.time = s.engine->time();
  s.covered = s.engine->covered_count();
  s.nodes = s.engine->num_nodes();
  s.agents = s.engine->num_agents();
  s.config_hash = s.engine->config_hash();
}

Reply SessionService::summary_reply(const Session& s, std::uint64_t req_id,
                                    Status status) const {
  Reply rep;
  rep.id = req_id;
  rep.status = status;
  rep.session = s.id;
  rep.time = s.time;
  rep.covered = s.covered;
  rep.nodes = s.nodes;
  rep.agents = s.agents;
  rep.config_hash = s.config_hash;
  rep.resident = s.engine != nullptr;
  return rep;
}

void SessionService::emit(std::vector<Outgoing>& out, std::uint64_t conn,
                          const Reply& rep) {
  out.push_back(Outgoing{conn, encode_frame(encode_reply(rep))});
}

SessionService::Session* SessionService::find_session(std::uint64_t id) {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

void SessionService::arm_auto_checkpoint(Session& s) {
  if (!s.engine || s.ckpt_every == 0) return;
  // nullptr pool: the sink may fire from inside a pool job when pumps
  // step sessions in parallel, and a worker must not try to dispatch.
  s.engine->set_auto_checkpoint(
      s.ckpt_every, sim::checkpoint_file_sink(evict_path(s.id), s.descriptor,
                                              sim::CkptFormat::kV2, nullptr));
}

bool SessionService::evict(Session& s) {
  refresh_summary(s);
  // Pinning the segment count makes the document byte-identical to what
  // any other writer (rr_cli, the differential tests) produces for the
  // same state, regardless of this service's pool width.
  const std::string text =
      sim::write_checkpoint(*s.engine, s.descriptor, sim::CkptFormat::kV2,
                            sim::kV2DefaultSegments, opt_.pool);
  if (!sim::save_checkpoint_file_atomic(evict_path(s.id), text)) return false;
  s.engine.reset();
  s.idle_pumps = 0;
  --live_;
  ++stats_.evictions;
  ++stats_.qos[qos_index(s.qos)].evictions;
  return true;
}

bool SessionService::rehydrate(Session& s) {
  auto engine = sim::restore_checkpoint_file(evict_path(s.id), 1, opt_.pool);
  if (!engine) return false;
  // Re-apply the session's cycle-jump decision: eviction files hold the
  // inner engine's state, so the wrapper is reconstructed. kOn maps to
  // kAuto here — the requirement was enforced at create, and kAuto can
  // never fail, so a rehydration degrades to dense stepping rather than
  // losing the session.
  sim::CycleJumpMode mode = cycle_jump_mode_for(s.qos, s.no_cycle_jump);
  if (mode == sim::CycleJumpMode::kOn) mode = sim::CycleJumpMode::kAuto;
  s.engine = sim::wrap_cycle_jump(std::move(engine), mode);
  note_cycle_jump_wrap(s.qos, *s.engine);
  s.idle_pumps = 0;
  arm_auto_checkpoint(s);
  refresh_summary(s);
  ++live_;
  ++stats_.rehydrations;
  ++stats_.qos[qos_index(s.qos)].rehydrations;
  return true;
}

bool SessionService::pressure_evict() {
  // Deterministic victim order: background class first (lowest priority),
  // then longest-idle, then smallest id.
  std::vector<Session*> candidates;
  for (auto& [id, s] : sessions_) {
    if (s.engine && s.step_waiters.empty() && s.pending_rounds == 0) {
      candidates.push_back(&s);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Session* a, const Session* b) {
              if (a->qos != b->qos) return a->qos > b->qos;
              if (a->idle_pumps != b->idle_pumps)
                return a->idle_pumps > b->idle_pumps;
              return a->id < b->id;
            });
  for (Session* s : candidates) {
    if (evict(*s)) return true;
  }
  return false;
}

void SessionService::destroy(std::uint64_t id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  if (it->second.engine) --live_;
  std::remove(evict_path(id).c_str());
  sessions_.erase(it);  // stale ready_/waiting_ entries are skipped later
  ++stats_.destroyed;
}

void SessionService::drop_connection(std::uint64_t conn) {
  // Queued step work still completes (the transport discards frames to a
  // gone connection); only unbounded pushes are cancelled.
  for (auto& [id, s] : sessions_) {
    if (s.trace_every != 0 && s.trace_conn == conn) s.trace_every = 0;
  }
}

bool SessionService::has_pending_work() const {
  for (const auto& q : waiting_) {
    if (!q.empty()) return true;
  }
  for (const auto& [id, s] : sessions_) {
    if (s.engine && s.pending_rounds > 0) return true;
  }
  return false;
}

void SessionService::enqueue_ready(Session& s) {
  if (s.ready_queued || !s.engine || s.pending_rounds == 0) return;
  s.ready_queued = true;
  ready_[qos_index(s.qos)].push_back(s.id);
}

SessionService::Session* SessionService::pop_ready(std::size_t c) {
  auto& q = ready_[c];
  while (!q.empty()) {
    const std::uint64_t id = q.front();
    q.pop_front();
    Session* s = find_session(id);
    if (!s || !s->ready_queued) continue;  // destroyed while queued
    s->ready_queued = false;
    if (!s->engine || s->pending_rounds == 0) continue;
    return s;
  }
  return nullptr;
}

std::uint64_t SessionService::pump_budget() const {
  return opt_.pump_rounds != 0 ? opt_.pump_rounds : 16 * opt_.quantum;
}

void SessionService::schedule(std::vector<Grant> (&grants)[kNumQosClasses]) {
  if (opt_.policy == SchedPolicy::kFifo) {
    // Baseline scheduler: every runnable session, one fixed quantum, no
    // budget — a saturating batch session head-of-line-blocks everything
    // pumped behind it (this is exactly what the QoS lane measures).
    for (std::size_t c = 0; c < kNumQosClasses; ++c) {
      while (Session* s = pop_ready(c)) {
        grants[c].push_back(
            Grant{s, std::min(s->pending_rounds, opt_.quantum)});
      }
    }
    return;
  }

  // Interactive: granted on every pump they are runnable — strict
  // priority, not budgeted. The pump's wall time is bounded by the
  // interactive population times one quantum plus the budget below.
  std::uint64_t interactive_used = 0;
  while (Session* s = pop_ready(qos_index(QosClass::kInteractive))) {
    const std::uint64_t q = std::min(s->pending_rounds, opt_.quantum);
    grants[qos_index(QosClass::kInteractive)].push_back(Grant{s, q});
    interactive_used += q;
  }

  // Batch + background split what the interactive grants left of the
  // budget, 4:1 by accruing credit, spending it in adaptive quanta
  // (larger than interactive — throughput work shouldn't be chopped into
  // latency-sized pieces). Credit carries across pumps, bounded; a class
  // with nothing runnable forfeits its credit (deficit-round-robin rule:
  // only backlogged classes accumulate).
  const std::uint64_t budget = pump_budget();
  const std::uint64_t spare =
      budget > interactive_used ? budget - interactive_used : 0;
  std::uint64_t weight_sum = 0;
  for (std::size_t c = 1; c < kNumQosClasses; ++c) {
    if (!ready_[c].empty()) weight_sum += kClassWeight[c];
  }
  for (std::size_t c = 1; c < kNumQosClasses; ++c) {
    if (ready_[c].empty()) {
      credit_[c] = 0;
      continue;
    }
    credit_[c] = std::min(credit_[c] + spare * kClassWeight[c] / weight_sum,
                          kCreditCapBudgets * budget);
    const std::uint64_t cap = c == qos_index(QosClass::kBatch)
                                  ? opt_.quantum_batch
                                  : opt_.quantum_background;
    // One pass over the class queue per pump: each popped session gets
    // min(backlog, adaptive cap, remaining credit); sessions the credit
    // cannot reach stay queued (their wait is the wait_pumps counter).
    std::size_t passes = ready_[c].size() + 1;
    while (credit_[c] > 0 && passes-- > 0) {
      Session* s = pop_ready(c);
      if (!s) break;
      const std::uint64_t q =
          std::min({s->pending_rounds, cap, credit_[c]});
      grants[c].push_back(Grant{s, q});
      credit_[c] -= q;
    }
    stats_.qos[c].wait_pumps += ready_[c].size();
  }
}

void SessionService::handle(std::uint64_t conn, const std::uint8_t* payload,
                            std::size_t size, std::vector<Outgoing>& out) {
  const auto req = decode_request(payload, size);
  if (!req) {
    emit(out, conn, error_reply(0, "malformed request"));
    return;
  }

  switch (req->op) {
    case Op::kCreate:
    case Op::kResume: {
      if (sessions_.size() >= opt_.max_sessions) {
        ++stats_.busy_replies;
        ++stats_.qos[qos_index(req->qos)].busy_replies;
        emit(out, conn,
             error_reply(req->id, "session table full", Status::kBusy));
        return;
      }
      if (live_ >= opt_.max_live && !pressure_evict()) {
        ++stats_.busy_replies;
        ++stats_.qos[qos_index(req->qos)].busy_replies;
        emit(out, conn,
             error_reply(req->id, "no live slot free", Status::kBusy));
        return;
      }
      Session s;
      if (req->op == Op::kCreate) {
        const auto d = graph::GraphDescriptor::parse(req->graph);
        const auto n = d ? d->num_nodes() : std::nullopt;
        if (!d || !n || *n == 0) {
          emit(out, conn, error_reply(req->id, "invalid graph descriptor"));
          return;
        }
        std::vector<sim::NodeId> agents;
        if (!req->agents.empty()) {
          agents.reserve(req->agents.size());
          for (std::uint64_t a : req->agents) {
            if (a >= *n) {
              emit(out, conn, error_reply(req->id, "agent node out of range"));
              return;
            }
            agents.push_back(static_cast<sim::NodeId>(a));
          }
        } else {
          if (req->k == 0 || req->k > *n) {
            emit(out, conn,
                 error_reply(req->id, "k must be in [1, num_nodes]"));
            return;
          }
          agents.resize(static_cast<std::size_t>(req->k));
          for (std::uint64_t i = 0; i < req->k; ++i) {
            // Same spread rr_cli uses, so a served run is comparable to
            // a CLI run of the same (engine, graph, k).
            agents[i] = static_cast<sim::NodeId>(i * *n / req->k);
          }
        }
        sim::EngineConfig config;
        config.agents = std::move(agents);
        config.seed = req->seed;
        config.pool = opt_.pool;
        std::string error;
        auto engine = sim::EngineRegistry::instance().create(req->engine, *d,
                                                             config, &error);
        if (!engine) {
          emit(out, conn,
               error_reply(req->id, error.empty() ? "cannot create engine"
                                                  : error.c_str()));
          return;
        }
        s.engine = std::move(engine);
        s.descriptor = d->text();
      } else {
        const auto parsed = sim::parse_checkpoint(req->blob, opt_.pool);
        if (!parsed) {
          emit(out, conn, error_reply(req->id, "malformed checkpoint"));
          return;
        }
        auto engine = sim::restore_checkpoint_sharded(*parsed, 1, opt_.pool);
        if (!engine) {
          emit(out, conn, error_reply(req->id, "cannot restore checkpoint"));
          return;
        }
        s.engine = std::move(engine);
        s.descriptor = parsed->graph_descriptor;
      }
      s.no_cycle_jump = req->no_cycle_jump;
      s.qos = req->qos;
      {
        // Wrap before arming auto-checkpoints so leap scheduling honors
        // the checkpoint marks; the wrapper forwards every observable and
        // serializes the inner state, so summaries, snapshots and
        // evictions are unchanged. The mode resolves per QoS class: a
        // class-level kOn keeps its strict meaning (a non-deterministic
        // create in that class is an error the client must opt out of
        // with no_cycle_jump or a different class).
        std::string cj_error;
        s.engine = sim::wrap_cycle_jump(
            std::move(s.engine),
            cycle_jump_mode_for(s.qos, s.no_cycle_jump), {}, &cj_error);
        if (!s.engine) {
          emit(out, conn, error_reply(req->id, cj_error.c_str()));
          return;
        }
        note_cycle_jump_wrap(s.qos, *s.engine);
      }
      s.id = next_id_++;
      s.engine_name = s.engine->engine_name();
      s.ckpt_every =
          req->every != 0 ? req->every : opt_.auto_checkpoint_every;
      arm_auto_checkpoint(s);
      refresh_summary(s);
      ++live_;
      ++stats_.created;
      const std::uint64_t id = s.id;
      sessions_.emplace(id, std::move(s));
      emit(out, conn, summary_reply(sessions_.at(id), req->id));
      return;
    }

    case Op::kStep: {
      Session* s = find_session(req->session);
      if (!s) {
        emit(out, conn, error_reply(req->id, "unknown session"));
        return;
      }
      const std::size_t cls = qos_index(s->qos);
      if (s->step_waiters.size() >= opt_.max_queued_steps) {
        ++stats_.busy_replies;
        ++stats_.qos[cls].busy_replies;
        emit(out, conn,
             error_reply(req->id, "step queue full", Status::kBusy));
        return;
      }
      ++stats_.step_requests;
      ++stats_.qos[cls].step_requests;
      if (req->rounds == 0) {
        if (s->engine) refresh_summary(*s);
        emit(out, conn, summary_reply(*s, req->id));
        return;
      }
      // Coalescing: this request's target extends the previous one (or
      // the engine clock when the queue is idle); the scheduler runs the
      // session toward the last target in whatever quanta it grants and
      // each reply fires as its own target is crossed.
      if (s->engine && s->step_waiters.empty()) refresh_summary(*s);
      const std::uint64_t from =
          s->step_waiters.empty() ? s->time : s->step_waiters.back().target_time;
      if (from + req->rounds < from) {  // would wrap the round clock
        emit(out, conn,
             error_reply(req->id, "rounds overflow the session clock"));
        return;
      }
      s->step_waiters.push_back(StepWaiter{req->id, conn, from + req->rounds});
      s->pending_rounds += req->rounds;
      s->idle_pumps = 0;
      if (s->engine) {
        enqueue_ready(*s);
      } else if (!s->waiting) {
        s->waiting = true;
        waiting_[cls].push_back(s->id);
        ++stats_.qos[cls].rehydrations_deferred;
      }
      return;  // replies come from the pumps that cross the targets
    }

    case Op::kObserve: {
      Session* s = find_session(req->session);
      if (!s) {
        emit(out, conn, error_reply(req->id, "unknown session"));
        return;
      }
      if (s->engine) refresh_summary(*s);
      emit(out, conn, summary_reply(*s, req->id));
      return;
    }

    case Op::kSnapshot: {
      Session* s = find_session(req->session);
      if (!s) {
        emit(out, conn, error_reply(req->id, "unknown session"));
        return;
      }
      if (!s->step_waiters.empty()) {
        ++stats_.busy_replies;
        ++stats_.qos[qos_index(s->qos)].busy_replies;
        emit(out, conn,
             error_reply(req->id, "step in flight", Status::kBusy));
        return;
      }
      Reply rep = summary_reply(*s, req->id);
      if (s->engine) {
        refresh_summary(*s);
        rep = summary_reply(*s, req->id);
        rep.blob = sim::write_checkpoint(*s->engine, s->descriptor,
                                         sim::CkptFormat::kV2,
                                         sim::kV2DefaultSegments, opt_.pool);
      } else {
        const auto bytes = sim::read_text_file(evict_path(s->id));
        if (!bytes) {
          ++stats_.evicted_replies;
          emit(out, conn,
               error_reply(req->id, "session state lost", Status::kEvicted));
          destroy(s->id);
          return;
        }
        rep.blob = *bytes;
      }
      emit(out, conn, rep);
      return;
    }

    case Op::kDestroy: {
      Session* s = find_session(req->session);
      if (!s) {
        emit(out, conn, error_reply(req->id, "unknown session"));
        return;
      }
      if (s->engine) refresh_summary(*s);
      Reply rep = summary_reply(*s, req->id);
      rep.resident = false;
      destroy(s->id);
      emit(out, conn, rep);
      return;
    }

    case Op::kSubscribeTrace: {
      Session* s = find_session(req->session);
      if (!s) {
        emit(out, conn, error_reply(req->id, "unknown session"));
        return;
      }
      s->trace_every = req->every;
      if (req->every != 0) {
        s->trace_next = s->time + req->every;
        s->trace_req_id = req->id;
        s->trace_conn = conn;
      }
      emit(out, conn, summary_reply(*s, req->id));
      return;
    }

    case Op::kInfo: {
      Reply rep;
      rep.id = req->id;
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "sessions=%llu live=%llu created=%llu destroyed=%llu "
                    "evictions=%llu rehydrations=%llu busy=%llu "
                    "evicted=%llu step_requests=%llu rounds=%llu",
                    static_cast<unsigned long long>(sessions_.size()),
                    static_cast<unsigned long long>(live_),
                    static_cast<unsigned long long>(stats_.created),
                    static_cast<unsigned long long>(stats_.destroyed),
                    static_cast<unsigned long long>(stats_.evictions),
                    static_cast<unsigned long long>(stats_.rehydrations),
                    static_cast<unsigned long long>(stats_.busy_replies),
                    static_cast<unsigned long long>(stats_.evicted_replies),
                    static_cast<unsigned long long>(stats_.step_requests),
                    static_cast<unsigned long long>(stats_.rounds_stepped));
      rep.message = buf;
      for (std::size_t c = 0; c < kNumQosClasses; ++c) {
        const QosClassStats& q = stats_.qos[c];
        std::snprintf(
            buf, sizeof buf,
            " qos[%s]={steps=%llu rounds=%llu waits=%llu busy=%llu "
            "evictions=%llu rehydrations=%llu deferred=%llu cj=%llu}",
            qos_class_name(static_cast<QosClass>(c)),
            static_cast<unsigned long long>(q.step_requests),
            static_cast<unsigned long long>(q.rounds_scheduled),
            static_cast<unsigned long long>(q.wait_pumps),
            static_cast<unsigned long long>(q.busy_replies),
            static_cast<unsigned long long>(q.evictions),
            static_cast<unsigned long long>(q.rehydrations),
            static_cast<unsigned long long>(q.rehydrations_deferred),
            static_cast<unsigned long long>(q.cj_wrapped));
        rep.message += buf;
      }
      emit(out, conn, rep);
      return;
    }

    case Op::kShutdown: {
      shutdown_ = true;
      Reply rep;
      rep.id = req->id;
      rep.message = "shutting down";
      emit(out, conn, rep);
      return;
    }
  }
  emit(out, conn, error_reply(req->id, "unhandled opcode"));
}

bool SessionService::pump(std::vector<Outgoing>& out) {
  bool progress = false;

  // Phase 1: rehydrate waiters while live slots are (or can be made)
  // available — interactive waiters first, then batch, then background
  // (eviction pressure is the mirror image: background victims first).
  // A waiter whose checkpoint cannot be read has lost its state:
  // kEvicted to every queued requester, session destroyed.
  bool table_full = false;
  for (std::size_t c = 0; c < kNumQosClasses && !table_full; ++c) {
    auto& wq = waiting_[c];
    while (!wq.empty()) {
      if (live_ >= opt_.max_live && !pressure_evict()) {
        table_full = true;
        break;
      }
      const std::uint64_t id = wq.front();
      wq.pop_front();
      Session* s = find_session(id);
      if (!s || !s->waiting) continue;  // destroyed while queued
      s->waiting = false;
      if (rehydrate(*s)) {
        progress = true;
        enqueue_ready(*s);
      } else {
        ++stats_.evicted_replies;
        for (const StepWaiter& w : s->step_waiters) {
          emit(out, w.conn,
               error_reply(w.req_id, "session state lost", Status::kEvicted));
        }
        destroy(id);
      }
    }
  }

  // Phase 2: the scheduling policy turns the per-class ready queues into
  // grants, dispatched as one multi-lane batch on the shared pool —
  // lane 0 (interactive) is claimed ahead of the throughput lanes, so
  // priority holds inside the fork-join too. This thread is the pool's
  // one dispatcher; the engines themselves never dispatch from inside a
  // job, and nested for_each would run inline anyway.
  std::vector<Grant> grants[kNumQosClasses];
  schedule(grants);
  std::size_t total_grants = 0;
  for (std::size_t c = 0; c < kNumQosClasses; ++c) {
    total_grants += grants[c].size();
    for (const Grant& g : grants[c]) {
      stats_.rounds_stepped += g.rounds;
      stats_.qos[c].rounds_scheduled += g.rounds;
    }
  }
  if (total_grants > 0) {
    progress = true;
    const auto run_grant = [&](std::size_t lane, std::uint64_t i) {
      const Grant& g = grants[lane][i];
      g.s->engine->run(g.rounds);
      g.s->pending_rounds -= g.rounds;
    };
    if (opt_.pool != nullptr && total_grants > 1 &&
        opt_.pool->num_threads() > 1) {
      std::vector<sim::ThreadPool::LaneSpec> lanes(kNumQosClasses);
      for (std::size_t c = 0; c < kNumQosClasses; ++c) {
        lanes[c] = sim::ThreadPool::LaneSpec{grants[c].size(), 1};
      }
      opt_.pool->for_each_lanes(lanes, run_grant);
    } else {
      for (std::size_t c = 0; c < kNumQosClasses; ++c) {
        for (std::uint64_t i = 0; i < grants[c].size(); ++i) run_grant(c, i);
      }
    }
    // Phase 3 (same pass): crossed step replies, due trace events, and
    // re-queueing of sessions that still have backlog.
    for (std::size_t c = 0; c < kNumQosClasses; ++c) {
      for (const Grant& g : grants[c]) {
        Session* s = g.s;
        refresh_summary(*s);
        if (s->trace_every != 0 && s->time >= s->trace_next) {
          emit(out, s->trace_conn,
               summary_reply(*s, s->trace_req_id, Status::kTrace));
          while (s->trace_next <= s->time) s->trace_next += s->trace_every;
        }
        while (!s->step_waiters.empty() &&
               s->step_waiters.front().target_time <= s->time) {
          const StepWaiter w = s->step_waiters.front();
          s->step_waiters.pop_front();
          emit(out, w.conn, summary_reply(*s, w.req_id));
        }
        if (s->pending_rounds > 0) {
          enqueue_ready(*s);
        } else {
          s->idle_pumps = 0;
        }
      }
    }
  }

  // Phase 4: idle accounting + eviction. Collect ids first — evict()
  // never erases, but keeping iteration and mutation separate stays
  // robust.
  if (opt_.evict_after != 0) {
    std::vector<std::uint64_t> to_evict;
    for (auto& [id, s] : sessions_) {
      if (!s.engine || !s.step_waiters.empty() || s.pending_rounds > 0) {
        continue;
      }
      if (++s.idle_pumps >= opt_.evict_after) to_evict.push_back(id);
    }
    for (std::uint64_t id : to_evict) {
      Session* s = find_session(id);
      if (s && s->engine && evict(*s)) progress = true;
    }
  }

  return progress;
}

}  // namespace rr::serve
