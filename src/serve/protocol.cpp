#include "serve/protocol.hpp"

#include <cstring>

#include "sim/wire.hpp"

namespace rr::serve {

namespace {

using sim::wire::get_varint;
using sim::wire::put_varint;

void put_string(std::string& out, const std::string& s) {
  put_varint(out, s.size());
  out.append(s);
}

bool get_string(const std::uint8_t* data, std::size_t size, std::size_t* pos,
                std::string& out) {
  const auto len = get_varint(data, size, pos);
  if (!len || *len > size - *pos) return false;
  out.assign(reinterpret_cast<const char*>(data + *pos),
             static_cast<std::size_t>(*len));
  *pos += static_cast<std::size_t>(*len);
  return true;
}

bool valid_op(std::uint8_t op) {
  return op >= static_cast<std::uint8_t>(Op::kCreate) &&
         op <= static_cast<std::uint8_t>(Op::kShutdown);
}

bool valid_status(std::uint8_t s) {
  return s <= static_cast<std::uint8_t>(Status::kTrace);
}

}  // namespace

const char* qos_class_name(QosClass c) {
  switch (c) {
    case QosClass::kInteractive:
      return "interactive";
    case QosClass::kBatch:
      return "batch";
    case QosClass::kBackground:
      return "background";
  }
  return "?";
}

std::optional<QosClass> qos_class_from_name(std::string_view name) {
  if (name == "interactive") return QosClass::kInteractive;
  if (name == "batch") return QosClass::kBatch;
  if (name == "background") return QosClass::kBackground;
  return std::nullopt;
}

std::string encode_frame(const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 8);
  sim::wire::put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  sim::wire::put_u32le(out, sim::wire::crc32(payload.data(), payload.size()));
  return out;
}

std::string encode_request(const Request& req) {
  std::string out;
  put_varint(out, req.id);
  out.push_back(static_cast<char>(req.op));
  put_string(out, req.engine);
  put_string(out, req.graph);
  put_varint(out, req.k);
  put_varint(out, req.seed);
  put_varint(out, req.agents.size());
  for (std::uint64_t a : req.agents) put_varint(out, a);
  put_varint(out, req.session);
  put_varint(out, req.rounds);
  put_varint(out, req.every);
  put_string(out, req.blob);
  put_varint(out, static_cast<std::uint64_t>(req.qos));
  put_varint(out, req.no_cycle_jump ? 1 : 0);
  return out;
}

std::string encode_reply(const Reply& rep) {
  std::string out;
  put_varint(out, rep.id);
  out.push_back(static_cast<char>(rep.status));
  put_varint(out, rep.session);
  put_varint(out, rep.time);
  put_varint(out, rep.covered);
  put_varint(out, rep.nodes);
  put_varint(out, rep.agents);
  put_varint(out, rep.config_hash);
  out.push_back(rep.resident ? 1 : 0);
  put_string(out, rep.message);
  put_string(out, rep.blob);
  return out;
}

std::optional<Request> decode_request(const std::uint8_t* data,
                                      std::size_t size) {
  Request req;
  std::size_t pos = 0;
  const auto id = get_varint(data, size, &pos);
  if (!id) return std::nullopt;
  req.id = *id;
  if (pos >= size || !valid_op(data[pos])) return std::nullopt;
  req.op = static_cast<Op>(data[pos++]);
  if (!get_string(data, size, &pos, req.engine)) return std::nullopt;
  if (!get_string(data, size, &pos, req.graph)) return std::nullopt;
  const auto k = get_varint(data, size, &pos);
  const auto seed = get_varint(data, size, &pos);
  if (!k || !seed) return std::nullopt;
  req.k = *k;
  req.seed = *seed;
  const auto agent_count = get_varint(data, size, &pos);
  // Each agent id costs >= 1 payload byte: a crafted count cannot force
  // an allocation beyond the payload's own size (same bound the ckpt
  // decoders apply).
  if (!agent_count || *agent_count > size - pos) return std::nullopt;
  req.agents.reserve(static_cast<std::size_t>(*agent_count));
  for (std::uint64_t i = 0; i < *agent_count; ++i) {
    const auto a = get_varint(data, size, &pos);
    if (!a) return std::nullopt;
    req.agents.push_back(*a);
  }
  const auto session = get_varint(data, size, &pos);
  const auto rounds = get_varint(data, size, &pos);
  const auto every = get_varint(data, size, &pos);
  if (!session || !rounds || !every) return std::nullopt;
  req.session = *session;
  req.rounds = *rounds;
  req.every = *every;
  if (!get_string(data, size, &pos, req.blob)) return std::nullopt;
  // Optional tail (oldest clients stop at the blob): qos class, then the
  // cycle-jump opt-out bit. Each present field must be valid, and the
  // last present one must end the payload.
  if (pos == size) return req;
  const auto qos = get_varint(data, size, &pos);
  if (!qos || *qos >= kNumQosClasses) return std::nullopt;
  req.qos = static_cast<QosClass>(*qos);
  if (pos == size) return req;
  const auto no_cj = get_varint(data, size, &pos);
  if (!no_cj || *no_cj > 1 || pos != size) return std::nullopt;
  req.no_cycle_jump = *no_cj != 0;
  return req;
}

std::optional<Reply> decode_reply(const std::uint8_t* data, std::size_t size) {
  Reply rep;
  std::size_t pos = 0;
  const auto id = get_varint(data, size, &pos);
  if (!id) return std::nullopt;
  rep.id = *id;
  if (pos >= size || !valid_status(data[pos])) return std::nullopt;
  rep.status = static_cast<Status>(data[pos++]);
  const auto session = get_varint(data, size, &pos);
  const auto time = get_varint(data, size, &pos);
  const auto covered = get_varint(data, size, &pos);
  const auto nodes = get_varint(data, size, &pos);
  const auto agents = get_varint(data, size, &pos);
  const auto hash = get_varint(data, size, &pos);
  if (!session || !time || !covered || !nodes || !agents || !hash) {
    return std::nullopt;
  }
  rep.session = *session;
  rep.time = *time;
  rep.covered = *covered;
  rep.nodes = *nodes;
  rep.agents = *agents;
  rep.config_hash = *hash;
  if (pos >= size || data[pos] > 1) return std::nullopt;
  rep.resident = data[pos++] != 0;
  if (!get_string(data, size, &pos, rep.message)) return std::nullopt;
  if (!get_string(data, size, &pos, rep.blob)) return std::nullopt;
  if (pos != size) return std::nullopt;
  return rep;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (fatal_ || size == 0) return;
  // Compact the already-consumed prefix before growing; the buffer never
  // holds more than one partial frame plus whatever arrived beyond it.
  if (consumed_ > 0) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  buf_.append(reinterpret_cast<const char*>(data), size);
}

std::optional<std::string> FrameDecoder::next() {
  if (fatal_) return std::nullopt;
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < 4) return std::nullopt;
  const auto* base =
      reinterpret_cast<const std::uint8_t*>(buf_.data()) + consumed_;
  const std::uint32_t len = sim::wire::get_u32le(base);
  if (len > kMaxFramePayload) {
    // A length the protocol can never produce: the stream is garbage and
    // there is no way to find the next frame boundary.
    fatal_ = true;
    return std::nullopt;
  }
  if (avail < 8ull + len) return std::nullopt;  // header + payload + crc
  const std::uint32_t stored_crc = sim::wire::get_u32le(base + 4 + len);
  if (sim::wire::crc32(base + 4, len) != stored_crc) {
    fatal_ = true;
    return std::nullopt;
  }
  std::string payload(reinterpret_cast<const char*>(base + 4), len);
  consumed_ += 8ull + len;
  return payload;
}

}  // namespace rr::serve
