#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rr::serve {

namespace {

/// Blocking read of the next reply off the wire (ignores any stash).
std::optional<Reply> read_reply(int fd, FrameDecoder& decoder) {
  std::uint8_t buf[4096];
  for (;;) {
    if (const auto payload = decoder.next()) {
      return decode_reply(
          reinterpret_cast<const std::uint8_t*>(payload->data()),
          payload->size());
    }
    if (decoder.fatal()) return std::nullopt;
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;
    decoder.feed(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace

Client::~Client() { close(); }

bool Client::connect(const std::string& socket_path) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) return false;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  decoder_ = FrameDecoder{};
  stashed_.clear();
}

bool Client::send(const Request& req) {
  if (fd_ < 0) return false;
  const std::string frame = encode_frame(encode_request(req));
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<Reply> Client::next_reply() {
  if (!stashed_.empty()) {
    Reply rep = std::move(stashed_.front());
    stashed_.pop_front();
    return rep;
  }
  if (fd_ < 0) return std::nullopt;
  auto rep = read_reply(fd_, decoder_);
  if (!rep) close();
  return rep;
}

std::optional<Reply> Client::call(const Request& req) {
  if (!send(req)) return std::nullopt;
  // A matching reply may already be stashed (pipelined sends drained by
  // an earlier call); trace pushes reuse the subscribe id and stay
  // queued for next_reply().
  for (auto it = stashed_.begin(); it != stashed_.end(); ++it) {
    if (it->id == req.id && it->status != Status::kTrace) {
      Reply rep = std::move(*it);
      stashed_.erase(it);
      return rep;
    }
  }
  for (;;) {
    auto rep = read_reply(fd_, decoder_);
    if (!rep) {
      close();
      return std::nullopt;
    }
    if (rep->id == req.id && rep->status != Status::kTrace) return rep;
    stashed_.push_back(std::move(*rep));
  }
}

}  // namespace rr::serve
