#pragma once

// Blocking rr_serverd client (serve layer).
//
// A thin synchronous wrapper over one AF_UNIX connection: frames
// requests out, splits replies back through the same FrameDecoder the
// server uses. call() supports pipelined use — replies arriving out of
// request order (trace pushes, earlier pipelined ids) are stashed and
// handed out when asked for. Used by `rr_serverd drive`, the end-to-end
// smoke in CI, and anyone scripting against a live daemon.

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "serve/protocol.hpp"

namespace rr::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to the daemon's unix socket; false on any socket error.
  bool connect(const std::string& socket_path);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Frames and writes one request; false on a write error (connection
  /// is closed).
  bool send(const Request& req);

  /// Next reply in arrival order (stashed ones first); blocks for socket
  /// bytes. nullopt on EOF, a read error, or an undecodable stream.
  std::optional<Reply> next_reply();

  /// send + wait for the reply whose id matches; replies with other ids
  /// (pipelined, trace pushes) are stashed for later next_reply() calls.
  std::optional<Reply> call(const Request& req);

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
  std::deque<Reply> stashed_;
};

}  // namespace rr::serve
