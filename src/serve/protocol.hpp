#pragma once

// Wire protocol of rr_serverd (serve layer).
//
// A session-multiplexing server needs a framing that a long-lived,
// untrusted byte stream cannot crash: this is the same discipline as the
// rr-ckpt v2 codec, built from the same sim/wire.hpp primitives, and it
// gets the same treatment — a total, fuzzable decoder.
//
// Frame (everything on the socket is a sequence of these):
//
//   u32le payload_len | payload bytes | u32le crc32(payload)
//
// payload_len is capped at kMaxFramePayload; a longer declaration or a
// CRC mismatch is *fatal* for the stream (length-prefixed streams cannot
// resync after corruption — the peer drops the connection), while a
// short buffer just means "need more bytes". The decoder never
// preallocates from the declared length: its buffer grows only with
// bytes that actually arrived, so a crafted length cannot balloon
// memory.
//
// Request payload (varints are LEB128 as in wire.hpp; strings are
// varint-length-prefixed bytes):
//
//   varint request_id | u8 opcode | op fields:
//     str engine | str graph | varint k | varint seed |
//     varint agent_count, agent_count x varint   (explicit placement;
//                                                 0 -> server spreads
//                                                 i*n/k like rr_cli)
//     varint session | varint rounds | varint every | str blob |
//     [varint qos [varint no_cycle_jump]]
//
// Every request carries the full field block (unused fields encode as
// 0/empty — a fixed shape keeps the decoder total and the fuzz lane
// simple); the opcode says which fields matter. Optional fields extend
// the tail, never reshape the prefix: pre-QoS clients end their payload
// at the blob (decoded as interactive), QoS-era clients end it at the
// qos class, and current clients append the per-session cycle-jump
// opt-out bit (kCreate/kResume; absent = 0 = the service's configured
// mode applies). Each optional field, when present, must be valid — qos
// a known class, no_cycle_jump <= 1 — and the *last* present one must
// also be final (anything after it is still malformed).
// Reply payload:
//
//   varint request_id | u8 status | varint session | varint time |
//   varint covered | varint nodes | varint agents | varint config_hash |
//   u8 resident | str message | str blob
//
// Replies are matched to requests by request_id (the client picks ids;
// the server echoes them), so a client may pipeline. Trace events are
// server-pushed replies with status kTrace and the id of the
// subscribe-trace request that armed them.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rr::serve {

/// Hard cap on a frame payload (256 MiB — a full v2 checkpoint blob of a
/// ~100M-node session fits; anything larger is malformed or hostile).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 28;

enum class Op : std::uint8_t {
  kCreate = 1,          ///< engine, graph, k, seed, agents, every
  kStep = 2,            ///< session, rounds
  kObserve = 3,         ///< session (works on evicted sessions)
  kSnapshot = 4,        ///< session -> blob = rr-ckpt v2 document
  kResume = 5,          ///< blob = checkpoint document, every
  kDestroy = 6,         ///< session
  kSubscribeTrace = 7,  ///< session, every (0 unsubscribes)
  kInfo = 8,            ///< server stats in reply message
  kShutdown = 9,        ///< ask the daemon to exit cleanly
};

/// Per-session scheduling class, carried on kCreate/kResume. Lower value
/// = higher priority; the numeric values are wire format and index the
/// service's per-class stats, so they must not be reordered.
enum class QosClass : std::uint8_t {
  kInteractive = 0,  ///< small steps, latency-sensitive; preempts at quanta
  kBatch = 1,        ///< throughput work; larger adaptive quanta
  kBackground = 2,   ///< best-effort; first pick under eviction pressure
};

inline constexpr std::size_t kNumQosClasses = 3;

/// "interactive" / "batch" / "background".
const char* qos_class_name(QosClass c);

/// Inverse of qos_class_name; nullopt for anything else.
std::optional<QosClass> qos_class_from_name(std::string_view name);

enum class Status : std::uint8_t {
  kOk = 0,
  kError = 1,    ///< malformed request / unknown session / failed op
  kBusy = 2,     ///< admission refused (session table full) — retry later
  kEvicted = 3,  ///< session state lost (checkpoint unreadable); destroyed
  kTrace = 4,    ///< server-pushed trace event (not a reply to a request)
};

struct Request {
  std::uint64_t id = 0;
  Op op = Op::kInfo;
  std::string engine;  ///< registry key ("rotor", "ring", ...)
  std::string graph;   ///< graph descriptor text ("ring 4096", ...)
  std::uint64_t k = 0;
  std::uint64_t seed = 1;
  std::vector<std::uint64_t> agents;  ///< explicit placement; empty = spread
  std::uint64_t session = 0;
  std::uint64_t rounds = 0;
  std::uint64_t every = 0;  ///< auto-checkpoint / trace period
  std::string blob;         ///< checkpoint document (kResume)
  QosClass qos = QosClass::kInteractive;  ///< scheduling class (kCreate/kResume)
  /// Per-session steady-state cycle-leaping opt-out (kCreate/kResume):
  /// false (the wire default when the trailing field is absent) leaves
  /// the decision to the service's configured CycleJumpMode; true pins
  /// this session to dense stepping.
  bool no_cycle_jump = false;
};

struct Reply {
  std::uint64_t id = 0;
  Status status = Status::kOk;
  std::uint64_t session = 0;
  std::uint64_t time = 0;
  std::uint64_t covered = 0;
  std::uint64_t nodes = 0;
  std::uint64_t agents = 0;
  std::uint64_t config_hash = 0;
  bool resident = false;  ///< session live in memory (vs evicted to disk)
  std::string message;    ///< human-readable detail (errors, kInfo text)
  std::string blob;       ///< checkpoint document (kSnapshot)
};

/// Wraps a payload in the frame header/trailer (length + CRC).
std::string encode_frame(const std::string& payload);

std::string encode_request(const Request& req);
std::string encode_reply(const Reply& rep);

/// Total payload decoders: nullopt on any malformed field, unknown
/// opcode/status, or trailing bytes. Never aborts, never allocates more
/// than the payload's own size.
std::optional<Request> decode_request(const std::uint8_t* data,
                                      std::size_t size);
std::optional<Reply> decode_reply(const std::uint8_t* data, std::size_t size);

/// Incremental frame splitter for one connection. Feed arriving bytes,
/// then drain complete payloads with next(). After fatal() returns true
/// (oversized length declaration or CRC mismatch) the stream is
/// unrecoverable and the connection must be dropped; next() returns
/// nullopt forever.
class FrameDecoder {
 public:
  void feed(const std::uint8_t* data, std::size_t size);

  /// Next complete frame payload, nullopt if more bytes are needed (or
  /// the stream is fatal). Consumes the frame from the buffer.
  std::optional<std::string> next();

  bool fatal() const { return fatal_; }

  /// Bytes currently buffered (tests assert the no-prealloc property).
  std::size_t buffered() const { return buf_.size() - consumed_; }

 private:
  std::string buf_;
  std::size_t consumed_ = 0;  ///< prefix already handed out via next()
  bool fatal_ = false;
};

}  // namespace rr::serve
