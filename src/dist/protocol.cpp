#include "dist/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace rr::dist {

namespace {

using sim::wire::get_varint;
using sim::wire::put_varint;

bool valid_kind(std::uint8_t k) {
  return k >= static_cast<std::uint8_t>(MsgKind::kInit) &&
         k <= static_cast<std::uint8_t>(MsgKind::kShutdown);
}

}  // namespace

std::string encode_msg(const DistMsg& m) {
  std::string out;
  out.push_back(static_cast<char>(m.kind));
  put_varint(out, m.round);
  put_varint(out, m.shard);
  put_varint(out, m.value);
  put_varint(out, m.value2);
  put_varint(out, m.pairs.size());
  for (const auto& [a, b] : m.pairs) {
    put_varint(out, a);
    put_varint(out, b);
  }
  put_varint(out, m.lists.size());
  for (const auto& list : m.lists) {
    put_varint(out, list.size());
    for (std::uint64_t v : list) put_varint(out, v);
  }
  put_varint(out, m.text.size());
  out.append(m.text);
  return out;
}

std::optional<DistMsg> decode_msg(const std::uint8_t* data, std::size_t size) {
  DistMsg m;
  std::size_t pos = 0;
  if (size == 0 || !valid_kind(data[0])) return std::nullopt;
  m.kind = static_cast<MsgKind>(data[pos++]);
  const auto round = get_varint(data, size, &pos);
  const auto shard = get_varint(data, size, &pos);
  const auto value = get_varint(data, size, &pos);
  const auto value2 = get_varint(data, size, &pos);
  if (!round || !shard || !value || !value2) return std::nullopt;
  m.round = *round;
  m.shard = *shard;
  m.value = *value;
  m.value2 = *value2;
  // Every element below costs >= 1 payload byte, so bounding counts by
  // the bytes remaining makes a crafted count harmless: the reserve can
  // never exceed the frame's own size (same rule as the ckpt decoders).
  const auto npairs = get_varint(data, size, &pos);
  if (!npairs || *npairs > (size - pos) / 2 + 1) return std::nullopt;
  m.pairs.reserve(static_cast<std::size_t>(*npairs));
  for (std::uint64_t i = 0; i < *npairs; ++i) {
    const auto a = get_varint(data, size, &pos);
    const auto b = get_varint(data, size, &pos);
    if (!a || !b) return std::nullopt;
    m.pairs.emplace_back(*a, *b);
  }
  const auto nlists = get_varint(data, size, &pos);
  if (!nlists || *nlists > size - pos) return std::nullopt;
  m.lists.reserve(static_cast<std::size_t>(*nlists));
  for (std::uint64_t i = 0; i < *nlists; ++i) {
    const auto len = get_varint(data, size, &pos);
    if (!len || *len > size - pos) return std::nullopt;
    std::vector<std::uint64_t> list;
    list.reserve(static_cast<std::size_t>(*len));
    for (std::uint64_t j = 0; j < *len; ++j) {
      const auto v = get_varint(data, size, &pos);
      if (!v) return std::nullopt;
      list.push_back(*v);
    }
    m.lists.push_back(std::move(list));
  }
  const auto text_len = get_varint(data, size, &pos);
  if (!text_len || *text_len > size - pos) return std::nullopt;
  m.text.assign(reinterpret_cast<const char*>(data + pos),
                static_cast<std::size_t>(*text_len));
  pos += static_cast<std::size_t>(*text_len);
  if (pos != size) return std::nullopt;  // trailing bytes -> malformed
  return m;
}

bool send_msg(int fd, const DistMsg& m) {
  const std::string frame = encode_frame(encode_msg(m));
  std::size_t sent = 0;
  while (sent < frame.size()) {
#if defined(MSG_NOSIGNAL)
    const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(fd, frame.data() + sent, frame.size() - sent);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<DistMsg> recv_msg(int fd, FrameDecoder& dec) {
  while (true) {
    if (auto payload = dec.next()) {
      return decode_msg(*payload);
    }
    if (dec.fatal()) return std::nullopt;
    std::uint8_t buf[1 << 16];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (n == 0) return std::nullopt;  // peer closed
    dec.feed(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace rr::dist
