#include "dist/coordinator.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/hash.hpp"
#include "core/rotor_state_io.hpp"
#include "dist/worker.hpp"

namespace rr::core {

namespace {

using dist::DistMsg;
using dist::MsgKind;

/// "No round check" sentinel for collect() (rounds never reach ~0: that
/// is the kNotCovered cap every driver stops at).
constexpr std::uint64_t kAnyRound = ~std::uint64_t{0};

void set_error(std::string* error, const char* msg) {
  if (error != nullptr) *error = msg;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

DistributedRotorRouter::DistributedRotorRouter(graph::CsrGraph csr,
                                               std::uint32_t workers)
    : csr_(std::move(csr)), part_(csr_, workers) {}

std::unique_ptr<DistributedRotorRouter> DistributedRotorRouter::create(
    const graph::GraphDescriptor& descriptor,
    const std::vector<graph::NodeId>& agents,
    const std::vector<std::uint32_t>& pointers, const DistOptions& options,
    std::string* error) {
  const auto g = descriptor.build();
  if (!g) {
    set_error(error, "dist: graph descriptor failed to build");
    return nullptr;
  }
  if (!g->is_connected()) {
    set_error(error, "dist: rotor-router requires a connected graph");
    return nullptr;
  }
  graph::CsrGraph csr(*g);
  const graph::NodeId n = csr.num_nodes();
  if (agents.empty() || agents.size() > ~std::uint32_t{0}) {
    set_error(error, "dist: at least one agent required");
    return nullptr;
  }
  for (const graph::NodeId v : agents) {
    if (v >= n) {
      set_error(error, "dist: agent start node out of range");
      return nullptr;
    }
  }
  if (!pointers.empty()) {
    if (pointers.size() != n) {
      set_error(error, "dist: pointer vector size mismatch");
      return nullptr;
    }
    for (graph::NodeId v = 0; v < n; ++v) {
      if (pointers[v] >= csr.degree_unchecked(v)) {
        set_error(error, "dist: pointer out of range");
        return nullptr;
      }
    }
  }
  std::uint32_t workers = options.workers == 0 ? 1 : options.workers;
  if (workers > n) workers = n;
  std::unique_ptr<DistributedRotorRouter> eng(
      new DistributedRotorRouter(std::move(csr), workers));
  if (!eng->spawn(options, error)) return nullptr;
  if (!eng->init_workers(descriptor, agents, pointers, options, error)) {
    return nullptr;
  }
  return eng;
}

bool DistributedRotorRouter::spawn(const DistOptions& options,
                                   std::string* error) {
  const std::uint32_t nw = part_.num_shards();
  conn_.resize(nw);
  if (!options.listen_socket.empty()) {
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (options.listen_socket.size() >= sizeof(sa.sun_path)) {
      set_error(error, "dist: --dist-socket path too long");
      return false;
    }
    std::memcpy(sa.sun_path, options.listen_socket.c_str(),
                options.listen_socket.size() + 1);
    const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (lfd < 0) {
      set_error(error, "dist: socket() failed");
      return false;
    }
    ::unlink(options.listen_socket.c_str());
    if (::bind(lfd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0 ||
        ::listen(lfd, static_cast<int>(nw)) != 0) {
      ::close(lfd);
      set_error(error, "dist: cannot listen on --dist-socket path");
      return false;
    }
    for (std::uint32_t w = 0; w < nw; ++w) {
      int fd;
      do {
        fd = ::accept(lfd, nullptr, nullptr);
      } while (fd < 0 && errno == EINTR);
      if (fd < 0) {
        ::close(lfd);
        set_error(error, "dist: accept() failed");
        return false;
      }
      conn_[w].fd = fd;
      conn_[w].alive = true;
    }
    ::close(lfd);
    ::unlink(options.listen_socket.c_str());
  } else if (!options.noded_path.empty()) {
    for (std::uint32_t w = 0; w < nw; ++w) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        set_error(error, "dist: socketpair() failed");
        return false;
      }
      const int pid = ::fork();
      if (pid < 0) {
        ::close(sv[0]);
        ::close(sv[1]);
        set_error(error, "dist: fork() failed");
        return false;
      }
      if (pid == 0) {
        // Child: keep only its own socket end, then become rr_noded.
        ::close(sv[0]);
        for (std::uint32_t j = 0; j < w; ++j) ::close(conn_[j].fd);
        char fdbuf[16];
        std::snprintf(fdbuf, sizeof fdbuf, "%d", sv[1]);
        ::execl(options.noded_path.c_str(), options.noded_path.c_str(),
                "--dist-fd", fdbuf, static_cast<char*>(nullptr));
        _exit(127);
      }
      ::close(sv[1]);
      child_pids_.push_back(pid);
      conn_[w].fd = sv[0];
      conn_[w].alive = true;
    }
  } else {
    for (std::uint32_t w = 0; w < nw; ++w) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        set_error(error, "dist: socketpair() failed");
        return false;
      }
      const std::uint64_t fail_after =
          w == 0 ? options.worker_fail_after : 0;
      threads_.emplace_back(
          [fd = sv[1], fail_after] { dist::worker_serve(fd, fail_after); });
      conn_[w].fd = sv[0];
      conn_[w].alive = true;
    }
  }
  for (std::uint32_t w = 0; w < nw; ++w) {
    if (!set_nonblocking(conn_[w].fd)) {
      set_error(error, "dist: cannot set worker socket nonblocking");
      return false;
    }
  }
  return true;
}

bool DistributedRotorRouter::init_workers(
    const graph::GraphDescriptor& descriptor,
    const std::vector<graph::NodeId>& agents,
    const std::vector<std::uint32_t>& pointers, const DistOptions& options,
    std::string* error) {
  // Agent multiset as deduplicated ascending (site, count) pairs.
  std::vector<graph::NodeId> sorted = agents;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sites;
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    sites.emplace_back(sorted[i], j - i);
    i = j;
  }
  num_agents_ = static_cast<std::uint32_t>(agents.size());
  covered_ = static_cast<sim::NodeId>(sites.size());

  DistMsg init;
  init.kind = MsgKind::kInit;
  init.value = part_.num_shards();
  init.value2 = options.spill_batch == 0 ? 1 : options.spill_batch;
  init.pairs = sites;
  init.lists.assign(1, {});
  init.lists[0].assign(pointers.begin(), pointers.end());
  init.text = descriptor.text();
  for (std::uint32_t w = 0; w < part_.num_shards(); ++w) {
    init.shard = w;
    queue_msg(w, init);
  }
  if (!collect(MsgKind::kOk, kAnyRound, /*allow_spill=*/false,
               [](std::uint32_t, const DistMsg&) {})) {
    set_error(error, "dist: a worker died or rejected its init");
    return false;
  }
  return true;
}

DistributedRotorRouter::~DistributedRotorRouter() {
  DistMsg bye;
  bye.kind = MsgKind::kShutdown;
  for (std::uint32_t w = 0; w < conn_.size(); ++w) {
    // Best-effort farewell; EOF from the close below suffices on its own
    // (workers exit 0 on a closed socket).
    if (conn_[w].alive) queue_msg(w, bye);
  }
  for (Conn& c : conn_) {
    if (c.fd >= 0) ::close(c.fd);
    c.fd = -1;
    c.alive = false;
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  for (const int pid : child_pids_) {
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
  }
}

// ---- socket pump ----

void DistributedRotorRouter::fail_worker(std::uint32_t w) {
  Conn& c = conn_[w];
  if (c.fd >= 0) ::close(c.fd);
  c.fd = -1;
  c.alive = false;
  halted_ = true;
}

void DistributedRotorRouter::queue_msg(std::uint32_t w, const DistMsg& m) {
  Conn& c = conn_[w];
  if (!c.alive) {
    halted_ = true;
    return;
  }
  c.out += dist::encode_frame(dist::encode_msg(m));
  try_flush(w);
}

void DistributedRotorRouter::try_flush(std::uint32_t w) {
  Conn& c = conn_[w];
  while (c.alive && c.out_off < c.out.size()) {
#if defined(MSG_NOSIGNAL)
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                             c.out.size() - c.out_off,
                             MSG_DONTWAIT | MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                             c.out.size() - c.out_off, MSG_DONTWAIT);
#endif
    if (n >= 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    fail_worker(w);
    return;
  }
  if (c.out_off == c.out.size()) {
    c.out.clear();
    c.out_off = 0;
  } else if (c.out_off > (std::size_t{1} << 20)) {
    c.out.erase(0, c.out_off);
    c.out_off = 0;
  }
}

bool DistributedRotorRouter::pump_once(int timeout_ms) {
  std::vector<pollfd> fds;
  std::vector<std::uint32_t> owner;
  for (std::uint32_t w = 0; w < conn_.size(); ++w) {
    const Conn& c = conn_[w];
    if (!c.alive) continue;
    pollfd p{};
    p.fd = c.fd;
    p.events = POLLIN;
    if (c.out_off < c.out.size()) p.events |= POLLOUT;
    fds.push_back(p);
    owner.push_back(w);
  }
  if (fds.empty()) {
    halted_ = true;
    return false;
  }
  const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                        timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return !halted_;
    halted_ = true;
    return false;
  }
  for (std::size_t i = 0; i < fds.size(); ++i) {
    const std::uint32_t w = owner[i];
    if (fds[i].revents & POLLOUT) try_flush(w);
    if (!conn_[w].alive) continue;
    if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
      std::uint8_t buf[1 << 16];
      const ssize_t n = ::recv(conn_[w].fd, buf, sizeof buf, MSG_DONTWAIT);
      if (n > 0) {
        conn_[w].dec.feed(buf, static_cast<std::size_t>(n));
      } else if (n == 0) {
        fail_worker(w);
      } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        fail_worker(w);
      }
    }
  }
  return !halted_;
}

bool DistributedRotorRouter::next_msg(std::uint32_t* from, DistMsg* m) {
  while (!halted_) {
    for (std::uint32_t w = 0; w < conn_.size(); ++w) {
      Conn& c = conn_[w];
      if (!c.alive) continue;
      if (auto payload = c.dec.next()) {
        auto decoded = dist::decode_msg(*payload);
        if (!decoded) {
          fail_worker(w);
          return false;
        }
        *from = w;
        *m = std::move(*decoded);
        return true;
      }
      if (c.dec.fatal()) {
        fail_worker(w);
        return false;
      }
    }
    if (!pump_once(/*timeout_ms=*/-1)) return false;
  }
  return false;
}

template <typename Handler>
bool DistributedRotorRouter::collect(MsgKind kind, std::uint64_t round,
                                     bool allow_spill, Handler&& handler) {
  const std::uint32_t nw = part_.num_shards();
  std::vector<std::uint8_t> got(nw, 0);
  std::uint32_t remaining = nw;
  std::uint32_t from = 0;
  DistMsg m;
  while (remaining > 0) {
    if (!next_msg(&from, &m)) return false;
    if (allow_spill && m.kind == MsgKind::kSpill) {
      // Relay on receipt: the batch reaches its destination's queue
      // before any kCommit of this round can be queued (FIFO per socket).
      if (m.shard >= nw || m.round != round) {
        fail_worker(from);
        return false;
      }
      queue_msg(static_cast<std::uint32_t>(m.shard), m);
      continue;
    }
    if (m.kind != kind || got[from] != 0 ||
        (round != kAnyRound && m.round != round)) {
      fail_worker(from);
      return false;
    }
    got[from] = 1;
    --remaining;
    handler(from, m);
  }
  return true;
}

bool DistributedRotorRouter::expect_from(std::uint32_t w, MsgKind kind,
                                         DistMsg* m) {
  std::uint32_t from = 0;
  if (!next_msg(&from, m)) return false;
  if (from != w || m->kind != kind) {
    fail_worker(from);
    return false;
  }
  return true;
}

// ---- rounds ----

void DistributedRotorRouter::step() { step_impl(nullptr); }

void DistributedRotorRouter::step_impl(const sim::DelayFn* delay) {
  if (halted_) return;
  const std::uint32_t nw = part_.num_shards();
  const std::uint64_t t = time_ + 1;
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> held;
  if (delay != nullptr) {
    held.resize(nw);
    DistMsg q;
    q.kind = MsgKind::kOccupiedQuery;
    q.round = t;
    for (std::uint32_t w = 0; w < nw; ++w) queue_msg(w, q);
    const bool ok = collect(
        MsgKind::kOccupied, kAnyRound, /*allow_spill=*/false,
        [&](std::uint32_t w, const DistMsg& m) {
          for (const auto& [v, present] : m.pairs) {
            std::uint32_t h = (*delay)(static_cast<sim::NodeId>(v), t,
                                       static_cast<std::uint32_t>(present));
            if (h > present) h = static_cast<std::uint32_t>(present);
            if (h > 0) held[w].emplace_back(v, h);
          }
        });
    if (!ok) return;
  }
  DistMsg scan;
  scan.kind = MsgKind::kScan;
  scan.round = t;
  for (std::uint32_t w = 0; w < nw; ++w) {
    scan.pairs = delay != nullptr ? held[w]
                                  : std::vector<std::pair<std::uint64_t,
                                                          std::uint64_t>>{};
    queue_msg(w, scan);
  }
  if (!collect(MsgKind::kScanDone, t, /*allow_spill=*/true,
               [&](std::uint32_t, const DistMsg& m) {
                 comms_.spill_bytes += m.value;
                 comms_.batches += m.value2;
                 comms_.mid_scan_batches += m.shard;
               })) {
    return;
  }
  DistMsg commit;
  commit.kind = MsgKind::kCommit;
  commit.round = t;
  for (std::uint32_t w = 0; w < nw; ++w) queue_msg(w, commit);
  if (!collect(MsgKind::kCommitDone, t, /*allow_spill=*/false,
               [&](std::uint32_t, const DistMsg& m) {
                 covered_ += static_cast<sim::NodeId>(m.value);
               })) {
    return;
  }
  time_ = t;
  ++comms_.rounds;
}

void DistributedRotorRouter::run(std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds && !halted_; ++i) {
    step();
    // Never checkpoint past a halt: the workers are gone, so the gather
    // would fail; the resumable point stays the last completed sink fire.
    if (!halted_) fire_auto_checkpoint_if_due();
  }
}

std::uint64_t DistributedRotorRouter::run_until_covered(
    std::uint64_t max_rounds) {
  if (all_covered()) return 0;
  while (time_ < max_rounds && !halted_) {
    step();
    if (halted_) break;
    fire_auto_checkpoint_if_due();
    if (all_covered()) return time_;
  }
  return sim::kNotCovered;
}

// ---- state access ----

std::uint64_t DistributedRotorRouter::config_hash() const {
  auto* self = const_cast<DistributedRotorRouter*>(this);
  if (halted_) return 0;
  // Chained FNV-1a: each worker continues the fold over its own rows, so
  // the result equals rotor_config_hash over the full node array.
  std::uint64_t state = Fnv1a().value();
  for (std::uint32_t w = 0; w < part_.num_shards(); ++w) {
    DistMsg q;
    q.kind = MsgKind::kHash;
    q.value = state;
    self->queue_msg(w, q);
    DistMsg rep;
    if (!self->expect_from(w, MsgKind::kHashReply, &rep)) return 0;
    state = rep.value;
  }
  return state;
}

bool DistributedRotorRouter::refresh_gather() const {
  if (halted_) return false;
  if (gather_round_ == time_) return true;
  auto* self = const_cast<DistributedRotorRouter*>(this);
  const graph::NodeId n = csr_.num_nodes();
  gather_node_.assign(n, graph::NodeState{});
  gather_ip_.assign(n, 0);
  gather_stats_.assign(n, core::VisitStats{});
  DistMsg q;
  q.kind = MsgKind::kGather;
  for (std::uint32_t w = 0; w < part_.num_shards(); ++w) self->queue_msg(w, q);
  bool shape_ok = true;
  const bool ok = self->collect(
      MsgKind::kGathered, kAnyRound, /*allow_spill=*/false,
      [&](std::uint32_t w, const DistMsg& m) {
        const graph::NodeId b = part_.begin(w);
        const graph::NodeId e = part_.end(w);
        if (m.value != time_ || m.lists.size() != 6) {
          shape_ok = false;
          return;
        }
        for (const auto& list : m.lists) {
          if (list.size() != e - b) {
            shape_ok = false;
            return;
          }
        }
        for (graph::NodeId v = b; v < e; ++v) {
          const std::uint64_t i = v - b;
          gather_node_[v].pointer =
              static_cast<std::uint32_t>(m.lists[0][i]);
          gather_ip_[v] = static_cast<std::uint32_t>(m.lists[1][i]);
          gather_stats_[v].visits = m.lists[2][i];
          gather_stats_[v].exits = m.lists[3][i];
          gather_stats_[v].first_visit = m.lists[4][i];
          gather_stats_[v].last_visit = m.lists[5][i];
        }
        for (const auto& [v, c] : m.pairs) {
          if (v < b || v >= e || c == 0 || c > ~std::uint32_t{0}) {
            shape_ok = false;
            return;
          }
          gather_node_[v].count = static_cast<std::uint32_t>(c);
        }
      });
  if (!ok || !shape_ok) {
    self->halted_ = true;
    return false;
  }
  gather_round_ = time_;
  return true;
}

std::uint64_t DistributedRotorRouter::visits(sim::NodeId v) const {
  if (v >= csr_.num_nodes() || !refresh_gather()) return 0;
  return gather_stats_[v].visits;
}

std::uint64_t DistributedRotorRouter::first_visit_time(sim::NodeId v) const {
  if (v >= csr_.num_nodes() || !refresh_gather()) return sim::kNotCovered;
  return gather_stats_[v].first_visit;
}

void DistributedRotorRouter::serialize_state(sim::StateWriter& out) const {
  if (!refresh_gather()) return;  // halted: drivers never checkpoint here
  serialize_rotor_state(out, time_, gather_node_, gather_ip_, gather_stats_);
}

bool DistributedRotorRouter::deserialize_state(const sim::StateReader& in) {
  if (halted_) return false;
  const graph::NodeId n = csr_.num_nodes();
  std::vector<graph::NodeState> node(n);
  std::vector<std::uint32_t> ip;
  std::vector<core::VisitStats> stats(n);
  const auto restored = deserialize_rotor_state(in, csr_, node, ip, stats);
  if (!restored) return false;
  for (std::uint32_t w = 0; w < part_.num_shards(); ++w) {
    const graph::NodeId b = part_.begin(w);
    const graph::NodeId e = part_.end(w);
    DistMsg s;
    s.kind = MsgKind::kScatter;
    s.value = restored->time;
    s.lists.assign(6, {});
    for (auto& list : s.lists) list.reserve(e - b);
    for (graph::NodeId v = b; v < e; ++v) {
      if (node[v].count > 0) s.pairs.emplace_back(v, node[v].count);
      s.lists[0].push_back(node[v].pointer);
      s.lists[1].push_back(ip[v]);
      s.lists[2].push_back(stats[v].visits);
      s.lists[3].push_back(stats[v].exits);
      s.lists[4].push_back(stats[v].first_visit);
      s.lists[5].push_back(stats[v].last_visit);
    }
    queue_msg(w, s);
  }
  if (!collect(MsgKind::kOk, kAnyRound, /*allow_spill=*/false,
               [](std::uint32_t, const DistMsg&) {})) {
    return false;
  }
  time_ = restored->time;
  num_agents_ = restored->num_agents;
  covered_ = restored->covered;
  gather_round_ = ~std::uint64_t{0};
  return true;
}

}  // namespace rr::core
