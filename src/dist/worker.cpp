#include "dist/worker.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "core/shard_step.hpp"
#include "dist/protocol.hpp"
#include "graph/csr_graph.hpp"
#include "graph/descriptor.hpp"
#include "graph/partition.hpp"
#include "sim/engine.hpp"

namespace rr::dist {

namespace {

using graph::NodeId;
using graph::NodeState;

/// The full shard state + round kernel of one worker (see worker.hpp).
class WorkerNode {
 public:
  explicit WorkerNode(int fd) : fd_(fd) {}

  /// False on a rejected init (malformed descriptor or inconsistent
  /// fields) — the worker exits instead of serving garbage.
  bool init(const DistMsg& m) {
    const auto d = graph::GraphDescriptor::parse(m.text);
    if (!d) return false;
    const auto g = d->build();
    if (!g) return false;
    csr_ = graph::CsrGraph(*g);
    const std::uint64_t workers = m.value;
    if (workers == 0 || workers > csr_.num_nodes()) return false;
    part_ = std::make_unique<graph::Partition>(
        csr_, static_cast<std::uint32_t>(workers));
    if (m.shard >= part_->num_shards()) return false;
    me_ = static_cast<std::uint32_t>(m.shard);
    single_ = part_->num_shards() == 1;
    spill_batch_ = m.value2 == 0 ? 1 : m.value2;

    const NodeId n = csr_.num_nodes();
    node_.assign(n, NodeState{});
    stats_.assign(n, core::VisitStats{});
    for (NodeId v = 0; v < n; ++v) {
      node_[v].degree = csr_.degree_unchecked(v);
      node_[v].row_begin = csr_.row_offset(v);
    }
    if (m.lists.size() != 1) return false;
    const auto& pointers = m.lists[0];
    if (!pointers.empty()) {
      if (pointers.size() != n) return false;
      for (NodeId v = 0; v < n; ++v) {
        if (pointers[v] >= node_[v].degree) return false;
        node_[v].pointer = static_cast<std::uint32_t>(pointers[v]);
      }
    }
    initial_pointers_.assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      initial_pointers_[v] = node_[v].pointer;
    }
    // Agent multiset as (site, count): counts and the n_v(0) visit credit
    // are order-independent, exactly as place_rotor_agents applies them.
    for (const auto& [site, count] : m.pairs) {
      if (site >= n || count == 0 || count > ~std::uint32_t{0}) return false;
      NodeState& ns = node_[site];
      if (ns.count != 0) return false;  // sites arrive deduplicated
      ns.count = static_cast<std::uint32_t>(count);
      stats_[site].visits = count;
      stats_[site].first_visit = 0;
      if (owner_is_me(static_cast<NodeId>(site))) {
        occupied_.push_back(static_cast<NodeId>(site));
      }
    }
    spill_.assign(part_->frontier(me_).size(), 0);
    spill_touched_.assign(part_->num_shards(), {});
    return true;
  }

  bool scan(const DistMsg& m) {
    time_ = m.round;
    round_spill_bytes_ = 0;
    round_batches_ = 0;
    round_mid_batches_ = 0;
    // Held counts arrive sparse; sort once so the scan looks them up with
    // a binary search regardless of the order the coordinator chose.
    held_ = m.pairs;
    std::sort(held_.begin(), held_.end());
    const NodeId* arcs = csr_.arcs();
    const std::size_t occupied_before = occupied_.size();
    for (std::size_t idx = 0; idx < occupied_before; ++idx) {
      if (idx + 4 < occupied_before) {
        core::prefetch_ro(&node_[occupied_[idx + 4]]);
      }
      const NodeId v = occupied_[idx];
      NodeState& ns = node_[v];
      const std::uint32_t present = ns.count;
      if (present == 0) continue;  // stale entry; dropped at commit
      std::uint32_t held = held_for(v);
      if (held > present) held = present;
      const std::uint32_t moving = present - held;
      if (moving == 0) continue;
      if (ns.degree == 0) return false;  // agent stranded: bad init
      ns.pointer = core::distribute_exits(
          arcs + ns.row_begin, ns.degree, ns.pointer, moving,
          [&](std::uint32_t p, NodeId u, std::uint32_t c) {
            const std::uint32_t slot =
                single_ ? graph::Partition::kInShard
                        : part_->arc_slot(ns.row_begin + p);
            if (slot == graph::Partition::kInShard) {
              NodeState& nu = node_[u];
              if (nu.arrivals == 0) touched_.push_back(u);
              nu.arrivals += c;
            } else {
              const std::uint32_t dest = part_->frontier_owner(me_, slot);
              if (spill_[slot] == 0) spill_touched_[dest].push_back(slot);
              spill_[slot] += c;
              // Batch full: flush while the scan continues — the bytes
              // cross the socket (and get relayed) during compute.
              if (spill_touched_[dest].size() >= spill_batch_) {
                flush_spill(dest, /*mid_scan=*/true);
              }
            }
          });
      stats_[v].exits += moving;
      ns.count = held;
    }
    if (!io_ok_) return false;
    for (std::uint32_t d = 0; d < part_->num_shards(); ++d) {
      if (!spill_touched_[d].empty()) flush_spill(d, /*mid_scan=*/false);
    }
    if (!io_ok_) return false;
    DistMsg done;
    done.kind = MsgKind::kScanDone;
    done.round = time_;
    done.shard = round_mid_batches_;
    done.value = round_spill_bytes_;
    done.value2 = round_batches_;
    return send_msg(fd_, done);
  }

  /// A spill batch relayed from another worker: fold into the arrival
  /// accumulators (additive, so batch order and splits cannot matter).
  bool absorb_spill(const DistMsg& m) {
    for (const auto& [v, a] : m.pairs) {
      if (v >= node_.size() || !owner_is_me(static_cast<NodeId>(v)) ||
          a == 0 || a > ~std::uint32_t{0}) {
        return false;
      }
      NodeState& nu = node_[v];
      if (nu.arrivals == 0) touched_.push_back(static_cast<NodeId>(v));
      nu.arrivals += static_cast<std::uint32_t>(a);
    }
    return true;
  }

  bool commit(const DistMsg& m) {
    if (m.round != time_) return false;
    // Same membership invariant as the sharded engine's commit: occupied
    // holds exactly the owned rows with agents.
    std::size_t w = 0;
    for (std::size_t i = 0; i < occupied_.size(); ++i) {
      if (node_[occupied_[i]].count > 0) occupied_[w++] = occupied_[i];
    }
    occupied_.resize(w);
    std::uint64_t newly = 0;
    const std::size_t touched_n = touched_.size();
    for (std::size_t i = 0; i < touched_n; ++i) {
      if (i + 4 < touched_n) core::prefetch_ro(&stats_[touched_[i + 4]]);
      const NodeId u = touched_[i];
      const std::uint32_t a = node_[u].arrivals;
      if (a == 0) continue;  // duplicate touch already committed
      node_[u].arrivals = 0;
      if (node_[u].count == 0) occupied_.push_back(u);
      if (core::commit_node_arrival(node_[u], stats_[u], time_, a)) ++newly;
    }
    touched_.clear();
    DistMsg done;
    done.kind = MsgKind::kCommitDone;
    done.round = time_;
    done.value = newly;
    return send_msg(fd_, done);
  }

  bool occupied_reply() {
    DistMsg rep;
    rep.kind = MsgKind::kOccupied;
    for (const NodeId v : occupied_) {
      if (node_[v].count > 0) rep.pairs.emplace_back(v, node_[v].count);
    }
    return send_msg(fd_, rep);
  }

  bool hash_reply(const DistMsg& m) {
    Fnv1a h(m.value);
    for (NodeId v = part_->begin(me_); v < part_->end(me_); ++v) {
      h.mix(node_[v].pointer);
      h.mix(node_[v].count);
    }
    DistMsg rep;
    rep.kind = MsgKind::kHashReply;
    rep.value = h.value();
    return send_msg(fd_, rep);
  }

  bool gather_reply() {
    const NodeId b = part_->begin(me_);
    const NodeId e = part_->end(me_);
    DistMsg rep;
    rep.kind = MsgKind::kGathered;
    rep.value = time_;
    rep.lists.assign(6, {});
    for (auto& list : rep.lists) list.reserve(e - b);
    for (NodeId v = b; v < e; ++v) {
      if (node_[v].count > 0) rep.pairs.emplace_back(v, node_[v].count);
      rep.lists[0].push_back(node_[v].pointer);
      rep.lists[1].push_back(initial_pointers_[v]);
      rep.lists[2].push_back(stats_[v].visits);
      rep.lists[3].push_back(stats_[v].exits);
      rep.lists[4].push_back(stats_[v].first_visit);
      rep.lists[5].push_back(stats_[v].last_visit);
    }
    return send_msg(fd_, rep);
  }

  bool scatter(const DistMsg& m) {
    const NodeId b = part_->begin(me_);
    const NodeId e = part_->end(me_);
    const std::uint64_t len = e - b;
    if (m.lists.size() != 6) return false;
    for (const auto& list : m.lists) {
      if (list.size() != len) return false;
    }
    for (NodeId v = b; v < e; ++v) {
      const std::uint64_t i = v - b;
      if (m.lists[0][i] >= node_[v].degree ||
          m.lists[1][i] >= node_[v].degree) {
        return false;
      }
      node_[v].count = 0;
      node_[v].arrivals = 0;
      node_[v].pointer = static_cast<std::uint32_t>(m.lists[0][i]);
      initial_pointers_[v] = static_cast<std::uint32_t>(m.lists[1][i]);
      stats_[v].visits = m.lists[2][i];
      stats_[v].exits = m.lists[3][i];
      stats_[v].first_visit = m.lists[4][i];
      stats_[v].last_visit = m.lists[5][i];
    }
    occupied_.clear();
    touched_.clear();
    spill_.assign(spill_.size(), 0);
    for (auto& bucket : spill_touched_) bucket.clear();
    for (const auto& [v, c] : m.pairs) {
      if (v < b || v >= e || c == 0 || c > ~std::uint32_t{0}) return false;
      node_[v].count = static_cast<std::uint32_t>(c);
      occupied_.push_back(static_cast<NodeId>(v));
    }
    time_ = m.value;
    DistMsg ok;
    ok.kind = MsgKind::kOk;
    return send_msg(fd_, ok);
  }

 private:
  bool owner_is_me(NodeId v) const {
    return v >= part_->begin(me_) && v < part_->end(me_);
  }

  std::uint32_t held_for(NodeId v) const {
    const auto it = std::lower_bound(
        held_.begin(), held_.end(),
        std::pair<std::uint64_t, std::uint64_t>{v, 0});
    if (it == held_.end() || it->first != v) return 0;
    return static_cast<std::uint32_t>(it->second);
  }

  void flush_spill(std::uint32_t dest, bool mid_scan) {
    DistMsg m;
    m.kind = MsgKind::kSpill;
    m.round = time_;
    m.shard = dest;
    const auto& fr = part_->frontier(me_);
    m.pairs.reserve(spill_touched_[dest].size());
    for (const std::uint32_t slot : spill_touched_[dest]) {
      const std::uint32_t a = spill_[slot];
      if (a == 0) continue;
      spill_[slot] = 0;  // a later deposit re-registers the slot
      m.pairs.emplace_back(fr[slot], a);
    }
    spill_touched_[dest].clear();
    if (m.pairs.empty()) return;
    const std::string payload = encode_msg(m);
    round_spill_bytes_ += payload.size();
    ++round_batches_;
    if (mid_scan) ++round_mid_batches_;
    std::size_t sent = 0;
    const std::string frame = encode_frame(payload);
    while (sent < frame.size()) {
#if defined(MSG_NOSIGNAL)
      const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                               MSG_NOSIGNAL);
#else
      const ssize_t n = ::write(fd_, frame.data() + sent, frame.size() - sent);
#endif
      if (n < 0) {
        if (errno == EINTR) continue;
        io_ok_ = false;
        return;
      }
      sent += static_cast<std::size_t>(n);
    }
  }

  int fd_;
  bool io_ok_ = true;

  graph::CsrGraph csr_{graph::Graph(1)};
  std::unique_ptr<graph::Partition> part_;
  std::uint32_t me_ = 0;
  bool single_ = true;
  std::uint64_t spill_batch_ = 1;
  std::uint64_t time_ = 0;

  std::vector<NodeState> node_;
  std::vector<std::uint32_t> initial_pointers_;
  std::vector<core::VisitStats> stats_;
  std::vector<NodeId> occupied_;
  std::vector<NodeId> touched_;
  std::vector<std::uint32_t> spill_;
  std::vector<std::vector<std::uint32_t>> spill_touched_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> held_;

  std::uint64_t round_spill_bytes_ = 0;
  std::uint64_t round_batches_ = 0;
  std::uint64_t round_mid_batches_ = 0;
};

}  // namespace

int worker_serve(int fd, std::uint64_t fail_after_scans) {
  WorkerNode node(fd);
  FrameDecoder dec;
  bool inited = false;
  std::uint64_t scans = 0;
  int rc = 0;
  while (true) {
    const auto m = recv_msg(fd, dec);
    if (!m) {
      rc = dec.fatal() ? 1 : 0;  // plain EOF = coordinator gone, clean exit
      break;
    }
    if (m->kind == MsgKind::kShutdown) break;
    if (!inited) {
      if (m->kind != MsgKind::kInit) {
        rc = 1;
        break;
      }
      if (!node.init(*m)) {
        rc = 2;
        break;
      }
      inited = true;
      DistMsg ok;
      ok.kind = MsgKind::kOk;
      if (!send_msg(fd, ok)) {
        rc = 1;
        break;
      }
      continue;
    }
    bool ok = false;
    switch (m->kind) {
      case MsgKind::kScan:
        // Fault-injection hook: crash (drop the socket) instead of
        // handling this scan.
        if (fail_after_scans != 0 && ++scans >= fail_after_scans) {
          ::close(fd);
          return 0;
        }
        ok = node.scan(*m);
        break;
      case MsgKind::kSpill:
        ok = node.absorb_spill(*m);
        break;
      case MsgKind::kCommit:
        ok = node.commit(*m);
        break;
      case MsgKind::kOccupiedQuery:
        ok = node.occupied_reply();
        break;
      case MsgKind::kHash:
        ok = node.hash_reply(*m);
        break;
      case MsgKind::kGather:
        ok = node.gather_reply();
        break;
      case MsgKind::kScatter:
        ok = node.scatter(*m);
        break;
      default:
        ok = false;
        break;
    }
    if (!ok) {
      rc = 1;
      break;
    }
  }
  ::close(fd);
  return rc;
}

}  // namespace rr::dist
