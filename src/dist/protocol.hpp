#pragma once

// Wire protocol of the distributed rotor-router (dist layer).
//
// core::DistributedRotorRouter (dist/coordinator.hpp) drives N worker
// processes, each owning one contiguous arc-balanced shard of the CSR row
// space; this header is the messages they exchange. The framing is the
// serving layer's, reused verbatim (serve/protocol.hpp: u32le payload
// length | payload | u32le CRC32), so one framing discipline — and one
// tested FrameDecoder — covers every socket in the repository.
//
// Every message kind shares ONE generic shape, DistMsg: a kind byte,
// four scalar varints (round, shard, value, value2), a sparse pair list,
// a list-of-u64-lists, and a text blob. One codec means one total,
// fuzz-hardened decoder (tests/dist_protocol_test.cpp mirrors the
// serve_protocol lanes) instead of fifteen hand-rolled ones; kinds simply
// leave unused fields empty, which costs one zero byte each on the wire.
//
// Decoding is total: truncated or overlong varints, element counts
// exceeding the remaining payload (a crafted count can never force an
// allocation beyond the frame's own size), unknown kinds, and trailing
// bytes all yield nullopt — worker sockets are external input in
// --dist-socket mode, and the never-abort contract of the checkpoint
// codecs extends to this layer.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "serve/protocol.hpp"
#include "sim/wire.hpp"

namespace rr::dist {

/// Frame helpers shared with the serving layer (identical wire form).
using serve::encode_frame;
using serve::FrameDecoder;
using serve::kMaxFramePayload;

/// Message kinds of one distributed round (see dist/coordinator.hpp for
/// the round protocol; field usage per kind is documented at each enum).
enum class MsgKind : std::uint8_t {
  /// coordinator -> worker, once: text = graph descriptor, shard = the
  /// worker's shard index, value = worker count, value2 = spill batch
  /// size, pairs = agent (site, count) multiset, lists[0] = initial
  /// pointer field (may be empty). Worker replies kOk.
  kInit = 1,
  /// coordinator -> worker: round = t, pairs = (node, held) for the
  /// worker's nodes with a nonzero delay hold this round (the delay
  /// schedule is evaluated at the coordinator; see kOccupiedQuery).
  kScan = 2,
  /// worker -> coordinator -> worker: round = t, shard = destination
  /// worker, pairs = (node, agents) cross-shard arrivals. The coordinator
  /// relays each batch to its destination on receipt; socket FIFO order
  /// guarantees every relayed batch for round t precedes kCommit(t).
  kSpill = 3,
  /// worker -> coordinator: round = t, value = spill bytes emitted this
  /// round, value2 = batches emitted, shard = batches flushed mid-scan
  /// (the comms/compute overlap measure).
  kScanDone = 4,
  /// coordinator -> worker: round = t. Commit all arrivals of round t.
  kCommit = 5,
  /// worker -> coordinator: round = t, value = nodes newly covered.
  kCommitDone = 6,
  /// coordinator -> worker: round = t (the upcoming round). Worker
  /// replies kOccupied so the coordinator can evaluate the delay schedule.
  kOccupiedQuery = 7,
  /// worker -> coordinator: pairs = (node, present) for occupied rows.
  kOccupied = 8,
  /// coordinator -> worker: value = running FNV-1a state. The worker
  /// continues the hash over its own rows' (pointer, count) and replies
  /// kHashReply; chaining worker 0..N-1 reproduces the sequential
  /// engine's config_hash exactly (FNV is a left fold).
  kHash = 9,
  /// worker -> coordinator: value = continued hash state.
  kHashReply = 10,
  /// coordinator -> worker: request the worker's full shard state.
  kGather = 11,
  /// worker -> coordinator: value = round, pairs = (node, count) occupied
  /// sites ascending, lists = {pointers, initial_pointers, visits, exits,
  /// first_visit, last_visit} over the shard's row range.
  kGathered = 12,
  /// coordinator -> worker: same shape as kGathered; the worker adopts
  /// the state for its row range (checkpoint-restore path, which is how
  /// a restart may change the worker count). Worker replies kOk.
  kScatter = 13,
  /// Generic acknowledgement.
  kOk = 14,
  /// coordinator -> worker: exit cleanly.
  kShutdown = 15,
};

/// The one message shape every kind shares (unused fields stay empty).
struct DistMsg {
  MsgKind kind = MsgKind::kOk;
  std::uint64_t round = 0;
  std::uint64_t shard = 0;
  std::uint64_t value = 0;
  std::uint64_t value2 = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
  std::vector<std::vector<std::uint64_t>> lists;
  std::string text;
};

/// Encodes a message payload (frame it with encode_frame for the wire).
std::string encode_msg(const DistMsg& m);

/// Total decode; nullopt on any malformed payload (see header comment).
std::optional<DistMsg> decode_msg(const std::uint8_t* data, std::size_t size);

inline std::optional<DistMsg> decode_msg(const std::string& payload) {
  return decode_msg(reinterpret_cast<const std::uint8_t*>(payload.data()),
                    payload.size());
}

// ---- blocking socket helpers (worker side) ----
//
// Workers run a plain blocking read/dispatch/reply loop; only the
// coordinator multiplexes (poll + FrameDecoder per worker, the rr_serverd
// pump idiom). These helpers retry short writes and EINTR.

/// Writes one framed message; false on any socket error (peer gone).
bool send_msg(int fd, const DistMsg& m);

/// Reads until one full frame decodes; nullopt on EOF, socket error, or a
/// fatally malformed stream.
std::optional<DistMsg> recv_msg(int fd, FrameDecoder& dec);

}  // namespace rr::dist
