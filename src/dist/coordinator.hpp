#pragma once

// Distributed rotor-router coordinator (dist layer).
//
// core::DistributedRotorRouter is a sim::Engine whose rounds execute on N
// worker processes (or in-process worker threads), each owning one
// contiguous arc-balanced shard of the CSR row space — the same
// graph::Partition split core::ShardedRotorRouter uses with threads. The
// coordinator holds no per-node dynamic state of its own: it sequences
// the round protocol, relays cross-shard spill batches, evaluates the
// delay schedule, and aggregates coverage.
//
// One round (see dist/protocol.hpp for message shapes):
//
//   kOccupiedQuery / kOccupied   (delayed rounds only: the DelayFn lives
//                                 at the coordinator, so it collects the
//                                 occupied rows, evaluates D(v, t, n) and
//                                 ships each worker its held counts)
//   kScan(t)       -> workers scan their occupied rows, streaming kSpill
//                     batches mid-scan; the coordinator relays each batch
//                     to its destination worker on receipt, so comms
//                     overlap both the sender's and the receiver's peers'
//                     compute. kScanDone carries the comms counters.
//   kCommit(t)     -> workers fold arrival totals (additive, order-free),
//                     reply kCommitDone with newly covered counts.
//
// Socket FIFO order is the correctness backbone: every kSpill(t) a worker
// emits precedes its kScanDone(t), the coordinator queues relays before
// it queues any kCommit(t), and per-connection byte streams deliver in
// order — so every arrival of round t is absorbed before it commits.
// The coordinator's sockets are nonblocking with userspace write queues
// (the rr_serverd pump idiom) while workers block: the star never
// deadlocks because the center always drains reads.
//
// Bit-equality: arrival commits are additive with set-once first-visit
// bookkeeping, so shard state after round t is a function of per-node
// arrival totals — never of batch boundaries, relay interleavings, or
// worker scheduling. config_hash chains FNV-1a across workers in shard
// order and checkpoints gather into the exact serialize_rotor_state field
// set, so hashes and rr-ckpt images are byte-identical to the sequential
// engine's (the differential gate in tests/dist_engine_test.cpp holds
// this across worker counts, topologies, delay schedules, and restarts
// that change the worker count).
//
// Worker crash (socket EOF/error any time): the engine halts cleanly —
// halted() turns true, time() stays at the last committed round, further
// step()/run() calls are no-ops, and no checkpoint fires after the halt
// (the workers are gone; the resumable point is the last periodic
// auto-checkpoint, which `rr_cli run --resume` continues, with any
// worker count).

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/shard_step.hpp"
#include "dist/protocol.hpp"
#include "graph/csr_graph.hpp"
#include "graph/descriptor.hpp"
#include "graph/partition.hpp"
#include "sim/engine.hpp"
#include "sim/state_io.hpp"

namespace rr::core {

/// How the coordinator obtains its workers.
struct DistOptions {
  /// Worker count; clamped to [1, num_nodes] like Partition shard counts.
  std::uint32_t workers = 2;
  /// Spill batch size: a worker flushes a destination's batch mid-scan
  /// once this many distinct frontier slots accumulate. Smaller batches
  /// overlap more, larger ones amortize framing; 0 behaves as 1.
  std::uint64_t spill_batch = 256;
  /// Path of the rr_noded binary to fork/exec per worker (connected via
  /// an inherited socketpair fd, `rr_noded --dist-fd N`). Empty: workers
  /// run as in-process threads over socketpairs instead — the same
  /// worker_serve loop and wire protocol, zero-setup (tests, bench, and
  /// single-machine runs without a sibling binary).
  std::string noded_path;
  /// Non-empty: instead of spawning anything, listen on this AF_UNIX
  /// path and accept `workers` externally launched `rr_noded --connect`
  /// processes. Takes precedence over noded_path.
  std::string listen_socket;
  /// Fault-injection hook (thread transport): worker 0 drops its
  /// connection when it receives its worker_fail_after-th kScan. The CI
  /// smoke lane kills a real rr_noded process instead.
  std::uint64_t worker_fail_after = 0;
};

/// Cumulative comms counters, aggregated from kScanDone.
struct DistCommsStats {
  std::uint64_t rounds = 0;
  std::uint64_t spill_bytes = 0;       ///< framed kSpill payload bytes
  std::uint64_t batches = 0;           ///< kSpill batches emitted
  std::uint64_t mid_scan_batches = 0;  ///< flushed while still scanning
};

class DistributedRotorRouter final : public sim::Engine, public sim::StateIO {
 public:
  /// Builds the graph, spawns/accepts the workers, and initializes them.
  /// nullptr (with *error set) on an invalid config, a descriptor that
  /// fails to build or is disconnected, or any worker that cannot be
  /// spawned or rejects its kInit. Never aborts: every input here can
  /// arrive from CLI flags.
  static std::unique_ptr<DistributedRotorRouter> create(
      const graph::GraphDescriptor& descriptor,
      const std::vector<graph::NodeId>& agents,
      const std::vector<std::uint32_t>& pointers, const DistOptions& options,
      std::string* error = nullptr);

  ~DistributedRotorRouter() override;
  DistributedRotorRouter(const DistributedRotorRouter&) = delete;
  DistributedRotorRouter& operator=(const DistributedRotorRouter&) = delete;

  // ---- sim::Engine ----
  void step() override;
  void run(std::uint64_t rounds) override;
  std::uint64_t run_until_covered(std::uint64_t max_rounds) override;
  std::uint64_t time() const override { return time_; }
  sim::NodeId num_nodes() const override { return csr_.num_nodes(); }
  std::uint32_t num_agents() const override { return num_agents_; }
  std::uint64_t visits(sim::NodeId v) const override;
  std::uint64_t first_visit_time(sim::NodeId v) const override;
  sim::NodeId covered_count() const override { return covered_; }
  std::uint64_t config_hash() const override;
  /// Same engine identity as the sequential and sharded engines: the
  /// checkpoints are interchangeable (restore with any backend).
  const char* engine_name() const override { return "rotor-router"; }

  // ---- sim::StateIO ----
  void serialize_state(sim::StateWriter& out) const override;
  [[nodiscard]] bool deserialize_state(const sim::StateReader& in) override;

  /// True once a worker died or broke protocol; the engine is inert
  /// (step/run no-op, time() frozen at the last committed round).
  bool halted() const { return halted_; }
  std::uint32_t num_workers() const { return part_.num_shards(); }
  const DistCommsStats& comms_stats() const { return comms_; }

 private:
  struct Conn {
    int fd = -1;
    bool alive = false;
    dist::FrameDecoder dec;
    std::string out;            // queued unsent bytes (framed messages)
    std::size_t out_off = 0;    // sent prefix of `out`
  };

  DistributedRotorRouter(graph::CsrGraph csr, std::uint32_t workers);

  bool spawn(const DistOptions& options, std::string* error);
  bool init_workers(const graph::GraphDescriptor& descriptor,
                    const std::vector<graph::NodeId>& agents,
                    const std::vector<std::uint32_t>& pointers,
                    const DistOptions& options, std::string* error);

  void step_impl(const sim::DelayFn* delay);
  void do_step_delayed(const sim::DelayFn& delay) override {
    step_impl(&delay);
  }

  // Socket pump (nonblocking; see header comment).
  void fail_worker(std::uint32_t w);
  void queue_msg(std::uint32_t w, const dist::DistMsg& m);
  void try_flush(std::uint32_t w);
  bool pump_once(int timeout_ms);  // one poll cycle; false if halted
  /// Next decoded message from any worker; false (and halted_) on death
  /// or malformed stream.
  bool next_msg(std::uint32_t* from, dist::DistMsg* m);
  /// One `kind` message from every worker; relays round-`round` kSpill
  /// batches when allow_spill. handler(worker, msg) per reply.
  template <typename Handler>
  bool collect(dist::MsgKind kind, std::uint64_t round, bool allow_spill,
               Handler&& handler);
  /// One `kind` message from worker `w` specifically.
  bool expect_from(std::uint32_t w, dist::MsgKind kind, dist::DistMsg* m);

  /// Refreshes the gathered full-state cache (kGather sweep) if it is
  /// stale for the current round. False on halt.
  bool refresh_gather() const;

  graph::CsrGraph csr_;
  graph::Partition part_;
  std::uint64_t time_ = 0;
  std::uint32_t num_agents_ = 0;
  sim::NodeId covered_ = 0;
  bool halted_ = false;
  DistCommsStats comms_;

  std::vector<Conn> conn_;
  std::vector<std::thread> threads_;  // thread transport
  std::vector<int> child_pids_;       // fork/exec transport

  // Gathered-state cache backing visits()/first_visit_time()/serialize;
  // mutable because const accessors refresh it over the sockets. The
  // arrays are members (not locals) deliberately: serialize_rotor_state
  // records strided *views* that the checkpoint writer streams after
  // serialize_state returns. Tagged by the round it was gathered at.
  mutable std::uint64_t gather_round_ = ~std::uint64_t{0};
  mutable std::vector<graph::NodeState> gather_node_;
  mutable std::vector<std::uint32_t> gather_ip_;
  mutable std::vector<core::VisitStats> gather_stats_;
};

}  // namespace rr::core
