#pragma once

// Worker side of the distributed rotor-router (dist layer).
//
// One WorkerNode owns one contiguous arc-balanced shard of the CSR row
// space — the same graph::Partition ranges core::ShardedRotorRouter uses
// in-process — and runs the identical race-free round kernel
// (core/shard_step.hpp): scan its occupied rows, distribute exits, commit
// arrival totals. The only difference is where cross-shard arrivals go:
// instead of a sibling shard's spill buffer in shared memory, they
// accumulate per destination worker and flush as framed kSpill batches
// over the coordinator socket. Arrival commits are additive with
// set-once first-visit bookkeeping, so per-round state is a function of
// per-node arrival *totals*, never of batch or delivery order — which is
// the whole bit-equality argument, unchanged from the sharded engine
// (README "Distributed stepping").
//
// Batches flush mid-scan as soon as spill_batch distinct frontier slots
// accumulate for one destination: the kernel keeps scanning while those
// bytes cross the socket (and while the coordinator relays them), which
// is the comms/compute overlap bench_dist measures. A node split across
// two batches is fine — totals add.
//
// The worker is a blocking single-threaded serve loop over one socket fd
// (AF_UNIX socketpair from the coordinator's fork/exec or thread spawn,
// or a connected --dist-socket stream). It exits 0 on kShutdown or a
// closed socket, nonzero on a malformed or out-of-protocol stream.
//
// Memory honesty: each worker rebuilds the full CSR from the descriptor
// (the partition and frontier tables need global topology) and sizes its
// state arrays at n nodes, touching only its own range. Distribution
// therefore shards the *round work and the dynamic-state writes*, not
// yet the graph image; carving the substrate itself (mmap'd per-range
// images) is the ROADMAP follow-on.

#include <cstdint>

namespace rr::dist {

/// Serves one worker connection until kShutdown/EOF. `fail_after_scans`
/// is a test/fault-injection hook: a nonzero value makes the worker drop
/// the connection (as a crash would) after handling that many kScan
/// messages. Returns 0 on a clean shutdown, 1 on protocol errors, 2 on a
/// rejected kInit (bad descriptor or state).
int worker_serve(int fd, std::uint64_t fail_after_scans = 0);

}  // namespace rr::dist
