#pragma once

// Engine-generic space-time tracing (sim layer).
//
// Renders the evolution of any sim::Engine as ASCII diagrams — one frame
// per sampled round — using only the Engine observer surface (visits,
// first_visit_time, coverage), so torus and random-graph runs draw the
// same way ring runs always have. Glyphs:
//
//   ' '  unvisited
//   '.'  visited in an earlier sampled interval
//   'o'  active: the node's visit count grew since the previous sample
//        (for the first frame: nodes first visited at the current round,
//        i.e. the initial hosts when tracing from round 0)
//
// 1-D substrates render one line per frame; for 2-D layouts (torus,
// grid) set TraceOptions::width to the row length and each frame becomes
// a stacked block of `width`-column lines in row-major node order.
//
// The ring-specialized renderer (core/trace.hpp) keeps its richer
// per-agent glyphs and domain labels; its formatting is a thin shim over
// format_trace here.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace rr::sim {

struct TraceOptions {
  std::uint64_t rounds = 64;  ///< rounds to advance while recording
  std::uint64_t stride = 1;   ///< sample every `stride` rounds
  NodeId width = 0;           ///< 0 = one line; else 2-D rows of `width`
};

/// One sampled frame: the round it depicts plus one or more cell lines
/// (multiple for 2-D layouts).
struct TraceFrame {
  std::uint64_t round = 0;
  std::vector<std::string> lines;
};

/// Renders the engine's current coverage/activity state. `prev_visits`
/// (if non-null, length num_nodes()) marks 'o' where visits grew since
/// that snapshot; otherwise 'o' marks nodes first visited this round.
TraceFrame render_frame(const Engine& engine, NodeId width,
                        const std::vector<std::uint64_t>* prev_visits);

/// Advances `engine` options.rounds rounds, sampling a frame every
/// options.stride rounds (including the initial state).
std::vector<TraceFrame> record_trace(Engine& engine,
                                     const TraceOptions& options);

/// Joins frames into a printable diagram with aligned round labels.
/// Single-line frames print as `t=<round> |cells|`; multi-line frames as
/// a `t=<round>` header followed by the framed block.
std::string format_trace(const std::vector<TraceFrame>& frames);

}  // namespace rr::sim
