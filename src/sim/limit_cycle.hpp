#pragma once

// Engine-generic limit-cycle detection (paper Sec. 4, interface version).
//
// Deterministic engines (both rotor-routers) are finite-state, so the
// sequence of configurations must enter a cycle. Brent's algorithm over
// `config_hash()` finds the period of that cycle for *any* sim::Engine with
// O(1) memory — no per-engine snapshot type needed. Hash equality is
// probabilistic (64-bit FNV over the full configuration); callers that
// need collision-proof exactness use sim::detect_confirmed_cycle
// (sim/cycle_jump.hpp), which runs this same Brent proposal and then
// confirms with a full serialized-state comparison. This header stays as
// the zero-dependency probabilistic probe (and regression anchor).

#include <cstdint>
#include <optional>

#include "sim/engine.hpp"

namespace rr::sim {

struct HashCycle {
  std::uint64_t period = 0;
  /// A round at which the engine is (with 64-bit-hash confidence) inside
  /// the cycle; equals the engine's time when detection succeeded.
  std::uint64_t detected_at = 0;
};

/// Advances `engine` until a configuration hash repeats (Brent), or until
/// `max_steps` additional rounds have elapsed. The engine is left at the
/// detection round on success.
inline std::optional<HashCycle> detect_hash_cycle(Engine& engine,
                                                  std::uint64_t max_steps) {
  std::uint64_t power = 1;
  std::uint64_t lambda = 1;
  std::uint64_t tortoise = engine.config_hash();
  for (std::uint64_t steps = 0; steps < max_steps; ++steps) {
    engine.step();
    if (engine.config_hash() == tortoise) {
      return HashCycle{lambda, engine.time()};
    }
    if (power == lambda) {
      tortoise = engine.config_hash();
      power *= 2;
      lambda = 0;
    }
    ++lambda;
  }
  return std::nullopt;
}

}  // namespace rr::sim
