#pragma once

// Batched engine runner (sim layer).
//
// Every bench/example driver used to hand-roll its trial loop: spawn
// threads, derive seeds, fold statistics. `Runner` is the single batched
// implementation: a persistent thread pool that fans *any* job — engine
// trials across seeds, sweeps across graph sizes, Monte-Carlo estimates —
// over hardware threads with deterministic results (job i always computes
// the same value regardless of scheduling; results come back in job order).
//
// Engine-aware conveniences (`cover_times`, `cover_stats`) build a fresh
// sim::Engine per trial through a factory and run it to coverage, so the
// same driver line serves rotor-routers and random walks alike.
//
// The bench-scale knobs (RR_BENCH_SCALE) live here too, alongside the
// pool they parameterize. The worker threads themselves are a
// sim::ThreadPool (sim/thread_pool.hpp), shared with shard-parallel
// engines via pool().

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "common/hash.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/thread_pool.hpp"

namespace rr::sim {

// ---- per-trial RNG derivation ----
//
// Batched drivers run `trials` independent jobs from one master seed. Seeds
// must be (a) deterministic in (master, trial) regardless of scheduling and
// (b) statistically independent across trials — `seed + 31 * i` arithmetic
// fails (b) for counter-seeded generators. These helpers are the sanctioned
// derivation (SplitMix64-style, common/hash.hpp).

/// Seed for trial/stream `trial` under `master`.
constexpr std::uint64_t derive_seed(std::uint64_t master, std::uint64_t trial) {
  return mix_seed(master, trial);
}

/// Ready-to-use per-trial generator.
inline Rng trial_rng(std::uint64_t master, std::uint64_t trial) {
  return Rng(derive_seed(master, trial));
}

// ---- bench-harness knobs ----
//
// Every bench binary reads RR_BENCH_SCALE (a positive float, default 1.0)
// and scales its instance sizes / trial counts by it, so the same binaries
// serve both a quick smoke run and a high-fidelity overnight run
// (RR_BENCH_SCALE=4+).

inline double bench_scale() {
  if (const char* env = std::getenv("RR_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

/// base * scale, rounded, at least `min_value`.
inline std::uint64_t scaled(std::uint64_t base, std::uint64_t min_value = 1) {
  const double v = static_cast<double>(base) * bench_scale();
  const auto r = static_cast<std::uint64_t>(v + 0.5);
  return r < min_value ? min_value : r;
}

/// Scales and rounds to the next power of two (ring sizes sweep cleanly).
inline std::uint64_t scaled_pow2(std::uint64_t base) {
  std::uint64_t v = scaled(base, 4);
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

inline void print_bench_header(const std::string& title,
                               const std::string& paper_ref) {
  std::printf("\n## %s\n\n", title.c_str());
  std::printf("Paper reference: %s | RR_BENCH_SCALE=%.2f\n\n",
              paper_ref.c_str(), bench_scale());
}

// ---- bench JSON artifact ----
//
// Plain printf bench drivers can publish throughput samples into the
// per-commit CI artifact next to the google-benchmark JSONs: add()
// records google-benchmark-shaped entries ({"name", "items_per_second",
// "run_type": "iteration"}) and the destructor writes the file named by
// the RR_BENCH_JSON environment variable (no-op when unset), so
// tools/bench_diff.py folds repetitions into medians and flags
// regressions for these benches exactly like for bench_perf.

class BenchJsonWriter {
 public:
  BenchJsonWriter() {
    if (const char* env = std::getenv("RR_BENCH_JSON")) path_ = env;
  }
  BenchJsonWriter(const BenchJsonWriter&) = delete;
  BenchJsonWriter& operator=(const BenchJsonWriter&) = delete;

  bool enabled() const { return !path_.empty(); }

  /// One repetition's throughput sample (items per second).
  void add(const std::string& name, double items_per_second) {
    add_metric(name, "items_per_second", items_per_second);
  }

  /// One repetition's sample under an arbitrary metric key (e.g.
  /// "bytes_per_node", "rss_bytes"); tools/bench_diff.py knows each key's
  /// regression direction.
  void add_metric(const std::string& name, const std::string& key,
                  double value) {
    if (!enabled()) return;
    if (!entries_.empty()) entries_ += ",\n";
    entries_ += "    {\"name\": \"" + name + "\", \"run_type\": " +
                "\"iteration\", \"" + key + "\": " + std::to_string(value) +
                "}";
  }

  ~BenchJsonWriter() {
    if (!enabled()) return;
    if (std::FILE* f = std::fopen(path_.c_str(), "w")) {
      std::fprintf(f, "{\n  \"benchmarks\": [\n%s\n  ]\n}\n",
                   entries_.c_str());
      std::fclose(f);
    }
  }

 private:
  std::string path_;
  std::string entries_;
};

// ---- sweep checkpointing ----
//
// Long sweeps (millions of trials) need the same resumability as single
// runs (sim/checkpoint.hpp): a SweepCheckpoint records which trials have
// finished and their results, round-trips through a one-line text form
// ("rr-sweep v1 trials=<N> done=<i>:<v>,..."), and feeds the resumable
// cover_times overload, which only runs the missing trials. Trials are
// deterministic in their index (derive_seed), so a resumed sweep fills in
// exactly the values the uninterrupted sweep would have produced.

struct SweepCheckpoint {
  std::uint64_t trials = 0;
  std::vector<std::uint8_t> done;        ///< 1 = results[i] is valid
  std::vector<std::uint64_t> results;    ///< per-trial cover times

  static SweepCheckpoint fresh(std::uint64_t trials) {
    SweepCheckpoint ck;
    ck.trials = trials;
    ck.done.assign(trials, 0);
    ck.results.assign(trials, 0);
    return ck;
  }

  std::uint64_t completed() const {
    std::uint64_t c = 0;
    for (std::uint8_t d : done) c += d;
    return c;
  }
  bool complete() const { return completed() == trials; }

  std::string to_text() const;
  /// nullopt on malformed input (never aborts: checkpoints are external).
  static std::optional<SweepCheckpoint> from_text(const std::string& text);
};

// ---- the batched runner ----

class Runner {
 public:
  /// `max_threads` 0 = hardware concurrency. The calling thread always
  /// participates, so a Runner on a single-core machine runs jobs inline.
  explicit Runner(unsigned max_threads = 0) : pool_(max_threads) {}

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  /// Worker threads plus the participating caller.
  unsigned num_threads() const { return pool_.num_threads(); }

  /// The underlying fork-join pool; share it with shard-parallel engines
  /// (core::ShardedRotorRouter) so trial-level and shard-level parallelism
  /// draw from one set of threads instead of oversubscribing.
  ThreadPool& pool() { return pool_; }

  /// Runs fn(i) for i in [0, jobs) across the pool; blocks until all jobs
  /// finished. Jobs are claimed dynamically in contiguous chunks: one
  /// atomic fetch-add claims `chunk` jobs, so a sweep of ~1e6 tiny trials
  /// does not serialize on the shared counter. `chunk` 0 picks a size
  /// automatically (~jobs/8 per thread, capped at 64 — small enough to
  /// keep skewed runtimes balanced, large enough to amortize contention).
  void for_each(std::uint64_t jobs,
                const std::function<void(std::uint64_t)>& fn,
                std::uint64_t chunk = 0) {
    pool_.for_each(jobs, fn, chunk);
  }

  /// for_each with per-job cost estimates (arbitrary positive units, only
  /// relative magnitudes matter): jobs run largest-estimate-first, so a
  /// strongly skewed sweep does not strand its big jobs at the tail of
  /// the schedule (longest-processing-time-first); the pool's work
  /// stealing covers the residual case of a heavy job leading a chunk.
  /// Results are identical to for_each — job i still receives index i —
  /// only the execution order changes. `cost_hint` must have one entry
  /// per job.
  void for_each_hinted(std::uint64_t jobs,
                       const std::function<void(std::uint64_t)>& fn,
                       const std::vector<double>& cost_hint);

  /// Runs fn over [0, jobs); returns the results in job order.
  std::vector<double> map(std::uint64_t jobs,
                          const std::function<double(std::uint64_t)>& fn);

  /// map + fold into RunningStats (mean/stddev/ci95/min/max).
  analysis::RunningStats stats(std::uint64_t jobs,
                               const std::function<double(std::uint64_t)>& fn);

  /// Builds an engine per trial and runs it to coverage. Returns per-trial
  /// cover times (kNotCovered entries where `max_rounds` elapsed first).
  using EngineFactory =
      std::function<std::unique_ptr<Engine>(std::uint64_t trial)>;
  std::vector<std::uint64_t> cover_times(std::uint64_t trials,
                                         const EngineFactory& factory,
                                         std::uint64_t max_rounds);

  /// cover_times with per-trial cost estimates (see for_each_hinted):
  /// skewed sweeps — mixed instance sizes, worst-case vs random starts —
  /// schedule their expensive trials first. Results are identical to the
  /// unhinted overload.
  std::vector<std::uint64_t> cover_times(std::uint64_t trials,
                                         const EngineFactory& factory,
                                         std::uint64_t max_rounds,
                                         const std::vector<double>& cost_hint);

  /// Resumable cover_times: only trials not marked done in `ck` run; their
  /// results and done flags are filled in. `ck.trials` must match `trials`
  /// (pass SweepCheckpoint::fresh(trials) to start). Returns the complete
  /// result vector in trial order.
  std::vector<std::uint64_t> cover_times(std::uint64_t trials,
                                         const EngineFactory& factory,
                                         std::uint64_t max_rounds,
                                         SweepCheckpoint& ck);

  /// cover_times folded into stats; requires every trial to cover within
  /// `max_rounds` (aborts otherwise — raise the cap).
  analysis::RunningStats cover_stats(std::uint64_t trials,
                                     const EngineFactory& factory,
                                     std::uint64_t max_rounds);

 private:
  ThreadPool pool_;
};

}  // namespace rr::sim
