#include "sim/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>

#include "common/require.hpp"

namespace rr::sim {

namespace {

// One flag across all pools: a job of pool A that steps a sharded engine
// holding pool B must still inline B's dispatch (the hardware is already
// owned by A's batch).
thread_local bool tls_in_pool_job = false;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

// Spin budget before parking (workers) or blocking (caller). Roughly a
// few microseconds: long enough to bridge the gap between per-round
// dispatches of a continuously stepped sharded engine, short enough that
// an idle pool parks promptly.
constexpr int kSpinLimit = 1 << 12;

// Owner take granularity inside a published claim range. Small enough
// that a thief stealing the back half of a range gets useful work, large
// enough that tiny jobs don't pay one CAS each.
constexpr std::uint64_t kOwnerBlock = 8;

// A claim range packs (next, limit) flat indices into one u64 so that the
// owner advancing `next` and a thief lowering `limit` linearize through a
// single CAS — no interleaving can run a job twice or drop one. Flat
// indices fit in u32 whenever stealing is enabled (see Shared::steal).
constexpr std::uint64_t pack_range(std::uint64_t next, std::uint64_t limit) {
  return (next << 32) | limit;
}
constexpr std::uint64_t range_next(std::uint64_t r) { return r >> 32; }
constexpr std::uint64_t range_limit(std::uint64_t r) { return r & 0xffffffffULL; }
constexpr std::uint64_t range_size(std::uint64_t r) {
  const std::uint64_t n = range_next(r), l = range_limit(r);
  return n < l ? l - n : 0;
}

}  // namespace

// Batch protocol: run_batch publishes the lane table and bumps the atomic
// `generation` under the mutex, then wakes the workers. Workers spin on
// `generation` (lock-free fast path) and fall back to a condvar wait;
// either way they *enter* a batch under the mutex, re-checking that the
// batch is still published (`fn != nullptr`) — a straggler that wakes
// after the batch completed goes back to sleep instead of reading stale
// parameters. A batch is complete when every lane's claim counter is
// exhausted, no claim range has jobs left to steal, AND no worker is
// still active; run_batch unpublishes fn before returning, so no worker
// can touch it afterwards.
struct ThreadPool::Shared {
  struct Lane {
    std::uint64_t base = 0;   // flat-index offset of this lane
    std::uint64_t count = 0;  // jobs in this lane
    std::uint64_t chunk = 1;  // claim granularity
    std::atomic<std::uint64_t> next{0};
  };

  // One per participating thread (workers + the caller), cache-line
  // separated: the owner hammers its own slot with CAS while thieves only
  // read until they commit a steal.
  struct alignas(64) ClaimSlot {
    std::atomic<std::uint64_t> range{0};
  };

  std::mutex mu;
  std::condition_variable work_ready;
  std::condition_variable batch_done;
  const std::function<void(std::uint64_t)>* fn = nullptr;  // guarded by mu
  Lane lanes[kMaxLanes];             // fixed fields guarded by mu
  std::size_t num_lanes = 0;         // guarded by mu
  bool steal = false;                // guarded by mu; true iff total fits u32
  std::unique_ptr<ClaimSlot[]> slots;
  std::size_t num_slots = 0;
  std::atomic<std::uint64_t> generation{0};
  std::atomic<unsigned> active{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> dispatching{false};  // single-dispatcher contract check

  // Runs one claimed flat range [lo, hi). With stealing enabled the range
  // is published in this thread's claim slot and consumed in blocks of
  // kOwnerBlock via CAS, so a sibling can steal the back half while the
  // front runs; tiny ranges skip the slot entirely (nothing worth
  // stealing, and the direct loop costs zero extra atomics).
  static void run_range(Shared& s, const std::function<void(std::uint64_t)>& f,
                        std::size_t self, std::uint64_t lo, std::uint64_t hi) {
    if (!s.steal || hi - lo <= kOwnerBlock) {
      for (std::uint64_t i = lo; i < hi; ++i) f(i);
      return;
    }
    auto& slot = s.slots[self].range;
    slot.store(pack_range(lo, hi), std::memory_order_release);
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t next = range_next(cur), limit = range_limit(cur);
      if (next >= limit) break;
      const std::uint64_t take = std::min(kOwnerBlock, limit - next);
      if (slot.compare_exchange_weak(cur, pack_range(next + take, limit),
                                     std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
        for (std::uint64_t i = next; i < next + take; ++i) f(i);
        cur = slot.load(std::memory_order_relaxed);
      }
      // CAS failure: a thief lowered `limit` (or the weak CAS failed
      // spuriously); `cur` holds the fresh value either way.
    }
  }

  // Steals the back half of the largest outstanding sibling claim range.
  // Returns false when no sibling holds >= 2 unrun jobs. A failed CAS
  // means the victim (or another thief) made progress, so the rescan loop
  // is lock-free in aggregate.
  static bool steal_range(Shared& s, std::size_t self, std::uint64_t* lo,
                          std::uint64_t* hi) {
    for (;;) {
      std::size_t victim = s.num_slots;
      std::uint64_t victim_range = 0;
      std::uint64_t best = 1;  // require >= 2 so both halves stay non-empty
      for (std::size_t j = 0; j < s.num_slots; ++j) {
        if (j == self) continue;
        const std::uint64_t r = s.slots[j].range.load(std::memory_order_relaxed);
        const std::uint64_t size = range_size(r);
        if (size > best) {
          best = size;
          victim = j;
          victim_range = r;
        }
      }
      if (victim == s.num_slots) return false;
      const std::uint64_t next = range_next(victim_range);
      const std::uint64_t limit = range_limit(victim_range);
      const std::uint64_t mid = next + (limit - next) / 2;  // victim keeps front
      std::uint64_t expected = victim_range;
      if (s.slots[victim].range.compare_exchange_weak(
              expected, pack_range(next, mid), std::memory_order_acq_rel,
              std::memory_order_relaxed)) {
        *lo = mid;
        *hi = limit;
        return true;
      }
    }
  }

  // Claims and runs jobs of the current batch until no lane has unclaimed
  // chunks and no sibling range can be stolen. Lanes are tried in order,
  // so lane 0 drains with strict priority; `self` is this thread's claim
  // slot index.
  static void drain(Shared& s, const std::function<void(std::uint64_t)>& f,
                    std::size_t self) {
    tls_in_pool_job = true;
    for (;;) {
      std::uint64_t lo = 0, hi = 0;
      for (std::size_t l = 0; l < s.num_lanes; ++l) {
        Lane& lane = s.lanes[l];
        // Cheap pre-check bounds counter overshoot on exhausted lanes.
        if (lane.next.load(std::memory_order_relaxed) >= lane.count) continue;
        const std::uint64_t base =
            lane.next.fetch_add(lane.chunk, std::memory_order_relaxed);
        if (base >= lane.count) continue;
        lo = lane.base + base;
        hi = lane.base + std::min(lane.count, base + lane.chunk);
        break;
      }
      if (lo == hi && s.steal && !steal_range(s, self, &lo, &hi)) break;
      if (lo == hi) break;
      run_range(s, f, self, lo, hi);
    }
    tls_in_pool_job = false;
  }
};

bool ThreadPool::in_pool_job() { return tls_in_pool_job; }

ThreadPool::ThreadPool(unsigned max_threads) : shared_(std::make_unique<Shared>()) {
  unsigned threads =
      max_threads ? max_threads : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  // The caller participates in every batch, so spawn threads-1 workers;
  // claim slots cover every participant (slot threads-1 is the caller's).
  shared_->slots = std::make_unique<Shared::ClaimSlot[]>(threads);
  shared_->num_slots = threads;
  for (unsigned t = 1; t < threads; ++t) {
    workers_.push_back(std::make_unique<std::jthread>([this, t] {
      Shared& s = *shared_;
      const std::size_t self = t - 1;
      std::uint64_t seen = 0;
      for (;;) {
        // Lock-free fast path: spin on the batch generation.
        int spins = 0;
        while (s.generation.load(std::memory_order_acquire) == seen &&
               !s.stop.load(std::memory_order_acquire)) {
          if (++spins > kSpinLimit) break;
          cpu_relax();
        }
        const std::function<void(std::uint64_t)>* fn = nullptr;
        {
          std::unique_lock<std::mutex> lock(s.mu);
          s.work_ready.wait(lock, [&] {
            return s.stop.load(std::memory_order_relaxed) ||
                   (s.generation.load(std::memory_order_relaxed) != seen &&
                    s.fn != nullptr);
          });
          if (s.stop.load(std::memory_order_relaxed)) return;
          seen = s.generation.load(std::memory_order_relaxed);
          fn = s.fn;
          s.active.fetch_add(1, std::memory_order_relaxed);
        }
        Shared::drain(s, *fn, self);
        if (s.active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(s.mu);
          s.batch_done.notify_all();
        }
      }
    }));
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->stop.store(true, std::memory_order_release);
  }
  shared_->work_ready.notify_all();
  workers_.clear();  // jthread joins on destruction
}

void ThreadPool::for_each(std::uint64_t jobs,
                          const std::function<void(std::uint64_t)>& fn,
                          std::uint64_t chunk) {
  if (jobs == 0) return;
  // Inline paths, cheapest first: nested dispatch and 1-thread pools must
  // run on the caller; a batch that cannot split across two claim chunks
  // would wake workers only to have the caller's first claim take
  // everything, so it runs inline too (no wake, no park, no atomics).
  if (tls_in_pool_job || workers_.empty() || jobs == 1 ||
      (chunk != 0 && jobs <= chunk)) {
    for (std::uint64_t i = 0; i < jobs; ++i) fn(i);
    return;
  }
  const LaneSpec lane{jobs, chunk};
  run_batch(&lane, 1, fn);
}

void ThreadPool::for_each_lanes(
    const std::vector<LaneSpec>& lanes,
    const std::function<void(std::size_t, std::uint64_t)>& fn) {
  RR_REQUIRE(lanes.size() <= kMaxLanes, "too many priority lanes");
  std::uint64_t total = 0;
  for (const LaneSpec& l : lanes) total += l.jobs;
  if (total == 0) return;
  if (tls_in_pool_job || workers_.empty() || total == 1) {
    for (std::size_t l = 0; l < lanes.size(); ++l)
      for (std::uint64_t i = 0; i < lanes[l].jobs; ++i) fn(l, i);
    return;
  }
  // Map flat indices back to (lane, local): lane count is <= kMaxLanes,
  // so a linear scan over prefix offsets beats anything fancier.
  std::uint64_t offsets[kMaxLanes + 1] = {0};
  for (std::size_t l = 0; l < lanes.size(); ++l)
    offsets[l + 1] = offsets[l] + lanes[l].jobs;
  const std::function<void(std::uint64_t)> flat = [&](std::uint64_t i) {
    std::size_t lane = 0;
    while (i >= offsets[lane + 1]) ++lane;
    fn(lane, i - offsets[lane]);
  };
  run_batch(lanes.data(), lanes.size(), flat);
}

void ThreadPool::run_batch(const LaneSpec* lanes, std::size_t num_lanes,
                           const std::function<void(std::uint64_t)>& flat) {
  Shared& s = *shared_;
  RR_ASSERT(!s.dispatching.exchange(true, std::memory_order_acq_rel),
            "concurrent top-level ThreadPool dispatch from two threads");
  {
    std::lock_guard<std::mutex> lock(s.mu);
    std::uint64_t base = 0;
    for (std::size_t l = 0; l < num_lanes; ++l) {
      Shared::Lane& lane = s.lanes[l];
      lane.base = base;
      lane.count = lanes[l].jobs;
      // Auto-size: ~8 claims per thread keeps skewed runtimes balanced;
      // the 64 cap bounds the tail (last chunk) of very large lanes.
      lane.chunk = lanes[l].chunk
                       ? lanes[l].chunk
                       : std::clamp<std::uint64_t>(
                             lanes[l].jobs / (8ULL * num_threads()), 1, 64);
      lane.next.store(0, std::memory_order_relaxed);
      base += lanes[l].jobs;
    }
    s.num_lanes = num_lanes;
    // Claim slots pack flat indices into u32 halves; a (pathological)
    // batch beyond 2^32 jobs falls back to plain chunk claiming.
    s.steal = base <= 0xffffffffULL;
    for (std::size_t i = 0; i < s.num_slots; ++i)
      s.slots[i].range.store(0, std::memory_order_relaxed);
    s.fn = &flat;
    s.generation.fetch_add(1, std::memory_order_release);
  }
  s.work_ready.notify_all();
  Shared::drain(s, flat, s.num_slots - 1);  // the caller is a worker too
  // Completion: spin briefly (per-round dispatches finish in well under
  // the spin budget), then block on the condvar.
  int spins = 0;
  while (s.active.load(std::memory_order_acquire) != 0) {
    if (++spins > kSpinLimit) break;
    cpu_relax();
  }
  std::unique_lock<std::mutex> lock(s.mu);
  // acquire: the last worker decrements `active` outside the mutex, so a
  // spurious wakeup observing 0 through this load must still establish
  // the happens-before edge to that worker's job writes.
  s.batch_done.wait(lock, [&] {
    return s.active.load(std::memory_order_acquire) == 0;
  });
  s.fn = nullptr;
  s.dispatching.store(false, std::memory_order_release);
}

}  // namespace rr::sim
