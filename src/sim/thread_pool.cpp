#include "sim/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>

#include "common/require.hpp"

namespace rr::sim {

namespace {

// One flag across all pools: a job of pool A that steps a sharded engine
// holding pool B must still inline B's dispatch (the hardware is already
// owned by A's batch).
thread_local bool tls_in_pool_job = false;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

// Spin budget before parking (workers) or blocking (caller). Roughly a
// few microseconds: long enough to bridge the gap between per-round
// dispatches of a continuously stepped sharded engine, short enough that
// an idle pool parks promptly.
constexpr int kSpinLimit = 1 << 12;

}  // namespace

// Batch protocol: for_each publishes (fn, jobs, chunk) and bumps the
// atomic `generation` under the mutex, then wakes the workers. Workers
// spin on `generation` (lock-free fast path) and fall back to a condvar
// wait; either way they *enter* a batch under the mutex, re-checking that
// the batch is still published (`fn != nullptr`) — a straggler that wakes
// after the batch completed goes back to sleep instead of reading stale
// parameters. A batch is complete when the job counter is exhausted AND
// no worker is still active; for_each unpublishes fn before returning, so
// no worker can touch it afterwards.
struct ThreadPool::Shared {
  std::mutex mu;
  std::condition_variable work_ready;
  std::condition_variable batch_done;
  const std::function<void(std::uint64_t)>* fn = nullptr;  // guarded by mu
  std::uint64_t jobs = 0;                                  // guarded by mu
  std::uint64_t chunk = 1;                                 // guarded by mu
  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> generation{0};
  std::atomic<unsigned> active{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> dispatching{false};  // single-dispatcher contract check

  // Claims and runs jobs of the current batch until none are left. Each
  // fetch-add claims a contiguous chunk, so tiny jobs (~1e6-trial sweeps)
  // don't serialize every claim on the shared counter.
  static void drain(const std::function<void(std::uint64_t)>& f,
                    std::uint64_t count, std::uint64_t step,
                    std::atomic<std::uint64_t>& counter) {
    tls_in_pool_job = true;
    for (;;) {
      const std::uint64_t base = counter.fetch_add(step, std::memory_order_relaxed);
      if (base >= count) break;
      const std::uint64_t limit = std::min(count, base + step);
      for (std::uint64_t i = base; i < limit; ++i) f(i);
    }
    tls_in_pool_job = false;
  }
};

bool ThreadPool::in_pool_job() { return tls_in_pool_job; }

ThreadPool::ThreadPool(unsigned max_threads) : shared_(std::make_unique<Shared>()) {
  unsigned threads =
      max_threads ? max_threads : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  // The caller participates in every batch, so spawn threads-1 workers.
  for (unsigned t = 1; t < threads; ++t) {
    workers_.push_back(std::make_unique<std::jthread>([this] {
      Shared& s = *shared_;
      std::uint64_t seen = 0;
      for (;;) {
        // Lock-free fast path: spin on the batch generation.
        int spins = 0;
        while (s.generation.load(std::memory_order_acquire) == seen &&
               !s.stop.load(std::memory_order_acquire)) {
          if (++spins > kSpinLimit) break;
          cpu_relax();
        }
        const std::function<void(std::uint64_t)>* fn = nullptr;
        std::uint64_t jobs = 0;
        std::uint64_t chunk = 1;
        {
          std::unique_lock<std::mutex> lock(s.mu);
          s.work_ready.wait(lock, [&] {
            return s.stop.load(std::memory_order_relaxed) ||
                   (s.generation.load(std::memory_order_relaxed) != seen &&
                    s.fn != nullptr);
          });
          if (s.stop.load(std::memory_order_relaxed)) return;
          seen = s.generation.load(std::memory_order_relaxed);
          fn = s.fn;
          jobs = s.jobs;
          chunk = s.chunk;
          s.active.fetch_add(1, std::memory_order_relaxed);
        }
        Shared::drain(*fn, jobs, chunk, s.next);
        if (s.active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(s.mu);
          s.batch_done.notify_all();
        }
      }
    }));
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->stop.store(true, std::memory_order_release);
  }
  shared_->work_ready.notify_all();
  workers_.clear();  // jthread joins on destruction
}

void ThreadPool::for_each(std::uint64_t jobs,
                          const std::function<void(std::uint64_t)>& fn,
                          std::uint64_t chunk) {
  RR_REQUIRE(jobs > 0, "need at least one job");
  // Nested dispatch (or a 1-thread pool): run inline on the caller, in
  // job order. The in-pool-job flag is left untouched, so deeper nesting
  // stays inline too.
  if (tls_in_pool_job || workers_.empty()) {
    for (std::uint64_t i = 0; i < jobs; ++i) fn(i);
    return;
  }
  Shared& s = *shared_;
  RR_ASSERT(!s.dispatching.exchange(true, std::memory_order_acq_rel),
            "concurrent top-level ThreadPool::for_each from two threads");
  if (chunk == 0) {
    // Auto-size: ~8 claims per thread keeps skewed runtimes balanced; the
    // 64 cap bounds the tail (last chunk) of very large batches.
    chunk = std::clamp<std::uint64_t>(jobs / (8ULL * num_threads()), 1, 64);
  }
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.fn = &fn;
    s.jobs = jobs;
    s.chunk = chunk;
    s.next.store(0, std::memory_order_relaxed);
    s.generation.fetch_add(1, std::memory_order_release);
  }
  s.work_ready.notify_all();
  Shared::drain(fn, jobs, chunk, s.next);  // the caller is a worker too
  // Completion: spin briefly (per-round dispatches finish in well under
  // the spin budget), then block on the condvar.
  int spins = 0;
  while (s.active.load(std::memory_order_acquire) != 0) {
    if (++spins > kSpinLimit) break;
    cpu_relax();
  }
  std::unique_lock<std::mutex> lock(s.mu);
  // acquire: the last worker decrements `active` outside the mutex, so a
  // spurious wakeup observing 0 through this load must still establish
  // the happens-before edge to that worker's job writes.
  s.batch_done.wait(lock, [&] {
    return s.active.load(std::memory_order_acquire) == 0;
  });
  s.fn = nullptr;
  s.dispatching.store(false, std::memory_order_release);
}

}  // namespace rr::sim
