// Built-in backend registrations for sim::EngineRegistry.
//
// This file is the ONLY construction site of the in-tree engines outside
// of tests: each registration block owns the backend's CLI key, substrate
// requirement, shard capability, and both construction paths (fresh
// factory + checkpoint restore). Adding a backend = adding one block here
// and passing the differential gate (README "Adding a backend").

#include <string>
#include <utility>
#include <vector>

#include "analysis/continuous_engine.hpp"
#include "core/eulerian_rotor_router.hpp"
#include "core/lazy_ring_rotor_router.hpp"
#include "core/ring_rotor_router.hpp"
#include "core/rotor_router.hpp"
#include "core/sharded_rotor_router.hpp"
#include "dist/coordinator.hpp"
#include "graph/descriptor.hpp"
#include "sim/registry.hpp"
#include "walk/random_walk.hpp"

namespace rr::sim {
namespace detail {

namespace {

void fail(std::string* error, const char* message) {
  if (error) *error = message;
}

std::vector<graph::NodeId> agents_of(const EngineConfig& config) {
  return {config.agents.begin(), config.agents.end()};
}

/// Narrows a general pointer field to the ring engines' direction bytes;
/// nullopt if any entry is not a valid ring port (0 = cw, 1 = acw).
std::optional<std::vector<std::uint8_t>> ring_pointers(
    const EngineConfig& config) {
  std::vector<std::uint8_t> out(config.pointers.size());
  for (std::size_t i = 0; i < config.pointers.size(); ++i) {
    if (config.pointers[i] > 1) return std::nullopt;
    out[i] = static_cast<std::uint8_t>(config.pointers[i]);
  }
  return out;
}

/// Builds the substrate for graph-backed engines (descriptor validity was
/// checked by the registry; build() re-validates parameters).
std::optional<graph::Graph> build_graph(const graph::GraphDescriptor& d,
                                        std::string* error) {
  auto g = d.build();
  if (!g) fail(error, "invalid graph parameters");
  return g;
}

template <typename EngineT, typename... Args>
std::unique_ptr<Engine> restored(const StateReader& state, Args&&... args) {
  auto engine = std::make_unique<EngineT>(std::forward<Args>(args)...);
  if (!engine->deserialize_state(state)) return nullptr;
  return engine;
}

void register_rotor(EngineRegistry& r) {
  r.add(EngineSpec{
      .name = "rotor",
      .engine_name = "rotor-router",
      .substrate = "any connected graph",
      .summary = "general-graph multi-agent rotor-router (CSR-backed; "
                 "--shards N steps it shard-parallel, bit-equal)",
      .substrate_kinds = {},
      .supports_shards = true,
      .deterministic = true,
      .cycle_accumulators = {"time", "visits", "exits", "last_visit"},
      .factory = [](const graph::GraphDescriptor& d, const EngineConfig& c,
                    std::string* error) -> std::unique_ptr<Engine> {
        const auto g = build_graph(d, error);
        if (!g) return nullptr;
        if (!c.pointers.empty() && c.pointers.size() != g->num_nodes()) {
          fail(error, "pointer field size must match the node count");
          return nullptr;
        }
        if (c.shards > 1) {
          return std::make_unique<core::ShardedRotorRouter>(
              *g, agents_of(c), c.pointers, c.shards, c.pool);
        }
        return std::make_unique<core::RotorRouter>(*g, agents_of(c),
                                                   c.pointers);
      },
      .restore = [](const graph::GraphDescriptor& d, const StateReader& state,
                    const EngineConfig& c) -> std::unique_ptr<Engine> {
        const auto g = d.build();
        if (!g) return nullptr;
        // The shard count is an execution choice, not checkpoint state:
        // the same document restores sequentially or shard-parallel.
        if (c.shards > 1) {
          return restored<core::ShardedRotorRouter>(
              state, *g, std::vector<graph::NodeId>{0},
              std::vector<std::uint32_t>{}, c.shards, c.pool);
        }
        // A pool without a shard request still helps: the sequential
        // engine's restore decodes v2 per-node segments pool-parallel
        // (bit-identical result; see deserialize_rotor_state).
        auto engine = std::make_unique<core::RotorRouter>(
            *g, std::vector<graph::NodeId>{0});
        if (!engine->deserialize_state(state, c.pool)) return nullptr;
        return engine;
      },
  });
}

void register_ring(EngineRegistry& r) {
  r.add(EngineSpec{
      .name = "ring",
      .engine_name = "ring-rotor-router",
      .substrate = "ring only",
      .summary = "ring-specialized rotor-router with Sec. 2.2 visit "
                 "classification (domains/borders)",
      .substrate_kinds = {"ring"},
      .deterministic = true,
      // last_arrival is a per-node agent *count* (periodic on the cycle,
      // so rigid comparison both confirms it and keeps it unchanged);
      // only the round-valued counters advance per period.
      .cycle_accumulators = {"time", "visits", "exits", "last_visit"},
      .factory = [](const graph::GraphDescriptor& d, const EngineConfig& c,
                    std::string* error) -> std::unique_ptr<Engine> {
        const auto n = *d.num_nodes();
        auto ptrs = ring_pointers(c);
        if (!ptrs || (!ptrs->empty() && ptrs->size() != n)) {
          fail(error, "ring pointers must be n entries in {0, 1}");
          return nullptr;
        }
        return std::make_unique<core::RingRotorRouter>(n, agents_of(c),
                                                       std::move(*ptrs));
      },
      .restore = [](const graph::GraphDescriptor& d, const StateReader& state,
                    const EngineConfig&) -> std::unique_ptr<Engine> {
        return restored<core::RingRotorRouter>(state, *d.num_nodes(),
                                               std::vector<core::NodeId>{0});
      },
  });
}

void register_lazy(EngineRegistry& r) {
  r.add(EngineSpec{
      .name = "lazy",
      .engine_name = "lazy-ring-rotor-router",
      .substrate = "ring only",
      .summary = "O(k log k)/round domain-dynamics ring engine with "
                 "ballistic fast-forward in run()",
      .substrate_kinds = {"ring"},
      .deterministic = true,
      // In the dense phase the serialized promotion scalars keep doubling
      // (rigid, never equal), so confirmation only engages after the
      // engine promotes to its lazy O(k) representation — by design.
      .cycle_accumulators = {"time", "visits"},
      .factory = [](const graph::GraphDescriptor& d, const EngineConfig& c,
                    std::string* error) -> std::unique_ptr<Engine> {
        const auto n = *d.num_nodes();
        auto ptrs = ring_pointers(c);
        if (!ptrs || (!ptrs->empty() && ptrs->size() != n)) {
          fail(error, "ring pointers must be n entries in {0, 1}");
          return nullptr;
        }
        return std::make_unique<core::LazyRingRotorRouter>(n, agents_of(c),
                                                           std::move(*ptrs));
      },
      .restore = [](const graph::GraphDescriptor& d, const StateReader& state,
                    const EngineConfig&) -> std::unique_ptr<Engine> {
        return restored<core::LazyRingRotorRouter>(
            state, *d.num_nodes(), std::vector<core::NodeId>{0});
      },
  });
}

void register_walks(EngineRegistry& r) {
  r.add(EngineSpec{
      .name = "walks",
      .engine_name = "random-walks",
      .substrate = "any connected graph",
      .summary = "k parallel random walks (the stochastic baseline; "
                 "--seed selects the stream)",
      .substrate_kinds = {},
      .supports_shards = false,
      .factory = [](const graph::GraphDescriptor& d, const EngineConfig& c,
                    std::string* error) -> std::unique_ptr<Engine> {
        const auto g = build_graph(d, error);
        if (!g) return nullptr;
        return std::make_unique<walk::GraphRandomWalks>(*g, agents_of(c),
                                                        c.seed);
      },
      .restore = [](const graph::GraphDescriptor& d, const StateReader& state,
                    const EngineConfig&) -> std::unique_ptr<Engine> {
        const auto g = d.build();
        if (!g || g->degree(0) == 0) return nullptr;  // placeholder walker
        return restored<walk::GraphRandomWalks>(
            state, *g, std::vector<graph::NodeId>{0}, /*seed=*/1);
      },
  });
}

void register_eulerian(EngineRegistry& r) {
  r.add(EngineSpec{
      .name = "eulerian",
      .engine_name = "eulerian-circulation",
      .substrate = "any connected graph",
      .summary = "Eulerian token circulation: k tokens advancing one arc "
                 "per round along a fixed Eulerian circuit (O(k)/round)",
      .substrate_kinds = {},
      .supports_shards = false,
      .deterministic = true,
      .cycle_accumulators = {"time", "visits"},
      .factory = [](const graph::GraphDescriptor& d, const EngineConfig& c,
                    std::string* error) -> std::unique_ptr<Engine> {
        const auto g = build_graph(d, error);
        if (!g) return nullptr;
        if (g->num_edges() == 0) {
          fail(error, "token circulation needs at least one edge");
          return nullptr;
        }
        return std::make_unique<core::EulerianRotorRouter>(*g, agents_of(c));
      },
      .restore = [](const graph::GraphDescriptor& d, const StateReader& state,
                    const EngineConfig&) -> std::unique_ptr<Engine> {
        const auto g = d.build();
        if (!g || g->num_edges() == 0) return nullptr;
        return restored<core::EulerianRotorRouter>(
            state, *g, std::vector<graph::NodeId>{0});
      },
  });
}

void register_ode(EngineRegistry& r) {
  r.add(EngineSpec{
      .name = "ode",
      .engine_name = "continuous-domain",
      .substrate = "ring only",
      .summary = "Sec. 2.3 continuous domain-size ODE (RK4, 1 round = "
                 "1.0 model time); convergence-gated, not bit-exact",
      .substrate_kinds = {"ring"},
      .factory = [](const graph::GraphDescriptor& d, const EngineConfig& c,
                    std::string* error) -> std::unique_ptr<Engine> {
        if (!c.pointers.empty()) {
          fail(error, "the continuous model has no pointer field");
          return nullptr;
        }
        return std::make_unique<analysis::ContinuousDomainEngine>(
            *d.num_nodes(), c.agents);
      },
      .restore = [](const graph::GraphDescriptor& d, const StateReader& state,
                    const EngineConfig&) -> std::unique_ptr<Engine> {
        return restored<analysis::ContinuousDomainEngine>(
            state, *d.num_nodes(), std::vector<sim::NodeId>{0});
      },
  });
}

core::DistOptions dist_options(const EngineConfig& c) {
  core::DistOptions o;
  o.workers = c.dist_workers;
  o.spill_batch = c.dist_spill_batch;
  o.noded_path = c.dist_noded;
  o.listen_socket = c.dist_socket;
  return o;
}

void register_dist(EngineRegistry& r) {
  r.add(EngineSpec{
      .name = "dist",
      // Same engine identity as "rotor": the distributed stepper is the
      // same dynamical system writing the same checkpoint field set
      // (bit-identical documents), so its snapshots restore under any
      // rotor-router backend and vice versa. find() resolves
      // "rotor-router" to the earlier "rotor" spec, so plain restores
      // stay sequential; `--engine dist` reaches this one by CLI key.
      .engine_name = "rotor-router",
      .substrate = "any connected graph",
      .summary = "distributed rotor-router: N worker processes over "
                 "AF_UNIX sockets, batched spill comms, bit-equal to "
                 "sequential (--workers N, --noded PATH|threads)",
      .substrate_kinds = {},
      .supports_shards = false,
      .deterministic = true,
      .shares_engine_name = true,
      .cycle_accumulators = {"time", "visits", "exits", "last_visit"},
      .factory = [](const graph::GraphDescriptor& d, const EngineConfig& c,
                    std::string* error) -> std::unique_ptr<Engine> {
        return core::DistributedRotorRouter::create(
            d, agents_of(c), c.pointers, dist_options(c), error);
      },
      .restore = [](const graph::GraphDescriptor& d, const StateReader& state,
                    const EngineConfig& c) -> std::unique_ptr<Engine> {
        auto engine = core::DistributedRotorRouter::create(
            d, std::vector<graph::NodeId>{0}, {}, dist_options(c), nullptr);
        if (!engine || !engine->deserialize_state(state)) return nullptr;
        return engine;
      },
  });
}

}  // namespace

void register_builtin_engines(EngineRegistry& registry) {
  register_rotor(registry);
  register_ring(registry);
  register_lazy(registry);
  register_walks(registry);
  register_eulerian(registry);
  register_ode(registry);
  register_dist(registry);
}

}  // namespace detail
}  // namespace rr::sim
