#pragma once

// Versioned, self-describing engine checkpoints (sim layer).
//
// A checkpoint is a document that fully determines a running simulation —
// which engine, on which graph, in which dynamical state — so a
// multi-million-round sweep can stop, move hosts, and resume bit-exactly.
// Two wire formats share one header convention:
//
//   rr-ckpt v1 engine=<engine-name> graph=<graph-descriptor>
//   <key>=<value>          (engine state fields, sim/state_io.hpp)
//   ...
//   end
//
// and `rr-ckpt v2`, same header line followed by delta/varint binary
// frames with per-frame CRC32 and a footer index (sim/ckpt_v2.hpp has
// the full wire spec). v1 stays fully supported for interop — both
// directions — and readers sniff the version from the magic, so every
// consumer accepts either.
//
// The header names the engine backend (sim::Engine::engine_name) and the
// substrate (graph/descriptor.hpp), making the document sufficient to
// reconstruct the run with no out-of-band knowledge: restore_checkpoint
// resolves the backend through sim::EngineRegistry (sim/registry.hpp),
// which validates the substrate and invokes the spec's restore hook —
// rebuild the graph from the descriptor, instantiate the engine, hand
// the body to its StateIO::deserialize_state. This layer knows no
// backend by name.
//
// Correctness contract (enforced by the differential harness's
// save→load→continue lane, which alternates formats): for every backend,
// a run checkpointed at any round and resumed in a fresh process
// produces per-round config_hash, visits, and cover times identical to
// the uninterrupted run — in either format.
//
// Parsing is total: malformed headers, bodies, frames, or descriptors
// yield nullopt/nullptr, never an abort (checkpoints are external
// input).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "sim/engine.hpp"
#include "sim/state_io.hpp"
#include "sim/thread_pool.hpp"

namespace rr::sim {

inline constexpr const char* kCheckpointMagic = "rr-ckpt v1";

/// Checkpoint wire format selector. v1: self-describing text, ~20
/// bytes/node, one frame. v2: delta/varint binary, ~3-6 bytes/node on
/// lattice topologies, parallel frames (sim/ckpt_v2.hpp).
enum class CkptFormat { kV1, kV2 };

/// Serializes a running engine as rr-ckpt v1. `graph_descriptor` names
/// the substrate (graph/descriptor.hpp text form; "ring <n>" for the
/// ring engines). The engine must implement sim::StateIO (all in-tree
/// backends do).
std::string write_checkpoint(const Engine& engine,
                             const std::string& graph_descriptor);

/// Format-selecting variant. For kV2, `segments` is the per-node frame
/// count (0 picks a default aligned with `pool`'s width) and frames
/// encode in parallel on `pool` when given.
std::string write_checkpoint(const Engine& engine,
                             const std::string& graph_descriptor,
                             CkptFormat format, std::uint32_t segments = 0,
                             ThreadPool* pool = nullptr);

/// A parsed checkpoint: header fields plus the state body.
struct ParsedCheckpoint {
  std::string engine;            ///< engine_name() of the writer
  std::string graph_descriptor;  ///< substrate descriptor text
  StateReader state;             ///< body fields
};

/// Splits and validates an in-memory document (either format, sniffed
/// from the magic); nullopt on any malformed framing. With a `pool`, v2
/// frames decode in parallel (the wire makes per-node frames
/// independently decodable on purpose); the result is identical either
/// way.
std::optional<ParsedCheckpoint> parse_checkpoint(const std::string& text,
                                                 ThreadPool* pool = nullptr);

/// Streaming file parse: reads the document incrementally (v1 line by
/// line, v2 frame by frame via the footer index), so peak memory is
/// O(largest frame/field), not O(file). With a `pool`, batches of v2
/// frames are read then decoded in parallel.
std::optional<ParsedCheckpoint> parse_checkpoint_file(
    const std::string& path, ThreadPool* pool = nullptr);

/// Rebuilds the graph, instantiates the named backend, and restores the
/// state. nullptr on malformed input, unknown engine, or a state body
/// inconsistent with the substrate.
std::unique_ptr<Engine> restore_checkpoint(const std::string& text);

/// Same, from an already-parsed document (callers that also need the
/// header fields parse once and restore from the result).
std::unique_ptr<Engine> restore_checkpoint(const ParsedCheckpoint& parsed);

/// As restore_checkpoint, but "rotor-router" checkpoints restore into a
/// shard-parallel core::ShardedRotorRouter stepping `shards` shards on
/// `pool` (checkpoints are interchangeable between the sequential and
/// sharded engines: the shard count is an execution choice, not state).
/// Other engines restore exactly as restore_checkpoint. shards <= 1
/// restores the sequential engine.
std::unique_ptr<Engine> restore_checkpoint_sharded(
    const ParsedCheckpoint& parsed, std::uint32_t shards,
    ThreadPool* pool = nullptr);

/// Streaming parse + sharded restore in one call.
std::unique_ptr<Engine> restore_checkpoint_file(const std::string& path,
                                                std::uint32_t shards = 1,
                                                ThreadPool* pool = nullptr);

/// File convenience wrappers (whole-buffer write / read).
bool save_checkpoint_file(const std::string& path, const std::string& text);
/// Crash-safe variant for auto-checkpointing: writes `path`.tmp, fsyncs,
/// then renames over `path`, so a reader (or a crash, or a disk that
/// fills mid-frame) never observes a half-written document — on any
/// failure the previous checkpoint at `path` is left intact and the tmp
/// file is removed.
bool save_checkpoint_file_atomic(const std::string& path,
                                 const std::string& text);
std::optional<std::string> read_text_file(const std::string& path);

/// Sink for Engine::set_auto_checkpoint: serializes the engine against
/// `graph_descriptor` in `format` (v2 by default — auto-checkpointing is
/// the hot path the binary codec exists for) and saves it atomically to
/// `path` on every fire. Write failures are silently ignored
/// (auto-checkpointing is best-effort crash tolerance; the run itself
/// must not die because a disk filled).
std::function<void(const Engine&)> checkpoint_file_sink(
    std::string path, std::string graph_descriptor,
    CkptFormat format = CkptFormat::kV2, ThreadPool* pool = nullptr);

namespace detail {
/// Test-only fault injection for save_checkpoint_file_atomic: when set
/// below SIZE_MAX, at most this many bytes reach the tmp file before the
/// write reports failure — simulating ENOSPC / a short write mid-frame.
/// The fault-injection test asserts the previous checkpoint survives.
extern std::size_t g_atomic_write_cap;
/// Test-only: forces the directory-fsync step of
/// save_checkpoint_file_atomic to take its failure path (as if the
/// parent could not be opened), so the warn-once behavior is testable.
extern bool g_dir_fsync_fail;
/// True once save_checkpoint_file_atomic has warned about a failed
/// directory fsync (it warns at most once per process — auto-checkpoint
/// sinks fire thousands of times). Tests may reset it.
extern bool g_dir_fsync_warned;
}  // namespace detail

}  // namespace rr::sim
