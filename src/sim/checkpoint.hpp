#pragma once

// Versioned, self-describing engine checkpoints (sim layer).
//
// A checkpoint is a small text document that fully determines a running
// simulation — which engine, on which graph, in which dynamical state —
// so a multi-million-round sweep can stop, move hosts, and resume
// bit-exactly. The format:
//
//   rr-ckpt v1 engine=<engine-name> graph=<graph-descriptor>
//   <key>=<value>          (engine state fields, sim/state_io.hpp)
//   ...
//   end
//
// The header names the engine backend (sim::Engine::engine_name) and the
// substrate (graph/descriptor.hpp), making the document sufficient to
// reconstruct the run with no out-of-band knowledge: restore_checkpoint
// resolves the backend through sim::EngineRegistry (sim/registry.hpp),
// which validates the substrate and invokes the spec's restore hook —
// rebuild the graph from the descriptor, instantiate the engine, hand
// the body to its StateIO::deserialize_state. This layer knows no
// backend by name.
//
// Correctness contract (enforced by the differential harness's
// save→load→continue lane): for every backend, a run checkpointed at any
// round and resumed in a fresh process produces per-round config_hash,
// visits, and cover times identical to the uninterrupted run.
//
// Parsing is total: malformed headers, bodies, or descriptors yield
// nullopt/nullptr, never an abort (checkpoints are external input).

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "sim/engine.hpp"
#include "sim/state_io.hpp"
#include "sim/thread_pool.hpp"

namespace rr::sim {

inline constexpr const char* kCheckpointMagic = "rr-ckpt v1";

/// Serializes a running engine. `graph_descriptor` names the substrate
/// (graph/descriptor.hpp text form; "ring <n>" for the ring engines).
/// The engine must implement sim::StateIO (all in-tree backends do).
std::string write_checkpoint(const Engine& engine,
                             const std::string& graph_descriptor);

/// A parsed checkpoint: header fields plus the state body.
struct ParsedCheckpoint {
  std::string engine;            ///< engine_name() of the writer
  std::string graph_descriptor;  ///< substrate descriptor text
  StateReader state;             ///< body fields
};

/// Splits and validates the document; nullopt on any malformed framing.
std::optional<ParsedCheckpoint> parse_checkpoint(const std::string& text);

/// Rebuilds the graph, instantiates the named backend, and restores the
/// state. nullptr on malformed input, unknown engine, or a state body
/// inconsistent with the substrate.
std::unique_ptr<Engine> restore_checkpoint(const std::string& text);

/// Same, from an already-parsed document (callers that also need the
/// header fields parse once and restore from the result).
std::unique_ptr<Engine> restore_checkpoint(const ParsedCheckpoint& parsed);

/// As restore_checkpoint, but "rotor-router" checkpoints restore into a
/// shard-parallel core::ShardedRotorRouter stepping `shards` shards on
/// `pool` (checkpoints are interchangeable between the sequential and
/// sharded engines: the shard count is an execution choice, not state).
/// Other engines restore exactly as restore_checkpoint. shards <= 1
/// restores the sequential engine.
std::unique_ptr<Engine> restore_checkpoint_sharded(
    const ParsedCheckpoint& parsed, std::uint32_t shards,
    ThreadPool* pool = nullptr);

/// File convenience wrappers (whole-file read/write).
bool save_checkpoint_file(const std::string& path, const std::string& text);
/// Crash-safe variant for auto-checkpointing: writes `path`.tmp, then
/// renames over `path`, so a reader (or a crash) never observes a
/// half-written document.
bool save_checkpoint_file_atomic(const std::string& path,
                                 const std::string& text);
std::optional<std::string> read_text_file(const std::string& path);

/// Sink for Engine::set_auto_checkpoint: serializes the engine against
/// `graph_descriptor` and saves it atomically to `path` on every fire.
/// Write failures are silently ignored (auto-checkpointing is best-effort
/// crash tolerance; the run itself must not die because a disk filled).
std::function<void(const Engine&)> checkpoint_file_sink(
    std::string path, std::string graph_descriptor);

}  // namespace rr::sim
