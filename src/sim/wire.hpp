#pragma once

// Binary wire primitives shared by the rr-ckpt v2 codec (sim/ckpt_v2.hpp)
// and the packed-field accessors of sim::StateReader: LEB128 varints,
// zigzag signed mapping, and CRC32 (the IEEE polynomial, slicing-by-8 so
// frame checksumming keeps up with multi-GB/s encode rates).
//
// Every decoder here is total: truncated, overlong (non-minimal), and
// overflowing encodings return nullopt/false — v2 checkpoints are
// external input and the never-abort contract of the text parsers
// extends to the binary layer.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace rr::sim::wire {

/// Maximum encoded size of a u64 LEB128 varint.
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Appends the LEB128 encoding of `v` (7 bits per byte, low first, high
/// bit = continuation). Minimal-length by construction.
inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Encoded size of put_varint(v) without encoding it.
inline std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Reads a varint from [*pos, size); advances *pos past it. nullopt on
/// truncation, on encodings longer than 10 bytes, on a 10th byte carrying
/// more than the u64's single remaining bit (overflow), and on
/// non-minimal ("overlong") encodings such as 0x80 0x00.
inline std::optional<std::uint64_t> get_varint(const std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t* pos) {
  std::uint64_t v = 0;
  std::size_t shift = 0;
  std::size_t at = *pos;
  while (true) {
    if (at >= size || shift >= 70) return std::nullopt;
    const std::uint8_t byte = data[at++];
    if (shift == 63 && byte > 1) return std::nullopt;  // overflow past 2^64
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // Overlong: a terminal zero byte after at least one continuation
      // encodes a value whose minimal form is shorter.
      if (byte == 0 && shift > 0) return std::nullopt;
      *pos = at;
      return v;
    }
    shift += 7;
  }
}

/// Zigzag mapping: interleaves signed deltas so that small magnitudes of
/// either sign encode in one varint byte. All arithmetic is mod 2^64, so
/// wrapping deltas between u64 values (including the ~0 sentinel) come
/// out as their shortest signed distance.
inline std::uint64_t zigzag(std::uint64_t delta) {
  const auto s = static_cast<std::int64_t>(delta);
  return (static_cast<std::uint64_t>(s) << 1) ^
         static_cast<std::uint64_t>(s >> 63);
}

inline std::uint64_t unzigzag(std::uint64_t z) {
  return (z >> 1) ^ (~(z & 1) + 1);
}

/// CRC32 (IEEE 802.3, polynomial 0xEDB88320), slicing-by-8. `seed` 0 for
/// a fresh checksum; feed a previous result to continue a stream.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

// ---- little-endian fixed-width helpers (footer index fields) ----

inline void put_u32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

inline void put_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

inline std::uint32_t get_u32le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

inline std::uint64_t get_u64le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace rr::sim::wire
