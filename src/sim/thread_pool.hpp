#pragma once

// Shared fork-join thread pool (sim layer).
//
// Extracted from sim::Runner so that *both* parallelism levels in the
// repository — trial-level (Runner fanning independent engine trials) and
// shard-level (core::ShardedRotorRouter stepping partition shards every
// round) — draw from one set of worker threads instead of each layer
// spawning its own and oversubscribing the machine.
//
// Three design points differ from a generic task queue:
//
//  * Low-latency dispatch. A sharded engine dispatches twice per
//    simulation round (scan, then merge), and rounds on medium instances
//    take ~1 microsecond, so workers spin briefly on an atomic batch
//    generation before parking on a condition variable. A pool that is
//    stepped continuously stays on the spin path and never touches the
//    mutex; an idle pool parks and costs nothing. Batches that cannot
//    parallelize at all (one job, or all jobs inside one claim chunk) run
//    inline on the caller without waking or parking anything.
//
//  * Nested dispatch runs inline. for_each() called from inside a pool
//    job (any pool — e.g. a sharded engine stepped inside a Runner trial)
//    executes its jobs sequentially on the calling thread. The outer
//    batch already owns the hardware, so inlining is both the deadlock-
//    free and the oversubscription-free choice; shard parallelism simply
//    collapses to sequential stepping inside parallel sweeps.
//
//  * Priority lanes + work stealing. A batch is one or more *lanes*
//    (for_each is the one-lane special case). Threads claim chunks from
//    the lowest-numbered lane that still has unclaimed jobs, so lane 0 is
//    strictly higher priority than lane 1: the serving layer dispatches
//    interactive session quanta ahead of batch quanta within a single
//    fork-join batch. When every lane's claim counter is dry, a thread
//    steals the back half of a sibling's already-claimed chunk instead of
//    idling — a pathologically skewed sweep (one 10k-round job leading a
//    chunk of 64 tiny ones) no longer strands the chunk's tail behind the
//    heavy job.
//
// Determinism contract (inherited by Runner and the sharded engine):
// job i always receives index i; which thread runs it is unspecified.
// Lanes and stealing change only claim *order*, never the index→job
// mapping, so results stay bit-equal to sequential by construction.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace rr::sim {

class ThreadPool {
 public:
  /// One priority class of a batch. Lane 0 is claimed before lane 1, and
  /// so on. `chunk` 0 picks a claim granularity automatically (~8 claims
  /// per thread, capped at 64).
  struct LaneSpec {
    std::uint64_t jobs = 0;
    std::uint64_t chunk = 0;
  };

  /// Upper bound on lanes per batch (serving uses 3 QoS classes).
  static constexpr std::size_t kMaxLanes = 4;

  /// `max_threads` 0 = hardware concurrency. The calling thread always
  /// participates in every batch, so a pool on a single-core machine (or
  /// with max_threads = 1) runs all jobs inline with zero dispatch cost.
  explicit ThreadPool(unsigned max_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads plus the participating caller.
  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs fn(i) for i in [0, jobs) across the pool; blocks until all jobs
  /// finished. Jobs are claimed dynamically in contiguous chunks: one
  /// atomic fetch-add claims `chunk` jobs, so a sweep of ~1e6 tiny trials
  /// does not serialize on the shared counter. `chunk` 0 picks a size
  /// automatically (~jobs/8 per thread, capped at 64 — small enough to
  /// keep skewed runtimes balanced, large enough to amortize contention).
  /// `jobs` 0 is a no-op; a batch that fits in one claim chunk runs
  /// inline on the caller without touching the workers. Called from
  /// inside any pool job, runs the jobs inline sequentially.
  ///
  /// Single-dispatcher contract: one pool supports one *top-level*
  /// dispatch at a time. Jobs dispatching nested work run inline (safe,
  /// see above), but two unrelated threads must not drive the same pool
  /// concurrently — the second publish would clobber the first batch's
  /// parameters (asserted in debug builds). Sharing a pool between a
  /// Runner and sharded engines is safe exactly because the engines are
  /// stepped either from the dispatching thread between batches or from
  /// inside the Runner's own jobs.
  void for_each(std::uint64_t jobs,
                const std::function<void(std::uint64_t)>& fn,
                std::uint64_t chunk = 0);

  /// Multi-lane dispatch: runs fn(lane, i) for every lane in `lanes` and
  /// every i in [0, lanes[lane].jobs) across the pool; blocks until all
  /// lanes finished. Threads claim from the lowest-numbered lane with
  /// unclaimed jobs first, so earlier lanes complete with strict priority
  /// over later ones (modulo chunks already in flight). Zero-job lanes
  /// are allowed. Same single-dispatcher and inline-nesting rules as
  /// for_each.
  void for_each_lanes(const std::vector<LaneSpec>& lanes,
                      const std::function<void(std::size_t, std::uint64_t)>& fn);

  /// True while the calling thread is executing a pool job (any pool);
  /// for_each() calls in this state run inline.
  static bool in_pool_job();

 private:
  struct Shared;  // worker state (atomics, mutex, condvars, claim slots)

  // Publishes one batch (lanes already validated, total > 1) and blocks
  // until complete. `flat` receives flat indices in [0, total).
  void run_batch(const LaneSpec* lanes, std::size_t num_lanes,
                 const std::function<void(std::uint64_t)>& flat);

  std::unique_ptr<Shared> shared_;
  std::vector<std::unique_ptr<std::jthread>> workers_;
};

}  // namespace rr::sim
