#pragma once

// Binary checkpoint codec: `rr-ckpt v2` (sim layer).
//
// v1 (sim/checkpoint.hpp) renders every per-node array as decimal text —
// ~20 bytes/node and one monolithic frame. v2 keeps the text header line
// (self-description and version sniffing stay trivial) but encodes the
// state body as delta/varint binary frames:
//
//   rr-ckpt v2 engine=<engine-name> graph=<graph-descriptor>\n
//   frame 0  ... frame F-1                      (binary, concatenated)
//   footer: F x {u64 offset, u64 length, u64 begin_node, u64 end_node,
//                u32 crc32, u32 reserved}       (little-endian, 40 B)
//           u32 num_frames
//           u32 crc32 of (table || num_frames)
//           u64 trailer magic "RRCKPTv2"
//
// Frame 0 carries the scalar/raw/sparse fields; per-node arrays (length
// == num_nodes) are split into contiguous node ranges, one range per
// remaining frame, aligned with how graph::Partition shards rows — so
// save and load parallelize frame-wise on sim::ThreadPool and a partial
// reader can seek any range in O(1) via the footer table. Each frame is
// independently decodable (delta streams restart from 0 at a segment
// boundary) and carries its own CRC32.
//
// A field record is: varint key-length, key bytes, u8 tag, payload:
//
//   tag 0 raw      varint len, bytes
//   tag 1 u64      varint value
//   tag 2 list     varint count, count x zigzag-varint deltas
//                  (d_i = v_i - v_{i-1} mod 2^64, v_{-1} = 0 — the ~0
//                  sentinel needs no special case)
//   tag 3 dirs     varint count, LSB-first packed bits
//   tag 4 bits     varint count, LSB-first packed bits
//   tag 5 pairs    varint count; first index absolute, then strictly
//                  positive index deltas; values plain varints
//   tag 6 list/RLE varint count, runs of (varint runlen,
//                  zigzag-varint delta) — the writer picks tag 2 or 6
//                  per segment, whichever is smaller
//
// Decoding is total (malformed framing, bad CRCs, truncated or overlong
// varints, out-of-bounds footer entries all yield nullopt, never an
// abort) and allocation-safe: list payloads stay encoded inside the
// StateReader until an accessor names its expected element count, so a
// crafted count cannot force a giant allocation.

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>

#include "sim/state_io.hpp"

namespace rr::sim {

class ThreadPool;

inline constexpr const char* kCheckpointMagicV2 = "rr-ckpt v2";

/// Trailer magic, "RRCKPTv2" read as a little-endian u64.
inline constexpr std::uint64_t kV2TrailerMagic = 0x327654504B435252ull;

/// Per-node frame count encode_checkpoint_v2 uses when `segments` is 0
/// and no pool is given. Callers that need byte-identical documents
/// regardless of pool width (the serving layer's snapshot-vs-rr_cli
/// bit-equality contract) pass this explicitly: segments pins the
/// layout, the pool only parallelizes the work.
inline constexpr std::uint32_t kV2DefaultSegments = 4;

/// Encodes a full v2 document (header line, frames, footer).
/// `num_nodes` identifies the per-node arrays (fields of exactly that
/// length); `segments` is the number of per-node frames (0 picks a
/// default), clamped to num_nodes. Frames encode in parallel on `pool`
/// when given (caller thread participates; pass nullptr to encode
/// inline).
std::string encode_checkpoint_v2(const std::string& engine_name,
                                 const std::string& graph_descriptor,
                                 const StateWriter& state,
                                 std::uint64_t num_nodes,
                                 std::uint32_t segments = 0,
                                 ThreadPool* pool = nullptr);

/// Decodes the binary body — the bytes after the header line's '\n' —
/// into a StateReader. nullopt on any malformed framing or CRC mismatch.
std::optional<StateReader> decode_checkpoint_v2_body(const std::uint8_t* data,
                                                     std::size_t size,
                                                     ThreadPool* pool = nullptr);

/// Streaming variant: reads frames a batch at a time from `f` (opened
/// "rb"), holding O(batch of frames) bytes rather than the whole file.
/// `body_offset` is the file position just past the header line;
/// `file_size` the total size. With a `pool`, each batch of frames is
/// read sequentially then CRC-checked and decoded in parallel (frames
/// are independently decodable by design); without one the batch is a
/// single frame and the behavior matches the old one-at-a-time loop.
/// The stream position is unspecified after the call.
std::optional<StateReader> decode_checkpoint_v2_file(
    std::FILE* f, std::uint64_t body_offset, std::uint64_t file_size,
    ThreadPool* pool = nullptr);

}  // namespace rr::sim
