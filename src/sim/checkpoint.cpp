#include "sim/checkpoint.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/require.hpp"
#include "graph/descriptor.hpp"
#include "sim/ckpt_v2.hpp"
#include "sim/registry.hpp"

namespace rr::sim {

namespace detail {
std::size_t g_atomic_write_cap = ~std::size_t{0};
bool g_dir_fsync_fail = false;
bool g_dir_fsync_warned = false;
}  // namespace detail

namespace {

constexpr const char* kEnginePrefix = " engine=";
constexpr const char* kGraphPrefix = " graph=";

/// Both formats share the header-line grammar after their magic:
/// " engine=<name> graph=<descriptor>". nullopt on malformed.
std::optional<std::pair<std::string, std::string>> parse_header_line(
    std::string_view header, std::string_view magic) {
  if (header.substr(0, magic.size()) != magic) return std::nullopt;
  std::string_view rest = header.substr(magic.size());
  const std::string_view engine_prefix(kEnginePrefix);
  if (rest.substr(0, engine_prefix.size()) != engine_prefix) {
    return std::nullopt;
  }
  rest.remove_prefix(engine_prefix.size());
  const std::size_t graph_at = rest.find(kGraphPrefix);
  if (graph_at == std::string_view::npos || graph_at == 0) return std::nullopt;
  const std::string_view engine = rest.substr(0, graph_at);
  const std::string_view descriptor =
      rest.substr(graph_at + std::string_view(kGraphPrefix).size());
  if (descriptor.empty()) return std::nullopt;
  return std::make_pair(std::string(engine), std::string(descriptor));
}

/// Buffered line reader for the streaming v1 path: holds one read chunk
/// plus the line under construction — O(longest line), never O(file).
class LineReader {
 public:
  explicit LineReader(std::FILE* f) : f_(f) {}

  /// Next '\n'-terminated (or final unterminated) line, without the
  /// newline. False at clean EOF; *error on a read error.
  bool next(std::string& line, bool* error) {
    line.clear();
    while (true) {
      if (pos_ < buf_len_) {
        const char* nl = static_cast<const char*>(
            std::memchr(buf_ + pos_, '\n', buf_len_ - pos_));
        if (nl != nullptr) {
          line.append(buf_ + pos_, nl - (buf_ + pos_));
          pos_ = static_cast<std::size_t>(nl - buf_) + 1;
          return true;
        }
        line.append(buf_ + pos_, buf_len_ - pos_);
        pos_ = buf_len_ = 0;
      }
      buf_len_ = std::fread(buf_, 1, sizeof buf_, f_);
      pos_ = 0;
      if (buf_len_ == 0) {
        if (std::ferror(f_) != 0) {
          *error = true;
          return false;
        }
        return !line.empty();
      }
    }
  }

 private:
  std::FILE* f_;
  char buf_[1 << 16];
  std::size_t buf_len_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace

std::string write_checkpoint(const Engine& engine,
                             const std::string& graph_descriptor) {
  return write_checkpoint(engine, graph_descriptor, CkptFormat::kV1);
}

std::string write_checkpoint(const Engine& engine,
                             const std::string& graph_descriptor,
                             CkptFormat format, std::uint32_t segments,
                             ThreadPool* pool) {
  const auto* io = dynamic_cast<const StateIO*>(&engine);
  RR_REQUIRE(io != nullptr, "engine does not implement sim::StateIO");
  StateWriter body;
  io->serialize_state(body);
  if (format == CkptFormat::kV2) {
    if (segments == 0 && pool != nullptr) segments = pool->num_threads();
    return encode_checkpoint_v2(engine.engine_name(), graph_descriptor, body,
                                engine.num_nodes(), segments, pool);
  }
  std::string out = std::string(kCheckpointMagic) + kEnginePrefix +
                    engine.engine_name() + kGraphPrefix + graph_descriptor +
                    "\n";
  out += body.text();
  out += "end\n";
  return out;
}

std::optional<ParsedCheckpoint> parse_checkpoint(const std::string& text,
                                                 ThreadPool* pool) {
  std::size_t eol = text.find('\n');
  if (eol == std::string::npos) return std::nullopt;
  const std::string_view header(text.data(), eol);

  if (header.substr(0, std::string_view(kCheckpointMagicV2).size()) ==
      kCheckpointMagicV2) {
    const auto names = parse_header_line(header, kCheckpointMagicV2);
    if (!names) return std::nullopt;
    auto state = decode_checkpoint_v2_body(
        reinterpret_cast<const std::uint8_t*>(text.data()) + eol + 1,
        text.size() - eol - 1, pool);
    if (!state) return std::nullopt;
    return ParsedCheckpoint{names->first, names->second, std::move(*state)};
  }

  const auto names = parse_header_line(header, kCheckpointMagic);
  if (!names) return std::nullopt;

  // Body: everything after the header up to the terminating "end" line.
  const std::string_view tail(text.data() + eol + 1, text.size() - eol - 1);
  std::size_t end_at = std::string_view::npos;
  if (tail == "end\n" || tail == "end") {
    end_at = 0;
  } else {
    const std::size_t marker = tail.rfind("\nend");
    // "end" must terminate the document (optionally newline-terminated).
    if (marker != std::string_view::npos &&
        (marker + 4 == tail.size() ||
         (marker + 5 == tail.size() && tail[marker + 4] == '\n'))) {
      end_at = marker + 1;
    }
  }
  if (end_at == std::string_view::npos) return std::nullopt;
  const auto state = StateReader::parse(tail.substr(0, end_at));
  if (!state) return std::nullopt;
  return ParsedCheckpoint{names->first, names->second, std::move(*state)};
}

std::optional<ParsedCheckpoint> parse_checkpoint_file(const std::string& path,
                                                      ThreadPool* pool) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  // RAII-close whatever path exits below.
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  LineReader lines(f);
  bool error = false;
  std::string header;
  if (!lines.next(header, &error) || error) return std::nullopt;

  if (std::string_view(header).substr(
          0, std::string_view(kCheckpointMagicV2).size()) ==
      kCheckpointMagicV2) {
    const auto names = parse_header_line(header, kCheckpointMagicV2);
    if (!names) return std::nullopt;
    const std::uint64_t body_offset = header.size() + 1;
    if (std::fseek(f, 0, SEEK_END) != 0) return std::nullopt;
    const long size = std::ftell(f);
    if (size < 0) return std::nullopt;
    auto state = decode_checkpoint_v2_file(
        f, body_offset, static_cast<std::uint64_t>(size), pool);
    if (!state) return std::nullopt;
    return ParsedCheckpoint{names->first, names->second, std::move(*state)};
  }

  const auto names = parse_header_line(header, kCheckpointMagic);
  if (!names) return std::nullopt;
  std::vector<std::pair<std::string, ReaderValue>> fields;
  std::string line;
  bool saw_end = false;
  while (lines.next(line, &error)) {
    if (saw_end) return std::nullopt;  // content after the "end" line
    if (line == "end") {
      saw_end = true;
      continue;
    }
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) return std::nullopt;
    ReaderValue value;
    value.kind = ReaderValue::Kind::kText;
    value.text = line.substr(eq + 1);
    fields.emplace_back(line.substr(0, eq), std::move(value));
  }
  if (error || !saw_end) return std::nullopt;
  auto state = StateReader::from_fields(std::move(fields));
  if (!state) return std::nullopt;
  return ParsedCheckpoint{names->first, names->second, std::move(*state)};
}

std::unique_ptr<Engine> restore_checkpoint(const ParsedCheckpoint& parsed) {
  return restore_checkpoint_sharded(parsed, /*shards=*/1);
}

std::unique_ptr<Engine> restore_checkpoint(const std::string& text) {
  const auto parsed = parse_checkpoint(text);
  if (!parsed) return nullptr;
  return restore_checkpoint(*parsed);
}

std::unique_ptr<Engine> restore_checkpoint_sharded(
    const ParsedCheckpoint& parsed, std::uint32_t shards, ThreadPool* pool) {
  const auto d = graph::GraphDescriptor::parse(parsed.graph_descriptor);
  if (!d) return nullptr;
  // The registry resolves the backend and validates the substrate; each
  // spec's restore hook rebuilds the engine from the state body. A shard
  // request is passed through as an execution choice — specs that do not
  // support sharding ignore it (callers warn; see rr_cli).
  EngineConfig config;
  config.shards = shards;
  config.pool = pool;
  return EngineRegistry::instance().restore(parsed.engine, *d, parsed.state,
                                            config);
}

std::unique_ptr<Engine> restore_checkpoint_file(const std::string& path,
                                                std::uint32_t shards,
                                                ThreadPool* pool) {
  const auto parsed = parse_checkpoint_file(path, pool);
  if (!parsed) return nullptr;
  return restore_checkpoint_sharded(*parsed, shards, pool);
}

bool save_checkpoint_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

bool save_checkpoint_file_atomic(const std::string& path,
                                 const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  // Fault injection (tests): cap the bytes that reach the tmp file to
  // simulate a disk filling mid-frame; the short write fails the save
  // below and must leave the previous checkpoint at `path` intact.
  const std::size_t cap = detail::g_atomic_write_cap;
  const std::size_t to_write = text.size() < cap ? text.size() : cap;
  bool ok =
      std::fwrite(text.data(), 1, to_write, f) == to_write &&
      to_write == text.size();
#if defined(__unix__) || defined(__APPLE__)
  // Flush the data blocks before the rename is journaled: without this a
  // *system* crash can commit the rename metadata ahead of the tmp file's
  // contents and leave a truncated document at `path`.
  ok = ok && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int rename_errno = errno;
    if (std::remove(tmp.c_str()) != 0) {
      // The stale tmp file lingers next to the checkpoint; say so rather
      // than silently leaking it (and don't let remove clobber the
      // original failure's errno in what we report).
      std::fprintf(stderr,
                   "rr-ckpt: cannot remove stale %s (%s; save failed: %s)\n",
                   tmp.c_str(), std::strerror(errno),
                   std::strerror(rename_errno));
    }
    return false;
  }
#if defined(__unix__) || defined(__APPLE__)
  // Persist the rename itself (directory entry). Durability-only: the
  // rename has already happened, so failure here cannot corrupt the
  // checkpoint — but it must be observable (a system crash could revert
  // to the previous checkpoint), so warn once per process instead of
  // swallowing it.
  //
  // Parent derivation: no slash -> cwd "."; a path like "/file" has its
  // parent at "/" (substr(0, 0) would yield "" and open("") fails).
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "."
                          : slash == 0               ? "/"
                                                     : path.substr(0, slash);
  const int dfd =
      detail::g_dir_fsync_fail ? -1 : ::open(dir.c_str(), O_RDONLY);
  bool dir_synced = false;
  if (dfd >= 0) {
    dir_synced = ::fsync(dfd) == 0;
    ::close(dfd);
  }
  if (!dir_synced && !detail::g_dir_fsync_warned) {
    detail::g_dir_fsync_warned = true;
    std::fprintf(stderr,
                 "rr-ckpt: warning: cannot fsync directory %s (%s); a system "
                 "crash may revert %s to its previous contents "
                 "(further occurrences not reported)\n",
                 dir.c_str(), std::strerror(errno), path.c_str());
  }
#endif
  return true;
}

std::function<void(const Engine&)> checkpoint_file_sink(
    std::string path, std::string graph_descriptor, CkptFormat format,
    ThreadPool* pool) {
  return [path = std::move(path),
          graph_descriptor = std::move(graph_descriptor), format,
          pool](const Engine& engine) {
    (void)save_checkpoint_file_atomic(
        path, write_checkpoint(engine, graph_descriptor, format,
                               /*segments=*/0, pool));
  };
}

std::optional<std::string> read_text_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::string out;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return out;
}

}  // namespace rr::sim
