#include "sim/checkpoint.hpp"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/require.hpp"
#include "graph/descriptor.hpp"
#include "sim/registry.hpp"

namespace rr::sim {

namespace {

constexpr const char* kEnginePrefix = " engine=";
constexpr const char* kGraphPrefix = " graph=";

}  // namespace

std::string write_checkpoint(const Engine& engine,
                             const std::string& graph_descriptor) {
  const auto* io = dynamic_cast<const StateIO*>(&engine);
  RR_REQUIRE(io != nullptr, "engine does not implement sim::StateIO");
  StateWriter body;
  io->serialize_state(body);
  std::string out = std::string(kCheckpointMagic) + kEnginePrefix +
                    engine.engine_name() + kGraphPrefix + graph_descriptor +
                    "\n";
  out += body.text();
  out += "end\n";
  return out;
}

std::optional<ParsedCheckpoint> parse_checkpoint(const std::string& text) {
  std::size_t eol = text.find('\n');
  if (eol == std::string::npos) return std::nullopt;
  const std::string_view header(text.data(), eol);
  const std::string_view magic(kCheckpointMagic);
  if (header.substr(0, magic.size()) != magic) return std::nullopt;
  std::string_view rest = header.substr(magic.size());
  const std::string_view engine_prefix(kEnginePrefix);
  if (rest.substr(0, engine_prefix.size()) != engine_prefix) return std::nullopt;
  rest.remove_prefix(engine_prefix.size());
  const std::size_t graph_at = rest.find(kGraphPrefix);
  if (graph_at == std::string_view::npos || graph_at == 0) return std::nullopt;
  const std::string_view engine = rest.substr(0, graph_at);
  const std::string_view descriptor =
      rest.substr(graph_at + std::string_view(kGraphPrefix).size());
  if (descriptor.empty()) return std::nullopt;

  // Body: everything after the header up to the terminating "end" line.
  const std::string_view tail(text.data() + eol + 1, text.size() - eol - 1);
  std::size_t end_at = std::string_view::npos;
  if (tail == "end\n" || tail == "end") {
    end_at = 0;
  } else {
    const std::size_t marker = tail.rfind("\nend");
    // "end" must terminate the document (optionally newline-terminated).
    if (marker != std::string_view::npos &&
        (marker + 4 == tail.size() ||
         (marker + 5 == tail.size() && tail[marker + 4] == '\n'))) {
      end_at = marker + 1;
    }
  }
  if (end_at == std::string_view::npos) return std::nullopt;
  const auto state = StateReader::parse(tail.substr(0, end_at));
  if (!state) return std::nullopt;
  return ParsedCheckpoint{std::string(engine), std::string(descriptor),
                          std::move(*state)};
}

std::unique_ptr<Engine> restore_checkpoint(const ParsedCheckpoint& parsed) {
  return restore_checkpoint_sharded(parsed, /*shards=*/1);
}

std::unique_ptr<Engine> restore_checkpoint(const std::string& text) {
  const auto parsed = parse_checkpoint(text);
  if (!parsed) return nullptr;
  return restore_checkpoint(*parsed);
}

std::unique_ptr<Engine> restore_checkpoint_sharded(
    const ParsedCheckpoint& parsed, std::uint32_t shards, ThreadPool* pool) {
  const auto d = graph::GraphDescriptor::parse(parsed.graph_descriptor);
  if (!d) return nullptr;
  // The registry resolves the backend and validates the substrate; each
  // spec's restore hook rebuilds the engine from the state body. A shard
  // request is passed through as an execution choice — specs that do not
  // support sharding ignore it (callers warn; see rr_cli).
  EngineConfig config;
  config.shards = shards;
  config.pool = pool;
  return EngineRegistry::instance().restore(parsed.engine, *d, parsed.state,
                                            config);
}

bool save_checkpoint_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

bool save_checkpoint_file_atomic(const std::string& path,
                                 const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) return false;
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
#if defined(__unix__) || defined(__APPLE__)
  // Flush the data blocks before the rename is journaled: without this a
  // *system* crash can commit the rename metadata ahead of the tmp file's
  // contents and leave a truncated document at `path`.
  ok = ok && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
#if defined(__unix__) || defined(__APPLE__)
  // Persist the rename itself (directory entry).
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
#endif
  return true;
}

std::function<void(const Engine&)> checkpoint_file_sink(
    std::string path, std::string graph_descriptor) {
  return [path = std::move(path), graph_descriptor =
              std::move(graph_descriptor)](const Engine& engine) {
    (void)save_checkpoint_file_atomic(path,
                                      write_checkpoint(engine, graph_descriptor));
  };
}

std::optional<std::string> read_text_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return std::nullopt;
  std::string out;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return out;
}

}  // namespace rr::sim
