#pragma once

// Unified simulation-engine interface (sim layer).
//
// The repository's engines — the general-graph rotor-router
// (core::RotorRouter, CSR-backed), its shard-parallel twin
// (core::ShardedRotorRouter), the ring-specialized rotor-routers
// (core::RingRotorRouter, core::LazyRingRotorRouter) and k parallel
// random walks (walk::GraphRandomWalks) — share the synchronous-round model of the
// paper: a configuration evolves one round at a time, visits accumulate,
// coverage is monotone. `sim::Engine` captures that contract once so that
// drivers — batched runners, delayed deployments, limit-cycle detection,
// CLI/bench plumbing — are written against the interface instead of
// per-engine.
//
// Concrete engines are marked `final`: calls through a concrete type
// devirtualize, so the interface costs nothing on hot stepping loops.
// Delayed deployments keep a fast path too: every engine exposes a
// *template* step_delayed for inlineable delay functors; the virtual
// `step_delayed(const DelayFn&)` here is the type-erased version for
// polymorphic drivers.

#include <cstdint>
#include <functional>

namespace rr::sim {

using NodeId = std::uint32_t;

/// Sentinel for "coverage not reached within the round cap". All engine
/// layers share this value (core::kNotCovered etc. alias it).
inline constexpr std::uint64_t kNotCovered = ~std::uint64_t{0};

/// Delayed deployment (paper Sec. 2.1): D(v, t, present) -> number of the
/// `present` agents held at node v during round t.
using DelayFn =
    std::function<std::uint32_t(NodeId, std::uint64_t, std::uint32_t)>;

class Engine {
 public:
  virtual ~Engine() = default;

  /// One synchronous round.
  virtual void step() = 0;

  /// One delayed round (type-erased). Hot loops should prefer the concrete
  /// engine's template step_delayed.
  void step_delayed(const DelayFn& delay) { do_step_delayed(delay); }

  virtual void run(std::uint64_t rounds) {
    for (std::uint64_t i = 0; i < rounds; ++i) {
      step();
      fire_auto_checkpoint_if_due();
    }
  }

  /// Runs until every node has been visited; returns the cover time (the
  /// absolute round of the last first-visit) or kNotCovered if `max_rounds`
  /// (an absolute round cap) elapsed first.
  virtual std::uint64_t run_until_covered(std::uint64_t max_rounds) {
    if (all_covered()) return 0;
    while (time() < max_rounds) {
      step();
      fire_auto_checkpoint_if_due();
      if (all_covered()) return time();
    }
    return kNotCovered;
  }

  /// Periodic auto-checkpointing: during run()/run_until_covered(), `sink`
  /// is invoked with the engine every `every` rounds (at rounds where
  /// time() is `every` apart, starting `every` rounds from now), so a
  /// crash mid-sweep loses at most `every` rounds of work. The sink
  /// should persist atomically — sim::checkpoint_file_sink writes
  /// tmp+rename. `every` 0 (or an empty sink) disables.
  void set_auto_checkpoint(std::uint64_t every,
                           std::function<void(const Engine&)> sink) {
    if (every == 0 || !sink) {
      ckpt_every_ = 0;
      ckpt_sink_ = nullptr;
      ckpt_next_ = kNotCovered;
      return;
    }
    ckpt_every_ = every;
    ckpt_sink_ = std::move(sink);
    ckpt_next_ = time() + every;
  }

  virtual std::uint64_t time() const = 0;
  virtual NodeId num_nodes() const = 0;
  virtual std::uint32_t num_agents() const = 0;

  /// n_v(t): visits to v including initial placement (paper Eq. (3)).
  virtual std::uint64_t visits(NodeId v) const = 0;
  /// Round of the first visit (0 for initial hosts), kNotCovered if none.
  virtual std::uint64_t first_visit_time(NodeId v) const = 0;

  virtual NodeId covered_count() const = 0;
  bool all_covered() const { return covered_count() == num_nodes(); }
  /// Fraction of nodes visited at least once, in [0, 1].
  double coverage() const {
    const NodeId n = num_nodes();
    return n == 0 ? 1.0
                  : static_cast<double>(covered_count()) / static_cast<double>(n);
  }

  /// Hash identifying the current configuration (pointers + agent positions
  /// for deterministic engines); equal hashes over time expose limit cycles.
  virtual std::uint64_t config_hash() const = 0;

  /// Stable engine identifier for tables and traces.
  virtual const char* engine_name() const = 0;

 protected:
  /// Rounds until the next auto-checkpoint is due (kNotCovered when
  /// disabled). Engines whose run() leaps multiple rounds at once (the
  /// lazy ring engine) cap their leaps with this so the sink still fires
  /// on the exact schedule.
  std::uint64_t rounds_to_auto_checkpoint() const {
    if (ckpt_next_ == kNotCovered) return kNotCovered;
    // Direct step() calls between runs can move time past the mark; the
    // next fire_auto_checkpoint_if_due() catches up immediately.
    return ckpt_next_ > time() ? ckpt_next_ - time() : 0;
  }

  /// Fires the sink when the schedule says so; a single compare against
  /// the (normally never-due) next-round mark on the hot path.
  void fire_auto_checkpoint_if_due() {
    if (time() >= ckpt_next_) {
      ckpt_sink_(*this);
      ckpt_next_ = time() + ckpt_every_;
    }
  }

 private:
  virtual void do_step_delayed(const DelayFn& delay) = 0;

  std::uint64_t ckpt_every_ = 0;
  std::uint64_t ckpt_next_ = kNotCovered;  // absolute round of next fire
  std::function<void(const Engine&)> ckpt_sink_;
};

}  // namespace rr::sim
