#include "sim/wire.hpp"

#include <array>

namespace rr::sim::wire {
namespace {

// 8 slicing tables, 256 entries each, built once at first use. Table 0 is
// the classic byte-at-a-time CRC32 table; table k extends it by k zero
// bytes, letting the hot loop fold 8 input bytes per iteration.
struct Crc32Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Crc32Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c >> 1) ^ ((c & 1) ? 0xEDB88320u : 0u);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
      for (int k = 1; k < 8; ++k)
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
  }
};

const Crc32Tables& tables() {
  static const Crc32Tables tabs;
  return tabs;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto& tab = tables().t;
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = ~seed;
  while (size >= 8) {
    const std::uint32_t lo = c ^ (static_cast<std::uint32_t>(p[0]) |
                                  static_cast<std::uint32_t>(p[1]) << 8 |
                                  static_cast<std::uint32_t>(p[2]) << 16 |
                                  static_cast<std::uint32_t>(p[3]) << 24);
    c = tab[7][lo & 0xFF] ^ tab[6][(lo >> 8) & 0xFF] ^
        tab[5][(lo >> 16) & 0xFF] ^ tab[4][lo >> 24] ^
        tab[3][p[4]] ^ tab[2][p[5]] ^ tab[1][p[6]] ^ tab[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size--) c = (c >> 8) ^ tab[0][(c ^ *p++) & 0xFF];
  return ~c;
}

}  // namespace rr::sim::wire
