#include "sim/ckpt_v2.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/require.hpp"
#include "sim/thread_pool.hpp"
#include "sim/wire.hpp"

namespace rr::sim {

namespace {

enum : std::uint8_t {
  kTagRaw = 0,
  kTagU64 = 1,
  kTagListDelta = 2,
  kTagDirs = 3,
  kTagBits = 4,
  kTagPairs = 5,
  kTagListRle = 6,
};

constexpr std::size_t kFooterEntryBytes = 40;
constexpr std::size_t kFooterTailBytes = 16;  // num_frames, crc, magic
constexpr std::size_t kMaxKeyBytes = 255;

// ---- encoding ----

void put_field_header(std::string& out, const std::string& key,
                      std::uint8_t tag) {
  RR_REQUIRE(!key.empty() && key.size() <= kMaxKeyBytes,
             "state field key must be 1..255 bytes");
  wire::put_varint(out, key.size());
  out.append(key);
  out.push_back(static_cast<char>(tag));
}

/// Run-length state machine behind the list codec. feed(v) consumes one
/// element; emit() then writes either the delta-RLE payload (tag 6,
/// built incrementally during feeding) or the plain delta stream
/// (tag 2, re-encoded from the accessor only when it is actually
/// smaller — the plain size is tracked per run, not per element). The
/// feed/emit split lets the frame encoder below interleave several
/// fields in one pass over the node range. Delta baseline is 0 so every
/// segment stands alone.
class ListSegmentEncoder {
 public:
  void feed(std::uint64_t v) {
    const std::uint64_t d = v - prev_;
    prev_ = v;
    if (run_len_ > 0 && d == run_delta_) {
      ++run_len_;
      return;
    }
    if (run_len_ > 0) close_run();
    run_delta_ = d;
    run_len_ = 1;
  }

  /// `at` must replay the values fed, in order (used for the plain-delta
  /// fallback). Exactly end - begin elements must have been fed.
  template <typename At>
  void emit(std::string& out, const std::string& key, At&& at,
            std::uint64_t begin, std::uint64_t end) {
    if (run_len_ > 0) close_run();
    const bool use_rle = rle_.size() < delta_size_;
    put_field_header(out, key, use_rle ? kTagListRle : kTagListDelta);
    wire::put_varint(out, end - begin);
    if (use_rle) {
      out.append(rle_);
      return;
    }
    std::uint64_t prev = 0;
    for (std::uint64_t i = begin; i < end; ++i) {
      const std::uint64_t v = at(i);
      wire::put_varint(out, wire::zigzag(v - prev));
      prev = v;
    }
  }

  /// Appends one completed (delta, length) run directly. The fused
  /// frame encoder below tracks run state in registers and calls in
  /// only at run boundaries; must not be interleaved with feed() on the
  /// same instance.
  void add_run(std::uint64_t delta, std::uint64_t len) {
    delta_size_ += len * wire::varint_size(wire::zigzag(delta));
    wire::put_varint(rle_, len);
    wire::put_varint(rle_, wire::zigzag(delta));
  }

 private:
  void close_run() {
    add_run(run_delta_, run_len_);
    run_len_ = 0;
  }

  std::string rle_;
  std::size_t delta_size_ = 0;
  std::uint64_t prev_ = 0;
  std::uint64_t run_delta_ = 0;
  std::uint64_t run_len_ = 0;
};

/// Encodes at(i) for i in [begin, end) as one list segment. `at` is any
/// indexable accessor — a vector, or a StateWriter list view reading
/// engine state lazily.
template <typename At>
void encode_list_segment(std::string& out, const std::string& key, At&& at,
                         std::uint64_t begin, std::uint64_t end) {
  ListSegmentEncoder enc;
  for (std::uint64_t i = begin; i < end; ++i) enc.feed(at(i));
  enc.emit(out, key, at, begin, end);
}

/// Reads strided view element i with a width-dispatched raw load.
inline std::uint64_t strided_at(const WriterField& f, std::uint64_t i) {
  if (f.view_width == 4) {
    std::uint32_t v;
    __builtin_memcpy(&v, f.view_base + i * f.view_stride, 4);
    return v;
  }
  std::uint64_t v;
  __builtin_memcpy(&v, f.view_base + i * f.view_stride, 8);
  return v;
}

/// emit() for a strided view field whose elements were already fed.
void emit_strided_segment(std::string& out, const WriterField& f,
                          ListSegmentEncoder& enc, std::uint64_t begin,
                          std::uint64_t end) {
  enc.emit(
      out, f.key, [&f](std::uint64_t i) { return strided_at(f, i); }, begin,
      end);
}

struct StridedCol {
  const unsigned char* base = nullptr;
  std::size_t stride = 0;
  std::uint8_t width = 0;
};

/// Feeds N strided columns through their encoders in one interleaved
/// pass over [begin, end): node i's columns share cache lines, so this
/// touches the engine state once instead of once per field. N is a
/// compile-time constant and the run state lives in local arrays, so
/// the inner loop unrolls with everything hot in registers — the
/// encoders are only reached at run boundaries (add_run).
template <std::size_t N>
void feed_strided_columns(const std::array<StridedCol, N> cols,
                          ListSegmentEncoder* encs, std::uint64_t begin,
                          std::uint64_t end) {
  std::uint64_t prev[N] = {};
  std::uint64_t run_delta[N] = {};
  std::uint64_t run_len[N] = {};
  for (std::uint64_t i = begin; i < end; ++i) {
    for (std::size_t k = 0; k < N; ++k) {
      std::uint64_t v;
      if (cols[k].width == 4) {
        std::uint32_t narrow;
        __builtin_memcpy(&narrow, cols[k].base + i * cols[k].stride, 4);
        v = narrow;
      } else {
        __builtin_memcpy(&v, cols[k].base + i * cols[k].stride, 8);
      }
      const std::uint64_t d = v - prev[k];
      prev[k] = v;
      if (run_len[k] != 0 && d == run_delta[k]) {
        ++run_len[k];
        continue;
      }
      if (run_len[k] != 0) encs[k].add_run(run_delta[k], run_len[k]);
      run_delta[k] = d;
      run_len[k] = 1;
    }
  }
  for (std::size_t k = 0; k < N; ++k) {
    if (run_len[k] != 0) encs[k].add_run(run_delta[k], run_len[k]);
  }
}

/// Dispatches the fused pass to a fixed-N instantiation (the rotor
/// engines serialize 6 strided columns; other small counts get their
/// own unrolled body). Returns false above the dispatch limit — the
/// caller then falls back to per-field feeding.
bool feed_strided_fields(const std::vector<const WriterField*>& strided,
                         std::vector<ListSegmentEncoder>& encs,
                         std::uint64_t begin, std::uint64_t end) {
  const auto dispatch = [&](auto n_const) {
    constexpr std::size_t kN = decltype(n_const)::value;
    std::array<StridedCol, kN> cols;
    for (std::size_t k = 0; k < kN; ++k) {
      cols[k] = {strided[k]->view_base, strided[k]->view_stride,
                 strided[k]->view_width};
    }
    feed_strided_columns<kN>(cols, encs.data(), begin, end);
  };
  switch (strided.size()) {
    case 1: dispatch(std::integral_constant<std::size_t, 1>{}); return true;
    case 2: dispatch(std::integral_constant<std::size_t, 2>{}); return true;
    case 3: dispatch(std::integral_constant<std::size_t, 3>{}); return true;
    case 4: dispatch(std::integral_constant<std::size_t, 4>{}); return true;
    case 5: dispatch(std::integral_constant<std::size_t, 5>{}); return true;
    case 6: dispatch(std::integral_constant<std::size_t, 6>{}); return true;
    case 7: dispatch(std::integral_constant<std::size_t, 7>{}); return true;
    case 8: dispatch(std::integral_constant<std::size_t, 8>{}); return true;
    default: return false;
  }
}

/// Dispatches a view field to encode_list_segment with a concrete,
/// inlinable accessor: strided raw loads for the struct-of-arrays fast
/// path, the type-erased functor otherwise.
void encode_view_segment(std::string& out, const WriterField& f,
                         std::uint64_t begin, std::uint64_t end) {
  if (f.view_base != nullptr) {
    const unsigned char* base = f.view_base;
    const std::uint32_t stride = f.view_stride;
    if (f.view_width == 4) {
      encode_list_segment(
          out, f.key,
          [base, stride](std::uint64_t i) {
            std::uint32_t v;
            __builtin_memcpy(&v, base + i * stride, 4);
            return static_cast<std::uint64_t>(v);
          },
          begin, end);
    } else {
      encode_list_segment(
          out, f.key,
          [base, stride](std::uint64_t i) {
            std::uint64_t v;
            __builtin_memcpy(&v, base + i * stride, 8);
            return v;
          },
          begin, end);
    }
    return;
  }
  encode_list_segment(out, f.key, f.view, begin, end);
}

void encode_symbols_segment(std::string& out, const std::string& key,
                            std::uint8_t tag,
                            const std::vector<std::uint8_t>& symbols,
                            std::uint64_t begin, std::uint64_t end) {
  put_field_header(out, key, tag);
  const std::uint64_t count = end - begin;
  wire::put_varint(out, count);
  std::uint8_t byte = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (symbols[begin + i]) byte |= static_cast<std::uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      out.push_back(static_cast<char>(byte));
      byte = 0;
    }
  }
  if (count % 8 != 0) out.push_back(static_cast<char>(byte));
}

void encode_field(std::string& out, const WriterField& f) {
  switch (f.kind) {
    case WriterField::Kind::kRaw:
      put_field_header(out, f.key, kTagRaw);
      wire::put_varint(out, f.raw.size());
      out.append(f.raw);
      break;
    case WriterField::Kind::kU64:
      put_field_header(out, f.key, kTagU64);
      wire::put_varint(out, f.scalar);
      break;
    case WriterField::Kind::kU64List:
      encode_list_segment(
          out, f.key, [&f](std::uint64_t i) { return f.list[i]; }, 0,
          f.list.size());
      break;
    case WriterField::Kind::kU64ListView:
      encode_view_segment(out, f, 0, f.view_size);
      break;
    case WriterField::Kind::kDirs:
      encode_symbols_segment(out, f.key, kTagDirs, f.symbols, 0,
                             f.symbols.size());
      break;
    case WriterField::Kind::kBits:
      encode_symbols_segment(out, f.key, kTagBits, f.symbols, 0,
                             f.symbols.size());
      break;
    case WriterField::Kind::kPairs: {
      put_field_header(out, f.key, kTagPairs);
      wire::put_varint(out, f.pairs.size());
      std::uint64_t prev_index = 0;
      for (std::size_t i = 0; i < f.pairs.size(); ++i) {
        const auto [index, value] = f.pairs[i];
        if (i == 0) {
          wire::put_varint(out, index);
        } else {
          RR_REQUIRE(index > prev_index,
                     "pair indices must be strictly increasing");
          wire::put_varint(out, index - prev_index);
        }
        prev_index = index;
        wire::put_varint(out, value);
      }
      break;
    }
  }
}

/// True for fields the codec shards across per-node frames.
bool is_per_node(const WriterField& f, std::uint64_t num_nodes) {
  if (num_nodes == 0) return false;
  switch (f.kind) {
    case WriterField::Kind::kU64List:
      return f.list.size() == num_nodes;
    case WriterField::Kind::kU64ListView:
      return f.view_size == num_nodes;
    case WriterField::Kind::kDirs:
    case WriterField::Kind::kBits:
      return f.symbols.size() == num_nodes;
    default:
      return false;
  }
}

// ---- decoding ----

/// One field as decoded from a single frame (per-node fields carry one
/// segment here; the assembler concatenates across frames).
struct DecodedField {
  std::string key;
  std::uint8_t tag = 0;
  ReaderValue value;
};

/// Scans `count` varints without materializing them; false on any
/// malformed varint. Advances *pos past the run.
bool scan_varints(const std::uint8_t* data, std::size_t size, std::size_t* pos,
                  std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!wire::get_varint(data, size, pos)) return false;
  }
  return true;
}

std::optional<std::vector<DecodedField>> decode_frame(const std::uint8_t* data,
                                                      std::size_t size) {
  std::vector<DecodedField> out;
  std::size_t pos = 0;
  while (pos < size) {
    const auto key_len = wire::get_varint(data, size, &pos);
    if (!key_len || *key_len == 0 || *key_len > kMaxKeyBytes ||
        *key_len > size - pos) {
      return std::nullopt;
    }
    DecodedField field;
    field.key.assign(reinterpret_cast<const char*>(data + pos),
                     static_cast<std::size_t>(*key_len));
    pos += static_cast<std::size_t>(*key_len);
    if (pos >= size) return std::nullopt;
    field.tag = data[pos++];
    switch (field.tag) {
      case kTagRaw: {
        const auto len = wire::get_varint(data, size, &pos);
        if (!len || *len > size - pos) return std::nullopt;
        field.value.kind = ReaderValue::Kind::kText;
        field.value.text.assign(reinterpret_cast<const char*>(data + pos),
                                static_cast<std::size_t>(*len));
        pos += static_cast<std::size_t>(*len);
        break;
      }
      case kTagU64: {
        const auto v = wire::get_varint(data, size, &pos);
        if (!v) return std::nullopt;
        field.value.kind = ReaderValue::Kind::kU64;
        field.value.scalar = *v;
        break;
      }
      case kTagListDelta:
      case kTagListRle: {
        const auto count = wire::get_varint(data, size, &pos);
        if (!count) return std::nullopt;
        const std::size_t payload_start = pos;
        if (field.tag == kTagListDelta) {
          // Each element is at least one byte; fail fast on a count that
          // cannot fit the remaining frame.
          if (*count > size - pos) return std::nullopt;
          if (!scan_varints(data, size, &pos, *count)) return std::nullopt;
        } else {
          // RLE: scan (runlen, delta) runs until the declared count is
          // covered. Each run costs >= 2 payload bytes, so the loop is
          // bounded by the frame size no matter what `count` claims.
          std::uint64_t produced = 0;
          while (produced < *count) {
            const auto run = wire::get_varint(data, size, &pos);
            if (!run || *run == 0 || *run > *count - produced) {
              return std::nullopt;
            }
            if (!wire::get_varint(data, size, &pos)) return std::nullopt;
            produced += *run;
          }
        }
        field.value.kind = ReaderValue::Kind::kPackedList;
        PackedSegment seg;
        seg.count = *count;
        seg.enc = field.tag == kTagListRle ? 1 : 0;
        seg.bytes.assign(reinterpret_cast<const char*>(data + payload_start),
                         pos - payload_start);
        field.value.segs.push_back(std::move(seg));
        break;
      }
      case kTagDirs:
      case kTagBits: {
        const auto count = wire::get_varint(data, size, &pos);
        if (!count) return std::nullopt;
        const std::uint64_t nbytes = (*count + 7) / 8;
        if (nbytes > size - pos) return std::nullopt;
        field.value.kind = ReaderValue::Kind::kPackedSymbols;
        PackedSegment seg;
        seg.count = *count;
        seg.enc = field.tag == kTagBits ? 1 : 0;
        seg.bytes.assign(reinterpret_cast<const char*>(data + pos),
                         static_cast<std::size_t>(nbytes));
        field.value.segs.push_back(std::move(seg));
        pos += static_cast<std::size_t>(nbytes);
        break;
      }
      case kTagPairs: {
        const auto count = wire::get_varint(data, size, &pos);
        // Every pair consumes at least two payload bytes.
        if (!count || *count > (size - pos) / 2) return std::nullopt;
        field.value.kind = ReaderValue::Kind::kPairs;
        field.value.pair_list.reserve(static_cast<std::size_t>(*count));
        std::uint64_t index = 0;
        for (std::uint64_t i = 0; i < *count; ++i) {
          const auto step = wire::get_varint(data, size, &pos);
          const auto value = wire::get_varint(data, size, &pos);
          if (!step || !value) return std::nullopt;
          if (i == 0) {
            index = *step;
          } else {
            if (*step == 0 || *step > ~std::uint64_t{0} - index) {
              return std::nullopt;  // non-increasing or overflowing index
            }
            index += *step;
          }
          field.value.pair_list.emplace_back(index, *value);
        }
        break;
      }
      default:
        return std::nullopt;  // unknown tag
    }
    out.push_back(std::move(field));
  }
  return out;
}

// An empty pairs field must decode back to kPairs (not fail): count 0 is
// written by engines with no agents parked. decode_frame above handles
// it explicitly.

struct FrameEntry {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint32_t crc = 0;
};

/// Parses and validates the footer from the last `tail_size` bytes of
/// the document body region. `body_plus_footer` is the total byte count
/// after the header line. On success *body_size is the frame region
/// size and the entries are offset-contiguous and node-contiguous.
std::optional<std::vector<FrameEntry>> parse_footer(
    const std::uint8_t* tail, std::size_t tail_size,
    std::uint64_t body_plus_footer, std::uint64_t* body_size) {
  if (tail_size < kFooterTailBytes) return std::nullopt;
  if (wire::get_u64le(tail + tail_size - 8) != kV2TrailerMagic) {
    return std::nullopt;
  }
  const std::uint32_t num_frames = wire::get_u32le(tail + tail_size - 16);
  const std::uint32_t stored_crc = wire::get_u32le(tail + tail_size - 12);
  if (num_frames == 0) return std::nullopt;
  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(num_frames) * kFooterEntryBytes;
  if (table_bytes + kFooterTailBytes > body_plus_footer ||
      table_bytes + kFooterTailBytes > tail_size) {
    return std::nullopt;
  }
  const std::uint8_t* table =
      tail + tail_size - kFooterTailBytes - table_bytes;
  if (wire::crc32(table, table_bytes + 4) != stored_crc) return std::nullopt;

  *body_size = body_plus_footer - table_bytes - kFooterTailBytes;
  std::vector<FrameEntry> entries(num_frames);
  std::uint64_t next_offset = 0;
  std::uint64_t next_node = 0;
  for (std::uint32_t i = 0; i < num_frames; ++i) {
    const std::uint8_t* e = table + i * kFooterEntryBytes;
    FrameEntry& entry = entries[i];
    entry.offset = wire::get_u64le(e);
    entry.length = wire::get_u64le(e + 8);
    entry.begin = wire::get_u64le(e + 16);
    entry.end = wire::get_u64le(e + 24);
    entry.crc = wire::get_u32le(e + 32);
    if (wire::get_u32le(e + 36) != 0) return std::nullopt;  // reserved
    // Frames tile the body contiguously, in order — the canonical layout
    // the encoder produces; anything else is malformed or crafted.
    if (entry.offset != next_offset || entry.length > *body_size - next_offset) {
      return std::nullopt;
    }
    next_offset += entry.length;
    if (i == 0) {
      if (entry.begin != 0 || entry.end != 0) return std::nullopt;
    } else {
      if (entry.begin != next_node || entry.end <= entry.begin) {
        return std::nullopt;
      }
      next_node = entry.end;
    }
  }
  if (next_offset != *body_size) return std::nullopt;
  return entries;
}

/// Re-assembles per-frame decodes into one field list: frame 0 fields
/// verbatim, per-node fields stitched segment by segment. Frames must be
/// added in index order.
class Assembler {
 public:
  bool add_frame(std::size_t index, const FrameEntry& entry,
                 std::vector<DecodedField> fields) {
    if (index == 0) {
      for (DecodedField& f : fields) {
        fields_.emplace_back(std::move(f.key), std::move(f.value));
      }
      frame0_fields_ = fields_.size();
      return true;
    }
    const std::uint64_t span = entry.end - entry.begin;
    if (index == 1) {
      // First per-node frame fixes the key/kind sequence. (The exact
      // list tag may differ per segment — the writer picks delta or RLE
      // independently for each range — so later frames match on the
      // decoded kind, not the wire tag.)
      for (DecodedField& f : fields) {
        if (!segment_ok(f, span)) return false;
        fields_.emplace_back(std::move(f.key), std::move(f.value));
      }
      per_node_fields_ = fields_.size() - frame0_fields_;
      return true;
    }
    // Later frames must repeat the exact sequence, one segment each.
    if (fields.size() != per_node_fields_) return false;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      DecodedField& f = fields[i];
      auto& [key, value] = fields_[frame0_fields_ + i];
      if (f.key != key || f.value.kind != value.kind || !segment_ok(f, span)) {
        return false;
      }
      // Dirs and bits share the packed-symbols kind but are distinct
      // types; their segments must agree.
      if (value.kind == ReaderValue::Kind::kPackedSymbols &&
          f.value.segs[0].enc != value.segs[0].enc) {
        return false;
      }
      value.segs.push_back(std::move(f.value.segs[0]));
    }
    return true;
  }

  std::optional<StateReader> finish() {
    return StateReader::from_fields(std::move(fields_));
  }

 private:
  static bool segment_ok(const DecodedField& f, std::uint64_t span) {
    // Per-node frames may only carry list/symbol segments, and each
    // segment must cover exactly the frame's node range.
    if (f.value.kind != ReaderValue::Kind::kPackedList &&
        f.value.kind != ReaderValue::Kind::kPackedSymbols) {
      return false;
    }
    return f.value.segs.size() == 1 && f.value.segs[0].count == span;
  }

  std::vector<std::pair<std::string, ReaderValue>> fields_;
  std::size_t frame0_fields_ = 0;
  std::size_t per_node_fields_ = 0;
};

}  // namespace

// ---- public API ----

std::string encode_checkpoint_v2(const std::string& engine_name,
                                 const std::string& graph_descriptor,
                                 const StateWriter& state,
                                 std::uint64_t num_nodes,
                                 std::uint32_t segments, ThreadPool* pool) {
  std::string out = std::string(kCheckpointMagicV2) + " engine=" +
                    engine_name + " graph=" + graph_descriptor + "\n";

  std::vector<const WriterField*> frame0;
  std::vector<const WriterField*> per_node;
  for (const WriterField& f : state.fields()) {
    (is_per_node(f, num_nodes) ? per_node : frame0).push_back(&f);
  }
  std::uint64_t nseg = segments > 0 ? segments : kV2DefaultSegments;
  if (per_node.empty()) nseg = 0;
  if (nseg > num_nodes) nseg = num_nodes;
  const std::size_t num_frames = static_cast<std::size_t>(1 + nseg);

  std::vector<std::string> frames(num_frames);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges(num_frames,
                                                              {0, 0});
  for (std::uint64_t j = 0; j < nseg; ++j) {
    ranges[j + 1] = {num_nodes * j / nseg, num_nodes * (j + 1) / nseg};
  }
  const auto encode_one = [&](std::uint64_t j) {
    std::string& frame = frames[j];
    if (j == 0) {
      for (const WriterField* f : frame0) encode_field(frame, *f);
      return;
    }
    const auto [begin, end] = ranges[j];
    // Strided view fields (the rotor engines' struct-of-arrays state)
    // are fed in one interleaved unrolled pass: node i's columns share
    // cache lines, so feeding every field per node touches the engine
    // state once instead of once per field — at 1e8 nodes that is the
    // difference between a cache-resident and a memory-bound save.
    // Emission below stays in declaration order, so the bytes are
    // identical to per-field encoding.
    std::vector<const WriterField*> strided;
    for (const WriterField* f : per_node) {
      if (f->kind == WriterField::Kind::kU64ListView &&
          f->view_base != nullptr) {
        strided.push_back(f);
      }
    }
    std::vector<ListSegmentEncoder> encoders(strided.size());
    const bool fused =
        !strided.empty() && feed_strided_fields(strided, encoders, begin, end);
    std::size_t next_strided = 0;
    for (const WriterField* f : per_node) {
      if (f->kind == WriterField::Kind::kU64List) {
        encode_list_segment(
            frame, f->key, [f](std::uint64_t i) { return f->list[i]; }, begin,
            end);
      } else if (f->kind == WriterField::Kind::kU64ListView) {
        if (fused && f->view_base != nullptr) {
          emit_strided_segment(frame, *f, encoders[next_strided++], begin,
                               end);
        } else {
          encode_view_segment(frame, *f, begin, end);
        }
      } else {
        encode_symbols_segment(
            frame, f->key,
            f->kind == WriterField::Kind::kDirs ? kTagDirs : kTagBits,
            f->symbols, begin, end);
      }
    }
  };
  if (pool != nullptr && num_frames > 1) {
    pool->for_each(num_frames, encode_one, /*chunk=*/1);
  } else {
    for (std::uint64_t j = 0; j < num_frames; ++j) encode_one(j);
  }

  std::string tail;
  tail.reserve(num_frames * kFooterEntryBytes + kFooterTailBytes);
  std::uint64_t offset = 0;
  for (std::size_t j = 0; j < num_frames; ++j) {
    wire::put_u64le(tail, offset);
    wire::put_u64le(tail, frames[j].size());
    wire::put_u64le(tail, ranges[j].first);
    wire::put_u64le(tail, ranges[j].second);
    wire::put_u32le(tail, wire::crc32(frames[j].data(), frames[j].size()));
    wire::put_u32le(tail, 0);
    offset += frames[j].size();
  }
  wire::put_u32le(tail, static_cast<std::uint32_t>(num_frames));
  const std::uint32_t table_crc = wire::crc32(tail.data(), tail.size());
  wire::put_u32le(tail, table_crc);
  wire::put_u64le(tail, kV2TrailerMagic);

  std::size_t total = out.size() + tail.size();
  for (const std::string& frame : frames) total += frame.size();
  out.reserve(total);
  for (const std::string& frame : frames) out.append(frame);
  out.append(tail);
  return out;
}

std::optional<StateReader> decode_checkpoint_v2_body(const std::uint8_t* data,
                                                     std::size_t size,
                                                     ThreadPool* pool) {
  std::uint64_t body_size = 0;
  const auto entries = parse_footer(data, size, size, &body_size);
  if (!entries) return std::nullopt;

  std::vector<std::optional<std::vector<DecodedField>>> decoded(
      entries->size());
  const auto decode_one = [&](std::uint64_t i) {
    const FrameEntry& e = (*entries)[i];
    const std::uint8_t* frame = data + e.offset;
    if (wire::crc32(frame, e.length) != e.crc) return;  // stays nullopt
    decoded[i] = decode_frame(frame, static_cast<std::size_t>(e.length));
  };
  if (pool != nullptr && entries->size() > 1) {
    pool->for_each(entries->size(), decode_one, /*chunk=*/1);
  } else {
    for (std::uint64_t i = 0; i < entries->size(); ++i) decode_one(i);
  }

  Assembler assembler;
  for (std::size_t i = 0; i < entries->size(); ++i) {
    if (!decoded[i]) return std::nullopt;
    if (!assembler.add_frame(i, (*entries)[i], std::move(*decoded[i]))) {
      return std::nullopt;
    }
  }
  return assembler.finish();
}

std::optional<StateReader> decode_checkpoint_v2_file(std::FILE* f,
                                                     std::uint64_t body_offset,
                                                     std::uint64_t file_size,
                                                     ThreadPool* pool) {
  if (file_size < body_offset ||
      file_size - body_offset < kFooterTailBytes) {
    return std::nullopt;
  }
  const std::uint64_t body_plus_footer = file_size - body_offset;

  // Footer tail first (num_frames tells us how much table to read), then
  // the table itself — both O(num_frames), not O(file).
  std::uint8_t tail16[kFooterTailBytes];
  if (std::fseek(f, static_cast<long>(file_size - kFooterTailBytes),
                 SEEK_SET) != 0 ||
      std::fread(tail16, 1, kFooterTailBytes, f) != kFooterTailBytes) {
    return std::nullopt;
  }
  if (wire::get_u64le(tail16 + 8) != kV2TrailerMagic) return std::nullopt;
  const std::uint32_t num_frames = wire::get_u32le(tail16);
  if (num_frames == 0) return std::nullopt;
  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(num_frames) * kFooterEntryBytes;
  if (table_bytes + kFooterTailBytes > body_plus_footer) return std::nullopt;

  std::vector<std::uint8_t> footer(
      static_cast<std::size_t>(table_bytes + kFooterTailBytes));
  if (std::fseek(f,
                 static_cast<long>(file_size - table_bytes - kFooterTailBytes),
                 SEEK_SET) != 0 ||
      std::fread(footer.data(), 1, footer.size(), f) != footer.size()) {
    return std::nullopt;
  }
  std::uint64_t body_size = 0;
  const auto entries =
      parse_footer(footer.data(), footer.size(), body_plus_footer, &body_size);
  if (!entries) return std::nullopt;

  // Frames are consumed in index order (the Assembler stitches per-node
  // segments contiguously) but are independently decodable, so with a
  // pool the loop works a batch at a time: read a window of consecutive
  // frames sequentially (frames tile the body, so this is one contiguous
  // read), CRC-check and decode them in parallel, then feed the results
  // to the assembler in order. Peak memory is O(batch), matching the
  // streaming contract; without a pool the batch is one frame and the
  // behavior is the old loop exactly.
  const std::size_t batch =
      pool != nullptr ? static_cast<std::size_t>(pool->num_threads()) * 2 : 1;
  Assembler assembler;
  std::vector<std::uint8_t> buf;
  std::vector<std::optional<std::vector<DecodedField>>> decoded;
  for (std::size_t lo = 0; lo < entries->size(); lo += batch) {
    const std::size_t hi = std::min(lo + batch, entries->size());
    const FrameEntry& first = (*entries)[lo];
    const FrameEntry& last = (*entries)[hi - 1];
    const std::uint64_t span = last.offset + last.length - first.offset;
    buf.resize(static_cast<std::size_t>(span));
    if (std::fseek(f, static_cast<long>(body_offset + first.offset),
                   SEEK_SET) != 0 ||
        std::fread(buf.data(), 1, buf.size(), f) != buf.size()) {
      return std::nullopt;
    }
    decoded.assign(hi - lo, std::nullopt);
    const auto decode_one = [&](std::uint64_t j) {
      const FrameEntry& e = (*entries)[lo + j];
      const std::uint8_t* frame = buf.data() + (e.offset - first.offset);
      if (wire::crc32(frame, e.length) != e.crc) return;  // stays nullopt
      decoded[j] = decode_frame(frame, static_cast<std::size_t>(e.length));
    };
    if (pool != nullptr && hi - lo > 1) {
      pool->for_each(hi - lo, decode_one, /*chunk=*/1);
    } else {
      for (std::uint64_t j = 0; j < hi - lo; ++j) decode_one(j);
    }
    for (std::size_t j = 0; j < hi - lo; ++j) {
      if (!decoded[j] ||
          !assembler.add_frame(lo + j, (*entries)[lo + j],
                               std::move(*decoded[j]))) {
        return std::nullopt;
      }
    }
  }
  return assembler.finish();
}

}  // namespace rr::sim
