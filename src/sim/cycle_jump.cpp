#include "sim/cycle_jump.hpp"

#include <algorithm>
#include <utility>

#include "common/require.hpp"
#include "sim/registry.hpp"

namespace rr::sim {

const char* cycle_jump_mode_name(CycleJumpMode mode) {
  switch (mode) {
    case CycleJumpMode::kOff: return "off";
    case CycleJumpMode::kAuto: return "auto";
    case CycleJumpMode::kOn: return "on";
  }
  return "auto";
}

std::optional<CycleJumpMode> cycle_jump_mode_from_name(std::string_view name) {
  if (name == "off") return CycleJumpMode::kOff;
  if (name == "auto") return CycleJumpMode::kAuto;
  if (name == "on") return CycleJumpMode::kOn;
  return std::nullopt;
}

namespace {

// ---- serialized-state images ----
//
// Confirmation and delta extraction work on materialized copies of the
// engine's serialize_state output: kU64ListView fields are resolved
// element by element (their view pointers alias live engine memory and
// go stale the moment the engine steps), and view fields normalize to
// kU64List so images from different capture times compare uniformly.

struct ImageField {
  WriterField::Kind kind = WriterField::Kind::kRaw;
  std::string key;
  std::string raw;
  std::uint64_t scalar = 0;
  std::vector<std::uint64_t> list;
  std::vector<std::uint8_t> symbols;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
  bool accumulator = false;
};

using Image = std::vector<ImageField>;

bool is_accumulator_key(const std::vector<std::string>& accumulators,
                        const std::string& key) {
  return std::find(accumulators.begin(), accumulators.end(), key) !=
         accumulators.end();
}

Image capture_image(const StateIO& io,
                    const std::vector<std::string>& accumulators) {
  StateWriter w;
  io.serialize_state(w);
  Image image;
  image.reserve(w.fields().size());
  for (const WriterField& f : w.fields()) {
    ImageField out;
    out.key = f.key;
    switch (f.kind) {
      case WriterField::Kind::kRaw:
        out.kind = f.kind;
        out.raw = f.raw;
        break;
      case WriterField::Kind::kU64:
        out.kind = f.kind;
        out.scalar = f.scalar;
        break;
      case WriterField::Kind::kU64List:
        out.kind = f.kind;
        out.list = f.list;
        break;
      case WriterField::Kind::kU64ListView:
        out.kind = WriterField::Kind::kU64List;
        out.list.reserve(f.view_size);
        for (std::uint64_t i = 0; i < f.view_size; ++i) {
          out.list.push_back(f.view_at(i));
        }
        break;
      case WriterField::Kind::kDirs:
      case WriterField::Kind::kBits:
        out.kind = f.kind;
        out.symbols = f.symbols;
        break;
      case WriterField::Kind::kPairs:
        out.kind = f.kind;
        out.pairs = f.pairs;
        break;
    }
    // Only counter-shaped fields may be leapt; an accumulator name bound
    // to any other kind is a spec bug surfaced as "rigid", which can
    // never confirm (the value keeps changing), not as a wrong leap.
    out.accumulator = (out.kind == WriterField::Kind::kU64 ||
                       out.kind == WriterField::Kind::kU64List) &&
                      is_accumulator_key(accumulators, f.key);
    image.push_back(std::move(out));
  }
  return image;
}

/// Exact equality of every rigid field (and shape equality of the
/// accumulator fields, so deltas extracted later are well-formed). This
/// is the collision-proofing step: a 64-bit hash match whose underlying
/// configurations differ is caught by any one of the rigid payloads
/// (pointer fields, agent positions, tokens, ...) differing.
bool rigid_equal(const Image& a, const Image& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const ImageField& fa = a[i];
    const ImageField& fb = b[i];
    if (fa.kind != fb.kind || fa.key != fb.key ||
        fa.accumulator != fb.accumulator) {
      return false;
    }
    if (fa.accumulator) {
      if (fa.list.size() != fb.list.size()) return false;
      continue;
    }
    switch (fa.kind) {
      case WriterField::Kind::kRaw:
        if (fa.raw != fb.raw) return false;
        break;
      case WriterField::Kind::kU64:
        if (fa.scalar != fb.scalar) return false;
        break;
      case WriterField::Kind::kU64List:
      case WriterField::Kind::kU64ListView:
        if (fa.list != fb.list) return false;
        break;
      case WriterField::Kind::kDirs:
      case WriterField::Kind::kBits:
        if (fa.symbols != fb.symbols) return false;
        break;
      case WriterField::Kind::kPairs:
        if (fa.pairs != fb.pairs) return false;
        break;
    }
  }
  return true;
}

/// Per-cycle accumulator increments, from two rigid-equal images exactly
/// one confirmed period apart (both at settled in-cycle rounds, so the
/// observed increment is the one that repeats forever). Mod-2^64
/// subtraction matches the engines' wrapping counters.
std::vector<AccumulatorDelta> extract_deltas(const Image& a, const Image& b) {
  std::vector<AccumulatorDelta> deltas;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i].accumulator) continue;
    AccumulatorDelta d;
    d.key = a[i].key;
    if (a[i].kind == WriterField::Kind::kU64) {
      d.scalar = true;
      d.scalar_delta = b[i].scalar - a[i].scalar;
    } else {
      const auto& la = a[i].list;
      const auto& lb = b[i].list;
      for (std::size_t j = 0; j < la.size(); ++j) {
        const std::uint64_t step = lb[j] - la[j];
        if (!d.runs.empty() && d.runs.back().delta == step) {
          ++d.runs.back().len;
        } else {
          d.runs.push_back({step, 1});
        }
      }
    }
    deltas.push_back(std::move(d));
  }
  return deltas;
}

const AccumulatorDelta* find_delta(const std::vector<AccumulatorDelta>& deltas,
                                   std::string_view key) {
  for (const AccumulatorDelta& d : deltas) {
    if (d.key == key) return &d;
  }
  return nullptr;
}

void append_u64_or_sentinel(std::string& out, std::uint64_t v) {
  if (v == kStateSentinel) {
    out.push_back('-');
  } else {
    out.append(std::to_string(v));
  }
}

/// Renders one serialized field as the ReaderValue its v1 text parse
/// would produce (state_io.cpp's text() formats), with accumulator
/// fields advanced by `cycles` periods. `deltas` nullptr renders the
/// state unchanged (the restore path after a rejected round-trip).
std::optional<ReaderValue> render_field(
    const WriterField& f, const std::vector<AccumulatorDelta>* deltas,
    std::uint64_t cycles) {
  const AccumulatorDelta* d =
      deltas == nullptr ? nullptr : find_delta(*deltas, f.key);
  ReaderValue v;
  switch (f.kind) {
    case WriterField::Kind::kRaw:
      v.kind = ReaderValue::Kind::kText;
      v.text = f.raw;
      break;
    case WriterField::Kind::kU64:
      v.kind = ReaderValue::Kind::kU64;
      v.scalar = f.scalar;
      if (d != nullptr) {
        if (!d->scalar) return std::nullopt;
        v.scalar += cycles * d->scalar_delta;
      }
      break;
    case WriterField::Kind::kU64List:
    case WriterField::Kind::kU64ListView: {
      const std::uint64_t count = f.kind == WriterField::Kind::kU64List
                                      ? f.list.size()
                                      : f.view_size;
      if (d != nullptr) {
        if (d->scalar) return std::nullopt;
        std::uint64_t covered = 0;
        for (const DeltaRun& r : d->runs) covered += r.len;
        if (covered != count) return std::nullopt;  // topology changed?
      }
      v.kind = ReaderValue::Kind::kText;
      std::size_t run = 0;
      std::uint64_t run_used = 0;
      for (std::uint64_t i = 0; i < count; ++i) {
        if (i > 0) v.text.push_back(',');
        std::uint64_t x =
            f.kind == WriterField::Kind::kU64List ? f.list[i] : f.view_at(i);
        if (d != nullptr) {
          while (run_used == d->runs[run].len) {
            ++run;
            run_used = 0;
          }
          x += cycles * d->runs[run].delta;
          ++run_used;
        }
        append_u64_or_sentinel(v.text, x);
      }
      break;
    }
    case WriterField::Kind::kDirs:
      v.kind = ReaderValue::Kind::kText;
      v.text.reserve(f.symbols.size());
      for (std::uint8_t s : f.symbols) v.text.push_back(s ? 'w' : 'c');
      break;
    case WriterField::Kind::kBits:
      v.kind = ReaderValue::Kind::kText;
      v.text.reserve(f.symbols.size());
      for (std::uint8_t s : f.symbols) v.text.push_back(s ? '1' : '0');
      break;
    case WriterField::Kind::kPairs:
      v.kind = ReaderValue::Kind::kPairs;
      v.pair_list = f.pairs;
      break;
  }
  return v;
}

/// Generic leap: serialize, advance accumulators by `cycles` periods, and
/// restore through the engine's own deserialize_state (whose validation
/// still applies). On any failure the pre-leap state is reinstated and
/// false returned — the engine is never left mid-leap.
bool generic_leap(StateIO& io, const std::vector<AccumulatorDelta>& deltas,
                  std::uint64_t cycles) {
  StateWriter w;
  io.serialize_state(w);
  // Both renders happen before any deserialize: view fields alias live
  // engine memory, which the first restore attempt may rewrite.
  std::vector<std::pair<std::string, ReaderValue>> patched;
  std::vector<std::pair<std::string, ReaderValue>> pristine;
  patched.reserve(w.fields().size());
  pristine.reserve(w.fields().size());
  bool renderable = true;
  for (const WriterField& f : w.fields()) {
    auto pat = render_field(f, &deltas, cycles);
    auto pri = render_field(f, nullptr, 0);
    if (!pat || !pri) {
      renderable = false;
      break;
    }
    patched.emplace_back(f.key, std::move(*pat));
    pristine.emplace_back(f.key, std::move(*pri));
  }
  // Every declared accumulator must exist in the serialized state;
  // leaping a delta the state no longer carries would silently drop it.
  for (const AccumulatorDelta& d : deltas) {
    bool present = false;
    for (const WriterField& f : w.fields()) present |= f.key == d.key;
    if (!present) renderable = false;
  }
  if (!renderable) return false;  // nothing attempted, state untouched
  auto patched_reader = StateReader::from_fields(std::move(patched));
  if (!patched_reader) return false;
  if (io.deserialize_state(*patched_reader)) return true;
  // The engine rejected the advanced state: put the original back (its
  // own serialize round-trips by the checkpoint contract) and report
  // failure so the caller falls back to dense stepping.
  auto pristine_reader = StateReader::from_fields(std::move(pristine));
  RR_REQUIRE(pristine_reader != std::nullopt,
             "cycle-jump: pristine state failed to re-parse");
  if (!io.deserialize_state(*pristine_reader)) {
    // Both restores rejected. A healthy engine round-trips its own
    // serialize output, so this is an engine refusing *all* state — a
    // distributed backend whose workers died mid-run rejects every
    // scatter. Failed deserializes leave engine state untouched, so the
    // pre-leap configuration is still in place; report failure and let
    // the wrapper abandon leaping (dense stepping, or the backend's own
    // halt handling, takes over).
    return false;
  }
  return false;
}

/// Leading-u64 parser for the hint codec: consumes [0-9]+ off the front
/// of `s`; false on empty, non-digit start, or overflow (total parsing —
/// hints come from checkpoint files).
bool parse_u64_prefix(std::string_view& s, std::uint64_t& out) {
  if (s.empty() || s[0] < '0' || s[0] > '9') return false;
  std::uint64_t v = 0;
  std::size_t i = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    const std::uint64_t digit = static_cast<std::uint64_t>(s[i] - '0');
    if (v > (~std::uint64_t{0} - digit) / 10) return false;
    v = v * 10 + digit;
    ++i;
  }
  s.remove_prefix(i);
  out = v;
  return true;
}

}  // namespace

// ---- persisted cycle hints ----

std::string encode_cycle_hint(std::uint64_t period,
                              const std::vector<AccumulatorDelta>& deltas) {
  if (period == 0) return std::string();
  for (const AccumulatorDelta& d : deltas) {
    if (d.key.empty()) return std::string();
    for (const char c : d.key) {
      if (c == ';' || c == '=' || c == '\n' || c == '\r') return std::string();
    }
  }
  std::string out = "v1 p=" + std::to_string(period);
  for (const AccumulatorDelta& d : deltas) {
    out += ';';
    out += d.key;
    out += '=';
    if (d.scalar) {
      out += "s:";
      out += std::to_string(d.scalar_delta);
    } else {
      out += "r:";
      for (std::size_t i = 0; i < d.runs.size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(d.runs[i].len);
        out += 'x';
        out += std::to_string(d.runs[i].delta);
      }
    }
  }
  return out;
}

std::optional<CycleHint> decode_cycle_hint(std::string_view text) {
  const auto eat = [&text](std::string_view prefix) {
    if (text.substr(0, prefix.size()) != prefix) return false;
    text.remove_prefix(prefix.size());
    return true;
  };
  CycleHint hint;
  if (!eat("v1 p=")) return std::nullopt;
  if (!parse_u64_prefix(text, hint.period) || hint.period == 0) {
    return std::nullopt;
  }
  while (!text.empty()) {
    if (text[0] != ';') return std::nullopt;
    text.remove_prefix(1);
    const std::size_t eq = text.find('=');
    if (eq == 0 || eq == std::string_view::npos) return std::nullopt;
    AccumulatorDelta d;
    d.key = std::string(text.substr(0, eq));
    text.remove_prefix(eq + 1);
    if (eat("s:")) {
      d.scalar = true;
      if (!parse_u64_prefix(text, d.scalar_delta)) return std::nullopt;
    } else if (eat("r:")) {
      // An empty run list (zero-length accumulator list) is legal.
      while (!text.empty() && text[0] != ';') {
        if (!d.runs.empty()) {
          if (text[0] != ',') return std::nullopt;
          text.remove_prefix(1);
        }
        DeltaRun run;
        if (!parse_u64_prefix(text, run.len) || run.len == 0) {
          return std::nullopt;
        }
        if (text.empty() || text[0] != 'x') return std::nullopt;
        text.remove_prefix(1);
        if (!parse_u64_prefix(text, run.delta)) return std::nullopt;
        d.runs.push_back(run);
      }
    } else {
      return std::nullopt;
    }
    hint.deltas.push_back(std::move(d));
  }
  return hint;
}

// ---- exact stride-1 detector ----

std::optional<ConfirmedCycle> detect_confirmed_cycle(
    Engine& engine, std::uint64_t max_steps,
    const std::vector<std::string>* accumulators) {
  auto* io = dynamic_cast<StateIO*>(&engine);
  if (io == nullptr) return std::nullopt;
  std::vector<std::string> from_registry;
  if (accumulators == nullptr) {
    const EngineSpec* spec =
        EngineRegistry::instance().find(engine.engine_name());
    if (spec == nullptr || !spec->deterministic) return std::nullopt;
    from_registry = spec->cycle_accumulators;
    accumulators = &from_registry;
  }

  std::uint64_t steps = 0;
  BrentProbe probe;
  probe.feed(engine.config_hash(), engine.time());
  while (steps < max_steps) {
    // Probe: Brent over per-round hashes proposes a candidate lambda —
    // the hash sequence's period, which always divides the state period.
    std::optional<std::uint64_t> lambda;
    while (steps < max_steps) {
      engine.step();
      ++steps;
      if ((lambda = probe.feed(engine.config_hash(), engine.time()))) break;
    }
    if (!lambda || *lambda == 0) return std::nullopt;
    // Confirm at multiples of lambda with a full rigid-state compare.
    // The first multiple j*lambda whose state matches is the *minimal*
    // state period p: p is a multiple of lambda, state(t) == state(t+j*
    // lambda) iff p divides j*lambda, and j grows one step at a time.
    // A collision (hash repeat before the state's) never matches and
    // falls back to probing with the budget that remains.
    Image baseline = capture_image(*io, *accumulators);
    std::uint64_t advanced = 0;
    bool matched = false;
    while (steps + *lambda <= max_steps && advanced <= max_steps) {
      for (std::uint64_t i = 0; i < *lambda; ++i) engine.step();
      steps += *lambda;
      advanced += *lambda;
      Image cur = capture_image(*io, *accumulators);
      if (rigid_equal(baseline, cur)) {
        matched = true;
        break;
      }
    }
    if (matched) return ConfirmedCycle{advanced, engine.time()};
    // Exhausted confirmation budget: restart the probe on the remaining
    // step budget (the tortoise may have sampled a pre-cycle collision).
    probe.reset();
    probe.feed(engine.config_hash(), engine.time());
  }
  return std::nullopt;
}

// ---- wrapper ----

struct CycleJumpEngine::Detector {
  Image baseline;
  bool matched_once = false;
};

CycleJumpEngine::CycleJumpEngine(std::unique_ptr<Engine> inner,
                                 std::vector<std::string> accumulators,
                                 CycleJumpOptions options)
    : inner_(std::move(inner)),
      accumulators_(std::move(accumulators)),
      opt_(options) {
  RR_REQUIRE(inner_ != nullptr, "cycle-jump: null inner engine");
  inner_io_ = dynamic_cast<StateIO*>(inner_.get());
  RR_REQUIRE(inner_io_ != nullptr,
             "cycle-jump: inner engine must implement StateIO");
  inner_leap_ = dynamic_cast<CycleLeapable*>(inner_.get());
  opt_.min_stride = std::max<std::uint64_t>(1, opt_.min_stride);
  opt_.samples_per_generation =
      std::max<std::uint64_t>(1, opt_.samples_per_generation);
  invalidate();
  if (opt_.hint_period > 0) {
    // A persisted hint from a prior confirmed run (checkpoint
    // cycle.hint): skip probing and enter confirmation directly at the
    // hinted period. Soundness is unchanged — the full rigid-state
    // compare and delta re-extraction still gate every leap, so a wrong
    // hint burns at most max_confirm_laps compare laps before falling
    // back to ordinary probing.
    ++stats_.candidates;
    candidate_ = opt_.hint_period;
    confirm_at_ = inner_->time() + candidate_;
    laps_ = 0;
    detector_ = std::make_unique<Detector>();
    detector_->baseline = capture_image(*inner_io_, accumulators_);
    detector_->matched_once = false;
    phase_ = Phase::kConfirming;
  }
}

CycleJumpEngine::~CycleJumpEngine() = default;

std::uint64_t CycleJumpEngine::effective_budget() const {
  if (opt_.detect_budget != 0) return opt_.detect_budget;
  const std::uint64_t scaled = 32 * static_cast<std::uint64_t>(num_nodes());
  return std::max<std::uint64_t>(std::uint64_t{1} << 16, scaled);
}

void CycleJumpEngine::invalidate() {
  phase_ = Phase::kProbing;
  probe_.reset();
  stride_ = opt_.min_stride;
  generation_samples_ = 0;
  start_round_ = inner_->time();
  next_sample_ = inner_->time();  // sample the very first configuration
  detector_.reset();
  candidate_ = 0;
  confirm_at_ = 0;
  laps_ = 0;
  rejects_ = 0;
  period_ = 0;
  deltas_.clear();
  stats_.confirmed = false;
  stats_.abandoned = false;
}

std::uint64_t CycleJumpEngine::rounds_to_next_event() const {
  std::uint64_t at = kNotCovered;
  if (phase_ == Phase::kProbing) at = next_sample_;
  if (phase_ == Phase::kConfirming) at = confirm_at_;
  if (at == kNotCovered) return kNotCovered;
  const std::uint64_t now = inner_->time();
  return at > now ? at - now : 0;
}

void CycleJumpEngine::on_event() {
  const std::uint64_t now = inner_->time();
  if (phase_ == Phase::kProbing) {
    if (now - start_round_ >= effective_budget()) {
      phase_ = Phase::kAbandoned;
      stats_.abandoned = true;
      return;
    }
    ++stats_.samples;
    const auto candidate = probe_.feed(inner_->config_hash(), now);
    if (candidate && *candidate > 0 && *candidate <= effective_budget()) {
      ++stats_.candidates;
      candidate_ = *candidate;
      confirm_at_ = now + candidate_;
      laps_ = 0;
      detector_ = std::make_unique<Detector>();
      detector_->baseline = capture_image(*inner_io_, accumulators_);
      detector_->matched_once = false;
      phase_ = Phase::kConfirming;
      return;
    }
    if (candidate) {
      // A candidate too long to confirm within budget: treat as a reject
      // and keep probing from a fresh tortoise.
      ++stats_.candidates;
      ++stats_.rejects;
      ++rejects_;
      probe_.reset();
      if (rejects_ >= opt_.max_rejects) {
        phase_ = Phase::kAbandoned;
        stats_.abandoned = true;
        return;
      }
    }
    ++generation_samples_;
    if (generation_samples_ >= opt_.samples_per_generation) {
      generation_samples_ = 0;
      if (stride_ <= kNotCovered / 2) stride_ *= 2;
    }
    next_sample_ = now + stride_;
    return;
  }
  if (phase_ != Phase::kConfirming) return;
  ++stats_.confirm_laps;
  Image cur = capture_image(*inner_io_, accumulators_);
  if (rigid_equal(detector_->baseline, cur)) {
    if (detector_->matched_once) {
      // Second consecutive match: baseline (one period ago) is settled —
      // it sits at least one full period past cycle entry — so the
      // per-lap accumulator increments observed here repeat forever.
      deltas_ = extract_deltas(detector_->baseline, cur);
      period_ = candidate_;
      phase_ = Phase::kConfirmed;
      stats_.confirmed = true;
      stats_.period = period_;
      detector_.reset();
      return;
    }
    detector_->matched_once = true;
    detector_->baseline = std::move(cur);
    confirm_at_ = now + candidate_;
    return;
  }
  // Mismatch: either first-visit/accumulator settling (slide the baseline
  // and retry) or a hash collision (laps run out and the candidate dies).
  detector_->matched_once = false;
  detector_->baseline = std::move(cur);
  ++laps_;
  if (laps_ < opt_.max_confirm_laps) {
    confirm_at_ = now + candidate_;
    return;
  }
  ++stats_.rejects;
  ++rejects_;
  detector_.reset();
  candidate_ = 0;
  if (rejects_ >= opt_.max_rejects) {
    phase_ = Phase::kAbandoned;
    stats_.abandoned = true;
    return;
  }
  phase_ = Phase::kProbing;
  probe_.reset();
  generation_samples_ = 0;
  next_sample_ = now + stride_;
}

std::uint64_t CycleJumpEngine::dense_chunk(std::uint64_t rounds) {
  std::uint64_t consumed = 0;
  while (consumed < rounds) {
    const std::uint64_t to_event = rounds_to_next_event();
    if (to_event == 0) {
      on_event();
      // Confirmation mid-chunk: stop dense-stepping right here so the
      // caller can leap the remainder.
      if (phase_ == Phase::kConfirmed) return consumed;
      continue;
    }
    const std::uint64_t sub = std::min(rounds - consumed, to_event);
    const std::uint64_t before = inner_->time();
    inner_->run(sub);  // inner never has auto-checkpoints armed
    if (inner_->time() == before) {
      // The inner engine refused to advance (a halted distributed
      // backend no-ops its run). Claim the whole request so every
      // caller terminates instead of spinning on a frozen clock.
      return rounds;
    }
    consumed += sub;
  }
  if (rounds_to_next_event() == 0) on_event();
  return consumed;
}

void CycleJumpEngine::apply_leap(std::uint64_t cycles) {
  bool ok = false;
  if (inner_leap_ != nullptr) ok = inner_leap_->apply_cycle_leap(deltas_, cycles);
  if (!ok) ok = generic_leap(*inner_io_, deltas_, cycles);
  if (!ok) {
    // The inner engine would not accept the advanced state (spec bug or
    // an exotic validation rule): never leap again, dense stepping is
    // always correct.
    phase_ = Phase::kAbandoned;
    stats_.abandoned = true;
    stats_.confirmed = false;
    period_ = 0;
    deltas_.clear();
    return;
  }
  ++stats_.leaps;
  stats_.leaped_rounds += cycles * period_;
}

void CycleJumpEngine::step() {
  inner_->step();
  if (rounds_to_next_event() == 0) on_event();
}

void CycleJumpEngine::do_step_delayed(const DelayFn& delay) {
  // A delayed round perturbs the orbit: any detected or confirmed cycle
  // no longer describes the future trajectory.
  inner_->step_delayed(delay);
  invalidate();
}

void CycleJumpEngine::run(std::uint64_t rounds) {
  while (rounds > 0) {
    const std::uint64_t cap = rounds_to_auto_checkpoint();
    const std::uint64_t chunk = std::min(rounds, cap);
    if (chunk == 0) {  // a mark is overdue (direct step() moved time past it)
      fire_auto_checkpoint_if_due();
      continue;
    }
    if (phase_ == Phase::kConfirmed) {
      const std::uint64_t cycles = chunk / period_;
      if (cycles > 0) {
        apply_leap(cycles);
        if (phase_ == Phase::kConfirmed) {
          rounds -= cycles * period_;
          fire_auto_checkpoint_if_due();
        }
        continue;  // leap failure falls through to dense next iteration
      }
      inner_->run(chunk);  // sub-period residue
      rounds -= chunk;
    } else {
      rounds -= dense_chunk(chunk);
    }
    fire_auto_checkpoint_if_due();
  }
}

std::uint64_t CycleJumpEngine::run_until_covered(std::uint64_t max_rounds) {
  if (all_covered()) return 0;
  while (inner_->time() < max_rounds) {
    const std::uint64_t remaining = max_rounds - inner_->time();
    const std::uint64_t cap = rounds_to_auto_checkpoint();
    const std::uint64_t chunk = std::min(remaining, cap);
    if (chunk == 0) {
      fire_auto_checkpoint_if_due();
      continue;
    }
    if (phase_ == Phase::kConfirmed) {
      // Rigid-state equality one period apart freezes coverage: the
      // trajectory repeats, so an uncovered node stays uncovered forever.
      // Advance to the cap by leaping (keeping checkpoint marks exact)
      // and report kNotCovered, exactly like dense stepping would.
      const std::uint64_t cycles = chunk / period_;
      if (cycles > 0) {
        apply_leap(cycles);
        if (phase_ == Phase::kConfirmed) fire_auto_checkpoint_if_due();
        continue;
      }
      const std::uint64_t before = inner_->time();
      inner_->run(chunk);
      fire_auto_checkpoint_if_due();
      if (inner_->time() == before) return kNotCovered;  // inner stalled
      continue;
    }
    // Pre-confirmation: chunk through the inner engine's own cover-aware
    // run (preserving exact cover-round landings), pausing for detection
    // events and checkpoint marks.
    const std::uint64_t to_event = rounds_to_next_event();
    if (to_event == 0) {
      on_event();
      continue;
    }
    const std::uint64_t sub = std::min(chunk, to_event);
    const std::uint64_t before = inner_->time();
    const std::uint64_t covered_at =
        inner_->run_until_covered(inner_->time() + sub);
    fire_auto_checkpoint_if_due();
    if (covered_at != kNotCovered) return covered_at;
    if (inner_->time() == before) {
      // A halted backend freezes its clock; give up rather than loop
      // forever on a trajectory that can no longer move.
      return kNotCovered;
    }
  }
  return kNotCovered;
}

void CycleJumpEngine::serialize_state(StateWriter& out) const {
  inner_io_->serialize_state(out);
  if (opt_.persist_hint && phase_ == Phase::kConfirmed) {
    // Appended after every inner field so readers without hint support
    // see a byte-identical prefix and drop the one unknown key.
    out.field("cycle.hint", encode_cycle_hint(period_, deltas_));
  }
}

bool CycleJumpEngine::deserialize_state(const StateReader& in) {
  const bool ok = inner_io_->deserialize_state(in);
  invalidate();  // the trajectory is new either way
  return ok;
}

// ---- registry-driven wrapping ----

std::unique_ptr<Engine> wrap_cycle_jump(std::unique_ptr<Engine> engine,
                                        CycleJumpMode mode,
                                        const CycleJumpOptions& options,
                                        std::string* error) {
  if (engine == nullptr || mode == CycleJumpMode::kOff) return engine;
  const EngineSpec* spec =
      EngineRegistry::instance().find(engine->engine_name());
  const bool deterministic = spec != nullptr && spec->deterministic;
  if (!deterministic) {
    if (mode == CycleJumpMode::kOn) {
      if (error != nullptr) {
        *error = std::string("engine '") + engine->engine_name() +
                 "' is not deterministic: cycle leaping would corrupt its "
                 "trajectory (use --cycle-jump auto or off)";
      }
      return nullptr;
    }
    return engine;  // kAuto declines silently
  }
  return std::make_unique<CycleJumpEngine>(std::move(engine),
                                           spec->cycle_accumulators, options);
}

}  // namespace rr::sim
