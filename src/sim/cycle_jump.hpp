#pragma once

// Steady-state cycle leaping (sim layer).
//
// The paper's central structural fact is that every deterministic
// rotor-router run is eventually periodic: after cover the system locks
// into an Eulerian circulation with period 2|E| (Klasing–Kosowski–
// Pajak–Sauerwald, PODC'13; the lock-in claim is an executable invariant
// since PR 5). Dense stepping keeps paying full per-round cost for a
// trajectory that is provably a repeating loop. `CycleJumpEngine` wraps
// any *deterministic* backend and exploits the loop:
//
//   1. Detect  — Brent's algorithm over stride-sampled `config_hash()`
//      values proposes a candidate round count c with
//      hash(t) == hash(t - c).
//   2. Confirm — a candidate is never trusted: the wrapper serializes the
//      full engine state (`StateIO::serialize_state`) at the candidate
//      boundaries and requires every *rigid* field to match exactly.
//      A 64-bit hash collision therefore cannot corrupt a run: colliding
//      candidates fail confirmation, are rejected, and the wrapper falls
//      back to dense stepping (tests force this path with a stub engine
//      whose hash repeats before its state does).
//   3. Leap    — once a period is confirmed, `run(T)` advances
//      m = floor((T - t)/p) cycles in O(n) total: time += m*p, each
//      accumulator field += m*delta, node state untouched. This is exact,
//      not approximate: rigid-state equality at distance p means the
//      trajectory from t equals the trajectory from t+p round for round,
//      so the post-leap configuration is bit-identical to dense stepping
//      (the differential harness gates byte-identical rr-ckpt v2
//      snapshots at leap landings for every deterministic backend).
//
// Field classification. Engines declare their *accumulator* fields in
// `EngineSpec::cycle_accumulators` — monotone counters (time, visits,
// exits, last-visit rounds) whose per-period increment is the same from
// any settled in-cycle round. Every other serialized field is *rigid*
// and must compare exactly during confirmation; rigid fields include the
// whole dynamical configuration (pointers, agent positions, tokens,
// travel directions), which is what makes confirmation collision-proof.
// first_visit vectors are rigid on purpose: coverage is frozen on the
// cycle, and a candidate straddling a first visit simply fails one
// confirmation lap and retries a period later (the baseline slides).
//
// Why deltas are extracted one lap *after* the matching lap: the first
// rigid match proves t is on the cycle but accumulator values at t can
// still reflect pre-cycle history (a node's last visit may predate
// lock-in when t sits less than one full period past cycle entry). One
// more lap later every per-node counter has been overwritten by in-cycle
// dynamics, so the observed per-lap delta is the one that repeats
// forever.
//
// Scheduling. Leaps and dense chunks are both capped at the wrapper's
// `rounds_to_auto_checkpoint()` and followed by
// `fire_auto_checkpoint_if_due()`, exactly like the lazy ring engine's
// ballistic fast-forward, so `set_auto_checkpoint` marks fire at their
// exact rounds with files byte-identical to a dense run. Detection cost
// is bounded: probing samples the hash every `stride` rounds (stride
// doubles every generation, so overhead on a non-cycling run decays
// toward zero) and is abandoned outright once `detect_budget` rounds
// elapse or `max_rejects` candidates fail confirmation.
//
// `detect_confirmed_cycle` exposes the stride-1 exact form of the same
// machinery: it returns the *minimal* state period (the hash sequence's
// period always divides the state period, so the smallest confirming
// multiple is exact), replacing the hash-only trust in
// core/limit_cycle.hpp and core::eulerian_from_lock_in.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"
#include "sim/state_io.hpp"

namespace rr::sim {

enum class CycleJumpMode : std::uint8_t { kOff, kAuto, kOn };

const char* cycle_jump_mode_name(CycleJumpMode mode);
std::optional<CycleJumpMode> cycle_jump_mode_from_name(std::string_view name);

struct CycleJumpOptions {
  /// Probing rounds before detection is abandoned for good. 0 = adaptive:
  /// max(2^16, 32 * num_nodes) — comfortably past the 2|E| lock-in period
  /// on bounded-degree graphs while keeping never-cycling runs cheap.
  std::uint64_t detect_budget = 0;
  /// Initial rounds between hash samples. Sampling (O(n) hash) at stride
  /// >= 64 keeps probing overhead under ~2% of dense stepping even for
  /// O(k)-per-round engines; leaping by a stride multiple of the true
  /// period is still exact.
  std::uint64_t min_stride = 64;
  /// Samples per probing generation; the stride doubles between
  /// generations, so long transients decay the sampling overhead.
  std::uint64_t samples_per_generation = 512;
  /// Failed candidates tolerated before detection is abandoned.
  std::uint32_t max_rejects = 4;
  /// Sliding-baseline confirmation laps per candidate (first-visit or
  /// accumulator settling consumes at most one).
  std::uint32_t max_confirm_laps = 4;
  /// Append the confirmed (period, deltas) to serialized state as the
  /// raw "cycle.hint" field (see CycleHint). Off by default: hinted
  /// checkpoints are a deliberate opt-in because the extra trailing
  /// field breaks byte-identity with dense-run checkpoints. Readers
  /// that predate the field ignore the unknown key, so hinted files
  /// stay loadable everywhere.
  bool persist_hint = false;
  /// Non-zero: adopt a previously confirmed period (a checkpoint's
  /// decoded cycle.hint) — the wrapper skips Brent probing and enters
  /// confirmation directly at this candidate. Confirmation and delta
  /// re-extraction still run in full, so a stale or adversarial hint
  /// costs at most max_confirm_laps wasted compare laps, never a wrong
  /// leap.
  std::uint64_t hint_period = 0;
};

struct CycleJumpStats {
  std::uint64_t samples = 0;        ///< config_hash probes taken
  std::uint64_t candidates = 0;     ///< Brent matches proposed
  std::uint64_t confirm_laps = 0;   ///< full-state comparisons performed
  std::uint64_t rejects = 0;        ///< candidates that failed confirmation
  std::uint64_t leaps = 0;          ///< O(n) leap applications
  std::uint64_t leaped_rounds = 0;  ///< rounds advanced by leaping
  bool confirmed = false;           ///< a period is live right now
  bool abandoned = false;           ///< detection permanently off
  std::uint64_t period = 0;         ///< confirmed leap period (multiple of
                                    ///< the minimal state period)
};

/// Incremental Brent cycle probe over an externally sampled hash stream.
/// Feed (hash, absolute round); a repeat against the stored tortoise
/// yields a candidate cycle length in *rounds* (the sample times need not
/// be evenly spaced — the candidate is simply now minus the tortoise's
/// round, which any genuine state repeat makes a period multiple).
class BrentProbe {
 public:
  /// Returns the candidate round count on a tortoise match.
  std::optional<std::uint64_t> feed(std::uint64_t hash, std::uint64_t round) {
    if (!primed_) {
      primed_ = true;
      tortoise_ = hash;
      tortoise_round_ = round;
      return std::nullopt;
    }
    if (hash == tortoise_) return round - tortoise_round_;
    if (++lambda_ == power_) {
      tortoise_ = hash;
      tortoise_round_ = round;
      power_ *= 2;
      lambda_ = 0;
    }
    return std::nullopt;
  }

  void reset() { *this = BrentProbe{}; }

 private:
  bool primed_ = false;
  std::uint64_t tortoise_ = 0;
  std::uint64_t tortoise_round_ = 0;
  std::uint64_t power_ = 1;
  std::uint64_t lambda_ = 0;
};

/// Per-cycle increment of one accumulator field, RLE-compressed (visit
/// deltas are piecewise-constant across node ranges on regular graphs).
/// Arithmetic is mod 2^64 throughout, matching the engines' counters.
struct DeltaRun {
  std::uint64_t delta = 0;
  std::uint64_t len = 0;
};

struct AccumulatorDelta {
  std::string key;
  bool scalar = false;
  std::uint64_t scalar_delta = 0;  ///< kU64 fields ("time")
  std::vector<DeltaRun> runs;      ///< list fields, runs cover the list
};

/// A confirmed cycle as persisted in checkpoints: the "cycle.hint" raw
/// field CycleJumpEngine appends when CycleJumpOptions::persist_hint is
/// set. Text format (newline-free, so it is a legal v1 raw value):
///
///   v1 p=<period>;<key>=s:<delta>;<key>=r:<len>x<delta>,<len>x<delta>
///
/// with u64 decimal numbers throughout (deltas are mod-2^64 per-cycle
/// increments; run lists cover the accumulator list left to right). The
/// hint is advisory: a resuming wrapper feeds the period back through
/// full confirmation (CycleJumpOptions::hint_period) rather than
/// trusting the deltas, so a corrupted hint can never corrupt a run.
struct CycleHint {
  std::uint64_t period = 0;
  std::vector<AccumulatorDelta> deltas;
};

/// Renders a hint in the cycle.hint text format. Keys must not contain
/// ';', '=', or line breaks (registry accumulator keys never do); a
/// violating key or a zero period yields "" (no hint).
std::string encode_cycle_hint(std::uint64_t period,
                              const std::vector<AccumulatorDelta>& deltas);

/// Total parser for the cycle.hint field: nullopt on any malformed
/// input (wrong version tag, junk numbers, trailing bytes). Hints
/// arrive from checkpoint files and are never trusted beyond what
/// confirmation re-proves.
std::optional<CycleHint> decode_cycle_hint(std::string_view text);

/// Optional fast-leap hook. Engines that implement it apply a confirmed
/// leap by patching their own counters in place (O(n), no serialize /
/// reparse round-trip). `apply_cycle_leap` must be atomic: validate every
/// delta key and length first and return false without mutating anything
/// if any is unknown (the wrapper then falls back to the generic
/// serialize-patch-deserialize path, which is equally exact).
class CycleLeapable {
 public:
  virtual ~CycleLeapable() = default;
  [[nodiscard]] virtual bool apply_cycle_leap(
      const std::vector<AccumulatorDelta>& deltas, std::uint64_t cycles) = 0;
};

/// Exact minimal-period detection for a deterministic engine: stride-1
/// Brent over config_hash plus full-state confirmation. Advances `engine`
/// (which must implement StateIO) and returns the minimal state period
/// with the engine left on the cycle, or nullopt if no cycle is confirmed
/// within `max_steps` rounds. `accumulators` names the engine's
/// accumulator fields; nullptr looks them up from the engine registry by
/// engine_name() (nullopt if the registry does not know the engine).
struct ConfirmedCycle {
  std::uint64_t period = 0;   ///< exact minimal state period
  std::uint64_t at_time = 0;  ///< engine round when confirmed (on-cycle)
};

std::optional<ConfirmedCycle> detect_confirmed_cycle(
    Engine& engine, std::uint64_t max_steps,
    const std::vector<std::string>* accumulators = nullptr);

/// Wraps a deterministic engine with detect/confirm/leap `run()`. The
/// wrapper is a transparent Engine + StateIO: every observable
/// (time, visits, config_hash, engine_name, serialized state) forwards to
/// the inner engine, so checkpoints written through the wrapper are
/// byte-identical to dense-run checkpoints and restore as the inner
/// engine type (opting into persist_hint appends the one extra
/// "cycle.hint" trailing field, which old readers skip). Delayed rounds
/// perturb the orbit, so step_delayed invalidates any detection state
/// and restarts probing; deserialize does too.
class CycleJumpEngine final : public Engine, public StateIO {
 public:
  /// `accumulators` per the EngineSpec::cycle_accumulators contract.
  CycleJumpEngine(std::unique_ptr<Engine> inner,
                  std::vector<std::string> accumulators,
                  CycleJumpOptions options = {});
  ~CycleJumpEngine() override;

  void step() override;
  void run(std::uint64_t rounds) override;
  std::uint64_t run_until_covered(std::uint64_t max_rounds) override;

  std::uint64_t time() const override { return inner_->time(); }
  NodeId num_nodes() const override { return inner_->num_nodes(); }
  std::uint32_t num_agents() const override { return inner_->num_agents(); }
  std::uint64_t visits(NodeId v) const override { return inner_->visits(v); }
  std::uint64_t first_visit_time(NodeId v) const override {
    return inner_->first_visit_time(v);
  }
  NodeId covered_count() const override { return inner_->covered_count(); }
  std::uint64_t config_hash() const override { return inner_->config_hash(); }
  const char* engine_name() const override { return inner_->engine_name(); }

  void serialize_state(StateWriter& out) const override;
  [[nodiscard]] bool deserialize_state(const StateReader& in) override;

  const CycleJumpStats& stats() const { return stats_; }
  Engine& inner() { return *inner_; }
  const Engine& inner() const { return *inner_; }

 private:
  enum class Phase : std::uint8_t { kProbing, kConfirming, kConfirmed,
                                    kAbandoned };

  struct Detector;  // serialized-image machinery (cycle_jump.cpp)

  void do_step_delayed(const DelayFn& delay) override;

  std::uint64_t effective_budget() const;
  /// Rounds until the next probe/confirm event needs the engine paused
  /// (kNotCovered when none is pending).
  std::uint64_t rounds_to_next_event() const;
  /// Runs sampling / confirmation work due at the current round.
  void on_event();
  void invalidate();
  /// Applies m confirmed cycles; falls back to dense stepping (and
  /// abandons) if the state round-trip is rejected.
  void apply_leap(std::uint64_t cycles);
  /// Dense-steps up to `rounds` through the inner engine with detection
  /// events serviced; never crosses an auto-checkpoint mark. Returns the
  /// rounds actually consumed — short when an event confirms the cycle
  /// mid-chunk, so the caller can switch to leaping immediately.
  std::uint64_t dense_chunk(std::uint64_t rounds);

  std::unique_ptr<Engine> inner_;
  StateIO* inner_io_ = nullptr;
  CycleLeapable* inner_leap_ = nullptr;
  std::vector<std::string> accumulators_;
  CycleJumpOptions opt_;
  CycleJumpStats stats_;

  Phase phase_ = Phase::kProbing;
  BrentProbe probe_;
  std::uint64_t start_round_ = 0;   ///< budget baseline
  std::uint64_t stride_ = 0;
  std::uint64_t next_sample_ = 0;   ///< absolute round of the next probe
  std::uint64_t generation_samples_ = 0;

  std::unique_ptr<Detector> detector_;  // confirmation images + deltas
  std::uint64_t candidate_ = 0;         ///< candidate period under test
  std::uint64_t confirm_at_ = 0;        ///< absolute round of next compare
  std::uint32_t laps_ = 0;
  std::uint32_t rejects_ = 0;           ///< since the last invalidation

  std::uint64_t period_ = 0;
  std::vector<AccumulatorDelta> deltas_;
};

/// Registry-driven wrapping. kOff returns `engine` unchanged. kAuto wraps
/// iff the registry marks engine_name() deterministic (unknown engines
/// pass through untouched). kOn requires a deterministic engine: returns
/// nullptr and sets *error otherwise. The returned engine owns `engine`.
std::unique_ptr<Engine> wrap_cycle_jump(std::unique_ptr<Engine> engine,
                                        CycleJumpMode mode,
                                        const CycleJumpOptions& options = {},
                                        std::string* error = nullptr);

}  // namespace rr::sim
