#pragma once

// Engine-generic state (de)serialization contract (sim layer).
//
// The paper's experiments are defined by reproducible configurations —
// graph, agent multiset, rotor field — and the long sweeps the roadmap
// calls for need those configurations to survive a process restart.
// `StateIO` is the contract every sim::Engine backend implements: it
// serializes the engine's *full* dynamical state (time, rotor/pointer
// field, agent positions, visit statistics, RNG stream for stochastic
// engines) into named text fields, and restores it bit-exactly, so a
// resumed run is indistinguishable from an uninterrupted one (per-round
// config_hash / visits / cover-time equality is enforced by the
// differential harness's save→load→continue lane).
//
// Fields are key=value lines; the framing (header with engine name and
// graph descriptor, versioning, file I/O, the engine factory) lives in
// sim/checkpoint.{hpp,cpp}. Readers never abort on malformed input —
// checkpoints are external data — every parse failure surfaces as
// false/nullopt.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rr::sim {

/// Sentinel encoded as '-' in u64 lists (kNotCovered entries of
/// first_visit vectors and friends).
inline constexpr std::uint64_t kStateSentinel = ~std::uint64_t{0};

// ---- writer ----

/// Accumulates `key=value` lines. Keys must be unique per state block;
/// values must not contain newlines (the codecs below never produce any).
class StateWriter {
 public:
  void field(std::string_view key, std::string_view value) {
    text_.append(key);
    text_.push_back('=');
    text_.append(value);
    text_.push_back('\n');
  }

  void field_u64(std::string_view key, std::uint64_t value) {
    field(key, std::to_string(value));
  }

  /// Comma list; kStateSentinel entries encode as '-'.
  template <typename Int>
  void field_list(std::string_view key, const std::vector<Int>& values) {
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out.push_back(',');
      const auto v = static_cast<std::uint64_t>(values[i]);
      if (v == kStateSentinel) {
        out.push_back('-');
      } else {
        out += std::to_string(v);
      }
    }
    field(key, out);
  }

  /// Direction string for ring pointer fields: 'c' = 0 (clockwise),
  /// 'w' = 1 (anticlockwise); matches core/snapshot's encoding.
  void field_dirs(std::string_view key, const std::vector<std::uint8_t>& dirs) {
    std::string out(dirs.size(), 'c');
    for (std::size_t i = 0; i < dirs.size(); ++i) {
      if (dirs[i] != 0) out[i] = 'w';
    }
    field(key, out);
  }

  /// Bit string ('0'/'1') for per-node boolean state.
  void field_bits(std::string_view key, const std::vector<std::uint8_t>& bits) {
    std::string out(bits.size(), '0');
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (bits[i] != 0) out[i] = '1';
    }
    field(key, out);
  }

  /// Sparse "index:value" comma list (agent sites, pointer runs).
  void field_pairs(std::string_view key,
                   const std::vector<std::pair<std::uint64_t, std::uint64_t>>& pairs) {
    std::string out;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += std::to_string(pairs[i].first);
      out.push_back(':');
      out += std::to_string(pairs[i].second);
    }
    field(key, out);
  }

  const std::string& text() const { return text_; }

 private:
  std::string text_;
};

// ---- reader ----

/// Parses `key=value` lines into a lookup table. All accessors are
/// total: missing keys, malformed numbers, out-of-range entries return
/// nullopt (never abort — checkpoints are external input).
class StateReader {
 public:
  /// `lines`: the body of a state block (no header). Duplicate keys make
  /// the block malformed.
  static std::optional<StateReader> parse(std::string_view body);

  bool has(std::string_view key) const { return find(key) != nullptr; }

  std::optional<std::string_view> raw(std::string_view key) const {
    const std::string* v = find(key);
    if (!v) return std::nullopt;
    return std::string_view(*v);
  }

  std::optional<std::uint64_t> u64(std::string_view key) const;

  /// Comma list of u64; '-' decodes to kStateSentinel. `expected` > 0
  /// additionally requires that exact length.
  std::optional<std::vector<std::uint64_t>> u64_list(std::string_view key,
                                                     std::size_t expected = 0) const;

  /// Direction string: 'c' -> 0, 'w' -> 1; exact length `expected`.
  std::optional<std::vector<std::uint8_t>> dirs(std::string_view key,
                                                std::size_t expected) const {
    return two_symbol(key, expected, 'c', 'w');
  }

  /// Bit string: '0' -> 0, '1' -> 1; exact length `expected`.
  std::optional<std::vector<std::uint8_t>> bits(std::string_view key,
                                                std::size_t expected) const {
    return two_symbol(key, expected, '0', '1');
  }

  /// Sparse "index:value" list, indices strictly increasing.
  std::optional<std::vector<std::pair<std::uint64_t, std::uint64_t>>> pairs(
      std::string_view key) const;

 private:
  std::optional<std::vector<std::uint8_t>> two_symbol(std::string_view key,
                                                      std::size_t expected,
                                                      char zero,
                                                      char one) const {
    const std::string* raw = find(key);
    if (!raw || raw->size() != expected) return std::nullopt;
    std::vector<std::uint8_t> out(raw->size());
    for (std::size_t i = 0; i < raw->size(); ++i) {
      if ((*raw)[i] == one) {
        out[i] = 1;
      } else if ((*raw)[i] != zero) {
        return std::nullopt;
      }
    }
    return out;
  }

  const std::string* find(std::string_view key) const {
    for (const auto& [k, v] : fields_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

// ---- the contract ----

/// Implemented by every engine backend alongside sim::Engine. The engine
/// must already have the right topology (same graph / ring size) before
/// deserialize_state is called; the checkpoint layer guarantees this by
/// rebuilding the graph from the checkpoint's descriptor first.
class StateIO {
 public:
  virtual ~StateIO() = default;

  /// Writes the full dynamical state as named fields.
  virtual void serialize_state(StateWriter& out) const = 0;

  /// Restores a state written by serialize_state. Returns false (leaving
  /// the engine in an unspecified but destructible state) on any
  /// malformed or inconsistent field.
  [[nodiscard]] virtual bool deserialize_state(const StateReader& in) = 0;
};

}  // namespace rr::sim
