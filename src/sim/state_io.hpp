#pragma once

// Engine-generic state (de)serialization contract (sim layer).
//
// The paper's experiments are defined by reproducible configurations —
// graph, agent multiset, rotor field — and the long sweeps the roadmap
// calls for need those configurations to survive a process restart.
// `StateIO` is the contract every sim::Engine backend implements: it
// serializes the engine's *full* dynamical state (time, rotor/pointer
// field, agent positions, visit statistics, RNG stream for stochastic
// engines) into named typed fields, and restores it bit-exactly, so a
// resumed run is indistinguishable from an uninterrupted one (per-round
// config_hash / visits / cover-time equality is enforced by the
// differential harness's save→load→continue lane).
//
// The writer records fields *typed* (scalar, u64 list, direction/bit
// string, sparse pairs) and the two checkpoint codecs render them:
// rr-ckpt v1 as key=value text lines (text(), byte-identical to the
// historical format), rr-ckpt v2 as delta/varint binary frames
// (sim/ckpt_v2.hpp). The reader symmetrically holds either text values
// (v1 parse) or packed binary values (v2 decode); accessors handle both,
// and packed lists stay encoded until an accessor names its expected
// length, so a crafted element count cannot force a giant allocation.
//
// Framing (header with engine name and graph descriptor, versioning,
// file I/O, the engine factory) lives in sim/checkpoint.{hpp,cpp}.
// Readers never abort on malformed input — checkpoints are external
// data — every parse failure surfaces as false/nullopt.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/parse.hpp"
#include "sim/wire.hpp"

namespace rr::sim {

/// Sentinel encoded as '-' in v1 u64 lists (kNotCovered entries of
/// first_visit vectors and friends). v2 needs no special case: deltas
/// are mod 2^64, so the sentinel is just a wrapping step.
inline constexpr std::uint64_t kStateSentinel = ~std::uint64_t{0};

/// Upper bound on the length of a packed v2 list decoded through an
/// accessor that did not state an expected length (RNG streams, token
/// lists, Eulerian circuits — all bounded by the in-RAM arc cap).
/// Per-node fields pass their exact expected length instead.
inline constexpr std::uint64_t kMaxLooseListElements = 1ull << 28;

// ---- writer ----

/// One recorded field. Engines only append through the typed helpers
/// below; the struct is public so the checkpoint codecs can walk the
/// recorded sequence.
struct WriterField {
  enum class Kind : std::uint8_t {
    kRaw, kU64, kU64List, kDirs, kBits, kPairs, kU64ListView,
  };

  Kind kind = Kind::kRaw;
  std::string key;
  std::string raw;                        ///< kRaw
  std::uint64_t scalar = 0;               ///< kU64
  std::vector<std::uint64_t> list;        ///< kU64List
  std::vector<std::uint8_t> symbols;      ///< kDirs / kBits (0 or 1 per entry)
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;  ///< kPairs
  std::uint64_t view_size = 0;            ///< kU64ListView element count
  /// kU64ListView element accessor; must be pure and thread-safe (the v2
  /// codec evaluates disjoint index ranges from parallel frame encoders).
  /// Used only when view_base is null.
  std::function<std::uint64_t(std::uint64_t)> view;
  /// kU64ListView strided fast path: element i is the little-endian
  /// view_width-byte (4 or 8) unsigned integer at view_base + i *
  /// view_stride. Lets the codecs read struct-of-arrays engine state
  /// with an inlined load instead of a per-element indirect call.
  const unsigned char* view_base = nullptr;
  std::uint32_t view_stride = 0;
  std::uint8_t view_width = 0;

  /// Element i of a kU64ListView field (slow generic path; the codecs
  /// specialize on view_base/view_width in their hot loops).
  std::uint64_t view_at(std::uint64_t i) const {
    if (view_base == nullptr) return view(i);
    if (view_width == 4) {
      std::uint32_t v;
      __builtin_memcpy(&v, view_base + i * view_stride, 4);
      return v;
    }
    std::uint64_t v;
    __builtin_memcpy(&v, view_base + i * view_stride, 8);
    return v;
  }
};

/// Accumulates typed fields. Keys must be unique per state block; raw
/// values must not contain newlines (the codecs below never produce any).
class StateWriter {
 public:
  void field(std::string_view key, std::string_view value) {
    WriterField f;
    f.kind = WriterField::Kind::kRaw;
    f.key = key;
    f.raw = value;
    push(std::move(f));
  }

  void field_u64(std::string_view key, std::uint64_t value) {
    WriterField f;
    f.kind = WriterField::Kind::kU64;
    f.key = key;
    f.scalar = value;
    push(std::move(f));
  }

  /// u64 list; kStateSentinel entries render as '-' in v1 text.
  template <typename Int>
  void field_list(std::string_view key, const std::vector<Int>& values) {
    WriterField f;
    f.kind = WriterField::Kind::kU64List;
    f.key = key;
    f.list.reserve(values.size());
    for (const Int& v : values) f.list.push_back(static_cast<std::uint64_t>(v));
    push(std::move(f));
  }

  /// Lazy u64 list: the codecs read elements straight from `at(i)` for
  /// i in [0, count) instead of a materialized vector, so serializing an
  /// out-of-core engine never allocates O(n) intermediates. Identical on
  /// the wire to field_list of the same values. `at` must stay valid
  /// until the owning StateWriter's last use (the checkpoint writers
  /// consume the writer while the engine is alive), be pure, and be
  /// thread-safe across disjoint indices.
  void field_list_view(std::string_view key, std::uint64_t count,
                       std::function<std::uint64_t(std::uint64_t)> at) {
    WriterField f;
    f.kind = WriterField::Kind::kU64ListView;
    f.key = key;
    f.view_size = count;
    f.view = std::move(at);
    push(std::move(f));
  }

  /// Strided flavor of field_list_view: element i is the `width`-byte
  /// (4 or 8) native-endian unsigned integer at base + i * stride —
  /// one struct member across an engine's state array. Same lifetime
  /// rules; the codecs read it with an inlined load.
  void field_list_strided(std::string_view key, std::uint64_t count,
                          const void* base, std::uint32_t stride,
                          std::uint8_t width) {
    WriterField f;
    f.kind = WriterField::Kind::kU64ListView;
    f.key = key;
    f.view_size = count;
    f.view_base = static_cast<const unsigned char*>(base);
    f.view_stride = stride;
    f.view_width = width;
    push(std::move(f));
  }

  /// Direction field for ring pointer state: 0 = clockwise ('c' in v1),
  /// 1 = anticlockwise ('w'); matches core/snapshot's encoding.
  void field_dirs(std::string_view key, const std::vector<std::uint8_t>& dirs) {
    push_symbols(WriterField::Kind::kDirs, key, dirs);
  }

  /// Per-node boolean field ('0'/'1' in v1 text).
  void field_bits(std::string_view key, const std::vector<std::uint8_t>& bits) {
    push_symbols(WriterField::Kind::kBits, key, bits);
  }

  /// Sparse "index:value" field (agent sites, pointer runs); indices must
  /// be strictly increasing.
  void field_pairs(std::string_view key,
                   const std::vector<std::pair<std::uint64_t, std::uint64_t>>& pairs) {
    WriterField f;
    f.kind = WriterField::Kind::kPairs;
    f.key = key;
    f.pairs = pairs;
    push(std::move(f));
  }

  /// The recorded field sequence, in append order (consumed by the v2
  /// frame encoder).
  const std::vector<WriterField>& fields() const { return fields_; }

  /// v1 text rendering (key=value lines, one per field, append order).
  /// Rendered on demand and cached — the v2 path never materializes it.
  const std::string& text() const;

 private:
  void push(WriterField f) {
    fields_.push_back(std::move(f));
    text_.clear();
  }

  void push_symbols(WriterField::Kind kind, std::string_view key,
                    const std::vector<std::uint8_t>& symbols) {
    WriterField f;
    f.kind = kind;
    f.key = key;
    f.symbols.reserve(symbols.size());
    for (std::uint8_t s : symbols) f.symbols.push_back(s != 0 ? 1 : 0);
    push(std::move(f));
  }

  std::vector<WriterField> fields_;
  mutable std::string text_;  ///< lazily rendered v1 cache
};

// ---- reader ----

/// One still-encoded segment of a packed v2 field. Per-node fields are
/// split across checkpoint frames; each frame's segment is independently
/// decodable (its delta stream restarts from the 0 baseline), and the
/// accessors concatenate segments in order.
struct PackedSegment {
  std::uint64_t count = 0;  ///< elements in this segment
  std::uint8_t enc = 0;     ///< lists: 0 delta, 1 RLE; symbols: 0 dirs, 1 bits
  std::string bytes;        ///< encoded payload
};

/// One decoded field value. v1 parsing stores the raw text value
/// (kText); the v2 decoder stores scalars, sparse pairs, and *packed*
/// list payloads that the accessors decode lazily.
struct ReaderValue {
  enum class Kind : std::uint8_t {
    kText,           ///< v1 text value, or a v2 raw field
    kU64,            ///< decoded scalar
    kPackedList,     ///< u64 list: varint segments (see PackedSegment)
    kPackedSymbols,  ///< LSB-first bit-packed segments
    kPairs,          ///< decoded sparse pairs, indices strictly increasing
  };

  Kind kind = Kind::kText;
  std::string text;                   ///< kText value
  std::uint64_t scalar = 0;           ///< kU64
  std::vector<PackedSegment> segs;    ///< packed forms, in node order
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pair_list;  ///< kPairs
};

namespace detail {

/// Total element count across a packed field's segments; nullopt on
/// overflow (crafted counts must not wrap the sum).
inline std::optional<std::uint64_t> packed_count(
    const std::vector<PackedSegment>& segs) {
  std::uint64_t total = 0;
  for (const PackedSegment& s : segs) {
    if (s.count > ~std::uint64_t{0} - total) return std::nullopt;
    total += s.count;
  }
  return total;
}

/// Decodes one packed u64 list segment (v2 tag 2 or 6), invoking
/// visit(*index++, value) for each of its `seg.count` values. The whole
/// payload must be consumed exactly. Total: any malformed varint,
/// short/long payload, or run-length mismatch returns false, as does a
/// false-returning visitor (caller-side validation). Nothing is
/// materialized; peak memory is O(1) regardless of seg.count. Header
/// template so restore-path visitors inline into the decode loop.
template <typename Visit>
bool decode_packed_list(const PackedSegment& seg, std::uint64_t* index,
                        Visit&& visit) {
  const auto* data = reinterpret_cast<const std::uint8_t*>(seg.bytes.data());
  const std::size_t size = seg.bytes.size();
  std::size_t pos = 0;
  std::uint64_t value = 0;  // running value; first delta is from 0
  std::uint64_t produced = 0;
  if (seg.enc == 0) {  // plain per-element deltas
    for (; produced < seg.count; ++produced) {
      const auto z = wire::get_varint(data, size, &pos);
      if (!z) return false;
      value += wire::unzigzag(*z);
      if (!visit((*index)++, value)) return false;
    }
  } else if (seg.enc == 1) {  // runs of (length, repeated delta)
    while (produced < seg.count) {
      const auto run = wire::get_varint(data, size, &pos);
      if (!run || *run == 0 || *run > seg.count - produced) return false;
      const auto z = wire::get_varint(data, size, &pos);
      if (!z) return false;
      const std::uint64_t delta = wire::unzigzag(*z);
      for (std::uint64_t i = 0; i < *run; ++i) {
        value += delta;
        if (!visit((*index)++, value)) return false;
      }
      produced += *run;
    }
  } else {
    return false;
  }
  return pos == size;  // trailing payload bytes -> malformed
}

/// Streams a text (v1) list value: comma-separated u64s, '-' for the
/// sentinel. Visits each element in order; false on malformed numbers
/// or a rejecting visitor. Leaves the element count in *index.
template <typename Visit>
bool visit_text_list(std::string_view text, std::uint64_t* index,
                     Visit&& visit) {
  if (text.empty()) return true;
  std::size_t pos = 0;
  while (true) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view item = text.substr(pos, comma - pos);
    std::uint64_t value = 0;
    if (item == "-") {
      value = kStateSentinel;
    } else {
      const auto parsed = parse_u64(item);
      if (!parsed) return false;
      value = *parsed;
    }
    if (!visit((*index)++, value)) return false;
    if (comma == text.size()) break;
    pos = comma + 1;
  }
  return true;
}

}  // namespace detail

/// Forward cursor over one u64 list field, for restores that pull
/// several per-node fields in lockstep (one pass over the engine's
/// state memory instead of one per field — the difference between a
/// cache-resident and a memory-bound restore at 1e8 nodes). Obtained
/// from StateReader::u64_list_cursor, which validates the element count
/// upfront. The unit of progress is a *run*: element j of a run holds
/// value + j*delta (mod 2^64), matching the v2 delta-RLE wire form, so
/// a caller can recognize a constant span (delta == 0) and handle it in
/// O(1) instead of per element. Plain-delta segments and v1 text yield
/// length-1 runs. nullopt on any malformed payload; a run never crosses
/// a segment boundary. After exactly `expected` elements the caller
/// must check finished(), which rejects trailing payload bytes or
/// surplus text elements (the same canonical-form rules as u64_list).
class U64ListCursor {
 public:
  struct Run {
    std::uint64_t value = 0;  ///< first element of the run
    std::uint64_t delta = 0;  ///< per-element increment
    std::uint64_t len = 0;    ///< number of elements, >= 1
  };

  std::optional<Run> next_run() {
    if (segs_ == nullptr) return next_text();
    while (seg_i_ < seg_end_) {
      const PackedSegment& s = (*segs_)[seg_i_];
      if (seg_produced_ == s.count) {
        if (pos_ != s.bytes.size()) return std::nullopt;  // trailing bytes
        ++seg_i_;
        pos_ = 0;
        seg_produced_ = 0;
        value_ = 0;  // each segment restarts its delta baseline
        continue;
      }
      const auto* data = reinterpret_cast<const std::uint8_t*>(s.bytes.data());
      if (s.enc == 0) {  // plain per-element deltas
        const auto z = wire::get_varint(data, s.bytes.size(), &pos_);
        if (!z) return std::nullopt;
        const std::uint64_t delta = wire::unzigzag(*z);
        value_ += delta;
        ++seg_produced_;
        return Run{value_, delta, 1};
      }
      if (s.enc != 1) return std::nullopt;
      const auto len = wire::get_varint(data, s.bytes.size(), &pos_);
      if (!len || *len == 0 || *len > s.count - seg_produced_) {
        return std::nullopt;
      }
      const auto z = wire::get_varint(data, s.bytes.size(), &pos_);
      if (!z) return std::nullopt;
      const std::uint64_t delta = wire::unzigzag(*z);
      const Run run{value_ + delta, delta, *len};
      value_ += delta * *len;
      seg_produced_ += *len;
      return run;
    }
    return std::nullopt;  // pulled past the validated total
  }

  /// True once the field is consumed exactly: every packed segment's
  /// payload fully read, or the text value has no surplus elements.
  bool finished() {
    if (segs_ == nullptr) return tpos_ == text_.size() + 1 || text_.empty();
    while (seg_i_ < seg_end_) {
      const PackedSegment& s = (*segs_)[seg_i_];
      if (seg_produced_ != s.count || pos_ != s.bytes.size()) return false;
      ++seg_i_;
      pos_ = 0;
      seg_produced_ = 0;
    }
    return true;
  }

 private:
  friend class StateReader;
  explicit U64ListCursor(const std::vector<PackedSegment>* segs)
      : U64ListCursor(segs, 0, segs->size()) {}
  /// Window form: iterates segments [seg_begin, seg_end) only. Each
  /// segment's delta stream restarts from the 0 baseline, so a window is
  /// decodable with no knowledge of the segments before it — this is
  /// what lets the restore path hand disjoint windows to pool threads.
  U64ListCursor(const std::vector<PackedSegment>* segs, std::size_t seg_begin,
                std::size_t seg_end)
      : segs_(segs), seg_i_(seg_begin), seg_end_(seg_end) {}
  explicit U64ListCursor(std::string_view text) : text_(text) {}

  std::optional<Run> next_text() {
    if (tpos_ >= text_.size()) return std::nullopt;
    std::size_t comma = text_.find(',', tpos_);
    if (comma == std::string_view::npos) comma = text_.size();
    const std::string_view item = text_.substr(tpos_, comma - tpos_);
    tpos_ = comma + 1;  // lands at size()+1 after the final element
    if (item == "-") return Run{kStateSentinel, 0, 1};
    const auto v = parse_u64(item);
    if (!v) return std::nullopt;
    return Run{*v, 0, 1};
  }

  // Packed mode (segs_ != nullptr).
  const std::vector<PackedSegment>* segs_ = nullptr;
  std::size_t seg_i_ = 0;
  std::size_t seg_end_ = 0;
  std::size_t pos_ = 0;
  std::uint64_t seg_produced_ = 0;
  std::uint64_t value_ = 0;
  // Text mode.
  std::string_view text_;
  std::size_t tpos_ = 0;
};

/// Field lookup over either representation. All accessors are total:
/// missing keys, malformed numbers, out-of-range entries, truncated or
/// non-minimal varints return nullopt (never abort — checkpoints are
/// external input).
class StateReader {
 public:
  /// v1 path: parses the `key=value` body of a state block (no header).
  /// Duplicate keys make the block malformed.
  static std::optional<StateReader> parse(std::string_view body);

  /// v2 / streaming path: adopts already-decoded values. nullopt on
  /// duplicate keys.
  static std::optional<StateReader> from_fields(
      std::vector<std::pair<std::string, ReaderValue>> fields);

  bool has(std::string_view key) const { return find(key) != nullptr; }

  /// Raw text value; nullopt for keys holding typed v2 values.
  std::optional<std::string_view> raw(std::string_view key) const {
    const ReaderValue* v = find(key);
    if (!v || v->kind != ReaderValue::Kind::kText) return std::nullopt;
    return std::string_view(v->text);
  }

  std::optional<std::uint64_t> u64(std::string_view key) const;

  /// u64 list ('-' decodes to kStateSentinel in v1 text). `expected` > 0
  /// requires that exact length; 0 accepts any length up to
  /// kMaxLooseListElements.
  std::optional<std::vector<std::uint64_t>> u64_list(std::string_view key,
                                                     std::size_t expected = 0) const;

  /// Streaming u64 list: invokes visit(index, value) for each element in
  /// order instead of materializing the vector, so a caller restoring an
  /// out-of-core engine validates and applies per-node fields in one
  /// pass with O(1) extra memory. Length rules as u64_list. Returns
  /// false on any malformed field or when `visit` returns false (the
  /// caller's validation failed); elements already visited stay applied
  /// — the StateIO contract leaves failed restores unspecified. Header
  /// template so the visitor inlines into the decode loop.
  template <typename Visit>
  bool u64_list_each(std::string_view key, std::size_t expected,
                     Visit&& visit) const {
    const ReaderValue* v = find(key);
    if (!v) return false;
    if (v->kind == ReaderValue::Kind::kPackedList) {
      const auto total = detail::packed_count(v->segs);
      if (!total) return false;
      if (expected > 0 ? *total != expected : *total > kMaxLooseListElements) {
        return false;
      }
      std::uint64_t index = 0;
      for (const PackedSegment& seg : v->segs) {
        if (!detail::decode_packed_list(seg, &index, visit)) return false;
      }
      return true;
    }
    if (v->kind != ReaderValue::Kind::kText) return false;
    // Text length bounds the element count, so streaming cannot be
    // forced past the document's own size; the length rule still
    // applies exactly.
    std::uint64_t index = 0;
    const std::uint64_t cap = expected > 0 ? expected : kMaxLooseListElements;
    const auto bounded = [&](std::uint64_t i, std::uint64_t value) {
      return i < cap && visit(i, value);
    };
    if (!detail::visit_text_list(std::string_view(v->text), &index, bounded)) {
      return false;
    }
    return expected == 0 || index == expected;
  }

  /// Cursor form of u64_list_each, for restores that pull several
  /// per-node lists in lockstep (one pass over the engine's state arrays
  /// instead of one per field). Requires expected > 0; for packed fields
  /// the total element count is validated here, for v1 text the caller's
  /// next()/finished() protocol enforces it. nullopt on a missing or
  /// wrong-typed field or a count mismatch.
  std::optional<U64ListCursor> u64_list_cursor(std::string_view key,
                                               std::size_t expected) const {
    if (expected == 0) return std::nullopt;
    const ReaderValue* v = find(key);
    if (!v) return std::nullopt;
    if (v->kind == ReaderValue::Kind::kPackedList) {
      const auto total = detail::packed_count(v->segs);
      if (!total || *total != expected) return std::nullopt;
      return U64ListCursor(&v->segs);
    }
    if (v->kind != ReaderValue::Kind::kText) return std::nullopt;
    return U64ListCursor(std::string_view(v->text));
  }

  /// Cumulative element counts at the packed-segment boundaries of a u64
  /// list field: [0, c0, c0+c1, ..., expected]. The parallel restore
  /// path compares boundary vectors across its lockstep fields — when
  /// they agree, the node range splits into windows each thread can
  /// decode independently. nullopt for v1 text fields (no segment
  /// structure — callers fall back to the sequential walk), missing or
  /// wrong-typed keys, and count mismatches.
  std::optional<std::vector<std::uint64_t>> u64_list_segment_bounds(
      std::string_view key, std::size_t expected) const {
    if (expected == 0) return std::nullopt;
    const ReaderValue* v = find(key);
    if (!v || v->kind != ReaderValue::Kind::kPackedList) return std::nullopt;
    std::vector<std::uint64_t> bounds;
    bounds.reserve(v->segs.size() + 1);
    bounds.push_back(0);
    std::uint64_t total = 0;
    for (const PackedSegment& s : v->segs) {
      if (s.count > ~std::uint64_t{0} - total) return std::nullopt;
      total += s.count;
      bounds.push_back(total);
    }
    if (total != expected) return std::nullopt;
    return bounds;
  }

  /// Cursor over segments [seg_begin, seg_end) of a *packed* u64 list
  /// field. Segments restart their delta baseline, so a window decodes
  /// with no knowledge of earlier segments; the parallel restore hands
  /// disjoint windows to pool threads. Validate the segment layout with
  /// u64_list_segment_bounds first — this only checks the indices.
  std::optional<U64ListCursor> u64_list_cursor_window(
      std::string_view key, std::size_t seg_begin, std::size_t seg_end) const {
    const ReaderValue* v = find(key);
    if (!v || v->kind != ReaderValue::Kind::kPackedList) return std::nullopt;
    if (seg_begin > seg_end || seg_end > v->segs.size()) return std::nullopt;
    return U64ListCursor(&v->segs, seg_begin, seg_end);
  }

  /// Direction field: v1 'c' -> 0, 'w' -> 1; exact length `expected`.
  std::optional<std::vector<std::uint8_t>> dirs(std::string_view key,
                                                std::size_t expected) const {
    return symbols(key, expected, /*enc=*/0, 'c', 'w');
  }

  /// Bit field: v1 '0' -> 0, '1' -> 1; exact length `expected`.
  std::optional<std::vector<std::uint8_t>> bits(std::string_view key,
                                                std::size_t expected) const {
    return symbols(key, expected, /*enc=*/1, '0', '1');
  }

  /// Sparse "index:value" list, indices strictly increasing.
  std::optional<std::vector<std::pair<std::uint64_t, std::uint64_t>>> pairs(
      std::string_view key) const;

 private:
  std::optional<std::vector<std::uint8_t>> symbols(std::string_view key,
                                                   std::size_t expected,
                                                   std::uint8_t enc, char zero,
                                                   char one) const;

  const ReaderValue* find(std::string_view key) const {
    for (const auto& [k, v] : fields_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  std::vector<std::pair<std::string, ReaderValue>> fields_;
};

// ---- the contract ----

/// Implemented by every engine backend alongside sim::Engine. The engine
/// must already have the right topology (same graph / ring size) before
/// deserialize_state is called; the checkpoint layer guarantees this by
/// rebuilding the graph from the checkpoint's descriptor first.
class StateIO {
 public:
  virtual ~StateIO() = default;

  /// Writes the full dynamical state as named fields.
  virtual void serialize_state(StateWriter& out) const = 0;

  /// Restores a state written by serialize_state. Returns false (leaving
  /// the engine in an unspecified but destructible state) on any
  /// malformed or inconsistent field.
  [[nodiscard]] virtual bool deserialize_state(const StateReader& in) = 0;
};

}  // namespace rr::sim
