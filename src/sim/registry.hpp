#pragma once

// Engine registry (sim layer): the single engine-construction path.
//
// The paper's argument rests on three coupled views of the same dynamics —
// the discrete rotor walk, the Eulerian token circulation it locks into,
// and the continuous domain-size ODE of Sec. 2.3 — and the repository
// keeps one sim::Engine backend per view (plus the ring specializations
// and the random-walk baseline). Before this registry existed, every
// construction site (rr_cli, sim::restore_checkpoint, the differential
// harness, the engine-sweep benches) grew its own if/else ladder over
// engine names, and the ladders diverged (restore_checkpoint_sharded).
//
// EngineRegistry replaces the ladders with one name-keyed table of
// EngineSpec entries. A spec owns everything a driver needs to know about
// a backend without including its header:
//
//   - `name` (CLI key, e.g. "lazy") and `engine_name` (the checkpoint
//     header key, sim::Engine::engine_name(), e.g.
//     "lazy-ring-rotor-router") — find() matches either;
//   - its substrate requirement (descriptor kinds it runs on; empty =
//     any connected graph) — checked before any factory runs, so a
//     mismatch fails cleanly instead of aborting inside a constructor;
//   - whether it supports shard-parallel stepping (--shards);
//   - a `factory` building a fresh engine from a graph descriptor and an
//     EngineConfig, and a `restore` hook rebuilding one from a
//     checkpoint's state body (sim/checkpoint.hpp calls it).
//
// Adding a backend is one registration block in sim/builtin_engines.cpp
// plus the differential gate in tests/ — no driver changes: rr_cli's
// `engines` listing, checkpoint restore, and the engine-sweep benches all
// pick the new entry up from the table (see README "Adding a backend").
//
// Every lookup is total: unknown names, duplicate registrations, and
// substrate mismatches surface as nullptr/false with an error message,
// never an abort (engine names arrive from CLI flags and checkpoint
// files).

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/descriptor.hpp"
#include "sim/engine.hpp"
#include "sim/state_io.hpp"
#include "sim/thread_pool.hpp"

namespace rr::sim {

/// Everything a factory may need beyond the substrate. Fields a backend
/// does not use are ignored (e.g. `seed` by the deterministic engines,
/// `shards` by engines whose spec says supports_shards == false).
struct EngineConfig {
  /// Multiset of starting nodes (k = agents.size()); must be non-empty
  /// with every entry < num_nodes of the substrate.
  std::vector<NodeId> agents;
  /// Initial rotor field for engines that have one; empty = engine
  /// default (all ports 0 / all clockwise). Ring engines require entries
  /// in {0, 1}.
  std::vector<std::uint32_t> pointers;
  /// RNG seed for stochastic backends.
  std::uint64_t seed = 1;
  /// > 1 requests shard-parallel stepping from shard-capable backends.
  std::uint32_t shards = 1;
  /// Shared fork-join pool for sharded stepping (nullptr = engine-owned).
  ThreadPool* pool = nullptr;
  /// Worker count for the distributed backend ("dist"); clamped to
  /// [1, num_nodes] like shard counts.
  std::uint32_t dist_workers = 2;
  /// "dist" spill batch size: cross-shard arrivals flush mid-scan once
  /// this many distinct frontier slots accumulate for one destination.
  std::uint64_t dist_spill_batch = 256;
  /// rr_noded binary to fork/exec per "dist" worker; empty = in-process
  /// worker threads over socketpairs (same loop, same protocol).
  std::string dist_noded;
  /// Non-empty: "dist" listens on this AF_UNIX path and accepts
  /// externally launched `rr_noded --connect` workers instead.
  std::string dist_socket;
};

struct EngineSpec {
  std::string name;         ///< short CLI key, e.g. "rotor"
  std::string engine_name;  ///< Engine::engine_name() / checkpoint key
  std::string substrate;    ///< human-readable substrate requirement
  std::string summary;      ///< one-line description for listings
  /// Descriptor kinds the backend accepts; empty = any connected graph.
  std::vector<std::string> substrate_kinds;
  /// True if EngineConfig::shards > 1 selects a shard-parallel stepper.
  bool supports_shards = false;
  /// True if the trajectory is a pure function of the configuration (no
  /// RNG, no floating point): eligible for steady-state cycle leaping
  /// (sim/cycle_jump.hpp). Stochastic and continuous backends stay false.
  bool deterministic = false;
  /// Opt-in: this spec deliberately reports the same engine_name as an
  /// earlier registration because its checkpoints are interchangeable
  /// with that backend's (the distributed stepper writes "rotor-router"
  /// documents). find() is first-match, so the earlier spec keeps owning
  /// restores by engine_name; this spec is reached via its CLI key.
  bool shares_engine_name = false;
  /// serialize_state keys of monotone accumulator fields (u64 scalar or
  /// u64 list) whose per-period increment is constant from any settled
  /// in-cycle round — time, visit/exit counters, last-visit rounds.
  /// Cycle-jump confirmation compares every *other* field exactly and
  /// leaps these by per-cycle deltas; see sim/cycle_jump.hpp for the
  /// soundness contract. Meaningful only when `deterministic`.
  std::vector<std::string> cycle_accumulators;

  /// Builds a fresh engine. The descriptor has already passed the
  /// substrate check; the factory returns nullptr (optionally setting
  /// `error`) on config problems (bad agents, malformed pointers).
  std::function<std::unique_ptr<Engine>(const graph::GraphDescriptor& d,
                                        const EngineConfig& config,
                                        std::string* error)>
      factory;

  /// Rebuilds an engine from a checkpoint state body written by the
  /// backend's serialize_state. nullptr on any malformed/inconsistent
  /// state (never abort: checkpoints are external input).
  std::function<std::unique_ptr<Engine>(const graph::GraphDescriptor& d,
                                        const StateReader& state,
                                        const EngineConfig& config)>
      restore;
};

class EngineRegistry {
 public:
  /// The process-wide registry, with every built-in backend registered
  /// (sim/builtin_engines.cpp). Construct a fresh EngineRegistry directly
  /// only in tests.
  static EngineRegistry& instance();

  EngineRegistry() = default;

  /// Registers a backend. Returns false (and leaves the table unchanged)
  /// if the spec is incomplete or either name collides with an existing
  /// entry — duplicate registration is a caller bug surfaced as a value,
  /// never an abort.
  bool add(EngineSpec spec);

  /// Looks up a spec by CLI key or by engine_name; nullptr if unknown.
  /// Returned pointers stay valid for the registry's lifetime, across
  /// later add() calls (specs live in a stable-address deque) — callers
  /// (the bench sweep's static registration) cache them.
  const EngineSpec* find(std::string_view name_or_engine_name) const;

  /// All registered specs in registration order (stable for listings).
  std::vector<const EngineSpec*> list() const;

  /// True if `d`'s kind satisfies the spec's substrate requirement.
  static bool substrate_ok(const EngineSpec& spec,
                           const graph::GraphDescriptor& d);

  /// The construction path: resolves the name, validates substrate and
  /// agents, and invokes the factory. nullptr on any failure, with a
  /// diagnostic in `*error` when provided.
  std::unique_ptr<Engine> create(std::string_view name,
                                 const graph::GraphDescriptor& descriptor,
                                 const EngineConfig& config,
                                 std::string* error = nullptr) const;

  /// As create, from descriptor text (parses first).
  std::unique_ptr<Engine> create(std::string_view name,
                                 const std::string& descriptor_text,
                                 const EngineConfig& config,
                                 std::string* error = nullptr) const;

  /// The restore path (sim/checkpoint.hpp): resolves `engine_name`,
  /// validates the substrate, and invokes the spec's restore hook.
  /// `config` carries execution choices that are not checkpoint state
  /// (shard count, pool). nullptr on unknown engine, substrate mismatch,
  /// or a state body the hook rejects.
  std::unique_ptr<Engine> restore(std::string_view engine_name,
                                  const graph::GraphDescriptor& descriptor,
                                  const StateReader& state,
                                  const EngineConfig& config = {},
                                  std::string* error = nullptr) const;

 private:
  std::deque<EngineSpec> specs_;  // deque: spec addresses survive add()
};

}  // namespace rr::sim
