#include "sim/trace.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace rr::sim {

TraceFrame render_frame(const Engine& engine, NodeId width,
                        const std::vector<std::uint64_t>* prev_visits) {
  const NodeId n = engine.num_nodes();
  RR_REQUIRE(width <= n, "trace width exceeds node count");
  std::string cells(n, ' ');
  for (NodeId v = 0; v < n; ++v) {
    const std::uint64_t first = engine.first_visit_time(v);
    if (first == kNotCovered) continue;
    const bool active = prev_visits ? engine.visits(v) > (*prev_visits)[v]
                                    : first == engine.time();
    cells[v] = active ? 'o' : '.';
  }
  TraceFrame frame;
  frame.round = engine.time();
  if (width == 0) {
    frame.lines.push_back(std::move(cells));
  } else {
    for (NodeId row = 0; row < n; row += width) {
      frame.lines.push_back(
          cells.substr(row, std::min<std::size_t>(width, n - row)));
    }
  }
  return frame;
}

std::vector<TraceFrame> record_trace(Engine& engine,
                                     const TraceOptions& options) {
  RR_REQUIRE(options.stride > 0, "stride must be positive");
  const NodeId n = engine.num_nodes();
  std::vector<TraceFrame> frames;
  frames.push_back(render_frame(engine, options.width, nullptr));
  std::vector<std::uint64_t> prev(n);
  for (NodeId v = 0; v < n; ++v) prev[v] = engine.visits(v);
  for (std::uint64_t t = 0; t < options.rounds; ++t) {
    engine.step();
    if ((t + 1) % options.stride == 0) {
      frames.push_back(render_frame(engine, options.width, &prev));
      for (NodeId v = 0; v < n; ++v) prev[v] = engine.visits(v);
    }
  }
  return frames;
}

std::string format_trace(const std::vector<TraceFrame>& frames) {
  std::uint64_t max_round = 0;
  for (const auto& f : frames) max_round = std::max(max_round, f.round);
  std::size_t width = 1;
  for (std::uint64_t x = max_round; x >= 10; x /= 10) ++width;

  std::string out;
  for (const auto& f : frames) {
    std::string label = std::to_string(f.round);
    if (f.lines.size() == 1) {
      out += "t=" + std::string(width - label.size(), ' ') + label + " |" +
             f.lines[0] + "|\n";
    } else {
      out += "t=" + std::string(width - label.size(), ' ') + label + "\n";
      for (const std::string& line : f.lines) {
        out += "|" + line + "|\n";
      }
    }
  }
  return out;
}

}  // namespace rr::sim
