#include "sim/runner.hpp"

#include <algorithm>

#include "common/parse.hpp"

namespace rr::sim {

std::string SweepCheckpoint::to_text() const {
  std::string out = "rr-sweep v1 trials=" + std::to_string(trials) + " done=";
  bool first = true;
  for (std::uint64_t i = 0; i < trials; ++i) {
    if (!done[i]) continue;
    if (!first) out.push_back(',');
    first = false;
    out += std::to_string(i);
    out.push_back(':');
    out += std::to_string(results[i]);
  }
  out.push_back('\n');
  return out;
}

std::optional<SweepCheckpoint> SweepCheckpoint::from_text(
    const std::string& text) {
  std::string_view rest = text;
  if (!rest.empty() && rest.back() == '\n') rest.remove_suffix(1);
  constexpr std::string_view prefix = "rr-sweep v1 trials=";
  if (rest.substr(0, prefix.size()) != prefix) return std::nullopt;
  rest.remove_prefix(prefix.size());
  const std::size_t sep = rest.find(" done=");
  if (sep == std::string_view::npos) return std::nullopt;
  const auto trials = parse_u64(rest.substr(0, sep));
  // The cap bounds what a one-line external document can make fresh()
  // allocate (2^24 trials = ~150 MB of done+results) — "never aborts"
  // includes not dying in bad_alloc on a crafted trial count.
  if (!trials || *trials == 0 || *trials > (1ULL << 24)) return std::nullopt;
  SweepCheckpoint ck = fresh(*trials);
  std::string_view items = rest.substr(sep + 6);
  while (!items.empty()) {
    std::size_t comma = items.find(',');
    if (comma == std::string_view::npos) comma = items.size();
    const std::string_view item = items.substr(0, comma);
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    const auto index = parse_u64(item.substr(0, colon));
    const auto value = parse_u64(item.substr(colon + 1));
    if (!index || !value || *index >= ck.trials || ck.done[*index]) {
      return std::nullopt;
    }
    ck.done[*index] = 1;
    ck.results[*index] = *value;
    items.remove_prefix(comma == items.size() ? comma : comma + 1);
  }
  return ck;
}

// The batch protocol itself lives in sim::ThreadPool (extracted so the
// sharded engine can share the worker threads); Runner adds the
// engine-aware conveniences and the scheduling policies on top.

void Runner::for_each_hinted(std::uint64_t jobs,
                             const std::function<void(std::uint64_t)>& fn,
                             const std::vector<double>& cost_hint) {
  RR_REQUIRE(cost_hint.size() == jobs, "one cost hint per job required");
  // LPT schedule: claim order is descending estimated cost (ties by job
  // index, so the order — and therefore any timing-sensitive telemetry —
  // is deterministic). Auto chunking: small hinted sweeps (few, large
  // jobs) auto-size to chunk 1 — pure LPT — while huge sweeps of tiny
  // jobs claim in chunks, relying on the pool's work stealing to un-strand
  // any tail that lands behind a heavy job inside a chunk.
  std::vector<std::uint64_t> order(jobs);
  for (std::uint64_t i = 0; i < jobs; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint64_t a, std::uint64_t b) {
                     return cost_hint[a] > cost_hint[b];
                   });
  pool_.for_each(jobs, [&](std::uint64_t slot) { fn(order[slot]); });
}

std::vector<double> Runner::map(
    std::uint64_t jobs, const std::function<double(std::uint64_t)>& fn) {
  std::vector<double> results(jobs);
  for_each(jobs, [&](std::uint64_t i) { results[i] = fn(i); });
  return results;
}

analysis::RunningStats Runner::stats(
    std::uint64_t jobs, const std::function<double(std::uint64_t)>& fn) {
  analysis::RunningStats s;
  for (double x : map(jobs, fn)) s.add(x);
  return s;
}

std::vector<std::uint64_t> Runner::cover_times(std::uint64_t trials,
                                               const EngineFactory& factory,
                                               std::uint64_t max_rounds) {
  std::vector<std::uint64_t> covers(trials);
  for_each(trials, [&](std::uint64_t i) {
    covers[i] = factory(i)->run_until_covered(max_rounds);
  });
  return covers;
}

std::vector<std::uint64_t> Runner::cover_times(
    std::uint64_t trials, const EngineFactory& factory,
    std::uint64_t max_rounds, const std::vector<double>& cost_hint) {
  std::vector<std::uint64_t> covers(trials);
  for_each_hinted(trials, [&](std::uint64_t i) {
    covers[i] = factory(i)->run_until_covered(max_rounds);
  }, cost_hint);
  return covers;
}

std::vector<std::uint64_t> Runner::cover_times(std::uint64_t trials,
                                               const EngineFactory& factory,
                                               std::uint64_t max_rounds,
                                               SweepCheckpoint& ck) {
  RR_REQUIRE(ck.trials == trials && ck.done.size() == trials &&
                 ck.results.size() == trials,
             "sweep checkpoint shape mismatch");
  std::vector<std::uint64_t> pending;
  for (std::uint64_t i = 0; i < trials; ++i) {
    if (!ck.done[i]) pending.push_back(i);
  }
  if (!pending.empty()) {
    for_each(pending.size(), [&](std::uint64_t j) {
      const std::uint64_t trial = pending[j];
      ck.results[trial] = factory(trial)->run_until_covered(max_rounds);
      ck.done[trial] = 1;
    });
  }
  return ck.results;
}

analysis::RunningStats Runner::cover_stats(std::uint64_t trials,
                                           const EngineFactory& factory,
                                           std::uint64_t max_rounds) {
  analysis::RunningStats s;
  for (std::uint64_t c : cover_times(trials, factory, max_rounds)) {
    RR_REQUIRE(c != kNotCovered,
               "cover-time trial exceeded max_rounds; raise the cap");
    s.add(static_cast<double>(c));
  }
  return s;
}

}  // namespace rr::sim
