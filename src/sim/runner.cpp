#include "sim/runner.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/parse.hpp"

namespace rr::sim {

std::string SweepCheckpoint::to_text() const {
  std::string out = "rr-sweep v1 trials=" + std::to_string(trials) + " done=";
  bool first = true;
  for (std::uint64_t i = 0; i < trials; ++i) {
    if (!done[i]) continue;
    if (!first) out.push_back(',');
    first = false;
    out += std::to_string(i);
    out.push_back(':');
    out += std::to_string(results[i]);
  }
  out.push_back('\n');
  return out;
}

std::optional<SweepCheckpoint> SweepCheckpoint::from_text(
    const std::string& text) {
  std::string_view rest = text;
  if (!rest.empty() && rest.back() == '\n') rest.remove_suffix(1);
  constexpr std::string_view prefix = "rr-sweep v1 trials=";
  if (rest.substr(0, prefix.size()) != prefix) return std::nullopt;
  rest.remove_prefix(prefix.size());
  const std::size_t sep = rest.find(" done=");
  if (sep == std::string_view::npos) return std::nullopt;
  const auto trials = parse_u64(rest.substr(0, sep));
  // The cap bounds what a one-line external document can make fresh()
  // allocate (2^24 trials = ~150 MB of done+results) — "never aborts"
  // includes not dying in bad_alloc on a crafted trial count.
  if (!trials || *trials == 0 || *trials > (1ULL << 24)) return std::nullopt;
  SweepCheckpoint ck = fresh(*trials);
  std::string_view items = rest.substr(sep + 6);
  while (!items.empty()) {
    std::size_t comma = items.find(',');
    if (comma == std::string_view::npos) comma = items.size();
    const std::string_view item = items.substr(0, comma);
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    const auto index = parse_u64(item.substr(0, colon));
    const auto value = parse_u64(item.substr(colon + 1));
    if (!index || !value || *index >= ck.trials || ck.done[*index]) {
      return std::nullopt;
    }
    ck.done[*index] = 1;
    ck.results[*index] = *value;
    items.remove_prefix(comma == items.size() ? comma : comma + 1);
  }
  return ck;
}

// Batch protocol: for_each publishes (fn, jobs, generation) under the lock
// and wakes the workers. A worker that observes a new generation counts
// itself active *before* releasing the lock, drains the shared job counter,
// then counts itself out. The caller drains too, and a batch is complete
// only when the job counter is exhausted AND no worker is still active —
// which also guarantees no worker can touch a stale `fn` after for_each
// returns (a worker that slept through a whole batch wakes to find the next
// generation and reads the then-current parameters).
struct Runner::Pool {
  std::mutex mu;
  std::condition_variable work_ready;
  std::condition_variable batch_done;
  const std::function<void(std::uint64_t)>* fn = nullptr;
  std::uint64_t jobs = 0;
  std::uint64_t chunk = 1;
  std::atomic<std::uint64_t> next{0};
  std::uint64_t generation = 0;
  unsigned active = 0;  // workers currently inside drain(); guarded by mu
  bool stop = false;

  // Claims and runs jobs of the current batch until none are left. Each
  // fetch-add claims a contiguous chunk, so tiny jobs (~1e6-trial sweeps)
  // don't serialize every claim on the shared counter.
  void drain() {
    const auto* f = fn;
    const std::uint64_t count = jobs;
    const std::uint64_t step = chunk;
    for (;;) {
      const std::uint64_t base = next.fetch_add(step, std::memory_order_relaxed);
      if (base >= count) break;
      const std::uint64_t limit = std::min(count, base + step);
      for (std::uint64_t i = base; i < limit; ++i) (*f)(i);
    }
  }
};

Runner::Runner(unsigned max_threads) : pool_(std::make_unique<Pool>()) {
  unsigned threads =
      max_threads ? max_threads : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  // The caller participates in every batch, so spawn threads-1 workers.
  for (unsigned t = 1; t < threads; ++t) {
    workers_.push_back(std::make_unique<std::jthread>([this] {
      Pool& p = *pool_;
      std::uint64_t seen_generation = 0;
      for (;;) {
        {
          std::unique_lock<std::mutex> lock(p.mu);
          // `fn != nullptr` keeps stragglers that slept through a whole
          // batch from entering drain() with stale parameters: a finished
          // batch unpublishes fn under the lock, so late wakers go back to
          // sleep until the next publish.
          p.work_ready.wait(lock, [&] {
            return p.stop || (p.generation != seen_generation && p.fn != nullptr);
          });
          if (p.stop) return;
          seen_generation = p.generation;
          ++p.active;
        }
        p.drain();
        {
          std::lock_guard<std::mutex> lock(p.mu);
          if (--p.active == 0) p.batch_done.notify_all();
        }
      }
    }));
  }
}

Runner::~Runner() {
  {
    std::lock_guard<std::mutex> lock(pool_->mu);
    pool_->stop = true;
  }
  pool_->work_ready.notify_all();
  workers_.clear();  // jthread joins on destruction
}

void Runner::for_each(std::uint64_t jobs,
                      const std::function<void(std::uint64_t)>& fn,
                      std::uint64_t chunk) {
  RR_REQUIRE(jobs > 0, "need at least one job");
  Pool& p = *pool_;
  if (chunk == 0) {
    // Auto-size: ~8 claims per thread keeps skewed runtimes balanced; the
    // 64 cap bounds the tail (last chunk) of very large batches.
    chunk = std::clamp<std::uint64_t>(jobs / (8ULL * num_threads()), 1, 64);
  }
  {
    std::lock_guard<std::mutex> lock(p.mu);
    p.fn = &fn;
    p.jobs = jobs;
    p.chunk = chunk;
    p.next.store(0, std::memory_order_relaxed);
    ++p.generation;
  }
  p.work_ready.notify_all();
  p.drain();  // the caller is a worker too; returns once all jobs are claimed
  std::unique_lock<std::mutex> lock(p.mu);
  p.batch_done.wait(lock, [&] { return p.active == 0; });
  p.fn = nullptr;
}

std::vector<double> Runner::map(
    std::uint64_t jobs, const std::function<double(std::uint64_t)>& fn) {
  std::vector<double> results(jobs);
  for_each(jobs, [&](std::uint64_t i) { results[i] = fn(i); });
  return results;
}

analysis::RunningStats Runner::stats(
    std::uint64_t jobs, const std::function<double(std::uint64_t)>& fn) {
  analysis::RunningStats s;
  for (double x : map(jobs, fn)) s.add(x);
  return s;
}

std::vector<std::uint64_t> Runner::cover_times(std::uint64_t trials,
                                               const EngineFactory& factory,
                                               std::uint64_t max_rounds) {
  std::vector<std::uint64_t> covers(trials);
  for_each(trials, [&](std::uint64_t i) {
    covers[i] = factory(i)->run_until_covered(max_rounds);
  });
  return covers;
}

std::vector<std::uint64_t> Runner::cover_times(std::uint64_t trials,
                                               const EngineFactory& factory,
                                               std::uint64_t max_rounds,
                                               SweepCheckpoint& ck) {
  RR_REQUIRE(ck.trials == trials && ck.done.size() == trials &&
                 ck.results.size() == trials,
             "sweep checkpoint shape mismatch");
  std::vector<std::uint64_t> pending;
  for (std::uint64_t i = 0; i < trials; ++i) {
    if (!ck.done[i]) pending.push_back(i);
  }
  if (!pending.empty()) {
    for_each(pending.size(), [&](std::uint64_t j) {
      const std::uint64_t trial = pending[j];
      ck.results[trial] = factory(trial)->run_until_covered(max_rounds);
      ck.done[trial] = 1;
    });
  }
  return ck.results;
}

analysis::RunningStats Runner::cover_stats(std::uint64_t trials,
                                           const EngineFactory& factory,
                                           std::uint64_t max_rounds) {
  analysis::RunningStats s;
  for (std::uint64_t c : cover_times(trials, factory, max_rounds)) {
    RR_REQUIRE(c != kNotCovered,
               "cover-time trial exceeded max_rounds; raise the cap");
    s.add(static_cast<double>(c));
  }
  return s;
}

}  // namespace rr::sim
