#include "sim/registry.hpp"

#include <algorithm>

namespace rr::sim {

namespace detail {
// Defined in sim/builtin_engines.cpp: registers every in-tree backend.
void register_builtin_engines(EngineRegistry& registry);
}  // namespace detail

EngineRegistry& EngineRegistry::instance() {
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry();
    detail::register_builtin_engines(*r);
    return r;
  }();
  return *registry;
}

bool EngineRegistry::add(EngineSpec spec) {
  if (spec.name.empty() || spec.engine_name.empty() || !spec.factory ||
      !spec.restore) {
    return false;
  }
  for (const EngineSpec& existing : specs_) {
    if (existing.name == spec.name || existing.name == spec.engine_name ||
        existing.engine_name == spec.name) {
      return false;
    }
    // A shared engine_name is legal only as the declared opt-in for
    // checkpoint-interchangeable backends (EngineSpec::shares_engine_name);
    // find() stays first-match, so the original spec keeps owning
    // restores resolved by engine_name.
    if (existing.engine_name == spec.engine_name && !spec.shares_engine_name) {
      return false;
    }
  }
  specs_.push_back(std::move(spec));
  return true;
}

const EngineSpec* EngineRegistry::find(
    std::string_view name_or_engine_name) const {
  for (const EngineSpec& spec : specs_) {
    if (spec.name == name_or_engine_name ||
        spec.engine_name == name_or_engine_name) {
      return &spec;
    }
  }
  return nullptr;
}

std::vector<const EngineSpec*> EngineRegistry::list() const {
  std::vector<const EngineSpec*> out;
  out.reserve(specs_.size());
  for (const EngineSpec& spec : specs_) out.push_back(&spec);
  return out;
}

bool EngineRegistry::substrate_ok(const EngineSpec& spec,
                                  const graph::GraphDescriptor& d) {
  if (spec.substrate_kinds.empty()) return true;
  return std::find(spec.substrate_kinds.begin(), spec.substrate_kinds.end(),
                   d.kind) != spec.substrate_kinds.end();
}

namespace {

void set_error(std::string* error, std::string message) {
  if (error) *error = std::move(message);
}

/// Shared create/restore preamble: name lookup + substrate check + agent
/// range check (factories still validate backend-specific config).
const EngineSpec* resolve(const EngineRegistry& registry,
                          std::string_view name,
                          const graph::GraphDescriptor& descriptor,
                          std::string* error) {
  const EngineSpec* spec = registry.find(name);
  if (!spec) {
    set_error(error, "unknown engine '" + std::string(name) +
                         "' (see `rr_cli engines`)");
    return nullptr;
  }
  if (!EngineRegistry::substrate_ok(*spec, descriptor)) {
    set_error(error, "engine '" + spec->name + "' needs " + spec->substrate +
                         "; got '" + descriptor.text() + "'");
    return nullptr;
  }
  if (!descriptor.num_nodes().has_value()) {
    set_error(error, "invalid graph parameters '" + descriptor.text() + "'");
    return nullptr;
  }
  return spec;
}

}  // namespace

std::unique_ptr<Engine> EngineRegistry::create(
    std::string_view name, const graph::GraphDescriptor& descriptor,
    const EngineConfig& config, std::string* error) const {
  const EngineSpec* spec = resolve(*this, name, descriptor, error);
  if (!spec) return nullptr;
  const NodeId n = *descriptor.num_nodes();
  if (config.agents.empty() || config.agents.size() > n) {
    set_error(error, "need 1 <= k <= " + std::to_string(n) + " agents");
    return nullptr;
  }
  for (NodeId a : config.agents) {
    if (a >= n) {
      set_error(error, "agent start " + std::to_string(a) +
                           " out of range (n = " + std::to_string(n) + ")");
      return nullptr;
    }
  }
  std::string factory_error;
  auto engine = spec->factory(descriptor, config, &factory_error);
  if (!engine) {
    set_error(error, factory_error.empty()
                         ? "engine '" + spec->name + "' rejected the config"
                         : factory_error);
    return nullptr;
  }
  return engine;
}

std::unique_ptr<Engine> EngineRegistry::create(
    std::string_view name, const std::string& descriptor_text,
    const EngineConfig& config, std::string* error) const {
  const auto d = graph::GraphDescriptor::parse(descriptor_text);
  if (!d) {
    set_error(error, "malformed graph descriptor '" + descriptor_text + "'");
    return nullptr;
  }
  return create(name, *d, config, error);
}

std::unique_ptr<Engine> EngineRegistry::restore(
    std::string_view engine_name, const graph::GraphDescriptor& descriptor,
    const StateReader& state, const EngineConfig& config,
    std::string* error) const {
  const EngineSpec* spec = resolve(*this, engine_name, descriptor, error);
  if (!spec) return nullptr;
  auto engine = spec->restore(descriptor, state, config);
  if (!engine) {
    set_error(error, "state body inconsistent with engine '" + spec->name +
                         "' on '" + descriptor.text() + "'");
    return nullptr;
  }
  return engine;
}

}  // namespace rr::sim
