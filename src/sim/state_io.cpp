#include "sim/state_io.hpp"

#include "common/parse.hpp"
#include "sim/wire.hpp"

namespace rr::sim {

// ---- writer: v1 text rendering ----

const std::string& StateWriter::text() const {
  if (!text_.empty() || fields_.empty()) return text_;
  std::string out;
  for (const WriterField& f : fields_) {
    out.append(f.key);
    out.push_back('=');
    switch (f.kind) {
      case WriterField::Kind::kRaw:
        out.append(f.raw);
        break;
      case WriterField::Kind::kU64:
        out.append(std::to_string(f.scalar));
        break;
      case WriterField::Kind::kU64List:
        for (std::size_t i = 0; i < f.list.size(); ++i) {
          if (i > 0) out.push_back(',');
          if (f.list[i] == kStateSentinel) {
            out.push_back('-');
          } else {
            out.append(std::to_string(f.list[i]));
          }
        }
        break;
      case WriterField::Kind::kU64ListView:
        for (std::uint64_t i = 0; i < f.view_size; ++i) {
          const std::uint64_t v = f.view_at(i);
          if (i > 0) out.push_back(',');
          if (v == kStateSentinel) {
            out.push_back('-');
          } else {
            out.append(std::to_string(v));
          }
        }
        break;
      case WriterField::Kind::kDirs:
        for (std::uint8_t s : f.symbols) out.push_back(s ? 'w' : 'c');
        break;
      case WriterField::Kind::kBits:
        for (std::uint8_t s : f.symbols) out.push_back(s ? '1' : '0');
        break;
      case WriterField::Kind::kPairs:
        for (std::size_t i = 0; i < f.pairs.size(); ++i) {
          if (i > 0) out.push_back(',');
          out.append(std::to_string(f.pairs[i].first));
          out.push_back(':');
          out.append(std::to_string(f.pairs[i].second));
        }
        break;
    }
    out.push_back('\n');
  }
  text_ = std::move(out);
  return text_;
}

// ---- reader: construction ----

std::optional<StateReader> StateReader::parse(std::string_view body) {
  StateReader reader;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) eol = body.size();
    const std::string_view line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0) return std::nullopt;
    const std::string_view key = line.substr(0, eq);
    for (const auto& [k, v] : reader.fields_) {
      if (k == key) return std::nullopt;  // duplicate key
    }
    ReaderValue value;
    value.kind = ReaderValue::Kind::kText;
    value.text = std::string(line.substr(eq + 1));
    reader.fields_.emplace_back(std::string(key), std::move(value));
  }
  return reader;
}

std::optional<StateReader> StateReader::from_fields(
    std::vector<std::pair<std::string, ReaderValue>> fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    for (std::size_t j = i + 1; j < fields.size(); ++j) {
      if (fields[i].first == fields[j].first) return std::nullopt;
    }
  }
  StateReader reader;
  reader.fields_ = std::move(fields);
  return reader;
}

// ---- reader: packed payload decoding ----

namespace {

/// Unpacks one LSB-first bit-packed symbol segment of exactly seg.count
/// entries; padding bits in the last byte must be zero (the encoding is
/// canonical, so corruption there is detected rather than ignored).
bool decode_packed_symbols(const PackedSegment& seg,
                           std::vector<std::uint8_t>& out) {
  if (seg.bytes.size() != (seg.count + 7) / 8) return false;
  for (std::uint64_t i = 0; i < seg.count; ++i) {
    out.push_back((static_cast<std::uint8_t>(seg.bytes[i / 8]) >> (i % 8)) & 1);
  }
  const std::uint64_t tail = seg.count % 8;
  return tail == 0 ||
         (static_cast<std::uint8_t>(seg.bytes.back()) >> tail) == 0;
}

}  // namespace

// ---- reader: accessors ----

std::optional<std::uint64_t> StateReader::u64(std::string_view key) const {
  const ReaderValue* v = find(key);
  if (!v) return std::nullopt;
  if (v->kind == ReaderValue::Kind::kU64) return v->scalar;
  if (v->kind == ReaderValue::Kind::kText) return parse_u64(v->text);
  return std::nullopt;
}

std::optional<std::vector<std::uint64_t>> StateReader::u64_list(
    std::string_view key, std::size_t expected) const {
  const ReaderValue* v = find(key);
  if (!v) return std::nullopt;
  std::vector<std::uint64_t> out;
  const auto collect = [&out](std::uint64_t, std::uint64_t value) {
    out.push_back(value);
    return true;
  };
  if (v->kind == ReaderValue::Kind::kPackedList) {
    const auto total = detail::packed_count(v->segs);
    if (!total) return std::nullopt;
    if (expected > 0 ? *total != expected : *total > kMaxLooseListElements) {
      return std::nullopt;
    }
    out.reserve(*total);
    std::uint64_t index = 0;
    for (const PackedSegment& seg : v->segs) {
      if (!detail::decode_packed_list(seg, &index, collect)) {
        return std::nullopt;
      }
    }
    return out;
  }
  if (v->kind != ReaderValue::Kind::kText) return std::nullopt;
  std::uint64_t index = 0;
  if (!detail::visit_text_list(std::string_view(v->text), &index, collect)) {
    return std::nullopt;
  }
  if (expected > 0 && out.size() != expected) return std::nullopt;
  return out;
}

std::optional<std::vector<std::uint8_t>> StateReader::symbols(
    std::string_view key, std::size_t expected, std::uint8_t enc, char zero,
    char one) const {
  const ReaderValue* v = find(key);
  if (!v) return std::nullopt;
  if (v->kind == ReaderValue::Kind::kPackedSymbols) {
    // Dirs and bits use distinct wire tags; asking for the wrong one is
    // a type confusion and rejects.
    const auto total = detail::packed_count(v->segs);
    if (!total || *total != expected) return std::nullopt;
    std::vector<std::uint8_t> out;
    out.reserve(*total);
    for (const PackedSegment& seg : v->segs) {
      if (seg.enc != enc || !decode_packed_symbols(seg, out)) {
        return std::nullopt;
      }
    }
    return out;
  }
  if (v->kind != ReaderValue::Kind::kText || v->text.size() != expected) {
    return std::nullopt;
  }
  std::vector<std::uint8_t> out(v->text.size());
  for (std::size_t i = 0; i < v->text.size(); ++i) {
    if (v->text[i] == one) {
      out[i] = 1;
    } else if (v->text[i] != zero) {
      return std::nullopt;
    }
  }
  return out;
}

std::optional<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
StateReader::pairs(std::string_view key) const {
  const ReaderValue* v = find(key);
  if (!v) return std::nullopt;
  if (v->kind == ReaderValue::Kind::kPairs) return v->pair_list;
  if (v->kind != ReaderValue::Kind::kText) return std::nullopt;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  const std::string_view text = v->text;
  if (text.empty()) return out;
  std::size_t pos = 0;
  while (true) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view item = text.substr(pos, comma - pos);
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    const auto index = parse_u64(item.substr(0, colon));
    const auto value = parse_u64(item.substr(colon + 1));
    if (!index || !value) return std::nullopt;
    if (!out.empty() && *index <= out.back().first) return std::nullopt;
    out.emplace_back(*index, *value);
    if (comma == text.size()) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace rr::sim
