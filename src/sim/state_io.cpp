#include "sim/state_io.hpp"

#include "common/parse.hpp"

namespace rr::sim {

std::optional<StateReader> StateReader::parse(std::string_view body) {
  StateReader reader;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) eol = body.size();
    const std::string_view line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0) return std::nullopt;
    const std::string_view key = line.substr(0, eq);
    for (const auto& [k, v] : reader.fields_) {
      if (k == key) return std::nullopt;  // duplicate key
    }
    reader.fields_.emplace_back(std::string(key), std::string(line.substr(eq + 1)));
  }
  return reader;
}

std::optional<std::uint64_t> StateReader::u64(std::string_view key) const {
  const std::string* v = find(key);
  if (!v) return std::nullopt;
  return parse_u64(*v);
}

std::optional<std::vector<std::uint64_t>> StateReader::u64_list(
    std::string_view key, std::size_t expected) const {
  const std::string* raw = find(key);
  if (!raw) return std::nullopt;
  std::vector<std::uint64_t> out;
  const std::string_view text = *raw;
  if (!text.empty()) {
    std::size_t pos = 0;
    while (true) {
      std::size_t comma = text.find(',', pos);
      if (comma == std::string_view::npos) comma = text.size();
      const std::string_view item = text.substr(pos, comma - pos);
      if (item == "-") {
        out.push_back(kStateSentinel);
      } else {
        const auto v = parse_u64(item);
        if (!v) return std::nullopt;
        out.push_back(*v);
      }
      if (comma == text.size()) break;
      pos = comma + 1;
    }
  }
  if (expected > 0 && out.size() != expected) return std::nullopt;
  return out;
}

std::optional<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
StateReader::pairs(std::string_view key) const {
  const std::string* raw = find(key);
  if (!raw) return std::nullopt;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  const std::string_view text = *raw;
  if (text.empty()) return out;
  std::size_t pos = 0;
  while (true) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view item = text.substr(pos, comma - pos);
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    const auto index = parse_u64(item.substr(0, colon));
    const auto value = parse_u64(item.substr(colon + 1));
    if (!index || !value) return std::nullopt;
    if (!out.empty() && *index <= out.back().first) return std::nullopt;
    out.emplace_back(*index, *value);
    if (comma == text.size()) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace rr::sim
