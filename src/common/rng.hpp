#pragma once

// Deterministic, fast PRNG (S10): xoshiro256** seeded via splitmix64.
//
// Header-only and dependency-free so both the graph generators and the
// random-walk engines can use it. All randomness in the repository flows
// through this type; every experiment is reproducible from its seed.
// (The rotor-router itself is deterministic and never touches an RNG.)

#include <array>
#include <cstdint>

namespace rr {

/// splitmix64 step; used for seeding and as a cheap standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Passes BigCrush; 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr std::uint64_t operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint32_t bounded(std::uint32_t bound) {
    std::uint64_t x = (*this)() >> 32;
    std::uint64_t m = x * bound;
    std::uint32_t lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      std::uint32_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)() >> 32;
        m = x * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform double in [0,1).
  double uniform01() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Derives an independent stream (for per-thread / per-trial RNGs).
  Rng split() { return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

  // ---- stream-state save/restore (checkpointing) ----
  //
  // The four state words fully determine the future of the stream, so a
  // saved state resumes a random-walk engine bit-exactly (sim/checkpoint).

  std::array<std::uint64_t, 4> save_state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }

  /// Restores a state captured by save_state(). Rejects the all-zero state
  /// (a fixed point of xoshiro256**, never produced by seeding).
  bool restore_state(const std::array<std::uint64_t, 4>& state) {
    if ((state[0] | state[1] | state[2] | state[3]) == 0) return false;
    for (int i = 0; i < 4; ++i) s_[i] = state[i];
    return true;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace rr
