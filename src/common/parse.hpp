#pragma once

// Strict numeric parsing for external text inputs (checkpoints, sweep
// manifests, graph descriptors). One shared helper so the "full token,
// nothing else, never throws" policy is defined once: the token must be
// entirely consumed and non-empty, or the parse fails.

#include <charconv>
#include <cstdint>
#include <optional>
#include <string_view>

namespace rr {

inline std::optional<std::uint64_t> parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || text.empty()) return std::nullopt;
  return value;
}

}  // namespace rr
