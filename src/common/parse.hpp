#pragma once

// Strict numeric parsing for external text inputs (checkpoints, sweep
// manifests, graph descriptors). One shared helper so the "full token,
// nothing else, never throws" policy is defined once: the token must be
// entirely consumed and non-empty, or the parse fails.

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>

namespace rr {

inline std::optional<std::uint64_t> parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || text.empty()) return std::nullopt;
  return value;
}

// ---- checked CLI-flag parsing ----
//
// Shared by the command-line drivers (rr_cli, rr_serverd): the strtoull
// idiom they used before accepted "--rounds abc" as 0 and "--k 1e6" as 1,
// silently running a different experiment than asked. These helpers apply
// the full-token parse above and fail *loudly*, naming the program and
// the flag, so a typo aborts the command (exit-code contract stays with
// the caller) instead of producing plausible garbage.

/// Parses `text` as a u64 CLI-flag value. On failure prints
/// "<prog>: <flag> expects an unsigned integer (got '<text>')" to stderr
/// and returns false, leaving `out` untouched.
inline bool parse_flag_u64(const char* prog, const char* flag,
                           std::string_view text, std::uint64_t& out) {
  const auto v = parse_u64(text);
  if (!v) {
    std::fprintf(stderr, "%s: %s expects an unsigned integer (got '%s')\n",
                 prog, flag, std::string(text).c_str());
    return false;
  }
  out = *v;
  return true;
}

/// As parse_flag_u64 with an inclusive range check (narrow targets:
/// node counts, shard counts, ports).
inline bool parse_flag_u64_range(const char* prog, const char* flag,
                                 std::string_view text, std::uint64_t min,
                                 std::uint64_t max, std::uint64_t& out) {
  std::uint64_t v = 0;
  if (!parse_flag_u64(prog, flag, text, v)) return false;
  if (v < min || v > max) {
    std::fprintf(stderr,
                 "%s: %s must be in [%llu, %llu] (got '%s')\n", prog, flag,
                 static_cast<unsigned long long>(min),
                 static_cast<unsigned long long>(max),
                 std::string(text).c_str());
    return false;
  }
  out = v;
  return true;
}

/// Convenience for 32-bit flag targets.
inline bool parse_flag_u32(const char* prog, const char* flag,
                           std::string_view text, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!parse_flag_u64_range(prog, flag, text, 0, ~std::uint32_t{0}, v)) {
    return false;
  }
  out = static_cast<std::uint32_t>(v);
  return true;
}

}  // namespace rr
