#pragma once

// Precondition / invariant checking for the rotor-ring library.
//
// RR_REQUIRE is always on (it guards API misuse and adversarial inputs in
// experiment drivers); RR_ASSERT compiles out in NDEBUG builds and guards
// internal invariants on hot paths.

#include <cstdio>
#include <cstdlib>

namespace rr::detail {

[[noreturn]] inline void require_failed(const char* cond, const char* file,
                                        int line, const char* msg) {
  std::fprintf(stderr, "rotor-ring: requirement `%s` violated at %s:%d: %s\n",
               cond, file, line, msg);
  std::abort();
}

}  // namespace rr::detail

#define RR_REQUIRE(cond, msg)                                  \
  do {                                                         \
    if (!(cond)) {                                             \
      ::rr::detail::require_failed(#cond, __FILE__, __LINE__, msg); \
    }                                                          \
  } while (0)

#ifdef NDEBUG
#define RR_ASSERT(cond, msg) ((void)0)
#else
#define RR_ASSERT(cond, msg) RR_REQUIRE(cond, msg)
#endif

// Marks a code path that must not be reached (e.g. the fall-through of an
// exhaustive search whose success is a precondition). Expands to a call of
// a [[noreturn]] function, so control flow provably ends here: functions
// may use it on their failure path without a dummy return value.
#define RR_UNREACHABLE(msg) \
  ::rr::detail::require_failed("unreachable", __FILE__, __LINE__, msg)
