#pragma once

// FNV-1a configuration hashing, shared by every sim::Engine implementation
// so the engines' config_hash values stay structurally comparable and a
// change to the mixing never has to be replicated per engine.

#include <cstdint>

#include "common/rng.hpp"

namespace rr {

class Fnv1a {
 public:
  constexpr Fnv1a() = default;
  /// Continues a hash from a previously observed value(): FNV-1a is a
  /// left fold over its inputs, so chaining seeded instances across
  /// owners (the distributed engine hashes shard 0..N-1 in turn)
  /// reproduces the single-instance hash bit for bit.
  constexpr explicit Fnv1a(std::uint64_t state) : h_(state) {}

  constexpr void mix(std::uint64_t x) {
    h_ ^= x;
    h_ *= 1099511628211ULL;
  }
  constexpr std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ULL;
};

/// SplitMix64-style stream mixing: hashes (master, stream) into a seed that
/// is statistically independent across both arguments (it is the splitmix64
/// finalizer applied to the stream-th state after `master`). This is the
/// one sanctioned way to derive per-trial / per-thread seeds — see
/// sim::derive_seed — replacing ad-hoc `seed + 31 * i` arithmetic, whose
/// nearby streams are correlated for counter-based generators.
constexpr std::uint64_t mix_seed(std::uint64_t master, std::uint64_t stream) {
  std::uint64_t state = master + 0x9e3779b97f4a7c15ULL * stream;
  return splitmix64(state);
}

}  // namespace rr
