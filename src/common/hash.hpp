#pragma once

// FNV-1a configuration hashing, shared by every sim::Engine implementation
// so the engines' config_hash values stay structurally comparable and a
// change to the mixing never has to be replicated per engine.

#include <cstdint>

namespace rr {

class Fnv1a {
 public:
  constexpr void mix(std::uint64_t x) {
    h_ ^= x;
    h_ *= 1099511628211ULL;
  }
  constexpr std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ULL;
};

}  // namespace rr
