#pragma once

// Range-add / point-query Fenwick tree (binary indexed tree).
//
// The lazy ring engine fast-forwards agents over long arcs, so per-node
// visit counters must accept "add 1 to every node in [l, r]" without an
// O(r - l) loop. A Fenwick tree over the difference array gives O(log n)
// range updates and O(log n) point reads, and builds from a dense value
// vector in O(n) (used when the engine promotes from its dense prefix).

#include <cstdint>
#include <vector>

#include "common/require.hpp"

namespace rr {

class RangeAddFenwick {
 public:
  RangeAddFenwick() = default;

  explicit RangeAddFenwick(std::size_t n) : n_(n), tree_(n + 1, 0) {}

  /// Builds in O(n) with at(i) == values[i] for all i.
  explicit RangeAddFenwick(const std::vector<std::int64_t>& values)
      : n_(values.size()), tree_(values.size() + 1, 0) {
    for (std::size_t i = 1; i <= n_; ++i) {
      tree_[i] += values[i - 1] - (i >= 2 ? values[i - 2] : 0);
      const std::size_t parent = i + lowbit(i);
      if (parent <= n_) tree_[parent] += tree_[i];
    }
  }

  std::size_t size() const { return n_; }

  /// values[i] += d for every i in [l, r] (inclusive).
  void add(std::size_t l, std::size_t r, std::int64_t d) {
    RR_ASSERT(l <= r && r < n_, "fenwick range out of bounds");
    point(l, d);
    if (r + 1 < n_) point(r + 1, -d);
  }

  /// Current value at index i.
  std::int64_t at(std::size_t i) const {
    RR_ASSERT(i < n_, "fenwick index out of bounds");
    std::int64_t sum = 0;
    for (std::size_t j = i + 1; j > 0; j -= lowbit(j)) sum += tree_[j];
    return sum;
  }

 private:
  static std::size_t lowbit(std::size_t i) { return i & (~i + 1); }

  void point(std::size_t i, std::int64_t d) {
    for (std::size_t j = i + 1; j <= n_; j += lowbit(j)) tree_[j] += d;
  }

  std::size_t n_ = 0;
  std::vector<std::int64_t> tree_;
};

}  // namespace rr
