#include "walk/random_walk.hpp"

#include <cmath>

#include "common/hash.hpp"

namespace rr::walk {

GraphRandomWalks::GraphRandomWalks(const graph::Graph& g,
                                   std::vector<graph::NodeId> starts,
                                   std::uint64_t seed)
    : csr_(g),
      rng_(seed),
      pos_(std::move(starts)),
      visits_(g.num_nodes(), 0),
      first_visit_(g.num_nodes(), kGraphWalkNotCovered),
      present_(g.num_nodes(), 0),
      hold_left_(g.num_nodes(), 0) {
  RR_REQUIRE(!pos_.empty(), "at least one walker required");
  for (graph::NodeId v : pos_) {
    RR_REQUIRE(v < g.num_nodes(), "walker start out of range");
    // Every reachable node is someone's neighbor (degree >= 1), so checking
    // the starts keeps the stepping loop free of bounds checks.
    RR_REQUIRE(g.degree(v) > 0, "walker start on isolated node");
    record_visit(v);  // time_ == 0: initial placement counts as a visit
  }
}

void GraphRandomWalks::step() {
  ++time_;
  for (auto& p : pos_) move_walker(p);
}

std::uint64_t GraphRandomWalks::config_hash() const {
  Fnv1a h;
  for (graph::NodeId p : pos_) h.mix(p);
  return h.value();
}

void GraphRandomWalks::serialize_state(sim::StateWriter& out) const {
  out.field_u64("time", time_);
  out.field_list("positions", pos_);
  out.field_list("visits", visits_);
  out.field_list("first_visit", first_visit_);
  const auto rng = rng_.save_state();
  out.field_list("rng",
                 std::vector<std::uint64_t>(rng.begin(), rng.end()));
}

bool GraphRandomWalks::deserialize_state(const sim::StateReader& in) {
  const graph::NodeId n = csr_.num_nodes();
  const auto time = in.u64("time");
  const auto positions = in.u64_list("positions");
  const auto visits = in.u64_list("visits", n);
  const auto first_visit = in.u64_list("first_visit", n);
  const auto rng = in.u64_list("rng", 4);
  if (!time || !positions || positions->empty() || !visits || !first_visit ||
      !rng) {
    return false;
  }
  for (std::uint64_t p : *positions) {
    if (p >= n || csr_.degree_unchecked(static_cast<graph::NodeId>(p)) == 0) {
      return false;
    }
  }
  if (!rng_.restore_state({(*rng)[0], (*rng)[1], (*rng)[2], (*rng)[3]})) {
    return false;
  }
  time_ = *time;
  pos_.assign(positions->begin(), positions->end());
  visits_ = *visits;
  first_visit_ = *first_visit;
  covered_ = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (first_visit_[v] != kGraphWalkNotCovered) ++covered_;
  }
  return true;
}

CoverEstimate estimate_graph_cover_time(const graph::Graph& g,
                                        const std::vector<graph::NodeId>& starts,
                                        std::uint64_t trials,
                                        std::uint64_t seed,
                                        std::uint64_t max_rounds) {
  RR_REQUIRE(trials >= 2, "need at least two trials for a CI");
  Rng seeder(seed);
  double sum = 0.0, sum_sq = 0.0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    GraphRandomWalks walks(g, starts, seeder());
    const std::uint64_t c = walks.run_until_covered(max_rounds);
    RR_REQUIRE(c != kGraphWalkNotCovered,
               "cover-time trial exceeded max_rounds; raise the cap");
    sum += static_cast<double>(c);
    sum_sq += static_cast<double>(c) * static_cast<double>(c);
  }
  CoverEstimate est;
  est.trials = trials;
  est.mean = sum / static_cast<double>(trials);
  const double var =
      (sum_sq - sum * sum / static_cast<double>(trials)) /
      static_cast<double>(trials - 1);
  est.stddev = var > 0 ? std::sqrt(var) : 0.0;
  est.ci95 = 1.96 * est.stddev / std::sqrt(static_cast<double>(trials));
  return est;
}

}  // namespace rr::walk
