#include "walk/random_walk.hpp"

#include <cmath>

namespace rr::walk {

GraphRandomWalks::GraphRandomWalks(const graph::Graph& g,
                                   std::vector<graph::NodeId> starts,
                                   std::uint64_t seed)
    : graph_(&g),
      rng_(seed),
      pos_(std::move(starts)),
      visited_(g.num_nodes(), 0) {
  RR_REQUIRE(!pos_.empty(), "at least one walker required");
  for (graph::NodeId v : pos_) {
    RR_REQUIRE(v < g.num_nodes(), "walker start out of range");
    if (!visited_[v]) {
      visited_[v] = 1;
      ++covered_;
    }
  }
}

void GraphRandomWalks::step() {
  ++time_;
  for (auto& p : pos_) {
    const std::uint32_t deg = graph_->degree(p);
    p = graph_->neighbor(p, deg == 1 ? 0 : rng_.bounded(deg));
    if (!visited_[p]) {
      visited_[p] = 1;
      ++covered_;
    }
  }
}

std::uint64_t GraphRandomWalks::run_until_covered(std::uint64_t max_rounds) {
  if (all_covered()) return 0;
  while (time_ < max_rounds) {
    step();
    if (all_covered()) return time_;
  }
  return kGraphWalkNotCovered;
}

CoverEstimate estimate_graph_cover_time(const graph::Graph& g,
                                        const std::vector<graph::NodeId>& starts,
                                        std::uint64_t trials,
                                        std::uint64_t seed,
                                        std::uint64_t max_rounds) {
  RR_REQUIRE(trials >= 2, "need at least two trials for a CI");
  Rng seeder(seed);
  double sum = 0.0, sum_sq = 0.0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    GraphRandomWalks walks(g, starts, seeder());
    const std::uint64_t c = walks.run_until_covered(max_rounds);
    RR_REQUIRE(c != kGraphWalkNotCovered,
               "cover-time trial exceeded max_rounds; raise the cap");
    sum += static_cast<double>(c);
    sum_sq += static_cast<double>(c) * static_cast<double>(c);
  }
  CoverEstimate est;
  est.trials = trials;
  est.mean = sum / static_cast<double>(trials);
  const double var =
      (sum_sq - sum * sum / static_cast<double>(trials)) /
      static_cast<double>(trials - 1);
  est.stddev = var > 0 ? std::sqrt(var) : 0.0;
  est.ci95 = 1.96 * est.stddev / std::sqrt(static_cast<double>(trials));
  return est;
}

}  // namespace rr::walk
