#pragma once

// k parallel random walks on the ring (S9).
//
// The baseline the paper compares against: k independent agents, each
// performing a simple +-1 random walk, moving synchronously. Each walker
// consumes one bit per round from a private 64-bit buffer, which keeps the
// per-walker random streams independent of k and of each other (walker i's
// trajectory depends only on the seed, not on how many other walkers run).
// bench_ablation compares this against drawing one RNG word per step: the
// buffers cost a little throughput and are kept for the stream-stability
// property, not for speed.

#include <cstdint>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace rr::walk {

using NodeId = std::uint32_t;

constexpr std::uint64_t kWalkNotCovered = ~std::uint64_t{0};

class RingRandomWalks {
 public:
  RingRandomWalks(NodeId n, std::vector<NodeId> starts, std::uint64_t seed);

  /// One synchronous round: every walker steps to a uniform neighbor.
  void step();
  void run(std::uint64_t rounds) {
    for (std::uint64_t i = 0; i < rounds; ++i) step();
  }

  /// Runs until every node is visited; returns cover time (absolute round)
  /// or kWalkNotCovered if `max_rounds` elapsed.
  std::uint64_t run_until_covered(std::uint64_t max_rounds);

  NodeId num_nodes() const { return n_; }
  std::uint32_t num_walkers() const {
    return static_cast<std::uint32_t>(pos_.size());
  }
  std::uint64_t time() const { return time_; }
  NodeId position(std::uint32_t walker) const { return pos_[walker]; }
  const std::vector<NodeId>& positions() const { return pos_; }

  bool visited(NodeId v) const { return last_visit_[v] != kWalkNotCovered; }
  NodeId covered_count() const { return covered_; }
  bool all_covered() const { return covered_ == n_; }
  /// Round of the most recent visit (0 = initial placement);
  /// kWalkNotCovered if never visited.
  std::uint64_t last_visit_time(NodeId v) const { return last_visit_[v]; }

 private:
  NodeId n_;
  std::uint64_t time_ = 0;
  NodeId covered_ = 0;
  std::vector<Rng> rngs_;                // one independent stream per walker
  std::vector<NodeId> pos_;
  std::vector<std::uint64_t> bits_;      // per-walker random bit buffer
  std::vector<std::uint8_t> bits_left_;  // remaining bits in the buffer
  std::vector<std::uint64_t> last_visit_;
};

/// Measured per-node revisit gap statistics for stationary-phase walks.
struct GapStats {
  double mean_gap = 0.0;     ///< average inter-visit gap (expected ~ n/k)
  double max_gap = 0.0;      ///< worst observed gap (high variance!)
  double var_gap = 0.0;      ///< variance of observed gaps
  std::uint64_t samples = 0;
};

/// Runs `warmup` rounds then measures inter-visit gaps over `window` rounds.
GapStats ring_walk_gap_stats(NodeId n, std::uint32_t k, std::uint64_t seed,
                             std::uint64_t warmup, std::uint64_t window);

}  // namespace rr::walk
