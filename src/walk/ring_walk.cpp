#include "walk/ring_walk.hpp"

#include <algorithm>

namespace rr::walk {

RingRandomWalks::RingRandomWalks(NodeId n, std::vector<NodeId> starts,
                                 std::uint64_t seed)
    : n_(n),
      pos_(std::move(starts)),
      bits_(pos_.size(), 0),
      bits_left_(pos_.size(), 0),
      last_visit_(n, kWalkNotCovered) {
  RR_REQUIRE(n >= 3, "ring requires n >= 3");
  RR_REQUIRE(!pos_.empty(), "at least one walker required");
  // Derive one independent stream per walker from the seed so that walker
  // i's trajectory depends only on (seed, i) — not on how many other
  // walkers are deployed (trial results stay comparable across k).
  rngs_.reserve(pos_.size());
  std::uint64_t sm = seed;
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    rngs_.emplace_back(splitmix64(sm));
  }
  for (NodeId v : pos_) {
    RR_REQUIRE(v < n, "walker start out of range");
    if (last_visit_[v] == kWalkNotCovered) {
      last_visit_[v] = 0;
      ++covered_;
    }
  }
}

void RingRandomWalks::step() {
  ++time_;
  const std::size_t k = pos_.size();
  for (std::size_t i = 0; i < k; ++i) {
    if (bits_left_[i] == 0) {
      bits_[i] = rngs_[i]();
      bits_left_[i] = 64;
    }
    const bool cw = bits_[i] & 1;
    bits_[i] >>= 1;
    --bits_left_[i];
    NodeId p = pos_[i];
    p = cw ? (p + 1 == n_ ? 0 : p + 1) : (p == 0 ? n_ - 1 : p - 1);
    pos_[i] = p;
    if (last_visit_[p] == kWalkNotCovered) ++covered_;
    last_visit_[p] = time_;
  }
}

std::uint64_t RingRandomWalks::run_until_covered(std::uint64_t max_rounds) {
  if (all_covered()) return 0;
  while (time_ < max_rounds) {
    step();
    if (all_covered()) return time_;
  }
  return kWalkNotCovered;
}

GapStats ring_walk_gap_stats(NodeId n, std::uint32_t k, std::uint64_t seed,
                             std::uint64_t warmup, std::uint64_t window) {
  Rng seeder(seed);
  std::vector<NodeId> starts(k);
  for (auto& s : starts) s = seeder.bounded(n);
  RingRandomWalks walks(n, std::move(starts), seeder());
  walks.run(warmup);

  std::vector<std::uint64_t> last_seen(n);
  for (NodeId v = 0; v < n; ++v) last_seen[v] = walks.time();

  GapStats stats;
  double sum = 0.0, sum_sq = 0.0;
  const std::uint64_t t_end = walks.time() + window;
  while (walks.time() < t_end) {
    walks.step();
    for (std::uint32_t i = 0; i < k; ++i) {
      const NodeId p = walks.position(i);
      // Multiple walkers can hit p in one round; gap 0 entries from the
      // same round are skipped via the last_seen update.
      if (last_seen[p] == walks.time()) continue;
      const double gap = static_cast<double>(walks.time() - last_seen[p]);
      last_seen[p] = walks.time();
      sum += gap;
      sum_sq += gap * gap;
      stats.max_gap = std::max(stats.max_gap, gap);
      ++stats.samples;
    }
  }
  if (stats.samples > 0) {
    stats.mean_gap = sum / static_cast<double>(stats.samples);
    stats.var_gap =
        sum_sq / static_cast<double>(stats.samples) - stats.mean_gap * stats.mean_gap;
  }
  return stats;
}

}  // namespace rr::walk
