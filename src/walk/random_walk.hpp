#pragma once

// k parallel random walks on a general graph (S9).
//
// Used for cross-topology comparisons (exploration race example, Yanovski
// baseline) and for validating the ring-specialized engine against the
// generic one on graph::ring(n). Implements sim::Engine, so batched
// runners and polymorphic drivers treat it exactly like the deterministic
// rotor-routers; the adjacency is snapshotted into a CsrGraph so each
// walker step is a flat-array load.
//
// Delayed deployments (`step_delayed`) hold D(v,t) of the walkers present
// at v for the round, mirroring the rotor-router semantics (which walkers
// are held is arbitrary — they are exchangeable — but deterministic: the
// lowest-indexed walkers at v stay).

#include <cstdint>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"
#include "sim/engine.hpp"
#include "sim/state_io.hpp"

namespace rr::walk {

inline constexpr std::uint64_t kGraphWalkNotCovered = sim::kNotCovered;

class GraphRandomWalks final : public sim::Engine, public sim::StateIO {
 public:
  GraphRandomWalks(const graph::Graph& g, std::vector<graph::NodeId> starts,
                   std::uint64_t seed);

  void step() override;

  /// One delayed round; `delay(v, t, present)` -> walkers held at v.
  template <typename DelayFn>
  void step_delayed(DelayFn&& delay) {
    ++time_;
    // Count walkers per node (touched-list so the pass is O(k)).
    for (graph::NodeId p : pos_) {
      if (present_[p]++ == 0) touched_.push_back(p);
    }
    for (graph::NodeId v : touched_) {
      std::uint32_t held = delay(v, time_, present_[v]);
      if (held > present_[v]) held = present_[v];
      hold_left_[v] = held;
    }
    for (auto& p : pos_) {
      if (hold_left_[p] > 0) {
        --hold_left_[p];  // held walkers stay and do not revisit (Lemma 1)
        continue;
      }
      move_walker(p);
    }
    for (graph::NodeId v : touched_) {
      present_[v] = 0;
      hold_left_[v] = 0;
    }
    touched_.clear();
  }

  const graph::CsrGraph& graph() const { return csr_; }
  std::uint32_t num_walkers() const {
    return static_cast<std::uint32_t>(pos_.size());
  }
  std::uint32_t num_agents() const override { return num_walkers(); }
  graph::NodeId num_nodes() const override { return csr_.num_nodes(); }
  std::uint64_t time() const override { return time_; }
  graph::NodeId position(std::uint32_t walker) const { return pos_[walker]; }

  bool visited(graph::NodeId v) const {
    return first_visit_[v] != kGraphWalkNotCovered;
  }
  graph::NodeId covered_count() const override { return covered_; }

  std::uint64_t visits(graph::NodeId v) const override { return visits_[v]; }
  std::uint64_t first_visit_time(graph::NodeId v) const override {
    return first_visit_[v];
  }

  /// FNV-1a hash of the walker positions (walkers are distinguishable).
  std::uint64_t config_hash() const override;

  const char* engine_name() const override { return "random-walks"; }

  /// Full dynamical state including the xoshiro256** stream words, so a
  /// resumed stochastic run draws the identical future randomness.
  void serialize_state(sim::StateWriter& out) const override;
  [[nodiscard]] bool deserialize_state(const sim::StateReader& in) override;

 private:
  void do_step_delayed(const sim::DelayFn& delay) override {
    step_delayed(delay);
  }

  void move_walker(graph::NodeId& p) {
    const std::uint32_t deg = csr_.degree_unchecked(p);
    RR_ASSERT(deg > 0, "walker stranded on isolated node");
    p = csr_.row(p)[deg == 1 ? 0 : rng_.bounded(deg)];
    record_visit(p);
  }

  void record_visit(graph::NodeId p) {
    ++visits_[p];
    if (first_visit_[p] == kGraphWalkNotCovered) {
      first_visit_[p] = time_;
      ++covered_;
    }
  }

  graph::CsrGraph csr_;
  std::uint64_t time_ = 0;
  graph::NodeId covered_ = 0;
  Rng rng_;
  std::vector<graph::NodeId> pos_;
  std::vector<std::uint64_t> visits_;
  std::vector<std::uint64_t> first_visit_;
  // Scratch for step_delayed (zeroed via the touched list after each round).
  std::vector<std::uint32_t> present_;
  std::vector<std::uint32_t> hold_left_;
  std::vector<graph::NodeId> touched_;
};

/// Mean cover time over `trials` independent runs (the expectation the
/// paper's Table 1 refers to), with the sample standard deviation.
struct CoverEstimate {
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;  ///< half-width of the 95% confidence interval
  std::uint64_t trials = 0;
};

CoverEstimate estimate_graph_cover_time(const graph::Graph& g,
                                        const std::vector<graph::NodeId>& starts,
                                        std::uint64_t trials,
                                        std::uint64_t seed,
                                        std::uint64_t max_rounds);

}  // namespace rr::walk
