#pragma once

// k parallel random walks on a general graph (S9).
//
// Used for cross-topology comparisons (exploration race example, Yanovski
// baseline) and for validating the ring-specialized engine against the
// generic one on graph::ring(n).

#include <cstdint>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace rr::walk {

constexpr std::uint64_t kGraphWalkNotCovered = ~std::uint64_t{0};

class GraphRandomWalks {
 public:
  GraphRandomWalks(const graph::Graph& g, std::vector<graph::NodeId> starts,
                   std::uint64_t seed);

  void step();
  void run(std::uint64_t rounds) {
    for (std::uint64_t i = 0; i < rounds; ++i) step();
  }
  std::uint64_t run_until_covered(std::uint64_t max_rounds);

  const graph::Graph& graph() const { return *graph_; }
  std::uint32_t num_walkers() const {
    return static_cast<std::uint32_t>(pos_.size());
  }
  std::uint64_t time() const { return time_; }
  graph::NodeId position(std::uint32_t walker) const { return pos_[walker]; }

  bool visited(graph::NodeId v) const { return visited_[v]; }
  graph::NodeId covered_count() const { return covered_; }
  bool all_covered() const { return covered_ == graph_->num_nodes(); }

 private:
  const graph::Graph* graph_;
  std::uint64_t time_ = 0;
  graph::NodeId covered_ = 0;
  Rng rng_;
  std::vector<graph::NodeId> pos_;
  std::vector<std::uint8_t> visited_;
};

/// Mean cover time over `trials` independent runs (the expectation the
/// paper's Table 1 refers to), with the sample standard deviation.
struct CoverEstimate {
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;  ///< half-width of the 95% confidence interval
  std::uint64_t trials = 0;
};

CoverEstimate estimate_graph_cover_time(const graph::Graph& g,
                                        const std::vector<graph::NodeId>& starts,
                                        std::uint64_t trials,
                                        std::uint64_t seed,
                                        std::uint64_t max_rounds);

}  // namespace rr::walk
