#pragma once

// Exact Markov-chain computations for the random-walk baseline (S9
// extension).
//
// The paper's random-walk lemmas lean on classical facts: the maximum
// hitting time of the n-path/cycle, the Gambler's-ruin exit probabilities
// (Lemma 17), and the uniform stationary distribution on the ring (Sec. 4).
// This module computes those quantities exactly —
//   * closed forms on the ring/path,
//   * expected hitting times on arbitrary graphs by solving the linear
//     system  h(v) = 1 + sum_u P(v,u) h(u), h(target)=0  (Gauss-Seidel),
//   * the stationary distribution pi(v) = deg(v)/2|E|,
// and is used by tests to validate the simulation engines against theory.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace rr::walk {

/// Expected hitting time of a +-1 walk on the n-cycle from distance d
/// (closed form: d * (n - d)).
double ring_hitting_time(std::uint32_t n, std::uint32_t d);

/// Expected cover time of the n-cycle for a single walk: n(n-1)/2.
double ring_cover_time_expected(std::uint32_t n);

/// Gambler's ruin (Lemma 17's tool): probability that a +-1 walk started
/// at position x in {0..L} hits L before 0 (= x / L).
double gamblers_ruin_up_probability(std::uint32_t x, std::uint32_t L);

/// Expected time for a +-1 walk started at x in {0..L} to exit {1..L-1}
/// (closed form: x * (L - x)).
double gamblers_ruin_exit_time(std::uint32_t x, std::uint32_t L);

/// Expected hitting times h(v) to `target` for the simple random walk on
/// `g`, solved to `tol` by Gauss-Seidel. h(target) = 0.
std::vector<double> expected_hitting_times(const graph::Graph& g,
                                           graph::NodeId target,
                                           double tol = 1e-10,
                                           std::uint32_t max_iters = 200000);

/// Stationary distribution of the simple random walk: deg(v) / (2|E|).
std::vector<double> stationary_distribution(const graph::Graph& g);

/// Expected return time to v: 1 / pi(v) = 2|E| / deg(v) (used in Sec. 4's
/// comparison: on the ring with k walks, n/k between visits on average).
double expected_return_time(const graph::Graph& g, graph::NodeId v);

/// Spectral-free mixing estimate: total-variation distance between the
/// t-step distribution from `start` (computed by exact power iteration on
/// the lazy chain) and the stationary distribution.
double tv_distance_after(const graph::Graph& g, graph::NodeId start,
                         std::uint32_t t, bool lazy = true);

}  // namespace rr::walk
