#include "walk/exact_chain.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace rr::walk {

double ring_hitting_time(std::uint32_t n, std::uint32_t d) {
  RR_REQUIRE(d <= n, "distance exceeds ring size");
  return static_cast<double>(d) * static_cast<double>(n - d);
}

double ring_cover_time_expected(std::uint32_t n) {
  return static_cast<double>(n) * (n - 1) / 2.0;
}

double gamblers_ruin_up_probability(std::uint32_t x, std::uint32_t L) {
  RR_REQUIRE(L > 0 && x <= L, "need 0 <= x <= L, L > 0");
  return static_cast<double>(x) / static_cast<double>(L);
}

double gamblers_ruin_exit_time(std::uint32_t x, std::uint32_t L) {
  RR_REQUIRE(L > 0 && x <= L, "need 0 <= x <= L, L > 0");
  return static_cast<double>(x) * static_cast<double>(L - x);
}

std::vector<double> expected_hitting_times(const graph::Graph& g,
                                           graph::NodeId target, double tol,
                                           std::uint32_t max_iters) {
  using graph::NodeId;
  RR_REQUIRE(target < g.num_nodes(), "target out of range");
  RR_REQUIRE(g.is_connected(), "hitting times need a connected graph");
  const NodeId n = g.num_nodes();
  std::vector<double> h(n, 0.0);
  // Gauss-Seidel on h(v) = 1 + (1/deg v) * sum_u h(u), h(target) = 0.
  // The system is an irreducible M-matrix; Gauss-Seidel converges.
  for (std::uint32_t iter = 0; iter < max_iters; ++iter) {
    double max_delta = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      if (v == target) continue;
      double sum = 0.0;
      for (NodeId u : g.neighbors(v)) sum += h[u];
      const double next = 1.0 + sum / g.degree(v);
      max_delta = std::max(max_delta, std::abs(next - h[v]));
      h[v] = next;
    }
    if (max_delta < tol) return h;
  }
  RR_REQUIRE(false, "hitting-time solver did not converge; raise max_iters");
}

std::vector<double> stationary_distribution(const graph::Graph& g) {
  std::vector<double> pi(g.num_nodes());
  const double arcs = static_cast<double>(g.num_arcs());
  RR_REQUIRE(arcs > 0, "empty graph has no stationary distribution");
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    pi[v] = g.degree(v) / arcs;
  }
  return pi;
}

double expected_return_time(const graph::Graph& g, graph::NodeId v) {
  RR_REQUIRE(v < g.num_nodes(), "node out of range");
  RR_REQUIRE(g.degree(v) > 0, "isolated node is never revisited");
  return static_cast<double>(g.num_arcs()) / g.degree(v);
}

double tv_distance_after(const graph::Graph& g, graph::NodeId start,
                         std::uint32_t t, bool lazy) {
  using graph::NodeId;
  RR_REQUIRE(start < g.num_nodes(), "start out of range");
  const NodeId n = g.num_nodes();
  std::vector<double> dist(n, 0.0), next(n, 0.0);
  dist[start] = 1.0;
  for (std::uint32_t step = 0; step < t; ++step) {
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId v = 0; v < n; ++v) {
      if (dist[v] == 0.0) continue;
      const double keep = lazy ? 0.5 * dist[v] : 0.0;
      next[v] += keep;
      const double spread = (dist[v] - keep) / g.degree(v);
      for (NodeId u : g.neighbors(v)) next[u] += spread;
    }
    dist.swap(next);
  }
  const auto pi = stationary_distribution(g);
  double tv = 0.0;
  for (NodeId v = 0; v < n; ++v) tv += std::abs(dist[v] - pi[v]);
  return 0.5 * tv;
}

}  // namespace rr::walk
