#pragma once

// CSR row-space partitioning + the packed node-state block (graph layer).
//
// Shard-parallel stepping (core::ShardedRotorRouter) and the sequential
// engine's SoA hot path share two layout decisions made here:
//
//  * NodeState packs the per-node fields every rotor-router round touches
//    — agent count, rotor pointer, degree, the arrival accumulator and
//    the CSR row offset — into one cache-line-aligned stride. The seed
//    engine kept them in parallel vectors (plus a degree/row lookup
//    through the CSR offsets), so a single agent exit gathered five
//    scattered cache lines; packed, it gathers one (plus the neighbor
//    row).
//
//  * Partition splits the CSR row space [0, n) into `shards` contiguous,
//    arc-balanced ranges. Contiguity is what makes sharded rounds race-
//    free with plain arrays: a shard owns the rows [begin(s), end(s)), so
//    per-node writes (counts, pointers, visit stats, arrival buffers) from
//    different shards never alias, and ownership tests are two compares.
//
// The per-shard *frontier index* supports the out-of-shard half of a
// round: frontier(s) is the sorted set of nodes outside shard s that an
// agent leaving shard s can reach in one hop (the heads of s's boundary
// arcs). A shard accumulates out-of-shard arrivals in a dense buffer
// indexed by frontier slot (frontier_slot) instead of a hash map; the
// merge phase walks source shards in a fixed order, which is what makes
// shard-parallel rounds bit-identical to sequential ones (see README
// "Sharded stepping & determinism").

#include <cstdint>
#include <vector>

#include "common/require.hpp"
#include "graph/csr_graph.hpp"

namespace rr::graph {

/// Per-node hot state of a rotor-router round: one aligned stride instead
/// of five parallel arrays. `degree` and `row_begin` duplicate the CSR
/// offsets so the stepping loop never touches the offsets array, and
/// `arrivals` rides in the same line so depositing an agent on a node and
/// committing that arrival at the end of the round hit memory once.
struct alignas(32) NodeState {
  std::uint32_t count = 0;     ///< agents currently hosted
  std::uint32_t pointer = 0;   ///< current rotor (port) pointer
  std::uint32_t degree = 0;    ///< cached deg(v)
  std::uint32_t arrivals = 0;  ///< agents arriving this round (pre-commit)
  std::uint64_t row_begin = 0; ///< cached CSR offset of v's neighbor row
};

class Partition {
 public:
  /// Splits `g`'s rows into at most `shards` contiguous ranges balanced
  /// by arc count (each node weighted 1 + deg, so both huge-degree hubs
  /// and seas of tiny nodes split evenly). `shards` is clamped to
  /// [1, num_nodes]; every shard is non-empty.
  Partition(const CsrGraph& g, std::uint32_t shards);

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(starts_.size() - 1);
  }
  NodeId begin(std::uint32_t s) const { return starts_[s]; }
  NodeId end(std::uint32_t s) const { return starts_[s + 1]; }
  NodeId num_nodes() const { return starts_.back(); }

  /// Shard owning row v (binary search over the shard starts).
  std::uint32_t owner(NodeId v) const;

  /// Sorted, duplicate-free list of out-of-shard nodes reachable in one
  /// hop from shard s (the heads of s's boundary arcs).
  const std::vector<NodeId>& frontier(std::uint32_t s) const {
    return frontier_[s];
  }

  /// Slot of `u` in frontier(s); `u` must be a frontier member (the
  /// stepping loop only asks about arc heads, which are by construction).
  /// O(log |frontier|); hot loops use the precomputed arc_slot instead.
  std::uint32_t frontier_slot(std::uint32_t s, NodeId u) const;

  /// arc_slot(i) for an arc index i into CsrGraph::arcs(): the frontier
  /// slot of that arc's head in the tail-owner's frontier, or kInShard
  /// when tail and head share a shard. Precomputed once, so the scan
  /// phase classifies and buckets every exit in O(1) instead of a binary
  /// search per cross-shard arrival. Only built for multi-shard
  /// partitions (a single shard has no cross-shard arcs).
  static constexpr std::uint32_t kInShard = ~std::uint32_t{0};
  std::uint32_t arc_slot(std::size_t arc) const { return arc_slots_[arc]; }

  /// Owner shard of frontier(s)[slot] (precomputed alongside arc_slots_).
  std::uint32_t frontier_owner(std::uint32_t s, std::uint32_t slot) const {
    return frontier_owners_[s][slot];
  }

 private:
  std::vector<NodeId> starts_;                 // size num_shards()+1
  std::vector<std::vector<NodeId>> frontier_;  // per shard, sorted unique
  std::vector<std::uint32_t> arc_slots_;       // per arc; empty if 1 shard
  std::vector<std::vector<std::uint32_t>> frontier_owners_;
};

}  // namespace rr::graph
