#include "graph/mmap_substrate.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <optional>

#if defined(__unix__) || defined(__APPLE__)
#define RR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "common/hash.hpp"
#include "common/parse.hpp"
#include "graph/descriptor.hpp"

namespace rr::graph {

namespace {

// "RRGRAPH1" read as a little-endian u64.
constexpr std::uint64_t kImageMagic = 0x3148504152475252ull;
constexpr std::uint32_t kImageVersion = 1;
constexpr std::uint64_t kImagePage = 4096;

// The builder can exceed the descriptor build cap (that cap bounds
// *in-memory* construction), but not without limit: this bounds the
// image at ~64 GB of adjacency so a typo'd descriptor fails fast instead
// of filling the disk.
constexpr std::uint64_t kMaxImageArcs = 1ull << 33;

// CsrGraph's offsets view reinterprets the image's u64 section.
static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
              "rr-graph images require 64-bit std::size_t");
static_assert(sizeof(NodeState) == 32, "image node_state section layout");

struct ImageHeader {
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t descriptor_len = 0;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_arcs = 0;
  std::uint64_t offsets_off = 0;
  std::uint64_t neighbors_off = 0;
  std::uint64_t ports_off = 0;
  std::uint64_t node_state_off = 0;
  std::uint64_t visit_stats_off = 0;
  std::uint64_t file_size = 0;
  std::uint64_t reserved = 0;
  std::uint64_t check = 0;  // FNV-1a over the fields above + descriptor
};
static_assert(sizeof(ImageHeader) == 96);

// The visit_stats section record: core::VisitStats's layout spelled at
// the graph layer (four u64: visits, exits, first_visit, last_visit),
// with first_visit pre-filled to the ~0 "never visited" sentinel.
struct ImageVisitStats {
  std::uint64_t visits = 0;
  std::uint64_t exits = 0;
  std::uint64_t first_visit = ~std::uint64_t{0};
  std::uint64_t last_visit = 0;
};
static_assert(sizeof(ImageVisitStats) == 32);

std::uint64_t header_check(const ImageHeader& h, const char* descriptor,
                           std::size_t descriptor_len) {
  Fnv1a f;
  f.mix(h.magic);
  f.mix(h.version);
  f.mix(h.descriptor_len);
  f.mix(h.num_nodes);
  f.mix(h.num_arcs);
  f.mix(h.offsets_off);
  f.mix(h.neighbors_off);
  f.mix(h.ports_off);
  f.mix(h.node_state_off);
  f.mix(h.visit_stats_off);
  f.mix(h.file_size);
  for (std::size_t i = 0; i < descriptor_len; ++i) {
    f.mix(static_cast<unsigned char>(descriptor[i]));
  }
  return f.value();
}

std::uint64_t align_page(std::uint64_t x) {
  return (x + kImagePage - 1) / kImagePage * kImagePage;
}

// ---- row sources ----
//
// A RowSource yields each node's port-ordered neighbor row; the builder
// makes one streaming pass per section. Ring and torus reproduce the
// exact port conventions of graph/generators.cpp arithmetically (the
// image must be indistinguishable from CsrGraph(generators::ring(n))),
// which the substrate test pins row-by-row at small sizes.

class RowSource {
 public:
  virtual ~RowSource() = default;
  virtual std::uint64_t num_nodes() const = 0;
  virtual std::uint64_t num_arcs() const = 0;
  virtual std::uint32_t degree(NodeId v) const = 0;
  /// Neighbors of v in port order (out is cleared first).
  virtual void row(NodeId v, std::vector<NodeId>& out) const = 0;
};

/// generators.cpp ring: port 0 clockwise (v+1), port 1 anticlockwise.
class RingSource final : public RowSource {
 public:
  explicit RingSource(std::uint64_t n) : n_(n) {}
  std::uint64_t num_nodes() const override { return n_; }
  std::uint64_t num_arcs() const override { return 2 * n_; }
  std::uint32_t degree(NodeId) const override { return 2; }
  void row(NodeId v, std::vector<NodeId>& out) const override {
    out.clear();
    out.push_back(static_cast<NodeId>((v + 1) % n_));
    out.push_back(static_cast<NodeId>((v + n_ - 1) % n_));
  }

 private:
  std::uint64_t n_;
};

/// generators.cpp torus: node id y*w + x; the port order falls out of
/// the edge-insertion order (per cell: right then down, cells scanned in
/// (y, x) order), which wraps differently on the x=0 and y=0 borders.
class TorusSource final : public RowSource {
 public:
  TorusSource(std::uint64_t w, std::uint64_t h) : w_(w), h_(h) {}
  std::uint64_t num_nodes() const override { return w_ * h_; }
  std::uint64_t num_arcs() const override { return 4 * w_ * h_; }
  std::uint32_t degree(NodeId) const override { return 4; }
  void row(NodeId v, std::vector<NodeId>& out) const override {
    const std::uint64_t x = v % w_;
    const std::uint64_t y = v / w_;
    const auto id = [this](std::uint64_t xx, std::uint64_t yy) {
      return static_cast<NodeId>(yy * w_ + xx);
    };
    const NodeId up = id(x, y == 0 ? h_ - 1 : y - 1);
    const NodeId down = id(x, (y + 1) % h_);
    const NodeId left = id(x == 0 ? w_ - 1 : x - 1, y);
    const NodeId right = id((x + 1) % w_, y);
    out.clear();
    if (x > 0 && y > 0) {
      out.assign({up, left, right, down});
    } else if (x == 0 && y > 0) {
      out.assign({up, right, down, left});
    } else if (x > 0) {  // y == 0
      out.assign({left, right, down, up});
    } else {  // origin
      out.assign({right, down, left, up});
    }
  }

 private:
  std::uint64_t w_, h_;
};

/// Fallback for every other descriptor kind: rows straight off a built
/// Graph (the descriptor layer's cost caps bound this path).
class GraphSource final : public RowSource {
 public:
  explicit GraphSource(const Graph& g) : g_(g) {}
  std::uint64_t num_nodes() const override { return g_.num_nodes(); }
  std::uint64_t num_arcs() const override { return g_.num_arcs(); }
  std::uint32_t degree(NodeId v) const override { return g_.degree(v); }
  void row(NodeId v, std::vector<NodeId>& out) const override {
    const auto r = g_.neighbors(v);
    out.assign(r.begin(), r.end());
  }

 private:
  const Graph& g_;
};

bool set_error(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
  return false;
}

#if defined(RR_HAVE_MMAP)

bool write_at(std::FILE* f, std::uint64_t off, const void* data,
              std::size_t size) {
  if (std::fseek(f, static_cast<long>(off), SEEK_SET) != 0) return false;
  return std::fwrite(data, 1, size, f) == size;
}

/// Appends through a chunk buffer so the many tiny rows become few large
/// fwrites.
template <typename T>
class ChunkWriter {
 public:
  ChunkWriter(std::FILE* f, std::uint64_t off) : f_(f), off_(off) {
    buf_.reserve(kChunk);
  }
  void push(const T& value) { buf_.push_back(value); }
  void append(const T* values, std::size_t count) {
    buf_.insert(buf_.end(), values, values + count);
  }
  bool maybe_flush() { return buf_.size() < kChunk || flush(); }
  bool flush() {
    if (buf_.empty()) return true;
    if (!write_at(f_, off_, buf_.data(), buf_.size() * sizeof(T))) {
      return false;
    }
    off_ += buf_.size() * sizeof(T);
    buf_.clear();
    return true;
  }

 private:
  static constexpr std::size_t kChunk = 1 << 16;
  std::FILE* f_;
  std::uint64_t off_;
  std::vector<T> buf_;
};

#endif  // RR_HAVE_MMAP

/// Node-count argument of the streamed kinds; mirrors the descriptor
/// layer's numeric rules (NodeId-ranged) without its build-cost cap.
std::optional<std::uint64_t> stream_arg(const std::string& token) {
  const auto v = parse_u64(token);
  if (!v || *v > (1ull << 31)) return std::nullopt;
  return v;
}

}  // namespace

#if defined(RR_HAVE_MMAP)

bool MappedSubstrate::build(const std::string& descriptor_text,
                            const std::string& path, std::string* error) {
  const auto d = GraphDescriptor::parse(descriptor_text);
  if (!d) return set_error(error, "malformed graph descriptor");
  if (descriptor_text.size() > kImagePage - sizeof(ImageHeader)) {
    return set_error(error, "descriptor text too long for the header page");
  }

  // Streamed generators for the lattice kinds; everything else builds in
  // memory under the descriptor layer's cost caps.
  std::optional<Graph> built;
  std::unique_ptr<RowSource> src;
  if (d->kind == "ring") {
    const auto n = stream_arg(d->args[0]);
    if (!n || *n < 3) return set_error(error, "ring requires 3 <= n <= 2^31");
    src = std::make_unique<RingSource>(*n);
  } else if (d->kind == "torus") {
    const auto w = stream_arg(d->args[0]);
    const auto h = stream_arg(d->args[1]);
    if (!w || !h || *w < 3 || *h < 3 ||
        *w * *h > (1ull << 31)) {
      return set_error(error, "torus requires 3 <= w,h and w*h <= 2^31");
    }
    src = std::make_unique<TorusSource>(*w, *h);
  } else {
    built = d->build();
    if (!built) {
      return set_error(error,
                       "descriptor invalid or too large to build in memory");
    }
    if (!built->is_connected()) {
      return set_error(error, "substrate must be connected");
    }
    src = std::make_unique<GraphSource>(*built);
  }

  const std::uint64_t n = src->num_nodes();
  const std::uint64_t arcs = src->num_arcs();
  if (n == 0 || n > ~NodeId{0} || arcs > kMaxImageArcs) {
    return set_error(error, "graph too large for an rr-graph image");
  }

  ImageHeader h;
  h.magic = kImageMagic;
  h.version = kImageVersion;
  h.descriptor_len = static_cast<std::uint32_t>(descriptor_text.size());
  h.num_nodes = n;
  h.num_arcs = arcs;
  h.offsets_off = kImagePage;
  h.neighbors_off = align_page(h.offsets_off + 8 * (n + 1));
  h.ports_off = align_page(h.neighbors_off + 4 * arcs);
  h.node_state_off = align_page(h.ports_off + 4 * arcs);
  h.visit_stats_off = align_page(h.node_state_off + sizeof(NodeState) * n);
  h.file_size = align_page(h.visit_stats_off + sizeof(ImageVisitStats) * n);
  h.check = header_check(h, descriptor_text.data(), descriptor_text.size());

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return set_error(error, "cannot create image file");

  bool ok = true;
  std::vector<NodeId> nbr;
  std::vector<std::uint32_t> ports;
  {
    // offsets + node_state in one row pass over degrees...
    ChunkWriter<std::uint64_t> offsets(f, h.offsets_off);
    ChunkWriter<NodeState> states(f, h.node_state_off);
    std::uint64_t off = 0;
    for (std::uint64_t v = 0; ok && v < n; ++v) {
      offsets.push(off);
      NodeState ns;
      ns.degree = src->degree(static_cast<NodeId>(v));
      ns.row_begin = off;
      states.push(ns);
      off += ns.degree;
      ok = offsets.maybe_flush() && states.maybe_flush();
    }
    offsets.push(off);
    ok = ok && off == arcs && offsets.flush() && states.flush();
  }
  if (ok) {
    // ...neighbors and sorted ports in a second (rows are regenerated;
    // for the streamed kinds that is pure arithmetic)...
    ChunkWriter<NodeId> neighbors(f, h.neighbors_off);
    ChunkWriter<std::uint32_t> sorted(f, h.ports_off);
    for (std::uint64_t v = 0; ok && v < n; ++v) {
      src->row(static_cast<NodeId>(v), nbr);
      neighbors.append(nbr.data(), nbr.size());
      ports.resize(nbr.size());
      std::iota(ports.begin(), ports.end(), 0u);
      const NodeId* heads = nbr.data();
      std::sort(ports.begin(), ports.end(),
                [heads](std::uint32_t a, std::uint32_t b) {
                  return heads[a] != heads[b] ? heads[a] < heads[b] : a < b;
                });
      sorted.append(ports.data(), ports.size());
      ok = neighbors.maybe_flush() && sorted.maybe_flush();
    }
    ok = ok && neighbors.flush() && sorted.flush();
  }
  if (ok) {
    // ...and the constant visit_stats pattern blockwise.
    const std::vector<ImageVisitStats> block(
        std::min<std::uint64_t>(n, 1 << 14));
    std::uint64_t off = h.visit_stats_off;
    for (std::uint64_t done = 0; ok && done < n; done += block.size()) {
      const std::uint64_t count = std::min<std::uint64_t>(block.size(),
                                                          n - done);
      ok = write_at(f, off, block.data(), count * sizeof(ImageVisitStats));
      off += count * sizeof(ImageVisitStats);
    }
  }
  if (ok) {
    // Header page last (a torn build never carries a valid magic), and
    // one byte at the end so the file spans exactly file_size.
    std::vector<std::uint8_t> page(kImagePage, 0);
    std::memcpy(page.data(), &h, sizeof h);
    std::memcpy(page.data() + sizeof h, descriptor_text.data(),
                descriptor_text.size());
    const std::uint8_t zero = 0;
    ok = write_at(f, h.file_size - 1, &zero, 1) &&
         write_at(f, 0, page.data(), page.size());
  }
  ok = std::fclose(f) == 0 && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return set_error(error, "image write failed");
  }
  return true;
}

std::shared_ptr<MappedSubstrate> MappedSubstrate::open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return nullptr;
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0 ||
      static_cast<std::uint64_t>(st.st_size) < kImagePage) {
    ::close(fd);
    return nullptr;
  }
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  // Read-write PRIVATE: engine state sections are mutated in place, but
  // every write lands in this mapping's copy-on-write pages, never the
  // file — reopening always yields the pristine built state.
  void* map = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (map == MAP_FAILED) return nullptr;

  auto reject = [map, size]() -> std::shared_ptr<MappedSubstrate> {
    ::munmap(map, size);
    return nullptr;
  };
  ImageHeader h;
  std::memcpy(&h, map, sizeof h);
  if (h.magic != kImageMagic || h.version != kImageVersion ||
      h.reserved != 0) {
    return reject();
  }
  if (h.descriptor_len == 0 ||
      h.descriptor_len > kImagePage - sizeof(ImageHeader)) {
    return reject();
  }
  const char* desc = static_cast<const char*>(map) + sizeof(ImageHeader);
  if (h.check != header_check(h, desc, h.descriptor_len)) return reject();
  if (h.file_size != size || h.num_nodes == 0 || h.num_nodes > ~NodeId{0} ||
      h.num_arcs > kMaxImageArcs) {
    return reject();
  }
  // Section bounds: page-aligned, in order, each long enough for its
  // array. (All terms fit: num_nodes <= 2^32, num_arcs <= 2^33.)
  const std::uint64_t n = h.num_nodes;
  const std::uint64_t offs[] = {h.offsets_off, h.neighbors_off, h.ports_off,
                                h.node_state_off, h.visit_stats_off};
  const std::uint64_t lens[] = {8 * (n + 1), 4 * h.num_arcs, 4 * h.num_arcs,
                                sizeof(NodeState) * n,
                                sizeof(ImageVisitStats) * n};
  std::uint64_t prev_end = kImagePage;
  for (int i = 0; i < 5; ++i) {
    if (offs[i] % kImagePage != 0 || offs[i] < prev_end ||
        lens[i] > size - offs[i]) {
      return reject();
    }
    prev_end = offs[i] + lens[i];
  }
  // The one content invariant cheap enough to check at open time.
  const auto* offsets = static_cast<const std::uint64_t*>(
      static_cast<const void*>(static_cast<const char*>(map) + h.offsets_off));
  if (offsets[0] != 0 || offsets[n] != h.num_arcs) return reject();

  auto sub = std::shared_ptr<MappedSubstrate>(new MappedSubstrate());
  sub->map_ = map;
  sub->map_size_ = size;
  sub->descriptor_.assign(desc, h.descriptor_len);
  sub->num_nodes_ = h.num_nodes;
  sub->num_arcs_ = h.num_arcs;
  sub->offsets_off_ = h.offsets_off;
  sub->neighbors_off_ = h.neighbors_off;
  sub->ports_off_ = h.ports_off;
  sub->node_state_off_ = h.node_state_off;
  sub->visit_stats_off_ = h.visit_stats_off;
  return sub;
}

MappedSubstrate::~MappedSubstrate() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
}

void MappedSubstrate::advise_random() const {
  if (map_ != nullptr) ::madvise(map_, map_size_, MADV_RANDOM);
}

void MappedSubstrate::advise_sequential() const {
  if (map_ != nullptr) ::madvise(map_, map_size_, MADV_SEQUENTIAL);
}

#else  // !RR_HAVE_MMAP

bool MappedSubstrate::build(const std::string&, const std::string&,
                            std::string* error) {
  return set_error(error, "rr-graph images require POSIX mmap");
}

std::shared_ptr<MappedSubstrate> MappedSubstrate::open(const std::string&) {
  return nullptr;
}

MappedSubstrate::~MappedSubstrate() = default;
void MappedSubstrate::advise_random() const {}
void MappedSubstrate::advise_sequential() const {}

#endif  // RR_HAVE_MMAP

CsrGraph MappedSubstrate::csr() {
  return CsrGraph(static_cast<const std::size_t*>(section(offsets_off_)),
                  static_cast<NodeId>(num_nodes_),
                  static_cast<const NodeId*>(section(neighbors_off_)),
                  static_cast<const std::uint32_t*>(section(ports_off_)),
                  shared_from_this());
}

MappedArray<NodeState> MappedSubstrate::node_state() {
  return MappedArray<NodeState>(
      static_cast<NodeState*>(section(node_state_off_)), num_nodes_,
      shared_from_this());
}

void* MappedSubstrate::visit_stats_raw(std::size_t record_size) {
  RR_REQUIRE(record_size == sizeof(ImageVisitStats),
             "visit-stats record size does not match the image layout");
  return section(visit_stats_off_);
}

}  // namespace rr::graph
