#pragma once

// Topology generators (S2).
//
// The paper's main results are on the n-node ring; general-graph substrates
// (grid, torus, hypercube, clique, trees, random regular, ...) are needed for
// the Yanovski-style Eulerian lock-in baseline (Sec. 1.2), the Lemma 1
// monotonicity experiments, and the load-balancing example.

#include <cstdint>

#include "graph/graph.hpp"

namespace rr::graph {

/// n-node cycle 0-1-...-(n-1)-0. Port convention: at every node, port 0 is
/// clockwise (v -> v+1 mod n) and port 1 anticlockwise, matching the
/// ring-specialized engine. Requires n >= 3.
Graph ring(NodeId n);

/// Path 0-1-...-(n-1). Requires n >= 2. Port 0 points toward higher ids at
/// internal nodes.
Graph path(NodeId n);

/// w x h grid with 4-neighborhood, node id = y*w + x.
Graph grid(NodeId w, NodeId h);

/// w x h torus (grid with wraparound). Requires w,h >= 3.
Graph torus(NodeId w, NodeId h);

/// Complete graph K_n.
Graph clique(NodeId n);

/// Star with `n` nodes (center 0). Requires n >= 2.
Graph star(NodeId n);

/// Complete binary tree with n nodes (heap layout: children 2i+1, 2i+2).
Graph binary_tree(NodeId n);

/// d-dimensional hypercube (2^d nodes); port i flips bit i.
Graph hypercube(std::uint32_t d);

/// Lollipop: clique on m nodes glued to a path of n-m nodes (classic
/// worst-case random-walk topology). Requires 3 <= m <= n.
Graph lollipop(NodeId n, NodeId m);

/// Random d-regular graph via pairing with rejection; deterministic given
/// `seed`. Requires n*d even, d < n. The result is simple (no parallel
/// edges) and connected (re-sampled until both hold).
Graph random_regular(NodeId n, std::uint32_t d, std::uint64_t seed);

/// Erdos-Renyi G(n,p) conditioned on connectivity (re-sampled until
/// connected; use p comfortably above the connectivity threshold).
Graph erdos_renyi(NodeId n, double p, std::uint64_t seed);

}  // namespace rr::graph
