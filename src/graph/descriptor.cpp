#include "graph/descriptor.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/parse.hpp"
#include "graph/generators.hpp"

namespace rr::graph {

namespace {

// Descriptor grammar: kind name -> argument count. Arguments are numeric
// tokens; their per-generator preconditions are checked in build().
struct KindSpec {
  const char* kind;
  std::size_t arity;
};

constexpr KindSpec kKinds[] = {
    {"ring", 1},      {"path", 1},           {"grid", 2},
    {"torus", 2},     {"clique", 1},         {"star", 1},
    {"tree", 1},      {"hypercube", 1},      {"lollipop", 2},
    {"random-regular", 3},                   {"erdos-renyi", 3},
};

const KindSpec* find_kind(const std::string& kind) {
  for (const KindSpec& spec : kKinds) {
    if (kind == spec.kind) return &spec;
  }
  return nullptr;
}

std::optional<std::uint64_t> arg_u64(const std::string& token) {
  return parse_u64(token);
}

std::optional<double> arg_double(const std::string& token) {
  double value = 0.0;
  const char* begin = token.data();
  const char* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || token.empty()) return std::nullopt;
  return value;
}

std::optional<NodeId> arg_node(const std::string& token) {
  const auto v = arg_u64(token);
  if (!v || *v > (1ULL << 31)) return std::nullopt;
  return static_cast<NodeId>(*v);
}

GraphDescriptor make(const char* kind, std::vector<std::string> args) {
  GraphDescriptor d;
  d.kind = kind;
  d.args = std::move(args);
  return d;
}

std::string fmt_double(double p) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", p);
  return buf;
}

}  // namespace

std::string GraphDescriptor::text() const {
  std::string out = kind;
  for (const std::string& a : args) {
    out.push_back(' ');
    out += a;
  }
  return out;
}

std::optional<GraphDescriptor> GraphDescriptor::parse(const std::string& text) {
  GraphDescriptor d;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t space = text.find(' ', pos);
    if (space == std::string::npos) space = text.size();
    if (space == pos) return std::nullopt;  // empty token / stray space
    const std::string token = text.substr(pos, space - pos);
    if (d.kind.empty()) {
      d.kind = token;
    } else {
      d.args.push_back(token);
    }
    if (space == text.size()) break;
    pos = space + 1;
  }
  const KindSpec* spec = find_kind(d.kind);
  if (!spec || d.args.size() != spec->arity) return std::nullopt;
  return d;
}

// Descriptors are external input (checkpoint headers, CLI flags), so
// validation must also bound the *cost* of building: a grammatical
// document may neither exhaust memory (bad_alloc terminates) nor drive a
// randomized generator into its give-up abort. kMaxArcs caps the built
// graph at ~1 GiB of adjacency.
constexpr std::uint64_t kMaxArcs = 1ULL << 28;

std::optional<NodeId> GraphDescriptor::num_nodes() const {
  const KindSpec* spec = find_kind(kind);
  if (!spec || args.size() != spec->arity) return std::nullopt;
  if (kind == "grid" || kind == "torus") {
    const auto w = arg_node(args[0]);
    const auto h = arg_node(args[1]);
    const NodeId min_side = kind == "torus" ? 3 : 2;
    if (!w || !h || *w < min_side || *h < min_side) return std::nullopt;
    const std::uint64_t n = static_cast<std::uint64_t>(*w) * *h;
    if (4 * n > kMaxArcs) return std::nullopt;
    return static_cast<NodeId>(n);
  }
  if (kind == "hypercube") {
    const auto d = arg_u64(args[0]);
    if (!d || *d < 1 || *d >= 25) return std::nullopt;
    if (*d * (1ULL << *d) > kMaxArcs) return std::nullopt;
    return static_cast<NodeId>(1u << *d);
  }
  // All remaining kinds lead with their node count.
  const auto n = arg_node(args[0]);
  if (!n || 4 * static_cast<std::uint64_t>(*n) > kMaxArcs) return std::nullopt;
  if (kind == "ring" && *n < 3) return std::nullopt;
  if ((kind == "path" || kind == "clique" || kind == "star" ||
       kind == "erdos-renyi") && *n < 2) return std::nullopt;
  if (kind == "tree" && *n < 1) return std::nullopt;
  if (kind == "clique" &&
      static_cast<std::uint64_t>(*n) * (*n - 1) > kMaxArcs) {
    return std::nullopt;
  }
  if (kind == "lollipop") {
    const auto m = arg_node(args[1]);
    if (!m || *m < 3 || *m > *n) return std::nullopt;
    if (static_cast<std::uint64_t>(*m) * (*m - 1) + 2ULL * *n > kMaxArcs) {
      return std::nullopt;
    }
  }
  if (kind == "random-regular") {
    const auto d = arg_u64(args[1]);
    if (!d || *d < 2 || *d >= *n) return std::nullopt;
    if ((static_cast<std::uint64_t>(*n) * *d) % 2 != 0) return std::nullopt;
    if (static_cast<std::uint64_t>(*n) * *d > kMaxArcs) return std::nullopt;
    if (!arg_u64(args[2])) return std::nullopt;
  }
  if (kind == "erdos-renyi") {
    const auto p = arg_double(args[1]);
    // NaN-safe: both comparisons are false for NaN, which must be rejected.
    if (!p || !(*p > 0.0) || !(*p <= 1.0)) return std::nullopt;
    // Below the connectivity threshold (expected degree < ln n) the
    // generator's resample-until-connected loop is a guaranteed give-up
    // abort; such descriptors are unsatisfiable, not merely unlucky.
    if (!(*p * (*n - 1) >= std::log(static_cast<double>(*n)))) {
      return std::nullopt;
    }
    // Each connectivity attempt scans all O(n^2) pairs.
    if (static_cast<std::uint64_t>(*n) * (*n - 1) > kMaxArcs) {
      return std::nullopt;
    }
    if (!arg_u64(args[2])) return std::nullopt;
  }
  return *n;
}

std::optional<Graph> GraphDescriptor::build() const {
  if (!num_nodes()) return std::nullopt;  // full precondition check
  if (kind == "ring") return graph::ring(*arg_node(args[0]));
  if (kind == "path") return graph::path(*arg_node(args[0]));
  if (kind == "grid") return graph::grid(*arg_node(args[0]), *arg_node(args[1]));
  if (kind == "torus") {
    return graph::torus(*arg_node(args[0]), *arg_node(args[1]));
  }
  if (kind == "clique") return graph::clique(*arg_node(args[0]));
  if (kind == "star") return graph::star(*arg_node(args[0]));
  if (kind == "tree") return graph::binary_tree(*arg_node(args[0]));
  if (kind == "hypercube") {
    return graph::hypercube(static_cast<std::uint32_t>(*arg_u64(args[0])));
  }
  if (kind == "lollipop") {
    return graph::lollipop(*arg_node(args[0]), *arg_node(args[1]));
  }
  if (kind == "random-regular") {
    return graph::random_regular(*arg_node(args[0]),
                                 static_cast<std::uint32_t>(*arg_u64(args[1])),
                                 *arg_u64(args[2]));
  }
  if (kind == "erdos-renyi") {
    return graph::erdos_renyi(*arg_node(args[0]), *arg_double(args[1]),
                              *arg_u64(args[2]));
  }
  return std::nullopt;
}

GraphDescriptor GraphDescriptor::ring(NodeId n) {
  return make("ring", {std::to_string(n)});
}
GraphDescriptor GraphDescriptor::path(NodeId n) {
  return make("path", {std::to_string(n)});
}
GraphDescriptor GraphDescriptor::grid(NodeId w, NodeId h) {
  return make("grid", {std::to_string(w), std::to_string(h)});
}
GraphDescriptor GraphDescriptor::torus(NodeId w, NodeId h) {
  return make("torus", {std::to_string(w), std::to_string(h)});
}
GraphDescriptor GraphDescriptor::clique(NodeId n) {
  return make("clique", {std::to_string(n)});
}
GraphDescriptor GraphDescriptor::star(NodeId n) {
  return make("star", {std::to_string(n)});
}
GraphDescriptor GraphDescriptor::binary_tree(NodeId n) {
  return make("tree", {std::to_string(n)});
}
GraphDescriptor GraphDescriptor::hypercube(std::uint32_t d) {
  return make("hypercube", {std::to_string(d)});
}
GraphDescriptor GraphDescriptor::lollipop(NodeId n, NodeId m) {
  return make("lollipop", {std::to_string(n), std::to_string(m)});
}
GraphDescriptor GraphDescriptor::random_regular(NodeId n, std::uint32_t d,
                                                std::uint64_t seed) {
  return make("random-regular",
              {std::to_string(n), std::to_string(d), std::to_string(seed)});
}
GraphDescriptor GraphDescriptor::erdos_renyi(NodeId n, double p,
                                             std::uint64_t seed) {
  return make("erdos-renyi",
              {std::to_string(n), fmt_double(p), std::to_string(seed)});
}

std::optional<Graph> graph_from_descriptor(const std::string& text) {
  const auto d = GraphDescriptor::parse(text);
  if (!d) return std::nullopt;
  return d->build();
}

}  // namespace rr::graph
