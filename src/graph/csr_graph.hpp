#pragma once

// Compressed-sparse-row view of a Graph (flat graph substrate).
//
// `Graph` stores adjacency as vector<vector<NodeId>>: every neighbor access
// in a simulation round chases an outer pointer, so large instances walk the
// heap instead of a cache line. CsrGraph flattens the same port-ordered
// adjacency into two arrays — `offsets_` (n+1 prefix sums of degrees) and
// `neighbors_` (all 2|E| arc heads, port order preserved per node) — so a
// round over the occupied nodes does contiguous scans. The simulation
// engines build one at construction time and run every inner loop on it;
// `Graph` remains the mutable builder/query type (generators, permute_ports,
// BFS diagnostics).
//
// Port semantics are identical to Graph: `neighbor(v, p)` is the arc head
// reached from v through port p, and the cyclic successor of p is
// (p+1) mod deg(v). The CSR view is immutable; permute ports on the Graph
// *before* constructing the view.
//
// Storage comes in two modes behind the same pointer-based accessors:
// owned (built from a Graph, arrays in member vectors) and view (arrays
// live elsewhere — an mmap'd graph image, graph/mmap_substrate.hpp — and
// `backing_` keeps that storage alive). Copying an owned CsrGraph copies
// the arrays; copying a view shares them.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/require.hpp"
#include "graph/graph.hpp"

namespace rr::graph {

class CsrGraph {
 public:
  explicit CsrGraph(const Graph& g);

  /// View over externally owned arrays: `offsets` (n+1 prefix sums),
  /// `neighbors` (offsets[n] arc heads), and optionally `sorted_ports`
  /// (same length; nullptr degrades port_to/has_edge to a linear scan).
  /// `backing` is retained for the lifetime of this view and any copy of
  /// it (e.g. the shared_ptr of the mmap'd substrate the arrays live in).
  CsrGraph(const std::size_t* offsets, NodeId num_nodes,
           const NodeId* neighbors, const std::uint32_t* sorted_ports,
           std::shared_ptr<const void> backing);

  // Owned mode must rebind the accessor pointers to the copied vectors;
  // view mode shares the underlying arrays (and their backing). Moves
  // keep the heap buffers, so the default member-wise move is correct.
  CsrGraph(const CsrGraph& other) { *this = other; }
  CsrGraph& operator=(const CsrGraph& other);
  CsrGraph(CsrGraph&&) noexcept = default;
  CsrGraph& operator=(CsrGraph&&) noexcept = default;

  NodeId num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return num_arcs() / 2; }
  /// Number of arcs in the directed symmetric version (2|E|).
  std::size_t num_arcs() const { return offsets_[num_nodes_]; }

  std::uint32_t degree(NodeId v) const {
    RR_REQUIRE(v < num_nodes(), "node out of range");
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Node reached from `v` through port `p`.
  NodeId neighbor(NodeId v, std::uint32_t p) const {
    RR_REQUIRE(v < num_nodes(), "node out of range");
    RR_REQUIRE(p < offsets_[v + 1] - offsets_[v], "port out of range");
    return neighbors_[offsets_[v] + p];
  }

  /// Neighbors of `v` in port order.
  std::span<const NodeId> neighbors(NodeId v) const {
    RR_REQUIRE(v < num_nodes(), "node out of range");
    return {neighbors_ + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  // ---- unchecked hot-path accessors (engine inner loops) ----

  /// Pointer to the port-ordered neighbor row of `v`; valid for
  /// [0, degree(v)) without bounds checks.
  const NodeId* row(NodeId v) const { return neighbors_ + offsets_[v]; }
  /// Base of the flat arc-head array; engines that cache per-node row
  /// offsets (graph::NodeState::row_begin) index it directly and skip the
  /// offsets_ lookup of row().
  const NodeId* arcs() const { return neighbors_; }
  /// Offset of v's neighbor row in arcs() (what NodeState::row_begin
  /// caches at engine construction).
  std::size_t row_offset(NodeId v) const { return offsets_[v]; }
  std::uint32_t degree_unchecked(NodeId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Smallest port at `v` leading to `u` (paper's port_v(u)); O(log deg v)
  /// via the neighbor-sorted port index (Graph::port_to is O(deg)).
  /// Requires the edge to exist.
  std::uint32_t port_to(NodeId v, NodeId u) const;

  /// O(log deg v) membership test.
  bool has_edge(NodeId v, NodeId u) const;

 private:
  // Owned-mode storage (empty in view mode).
  std::vector<std::size_t> offsets_store_;  // n+1 prefix sums of degrees
  std::vector<NodeId> neighbors_store_;     // arc heads, port order per node
  // Per-node port permutation sorted by (neighbor, port): sorted_ports_[i]
  // for i in [offsets_[v], offsets_[v+1]) enumerates v's ports so that
  // neighbors_[offsets_[v] + sorted_ports_[i]] is nondecreasing, with ties
  // (parallel edges) broken by smaller port. Supports binary-search
  // port_to/has_edge without disturbing the cyclic port order.
  std::vector<std::uint32_t> ports_store_;

  std::shared_ptr<const void> backing_;  // view mode: keeps the arrays alive

  const std::size_t* offsets_ = nullptr;
  const NodeId* neighbors_ = nullptr;
  const std::uint32_t* sorted_ports_ = nullptr;  // nullptr: linear port_to
  NodeId num_nodes_ = 0;
};

}  // namespace rr::graph
