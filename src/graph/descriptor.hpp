#pragma once

// Self-describing graph descriptors (graph layer).
//
// A checkpoint (sim/checkpoint.hpp) must name the substrate it was taken
// on so a fresh process can rebuild the identical graph before restoring
// engine state. A descriptor is a short space-separated text form of a
// generator call — "ring 64", "torus 16 16", "random-regular 128 4 7" —
// that round-trips through parse()/text() and rebuilds the graph through
// build(). Every generator in graph/generators.hpp has a descriptor
// spelling; the arguments are kept verbatim as tokens so text forms are
// stable byte-for-byte across a round trip.
//
// Parsing and building are total: malformed kinds, wrong arity, or
// arguments violating a generator's preconditions yield nullopt (never
// abort — descriptors arrive from checkpoint files and CLI flags). That
// contract includes build *cost*: descriptors whose graphs would exceed
// ~2^28 arcs are rejected up front (bad_alloc would terminate), as are
// unsatisfiable randomized ones (e.g. erdos-renyi below the connectivity
// threshold, where resample-until-connected is a guaranteed give-up).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace rr::graph {

struct GraphDescriptor {
  std::string kind;               // generator name, e.g. "torus"
  std::vector<std::string> args;  // verbatim argument tokens

  /// Canonical text form: kind and arguments joined by single spaces.
  std::string text() const;

  /// Inverse of text(): splits on spaces; rejects empty input, empty
  /// tokens (double spaces), and unknown kinds / wrong arity.
  static std::optional<GraphDescriptor> parse(const std::string& text);

  /// Builds the graph; nullopt if any argument is malformed or violates
  /// the generator's preconditions (e.g. "ring 2").
  std::optional<Graph> build() const;

  /// Number of nodes the built graph would have, without building it
  /// (checkpoint loaders size per-node arrays up front). nullopt on
  /// invalid parameters.
  std::optional<NodeId> num_nodes() const;

  bool operator==(const GraphDescriptor& other) const = default;

  // ---- factories for the common substrates ----
  static GraphDescriptor ring(NodeId n);
  static GraphDescriptor path(NodeId n);
  static GraphDescriptor grid(NodeId w, NodeId h);
  static GraphDescriptor torus(NodeId w, NodeId h);
  static GraphDescriptor clique(NodeId n);
  static GraphDescriptor star(NodeId n);
  static GraphDescriptor binary_tree(NodeId n);
  static GraphDescriptor hypercube(std::uint32_t d);
  static GraphDescriptor lollipop(NodeId n, NodeId m);
  static GraphDescriptor random_regular(NodeId n, std::uint32_t d,
                                        std::uint64_t seed);
  static GraphDescriptor erdos_renyi(NodeId n, double p, std::uint64_t seed);
};

/// parse + build in one call.
std::optional<Graph> graph_from_descriptor(const std::string& text);

}  // namespace rr::graph
