#include "graph/eulerian.hpp"

#include <algorithm>

namespace rr::graph {

std::vector<std::size_t> arc_offsets(const Graph& g) {
  std::vector<std::size_t> offsets(g.num_nodes() + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    offsets[v + 1] = offsets[v] + g.degree(v);
  }
  return offsets;
}

std::vector<Arc> eulerian_circuit(const Graph& g, NodeId start) {
  RR_REQUIRE(g.num_edges() > 0, "Eulerian circuit needs at least one edge");
  RR_REQUIRE(g.is_connected(), "Eulerian circuit needs a connected graph");
  RR_REQUIRE(start < g.num_nodes(), "start out of range");

  // Hierholzer on the symmetric directed version: every node's out-degree
  // equals its in-degree (= deg), so a circuit through all arcs exists.
  // next_port[v]: first untraversed outgoing port at v.
  std::vector<std::uint32_t> next_port(g.num_nodes(), 0);
  std::vector<Arc> stack;      // current partial trail (as arcs)
  std::vector<Arc> circuit;    // finished arcs in reverse order
  circuit.reserve(g.num_arcs());

  NodeId v = start;
  while (true) {
    if (next_port[v] < g.degree(v)) {
      const Arc a{v, next_port[v]++};
      stack.push_back(a);
      v = a.head(g);
    } else if (!stack.empty()) {
      circuit.push_back(stack.back());
      v = stack.back().tail;
      stack.pop_back();
    } else {
      break;
    }
  }
  std::reverse(circuit.begin(), circuit.end());
  RR_REQUIRE(circuit.size() == g.num_arcs(),
             "graph must be connected for a full circuit");
  return circuit;
}

bool is_eulerian_circuit(const Graph& g, const std::vector<Arc>& circuit) {
  if (circuit.size() != g.num_arcs()) return false;
  const auto offsets = arc_offsets(g);
  std::vector<bool> used(g.num_arcs(), false);
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    const Arc& a = circuit[i];
    if (a.tail >= g.num_nodes() || a.port >= g.degree(a.tail)) return false;
    const std::size_t id = offsets[a.tail] + a.port;
    if (used[id]) return false;
    used[id] = true;
    const Arc& b = circuit[(i + 1) % circuit.size()];
    if (a.head(g) != b.tail) return false;  // incidence (and closure at wrap)
  }
  return true;
}

std::vector<Arc> rotor_walk_arcs(const Graph& g, NodeId start,
                                 std::uint64_t steps) {
  RR_REQUIRE(start < g.num_nodes(), "start out of range");
  std::vector<std::uint32_t> ptr(g.num_nodes(), 0);
  std::vector<Arc> arcs;
  arcs.reserve(steps);
  NodeId pos = start;
  for (std::uint64_t t = 0; t < steps; ++t) {
    const Arc a{pos, ptr[pos]};
    ptr[pos] = (ptr[pos] + 1 == g.degree(pos)) ? 0 : ptr[pos] + 1;
    pos = a.head(g);
    arcs.push_back(a);
  }
  return arcs;
}

}  // namespace rr::graph
