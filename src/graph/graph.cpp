#include "graph/graph.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace rr::graph {

void Graph::permute_ports(NodeId v, std::span<const std::uint32_t> perm) {
  RR_REQUIRE(v < num_nodes(), "node out of range");
  RR_REQUIRE(perm.size() == adj_[v].size(), "permutation size must equal degree");
  std::vector<bool> seen(perm.size(), false);
  for (std::uint32_t p : perm) {
    RR_REQUIRE(p < perm.size() && !seen[p], "not a permutation");
    seen[p] = true;
  }
  std::vector<NodeId> next(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) next[i] = adj_[v][perm[i]];
  adj_[v] = std::move(next);
}

void Graph::rotate_ports(NodeId v, std::uint32_t offset) {
  RR_REQUIRE(v < num_nodes(), "node out of range");
  if (adj_[v].empty()) return;
  offset %= static_cast<std::uint32_t>(adj_[v].size());
  std::rotate(adj_[v].begin(), adj_[v].begin() + offset, adj_[v].end());
}

std::vector<std::uint32_t> Graph::bfs_distances(NodeId src) const {
  RR_REQUIRE(src < num_nodes(), "node out of range");
  constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(num_nodes(), kInf);
  std::queue<NodeId> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop();
    for (NodeId u : adj_[v]) {
      if (dist[u] == kInf) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
    }
  }
  return dist;
}

bool Graph::is_connected() const {
  if (num_nodes() == 0) return true;
  auto dist = bfs_distances(0);
  return std::none_of(dist.begin(), dist.end(), [](std::uint32_t d) {
    return d == std::numeric_limits<std::uint32_t>::max();
  });
}

std::uint32_t Graph::eccentricity(NodeId src) const {
  auto dist = bfs_distances(src);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    RR_REQUIRE(d != std::numeric_limits<std::uint32_t>::max(),
               "eccentricity requires a connected graph");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t Graph::diameter() const {
  RR_REQUIRE(num_nodes() > 0, "diameter of empty graph");
  std::uint32_t d = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) d = std::max(d, eccentricity(v));
  return d;
}

bool Graph::all_degrees_even() const {
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (degree(v) % 2 != 0) return false;
  }
  return true;
}

}  // namespace rr::graph
