#pragma once

// Eulerian circuits of the directed symmetric version G (S1 extension).
//
// Background for the Yanovski et al. substrate result: the single-agent
// rotor-router stabilizes to a traversal of a directed Eulerian circuit of
// G = (V, {(u,v),(v,u) : {u,v} in E}), which always exists for connected G.
// This module constructs such a circuit directly (Hierholzer's algorithm)
// and provides verification helpers used to check that the rotor-router's
// locked-in cycle is indeed Eulerian.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace rr::graph {

/// One arc of the directed symmetric version, identified by its tail and
/// the port at the tail.
struct Arc {
  NodeId tail;
  std::uint32_t port;

  NodeId head(const Graph& g) const { return g.neighbor(tail, port); }
  bool operator==(const Arc&) const = default;
};

/// Global arc id: offsets[tail] + port (matches limit_cycle.cpp numbering).
std::vector<std::size_t> arc_offsets(const Graph& g);

/// Constructs a directed Eulerian circuit of the symmetric version of `g`
/// starting at `start` using Hierholzer's algorithm. The result has
/// exactly 2|E| arcs; consecutive arcs are incident (head == next tail)
/// and the circuit closes. Requires `g` connected with at least one edge.
std::vector<Arc> eulerian_circuit(const Graph& g, NodeId start);

/// Checks that `circuit` is a directed Eulerian circuit of `g`: correct
/// length, incidence-chained, closed, and covering every arc exactly once.
bool is_eulerian_circuit(const Graph& g, const std::vector<Arc>& circuit);

/// Records the arcs traversed by a single rotor-router agent over `steps`
/// rounds from `start` (pointers all initially 0). Convenience used to
/// compare the locked-in rotor walk against eulerian_circuit().
std::vector<Arc> rotor_walk_arcs(const Graph& g, NodeId start,
                                 std::uint64_t steps);

}  // namespace rr::graph
