#pragma once

// Undirected graph substrate with fixed cyclic port orderings (S1).
//
// The rotor-router model (paper Sec. 1.3) operates on the directed symmetric
// version of an undirected graph G: every undirected edge {u,v} contributes
// arcs (u,v) and (v,u). Each node v keeps a fixed cyclic order rho_v of its
// outgoing arcs; ports are the positions 0..deg(v)-1 in that order. The
// order is fixed at construction time (it may be permuted before any
// simulation starts, modelling the adversary's choice) and never changes
// during exploration.

#include <cstdint>
#include <span>
#include <vector>

#include "common/require.hpp"

namespace rr::graph {

using NodeId = std::uint32_t;

/// Undirected multigraph with per-node cyclic port orderings.
///
/// Storage is adjacency lists: `neighbor(v, p)` is the node reached from v
/// through port p, and the cyclic successor of port p is (p+1) mod deg(v),
/// implementing next(v,u) from the paper.
class Graph {
 public:
  /// Creates a graph with `n` isolated nodes.
  explicit Graph(NodeId n) : adj_(n) {}

  /// Adds the undirected edge {u,v}; the new arcs take the next free port
  /// at each endpoint. Self-loops are rejected (the paper's model is on
  /// simple connected graphs); parallel edges are allowed.
  void add_edge(NodeId u, NodeId v) {
    RR_REQUIRE(u < num_nodes() && v < num_nodes(), "edge endpoint out of range");
    RR_REQUIRE(u != v, "self-loops are not part of the model");
    adj_[u].push_back(v);
    adj_[v].push_back(u);
    ++num_edges_;
  }

  NodeId num_nodes() const { return static_cast<NodeId>(adj_.size()); }
  std::size_t num_edges() const { return num_edges_; }
  /// Number of arcs in the directed symmetric version (2|E|).
  std::size_t num_arcs() const { return 2 * num_edges_; }

  std::uint32_t degree(NodeId v) const {
    RR_REQUIRE(v < num_nodes(), "node out of range");
    return static_cast<std::uint32_t>(adj_[v].size());
  }

  /// Node reached from `v` through port `p`.
  NodeId neighbor(NodeId v, std::uint32_t p) const {
    RR_REQUIRE(v < num_nodes(), "node out of range");
    RR_REQUIRE(p < adj_[v].size(), "port out of range");
    return adj_[v][p];
  }

  /// Neighbors of `v` in port order.
  std::span<const NodeId> neighbors(NodeId v) const {
    RR_REQUIRE(v < num_nodes(), "node out of range");
    return {adj_[v].data(), adj_[v].size()};
  }

  /// Smallest port at `v` leading to `u` (paper's port_v(u)); requires the
  /// edge to exist. O(deg v); CsrGraph::port_to offers the indexed lookup.
  std::uint32_t port_to(NodeId v, NodeId u) const {
    RR_REQUIRE(v < num_nodes() && u < num_nodes(), "node out of range");
    for (std::uint32_t p = 0; p < adj_[v].size(); ++p) {
      if (adj_[v][p] == u) return p;
    }
    RR_UNREACHABLE("port_to: no edge between the given nodes");
  }

  bool has_edge(NodeId v, NodeId u) const {
    if (v >= num_nodes() || u >= num_nodes()) return false;
    for (NodeId w : adj_[v]) {
      if (w == u) return true;
    }
    return false;
  }

  /// Reorders the ports at `v` by the permutation `perm` (new port i leads
  /// where old port perm[i] led). Models the adversary's choice of cyclic
  /// order before exploration starts.
  void permute_ports(NodeId v, std::span<const std::uint32_t> perm);

  /// Rotates the port order at every node by node-specific offsets; a
  /// convenience for constructing adversarial cyclic orders.
  void rotate_ports(NodeId v, std::uint32_t offset);

  // ---- global structure queries (BFS-based; intended for test/bench-scale
  // graphs, not asymptotically optimal) ----

  bool is_connected() const;
  /// Graph diameter D (max over BFS eccentricities). Requires connectivity.
  std::uint32_t diameter() const;
  /// BFS distances from `src` (UINT32_MAX for unreachable nodes).
  std::vector<std::uint32_t> bfs_distances(NodeId src) const;
  /// Max distance from `src` to any node.
  std::uint32_t eccentricity(NodeId src) const;

  /// True if every node has even degree (an Eulerian circuit of G exists);
  /// the directed symmetric version always has one for connected G.
  bool all_degrees_even() const;

  bool operator==(const Graph& other) const = default;

 private:
  std::vector<std::vector<NodeId>> adj_;
  std::size_t num_edges_ = 0;
};

}  // namespace rr::graph
