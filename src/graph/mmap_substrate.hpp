#pragma once

// Out-of-core graph substrate: the `rr-graph v1` on-disk image.
//
// Engines at bench scale are bounded by what fits in RAM: a 1e8-node
// instance needs ~9 GB of CSR adjacency plus per-node engine state, and
// materializing it through graph::Graph (vector-of-vectors) costs several
// times that in allocator overhead before the CSR snapshot even starts.
// The image sidesteps both: `MappedSubstrate::build` streams a descriptor
// ("ring N", "torus W H" have dedicated row generators with no in-memory
// graph at all; other kinds go through GraphDescriptor::build) into a
// flat file, and `MappedSubstrate::open` maps the whole file MAP_PRIVATE
// so CsrGraph and the engine's NodeState/VisitStats arrays are backed by
// the page cache — an engine steps a 1e8-node instance touching only the
// pages its agents actually visit, and the private copy-on-write mapping
// keeps every run's mutations isolated from the file.
//
// Image layout (little-endian, every section 4096-byte aligned):
//
//   page 0   ImageHeader + descriptor text (self-describing; an FNV-1a
//            stamp over fields + descriptor rejects torn/foreign files)
//   offsets      u64[num_nodes + 1]   CSR prefix sums (CsrGraph::offsets)
//   neighbors    u32[num_arcs]        arc heads in port order
//   sorted_ports u32[num_arcs]        per-node (neighbor, port)-sorted
//                                     permutation (CsrGraph::port_to)
//   node_state   NodeState[num_nodes] count/pointer 0, degree and
//                                     row_begin precomputed
//   visit_stats  u64[4 * num_nodes]   {visits 0, exits 0, first_visit ~0,
//                                     last_visit 0} per node — the
//                                     core::VisitStats layout with the
//                                     never-visited sentinel pre-filled
//
// so an engine constructed over a fresh mapping starts in exactly the
// state its in-RAM constructor would build, minus the O(n) init scans.
//
// MappedArray<T> is the storage adapter: engines declare their per-node
// arrays as MappedArray and get either an owned vector (in-RAM
// construction) or a view into the mapping (image construction) behind
// one indexing interface. madvise hints are per scan phase:
// advise_random for agent stepping, advise_sequential before whole-image
// scans (serialization).
//
// Platform: build/open require POSIX mmap; on other platforms build
// returns false and open returns nullptr (callers degrade to in-RAM
// construction).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/require.hpp"
#include "graph/csr_graph.hpp"
#include "graph/partition.hpp"

namespace rr::graph {

/// Owned-or-mapped array: an owned mode backed by a member vector and a
/// view mode aliasing external storage kept alive by `backing_`. Copying
/// an owned array copies the elements; copying a view shares them (the
/// mmap substrate is MAP_PRIVATE, one mapping per opened image, so
/// sharing a view means sharing that image instance's state).
template <typename T>
class MappedArray {
 public:
  MappedArray() = default;
  /// Owned mode: `n` value-initialized elements.
  explicit MappedArray(std::size_t n)
      : store_(n), data_(store_.data()), size_(n) {}
  /// View mode over [data, data + n); `backing` is held for the view's
  /// lifetime.
  MappedArray(T* data, std::size_t n, std::shared_ptr<void> backing)
      : backing_(std::move(backing)), data_(data), size_(n) {}

  MappedArray(const MappedArray& other) { *this = other; }
  MappedArray& operator=(const MappedArray& other) {
    store_ = other.store_;
    backing_ = other.backing_;
    size_ = other.size_;
    data_ = backing_ ? other.data_ : store_.data();
    return *this;
  }
  // Vector moves keep their heap buffer, so the member-wise move leaves
  // data_ pointing at storage now owned by the destination.
  MappedArray(MappedArray&&) noexcept = default;
  MappedArray& operator=(MappedArray&&) noexcept = default;

  std::size_t size() const { return size_; }
  T* data() { return data_; }
  const T* data() const { return data_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  std::vector<T> store_;           // owned mode
  std::shared_ptr<void> backing_;  // view mode: keeps the mapping alive
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

/// One opened `rr-graph v1` image. Instances are created only through
/// open() (shared_ptr ownership lets the CsrGraph / MappedArray views it
/// hands out keep the mapping alive past the substrate handle itself).
class MappedSubstrate : public std::enable_shared_from_this<MappedSubstrate> {
 public:
  /// Streams the graph named by `descriptor_text` into an image at
  /// `path` (written to `path`.tmp, then renamed). "ring N" / "torus W H"
  /// stream row-by-row with no in-memory graph, so N may far exceed the
  /// descriptor build cap; every other kind builds through
  /// GraphDescriptor::build (its cost caps apply) and must be connected.
  /// False on malformed/oversized descriptors or I/O failure; `*error`
  /// (optional) receives a one-line reason.
  static bool build(const std::string& descriptor_text,
                    const std::string& path, std::string* error = nullptr);

  /// Maps an image read-write MAP_PRIVATE and validates its framing
  /// (magic, version, header stamp, section bounds). nullptr on any
  /// malformed image — never aborts; images are external input.
  static std::shared_ptr<MappedSubstrate> open(const std::string& path);

  ~MappedSubstrate();
  MappedSubstrate(const MappedSubstrate&) = delete;
  MappedSubstrate& operator=(const MappedSubstrate&) = delete;

  const std::string& descriptor() const { return descriptor_; }
  NodeId num_nodes() const { return static_cast<NodeId>(num_nodes_); }
  std::uint64_t num_arcs() const { return num_arcs_; }
  /// Total image size — what a fully resident in-RAM copy would cost.
  std::uint64_t image_bytes() const { return map_size_; }

  /// CSR view over the mapped offsets/neighbors/sorted_ports sections;
  /// holds the mapping alive.
  CsrGraph csr();

  /// The engine-ready NodeState array (count/pointer zero, degree and
  /// row_begin filled by the builder).
  MappedArray<NodeState> node_state();

  /// The visit-statistics array, reinterpreted as the caller's stats
  /// record (core::VisitStats); sizeof(T) must match the image's 32-byte
  /// record with first_visit pre-set to the ~0 sentinel.
  template <typename T>
  MappedArray<T> visit_stats() {
    static_assert(std::is_trivially_copyable_v<T>);
    return MappedArray<T>(static_cast<T*>(visit_stats_raw(sizeof(T))),
                          num_nodes_, shared_from_this());
  }

  /// madvise hints for the two scan shapes: agent stepping touches
  /// scattered rows (random), serialization sweeps every section once
  /// (sequential). Hints only — never required for correctness.
  void advise_random() const;
  void advise_sequential() const;

  /// True exactly once per open(). The state sections of this mapping
  /// hold the image's pristine values only until the first engine is
  /// constructed over them — engines sharing one open share the COW
  /// pages. The first claimant may therefore treat the arrays as
  /// construction-defaults (enabling the default-skipping restore);
  /// later engines over the same handle must not.
  bool claim_pristine_state() { return !state_claimed_.exchange(true); }

 private:
  MappedSubstrate() = default;
  void* section(std::uint64_t off) const {
    return static_cast<std::uint8_t*>(map_) + off;
  }
  void* visit_stats_raw(std::size_t record_size);

  void* map_ = nullptr;
  std::uint64_t map_size_ = 0;
  std::atomic<bool> state_claimed_{false};
  std::string descriptor_;
  std::uint64_t num_nodes_ = 0;
  std::uint64_t num_arcs_ = 0;
  std::uint64_t offsets_off_ = 0;
  std::uint64_t neighbors_off_ = 0;
  std::uint64_t ports_off_ = 0;
  std::uint64_t node_state_off_ = 0;
  std::uint64_t visit_stats_off_ = 0;
};

}  // namespace rr::graph
