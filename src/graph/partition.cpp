#include "graph/partition.hpp"

#include <algorithm>

namespace rr::graph {

Partition::Partition(const CsrGraph& g, std::uint32_t shards) {
  const NodeId n = g.num_nodes();
  RR_REQUIRE(n > 0, "cannot partition an empty graph");
  if (shards == 0) shards = 1;
  if (shards > n) shards = n;

  // Weighted prefix boundaries: shard s ends at the smallest row whose
  // cumulative weight reaches total * (s+1) / shards. Weights are 1 + deg
  // so the split tracks per-round work (scan cost + exit fan-out). The
  // max(.., previous + 1) keeps every shard non-empty even when a single
  // hub node carries most of the weight.
  std::uint64_t total = 0;
  for (NodeId v = 0; v < n; ++v) total += 1 + g.degree_unchecked(v);

  starts_.assign(shards + 1, 0);
  std::uint64_t prefix = 0;
  NodeId v = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    starts_[s] = v;
    const std::uint64_t target = total * (s + 1) / shards;
    // Leave enough rows for the remaining shards to get one each.
    const NodeId ceiling = n - (shards - 1 - s);
    while (v < ceiling && (prefix < target || v == starts_[s])) {
      prefix += 1 + g.degree_unchecked(v);
      ++v;
    }
  }
  starts_[shards] = n;

  frontier_.resize(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    auto& fr = frontier_[s];
    for (NodeId w = starts_[s]; w < starts_[s + 1]; ++w) {
      for (NodeId u : g.neighbors(w)) {
        if (u < starts_[s] || u >= starts_[s + 1]) fr.push_back(u);
      }
    }
    std::sort(fr.begin(), fr.end());
    fr.erase(std::unique(fr.begin(), fr.end()), fr.end());
  }

  frontier_owners_.resize(shards);
  if (shards > 1) {
    arc_slots_.resize(g.num_arcs());
    for (std::uint32_t s = 0; s < shards; ++s) {
      frontier_owners_[s].resize(frontier_[s].size());
      for (std::uint32_t slot = 0; slot < frontier_[s].size(); ++slot) {
        frontier_owners_[s][slot] = owner(frontier_[s][slot]);
      }
      for (NodeId w = starts_[s]; w < starts_[s + 1]; ++w) {
        const std::size_t base = g.row_offset(w);
        const auto row = g.neighbors(w);
        for (std::uint32_t p = 0; p < static_cast<std::uint32_t>(row.size()); ++p) {
          const NodeId u = row[p];
          arc_slots_[base + p] = (u >= starts_[s] && u < starts_[s + 1])
                                     ? kInShard
                                     : frontier_slot(s, u);
        }
      }
    }
  }
}

std::uint32_t Partition::owner(NodeId v) const {
  RR_REQUIRE(v < num_nodes(), "node out of range");
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), v);
  return static_cast<std::uint32_t>(it - starts_.begin() - 1);
}

std::uint32_t Partition::frontier_slot(std::uint32_t s, NodeId u) const {
  const auto& fr = frontier_[s];
  const auto it = std::lower_bound(fr.begin(), fr.end(), u);
  RR_ASSERT(it != fr.end() && *it == u, "node not on shard frontier");
  return static_cast<std::uint32_t>(it - fr.begin());
}

}  // namespace rr::graph
