#include "graph/csr_graph.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

namespace rr::graph {

CsrGraph::CsrGraph(const Graph& g) {
  const NodeId n = g.num_nodes();
  num_nodes_ = n;
  offsets_store_.resize(static_cast<std::size_t>(n) + 1);
  offsets_store_[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    offsets_store_[v + 1] = offsets_store_[v] + g.degree(v);
  }
  neighbors_store_.resize(offsets_store_[n]);
  ports_store_.resize(offsets_store_[n]);
  for (NodeId v = 0; v < n; ++v) {
    const auto row = g.neighbors(v);
    std::copy(row.begin(), row.end(),
              neighbors_store_.begin() + offsets_store_[v]);
    auto* ports = ports_store_.data() + offsets_store_[v];
    std::iota(ports, ports + row.size(), 0u);
    const NodeId* heads = neighbors_store_.data() + offsets_store_[v];
    std::sort(ports, ports + row.size(),
              [heads](std::uint32_t a, std::uint32_t b) {
                return heads[a] != heads[b] ? heads[a] < heads[b] : a < b;
              });
  }
  offsets_ = offsets_store_.data();
  neighbors_ = neighbors_store_.data();
  sorted_ports_ = ports_store_.data();
}

CsrGraph::CsrGraph(const std::size_t* offsets, NodeId num_nodes,
                   const NodeId* neighbors, const std::uint32_t* sorted_ports,
                   std::shared_ptr<const void> backing)
    : backing_(std::move(backing)),
      offsets_(offsets),
      neighbors_(neighbors),
      sorted_ports_(sorted_ports),
      num_nodes_(num_nodes) {
  RR_REQUIRE(offsets_ != nullptr && neighbors_ != nullptr,
             "CsrGraph view requires offsets and neighbors arrays");
}

CsrGraph& CsrGraph::operator=(const CsrGraph& other) {
  offsets_store_ = other.offsets_store_;
  neighbors_store_ = other.neighbors_store_;
  ports_store_ = other.ports_store_;
  backing_ = other.backing_;
  num_nodes_ = other.num_nodes_;
  if (backing_ != nullptr) {  // view: share the external arrays
    offsets_ = other.offsets_;
    neighbors_ = other.neighbors_;
    sorted_ports_ = other.sorted_ports_;
  } else {  // owned: rebind to this object's copies
    offsets_ = offsets_store_.data();
    neighbors_ = neighbors_store_.data();
    sorted_ports_ = ports_store_.empty() ? nullptr : ports_store_.data();
  }
  return *this;
}

std::uint32_t CsrGraph::port_to(NodeId v, NodeId u) const {
  RR_REQUIRE(v < num_nodes() && u < num_nodes(), "node out of range");
  const NodeId* heads = neighbors_ + offsets_[v];
  const std::uint32_t deg = degree_unchecked(v);
  if (sorted_ports_ == nullptr) {
    for (std::uint32_t p = 0; p < deg; ++p) {
      if (heads[p] == u) return p;
    }
    RR_UNREACHABLE("port_to: no edge between the given nodes");
  }
  const std::uint32_t* first = sorted_ports_ + offsets_[v];
  const std::uint32_t* last = sorted_ports_ + offsets_[v + 1];
  const std::uint32_t* it = std::lower_bound(
      first, last, u,
      [heads](std::uint32_t port, NodeId target) { return heads[port] < target; });
  RR_REQUIRE(it != last && heads[*it] == u,
             "port_to: no edge between the given nodes");
  return *it;  // ties sort by port, so this is the smallest matching port
}

bool CsrGraph::has_edge(NodeId v, NodeId u) const {
  if (v >= num_nodes() || u >= num_nodes()) return false;
  const NodeId* heads = neighbors_ + offsets_[v];
  const std::uint32_t deg = degree_unchecked(v);
  if (sorted_ports_ == nullptr) {
    for (std::uint32_t p = 0; p < deg; ++p) {
      if (heads[p] == u) return true;
    }
    return false;
  }
  const std::uint32_t* first = sorted_ports_ + offsets_[v];
  const std::uint32_t* last = sorted_ports_ + offsets_[v + 1];
  const std::uint32_t* it = std::lower_bound(
      first, last, u,
      [heads](std::uint32_t port, NodeId target) { return heads[port] < target; });
  return it != last && heads[*it] == u;
}

}  // namespace rr::graph
