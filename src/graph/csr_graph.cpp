#include "graph/csr_graph.hpp"

#include <algorithm>
#include <numeric>

namespace rr::graph {

CsrGraph::CsrGraph(const Graph& g) {
  const NodeId n = g.num_nodes();
  offsets_.resize(static_cast<std::size_t>(n) + 1);
  offsets_[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + g.degree(v);
  }
  neighbors_.resize(offsets_[n]);
  sorted_ports_.resize(offsets_[n]);
  for (NodeId v = 0; v < n; ++v) {
    const auto row = g.neighbors(v);
    std::copy(row.begin(), row.end(), neighbors_.begin() + offsets_[v]);
    auto* ports = sorted_ports_.data() + offsets_[v];
    std::iota(ports, ports + row.size(), 0u);
    const NodeId* heads = neighbors_.data() + offsets_[v];
    std::sort(ports, ports + row.size(),
              [heads](std::uint32_t a, std::uint32_t b) {
                return heads[a] != heads[b] ? heads[a] < heads[b] : a < b;
              });
  }
}

std::uint32_t CsrGraph::port_to(NodeId v, NodeId u) const {
  RR_REQUIRE(v < num_nodes() && u < num_nodes(), "node out of range");
  const NodeId* heads = neighbors_.data() + offsets_[v];
  const std::uint32_t* first = sorted_ports_.data() + offsets_[v];
  const std::uint32_t* last = sorted_ports_.data() + offsets_[v + 1];
  const std::uint32_t* it = std::lower_bound(
      first, last, u,
      [heads](std::uint32_t port, NodeId target) { return heads[port] < target; });
  RR_REQUIRE(it != last && heads[*it] == u,
             "port_to: no edge between the given nodes");
  return *it;  // ties sort by port, so this is the smallest matching port
}

bool CsrGraph::has_edge(NodeId v, NodeId u) const {
  if (v >= num_nodes() || u >= num_nodes()) return false;
  const NodeId* heads = neighbors_.data() + offsets_[v];
  const std::uint32_t* first = sorted_ports_.data() + offsets_[v];
  const std::uint32_t* last = sorted_ports_.data() + offsets_[v + 1];
  const std::uint32_t* it = std::lower_bound(
      first, last, u,
      [heads](std::uint32_t port, NodeId target) { return heads[port] < target; });
  return it != last && heads[*it] == u;
}

}  // namespace rr::graph
