#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace rr::graph {

Graph ring(NodeId n) {
  RR_REQUIRE(n >= 3, "ring requires n >= 3");
  Graph g(n);
  // Insertion order fixes the port convention: the clockwise arc (to v+1)
  // is added first at every node, so it receives port 0 everywhere except
  // at node 0... insert edges so that each node's first port is clockwise.
  // Edge {v, v+1} gives v its clockwise arc and v+1 its anticlockwise arc;
  // adding edges in increasing v order yields, at node v>0: port 0 =
  // anticlockwise (from edge {v-1,v}), port 1 = clockwise. We instead add
  // all edges then normalize by rotating ports so port 0 is clockwise at
  // every node.
  for (NodeId v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  for (NodeId v = 1; v < n; ++v) g.rotate_ports(v, 1);
  // Node 0: edges {0,1} then {n-1,0} were added, so port 0 = 1 (clockwise)
  // already; nodes 1..n-1 got anticlockwise first and were rotated.
  return g;
}

Graph path(NodeId n) {
  RR_REQUIRE(n >= 2, "path requires n >= 2");
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  // Normalize: at internal nodes port 0 points toward higher ids.
  for (NodeId v = 1; v + 1 < n; ++v) g.rotate_ports(v, 1);
  return g;
}

Graph grid(NodeId w, NodeId h) {
  RR_REQUIRE(w >= 2 && h >= 2, "grid requires w,h >= 2");
  Graph g(w * h);
  auto id = [w](NodeId x, NodeId y) { return y * w + x; };
  for (NodeId y = 0; y < h; ++y) {
    for (NodeId x = 0; x < w; ++x) {
      if (x + 1 < w) g.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < h) g.add_edge(id(x, y), id(x, y + 1));
    }
  }
  return g;
}

Graph torus(NodeId w, NodeId h) {
  RR_REQUIRE(w >= 3 && h >= 3, "torus requires w,h >= 3");
  Graph g(w * h);
  auto id = [w](NodeId x, NodeId y) { return y * w + x; };
  for (NodeId y = 0; y < h; ++y) {
    for (NodeId x = 0; x < w; ++x) {
      g.add_edge(id(x, y), id((x + 1) % w, y));
      g.add_edge(id(x, y), id(x, (y + 1) % h));
    }
  }
  return g;
}

Graph clique(NodeId n) {
  RR_REQUIRE(n >= 2, "clique requires n >= 2");
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph star(NodeId n) {
  RR_REQUIRE(n >= 2, "star requires n >= 2");
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph binary_tree(NodeId n) {
  RR_REQUIRE(n >= 1, "binary_tree requires n >= 1");
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge((v - 1) / 2, v);
  return g;
}

Graph hypercube(std::uint32_t d) {
  RR_REQUIRE(d >= 1 && d < 25, "hypercube dimension out of range");
  const NodeId n = NodeId{1} << d;
  Graph g(n);
  // Add edges in bit order from each node's perspective: iterating bits in
  // the outer loop makes port i flip bit i at every node.
  for (std::uint32_t bit = 0; bit < d; ++bit) {
    for (NodeId v = 0; v < n; ++v) {
      NodeId u = v ^ (NodeId{1} << bit);
      if (v < u) g.add_edge(v, u);
    }
  }
  return g;
}

Graph lollipop(NodeId n, NodeId m) {
  RR_REQUIRE(m >= 3 && m <= n, "lollipop requires 3 <= m <= n");
  Graph g(n);
  for (NodeId u = 0; u < m; ++u) {
    for (NodeId v = u + 1; v < m; ++v) g.add_edge(u, v);
  }
  for (NodeId v = m; v < n; ++v) g.add_edge(v - 1, v);
  return g;
}

namespace {

bool try_random_regular(NodeId n, std::uint32_t d, Rng& rng, Graph& out) {
  // Configuration model: d stubs per node, random perfect matching, reject
  // self-loops and parallel edges.
  std::vector<NodeId> stubs(static_cast<std::size_t>(n) * d);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t i = 0; i < d; ++i) stubs[static_cast<std::size_t>(v) * d + i] = v;
  }
  for (std::size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.bounded(static_cast<std::uint32_t>(i))]);
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(stubs.size() / 2);
  for (std::size_t i = 0; i < stubs.size(); i += 2) {
    NodeId u = stubs[i], v = stubs[i + 1];
    if (u == v) return false;
    edges.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(edges.begin(), edges.end());
  if (std::adjacent_find(edges.begin(), edges.end()) != edges.end()) return false;
  Graph g(n);
  for (auto [u, v] : edges) g.add_edge(u, v);
  if (!g.is_connected()) return false;
  out = std::move(g);
  return true;
}

}  // namespace

Graph random_regular(NodeId n, std::uint32_t d, std::uint64_t seed) {
  RR_REQUIRE(d >= 2 && d < n, "random_regular requires 2 <= d < n");
  RR_REQUIRE((static_cast<std::uint64_t>(n) * d) % 2 == 0, "n*d must be even");
  Rng rng(seed);
  Graph g(n);
  for (int attempt = 0; attempt < 10000; ++attempt) {
    if (try_random_regular(n, d, rng, g)) return g;
  }
  RR_REQUIRE(false, "random_regular: rejection sampling did not converge");
}

Graph erdos_renyi(NodeId n, double p, std::uint64_t seed) {
  RR_REQUIRE(n >= 2, "erdos_renyi requires n >= 2");
  RR_REQUIRE(p > 0.0 && p <= 1.0, "p must be in (0,1]");
  Rng rng(seed);
  for (int attempt = 0; attempt < 10000; ++attempt) {
    Graph g(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (rng.uniform01() < p) g.add_edge(u, v);
      }
    }
    if (g.is_connected()) return g;
  }
  RR_REQUIRE(false, "erdos_renyi: did not produce a connected sample");
}

}  // namespace rr::graph
