#include "core/ring_rotor_router.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace rr::core {

RingRotorRouter::RingRotorRouter(NodeId n, const std::vector<NodeId>& agents,
                                 std::vector<std::uint8_t> pointers)
    : n_(n),
      num_agents_(static_cast<std::uint32_t>(agents.size())),
      counts_(n, 0),
      arrive_cw_(n, 0),
      arrive_acw_(n, 0),
      travel_dir_(n, kClockwise),
      last_arrival_count_(n, 0),
      last_single_prop_(n, 0),
      visits_(n, 0),
      exits_(n, 0),
      first_visit_(n, kRingNotCovered),
      last_visit_(n, 0) {
  RR_REQUIRE(n >= 3, "ring requires n >= 3");
  RR_REQUIRE(!agents.empty(), "at least one agent required");
  if (pointers.empty()) {
    pointers_.assign(n, kClockwise);
  } else {
    RR_REQUIRE(pointers.size() == n, "pointer vector size mismatch");
    for (std::uint8_t p : pointers) {
      RR_REQUIRE(p <= 1, "ring pointer must be 0 (cw) or 1 (acw)");
    }
    pointers_ = std::move(pointers);
  }
  for (NodeId v : agents) {
    RR_REQUIRE(v < n, "agent start node out of range");
    if (counts_[v] == 0) occupied_.push_back(v);
    ++counts_[v];
    ++visits_[v];
  }
  for (NodeId v : occupied_) {
    first_visit_[v] = 0;
    ++covered_;
    last_arrival_count_[v] = counts_[v];
  }
}

void RingRotorRouter::depart(NodeId v, std::uint32_t moving) {
  const std::uint8_t ptr = pointers_[v];
  // `moving` agents leave along alternating ports starting at `ptr`:
  // ceil(moving/2) through ptr's direction, floor(moving/2) the other way.
  const std::uint32_t via_ptr = (moving + 1) / 2;
  const std::uint32_t via_other = moving - via_ptr;
  const std::uint32_t cw_out = (ptr == kClockwise) ? via_ptr : via_other;
  const std::uint32_t acw_out = moving - cw_out;
  if (cw_out > 0) arrive(clockwise(v), cw_out, kClockwise);
  if (acw_out > 0) arrive(anticlockwise(v), acw_out, kAnticlockwise);
  pointers_[v] = static_cast<std::uint8_t>((ptr + moving) & 1);
  exits_[v] += moving;

  // Classify the visit that just completed at v (Definition 1): it counts
  // toward a lazy domain only if exactly one agent was involved and the
  // departure continued in the arrival's travel direction (propagation).
  if (moving == 1 && last_arrival_count_[v] == 1) {
    const std::uint8_t dep_dir = ptr;  // the port the single agent took
    last_single_prop_[v] = (dep_dir == travel_dir_[v]);
  } else {
    last_single_prop_[v] = 0;
  }
}

void RingRotorRouter::arrive(NodeId u, std::uint32_t count,
                             std::uint8_t travel_dir) {
  if (arrive_cw_[u] == 0 && arrive_acw_[u] == 0) touched_.push_back(u);
  if (travel_dir == kClockwise) {
    arrive_cw_[u] += count;
  } else {
    arrive_acw_[u] += count;
  }
}

void RingRotorRouter::commit_arrivals() {
  std::size_t w = 0;
  for (std::size_t i = 0; i < occupied_.size(); ++i) {
    if (counts_[occupied_[i]] > 0) occupied_[w++] = occupied_[i];
  }
  occupied_.resize(w);
  for (NodeId u : touched_) {
    const std::uint32_t cw = arrive_cw_[u];
    const std::uint32_t acw = arrive_acw_[u];
    const std::uint32_t a = cw + acw;
    arrive_cw_[u] = 0;
    arrive_acw_[u] = 0;
    if (a == 0) continue;
    if (counts_[u] == 0) occupied_.push_back(u);
    counts_[u] += a;
    visits_[u] += a;
    last_visit_[u] = time_;
    last_arrival_count_[u] = a;
    if (a == 1) travel_dir_[u] = (cw == 1) ? kClockwise : kAnticlockwise;
    if (first_visit_[u] == kRingNotCovered) {
      first_visit_[u] = time_;
      ++covered_;
    }
  }
  touched_.clear();
}

std::vector<NodeId> RingRotorRouter::agent_positions() const {
  std::vector<NodeId> pos;
  pos.reserve(num_agents_);
  for (NodeId v : occupied_) {
    for (std::uint32_t i = 0; i < counts_[v]; ++i) pos.push_back(v);
  }
  std::sort(pos.begin(), pos.end());
  return pos;
}

std::uint64_t RingRotorRouter::config_hash() const {
  Fnv1a h;
  for (NodeId v = 0; v < n_; ++v) {
    h.mix(pointers_[v]);
    h.mix(counts_[v]);
  }
  return h.value();
}

void RingRotorRouter::serialize_state(sim::StateWriter& out) const {
  out.field_u64("time", time_);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sites;
  for (NodeId v = 0; v < n_; ++v) {
    if (counts_[v] > 0) sites.emplace_back(v, counts_[v]);
  }
  out.field_pairs("agents", sites);
  out.field_dirs("pointers", pointers_);
  out.field_list("visits", visits_);
  out.field_list("exits", exits_);
  out.field_list("first_visit", first_visit_);
  out.field_list("last_visit", last_visit_);
  out.field_dirs("travel_dir", travel_dir_);
  out.field_list("last_arrival", last_arrival_count_);
  out.field_bits("last_single_prop", last_single_prop_);
}

bool RingRotorRouter::deserialize_state(const sim::StateReader& in) {
  const auto time = in.u64("time");
  const auto sites = in.pairs("agents");
  const auto pointers = in.dirs("pointers", n_);
  const auto visits = in.u64_list("visits", n_);
  const auto exits = in.u64_list("exits", n_);
  const auto first_visit = in.u64_list("first_visit", n_);
  const auto last_visit = in.u64_list("last_visit", n_);
  const auto travel_dir = in.dirs("travel_dir", n_);
  const auto last_arrival = in.u64_list("last_arrival", n_);
  const auto last_single_prop = in.bits("last_single_prop", n_);
  if (!time || !sites || sites->empty() || !pointers || !visits || !exits ||
      !first_visit || !last_visit || !travel_dir || !last_arrival ||
      !last_single_prop) {
    return false;
  }
  std::uint64_t total_agents = 0;
  for (const auto& [v, c] : *sites) {
    if (v >= n_ || c == 0 || c > ~std::uint32_t{0}) return false;
    total_agents += c;
  }
  if (total_agents > ~std::uint32_t{0}) return false;
  for (std::uint64_t a : *last_arrival) {
    if (a > ~std::uint32_t{0}) return false;
  }

  time_ = *time;
  num_agents_ = static_cast<std::uint32_t>(total_agents);
  counts_.assign(n_, 0);
  occupied_.clear();
  for (const auto& [v, c] : *sites) {
    counts_[v] = static_cast<std::uint32_t>(c);
    occupied_.push_back(static_cast<NodeId>(v));
  }
  pointers_ = *pointers;
  visits_ = *visits;
  exits_ = *exits;
  first_visit_ = *first_visit;
  last_visit_ = *last_visit;
  travel_dir_ = *travel_dir;
  last_arrival_count_.assign(last_arrival->begin(), last_arrival->end());
  last_single_prop_ = *last_single_prop;
  covered_ = 0;
  for (NodeId v = 0; v < n_; ++v) {
    if (first_visit_[v] != kRingNotCovered) ++covered_;
  }
  return true;
}

}  // namespace rr::core
