#pragma once

// Shared StateIO codec of the two general-graph rotor-router engines.
//
// core::RotorRouter and core::ShardedRotorRouter are the same dynamical
// system over the same packed state (graph::NodeState + core::VisitStats),
// and their checkpoints are documented as interchangeable — both report
// engine_name() "rotor-router" and must serialize the byte-identical
// field set. This header is that field set, written once: both engines'
// serialize_state/deserialize_state/config_hash delegate here, so a field
// added for one engine is automatically read and written by the other
// (drift would otherwise break restore_checkpoint_sharded silently).

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/require.hpp"
#include "core/shard_step.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "sim/state_io.hpp"

namespace rr::core {

/// Constructor-time initialization shared by both engines: validates the
/// configuration (connected graph, in-range agents and pointers), caches
/// degree/row offsets into the NodeState block, applies the optional
/// initial pointer field, places the agent multiset (counts + the
/// paper's n_v(0) visits), and marks initial hosts covered.
/// on_first_occupy(v) fires the first time a node gains an agent, in
/// `agents` order — engines seed their occupied bookkeeping with it.
/// Returns the number of initially covered nodes.
template <typename OnFirstOccupy>
inline graph::NodeId init_rotor_nodes(const graph::Graph& g,
                                      const graph::CsrGraph& csr,
                                      const std::vector<graph::NodeId>& agents,
                                      const std::vector<std::uint32_t>& pointers,
                                      std::vector<graph::NodeState>& node,
                                      std::vector<std::uint32_t>& initial_pointers,
                                      std::vector<VisitStats>& stats,
                                      OnFirstOccupy&& on_first_occupy) {
  RR_REQUIRE(!agents.empty(), "at least one agent required");
  RR_REQUIRE(g.is_connected(), "rotor-router requires a connected graph");
  if (!pointers.empty()) {
    RR_REQUIRE(pointers.size() == g.num_nodes(), "pointer vector size mismatch");
  }
  initial_pointers.assign(g.num_nodes(), 0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    node[v].degree = csr.degree_unchecked(v);
    node[v].row_begin = csr.row_offset(v);
    if (!pointers.empty()) {
      RR_REQUIRE(pointers[v] < g.degree(v), "pointer out of range");
      node[v].pointer = pointers[v];
      initial_pointers[v] = pointers[v];
    }
  }
  for (graph::NodeId v : agents) {
    RR_REQUIRE(v < g.num_nodes(), "agent start node out of range");
    if (node[v].count == 0) on_first_occupy(v);
    ++node[v].count;
    ++stats[v].visits;  // n_v(0) counts initially placed agents
  }
  graph::NodeId covered = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (node[v].count > 0) {
      stats[v].first_visit = 0;
      ++covered;
    }
  }
  return covered;
}

/// FNV-1a over (pointer, count) per node — the configuration identity
/// both engines report as config_hash.
inline std::uint64_t rotor_config_hash(const std::vector<graph::NodeState>& node) {
  Fnv1a h;
  for (const graph::NodeState& ns : node) {
    h.mix(ns.pointer);
    h.mix(ns.count);
  }
  return h.value();
}

/// Writes the full rotor-router field set: time, sparse agent sites
/// (ascending node id), pointer fields, visit statistics.
inline void serialize_rotor_state(sim::StateWriter& out, std::uint64_t time,
                                  const std::vector<graph::NodeState>& node,
                                  const std::vector<std::uint32_t>& initial_pointers,
                                  const std::vector<VisitStats>& stats) {
  const std::size_t n = node.size();
  out.field_u64("time", time);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sites;
  std::vector<std::uint32_t> pointers(n);
  std::vector<std::uint64_t> visits(n), exits(n), first_visit(n), last_visit(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (node[v].count > 0) sites.emplace_back(v, node[v].count);
    pointers[v] = node[v].pointer;
    visits[v] = stats[v].visits;
    exits[v] = stats[v].exits;
    first_visit[v] = stats[v].first_visit;
    last_visit[v] = stats[v].last_visit;
  }
  out.field_pairs("agents", sites);
  out.field_list("pointers", pointers);
  out.field_list("initial_pointers", initial_pointers);
  out.field_list("visits", visits);
  out.field_list("exits", exits);
  out.field_list("first_visit", first_visit);
  out.field_list("last_visit", last_visit);
}

/// The engine-agnostic result of a restore: everything except the
/// engine's own occupied bookkeeping, which each engine rebuilds from
/// the repopulated counts (sequential: one list; sharded: per shard).
struct RestoredRotorState {
  std::uint64_t time = 0;
  std::uint32_t num_agents = 0;
  graph::NodeId covered = 0;
  /// Occupied nodes in ascending id order (counts already applied).
  std::vector<graph::NodeId> sites;
};

/// Validates and applies a serialize_rotor_state document against `csr`'s
/// topology. On success node/stats/initial_pointers hold the restored
/// state (counts and arrival accumulators reset and repopulated from the
/// sparse sites); on failure returns nullopt and the outputs are
/// unspecified (the StateIO contract for a failed restore).
inline std::optional<RestoredRotorState> deserialize_rotor_state(
    const sim::StateReader& in, const graph::CsrGraph& csr,
    std::vector<graph::NodeState>& node,
    std::vector<std::uint32_t>& initial_pointers,
    std::vector<VisitStats>& stats) {
  const graph::NodeId n = csr.num_nodes();
  const auto time = in.u64("time");
  const auto sites = in.pairs("agents");
  const auto pointers = in.u64_list("pointers", n);
  const auto initial = in.u64_list("initial_pointers", n);
  const auto visits = in.u64_list("visits", n);
  const auto exits = in.u64_list("exits", n);
  const auto first_visit = in.u64_list("first_visit", n);
  const auto last_visit = in.u64_list("last_visit", n);
  if (!time || !sites || sites->empty() || !pointers || !initial || !visits ||
      !exits || !first_visit || !last_visit) {
    return std::nullopt;
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    if ((*pointers)[v] >= csr.degree_unchecked(v)) return std::nullopt;
    if ((*initial)[v] >= csr.degree_unchecked(v)) return std::nullopt;
  }
  std::uint64_t total_agents = 0;
  for (const auto& [v, c] : *sites) {
    if (v >= n || c == 0 || c > ~std::uint32_t{0}) return std::nullopt;
    total_agents += c;
  }
  if (total_agents > ~std::uint32_t{0}) return std::nullopt;

  RestoredRotorState restored;
  restored.time = *time;
  restored.num_agents = static_cast<std::uint32_t>(total_agents);
  initial_pointers.assign(initial->begin(), initial->end());
  for (graph::NodeId v = 0; v < n; ++v) {
    node[v].count = 0;
    node[v].arrivals = 0;
    node[v].pointer = static_cast<std::uint32_t>((*pointers)[v]);
    stats[v].visits = (*visits)[v];
    stats[v].exits = (*exits)[v];
    stats[v].first_visit = (*first_visit)[v];
    stats[v].last_visit = (*last_visit)[v];
    if (stats[v].first_visit != sim::kNotCovered) ++restored.covered;
  }
  restored.sites.reserve(sites->size());
  for (const auto& [v, c] : *sites) {
    node[v].count = static_cast<std::uint32_t>(c);
    restored.sites.push_back(static_cast<graph::NodeId>(v));
  }
  return restored;
}

}  // namespace rr::core
