#pragma once

// Shared StateIO codec of the two general-graph rotor-router engines.
//
// core::RotorRouter and core::ShardedRotorRouter are the same dynamical
// system over the same packed state (graph::NodeState + core::VisitStats),
// and their checkpoints are documented as interchangeable — both report
// engine_name() "rotor-router" and must serialize the byte-identical
// field set. This header is that field set, written once: both engines'
// serialize_state/deserialize_state/config_hash delegate here, so a field
// added for one engine is automatically read and written by the other
// (drift would otherwise break restore_checkpoint_sharded silently).
//
// The helpers are templated over the per-node array types so the same
// code serves owned std::vector state (in-RAM construction) and
// graph::MappedArray views into an mmap'd substrate image
// (graph/mmap_substrate.hpp); both expose size() and operator[].

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/require.hpp"
#include "core/shard_step.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "sim/cycle_jump.hpp"
#include "sim/state_io.hpp"
#include "sim/thread_pool.hpp"

namespace rr::core {

/// CycleLeapable fast hook shared by both rotor-router engines: applies
/// `cycles` confirmed periods by patching time and the per-node stats
/// counters in place — no serialize/reparse round-trip, one pass over the
/// delta runs. Atomic per the CycleLeapable contract: every delta key and
/// length is validated before anything mutates; false means "unknown
/// shape, nothing changed" and the wrapper falls back to its generic
/// (equally exact) leap path.
template <typename StatsArray>
inline bool leap_rotor_accumulators(
    const std::vector<sim::AccumulatorDelta>& deltas, std::uint64_t cycles,
    std::uint64_t& time, StatsArray& stats) {
  const std::uint64_t n = stats.size();
  const auto member_of = [](const std::string& key)
      -> std::uint64_t VisitStats::* {
    if (key == "visits") return &VisitStats::visits;
    if (key == "exits") return &VisitStats::exits;
    if (key == "last_visit") return &VisitStats::last_visit;
    return nullptr;
  };
  for (const sim::AccumulatorDelta& d : deltas) {
    if (d.key == "time") {
      if (!d.scalar) return false;
      continue;
    }
    if (d.scalar || member_of(d.key) == nullptr) return false;
    std::uint64_t covered = 0;
    for (const sim::DeltaRun& r : d.runs) covered += r.len;
    if (covered != n) return false;
  }
  for (const sim::AccumulatorDelta& d : deltas) {
    if (d.key == "time") {
      time += cycles * d.scalar_delta;
      continue;
    }
    const auto member = member_of(d.key);
    std::uint64_t v = 0;
    for (const sim::DeltaRun& r : d.runs) {
      const std::uint64_t add = cycles * r.delta;
      if (add == 0) {
        v += r.len;
        continue;
      }
      for (std::uint64_t j = 0; j < r.len; ++j, ++v) stats[v].*member += add;
    }
  }
  return true;
}

/// The substrate-independent tail of engine construction: validates and
/// applies the optional initial pointer field, places the agent multiset
/// (counts + the paper's n_v(0) visits), and marks initial hosts
/// covered. Assumes node[v].degree/row_begin are already cached (by
/// init_rotor_nodes below, or by the substrate image builder) and stats
/// carry the never-visited sentinel. on_first_occupy(v) fires the first
/// time a node gains an agent, in `agents` order — engines seed their
/// occupied bookkeeping with it. Returns the initially covered count.
/// Touches only the agent nodes (plus every node when a pointer field is
/// given), so out-of-core construction faults in O(agents) pages.
template <typename NodeArray, typename StatsArray, typename OnFirstOccupy>
inline graph::NodeId place_rotor_agents(
    const graph::CsrGraph& csr, const std::vector<graph::NodeId>& agents,
    const std::vector<std::uint32_t>& pointers, NodeArray& node,
    std::vector<std::uint32_t>& initial_pointers, StatsArray& stats,
    OnFirstOccupy&& on_first_occupy) {
  RR_REQUIRE(!agents.empty(), "at least one agent required");
  const graph::NodeId n = csr.num_nodes();
  if (pointers.empty()) {
    initial_pointers.assign(n, 0);
  } else {
    RR_REQUIRE(pointers.size() == n, "pointer vector size mismatch");
    for (graph::NodeId v = 0; v < n; ++v) {
      RR_REQUIRE(pointers[v] < csr.degree_unchecked(v),
                 "pointer out of range");
      node[v].pointer = pointers[v];
    }
    initial_pointers.assign(pointers.begin(), pointers.end());
  }
  graph::NodeId covered = 0;
  for (graph::NodeId v : agents) {
    RR_REQUIRE(v < n, "agent start node out of range");
    if (node[v].count == 0) {
      on_first_occupy(v);
      stats[v].first_visit = 0;
      ++covered;
    }
    ++node[v].count;
    ++stats[v].visits;  // n_v(0) counts initially placed agents
  }
  return covered;
}

/// Constructor-time initialization from a Graph: validates connectivity,
/// caches degree/row offsets into the NodeState block, then places the
/// agents via place_rotor_agents. Returns the initially covered count.
template <typename NodeArray, typename StatsArray, typename OnFirstOccupy>
inline graph::NodeId init_rotor_nodes(const graph::Graph& g,
                                      const graph::CsrGraph& csr,
                                      const std::vector<graph::NodeId>& agents,
                                      const std::vector<std::uint32_t>& pointers,
                                      NodeArray& node,
                                      std::vector<std::uint32_t>& initial_pointers,
                                      StatsArray& stats,
                                      OnFirstOccupy&& on_first_occupy) {
  RR_REQUIRE(g.is_connected(), "rotor-router requires a connected graph");
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    node[v].degree = csr.degree_unchecked(v);
    node[v].row_begin = csr.row_offset(v);
  }
  return place_rotor_agents(csr, agents, pointers, node, initial_pointers,
                            stats,
                            std::forward<OnFirstOccupy>(on_first_occupy));
}

/// FNV-1a over (pointer, count) per node — the configuration identity
/// both engines report as config_hash.
template <typename NodeArray>
inline std::uint64_t rotor_config_hash(const NodeArray& node) {
  Fnv1a h;
  for (const graph::NodeState& ns : node) {
    h.mix(ns.pointer);
    h.mix(ns.count);
  }
  return h.value();
}

/// Writes the full rotor-router field set: time, sparse agent sites
/// (ascending node id), pointer fields, visit statistics. The per-node
/// fields are recorded as lazy views straight over the engine arrays —
/// nothing O(n) is materialized, so checkpointing an mmap-backed 1e8-node
/// engine allocates only the sparse site list (the codecs stream the
/// views; the engine outlives the writer inside write_checkpoint).
template <typename NodeArray, typename StatsArray>
inline void serialize_rotor_state(sim::StateWriter& out, std::uint64_t time,
                                  const NodeArray& node,
                                  const std::vector<std::uint32_t>& initial_pointers,
                                  const StatsArray& stats) {
  const std::size_t n = node.size();
  out.field_u64("time", time);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sites;
  for (std::size_t v = 0; v < n; ++v) {
    if (node[v].count > 0) sites.emplace_back(v, node[v].count);
  }
  out.field_pairs("agents", sites);
  const std::uint32_t node_stride = sizeof(node[0]);
  const std::uint32_t stats_stride = sizeof(stats[0]);
  out.field_list_strided("pointers", n, &node[0].pointer, node_stride, 4);
  out.field_list_strided("initial_pointers", n, initial_pointers.data(),
                         sizeof(std::uint32_t), 4);
  out.field_list_strided("visits", n, &stats[0].visits, stats_stride, 8);
  out.field_list_strided("exits", n, &stats[0].exits, stats_stride, 8);
  out.field_list_strided("first_visit", n, &stats[0].first_visit,
                         stats_stride, 8);
  out.field_list_strided("last_visit", n, &stats[0].last_visit, stats_stride,
                         8);
}

/// The engine-agnostic result of a restore: everything except the
/// engine's own occupied bookkeeping, which each engine rebuilds from
/// the repopulated counts (sequential: one list; sharded: per shard).
struct RestoredRotorState {
  std::uint64_t time = 0;
  std::uint32_t num_agents = 0;
  graph::NodeId covered = 0;
  /// Occupied nodes in ascending id order (counts already applied).
  std::vector<graph::NodeId> sites;
};

namespace detail {

/// The six lockstep per-node fields of the rotor-router field set, in
/// serialize_rotor_state's declaration order, with each one's
/// construction-time default value (see assume_defaults below).
inline constexpr std::size_t kRotorFields = 6;
inline constexpr const char* kRotorFieldKeys[kRotorFields] = {
    "pointers", "initial_pointers", "visits",
    "exits",    "first_visit",      "last_visit"};
inline constexpr std::uint64_t kRotorFieldDefaults[kRotorFields] = {
    0, 0, 0, 0, sim::kNotCovered, 0};

/// Applies the six lockstep cursors over node range [v0, v1): validates
/// degrees, writes node/stats/initial_pointers, counts covered nodes.
/// The cursors must produce exactly v1 - v0 elements each (checked via
/// finished()). `allow_skip` gates the assume-defaults constant-run
/// elision. nullopt on any malformed or inconsistent stream; the range
/// may then be partially written (the StateIO failed-restore contract).
/// Ranges are disjoint, so the parallel restore runs one call per
/// segment window from pool threads.
template <typename NodeArray, typename StatsArray>
inline std::optional<graph::NodeId> apply_rotor_span(
    std::optional<sim::U64ListCursor>* cursors, const graph::CsrGraph& csr,
    NodeArray& node, std::vector<std::uint32_t>& initial_pointers,
    StatsArray& stats, graph::NodeId v0, graph::NodeId v1, bool allow_skip) {
  graph::NodeId covered = 0;
  sim::U64ListCursor::Run run[kRotorFields];
  for (graph::NodeId v = v0; v < v1;) {
    std::uint64_t span = v1 - v;
    for (std::size_t k = 0; k < kRotorFields; ++k) {
      if (run[k].len == 0) {
        const auto r = cursors[k]->next_run();
        if (!r) return std::nullopt;
        run[k] = *r;
      }
      span = std::min(span, run[k].len);
    }
    bool skip = allow_skip;
    for (std::size_t k = 0; skip && k < kRotorFields; ++k) {
      skip = run[k].delta == 0 && run[k].value == kRotorFieldDefaults[k];
    }
    if (!skip) {
      for (std::uint64_t j = 0; j < span; ++j) {
        const graph::NodeId u = v + static_cast<graph::NodeId>(j);
        const std::uint32_t degree = csr.degree_unchecked(u);
        if (run[0].value >= degree || run[1].value >= degree) {
          return std::nullopt;
        }
        node[u].count = 0;
        node[u].arrivals = 0;
        node[u].pointer = static_cast<std::uint32_t>(run[0].value);
        initial_pointers[u] = static_cast<std::uint32_t>(run[1].value);
        stats[u].visits = run[2].value;
        stats[u].exits = run[3].value;
        stats[u].first_visit = run[4].value;
        stats[u].last_visit = run[5].value;
        if (run[4].value != sim::kNotCovered) ++covered;
        for (std::size_t k = 0; k < kRotorFields; ++k) {
          run[k].value += run[k].delta;
        }
      }
    } else {
      // All six runs are constant defaults over the span; covered
      // gains nothing (first_visit is the sentinel) and every store
      // would rewrite the value already there.
      for (std::size_t k = 0; k < kRotorFields; ++k) {
        run[k].value += run[k].delta * span;  // delta == 0, kept for form
      }
    }
    for (std::size_t k = 0; k < kRotorFields; ++k) run[k].len -= span;
    v += static_cast<graph::NodeId>(span);
  }
  for (std::size_t k = 0; k < kRotorFields; ++k) {
    if (!cursors[k]->finished()) return std::nullopt;
  }
  return covered;
}

}  // namespace detail

/// Validates and applies a serialize_rotor_state document against `csr`'s
/// topology. On success node/stats/initial_pointers hold the restored
/// state (counts and arrival accumulators reset and repopulated from the
/// sparse sites); on failure returns nullopt and the outputs are
/// unspecified (the StateIO contract for a failed restore).
///
/// `assume_defaults`: the caller guarantees node/stats/initial_pointers
/// currently hold the construction-time defaults at every node (count,
/// arrivals, pointer, visits, exits, last_visit all 0; first_visit the
/// never-covered sentinel). Constant runs carrying exactly those values
/// are then skipped instead of rewritten, so restoring a lightly-evolved
/// state into a freshly opened substrate image touches only the pages
/// that actually differ from the image — the resume path stays
/// out-of-core instead of dirtying the whole COW mapping. Skipped
/// pointer runs are value 0, which a connected graph's degree >= 1
/// always admits, so validation is preserved.
template <typename NodeArray, typename StatsArray>
inline std::optional<RestoredRotorState> deserialize_rotor_state(
    const sim::StateReader& in, const graph::CsrGraph& csr,
    NodeArray& node, std::vector<std::uint32_t>& initial_pointers,
    StatsArray& stats, bool assume_defaults = false) {
  const graph::NodeId n = csr.num_nodes();
  const auto time = in.u64("time");
  const auto sites = in.pairs("agents");
  if (!time || !sites || sites->empty()) return std::nullopt;
  std::uint64_t total_agents = 0;
  for (const auto& [v, c] : *sites) {
    if (v >= n || c == 0 || c > ~std::uint32_t{0}) return std::nullopt;
    total_agents += c;
  }
  if (total_agents > ~std::uint32_t{0}) return std::nullopt;

  // The six per-node fields decode as lockstep run cursors: node v's
  // whole record (pointer, stats) is validated and written in one
  // touch, so the restore makes a single pass over the engine's state
  // memory instead of six, and spans where every field sits in a
  // default-valued constant run are skipped outright under
  // assume_defaults. No O(n) intermediates; a failed stream leaves the
  // state partially written (allowed by the StateIO contract).
  RestoredRotorState restored;
  restored.time = *time;
  restored.num_agents = static_cast<std::uint32_t>(total_agents);
  initial_pointers.resize(n);
  std::optional<sim::U64ListCursor> cursors[detail::kRotorFields];
  for (std::size_t k = 0; k < detail::kRotorFields; ++k) {
    cursors[k] = in.u64_list_cursor(detail::kRotorFieldKeys[k], n);
    if (!cursors[k]) return std::nullopt;
  }
  const auto covered = detail::apply_rotor_span(
      cursors, csr, node, initial_pointers, stats, 0, n,
      /*allow_skip=*/assume_defaults && n > 1);
  if (!covered) return std::nullopt;
  restored.covered = *covered;

  restored.sites.reserve(sites->size());
  for (const auto& [v, c] : *sites) {
    node[v].count = static_cast<std::uint32_t>(c);
    restored.sites.push_back(static_cast<graph::NodeId>(v));
  }
  return restored;
}

/// Pool-parallel variant. A v2 checkpoint splits each per-node field
/// into independently decodable segments (delta baselines restart at
/// each boundary); when all six fields share the same segment layout —
/// always true for documents the v2 encoder wrote — the node range
/// splits at those boundaries and each window deserializes on a pool
/// thread (disjoint node ranges, disjoint writes). Falls back to the
/// sequential walk for v1 text documents, mismatched layouts, or a
/// single segment. Identical results either way (restore is a pure
/// function of the document); only wall-clock differs — this is what
/// keeps session rehydration under server load from serializing on one
/// core.
template <typename NodeArray, typename StatsArray>
inline std::optional<RestoredRotorState> deserialize_rotor_state(
    const sim::StateReader& in, const graph::CsrGraph& csr, NodeArray& node,
    std::vector<std::uint32_t>& initial_pointers, StatsArray& stats,
    bool assume_defaults, sim::ThreadPool* pool) {
  const graph::NodeId n = csr.num_nodes();
  std::optional<std::vector<std::uint64_t>> bounds;
  if (pool != nullptr && pool->num_threads() > 1 && n > 0) {
    bounds = in.u64_list_segment_bounds(detail::kRotorFieldKeys[0], n);
    for (std::size_t k = 1; bounds && k < detail::kRotorFields; ++k) {
      const auto other =
          in.u64_list_segment_bounds(detail::kRotorFieldKeys[k], n);
      if (!other || *other != *bounds) bounds = std::nullopt;
    }
    if (bounds && bounds->size() <= 2) bounds = std::nullopt;
  }
  if (!bounds) {
    return deserialize_rotor_state(in, csr, node, initial_pointers, stats,
                                   assume_defaults);
  }

  const auto time = in.u64("time");
  const auto sites = in.pairs("agents");
  if (!time || !sites || sites->empty()) return std::nullopt;
  std::uint64_t total_agents = 0;
  for (const auto& [v, c] : *sites) {
    if (v >= n || c == 0 || c > ~std::uint32_t{0}) return std::nullopt;
    total_agents += c;
  }
  if (total_agents > ~std::uint32_t{0}) return std::nullopt;

  RestoredRotorState restored;
  restored.time = *time;
  restored.num_agents = static_cast<std::uint32_t>(total_agents);
  initial_pointers.resize(n);
  const std::size_t windows = bounds->size() - 1;
  std::vector<graph::NodeId> covered(windows, 0);
  std::vector<std::uint8_t> ok(windows, 0);
  const bool allow_skip = assume_defaults && n > 1;
  pool->for_each(
      windows,
      [&](std::uint64_t w) {
        std::optional<sim::U64ListCursor> cursors[detail::kRotorFields];
        for (std::size_t k = 0; k < detail::kRotorFields; ++k) {
          cursors[k] = in.u64_list_cursor_window(detail::kRotorFieldKeys[k],
                                                 static_cast<std::size_t>(w),
                                                 static_cast<std::size_t>(w) + 1);
          if (!cursors[k]) return;
        }
        const auto c = detail::apply_rotor_span(
            cursors, csr, node, initial_pointers, stats,
            static_cast<graph::NodeId>((*bounds)[w]),
            static_cast<graph::NodeId>((*bounds)[w + 1]), allow_skip);
        if (!c) return;
        covered[w] = *c;
        ok[w] = 1;
      },
      /*chunk=*/1);
  for (std::size_t w = 0; w < windows; ++w) {
    if (!ok[w]) return std::nullopt;
    restored.covered += covered[w];
  }

  restored.sites.reserve(sites->size());
  for (const auto& [v, c] : *sites) {
    node[v].count = static_cast<std::uint32_t>(c);
    restored.sites.push_back(static_cast<graph::NodeId>(v));
  }
  return restored;
}

}  // namespace rr::core
