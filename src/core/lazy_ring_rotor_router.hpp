#pragma once

// Lazy domain-dynamics ring engine (paper Sec. 2.2, Definition 1, Fig. 1).
//
// Once the multi-agent rotor-router on the ring leaves its transient phase,
// the whole configuration collapses to O(k) structure: the pointer field is
// a handful of constant arcs (each agent's domain contributes one arc of
// pointers "behind" it and one "ahead", separated by the vertex-/edge-type
// borders of Fig. 1), every node hosts at most two agents, and the
// unexplored region is a union of at most k arcs. This engine exploits that
// collapse:
//
//   - During the transient prefix it simply *is* the dense RingRotorRouter
//     (exactness by construction). At doubling intervals it scans the
//     pointer field; once the field has O(k) maximal constant runs it
//     promotes itself to the lazy representation and drops the dense state.
//   - Post-promotion, a configuration is (pointer runs, occupied sites,
//     unvisited arcs) — O(k) words — and one synchronous round costs
//     O(k log k) regardless of n. Rounds replay the exact dense semantics
//     (ceil/floor port splitting, pointer advance by parity, arrival
//     merging), so delayed deployments and many-agents-per-node pile-ups
//     stay bit-exact; there is no "approximate" mode.
//   - run()/run_until_covered() fast-forward: between interaction events
//     each agent's motion is ballistic (it propagates along its pointer run
//     and reflects at the run border, per the Sec. 2.2 domain dynamics), so
//     the engine advances every agent through a window of W rounds in
//     O(k log k) total, where W is half the minimum inter-agent gap — the
//     horizon within which agents provably cannot influence one another.
//     Visit counts absorb whole sweeps through a range-add Fenwick tree and
//     first visits are assigned with their exact rounds, so observers stay
//     exact too.
//
// Equality with RingRotorRouter (and RotorRouter on graph::ring) at every
// round — config_hash, visits, first visits, coverage, under randomized
// delayed schedules — is enforced by tests/differential_test.cpp.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/fenwick.hpp"
#include "common/require.hpp"
#include "core/ring_rotor_router.hpp"
#include "sim/engine.hpp"

namespace rr::core {

class LazyRingRotorRouter final : public sim::Engine, public sim::StateIO {
 public:
  /// Same contract as RingRotorRouter: `agents` is the multiset of starting
  /// nodes, `pointers` the per-node initial pointer (empty = all clockwise).
  LazyRingRotorRouter(NodeId n, const std::vector<NodeId>& agents,
                      std::vector<std::uint8_t> pointers = {});

  void step() override {
    step_delayed([](NodeId, std::uint64_t, std::uint32_t) { return 0u; });
  }

  /// One delayed round; `delay(v, t, present)` -> agents held at v (Sec 2.1).
  /// Schedules must be pure functions of their arguments: engines may
  /// evaluate them in any per-round node order.
  template <typename DelayFn>
  void step_delayed(DelayFn&& delay) {
    if (dense_) {
      maybe_promote();
      if (dense_) {
        dense_->step_delayed(std::forward<DelayFn>(delay));
        return;
      }
    }
    lazy_round(std::forward<DelayFn>(delay));
  }

  /// O(k) amortized per round in the post-transient regime: ballistic
  /// fast-forward between interaction events.
  void run(std::uint64_t rounds) override;

  /// Fast-forwarded like run(); lands exactly on the cover round (leaps
  /// that would overshoot coverage are clamped to the final first-visit).
  std::uint64_t run_until_covered(std::uint64_t max_rounds) override;

  std::uint64_t time() const override {
    return dense_ ? dense_->time() : time_;
  }
  NodeId num_nodes() const override { return n_; }
  std::uint32_t num_agents() const override { return k_; }

  std::uint64_t visits(NodeId v) const override;
  std::uint64_t first_visit_time(NodeId v) const override;
  NodeId covered_count() const override {
    return dense_ ? dense_->covered_count() : covered_;
  }
  std::uint64_t config_hash() const override;
  const char* engine_name() const override { return "lazy-ring-rotor-router"; }

  std::uint32_t agents_at(NodeId v) const;
  std::uint8_t pointer(NodeId v) const;

  /// True once the engine runs on the O(k) representation.
  bool lazy() const { return dense_ == nullptr; }

  /// Attempts the dense -> lazy switch now. Without `force` it promotes
  /// only if the pointer field has collapsed to O(k) runs (the
  /// post-transient signature); with `force` it always promotes (the lazy
  /// representation is exact at any configuration, just not compact).
  bool try_promote(bool force = false);

  /// Maximal constant runs of the pointer field (the promotion criterion;
  /// a run wrapping past node 0 counts as two).
  std::uint32_t pointer_arc_count() const;

  /// Phase-tagged state: `phase=dense` delegates to the inner dense engine
  /// (plus the promotion schedule), `phase=lazy` stores the promoted O(k)
  /// representation (pointer runs, sites) with dense visit statistics. A
  /// load flips the fresh instance into whichever phase the checkpoint
  /// holds — including demoting a lazily-constructed instance back to the
  /// dense engine when the checkpoint predates promotion.
  void serialize_state(sim::StateWriter& out) const override;
  [[nodiscard]] bool deserialize_state(const sim::StateReader& in) override;

 private:
  struct Site {
    NodeId node;
    std::uint32_t count;
  };

  void do_step_delayed(const sim::DelayFn& delay) override {
    step_delayed(delay);
  }

  void maybe_promote();

  template <typename DelayFn>
  void lazy_round(DelayFn&& delay) {
    ++time_;
    const std::size_t sites_before = sites_.size();
    for (std::size_t i = 0; i < sites_before; ++i) {
      const std::uint32_t present = sites_[i].count;
      std::uint32_t held = delay(sites_[i].node, time_, present);
      if (held > present) held = present;
      const std::uint32_t moving = present - held;
      if (moving == 0) continue;
      depart_lazy(i, moving, held);
    }
    commit_lazy_round();
  }

  void depart_lazy(std::size_t site_idx, std::uint32_t moving,
                   std::uint32_t held);
  void commit_lazy_round();

  // ---- ballistic fast-forward ----

  /// Leaping requires every site to host exactly one agent (Definition 1's
  /// regime); with k sites and k agents that is sites_.size() == k_.
  bool leap_eligible() const { return sites_.size() == k_; }
  /// Rounds within which no two agents can interact: half the minimum
  /// cyclic gap between occupied sites (unbounded for a single agent).
  std::uint64_t safe_window() const;
  /// Min over agents of rounds until the agent reaches the end of its
  /// current pointer run (its reflection border).
  std::uint64_t min_segment() const;
  /// Advances every agent exactly `rounds` rounds (caller guarantees
  /// rounds <= safe_window()); piecewise-ballistic per agent.
  void leap_window(std::uint64_t rounds);
  /// Dry run of a single-segment leap of `rounds` (<= min_segment()):
  /// returns the exact cover round if the leap would complete coverage,
  /// 0 otherwise.
  std::uint64_t linear_cover_round(std::uint64_t rounds) const;

  struct CoverScan {
    std::uint64_t newly = 0;
    std::uint64_t last_round = 0;
  };
  /// Tallies the unvisited nodes among arrivals [a, b] (linear, no wrap) of
  /// a sweep from `origin` travelling `dir` whose first arrival lands at
  /// round t0 + 1; does not mutate (dry run).
  CoverScan scan_unvisited(NodeId a, NodeId b, NodeId origin, std::uint8_t dir,
                           std::uint64_t t0) const;
  /// Assigns exact first-visit rounds for the same arrivals and removes
  /// them from the unvisited arcs.
  void apply_cover(NodeId a, NodeId b, NodeId origin, std::uint8_t dir,
                   std::uint64_t t0);
  /// Fenwick + coverage updates for the `adv` arrivals of a sweep from
  /// `origin` travelling `dir`, starting at round t0 + 1.
  void sweep_visits(NodeId origin, std::uint8_t dir, std::uint64_t adv,
                    std::uint64_t t0);

  // ---- pointer-run map ----
  // runs_ maps run start -> pointer value; runs partition [0, n) and never
  // wrap (node 0 always starts a run, possibly equal-valued with the last).

  std::uint8_t run_value(NodeId v) const;
  /// Propagation budget from v (inclusive) in the direction of v's pointer
  /// value (written to *dir_out if non-null), truncated at the containing
  /// run's border (and at the artificial node-0 split, which only shortens
  /// leaps, never changes semantics).
  std::uint64_t segment_from(NodeId v, std::uint8_t* dir_out) const;
  /// Flips `len` nodes starting at v going `dir`; the caller guarantees the
  /// whole range lies inside v's run (so it never wraps).
  void flip_run_prefix(NodeId v, std::uint64_t len, std::uint8_t dir);
  void flip_range(NodeId lo, NodeId hi);

  /// Hop count of the arrival at u for a sweep leaving `origin` in `dir`;
  /// in [1, n] (a full-ring sweep ends back on the origin at distance n).
  std::uint64_t ring_dist(NodeId origin, NodeId u, std::uint8_t dir) const;

  void mark_visited(NodeId v, std::uint64_t round);
  /// Recomputes covered_ and the unvisited_ arc map from first_visit_
  /// (shared by promotion and checkpoint load).
  void rebuild_unvisited_from_first_visit();

  NodeId fwd(NodeId v, std::uint64_t d) const {
    return static_cast<NodeId>((v + d) % n_);
  }
  NodeId bwd(NodeId v, std::uint64_t d) const {
    return static_cast<NodeId>((v + n_ - d % n_) % n_);
  }

  NodeId n_;
  std::uint32_t k_;

  // Dense prefix: non-null until promotion.
  std::unique_ptr<RingRotorRouter> dense_;
  std::uint64_t next_promo_ = 0;
  std::uint64_t promo_interval_ = 64;

  // Lazy state (valid once dense_ == nullptr).
  std::uint64_t time_ = 0;
  NodeId covered_ = 0;
  std::map<NodeId, std::uint8_t> runs_;
  std::vector<Site> sites_;      // sorted by node, counts > 0
  std::vector<Site> arrivals_;   // per-round scratch
  std::vector<Site> merged_;     // per-round scratch
  RangeAddFenwick visit_counts_;
  std::vector<std::uint64_t> first_visit_;
  std::map<NodeId, NodeId> unvisited_;  // arc start -> arc end (inclusive)
};

}  // namespace rr::core
