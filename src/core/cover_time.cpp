#include "core/cover_time.hpp"

#include <algorithm>

namespace rr::core {

std::uint64_t ring_cover_time(const RingConfig& config,
                              std::uint64_t max_rounds) {
  RingRotorRouter rr = config.make();
  if (max_rounds == 0) {
    max_rounds = 8ULL * config.n * config.n + 64ULL * config.n;
  }
  return rr.run_until_covered(max_rounds);
}

std::uint64_t graph_cover_time(const graph::Graph& g,
                               const std::vector<NodeId>& agents,
                               std::vector<std::uint32_t> pointers,
                               std::uint64_t max_rounds) {
  RotorRouter rr(g, agents, std::move(pointers));
  if (max_rounds == 0) {
    max_rounds = 4ULL * g.diameter() * g.num_edges() + 64ULL * g.num_edges();
  }
  return rr.run_until_covered(max_rounds);
}

ReturnTimeResult ring_return_time(const RingConfig& config,
                                  std::uint64_t warmup, std::uint64_t window) {
  const NodeId n = config.n;
  const std::uint32_t k = static_cast<std::uint32_t>(config.agents.size());
  RingRotorRouter rr = config.make();

  ReturnTimeResult result;
  if (warmup == 0) {
    // Cover the ring, then let domains even out (Lemma 12's "sufficiently
    // large number of steps"; 4 n^2/k extra rounds is generous for the
    // sizes used in tests and benches).
    const std::uint64_t cover =
        rr.run_until_covered(8ULL * n * n + 64ULL * n);
    result.covered = (cover != kRingNotCovered);
    rr.run(4ULL * n * n / std::max(1u, k) + 16ULL * n);
  } else {
    rr.run(warmup);
    result.covered = rr.all_covered();
  }
  if (window == 0) window = 8ULL * n / std::max(1u, k) + 64;

  // Per-node max inter-visit gap over [T, T+window], seeded with the last
  // visit before the window so boundary gaps are not missed.
  std::vector<std::uint64_t> last_seen(n), max_gap(n, 0);
  std::vector<std::uint64_t> visits_before(n);
  for (NodeId v = 0; v < n; ++v) {
    last_seen[v] = rr.last_visit_time(v);
    visits_before[v] = rr.visits(v);
  }
  const std::uint64_t t_end = rr.time() + window;
  while (rr.time() < t_end) {
    rr.step();
    // Visits this round are exactly the nodes whose last_visit == time().
    for (NodeId v : rr.occupied_nodes()) {
      if (rr.last_visit_time(v) == rr.time()) {
        max_gap[v] = std::max(max_gap[v], rr.time() - last_seen[v]);
        last_seen[v] = rr.time();
      }
    }
  }
  std::uint64_t worst = 0;
  std::uint64_t min_visits = ~std::uint64_t{0};
  double total_gap = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    max_gap[v] = std::max(max_gap[v], t_end - last_seen[v]);
    worst = std::max(worst, max_gap[v]);
    const std::uint64_t vis = rr.visits(v) - visits_before[v];
    min_visits = std::min(min_visits, vis);
    total_gap += vis > 0 ? static_cast<double>(window) / static_cast<double>(vis)
                         : static_cast<double>(window);
  }
  result.max_gap = worst;
  result.mean_gap = total_gap / n;
  result.min_visits = min_visits;
  return result;
}

}  // namespace rr::core
