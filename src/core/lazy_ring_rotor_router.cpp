#include "core/lazy_ring_rotor_router.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace rr::core {

namespace {

constexpr std::uint64_t kUnbounded = ~std::uint64_t{0} >> 1;

}  // namespace

LazyRingRotorRouter::LazyRingRotorRouter(NodeId n,
                                         const std::vector<NodeId>& agents,
                                         std::vector<std::uint8_t> pointers)
    : n_(n),
      k_(static_cast<std::uint32_t>(agents.size())),
      dense_(std::make_unique<RingRotorRouter>(n, agents, std::move(pointers))) {
  // Compact initializations (all-clockwise defaults, equally spaced starts)
  // already have an O(k)-run pointer field: go lazy from round 0. Adversarial
  // fields (random, negative) stay on the dense engine for the transient.
  if (!try_promote()) next_promo_ = promo_interval_;
}

// ---- promotion ----

std::uint32_t LazyRingRotorRouter::pointer_arc_count() const {
  if (!dense_) return static_cast<std::uint32_t>(runs_.size());
  std::uint32_t arcs = 1;
  for (NodeId v = 1; v < n_; ++v) {
    if (dense_->pointer(v) != dense_->pointer(v - 1)) ++arcs;
  }
  return arcs;
}

bool LazyRingRotorRouter::try_promote(bool force) {
  if (!dense_) return true;
  const std::uint32_t arcs = pointer_arc_count();
  const std::uint32_t limit = std::max<std::uint32_t>(64, 4 * k_ + 16);
  if (!force && arcs > limit) return false;

  runs_.clear();
  auto hint = runs_.emplace_hint(runs_.end(), 0, dense_->pointer(0));
  for (NodeId v = 1; v < n_; ++v) {
    if (dense_->pointer(v) != dense_->pointer(v - 1)) {
      hint = runs_.emplace_hint(runs_.end(), v, dense_->pointer(v));
    }
  }
  (void)hint;

  sites_.clear();
  sites_.reserve(dense_->occupied_nodes().size());
  for (NodeId v : dense_->occupied_nodes()) {
    sites_.push_back({v, dense_->agents_at(v)});
  }
  std::sort(sites_.begin(), sites_.end(),
            [](const Site& a, const Site& b) { return a.node < b.node; });

  std::vector<std::int64_t> visits0(n_);
  for (NodeId v = 0; v < n_; ++v) {
    visits0[v] = static_cast<std::int64_t>(dense_->visits(v));
  }
  visit_counts_ = RangeAddFenwick(visits0);

  first_visit_.resize(n_);
  for (NodeId v = 0; v < n_; ++v) {
    first_visit_[v] = dense_->first_visit_time(v);
  }
  rebuild_unvisited_from_first_visit();
  time_ = dense_->time();
  dense_.reset();
  return true;
}

void LazyRingRotorRouter::maybe_promote() {
  if (!dense_ || dense_->time() < next_promo_) return;
  if (!try_promote()) {
    promo_interval_ *= 2;
    next_promo_ = dense_->time() + promo_interval_;
  }
}

// ---- pointer-run map ----

std::uint8_t LazyRingRotorRouter::run_value(NodeId v) const {
  return std::prev(runs_.upper_bound(v))->second;
}

std::uint64_t LazyRingRotorRouter::segment_from(NodeId v,
                                                std::uint8_t* dir_out) const {
  auto it = std::prev(runs_.upper_bound(v));
  const std::uint8_t e = it->second;
  if (dir_out) *dir_out = e;
  if (e == kClockwise) {
    auto nx = std::next(it);
    const NodeId end = (nx == runs_.end()) ? n_ - 1 : nx->first - 1;
    return static_cast<std::uint64_t>(end) - v + 1;
  }
  return static_cast<std::uint64_t>(v) - it->first + 1;
}

void LazyRingRotorRouter::flip_run_prefix(NodeId v, std::uint64_t len,
                                          std::uint8_t dir) {
  RR_ASSERT(len >= 1 && len <= n_, "flip length out of range");
  const NodeId lo =
      dir == kClockwise ? v : static_cast<NodeId>(v - (len - 1));
  const NodeId hi =
      dir == kClockwise ? static_cast<NodeId>(v + (len - 1)) : v;
  flip_range(lo, hi);
}

void LazyRingRotorRouter::flip_range(NodeId lo, NodeId hi) {
  auto it = std::prev(runs_.upper_bound(lo));
  const NodeId a = it->first;
  const std::uint8_t x = it->second;
  const std::uint8_t y = x ^ 1;
  auto nxt = std::next(it);
  const NodeId b = (nxt == runs_.end()) ? n_ - 1 : nxt->first - 1;
  RR_ASSERT(hi <= b, "flip range spans multiple runs");
  if (hi < b) {
    runs_.emplace_hint(nxt, hi + 1, x);
  } else if (nxt != runs_.end() && nxt->second == y) {
    runs_.erase(nxt);
  }
  if (lo > a) {
    runs_.emplace(lo, y);
  } else {
    it->second = y;
    if (a != 0) {
      auto pit = std::prev(it);
      if (pit->second == y) runs_.erase(it);
    }
  }
}

// ---- coverage bookkeeping ----

std::uint64_t LazyRingRotorRouter::ring_dist(NodeId origin, NodeId u,
                                             std::uint8_t dir) const {
  const NodeId d = dir == kClockwise ? static_cast<NodeId>((u + n_ - origin) % n_)
                                     : static_cast<NodeId>((origin + n_ - u) % n_);
  return d == 0 ? n_ : d;
}

void LazyRingRotorRouter::rebuild_unvisited_from_first_visit() {
  covered_ = 0;
  unvisited_.clear();
  for (NodeId v = 0; v < n_; ++v) {
    if (first_visit_[v] != sim::kNotCovered) {
      ++covered_;
    } else if (v == 0 || first_visit_[v - 1] != sim::kNotCovered) {
      unvisited_.emplace_hint(unvisited_.end(), v, v);
    } else {
      std::prev(unvisited_.end())->second = v;
    }
  }
}

void LazyRingRotorRouter::mark_visited(NodeId v, std::uint64_t round) {
  first_visit_[v] = round;
  ++covered_;
  auto it = std::prev(unvisited_.upper_bound(v));
  const NodeId a = it->first;
  const NodeId b = it->second;
  RR_ASSERT(a <= v && v <= b, "unvisited arcs out of sync");
  unvisited_.erase(it);
  if (a < v) unvisited_.emplace(a, v - 1);
  if (v < b) unvisited_.emplace(v + 1, b);
}

LazyRingRotorRouter::CoverScan LazyRingRotorRouter::scan_unvisited(
    NodeId a, NodeId b, NodeId origin, std::uint8_t dir,
    std::uint64_t t0) const {
  CoverScan out;
  auto it = unvisited_.upper_bound(a);
  if (it != unvisited_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= a) it = prev;
  }
  for (; it != unvisited_.end() && it->first <= b; ++it) {
    const NodeId lo = std::max(it->first, a);
    const NodeId hi = std::min(it->second, b);
    out.newly += static_cast<std::uint64_t>(hi) - lo + 1;
    std::uint64_t maxd =
        std::max(ring_dist(origin, lo, dir), ring_dist(origin, hi, dir));
    if (lo <= origin && origin <= hi) maxd = n_;
    out.last_round = std::max(out.last_round, t0 + maxd);
  }
  return out;
}

void LazyRingRotorRouter::apply_cover(NodeId a, NodeId b, NodeId origin,
                                      std::uint8_t dir, std::uint64_t t0) {
  // Collect the overlapped arcs first; arc surgery after the scan keeps the
  // iteration simple.
  std::vector<std::pair<NodeId, NodeId>> hits;
  {
    auto it = unvisited_.upper_bound(a);
    if (it != unvisited_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= a) it = prev;
    }
    for (; it != unvisited_.end() && it->first <= b; ++it) hits.push_back(*it);
  }
  for (const auto& [arc_a, arc_b] : hits) {
    const NodeId lo = std::max(arc_a, a);
    const NodeId hi = std::min(arc_b, b);
    for (NodeId u = lo;; ++u) {
      first_visit_[u] = t0 + ring_dist(origin, u, dir);
      if (u == hi) break;
    }
    covered_ += hi - lo + 1;
    unvisited_.erase(arc_a);
    if (arc_a < lo) unvisited_.emplace(arc_a, lo - 1);
    if (hi < arc_b) unvisited_.emplace(hi + 1, arc_b);
  }
}

void LazyRingRotorRouter::sweep_visits(NodeId origin, std::uint8_t dir,
                                       std::uint64_t adv, std::uint64_t t0) {
  // Arrival set: adv consecutive nodes; as a clockwise-ascending range it
  // starts at origin+1 (cw sweep) or origin-adv (acw sweep), split at the
  // 0 wrap.
  const NodeId first = dir == kClockwise ? fwd(origin, 1) : bwd(origin, adv);
  const std::uint64_t tail = std::min<std::uint64_t>(adv, n_ - first);
  const NodeId tail_end = static_cast<NodeId>(first + tail - 1);
  visit_counts_.add(first, tail_end, 1);
  if (covered_ < n_) apply_cover(first, tail_end, origin, dir, t0);
  if (adv > tail) {
    const NodeId head_end = static_cast<NodeId>(adv - tail - 1);
    visit_counts_.add(0, head_end, 1);
    if (covered_ < n_) apply_cover(0, head_end, origin, dir, t0);
  }
}

// ---- one exact synchronous round (sparse) ----

void LazyRingRotorRouter::depart_lazy(std::size_t site_idx,
                                      std::uint32_t moving,
                                      std::uint32_t held) {
  Site& s = sites_[site_idx];
  const NodeId v = s.node;
  const std::uint8_t ptr = run_value(v);
  // Alternating ports starting at the pointer: ceil(moving/2) through the
  // pointer's direction, floor(moving/2) the other way; pointer advances by
  // parity. Mirrors RingRotorRouter::depart exactly.
  const std::uint32_t via_ptr = (moving + 1) / 2;
  const std::uint32_t cw_out = ptr == kClockwise ? via_ptr : moving - via_ptr;
  const std::uint32_t acw_out = moving - cw_out;
  if (moving & 1) flip_run_prefix(v, 1, kClockwise);
  if (cw_out > 0) arrivals_.push_back({fwd(v, 1), cw_out});
  if (acw_out > 0) arrivals_.push_back({bwd(v, 1), acw_out});
  s.count = held;
}

void LazyRingRotorRouter::commit_lazy_round() {
  std::sort(arrivals_.begin(), arrivals_.end(),
            [](const Site& a, const Site& b) { return a.node < b.node; });
  std::size_t w = 0;
  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    if (w > 0 && arrivals_[w - 1].node == arrivals_[i].node) {
      arrivals_[w - 1].count += arrivals_[i].count;
    } else {
      arrivals_[w++] = arrivals_[i];
    }
  }
  arrivals_.resize(w);

  for (const Site& arr : arrivals_) {
    visit_counts_.add(arr.node, arr.node, arr.count);
    if (first_visit_[arr.node] == sim::kNotCovered) {
      mark_visited(arr.node, time_);
    }
  }

  merged_.clear();
  std::size_t si = 0;
  std::size_t ai = 0;
  while (si < sites_.size() || ai < arrivals_.size()) {
    if (si < sites_.size() && sites_[si].count == 0) {
      ++si;
      continue;
    }
    if (ai == arrivals_.size() ||
        (si < sites_.size() && sites_[si].node < arrivals_[ai].node)) {
      merged_.push_back(sites_[si++]);
    } else if (si == sites_.size() ||
               arrivals_[ai].node < sites_[si].node) {
      merged_.push_back(arrivals_[ai++]);
    } else {
      merged_.push_back({sites_[si].node, sites_[si].count + arrivals_[ai].count});
      ++si;
      ++ai;
    }
  }
  sites_.swap(merged_);
  arrivals_.clear();
}

// ---- ballistic fast-forward ----

std::uint64_t LazyRingRotorRouter::safe_window() const {
  if (sites_.size() < 2) return kUnbounded;
  NodeId min_gap = n_;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const NodeId a = sites_[i].node;
    const NodeId b = sites_[(i + 1) % sites_.size()].node;
    const NodeId gap = i + 1 == sites_.size()
                           ? static_cast<NodeId>(b + n_ - a)
                           : static_cast<NodeId>(b - a);
    min_gap = std::min(min_gap, gap);
  }
  return (min_gap - 1) / 2;
}

std::uint64_t LazyRingRotorRouter::min_segment() const {
  std::uint64_t m = kUnbounded;
  for (const Site& s : sites_) {
    m = std::min(m, segment_from(s.node, nullptr));
  }
  return m;
}

void LazyRingRotorRouter::leap_window(std::uint64_t rounds) {
  RR_ASSERT(rounds >= 1 && rounds <= safe_window(), "unsafe leap window");
  for (Site& s : sites_) {
    std::uint64_t left = rounds;
    NodeId p = s.node;
    std::uint64_t t = time_;
    while (left > 0) {
      std::uint8_t e = 0;
      const std::uint64_t m = segment_from(p, &e);
      const std::uint64_t adv = std::min(left, m);
      flip_run_prefix(p, adv, e);
      sweep_visits(p, e, adv, t);
      p = e == kClockwise ? fwd(p, adv) : bwd(p, adv);
      t += adv;
      left -= adv;
    }
    s.node = p;
  }
  time_ += rounds;
  // Displacements are under half the minimum gap, so the cyclic order is
  // intact; a wrap past node 0 can still rotate the linear order.
  std::sort(sites_.begin(), sites_.end(),
            [](const Site& a, const Site& b) { return a.node < b.node; });
}

std::uint64_t LazyRingRotorRouter::linear_cover_round(
    std::uint64_t rounds) const {
  std::uint64_t newly = 0;
  std::uint64_t last = 0;
  for (const Site& s : sites_) {
    std::uint8_t e = 0;
    (void)segment_from(s.node, &e);
    const NodeId first = e == kClockwise ? fwd(s.node, 1) : bwd(s.node, rounds);
    const std::uint64_t tail = std::min<std::uint64_t>(rounds, n_ - first);
    const CoverScan c1 = scan_unvisited(
        first, static_cast<NodeId>(first + tail - 1), s.node, e, time_);
    newly += c1.newly;
    last = std::max(last, c1.last_round);
    if (rounds > tail) {
      const CoverScan c2 = scan_unvisited(
          0, static_cast<NodeId>(rounds - tail - 1), s.node, e, time_);
      newly += c2.newly;
      last = std::max(last, c2.last_round);
    }
  }
  if (newly > 0 && covered_ + newly == n_) return last;
  return 0;
}

// ---- drivers ----

void LazyRingRotorRouter::run(std::uint64_t rounds) {
  const std::uint64_t target = time() + rounds;
  while (time() < target) {
    if (dense_) {
      maybe_promote();
      if (dense_) {
        dense_->step();
        fire_auto_checkpoint_if_due();
        continue;
      }
    }
    if (!leap_eligible()) {
      step();
      fire_auto_checkpoint_if_due();
      continue;
    }
    // Leaps stop at the next auto-checkpoint mark so the sink fires on
    // the exact schedule even when thousands of rounds pass per leap.
    const std::uint64_t w = std::min(
        {safe_window(), target - time_, rounds_to_auto_checkpoint()});
    if (w == 0) {
      step();
      fire_auto_checkpoint_if_due();
      continue;
    }
    leap_window(w);
    fire_auto_checkpoint_if_due();
  }
}

std::uint64_t LazyRingRotorRouter::run_until_covered(std::uint64_t max_rounds) {
  if (all_covered()) return 0;
  while (time() < max_rounds) {
    if (dense_) {
      maybe_promote();
      if (dense_) {
        dense_->step();
        fire_auto_checkpoint_if_due();
        if (all_covered()) return time();
        continue;
      }
    }
    if (!leap_eligible()) {
      step();
      fire_auto_checkpoint_if_due();
      if (covered_ == n_) return time_;
      continue;
    }
    std::uint64_t leap = std::min({safe_window(), min_segment(),
                                   max_rounds - time_,
                                   rounds_to_auto_checkpoint()});
    if (leap == 0) {
      step();
      fire_auto_checkpoint_if_due();
      if (covered_ == n_) return time_;
      continue;
    }
    // Single-segment leaps have predictable trajectories, so coverage
    // completion can be located exactly and the leap clamped to land on the
    // cover round (matching the dense engine's stop-at-cover contract).
    const std::uint64_t cover = linear_cover_round(leap);
    if (cover > 0) leap = cover - time_;
    leap_window(leap);
    fire_auto_checkpoint_if_due();
    if (covered_ == n_) return time_;
  }
  return sim::kNotCovered;
}

// ---- observers ----

std::uint64_t LazyRingRotorRouter::visits(NodeId v) const {
  RR_REQUIRE(v < n_, "node out of range");
  if (dense_) return dense_->visits(v);
  return static_cast<std::uint64_t>(visit_counts_.at(v));
}

std::uint64_t LazyRingRotorRouter::first_visit_time(NodeId v) const {
  RR_REQUIRE(v < n_, "node out of range");
  if (dense_) return dense_->first_visit_time(v);
  return first_visit_[v];
}

std::uint32_t LazyRingRotorRouter::agents_at(NodeId v) const {
  RR_REQUIRE(v < n_, "node out of range");
  if (dense_) return dense_->agents_at(v);
  const auto it = std::lower_bound(
      sites_.begin(), sites_.end(), v,
      [](const Site& s, NodeId node) { return s.node < node; });
  return it != sites_.end() && it->node == v ? it->count : 0;
}

std::uint8_t LazyRingRotorRouter::pointer(NodeId v) const {
  RR_REQUIRE(v < n_, "node out of range");
  if (dense_) return dense_->pointer(v);
  return run_value(v);
}

std::uint64_t LazyRingRotorRouter::config_hash() const {
  if (dense_) return dense_->config_hash();
  // Byte-compatible with RingRotorRouter::config_hash: mix(pointer, count)
  // per node in node order.
  Fnv1a h;
  auto run = runs_.begin();
  auto next_run = std::next(run);
  std::size_t si = 0;
  for (NodeId v = 0; v < n_; ++v) {
    if (next_run != runs_.end() && next_run->first == v) {
      run = next_run;
      ++next_run;
    }
    std::uint32_t count = 0;
    if (si < sites_.size() && sites_[si].node == v) {
      count = sites_[si].count;
      ++si;
    }
    h.mix(run->second);
    h.mix(count);
  }
  return h.value();
}

// ---- state I/O ----

void LazyRingRotorRouter::serialize_state(sim::StateWriter& out) const {
  if (dense_) {
    out.field("phase", "dense");
    dense_->serialize_state(out);
    out.field_u64("next_promo", next_promo_);
    out.field_u64("promo_interval", promo_interval_);
    return;
  }
  out.field("phase", "lazy");
  out.field_u64("time", time_);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> runs(runs_.begin(),
                                                            runs_.end());
  out.field_pairs("runs", runs);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sites;
  sites.reserve(sites_.size());
  for (const Site& s : sites_) sites.emplace_back(s.node, s.count);
  out.field_pairs("agents", sites);
  std::vector<std::uint64_t> visits(n_);
  for (NodeId v = 0; v < n_; ++v) {
    visits[v] = static_cast<std::uint64_t>(visit_counts_.at(v));
  }
  out.field_list("visits", visits);
  out.field_list("first_visit", first_visit_);
}

bool LazyRingRotorRouter::deserialize_state(const sim::StateReader& in) {
  const auto phase = in.raw("phase");
  if (!phase) return false;
  if (*phase == "dense") {
    // Demote if the constructor already promoted this instance (compact
    // initial fields go lazy at round 0): the dense engine is rebuilt and
    // then overwritten field-by-field by its own deserialize.
    if (!dense_) {
      dense_ = std::make_unique<RingRotorRouter>(n_, std::vector<NodeId>{0});
    }
    if (!dense_->deserialize_state(in)) return false;
    const auto next_promo = in.u64("next_promo");
    const auto promo_interval = in.u64("promo_interval");
    if (!next_promo || !promo_interval || *promo_interval == 0) return false;
    k_ = dense_->num_agents();
    next_promo_ = *next_promo;
    promo_interval_ = *promo_interval;
    runs_.clear();
    sites_.clear();
    arrivals_.clear();
    merged_.clear();
    visit_counts_ = RangeAddFenwick();
    first_visit_.clear();
    unvisited_.clear();
    time_ = 0;
    covered_ = 0;
    return true;
  }
  if (*phase != "lazy") return false;

  const auto time = in.u64("time");
  const auto runs = in.pairs("runs");
  const auto sites = in.pairs("agents");
  const auto visits = in.u64_list("visits", n_);
  const auto first_visit = in.u64_list("first_visit", n_);
  if (!time || !runs || runs->empty() || !sites || sites->empty() || !visits ||
      !first_visit) {
    return false;
  }
  if ((*runs)[0].first != 0) return false;  // node 0 always starts a run
  for (const auto& [start, value] : *runs) {
    if (start >= n_ || value > 1) return false;
  }
  std::uint64_t total_agents = 0;
  for (const auto& [v, c] : *sites) {
    if (v >= n_ || c == 0 || c > ~std::uint32_t{0}) return false;
    total_agents += c;
  }
  if (total_agents > ~std::uint32_t{0}) return false;
  for (std::uint64_t x : *visits) {
    if (x > static_cast<std::uint64_t>(~std::uint64_t{0} >> 1)) return false;
  }

  time_ = *time;
  k_ = static_cast<std::uint32_t>(total_agents);
  runs_.clear();
  for (const auto& [start, value] : *runs) {
    // Merge redundant splits so segment_from sees maximal runs again.
    if (!runs_.empty() && std::prev(runs_.end())->second ==
                              static_cast<std::uint8_t>(value)) {
      continue;
    }
    runs_.emplace_hint(runs_.end(), static_cast<NodeId>(start),
                       static_cast<std::uint8_t>(value));
  }
  sites_.clear();
  for (const auto& [v, c] : *sites) {
    sites_.push_back({static_cast<NodeId>(v), static_cast<std::uint32_t>(c)});
  }
  arrivals_.clear();
  merged_.clear();
  std::vector<std::int64_t> values(n_);
  for (NodeId v = 0; v < n_; ++v) {
    values[v] = static_cast<std::int64_t>((*visits)[v]);
  }
  visit_counts_ = RangeAddFenwick(values);
  first_visit_ = *first_visit;
  rebuild_unvisited_from_first_visit();
  dense_.reset();
  return true;
}

}  // namespace rr::core
