#include "core/snapshot.hpp"

#include <charconv>
#include <cstring>

namespace rr::core {

namespace {

// Parses "key=" at the current position; advances past it on success.
bool expect(const std::string& text, std::size_t& pos, const char* token) {
  const std::size_t len = std::strlen(token);
  if (text.compare(pos, len, token) != 0) return false;
  pos += len;
  return true;
}

std::optional<std::uint64_t> parse_number(const std::string& text,
                                          std::size_t& pos) {
  std::uint64_t value = 0;
  const char* begin = text.data() + pos;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin) return std::nullopt;
  pos += static_cast<std::size_t>(ptr - begin);
  return value;
}

}  // namespace

std::string to_text(const RingConfig& config) {
  std::string out = "ring n=" + std::to_string(config.n) + " agents=";
  for (std::size_t i = 0; i < config.agents.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(config.agents[i]);
  }
  out += " pointers=";
  if (config.pointers.empty()) {
    out += std::string(config.n, 'c');  // default: all clockwise
  } else {
    for (std::uint8_t p : config.pointers) {
      out += (p == kClockwise) ? 'c' : 'w';
    }
  }
  return out;
}

std::optional<RingConfig> ring_config_from_text(const std::string& text) {
  std::size_t pos = 0;
  if (!expect(text, pos, "ring n=")) return std::nullopt;
  const auto n = parse_number(text, pos);
  if (!n || *n < 3 || *n > (1ULL << 31)) return std::nullopt;

  if (!expect(text, pos, " agents=")) return std::nullopt;
  RingConfig config;
  config.n = static_cast<NodeId>(*n);
  while (true) {
    const auto a = parse_number(text, pos);
    if (!a || *a >= *n) return std::nullopt;
    config.agents.push_back(static_cast<NodeId>(*a));
    if (pos < text.size() && text[pos] == ',') {
      ++pos;
      continue;
    }
    break;
  }

  if (!expect(text, pos, " pointers=")) return std::nullopt;
  if (text.size() - pos != *n) return std::nullopt;
  config.pointers.reserve(*n);
  for (; pos < text.size(); ++pos) {
    if (text[pos] == 'c') {
      config.pointers.push_back(kClockwise);
    } else if (text[pos] == 'w') {
      config.pointers.push_back(kAnticlockwise);
    } else {
      return std::nullopt;
    }
  }
  return config;
}

RingConfig checkpoint(const RingRotorRouter& rr) {
  RingConfig config;
  config.n = rr.num_nodes();
  config.pointers.resize(rr.num_nodes());
  for (NodeId v = 0; v < rr.num_nodes(); ++v) {
    config.pointers[v] = rr.pointer(v);
    for (std::uint32_t i = 0; i < rr.agents_at(v); ++i) {
      config.agents.push_back(v);
    }
  }
  return config;
}

}  // namespace rr::core
