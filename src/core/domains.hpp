#pragma once

// Agent domains on the ring (S6, paper Sec. 2.2).
//
// At any round t where every node hosts at most 2 agents, the visited nodes
// of the ring partition into contiguous *domains*, one per agent: v belongs
// to the agent that was the last to visit it. The paper formalizes this via
// o(v,t): the first agent-occupied node in the direction opposite to the
// pointer at v. A node v* hosting two agents splits its o-class between
// them according to the pointer at v* (Fig. 1's setting). Unvisited nodes
// form the dummy domain V_bot.
//
// *Lazy domains* (Definition 1) restrict a domain to nodes whose last
// completed visit was a single-agent propagation; adjacent lazy domains are
// separated by a vertex-type or edge-type border (Fig. 1).

#include <cstdint>
#include <vector>

#include "core/ring_rotor_router.hpp"

namespace rr::core {

/// One agent's domain: a contiguous arc of the ring.
struct Domain {
  NodeId anchor;      ///< node hosting the owning agent (o(v,t) value)
  NodeId begin;       ///< first node of the arc (clockwise orientation)
  std::uint32_t size; ///< number of nodes in the arc
  std::uint32_t lazy_size; ///< nodes of the arc in the lazy domain
};

enum class BorderType : std::uint8_t {
  kVertex,   ///< one non-lazy vertex between adjacent lazy domains (Fig. 1a)
  kEdge,     ///< lazy domains directly adjacent (Fig. 1b)
  kWide,     ///< more than one vertex between them (transient states)
};

struct DomainSnapshot {
  std::vector<Domain> domains;  ///< in clockwise order around the ring
  std::uint32_t unvisited = 0;  ///< |V_bot|
  bool well_defined = false;    ///< every node hosted <= 2 agents

  std::uint32_t min_size() const;
  std::uint32_t max_size() const;
  /// max |size_i - size_{i+1}| over cyclically adjacent domains; domains
  /// adjacent across the unvisited region are not compared (Lemma 12's
  /// "infinite" domain). Returns 0 with fewer than 2 domains.
  std::uint32_t max_adjacent_diff() const;
  std::uint32_t max_adjacent_lazy_diff() const;
};

/// Computes the domain partition of the current configuration in O(n).
DomainSnapshot compute_domains(const RingRotorRouter& rr);

struct BorderCensus {
  std::uint32_t vertex_type = 0;
  std::uint32_t edge_type = 0;
  std::uint32_t wide = 0;  ///< transient / not yet stabilized gaps
};

/// Classifies the borders between cyclically adjacent lazy domains.
BorderCensus census_borders(const RingRotorRouter& rr,
                            const DomainSnapshot& snapshot);

/// o(v,t) for a single node: the occupied node found walking from v in the
/// direction opposite to v's pointer; v itself if occupied; kRingNotCovered
/// cast to NodeId is never used — unvisited nodes return `false` via the
/// `has_value` flag.
struct ONode {
  bool defined;
  NodeId value;
};
ONode o_of(const RingRotorRouter& rr, NodeId v);

}  // namespace rr::core
