#pragma once

// The explicit delayed deployment from the proof of Theorem 1 (S5/S12).
//
// Thm 1 proves the Theta(n^2/log k) worst-case cover time by exhibiting a
// delayed deployment D of the all-on-one initialization on the path whose
// fully-active rounds (Phase B1) dominate its total duration; Lemma 3 (the
// slow-down lemma) then sandwiches the undelayed cover time between the two.
// The deployment cycles through *desirable configurations* of length S:
// agent i parked at position round(p_i * S), all pointers aimed left, where
// p_i = a_i + ... + a_k for the Lemma 13 sequence {a_i}.
//
//   Phase A : starting from k agents at node 0 (pointers all leftward),
//             release agents one at a time; agent i zig-zags out to its
//             target p_i * S_0 and is parked there.
//   Phase B : repeat until covered —
//     B1: release all agents simultaneously for ceil(2 k^4 a_k S_j) rounds;
//     B2: re-park agents one at a time at the positions of the next
//         desirable configuration of length S_{j+1}.
//
// This module *executes* that schedule with the general engine on
// graph::path(n) and reports the per-phase accounting, letting tests and
// benches check the proof's two claims empirically: (i) the deployment
// covers, (ii) B1 >= constant fraction of the total, so by Lemma 3 the
// undelayed cover time is Theta(total).

#include <cstdint>
#include <vector>

#include "analysis/sequence.hpp"
#include "core/rotor_router.hpp"
#include "graph/graph.hpp"

namespace rr::core {

struct Theorem1Result {
  bool covered = false;
  std::uint64_t phase_a_rounds = 0;
  std::uint64_t phase_b1_rounds = 0;  ///< fully-active rounds (tau of Lemma 3)
  std::uint64_t phase_b2_rounds = 0;
  std::uint64_t total_rounds = 0;     ///< T of Lemma 3
  std::uint32_t phase_b_steps = 0;    ///< number of B1+B2 iterations
  /// Length of the desirable configuration when coverage happened.
  std::uint64_t final_length = 0;
};

class Theorem1Deployment {
 public:
  /// Deployment of `k` agents on the `n`-node path (nodes 0..n-1, agents
  /// start at node 0, pointers leftward: the Thm 1 path reduction of the
  /// ring instance). Requires k > 3 (Lemma 13) and k << n.
  Theorem1Deployment(graph::NodeId n, std::uint32_t k);

  /// Executes the full schedule; stops as soon as the path is covered or
  /// `max_rounds` elapse.
  Theorem1Result run(std::uint64_t max_rounds = 0);

  /// Position agent i (1-based, i=1 farthest) holds in a desirable
  /// configuration of length S.
  graph::NodeId target_position(std::uint32_t i, double S) const;

  const analysis::Lemma13Sequence& sequence() const { return seq_; }
  double initial_length() const { return s0_; }
  double length_increment() const { return delta_s_; }

 private:
  // Moves one agent (currently at `from`) until it first stands on
  // `target`, holding everyone else; returns rounds used (or UINT64_MAX on
  // cap). Updates the engine in place.
  std::uint64_t park_agent(RotorRouter& engine, graph::NodeId from,
                           graph::NodeId target, std::uint64_t cap);

  graph::NodeId n_;
  std::uint32_t k_;
  analysis::Lemma13Sequence seq_;
  graph::Graph path_;
  std::vector<std::uint32_t> left_pointers_;
  double s0_ = 0.0;       ///< S_0 = n / sqrt(k log k)
  double delta_s_ = 0.0;  ///< S_{j+1} - S_j = ceil(k^4 a_1 a_k) + 12k
};

}  // namespace rr::core
