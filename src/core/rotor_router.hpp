#pragma once

// General-graph multi-agent rotor-router engine (S3).
//
// Direct transliteration of the model in paper Sec. 1.3. A configuration is
// ((rho_v), (pi_v), {r_1..r_k}): rho_v is the cyclic port order (owned by the
// Graph), pi_v the current port pointer, and the agents form a multiset of
// node positions. One synchronous round moves, at every node v hosting c
// agents, the c agents out along ports pi_v, pi_v+1, ..., pi_v+c-1 (mod
// deg v), then advances pi_v by c. Agents are indistinguishable, so the
// engine stores per-node counts rather than identities.
//
// The engine snapshots the graph's port-ordered adjacency into a CsrGraph
// at construction, so the stepping loops scan flat arrays instead of
// chasing nested vectors; permute ports on the Graph before constructing.
// The per-node hot state lives in one packed graph::NodeState stride
// (count, pointer, degree) and the visit bookkeeping in one VisitStats
// stride — the round is memory-latency-bound on scattered nodes, so each
// agent exit gathers two cache lines instead of six parallel-array ones.
//
// The engine also maintains the bookkeeping used throughout the paper's
// analysis: n_v(t) (visits including the initial placement, Eq. (3)),
// e_v(t) (exits, Eq. (2)), first/last visit times and coverage.
//
// Delayed deployments (Sec. 2.1) are supported by `step_delayed`, which
// holds D(v,t) agents at v for the round.

#include <cstdint>
#include <vector>

#include "common/require.hpp"
#include "core/shard_step.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"
#include "graph/mmap_substrate.hpp"
#include "graph/partition.hpp"
#include "sim/cycle_jump.hpp"
#include "sim/engine.hpp"
#include "sim/state_io.hpp"

namespace rr::sim {
class ThreadPool;
}  // namespace rr::sim

namespace rr::core {

using graph::CsrGraph;
using graph::Graph;
using graph::NodeId;

inline constexpr std::uint64_t kNotCovered = sim::kNotCovered;

class RotorRouter final : public sim::Engine,
                          public sim::StateIO,
                          public sim::CycleLeapable {
 public:
  /// `agents`: multiset of starting nodes (k = agents.size()).
  /// `pointers`: initial pi_v per node; empty means all ports 0.
  /// The graph's adjacency is snapshotted (CSR); later mutation of `g` does
  /// not affect this engine.
  RotorRouter(const Graph& g, const std::vector<NodeId>& agents,
              std::vector<std::uint32_t> pointers = {});

  /// Out-of-core construction over an opened `rr-graph v1` image: the CSR
  /// adjacency, NodeState and VisitStats arrays are views into the
  /// substrate's private mapping (degree/row_begin and the never-visited
  /// sentinel come precomputed from the image), so construction faults in
  /// O(agents) pages instead of touching every node. The mapping is
  /// MAP_PRIVATE: this engine's mutations never reach the image file, and
  /// each open() gives a fresh initial state. The substrate handle is
  /// retained via the views, so callers may drop their shared_ptr.
  RotorRouter(const std::shared_ptr<graph::MappedSubstrate>& substrate,
              const std::vector<NodeId>& agents,
              std::vector<std::uint32_t> pointers = {});

  /// One synchronous round with no delays.
  void step() override {
    step_delayed([](NodeId, std::uint64_t, std::uint32_t) { return 0u; });
  }

  /// One synchronous round of a delayed deployment: `delay(v, t, present)`
  /// returns D(v,t), the number of agents (clamped to `present`) held at v
  /// during round t. Holding agents never increases visit counts (Lemma 1).
  template <typename DelayFn>
  void step_delayed(DelayFn&& delay) {
    pristine_ = false;
    ++time_;
    const NodeId* arcs = csr_.arcs();
    const std::size_t occupied_before = occupied_.size();
    for (std::size_t idx = 0; idx < occupied_before; ++idx) {
      if (idx + 4 < occupied_before) prefetch_ro(&node_[occupied_[idx + 4]]);
      const NodeId v = occupied_[idx];
      graph::NodeState& ns = node_[v];
      const std::uint32_t present = ns.count;
      if (present == 0) continue;  // stale entry; skipped and dropped below
      std::uint32_t held = delay(v, time_, present);
      if (held > present) held = present;
      const std::uint32_t moving = present - held;
      if (moving == 0) continue;
      RR_ASSERT(ns.degree > 0, "agent stranded on isolated node");
      ns.pointer = distribute_exits(
          arcs + ns.row_begin, ns.degree, ns.pointer, moving,
          [&](std::uint32_t, NodeId u, std::uint32_t c) {
            graph::NodeState& nu = node_[u];
            if (nu.arrivals == 0) touched_.push_back(u);
            nu.arrivals += c;
          });
      stats_[v].exits += moving;
      ns.count = held;
    }
    commit_arrivals();
  }

  std::uint64_t time() const override { return time_; }
  const CsrGraph& graph() const { return csr_; }
  NodeId num_nodes() const override { return csr_.num_nodes(); }
  std::uint32_t num_agents() const override { return num_agents_; }

  std::uint32_t agents_at(NodeId v) const { return node_[v].count; }
  std::uint32_t pointer(NodeId v) const { return node_[v].pointer; }
  const std::vector<NodeId>& occupied_nodes() const { return occupied_; }
  /// Number of occupied-list entries; commit_arrivals keeps this equal to
  /// the number of nodes hosting at least one agent (no stale growth).
  std::size_t occupied_count() const { return occupied_.size(); }

  /// n_v(t): total visits to v in rounds [1,t] plus agents placed at v
  /// initially (paper's n_v(0) convention).
  std::uint64_t visits(NodeId v) const override { return stats_[v].visits; }
  /// e_v(t): total exits from v in rounds [1,t].
  std::uint64_t exits(NodeId v) const { return stats_[v].exits; }

  /// Total traversals of the arc (v, neighbor(v, port)) so far, via the
  /// paper's Sec. 1.3 identity: ceil((e_v - label) / deg v), where the
  /// label of a port is its offset from the *initial* pointer at v. Exact
  /// at every round boundary; used for Yanovski-style edge-fairness
  /// measurements without per-arc counters.
  std::uint64_t arc_traversals(NodeId v, std::uint32_t port) const {
    RR_REQUIRE(v < node_.size(), "node out of range");
    const std::uint32_t deg = csr_.degree(v);
    RR_REQUIRE(port < deg, "port out of range");
    const std::uint32_t label = (port + deg - initial_pointers_[v]) % deg;
    const std::uint64_t e = stats_[v].exits;
    return e > label ? (e - label + deg - 1) / deg : 0;
  }

  /// Round of the first visit (0 for initial hosts), kNotCovered if none.
  std::uint64_t first_visit_time(NodeId v) const override {
    return stats_[v].first_visit;
  }
  std::uint64_t last_visit_time(NodeId v) const { return stats_[v].last_visit; }

  NodeId covered_count() const override { return covered_; }

  /// Sorted multiset of agent positions (for tests / hashing).
  std::vector<NodeId> agent_positions() const;

  /// FNV-1a hash of (pointers, agent counts): identifies a configuration.
  std::uint64_t config_hash() const override;

  const char* engine_name() const override { return "rotor-router"; }

  /// Full dynamical state: time, pointer field (current and initial, the
  /// latter backing arc_traversals), sparse agent counts, visit/exit
  /// statistics. A deserialized engine continues bit-exactly.
  void serialize_state(sim::StateWriter& out) const override;
  [[nodiscard]] bool deserialize_state(const sim::StateReader& in) override;

  /// Pool-parallel restore: v2 documents deserialize their per-node
  /// segments on `pool` when the segment layouts line up (see
  /// deserialize_rotor_state's pool overload); bit-identical result to
  /// the sequential form. nullptr pool == the virtual overload.
  [[nodiscard]] bool deserialize_state(const sim::StateReader& in,
                                       sim::ThreadPool* pool);

  /// Confirmed-cycle fast leap (sim::CycleLeapable): time and the stats
  /// counters advance by per-cycle deltas, node state untouched.
  [[nodiscard]] bool apply_cycle_leap(
      const std::vector<sim::AccumulatorDelta>& deltas,
      std::uint64_t cycles) override;

 private:
  void do_step_delayed(const sim::DelayFn& delay) override {
    step_delayed(delay);
  }
  void commit_arrivals();

  CsrGraph csr_;
  std::uint32_t num_agents_;
  std::uint64_t time_ = 0;
  NodeId covered_ = 0;
  /// True while the per-node arrays still hold construction defaults
  /// everywhere except the agent sites (constructed without a pointer
  /// override, never stepped or restored). Lets deserialize_state skip
  /// rewriting default-valued spans, so resuming into a freshly opened
  /// substrate image dirties only the pages that differ from the image.
  bool pristine_ = false;

  // Owned vectors for Graph construction, views into the image mapping
  // for substrate construction — same indexing either way.
  graph::MappedArray<graph::NodeState> node_;  // packed per-node hot state
  std::vector<std::uint32_t> initial_pointers_;
  std::vector<NodeId> occupied_;  // nodes with node_[v].count > 0 (unique)
  std::vector<NodeId> touched_;   // nodes with node_[v].arrivals > 0
  graph::MappedArray<VisitStats> stats_;  // packed visits/exits/first/last
};

}  // namespace rr::core
