#include "core/domains.hpp"

#include <algorithm>
#include <cstdlib>

namespace rr::core {

namespace {

constexpr std::int64_t kUnvisitedMark = -2;

// o(v,t) for every node, encoded as the anchor node id, or kUnvisitedMark.
std::vector<std::int64_t> compute_o_values(const RingRotorRouter& rr) {
  const NodeId n = rr.num_nodes();
  // nearest_cw[v]: first occupied node reached from v walking clockwise
  // (v itself if occupied); nearest_acw analogously.
  std::vector<NodeId> nearest_cw(n), nearest_acw(n);
  NodeId seed = rr.occupied_nodes().front();
  // Clockwise: walk anticlockwise from seed, propagating the last occupied.
  {
    NodeId carry = seed;
    NodeId v = seed;
    for (NodeId i = 0; i < n; ++i) {
      if (rr.agents_at(v) > 0) carry = v;
      nearest_cw[v] = carry;
      v = rr.anticlockwise(v);
    }
  }
  {
    NodeId carry = seed;
    NodeId v = seed;
    for (NodeId i = 0; i < n; ++i) {
      if (rr.agents_at(v) > 0) carry = v;
      nearest_acw[v] = carry;
      v = rr.clockwise(v);
    }
  }
  std::vector<std::int64_t> o(n);
  for (NodeId v = 0; v < n; ++v) {
    if (rr.agents_at(v) > 0) {
      o[v] = v;
    } else if (!rr.visited(v)) {
      o[v] = kUnvisitedMark;
    } else {
      // Walk opposite to the pointer: pointer clockwise -> walk acw.
      o[v] = (rr.pointer(v) == kClockwise) ? nearest_acw[v] : nearest_cw[v];
    }
  }
  return o;
}

bool node_is_lazy(const RingRotorRouter& rr, NodeId v) {
  if (!rr.visited(v)) return false;
  const std::uint32_t c = rr.agents_at(v);
  // Occupied nodes: the most recent visit is not yet classified (its
  // propagation status is decided at departure). Per Lemma 6 the agent's
  // location belongs to its lazy domain except possibly at endpoints; we
  // count single-occupied nodes as lazy and multi-occupied as not.
  if (c == 1) return true;
  if (c >= 2) return false;
  return rr.last_visit_single_propagation(v);
}

}  // namespace

ONode o_of(const RingRotorRouter& rr, NodeId v) {
  RR_REQUIRE(v < rr.num_nodes(), "node out of range");
  if (rr.agents_at(v) > 0) return {true, v};
  if (!rr.visited(v)) return {false, 0};
  const int step_dir = (rr.pointer(v) == kClockwise) ? -1 : +1;
  NodeId u = v;
  for (NodeId i = 0; i < rr.num_nodes(); ++i) {
    u = (step_dir > 0) ? rr.clockwise(u) : rr.anticlockwise(u);
    if (rr.agents_at(u) > 0) return {true, u};
  }
  RR_REQUIRE(false, "no agent found on the ring");
}

DomainSnapshot compute_domains(const RingRotorRouter& rr) {
  const NodeId n = rr.num_nodes();
  const auto o = compute_o_values(rr);

  DomainSnapshot snap;
  snap.well_defined = true;
  for (NodeId v : rr.occupied_nodes()) {
    if (rr.agents_at(v) > 2) snap.well_defined = false;
  }

  // Find a run boundary to start the scan from; if none, the whole ring is
  // one domain (single agent, fully covered).
  NodeId start = 0;
  bool boundary_found = false;
  for (NodeId v = 0; v < n; ++v) {
    NodeId prev = (v == 0) ? n - 1 : v - 1;
    if (o[v] != o[prev]) {
      start = v;
      boundary_found = true;
      break;
    }
  }
  if (!boundary_found) {
    if (o[0] == kUnvisitedMark) {
      snap.unvisited = n;  // cannot happen: agents occupy nodes
      return snap;
    }
    Domain d{static_cast<NodeId>(o[0]), 0, n, 0};
    for (NodeId v = 0; v < n; ++v) {
      if (node_is_lazy(rr, v)) ++d.lazy_size;
    }
    snap.domains.push_back(d);
    return snap;
  }

  // Scan runs of equal o-value clockwise from `start`.
  struct Run {
    std::int64_t o;
    NodeId begin;
    std::uint32_t size;
  };
  std::vector<Run> runs;
  {
    NodeId v = start;
    for (NodeId i = 0; i < n; ++i) {
      if (runs.empty() || runs.back().o != o[v]) {
        runs.push_back({o[v], v, 1});
      } else {
        ++runs.back().size;
      }
      v = rr.clockwise(v);
    }
  }

  auto lazy_count = [&rr](NodeId begin, std::uint32_t size) {
    std::uint32_t c = 0;
    NodeId v = begin;
    for (std::uint32_t i = 0; i < size; ++i) {
      if (node_is_lazy(rr, v)) ++c;
      v = rr.clockwise(v);
    }
    return c;
  };

  for (const Run& run : runs) {
    if (run.o == kUnvisitedMark) {
      snap.unvisited += run.size;
      continue;
    }
    const NodeId anchor = static_cast<NodeId>(run.o);
    const std::uint32_t offset = (anchor + n - run.begin) % n;
    if (rr.agents_at(anchor) >= 2 && offset < run.size) {
      // Split the run at the anchor between the two colocated agents:
      // pointer clockwise  -> anchor joins the anticlockwise part (Va);
      // pointer anticlockwise -> anchor joins the clockwise part (Vb).
      // (In transient many-agents-per-node states an o-class may not be
      // contiguous; runs not containing their anchor are kept whole.)
      const bool anchor_left = (rr.pointer(anchor) == kClockwise);
      const std::uint32_t left_size = offset + (anchor_left ? 1 : 0);
      const std::uint32_t right_size = run.size - left_size;
      const NodeId right_begin =
          static_cast<NodeId>((run.begin + left_size) % n);
      snap.domains.push_back(
          {anchor, run.begin, left_size, lazy_count(run.begin, left_size)});
      snap.domains.push_back(
          {anchor, right_begin, right_size, lazy_count(right_begin, right_size)});
    } else {
      snap.domains.push_back(
          {anchor, run.begin, run.size, lazy_count(run.begin, run.size)});
    }
  }
  return snap;
}

std::uint32_t DomainSnapshot::min_size() const {
  std::uint32_t m = ~std::uint32_t{0};
  for (const Domain& d : domains) m = std::min(m, d.size);
  return domains.empty() ? 0 : m;
}

std::uint32_t DomainSnapshot::max_size() const {
  std::uint32_t m = 0;
  for (const Domain& d : domains) m = std::max(m, d.size);
  return m;
}

namespace {

std::uint32_t max_cyclic_adjacent_diff(const std::vector<Domain>& ds,
                                       std::uint32_t unvisited, bool lazy) {
  if (ds.size() < 2) return 0;
  std::uint32_t m = 0;
  // With an unexplored region present, the first and last domains border
  // V_bot (an effectively infinite neighbor, cf. Lemma 12) and are not
  // compared with each other.
  const std::size_t pairs = (unvisited == 0) ? ds.size() : ds.size() - 1;
  for (std::size_t i = 0; i < pairs; ++i) {
    const Domain& a = ds[i];
    const Domain& b = ds[(i + 1) % ds.size()];
    const std::int64_t sa = lazy ? a.lazy_size : a.size;
    const std::int64_t sb = lazy ? b.lazy_size : b.size;
    m = std::max<std::uint32_t>(m, static_cast<std::uint32_t>(std::llabs(sa - sb)));
  }
  return m;
}

}  // namespace

std::uint32_t DomainSnapshot::max_adjacent_diff() const {
  return max_cyclic_adjacent_diff(domains, unvisited, /*lazy=*/false);
}

std::uint32_t DomainSnapshot::max_adjacent_lazy_diff() const {
  return max_cyclic_adjacent_diff(domains, unvisited, /*lazy=*/true);
}

BorderCensus census_borders(const RingRotorRouter& rr,
                            const DomainSnapshot& snapshot) {
  BorderCensus census;
  const auto& ds = snapshot.domains;
  if (ds.size() < 2) return census;
  const NodeId n = rr.num_nodes();

  // Lazy sub-arc of a domain: first..last lazy node inside the arc.
  auto lazy_arc = [&](const Domain& d, NodeId& first, NodeId& last) -> bool {
    bool found = false;
    NodeId v = d.begin;
    for (std::uint32_t i = 0; i < d.size; ++i) {
      if (node_is_lazy(rr, v)) {
        if (!found) first = v;
        last = v;
        found = true;
      }
      v = rr.clockwise(v);
    }
    return found;
  };

  const std::size_t pairs = (snapshot.unvisited == 0) ? ds.size() : ds.size() - 1;
  for (std::size_t i = 0; i < pairs; ++i) {
    const Domain& a = ds[i];
    const Domain& b = ds[(i + 1) % ds.size()];
    NodeId a_first = 0, a_last = 0, b_first = 0, b_last = 0;
    if (!lazy_arc(a, a_first, a_last) || !lazy_arc(b, b_first, b_last)) {
      ++census.wide;
      continue;
    }
    // Vertices strictly between a's last lazy node and b's first lazy node.
    const std::uint32_t gap = (b_first + n - a_last) % n;
    if (gap == 1) {
      ++census.edge_type;
    } else if (gap == 2) {
      ++census.vertex_type;
    } else {
      ++census.wide;
    }
  }
  return census;
}

}  // namespace rr::core
