#include "core/trace.hpp"

#include "core/domains.hpp"
#include "sim/trace.hpp"

namespace rr::core {

TraceRow render_row(const RingRotorRouter& rr, bool domains) {
  const NodeId n = rr.num_nodes();
  std::string cells(n, ' ');
  if (domains) {
    const auto snap = compute_domains(rr);
    for (std::size_t d = 0; d < snap.domains.size(); ++d) {
      const char label = static_cast<char>('a' + (d % 26));
      NodeId v = snap.domains[d].begin;
      for (std::uint32_t i = 0; i < snap.domains[d].size; ++i) {
        cells[v] = label;
        v = rr.clockwise(v);
      }
    }
  } else {
    for (NodeId v = 0; v < n; ++v) {
      if (rr.visited(v)) cells[v] = '.';
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t c = rr.agents_at(v);
    if (c == 1) {
      cells[v] = 'o';
    } else if (c == 2) {
      cells[v] = '8';
    } else if (c > 2) {
      cells[v] = '*';
    }
  }
  return {rr.time(), std::move(cells)};
}

std::string render_pointers(const RingRotorRouter& rr) {
  std::string out(rr.num_nodes(), '?');
  for (NodeId v = 0; v < rr.num_nodes(); ++v) {
    out[v] = rr.pointer(v) == kClockwise ? '>' : '<';
  }
  return out;
}

std::vector<TraceRow> record_trace(RingRotorRouter& rr,
                                   const TraceOptions& options) {
  RR_REQUIRE(options.stride > 0, "stride must be positive");
  std::vector<TraceRow> rows;
  rows.push_back(render_row(rr, options.domains));
  if (options.pointers) {
    rows.push_back({rr.time(), render_pointers(rr)});
  }
  for (std::uint64_t t = 0; t < options.rounds; ++t) {
    rr.step();
    if ((t + 1) % options.stride == 0) {
      rows.push_back(render_row(rr, options.domains));
      if (options.pointers) {
        rows.push_back({rr.time(), render_pointers(rr)});
      }
    }
  }
  return rows;
}

std::string format_trace(const std::vector<TraceRow>& rows) {
  // Formatting lives in the engine-generic layer; this shim only adapts
  // the ring-specific row type.
  std::vector<sim::TraceFrame> frames;
  frames.reserve(rows.size());
  for (const auto& r : rows) frames.push_back({r.round, {r.cells}});
  return sim::format_trace(frames);
}

}  // namespace rr::core
