#pragma once

// Delayed deployments (S5, paper Sec. 2.1).
//
// A delayed deployment D assigns to every (node, round) the number D(v,t)
// of agents held at v during round t. Both engines accept a delay functor
// per round (`step_delayed`); this header provides the reusable schedules
// the paper's proofs rely on, plus a tracker for the slow-down lemma
// (Lemma 3): tau <= C(R[k]) <= T where tau counts fully-active rounds.

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "core/ring_rotor_router.hpp"

namespace rr::core {

/// D(v,t) = 0: the undelayed deployment R[k].
struct NoDelay {
  std::uint32_t operator()(NodeId, std::uint64_t, std::uint32_t) const {
    return 0;
  }
};

/// Holds every agent at the listed nodes (permanently stopped agents, as in
/// the Thm 2 and Thm 4 constructions).
class HoldAtNodes {
 public:
  explicit HoldAtNodes(std::vector<NodeId> nodes)
      : held_(nodes.begin(), nodes.end()) {}

  std::uint32_t operator()(NodeId v, std::uint64_t, std::uint32_t present) const {
    return held_.contains(v) ? present : 0;
  }

  void release(NodeId v) { held_.erase(v); }
  void hold(NodeId v) { held_.insert(v); }
  bool holds(NodeId v) const { return held_.contains(v); }

 private:
  std::unordered_set<NodeId> held_;
};

/// Holds all but `released` agents at node v0 (the release-one-by-one
/// pattern of Phase A in Thm 1): at v0, `present - released_budget` agents
/// are held; elsewhere nothing is held.
class ReleaseFromSource {
 public:
  ReleaseFromSource(NodeId source, std::uint32_t released)
      : source_(source), released_(released) {}

  std::uint32_t operator()(NodeId v, std::uint64_t, std::uint32_t present) const {
    if (v != source_) return 0;
    return present > released_ ? present - released_ : 0;
  }

  void set_released(std::uint32_t r) { released_ = r; }

 private:
  NodeId source_;
  std::uint32_t released_;
};

/// Runs a delayed deployment while tracking the quantities of Lemma 3:
/// T (rounds elapsed) and tau (rounds in which no agent was delayed).
/// Written once against the engine contract: works with any engine that
/// exposes step_delayed (all sim::Engine implementations do, ring or not).
class SlowdownTracker {
 public:
  /// `delay(v,t,present)` as for step_delayed. Advances `rr` by one round
  /// and records whether the round was fully active.
  template <typename Engine, typename DelayFn>
  void step(Engine& rr, DelayFn&& delay) {
    bool any_delayed = false;
    rr.step_delayed([&](NodeId v, std::uint64_t t, std::uint32_t present) {
      std::uint32_t d = delay(v, t, present);
      if (d > present) d = present;
      if (d > 0) any_delayed = true;
      return d;
    });
    ++total_rounds_;
    if (!any_delayed) ++active_rounds_;
  }

  std::uint64_t total_rounds() const { return total_rounds_; }    ///< T
  std::uint64_t active_rounds() const { return active_rounds_; }  ///< tau

 private:
  std::uint64_t total_rounds_ = 0;
  std::uint64_t active_rounds_ = 0;
};

}  // namespace rr::core
