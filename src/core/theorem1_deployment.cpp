#include "core/theorem1_deployment.hpp"

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"

namespace rr::core {

using graph::NodeId;

namespace {

// Pointer value meaning "toward node 0" on graph::path(n): node 0 has only
// port 0 (toward 1); internal nodes have port 1 toward v-1; the right
// endpoint has only port 0 (toward n-2).
std::vector<std::uint32_t> leftward_pointers(const graph::Graph& path) {
  std::vector<std::uint32_t> p(path.num_nodes(), 0);
  for (NodeId v = 1; v < path.num_nodes(); ++v) {
    p[v] = path.degree(v) - 1;  // internal: port 1 = left; right end: port 0
  }
  // Right endpoint: its single port already points left (to n-2).
  p[path.num_nodes() - 1] = 0;
  return p;
}

}  // namespace

Theorem1Deployment::Theorem1Deployment(NodeId n, std::uint32_t k)
    : n_(n),
      k_(k),
      seq_(analysis::compute_lemma13(k)),
      path_(graph::path(n)),
      left_pointers_(leftward_pointers(path_)) {
  RR_REQUIRE(k > 3, "Thm 1 construction needs k > 3 (Lemma 13)");
  RR_REQUIRE(n > 16 * k, "Thm 1 construction needs k << n");
  const double logk = std::log2(static_cast<double>(k));
  s0_ = static_cast<double>(n) / std::sqrt(static_cast<double>(k) * logk);
  const double k4 = std::pow(static_cast<double>(k), 4.0);
  delta_s_ = std::ceil(k4 * seq_.a[1] * seq_.a[k]) + 12.0 * k;
}

NodeId Theorem1Deployment::target_position(std::uint32_t i, double S) const {
  RR_REQUIRE(i >= 1 && i <= k_, "agent index out of range");
  const double p_i = seq_.p(i);
  const double raw = p_i * S;
  NodeId pos = static_cast<NodeId>(raw + 0.5);
  if (pos >= n_) pos = n_ - 1;
  if (pos == 0) pos = 1;
  return pos;
}

std::uint64_t Theorem1Deployment::park_agent(RotorRouter& engine, NodeId from,
                                             NodeId target,
                                             std::uint64_t cap) {
  NodeId pos = from;
  std::uint64_t rounds = 0;
  while (pos != target) {
    if (rounds >= cap) return ~std::uint64_t{0};
    // The single released agent moves like a 1-agent rotor-router over the
    // shared pointer state; everyone else is frozen. Predict its move from
    // the current pointer, then advance the engine one delayed round.
    const NodeId next = path_.neighbor(pos, engine.pointer(pos));
    engine.step_delayed([pos](NodeId v, std::uint64_t, std::uint32_t present) {
      return v == pos ? present - 1 : present;
    });
    pos = next;
    ++rounds;
  }
  return rounds;
}

Theorem1Result Theorem1Deployment::run(std::uint64_t max_rounds) {
  if (max_rounds == 0) {
    max_rounds = 64ULL * n_ * n_ + (1ULL << 22);
  }
  Theorem1Result result;

  std::vector<NodeId> starts(k_, 0);
  RotorRouter engine(path_, starts, left_pointers_);

  // --- Phase A: park agents 1..k at the S_0 desirable configuration. ---
  for (std::uint32_t i = 1; i <= k_; ++i) {
    const std::uint64_t used =
        park_agent(engine, 0, target_position(i, s0_), max_rounds);
    if (used == ~std::uint64_t{0}) return result;
    result.phase_a_rounds += used;
  }

  // --- Phase B: repeat desirable -> B1 -> B2 -> desirable. ---
  double S = s0_;
  while (!engine.all_covered()) {
    if (engine.time() >= max_rounds) return result;
    // B1: everyone active for ceil(2 k^4 a_k S) rounds. These are the
    // fully-active rounds counted by the slow-down lemma.
    const auto b1 = static_cast<std::uint64_t>(
        std::ceil(2.0 * std::pow(static_cast<double>(k_), 4.0) * seq_.a[k_] * S));
    for (std::uint64_t t = 0; t < b1 && !engine.all_covered(); ++t) {
      engine.step();
      ++result.phase_b1_rounds;
    }
    if (engine.all_covered()) break;

    // B2: re-park agents one at a time at the S_{j+1} configuration,
    // rightmost (agent 1) first. Agent i is the i-th rightmost.
    const double S_next = std::min(S + delta_s_, static_cast<double>(n_));
    auto positions = engine.agent_positions();  // ascending
    for (std::uint32_t i = 1; i <= k_; ++i) {
      positions = engine.agent_positions();
      const NodeId from = positions[k_ - i];  // i-th rightmost
      const NodeId target = target_position(i, S_next);
      const std::uint64_t used = park_agent(engine, from, target, max_rounds);
      if (used == ~std::uint64_t{0}) return result;
      result.phase_b2_rounds += used;
      if (engine.all_covered()) break;
    }
    S = S_next;
    ++result.phase_b_steps;
  }

  result.covered = engine.all_covered();
  result.total_rounds = engine.time();
  result.final_length = static_cast<std::uint64_t>(S);
  return result;
}

}  // namespace rr::core
