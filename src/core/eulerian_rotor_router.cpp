#include "core/eulerian_rotor_router.hpp"

#include <algorithm>

#include "common/hash.hpp"
#include "core/rotor_router.hpp"

namespace rr::core {

using graph::Arc;
using graph::NodeId;

EulerianRotorRouter::EulerianRotorRouter(const graph::Graph& g,
                                         const std::vector<NodeId>& agents)
    : csr_(g) {
  RR_REQUIRE(!agents.empty(), "need at least one token");
  for (NodeId a : agents) RR_REQUIRE(a < g.num_nodes(), "agent out of range");
  circuit_ = graph::eulerian_circuit(g, agents.front());
  RR_REQUIRE(index_circuit(), "Hierholzer circuit failed verification");
  // A node of degree d is the tail of d circuit offsets; co-located
  // agents take *successive* occurrences (cycling if there are more
  // agents than ports), so stacked tokens leave along distinct arcs
  // instead of collapsing into one trajectory — mirroring how co-located
  // rotor agents exit through distinct ports.
  std::vector<std::uint32_t> slot(csr_.num_nodes(), ~std::uint32_t{0});
  std::uint32_t slots = 0;
  for (NodeId a : agents) {
    if (slot[a] == ~std::uint32_t{0}) slot[a] = slots++;
  }
  std::vector<std::vector<std::uint64_t>> occurrences(slots);
  for (std::uint64_t i = 0; i < circuit_.size(); ++i) {
    const NodeId tail = circuit_[i].tail;
    if (slot[tail] != ~std::uint32_t{0}) {
      occurrences[slot[tail]].push_back(i);
    }
  }
  std::vector<std::uint32_t> used(slots, 0);
  tokens_.reserve(agents.size());
  for (NodeId a : agents) {
    const auto& occ = occurrences[slot[a]];
    tokens_.push_back(occ[used[slot[a]]++ % occ.size()]);
  }
  reset_visits_from_tokens();
}

EulerianRotorRouter::EulerianRotorRouter(const graph::Graph& g,
                                         std::vector<Arc> circuit,
                                         std::vector<std::uint64_t> tokens)
    : csr_(g), circuit_(std::move(circuit)), tokens_(std::move(tokens)) {
  RR_REQUIRE(index_circuit(), "not an Eulerian circuit of this graph");
  RR_REQUIRE(!tokens_.empty(), "need at least one token");
  for (std::uint64_t o : tokens_) {
    RR_REQUIRE(o < circuit_.size(), "token offset out of range");
  }
  reset_visits_from_tokens();
}

bool EulerianRotorRouter::index_circuit() {
  const std::size_t arcs = csr_.num_arcs();
  if (arcs == 0 || circuit_.size() != arcs) return false;
  std::vector<std::size_t> offset(csr_.num_nodes() + 1, 0);
  for (NodeId v = 0; v < csr_.num_nodes(); ++v) {
    offset[v + 1] = offset[v] + csr_.degree(v);
  }
  std::vector<std::uint8_t> used(arcs, 0);
  for (std::size_t i = 0; i < circuit_.size(); ++i) {
    const Arc& a = circuit_[i];
    if (a.tail >= csr_.num_nodes() || a.port >= csr_.degree(a.tail)) {
      return false;
    }
    const std::size_t id = offset[a.tail] + a.port;
    if (used[id]) return false;
    used[id] = 1;
    const Arc& next = circuit_[(i + 1) % circuit_.size()];
    if (csr_.neighbor(a.tail, a.port) != next.tail) return false;
  }
  node_at_.resize(circuit_.size());
  for (std::size_t i = 0; i < circuit_.size(); ++i) {
    node_at_[i] = circuit_[i].tail;
  }
  return true;
}

void EulerianRotorRouter::reset_visits_from_tokens() {
  const NodeId n = csr_.num_nodes();
  visits_.assign(n, 0);
  first_visit_.assign(n, sim::kNotCovered);
  present_.assign(n, 0);
  hold_left_.assign(n, 0);
  touched_.clear();
  covered_ = 0;
  time_ = 0;
  for (std::uint64_t o : tokens_) {
    const NodeId v = node_at_[o];
    ++visits_[v];
    if (first_visit_[v] == sim::kNotCovered) {
      first_visit_[v] = 0;
      ++covered_;
    }
  }
}

void EulerianRotorRouter::arrive(NodeId u) {
  ++visits_[u];
  if (first_visit_[u] == sim::kNotCovered) {
    first_visit_[u] = time_;
    ++covered_;
  }
}

std::vector<NodeId> EulerianRotorRouter::agent_positions() const {
  std::vector<NodeId> out;
  out.reserve(tokens_.size());
  for (std::uint64_t o : tokens_) out.push_back(node_at_[o]);
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t EulerianRotorRouter::config_hash() const {
  std::vector<std::uint64_t> sorted = tokens_;
  std::sort(sorted.begin(), sorted.end());
  Fnv1a h;
  h.mix(circuit_.size());
  for (std::uint64_t o : sorted) h.mix(o);
  return h.value();
}

void EulerianRotorRouter::serialize_state(sim::StateWriter& out) const {
  out.field_u64("time", time_);
  out.field_u64("circuit_start", circuit_.front().tail);
  std::vector<std::uint64_t> ports(circuit_.size());
  for (std::size_t i = 0; i < circuit_.size(); ++i) ports[i] = circuit_[i].port;
  out.field_list("circuit_ports", ports);
  out.field_list("tokens", tokens_);
  out.field_list("visits", visits_);
  out.field_list("first_visit", first_visit_);
}

bool EulerianRotorRouter::apply_cycle_leap(
    const std::vector<sim::AccumulatorDelta>& deltas, std::uint64_t cycles) {
  // Validate every delta before mutating anything (the hook is atomic):
  // only "time" (scalar) and "visits" (runs covering the node range) are
  // circulation accumulators; anything else falls back to the generic path.
  const sim::AccumulatorDelta* time_d = nullptr;
  const sim::AccumulatorDelta* visits_d = nullptr;
  for (const sim::AccumulatorDelta& d : deltas) {
    if (d.key == "time") {
      if (!d.scalar) return false;
      time_d = &d;
    } else if (d.key == "visits") {
      if (d.scalar) return false;
      std::uint64_t len = 0;
      for (const sim::DeltaRun& r : d.runs) len += r.len;
      if (len != visits_.size()) return false;
      visits_d = &d;
    } else {
      return false;
    }
  }
  if (time_d) time_ += cycles * time_d->scalar_delta;
  if (visits_d) {
    std::size_t v = 0;
    for (const sim::DeltaRun& r : visits_d->runs) {
      const std::uint64_t add = cycles * r.delta;
      for (std::uint64_t i = 0; i < r.len; ++i) visits_[v++] += add;
    }
  }
  return true;
}

bool EulerianRotorRouter::deserialize_state(const sim::StateReader& in) {
  const NodeId n = csr_.num_nodes();
  const std::size_t arcs = csr_.num_arcs();
  const auto time = in.u64("time");
  const auto start = in.u64("circuit_start");
  const auto ports = in.u64_list("circuit_ports", arcs);
  const auto tokens = in.u64_list("tokens");
  const auto visits = in.u64_list("visits", n);
  const auto first_visit = in.u64_list("first_visit", n);
  if (!time || !start || !ports || !tokens || !visits || !first_visit) {
    return false;
  }
  if (*start >= n || tokens->empty()) return false;
  // Re-chain the circuit tails from the start node through the ports.
  std::vector<Arc> circuit(arcs);
  NodeId tail = static_cast<NodeId>(*start);
  for (std::size_t i = 0; i < arcs; ++i) {
    const std::uint64_t port = (*ports)[i];
    if (port >= csr_.degree(tail)) return false;
    circuit[i] = Arc{tail, static_cast<std::uint32_t>(port)};
    tail = csr_.neighbor(tail, static_cast<std::uint32_t>(port));
  }
  if (tail != static_cast<NodeId>(*start)) return false;  // must close
  circuit_ = std::move(circuit);
  if (!index_circuit()) return false;
  for (std::uint64_t o : *tokens) {
    if (o >= circuit_.size()) return false;
  }
  // Visit-statistic consistency: a node is covered iff it was ever
  // visited, first visits never post-date the clock, and every token
  // stands on a covered node.
  NodeId covered = 0;
  for (NodeId v = 0; v < n; ++v) {
    const bool seen = (*first_visit)[v] != sim::kStateSentinel;
    if (seen != ((*visits)[v] > 0)) return false;
    if (seen) {
      if ((*first_visit)[v] > *time) return false;
      ++covered;
    }
  }
  for (std::uint64_t o : *tokens) {
    if ((*first_visit)[node_at_[o]] == sim::kStateSentinel) return false;
  }
  time_ = *time;
  tokens_ = *tokens;
  visits_ = *visits;
  first_visit_ = *first_visit;
  covered_ = covered;
  present_.assign(n, 0);
  hold_left_.assign(n, 0);
  touched_.clear();
  return true;
}

EulerianLockIn eulerian_from_lock_in(const graph::Graph& g, NodeId start,
                                     std::vector<std::uint32_t> pointers,
                                     std::uint64_t max_steps) {
  RR_REQUIRE(g.num_edges() > 0, "lock-in needs at least one edge");
  RR_REQUIRE(g.is_connected(), "lock-in requires a connected graph");
  RR_REQUIRE(start < g.num_nodes(), "start out of range");
  const std::uint64_t lap = g.num_arcs();
  if (max_steps == 0) {
    max_steps = 4ULL * g.diameter() * g.num_edges() + 4ULL * lap + 64;
  }

  EulerianLockIn out;
  out.rotor = std::make_unique<RotorRouter>(
      g, std::vector<NodeId>{start}, std::move(pointers));
  // Hardened detection (full rigid-state confirmation, not hash trust):
  // the accumulator set is the rotor engine's, passed explicitly so the
  // core layer does not depend on the registry.
  static const std::vector<std::string> kRotorAccumulators = {
      "time", "visits", "exits", "last_visit"};
  const auto cycle =
      sim::detect_confirmed_cycle(*out.rotor, max_steps, &kRotorAccumulators);
  if (!cycle) return out;
  out.detected_at = cycle->at_time;
  out.period = cycle->period;

  // The rotor is provably inside its limit cycle; one lap of 2|E| rounds
  // reads off the locked-in circuit (the single agent's position is the
  // unique occupied node, its pointer the arc it traverses next), and by
  // periodicity leaves the rotor in the configuration it started the lap
  // with — i.e. standing on the circuit's first tail.
  std::vector<Arc> circuit;
  circuit.reserve(lap);
  for (std::uint64_t i = 0; i < lap; ++i) {
    const NodeId pos = out.rotor->occupied_nodes().front();
    circuit.push_back(Arc{pos, out.rotor->pointer(pos)});
    out.rotor->step();
  }
  if (!graph::is_eulerian_circuit(g, circuit)) return out;  // hash collision
  out.engine = std::make_unique<EulerianRotorRouter>(
      g, std::move(circuit), std::vector<std::uint64_t>{0});
  out.locked_in = true;
  return out;
}

}  // namespace rr::core
