#include "core/rotor_router.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace rr::core {

RotorRouter::RotorRouter(const Graph& g, const std::vector<NodeId>& agents,
                         std::vector<std::uint32_t> pointers)
    : csr_(g),
      num_agents_(static_cast<std::uint32_t>(agents.size())),
      counts_(g.num_nodes(), 0),
      arrivals_(g.num_nodes(), 0),
      visits_(g.num_nodes(), 0),
      exits_(g.num_nodes(), 0),
      first_visit_(g.num_nodes(), kNotCovered),
      last_visit_(g.num_nodes(), 0) {
  RR_REQUIRE(!agents.empty(), "at least one agent required");
  RR_REQUIRE(g.is_connected(), "rotor-router requires a connected graph");
  if (pointers.empty()) {
    pointers_.assign(g.num_nodes(), 0);
  } else {
    RR_REQUIRE(pointers.size() == g.num_nodes(), "pointer vector size mismatch");
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      RR_REQUIRE(pointers[v] < g.degree(v), "pointer out of range");
    }
    pointers_ = std::move(pointers);
  }
  initial_pointers_ = pointers_;
  for (NodeId v : agents) {
    RR_REQUIRE(v < g.num_nodes(), "agent start node out of range");
    if (counts_[v] == 0) occupied_.push_back(v);
    ++counts_[v];
    ++visits_[v];  // n_v(0) counts initially placed agents
  }
  for (NodeId v : occupied_) {
    first_visit_[v] = 0;
    ++covered_;
  }
}

void RotorRouter::commit_arrivals() {
  // Drop stale entries (nodes fully vacated this round) and add newly
  // occupied nodes; `counts_ > 0` is the membership invariant, so the
  // occupied list never outgrows the set of nodes hosting agents (delayed
  // deployments included).
  std::size_t w = 0;
  for (std::size_t i = 0; i < occupied_.size(); ++i) {
    if (counts_[occupied_[i]] > 0) occupied_[w++] = occupied_[i];
  }
  occupied_.resize(w);
  for (NodeId u : touched_) {
    const std::uint32_t a = arrivals_[u];
    if (a == 0) continue;  // duplicate touch already committed
    arrivals_[u] = 0;
    if (counts_[u] == 0) occupied_.push_back(u);
    counts_[u] += a;
    visits_[u] += a;
    last_visit_[u] = time_;
    if (first_visit_[u] == kNotCovered) {
      first_visit_[u] = time_;
      ++covered_;
    }
  }
  touched_.clear();
}

std::vector<NodeId> RotorRouter::agent_positions() const {
  std::vector<NodeId> pos;
  pos.reserve(num_agents_);
  for (NodeId v : occupied_) {
    for (std::uint32_t i = 0; i < counts_[v]; ++i) pos.push_back(v);
  }
  std::sort(pos.begin(), pos.end());
  return pos;
}

std::uint64_t RotorRouter::config_hash() const {
  Fnv1a h;
  for (NodeId v = 0; v < csr_.num_nodes(); ++v) {
    h.mix(pointers_[v]);
    h.mix(counts_[v]);
  }
  return h.value();
}

void RotorRouter::serialize_state(sim::StateWriter& out) const {
  const NodeId n = csr_.num_nodes();
  out.field_u64("time", time_);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sites;
  for (NodeId v = 0; v < n; ++v) {
    if (counts_[v] > 0) sites.emplace_back(v, counts_[v]);
  }
  out.field_pairs("agents", sites);
  out.field_list("pointers", pointers_);
  out.field_list("initial_pointers", initial_pointers_);
  out.field_list("visits", visits_);
  out.field_list("exits", exits_);
  out.field_list("first_visit", first_visit_);
  out.field_list("last_visit", last_visit_);
}

bool RotorRouter::deserialize_state(const sim::StateReader& in) {
  const NodeId n = csr_.num_nodes();
  const auto time = in.u64("time");
  const auto sites = in.pairs("agents");
  const auto pointers = in.u64_list("pointers", n);
  const auto initial = in.u64_list("initial_pointers", n);
  const auto visits = in.u64_list("visits", n);
  const auto exits = in.u64_list("exits", n);
  const auto first_visit = in.u64_list("first_visit", n);
  const auto last_visit = in.u64_list("last_visit", n);
  if (!time || !sites || sites->empty() || !pointers || !initial || !visits ||
      !exits || !first_visit || !last_visit) {
    return false;
  }
  for (NodeId v = 0; v < n; ++v) {
    if ((*pointers)[v] >= csr_.degree_unchecked(v)) return false;
    if ((*initial)[v] >= csr_.degree_unchecked(v)) return false;
  }
  std::uint64_t total_agents = 0;
  for (const auto& [v, c] : *sites) {
    if (v >= n || c == 0 || c > ~std::uint32_t{0}) return false;
    total_agents += c;
  }
  if (total_agents > ~std::uint32_t{0}) return false;

  time_ = *time;
  num_agents_ = static_cast<std::uint32_t>(total_agents);
  counts_.assign(n, 0);
  occupied_.clear();
  for (const auto& [v, c] : *sites) {
    counts_[v] = static_cast<std::uint32_t>(c);
    occupied_.push_back(static_cast<NodeId>(v));
  }
  pointers_.assign(pointers->begin(), pointers->end());
  initial_pointers_.assign(initial->begin(), initial->end());
  visits_ = *visits;
  exits_ = *exits;
  first_visit_ = *first_visit;
  last_visit_ = *last_visit;
  covered_ = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (first_visit_[v] != kNotCovered) ++covered_;
  }
  return true;
}

}  // namespace rr::core
