#include "core/rotor_router.hpp"

#include <algorithm>

#include "core/rotor_state_io.hpp"

namespace rr::core {

RotorRouter::RotorRouter(const Graph& g, const std::vector<NodeId>& agents,
                         std::vector<std::uint32_t> pointers)
    : csr_(g),
      num_agents_(static_cast<std::uint32_t>(agents.size())),
      node_(g.num_nodes()),
      stats_(g.num_nodes()) {
  covered_ = init_rotor_nodes(g, csr_, agents, pointers, node_,
                              initial_pointers_, stats_,
                              [&](NodeId v) { occupied_.push_back(v); });
  pristine_ = pointers.empty();
}

RotorRouter::RotorRouter(const std::shared_ptr<graph::MappedSubstrate>& substrate,
                         const std::vector<NodeId>& agents,
                         std::vector<std::uint32_t> pointers)
    : csr_(substrate->csr()),
      num_agents_(static_cast<std::uint32_t>(agents.size())),
      node_(substrate->node_state()),
      stats_(substrate->visit_stats<VisitStats>()) {
  // The image builder verified connectivity (streamed kinds by
  // construction, built kinds explicitly) and precomputed
  // degree/row_begin, so only agent placement remains.
  covered_ = place_rotor_agents(csr_, agents, pointers, node_,
                                initial_pointers_, stats_,
                                [&](NodeId v) { occupied_.push_back(v); });
  // Only the first engine over this open may assume the mapping still
  // holds image defaults — engines sharing a handle share COW pages.
  // The claim is consumed unconditionally: this construction dirtied
  // the mapping either way.
  const bool first_over_mapping = substrate->claim_pristine_state();
  pristine_ = pointers.empty() && first_over_mapping;
}

void RotorRouter::commit_arrivals() {
  // Drop stale entries (nodes fully vacated this round) and add newly
  // occupied nodes; `count > 0` is the membership invariant, so the
  // occupied list never outgrows the set of nodes hosting agents (delayed
  // deployments included).
  std::size_t w = 0;
  for (std::size_t i = 0; i < occupied_.size(); ++i) {
    if (node_[occupied_[i]].count > 0) occupied_[w++] = occupied_[i];
  }
  occupied_.resize(w);
  const std::size_t touched_n = touched_.size();
  for (std::size_t i = 0; i < touched_n; ++i) {
    if (i + 4 < touched_n) prefetch_ro(&stats_[touched_[i + 4]]);
    const NodeId u = touched_[i];
    graph::NodeState& nu = node_[u];
    const std::uint32_t a = nu.arrivals;
    if (a == 0) continue;  // duplicate touch already committed
    nu.arrivals = 0;
    if (nu.count == 0) occupied_.push_back(u);
    if (commit_node_arrival(nu, stats_[u], time_, a)) ++covered_;
  }
  touched_.clear();
}

std::vector<NodeId> RotorRouter::agent_positions() const {
  std::vector<NodeId> pos;
  pos.reserve(num_agents_);
  for (NodeId v : occupied_) {
    for (std::uint32_t i = 0; i < node_[v].count; ++i) pos.push_back(v);
  }
  std::sort(pos.begin(), pos.end());
  return pos;
}

std::uint64_t RotorRouter::config_hash() const {
  return rotor_config_hash(node_);
}

void RotorRouter::serialize_state(sim::StateWriter& out) const {
  serialize_rotor_state(out, time_, node_, initial_pointers_, stats_);
}

bool RotorRouter::apply_cycle_leap(
    const std::vector<sim::AccumulatorDelta>& deltas, std::uint64_t cycles) {
  return leap_rotor_accumulators(deltas, cycles, time_, stats_);
}

bool RotorRouter::deserialize_state(const sim::StateReader& in) {
  return deserialize_state(in, /*pool=*/nullptr);
}

bool RotorRouter::deserialize_state(const sim::StateReader& in,
                                    sim::ThreadPool* pool) {
  const bool assume_defaults = pristine_;
  pristine_ = false;
  if (assume_defaults) {
    // Undo the constructor's agent placement so the default-skipping
    // restore's precondition holds at every node (placement only
    // touched count, visits and first_visit on the agent sites).
    for (const NodeId v : occupied_) {
      node_[v].count = 0;
      node_[v].arrivals = 0;
      stats_[v].visits = 0;
      stats_[v].first_visit = kNotCovered;
    }
  }
  const auto restored = deserialize_rotor_state(
      in, csr_, node_, initial_pointers_, stats_, assume_defaults, pool);
  if (!restored) return false;
  time_ = restored->time;
  num_agents_ = restored->num_agents;
  covered_ = restored->covered;
  occupied_ = restored->sites;
  return true;
}

}  // namespace rr::core
