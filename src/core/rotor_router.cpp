#include "core/rotor_router.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace rr::core {

RotorRouter::RotorRouter(const Graph& g, const std::vector<NodeId>& agents,
                         std::vector<std::uint32_t> pointers)
    : csr_(g),
      num_agents_(static_cast<std::uint32_t>(agents.size())),
      counts_(g.num_nodes(), 0),
      arrivals_(g.num_nodes(), 0),
      visits_(g.num_nodes(), 0),
      exits_(g.num_nodes(), 0),
      first_visit_(g.num_nodes(), kNotCovered),
      last_visit_(g.num_nodes(), 0) {
  RR_REQUIRE(!agents.empty(), "at least one agent required");
  RR_REQUIRE(g.is_connected(), "rotor-router requires a connected graph");
  if (pointers.empty()) {
    pointers_.assign(g.num_nodes(), 0);
  } else {
    RR_REQUIRE(pointers.size() == g.num_nodes(), "pointer vector size mismatch");
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      RR_REQUIRE(pointers[v] < g.degree(v), "pointer out of range");
    }
    pointers_ = std::move(pointers);
  }
  initial_pointers_ = pointers_;
  for (NodeId v : agents) {
    RR_REQUIRE(v < g.num_nodes(), "agent start node out of range");
    if (counts_[v] == 0) occupied_.push_back(v);
    ++counts_[v];
    ++visits_[v];  // n_v(0) counts initially placed agents
  }
  for (NodeId v : occupied_) {
    first_visit_[v] = 0;
    ++covered_;
  }
}

void RotorRouter::commit_arrivals() {
  // Drop stale entries (nodes fully vacated this round) and add newly
  // occupied nodes; `counts_ > 0` is the membership invariant, so the
  // occupied list never outgrows the set of nodes hosting agents (delayed
  // deployments included).
  std::size_t w = 0;
  for (std::size_t i = 0; i < occupied_.size(); ++i) {
    if (counts_[occupied_[i]] > 0) occupied_[w++] = occupied_[i];
  }
  occupied_.resize(w);
  for (NodeId u : touched_) {
    const std::uint32_t a = arrivals_[u];
    if (a == 0) continue;  // duplicate touch already committed
    arrivals_[u] = 0;
    if (counts_[u] == 0) occupied_.push_back(u);
    counts_[u] += a;
    visits_[u] += a;
    last_visit_[u] = time_;
    if (first_visit_[u] == kNotCovered) {
      first_visit_[u] = time_;
      ++covered_;
    }
  }
  touched_.clear();
}

std::vector<NodeId> RotorRouter::agent_positions() const {
  std::vector<NodeId> pos;
  pos.reserve(num_agents_);
  for (NodeId v : occupied_) {
    for (std::uint32_t i = 0; i < counts_[v]; ++i) pos.push_back(v);
  }
  std::sort(pos.begin(), pos.end());
  return pos;
}

std::uint64_t RotorRouter::config_hash() const {
  Fnv1a h;
  for (NodeId v = 0; v < csr_.num_nodes(); ++v) {
    h.mix(pointers_[v]);
    h.mix(counts_[v]);
  }
  return h.value();
}

}  // namespace rr::core
