#include "core/initializers.hpp"

#include <algorithm>

namespace rr::core {

std::vector<NodeId> place_all_on_one(std::uint32_t k, NodeId v0) {
  RR_REQUIRE(k >= 1, "k must be positive");
  return std::vector<NodeId>(k, v0);
}

std::vector<NodeId> place_equally_spaced(NodeId n, std::uint32_t k,
                                         NodeId offset) {
  RR_REQUIRE(k >= 1 && k <= n, "need 1 <= k <= n for equal spacing");
  std::vector<NodeId> agents(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    agents[i] = static_cast<NodeId>(
        (offset + static_cast<std::uint64_t>(i) * n / k) % n);
  }
  return agents;
}

std::vector<NodeId> place_random(NodeId n, std::uint32_t k, Rng& rng) {
  RR_REQUIRE(k >= 1, "k must be positive");
  std::vector<NodeId> agents(k);
  for (auto& a : agents) a = rng.bounded(n);
  return agents;
}

std::vector<NodeId> place_clustered(NodeId n, std::uint32_t k, NodeId center,
                                    NodeId spread, Rng& rng) {
  RR_REQUIRE(k >= 1, "k must be positive");
  std::vector<NodeId> agents(k);
  for (auto& a : agents) {
    const std::uint32_t d = rng.bounded(2 * spread + 1);
    a = static_cast<NodeId>((center + n + d - spread) % n);
  }
  return agents;
}

std::vector<std::uint8_t> pointers_uniform(NodeId n, std::uint8_t dir) {
  RR_REQUIRE(dir <= 1, "dir must be 0 (cw) or 1 (acw)");
  return std::vector<std::uint8_t>(n, dir);
}

std::vector<std::uint8_t> pointers_random(NodeId n, Rng& rng) {
  std::vector<std::uint8_t> p(n);
  for (NodeId v = 0; v < n; v += 64) {
    std::uint64_t bits = rng();
    for (NodeId i = v; i < std::min<NodeId>(v + 64, n); ++i) {
      p[i] = bits & 1;
      bits >>= 1;
    }
  }
  return p;
}

std::vector<std::uint8_t> pointers_toward(NodeId n, NodeId target) {
  RR_REQUIRE(target < n, "target out of range");
  std::vector<std::uint8_t> p(n);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId cw_dist = (target + n - v) % n;   // steps v -> target clockwise
    const NodeId acw_dist = (v + n - target) % n;  // steps v -> target anticlockwise
    p[v] = (cw_dist <= acw_dist) ? kClockwise : kAnticlockwise;
  }
  return p;
}

std::vector<std::uint8_t> pointers_negative(NodeId n,
                                            const std::vector<NodeId>& agents) {
  RR_REQUIRE(!agents.empty(), "need at least one agent");
  // Distance to nearest agent in each direction via two sweeps.
  constexpr NodeId kInf = ~NodeId{0};
  std::vector<NodeId> dist_cw(n, kInf), dist_acw(n, kInf);  // toward agent
  std::vector<bool> host(n, false);
  for (NodeId a : agents) {
    RR_REQUIRE(a < n, "agent out of range");
    host[a] = true;
  }
  // dist_acw[v]: clockwise distance from v to the nearest agent reached by
  // walking clockwise; dist_cw[v]: distance walking anticlockwise.
  for (int pass = 0; pass < 2; ++pass) {
    for (NodeId i = 0; i < n; ++i) {
      const NodeId v = n - 1 - i;  // sweep downward for clockwise targets
      const NodeId next = (v + 1) % n;
      if (host[v]) {
        dist_acw[v] = 0;
      } else if (dist_acw[next] != kInf) {
        dist_acw[v] = dist_acw[next] + 1;
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      const NodeId prev = (v + n - 1) % n;
      if (host[v]) {
        dist_cw[v] = 0;
      } else if (dist_cw[prev] != kInf) {
        dist_cw[v] = dist_cw[prev] + 1;
      }
    }
  }
  std::vector<std::uint8_t> p(n);
  for (NodeId v = 0; v < n; ++v) {
    // Point toward the closer agent: clockwise walk reaches an agent in
    // dist_acw[v] steps (pointer clockwise), anticlockwise in dist_cw[v].
    p[v] = (dist_acw[v] <= dist_cw[v]) ? kClockwise : kAnticlockwise;
  }
  return p;
}

bool is_remote_vertex(NodeId n, const std::vector<NodeId>& agents, NodeId v) {
  const std::uint32_t k = static_cast<std::uint32_t>(agents.size());
  RR_REQUIRE(k >= 1, "need at least one agent");
  const double seg = static_cast<double>(n) / (10.0 * k);
  // Sorted clockwise offsets of agents relative to v.
  std::vector<NodeId> cw_off, acw_off;
  cw_off.reserve(k);
  acw_off.reserve(k);
  for (NodeId a : agents) {
    cw_off.push_back((a + n - v) % n);
    acw_off.push_back((v + n - a) % n);
  }
  std::sort(cw_off.begin(), cw_off.end());
  std::sort(acw_off.begin(), acw_off.end());
  for (std::uint32_t r = 1; r <= k; ++r) {
    const double reach = r * seg;
    const auto in_cw = std::upper_bound(cw_off.begin(), cw_off.end(),
                                        static_cast<NodeId>(reach)) -
                       cw_off.begin();
    const auto in_acw = std::upper_bound(acw_off.begin(), acw_off.end(),
                                         static_cast<NodeId>(reach)) -
                        acw_off.begin();
    if (in_cw > static_cast<std::ptrdiff_t>(r) ||
        in_acw > static_cast<std::ptrdiff_t>(r)) {
      return false;
    }
  }
  return true;
}

NodeId count_remote_vertices(NodeId n, const std::vector<NodeId>& agents) {
  NodeId count = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (is_remote_vertex(n, agents, v)) ++count;
  }
  return count;
}

RemoteAdversary adversarial_remote_init(NodeId n,
                                        const std::vector<NodeId>& agents) {
  // Pick the remote vertex farthest from any agent (the Thm 4 proof wants
  // distance >= ~n/(9k); maximizing distance is the strongest choice).
  const std::uint32_t k = static_cast<std::uint32_t>(agents.size());
  std::vector<bool> host(n, false);
  for (NodeId a : agents) host[a] = true;

  // distance to nearest agent (either direction) for all v, by BFS-style
  // two-directional sweep.
  std::vector<NodeId> dist(n, ~NodeId{0});
  for (NodeId a : agents) dist[a] = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (NodeId i = 0; i < 2 * n; ++i) {
      const NodeId v = i % n;
      const NodeId prev = (v + n - 1) % n;
      if (dist[prev] != ~NodeId{0}) dist[v] = std::min(dist[v], dist[prev] + 1);
    }
    for (NodeId i = 2 * n; i-- > 0;) {
      const NodeId v = i % n;
      const NodeId next = (v + 1) % n;
      if (dist[next] != ~NodeId{0}) dist[v] = std::min(dist[v], dist[next] + 1);
    }
  }

  RemoteAdversary result;
  result.found = false;
  result.remote_vertex = 0;
  NodeId best_dist = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (dist[v] >= best_dist && is_remote_vertex(n, agents, v)) {
      best_dist = dist[v];
      result.remote_vertex = v;
      result.found = true;
    }
  }
  (void)k;
  result.pointers = pointers_negative(n, agents);
  return result;
}

}  // namespace rr::core
