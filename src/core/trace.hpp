#pragma once

// Space-time tracing of ring configurations (S6 extension).
//
// Ring-specialized rendering layer: per-agent glyphs and domain labels
// need RingRotorRouter accessors beyond the sim::Engine observer surface,
// so they live here; recording/formatting mechanics are shared with the
// engine-generic renderer in sim/trace.hpp (which also draws torus and
// random-graph runs). Renders the evolution of a (small) ring system as
// ASCII space-time diagrams — one row per sampled round, one column per
// node — used by the spacetime_diagram example and the Fig. 1/Fig. 2
// illustrations:
//
//   time 0   |oooo                            |  agents bunched at node 0
//   time 16  |  .o.o..o.                o.    |  domains forming
//
// Symbols: 'o' one agent, '8' two agents, '*' three or more, '.' visited,
// ' ' unvisited; in domain mode, visited nodes show a letter identifying
// the owning agent's domain (cycling a..z).

#include <cstdint>
#include <string>
#include <vector>

#include "core/ring_rotor_router.hpp"

namespace rr::core {

struct TraceOptions {
  std::uint64_t rounds = 64;   ///< rounds to advance while recording
  std::uint64_t stride = 1;    ///< sample every `stride` rounds
  bool domains = false;        ///< label visited nodes by owning domain
  bool pointers = false;       ///< add a second line with pointer directions
};

/// One rendered row of the diagram plus the round it depicts.
struct TraceRow {
  std::uint64_t round;
  std::string cells;
};

/// Renders the current configuration (one row, no stepping).
TraceRow render_row(const RingRotorRouter& rr, bool domains);

/// Renders pointer directions ('>' clockwise, '<' anticlockwise).
std::string render_pointers(const RingRotorRouter& rr);

/// Advances `rr` for options.rounds rounds, sampling a row every
/// options.stride rounds (including the initial state).
std::vector<TraceRow> record_trace(RingRotorRouter& rr,
                                   const TraceOptions& options);

/// Joins rows into a printable diagram with round labels.
std::string format_trace(const std::vector<TraceRow>& rows);

}  // namespace rr::core
