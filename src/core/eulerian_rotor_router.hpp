#pragma once

// Eulerian token-circulation engine (S1 extension, paper Secs. 1.2/2.1).
//
// The paper's framework builds on the Yanovski et al. substrate result:
// a single rotor-router agent locks into a traversal of a directed
// Eulerian circuit of the symmetric version of G within 2 D |E| rounds,
// after which the dynamics ARE token circulation — the agent is a token
// moving one arc per round along a fixed cyclic arc sequence. This engine
// is that picture made a first-class sim::Engine backend: a configuration
// is (circuit, token offsets), one synchronous round advances every
// unheld token one arc, and a round costs O(k) regardless of |E|.
//
// Two ways to obtain one:
//
//   - EulerianRotorRouter(g, agents): constructs a Hierholzer circuit
//     (graph/eulerian.hpp) and places one token per agent at the first
//     circuit position whose tail is the agent's start node. This is the
//     registry/CLI path: an exact token-circulation dynamics on any
//     connected substrate, covering within 2|E| rounds per token.
//
//   - eulerian_from_lock_in(g, start): runs a real single-agent
//     core::RotorRouter until the hardened cycle detector
//     (sim/cycle_jump.hpp) confirms its limit cycle, extracts the
//     locked-in circuit from the live rotor state, and returns a token
//     engine positioned exactly where the rotor agent stands. From that
//     point the two engines advance identically round for round — the
//     paper's Eulerian-lock-in claim as an executable invariant, gated in
//     tests/eulerian_engine_test.cpp across topologies.
//
// Delayed deployments (Sec. 2.1) hold D(v, t, present) of the tokens at v
// for the round (lowest-indexed stay, mirroring walk::GraphRandomWalks);
// a held token keeps its circuit offset, so lockstep with a delayed
// rotor-router is preserved. Visits count token landings plus initial
// placement (n_v(0) convention shared by every backend).

#include <cstdint>
#include <memory>
#include <vector>

#include "common/require.hpp"
#include "graph/csr_graph.hpp"
#include "graph/eulerian.hpp"
#include "graph/graph.hpp"
#include "sim/cycle_jump.hpp"
#include "sim/engine.hpp"
#include "sim/state_io.hpp"

namespace rr::core {

class RotorRouter;

class EulerianRotorRouter final : public sim::Engine,
                                  public sim::StateIO,
                                  public sim::CycleLeapable {
 public:
  /// Hierholzer circuit from `agents[0]`; one token per agent, placed at
  /// successive circuit offsets tailed at that agent's start node (a
  /// degree-d node has d such offsets), so co-located agents take
  /// distinct trajectories — the analogue of distinct exit ports.
  EulerianRotorRouter(const graph::Graph& g,
                      const std::vector<graph::NodeId>& agents);

  /// Token circulation on an explicit circuit (must be a directed
  /// Eulerian circuit of `g`); `token_offsets` are circuit positions in
  /// [0, circuit.size()).
  EulerianRotorRouter(const graph::Graph& g, std::vector<graph::Arc> circuit,
                      std::vector<std::uint64_t> token_offsets);

  void step() override {
    step_delayed(
        [](graph::NodeId, std::uint64_t, std::uint32_t) { return 0u; });
  }

  /// One delayed round; `delay(v, t, present)` -> tokens held at v.
  template <typename DelayFn>
  void step_delayed(DelayFn&& delay) {
    ++time_;
    for (std::uint64_t o : tokens_) {
      const graph::NodeId v = node_at_[o];
      if (present_[v]++ == 0) touched_.push_back(v);
    }
    for (graph::NodeId v : touched_) {
      std::uint32_t held = delay(v, time_, present_[v]);
      if (held > present_[v]) held = present_[v];
      hold_left_[v] = held;
    }
    const std::uint64_t circuit_len = node_at_.size();
    for (std::uint64_t& o : tokens_) {
      const graph::NodeId v = node_at_[o];
      if (hold_left_[v] > 0) {
        --hold_left_[v];  // held tokens stay and do not revisit (Lemma 1)
        continue;
      }
      o = (o + 1 == circuit_len) ? 0 : o + 1;
      arrive(node_at_[o]);
    }
    for (graph::NodeId v : touched_) {
      present_[v] = 0;
      hold_left_[v] = 0;
    }
    touched_.clear();
  }

  std::uint64_t time() const override { return time_; }
  graph::NodeId num_nodes() const override { return csr_.num_nodes(); }
  std::uint32_t num_agents() const override {
    return static_cast<std::uint32_t>(tokens_.size());
  }

  std::uint64_t visits(graph::NodeId v) const override { return visits_[v]; }
  std::uint64_t first_visit_time(graph::NodeId v) const override {
    return first_visit_[v];
  }
  graph::NodeId covered_count() const override { return covered_; }

  /// The fixed circuit (2|E| arcs) and the live token offsets into it.
  const std::vector<graph::Arc>& circuit() const { return circuit_; }
  std::uint64_t token_offset(std::uint32_t token) const {
    return tokens_[token];
  }
  /// Node currently hosting `token` (== circuit()[offset].tail).
  graph::NodeId token_node(std::uint32_t token) const {
    return node_at_[tokens_[token]];
  }
  /// Sorted multiset of token positions (for tests / cross-engine gates).
  std::vector<graph::NodeId> agent_positions() const;

  /// FNV-1a over the sorted token-offset multiset (plus the circuit
  /// length): the configuration is periodic in the offsets with period
  /// dividing 2|E|, which the hardened detector (sim/cycle_jump.hpp)
  /// recovers exactly.
  std::uint64_t config_hash() const override;

  const char* engine_name() const override { return "eulerian-circulation"; }

  /// Full dynamical state: the circuit (start node + port sequence, the
  /// tails re-chained on load), token offsets, and visit statistics.
  void serialize_state(sim::StateWriter& out) const override;
  [[nodiscard]] bool deserialize_state(const sim::StateReader& in) override;

  /// Confirmed-cycle fast leap (sim::CycleLeapable): the circulation's
  /// accumulators are time and the per-node visit counts; tokens and the
  /// circuit are bit-identical across a period and stay untouched.
  [[nodiscard]] bool apply_cycle_leap(
      const std::vector<sim::AccumulatorDelta>& deltas,
      std::uint64_t cycles) override;

 private:
  void do_step_delayed(const sim::DelayFn& delay) override {
    step_delayed(delay);
  }
  void arrive(graph::NodeId u);
  /// Rebuilds node_at_ / arc bookkeeping from circuit_; false if circuit_
  /// is not a directed Eulerian circuit of the snapshotted graph.
  bool index_circuit();
  void reset_visits_from_tokens();

  graph::CsrGraph csr_;
  std::uint64_t time_ = 0;
  graph::NodeId covered_ = 0;

  std::vector<graph::Arc> circuit_;     // fixed Eulerian circuit, 2|E| arcs
  std::vector<graph::NodeId> node_at_;  // circuit_[i].tail (hot stepping array)
  std::vector<std::uint64_t> tokens_;   // circuit offsets, one per agent

  // Per-round delay scratch (touched-list so a round stays O(k)).
  std::vector<std::uint32_t> present_;
  std::vector<std::uint32_t> hold_left_;
  std::vector<graph::NodeId> touched_;

  std::vector<std::uint64_t> visits_;
  std::vector<std::uint64_t> first_visit_;
};

/// Result of extracting the token-circulation picture from a live rotor
/// walk (see eulerian_from_lock_in).
struct EulerianLockIn {
  bool locked_in = false;
  /// Absolute rotor round at which the Brent detector confirmed the limit
  /// cycle (the rotor is provably inside its Eulerian traversal here).
  std::uint64_t detected_at = 0;
  /// Detected period; equals 2|E| for a single locked-in agent.
  std::uint64_t period = 0;
  /// The rotor engine, advanced to `detected_at` + 2|E| (one extraction
  /// lap; by periodicity its configuration equals the one at detection).
  std::unique_ptr<RotorRouter> rotor;
  /// Token engine on the extracted circuit, its token standing exactly on
  /// the rotor agent's node; stepping both keeps them in lockstep.
  std::unique_ptr<EulerianRotorRouter> engine;
};

/// Runs a single-agent rotor-router from `start`, detects its limit cycle
/// with the generic Brent detector, extracts the locked-in Eulerian
/// circuit from the live state, and returns the aligned token engine.
/// `max_steps` 0 picks the 2 D |E| lock-in bound with slack. locked_in is
/// false if no cycle was confirmed within the cap (or the extracted lap
/// failed Eulerian verification — impossible short of a hash collision).
EulerianLockIn eulerian_from_lock_in(const graph::Graph& g,
                                     graph::NodeId start,
                                     std::vector<std::uint32_t> pointers = {},
                                     std::uint64_t max_steps = 0);

}  // namespace rr::core
