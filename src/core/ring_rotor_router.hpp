#pragma once

// Ring-specialized multi-agent rotor-router engine (S4).
//
// Semantically identical to RotorRouter on graph::ring(n) (property tests
// assert lockstep equality), but a round costs O(#occupied nodes) instead of
// touching graph adjacency, and the engine tracks the extra per-node state
// the paper's ring analysis needs:
//   - the travel direction of the last single arrival (to classify visits as
//     propagation vs reflection, Sec. 2.2),
//   - whether the last completed visit was a single-agent propagation (the
//     membership test of lazy domains, Definition 1).
//
// Port convention: pointer 0 = clockwise (v -> v+1 mod n), pointer 1 =
// anticlockwise (v -> v-1 mod n). This matches graph::ring(n).

#include <cstdint>
#include <vector>

#include "common/require.hpp"
#include "sim/engine.hpp"
#include "sim/state_io.hpp"

namespace rr::core {

using NodeId = std::uint32_t;

inline constexpr std::uint8_t kClockwise = 0;
inline constexpr std::uint8_t kAnticlockwise = 1;

inline constexpr std::uint64_t kRingNotCovered = sim::kNotCovered;

class RingRotorRouter final : public sim::Engine, public sim::StateIO {
 public:
  /// `agents`: multiset of starting nodes; `pointers`: per-node initial
  /// pointer (0 = clockwise, 1 = anticlockwise), empty means all clockwise.
  RingRotorRouter(NodeId n, const std::vector<NodeId>& agents,
                  std::vector<std::uint8_t> pointers = {});

  void step() override {
    step_delayed([](NodeId, std::uint64_t, std::uint32_t) { return 0u; });
  }

  /// One delayed round; `delay(v, t, present)` -> agents held at v (Sec 2.1).
  template <typename DelayFn>
  void step_delayed(DelayFn&& delay) {
    ++time_;
    const std::size_t occupied_before = occupied_.size();
    for (std::size_t idx = 0; idx < occupied_before; ++idx) {
      const NodeId v = occupied_[idx];
      const std::uint32_t present = counts_[v];
      if (present == 0) continue;
      std::uint32_t held = delay(v, time_, present);
      if (held > present) held = present;
      const std::uint32_t moving = present - held;
      if (moving == 0) continue;
      depart(v, moving);
      counts_[v] = held;
    }
    commit_arrivals();
  }

  NodeId num_nodes() const override { return n_; }
  std::uint64_t time() const override { return time_; }
  std::uint32_t num_agents() const override { return num_agents_; }

  std::uint32_t agents_at(NodeId v) const { return counts_[v]; }
  std::uint8_t pointer(NodeId v) const { return pointers_[v]; }
  const std::vector<NodeId>& occupied_nodes() const { return occupied_; }
  /// Number of occupied-list entries; commit_arrivals keeps this equal to
  /// the number of nodes hosting at least one agent (no stale growth).
  std::size_t occupied_count() const { return occupied_.size(); }

  std::uint64_t visits(NodeId v) const override { return visits_[v]; }
  std::uint64_t exits(NodeId v) const { return exits_[v]; }
  std::uint64_t first_visit_time(NodeId v) const override {
    return first_visit_[v];
  }
  std::uint64_t last_visit_time(NodeId v) const { return last_visit_[v]; }
  bool visited(NodeId v) const { return first_visit_[v] != kRingNotCovered; }

  NodeId covered_count() const override { return covered_; }

  /// True iff the last *completed* visit to v (arrival followed by
  /// departure) was by a single agent and was a propagation (Definition 1).
  bool last_visit_single_propagation(NodeId v) const {
    return last_single_prop_[v];
  }

  std::vector<NodeId> agent_positions() const;
  std::uint64_t config_hash() const override;

  const char* engine_name() const override { return "ring-rotor-router"; }

  /// Full dynamical state, including the Sec. 2.2 visit-classification
  /// fields (travel direction, last arrival count, single-propagation
  /// flag) so domain analyses continue exactly after a resume.
  void serialize_state(sim::StateWriter& out) const override;
  [[nodiscard]] bool deserialize_state(const sim::StateReader& in) override;

  NodeId clockwise(NodeId v) const { return v + 1 == n_ ? 0 : v + 1; }
  NodeId anticlockwise(NodeId v) const { return v == 0 ? n_ - 1 : v - 1; }

 private:
  void do_step_delayed(const sim::DelayFn& delay) override {
    step_delayed(delay);
  }
  void depart(NodeId v, std::uint32_t moving);
  void commit_arrivals();
  void arrive(NodeId u, std::uint32_t count, std::uint8_t travel_dir);

  NodeId n_;
  std::uint32_t num_agents_;
  std::uint64_t time_ = 0;
  NodeId covered_ = 0;

  std::vector<std::uint32_t> counts_;
  std::vector<std::uint8_t> pointers_;
  std::vector<NodeId> occupied_;

  // Arrival accumulation for the current round, split by travel direction:
  // arrive_cw_[v] agents entered v moving clockwise (i.e. from v-1).
  std::vector<std::uint32_t> arrive_cw_;
  std::vector<std::uint32_t> arrive_acw_;
  std::vector<NodeId> touched_;

  // Visit classification state (Sec. 2.2): valid when the last arrival at v
  // was by exactly one agent.
  std::vector<std::uint8_t> travel_dir_;
  std::vector<std::uint32_t> last_arrival_count_;
  std::vector<std::uint8_t> last_single_prop_;

  std::vector<std::uint64_t> visits_;
  std::vector<std::uint64_t> exits_;
  std::vector<std::uint64_t> first_visit_;
  std::vector<std::uint64_t> last_visit_;
};

}  // namespace rr::core
