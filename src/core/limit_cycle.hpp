#pragma once

// Limit-cycle detection and exact return time (S8, paper Sec. 4).
//
// The rotor-router is a deterministic finite-state system: it must enter a
// cycle of configurations (pointers + agent multiset). Detection routes
// through the hardened engine-generic detector (sim/cycle_jump.hpp —
// Brent over config_hash proposes, full serialized-state comparison
// confirms, so the period is exact even under hash collisions); one extra
// traversal of the confirmed cycle then yields the *exact* return time:
// max over nodes of the longest (cyclic) inter-visit gap.
//
// Also here: the single-agent Eulerian lock-in detector used to validate
// the Yanovski et al. substrate result (lock-in within 2 D |E| rounds, each
// arc then traversed exactly once per 2|E| rounds).

#include <cstdint>
#include <optional>
#include <vector>

#include "core/cover_time.hpp"
#include "core/ring_rotor_router.hpp"
#include "graph/graph.hpp"

namespace rr::core {

struct LimitCycle {
  std::uint64_t period = 0;
  /// A time at which the system is provably inside the cycle.
  std::uint64_t in_cycle_time = 0;
};

/// Confirmed cycle detection on full configurations of the ring
/// rotor-router (sim::detect_confirmed_cycle under the hood). Returns
/// nullopt if no cycle is confirmed within `max_steps`.
std::optional<LimitCycle> detect_limit_cycle(const RingConfig& config,
                                             std::uint64_t max_steps);

struct ExactReturnTime {
  std::uint64_t period = 0;
  std::uint64_t max_gap = 0;   ///< the paper's return time
  std::uint64_t min_gap = 0;   ///< min over nodes of their max gap
};

/// Exact return time on the limit cycle (small instances only). Requires
/// every node to be visited at least once per period (true after coverage).
std::optional<ExactReturnTime> exact_return_time(const RingConfig& config,
                                                 std::uint64_t max_steps);

struct LockInResult {
  bool locked_in = false;
  std::uint64_t lock_in_time = 0;  ///< first round of a fully-Eulerian window
  std::uint64_t steps_simulated = 0;
};

/// Runs a single agent from `start` on `g` and finds the first round t0
/// such that rounds [t0, t0 + 2|E|) traverse every arc exactly once (the
/// agent has established its Eulerian cycle).
LockInResult single_agent_lock_in(const graph::Graph& g, graph::NodeId start,
                                  std::vector<std::uint32_t> pointers = {},
                                  std::uint64_t max_steps = 0);

}  // namespace rr::core
