#include "core/limit_cycle.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "sim/cycle_jump.hpp"

namespace rr::core {

namespace {

// Accumulator classification for the ring engine's serialized state, per
// the EngineSpec::cycle_accumulators contract (sim/cycle_jump.hpp): time
// and the per-node visit/exit/last-visit counters advance by a constant
// per period; everything else (agents, pointers, travel_dir, first_visit,
// last_arrival counts, last_single_prop) is rigid and must match exactly.
// Passed explicitly so this file has no registry dependency.
const std::vector<std::string>& ring_accumulators() {
  static const std::vector<std::string> kAccumulators = {
      "time", "visits", "exits", "last_visit"};
  return kAccumulators;
}

}  // namespace

std::optional<LimitCycle> detect_limit_cycle(const RingConfig& config,
                                             std::uint64_t max_steps) {
  // Hardened detector (sim/cycle_jump.hpp): Brent over config_hash
  // proposes, full rigid-state comparison confirms, so the returned
  // period is the exact minimal configuration period even under 64-bit
  // hash collisions. The snapshot machinery this file used to carry is
  // subsumed: a serialized-state compare covers counts and pointers.
  RingRotorRouter hare = config.make();
  const auto cycle =
      sim::detect_confirmed_cycle(hare, max_steps, &ring_accumulators());
  if (!cycle) return std::nullopt;
  return LimitCycle{cycle->period, cycle->at_time};
}

std::optional<ExactReturnTime> exact_return_time(const RingConfig& config,
                                                 std::uint64_t max_steps) {
  // Confirm the limit cycle on a live engine, then traverse one full
  // period recording visit times.
  RingRotorRouter rr = config.make();
  const auto cycle =
      sim::detect_confirmed_cycle(rr, max_steps, &ring_accumulators());
  if (!cycle) return std::nullopt;

  const std::uint64_t period = cycle->period;
  const NodeId n = rr.num_nodes();
  constexpr std::uint64_t kNever = ~std::uint64_t{0};
  std::vector<std::uint64_t> first(n, kNever), last(n, kNever), gap(n, 0);
  const std::uint64_t t0 = rr.time();
  // Nodes currently hosting agents count as visited at offset 0 (an agent
  // is present, so the node is trivially "just visited" on the cycle).
  for (NodeId v : rr.occupied_nodes()) {
    first[v] = 0;
    last[v] = 0;
  }
  for (std::uint64_t i = 1; i <= period; ++i) {
    rr.step();
    for (NodeId v : rr.occupied_nodes()) {
      if (rr.last_visit_time(v) != rr.time()) continue;
      if (first[v] == kNever) {
        first[v] = i;
      } else {
        gap[v] = std::max(gap[v], i - last[v]);
      }
      last[v] = i;
    }
  }
  (void)t0;
  ExactReturnTime result;
  result.period = period;
  std::uint64_t max_gap = 0;
  std::uint64_t min_gap = ~std::uint64_t{0};
  for (NodeId v = 0; v < n; ++v) {
    if (first[v] == kNever) return std::nullopt;  // node starves: not covered
    const std::uint64_t wrap = first[v] + period - last[v];
    const std::uint64_t g = std::max(gap[v], wrap);
    max_gap = std::max(max_gap, g);
    min_gap = std::min(min_gap, g);
  }
  result.max_gap = max_gap;
  result.min_gap = min_gap;
  return result;
}

LockInResult single_agent_lock_in(const graph::Graph& g, graph::NodeId start,
                                  std::vector<std::uint32_t> pointers,
                                  std::uint64_t max_steps) {
  using graph::NodeId;
  RR_REQUIRE(g.is_connected(), "lock-in requires a connected graph");
  RR_REQUIRE(start < g.num_nodes(), "start out of range");
  const std::size_t m2 = g.num_arcs();
  if (max_steps == 0) {
    max_steps = 4ULL * g.diameter() * g.num_edges() + 4ULL * m2 + 64;
  }

  // Arc ids: offset[v] + port.
  std::vector<std::size_t> offset(g.num_nodes() + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    offset[v + 1] = offset[v] + g.degree(v);
  }

  std::vector<std::uint32_t> ptr;
  if (pointers.empty()) {
    ptr.assign(g.num_nodes(), 0);
  } else {
    RR_REQUIRE(pointers.size() == g.num_nodes(), "pointer size mismatch");
    ptr = std::move(pointers);
  }

  // Sliding window of the last 2|E| traversed arcs; lock-in when all
  // distinct (each arc exactly once).
  std::vector<std::uint32_t> in_window(m2, 0);
  std::vector<std::size_t> window(m2, 0);
  std::size_t head = 0, filled = 0, distinct = 0;

  LockInResult result;
  NodeId pos = start;
  for (std::uint64_t t = 1; t <= max_steps; ++t) {
    const std::uint32_t p = ptr[pos];
    const std::size_t arc = offset[pos] + p;
    const NodeId nxt = g.neighbor(pos, p);
    ptr[pos] = (p + 1 == g.degree(pos)) ? 0 : p + 1;
    pos = nxt;

    if (filled == m2) {
      const std::size_t old = window[head];
      if (--in_window[old] == 0) --distinct;
    } else {
      ++filled;
    }
    window[head] = arc;
    if (++in_window[arc] == 1) ++distinct;
    head = (head + 1 == m2) ? 0 : head + 1;

    if (filled == m2 && distinct == m2) {
      result.locked_in = true;
      result.lock_in_time = t - m2 + 1;
      result.steps_simulated = t;
      return result;
    }
  }
  result.steps_simulated = max_steps;
  return result;
}

}  // namespace rr::core
