#pragma once

// Shared pieces of the rotor-router round kernel (core layer).
//
// The sequential engine (core::RotorRouter) and the shard-parallel engine
// (core::ShardedRotorRouter) run the same per-node round: move the
// non-held agents out along consecutive ports from the rotor pointer,
// advance the pointer, commit arrivals. This header holds the parts both
// share, so the differential gate pins one kernel, not two divergent
// copies:
//
//  * distribute_exits — the vectorized exit loop. c agents leaving a
//    degree-d node sweep the ports cyclically, so every port receives
//    floor(c/d) agents plus one for the first (c mod d) ports after the
//    pointer. Emitting floor(c/d) per port directly turns a k-agent
//    pile-up (paper Sec. 2, all-on-one deployments) from O(k) arrival
//    increments into O(d), and the remainder loop is the seed engine's
//    loop unchanged — so sparse traffic pays one extra compare.
//
//  * VisitStats — the per-node visit bookkeeping (n_v, e_v, first/last
//    visit) packed into one 32-byte stride. An arrival commit used to
//    touch four parallel uint64 arrays (four cache lines per node); now
//    it touches one.
//
//  * prefetch_ro — gather hints for the occupied-node scan; the round is
//    memory-latency-bound on scattered node state, so overlapping the
//    misses is worth more than any arithmetic tuning.

#include <cstdint>

#include "graph/partition.hpp"
#include "sim/engine.hpp"

namespace rr::core {

/// Per-node visit statistics in one stride. `first_visit` uses
/// sim::kNotCovered as the "never" sentinel, matching the engine API.
struct VisitStats {
  std::uint64_t visits = 0;       ///< n_v(t), incl. initial placement
  std::uint64_t exits = 0;        ///< e_v(t)
  std::uint64_t first_visit = sim::kNotCovered;
  std::uint64_t last_visit = 0;
};

/// Read-prefetch `addr` into cache; a hint, never required for
/// correctness.
inline void prefetch_ro(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, 0, 1);
#else
  (void)addr;
#endif
}

/// Moves `moving` agents out of a node with port row `row`, degree `deg`
/// and rotor pointer `ptr`: deposit(p, u, c) is called with the exit port,
/// the arrival target and a positive count, and the advanced pointer is
/// returned. The port lets shard-parallel callers classify the arrival in
/// O(1) via Partition::arc_slot. Full sweeps are batched (floor(moving/
/// deg) per port in port order 0..d, a reordering of the per-agent
/// sequence with identical totals); the remainder walks ports ptr,
/// ptr+1, ... as in the paper's Sec. 1.3 rule.
template <typename Deposit>
inline std::uint32_t distribute_exits(const std::uint32_t* row,
                                      std::uint32_t deg, std::uint32_t ptr,
                                      std::uint32_t moving,
                                      Deposit&& deposit) {
  if (moving >= deg) {
    const std::uint32_t cycles = moving / deg;
    for (std::uint32_t p = 0; p < deg; ++p) deposit(p, row[p], cycles);
    moving -= cycles * deg;
  }
  for (std::uint32_t i = 0; i < moving; ++i) {
    deposit(ptr, row[ptr], 1);
    ptr = ptr + 1 == deg ? 0 : ptr + 1;
  }
  return ptr;
}

/// Applies a committed arrival of `a` agents to node `nu`/`st` at round
/// `time` — count, n_v, last-visit, first-visit — and reports whether the
/// node was newly covered. Shared by the sequential and sharded commit
/// loops so the bookkeeping convention (n_v counts arrivals, first visit
/// at the commit round) cannot drift between them; callers handle their
/// own occupied-list membership (checked *before* the count update).
inline bool commit_node_arrival(graph::NodeState& nu, VisitStats& st,
                                std::uint64_t time, std::uint32_t a) {
  nu.count += a;
  st.visits += a;
  st.last_visit = time;
  if (st.first_visit == sim::kNotCovered) {
    st.first_visit = time;
    return true;
  }
  return false;
}

}  // namespace rr::core
